package serve

import (
	"strings"
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// mustPres builds a presentation from an alphabet spec and equation lines.
func mustPres(t *testing.T, names []string, a0, zero string, eqs ...string) *words.Presentation {
	t.Helper()
	a, err := words.NewAlphabet(names, a0, zero)
	if err != nil {
		t.Fatalf("alphabet: %v", err)
	}
	parsed := make([]words.Equation, 0, len(eqs))
	for _, line := range eqs {
		e, err := words.ParseEquation(a, line)
		if err != nil {
			t.Fatalf("equation %q: %v", line, err)
		}
		parsed = append(parsed, e)
	}
	p, err := words.NewPresentation(a, parsed)
	if err != nil {
		t.Fatalf("presentation: %v", err)
	}
	return p
}

func TestCanonPresentationInvariantUnderRenaming(t *testing.T) {
	// B and C renamed to Y and X (and declared in a different order).
	p1 := mustPres(t, []string{"A0", "Z", "B", "C"}, "A0", "Z",
		"A0 B = C", "C C = Z", "B A0 = B")
	p2 := mustPres(t, []string{"X", "A0", "Y", "Z"}, "A0", "Z",
		"A0 Y = X", "X X = Z", "Y A0 = Y")
	k1, k2 := CanonPresentation(p1), CanonPresentation(p2)
	if k1 != k2 {
		t.Fatalf("renamed presentations got different keys:\n  %s\n  %s", k1, k2)
	}
	if !strings.HasPrefix(k1, "pres:") {
		t.Fatalf("expected canonical (not fallback) key, got %s", k1)
	}
}

func TestCanonPresentationInvariantUnderEquationOrderAndOrientation(t *testing.T) {
	p1 := mustPres(t, []string{"A0", "Z", "B"}, "A0", "Z",
		"A0 A0 = B", "B B = Z")
	p2 := mustPres(t, []string{"A0", "Z", "B"}, "A0", "Z",
		"Z = B B", "B = A0 A0") // reversed orientations, swapped order
	if k1, k2 := CanonPresentation(p1), CanonPresentation(p2); k1 != k2 {
		t.Fatalf("reordered/flipped presentations got different keys:\n  %s\n  %s", k1, k2)
	}
}

func TestCanonPresentationSeparatesDistinctProblems(t *testing.T) {
	p1 := mustPres(t, []string{"A0", "Z", "B"}, "A0", "Z", "A0 A0 = B")
	p2 := mustPres(t, []string{"A0", "Z", "B"}, "A0", "Z", "A0 A0 = Z")
	if k1, k2 := CanonPresentation(p1), CanonPresentation(p2); k1 == k2 {
		t.Fatalf("distinct problems share key %s", k1)
	}
	// Swapping the roles of the distinguished symbols must also separate:
	// A0 and 0 are pinned, not interchangeable.
	p3 := mustPres(t, []string{"A0", "Z", "B"}, "A0", "Z", "B B = A0")
	p4 := mustPres(t, []string{"A0", "Z", "B"}, "A0", "Z", "B B = Z")
	if k3, k4 := CanonPresentation(p3), CanonPresentation(p4); k3 == k4 {
		t.Fatalf("A0/zero roles collapsed into one key %s", k3)
	}
}

func TestCanonPresentationSymmetricSymbols(t *testing.T) {
	// B and C are fully interchangeable; the individualization search must
	// still produce one canonical key for every labeling.
	p1 := mustPres(t, []string{"A0", "Z", "B", "C"}, "A0", "Z",
		"B B = Z", "C C = Z")
	p2 := mustPres(t, []string{"A0", "Z", "C", "B"}, "A0", "Z",
		"C C = Z", "B B = Z")
	k1, k2 := CanonPresentation(p1), CanonPresentation(p2)
	if k1 != k2 {
		t.Fatalf("symmetric presentations got different keys:\n  %s\n  %s", k1, k2)
	}
	if !strings.HasPrefix(k1, "pres:") {
		t.Fatalf("symmetric case fell back unexpectedly: %s", k1)
	}
}

func TestCanonPresentationPresetsDistinct(t *testing.T) {
	// Every preset family member must get its own key.
	names := []string{"power", "twostep", "gap", "chain:3", "chain:4", "nilpotent:2"}
	seen := make(map[string]string)
	for _, n := range names {
		p, err := words.Preset(n)
		if err != nil {
			t.Fatalf("preset %s: %v", n, err)
		}
		k := CanonPresentation(p)
		if prev, ok := seen[k]; ok {
			t.Fatalf("presets %s and %s share key %s", prev, n, k)
		}
		seen[k] = n
	}
}

func TestCanonInferenceInvariance(t *testing.T) {
	schema := relation.MustSchema("A", "B")
	parse := func(s, name string) *td.TD {
		d, err := td.Parse(schema, s, name)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return d
	}
	d1 := parse("R(x,y) & R(x,y2) -> R(x,y3)", "t")
	d2 := parse("R(x,y) & R(x2,y) -> R(x3,y)", "s")
	goal := parse("R(a,b) & R(a,b2) -> R(a2,b)", "g")

	k1 := CanonInference([]*td.TD{d1, d2}, goal)
	// Dependency order, duplicates, names, and variable names must not
	// matter.
	d1r := parse("R(u,v) & R(u,v2) -> R(u,v3)", "renamed")
	k2 := CanonInference([]*td.TD{d2, d1r, d2}, goal)
	if k1 != k2 {
		t.Fatalf("equivalent TD instances got different keys:\n  %s\n  %s", k1, k2)
	}
	k3 := CanonInference([]*td.TD{d1}, goal)
	if k1 == k3 {
		t.Fatalf("different dependency sets share key %s", k1)
	}
}

func TestKeyDigestStable(t *testing.T) {
	a, b := keyDigest("pres:x"), keyDigest("pres:x")
	if a != b || len(a) != 16 {
		t.Fatalf("digest not stable/16-hex: %q vs %q", a, b)
	}
	if keyDigest("pres:y") == a {
		t.Fatalf("distinct forms share digest")
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"templatedep/internal/core"
	"templatedep/internal/obs"
)

func presetProblem(t *testing.T, name string) *Problem {
	t.Helper()
	p, err := ParseRequest(Request{Preset: name})
	if err != nil {
		t.Fatalf("ParseRequest(%s): %v", name, err)
	}
	return p
}

// gatedRunner counts engine invocations and blocks each until release is
// closed, letting tests hold requests in flight deterministically.
type gatedRunner struct {
	mu      sync.Mutex
	calls   int
	release chan struct{}
	verdict core.Verdict
}

func (g *gatedRunner) run(_ context.Context, _ *Problem, _ core.Budget) (CachedVerdict, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	if g.release != nil {
		<-g.release
	}
	return CachedVerdict{Verdict: g.verdict, Winner: "derivation"}, nil
}

func (g *gatedRunner) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.calls
}

func TestSingleflightCollapsesConcurrentDuplicates(t *testing.T) {
	const dups = 8
	counters := obs.NewCounters()
	r := &gatedRunner{release: make(chan struct{}), verdict: core.Implied}
	s := New(Config{Runner: r.run, Counters: counters})
	p := presetProblem(t, "power")

	results := make(chan Response, dups)
	errs := make(chan error, dups)
	for i := 0; i < dups; i++ {
		go func() {
			resp, err := s.Infer(p)
			if err != nil {
				errs <- err
				return
			}
			results <- resp
		}()
	}
	// Wait until the leader is running and all followers are parked on it.
	deadline := time.Now().Add(5 * time.Second)
	for s.dupsFor(p.Key) < dups-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never parked: dups=%d", s.dupsFor(p.Key))
		}
		time.Sleep(time.Millisecond)
	}
	close(r.release)

	sources := map[string]int{}
	for i := 0; i < dups; i++ {
		select {
		case resp := <-results:
			sources[resp.Source]++
			if resp.Verdict != core.Implied {
				t.Fatalf("verdict %v", resp.Verdict)
			}
		case err := <-errs:
			t.Fatalf("Infer: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never finished", i)
		}
	}
	if r.count() != 1 {
		t.Fatalf("engine ran %d times for %d identical requests", r.count(), dups)
	}
	if sources["cold"] != 1 || sources["dedup"] != dups-1 {
		t.Fatalf("sources = %v, want 1 cold + %d dedup", sources, dups-1)
	}
	if got := counters.Get("serve.dedups"); got != dups-1 {
		t.Fatalf("serve.dedups = %d, want %d", got, dups-1)
	}
	if got := counters.Get("serve.cache_misses"); got != 1 {
		t.Fatalf("serve.cache_misses = %d, want 1", got)
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	counters := obs.NewCounters()
	r := &gatedRunner{verdict: core.Unknown}
	s := New(Config{Runner: r.run, Counters: counters, CacheSize: 1})
	power := presetProblem(t, "power")
	gap := presetProblem(t, "gap")

	if resp, err := s.Infer(power); err != nil || resp.Source != "cold" {
		t.Fatalf("first power: %v %v", resp.Source, err)
	}
	if resp, err := s.Infer(power); err != nil || resp.Source != "cache" {
		t.Fatalf("repeat power: source=%v err=%v", resp.Source, err)
	}
	// A renamed-but-equivalent request must also hit: parse gap's canonical
	// twin via the explicit form. (Cheaper: re-parse the same preset.)
	if resp, err := s.Infer(presetProblem(t, "power")); err != nil || resp.Source != "cache" {
		t.Fatalf("re-parsed power: source=%v err=%v", resp.Source, err)
	}
	// Cache size 1: inferring gap evicts power.
	if resp, err := s.Infer(gap); err != nil || resp.Source != "cold" {
		t.Fatalf("gap: %v %v", resp.Source, err)
	}
	if resp, err := s.Infer(power); err != nil || resp.Source != "cold" {
		t.Fatalf("power after eviction: source=%v err=%v", resp.Source, err)
	}
	if got := counters.Get("serve.cache_hits"); got != 2 {
		t.Fatalf("serve.cache_hits = %d, want 2", got)
	}
	if got := s.Stats().CacheEntries; got != 1 {
		t.Fatalf("cache entries = %d, want 1", got)
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	var trace bytes.Buffer
	sink := obs.NewJSONLSink(&trace)
	r := &gatedRunner{release: make(chan struct{}), verdict: core.Implied}
	s := New(Config{Runner: r.run, Sink: sink})
	p := presetProblem(t, "power")

	started := make(chan Response, 1)
	go func() {
		resp, err := s.Infer(p)
		if err != nil {
			t.Errorf("in-flight Infer: %v", err)
		}
		started <- resp
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("leader never started")
		}
		time.Sleep(time.Millisecond)
	}

	if n := s.BeginDrain(); n != 1 {
		t.Fatalf("BeginDrain reported %d in flight, want 1", n)
	}
	// New work is refused while draining.
	if _, err := s.Infer(presetProblem(t, "gap")); err != ErrDraining {
		t.Fatalf("draining request returned %v, want ErrDraining", err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before in-flight run finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(r.release)
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Shutdown never returned after release")
	}
	resp := <-started
	if resp.Source != "cold" || resp.Verdict != core.Implied {
		t.Fatalf("drained request got %+v", resp)
	}

	tot, err := obs.Replay(&trace)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if tot.ServeShutdowns != 1 || tot.ServeRequests != 1 || tot.ServeMisses != 1 {
		t.Fatalf("replayed totals %+v, want 1 shutdown / 1 request / 1 miss", tot)
	}
}

func TestShutdownCancelsOverdueRuns(t *testing.T) {
	// The runner only finishes when its governor context is cancelled —
	// the drain deadline must force that cancellation through rootCancel.
	r := func(ctx context.Context, _ *Problem, _ core.Budget) (CachedVerdict, error) {
		<-ctx.Done()
		return CachedVerdict{Verdict: core.Unknown}, nil
	}
	s := New(Config{Runner: r})
	done := make(chan struct{})
	go func() {
		_, _ = s.Infer(presetProblem(t, "power"))
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("cancelled run never returned")
	}
}

func TestTraceReplayMatchesCounters(t *testing.T) {
	// End-to-end with the REAL engines: the JSONL trace a mixed workload
	// produces must replay to exactly the counter totals the server kept.
	var trace bytes.Buffer
	sink := obs.NewJSONLSink(&trace)
	counters := obs.NewCounters()
	s := New(Config{Sink: sink, Counters: counters,
		RequestTimeout: 5 * time.Second})
	for _, preset := range []string{"power", "power", "gap", "power", "gap"} {
		if _, err := s.Infer(presetProblem(t, preset)); err != nil {
			t.Fatalf("infer %s: %v", preset, err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	tot, err := obs.Replay(&trace)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	check := func(name string, replayed int, counter string) {
		t.Helper()
		if int64(replayed) != counters.Get(counter) {
			t.Fatalf("%s: replayed %d, counter %s = %d",
				name, replayed, counter, counters.Get(counter))
		}
	}
	check("requests", tot.ServeRequests, "serve.requests")
	check("misses", tot.ServeMisses, "serve.cache_misses")
	check("hits", tot.ServeCacheHits, "serve.cache_hits")
	check("dedups", tot.ServeDedups, "serve.dedups")
	check("shutdowns", tot.ServeShutdowns, "serve.shutdowns")
	if tot.ServeRequests != 5 || tot.ServeMisses != 2 || tot.ServeCacheHits != 3 {
		t.Fatalf("totals %+v, want 5 requests / 2 misses / 3 hits", tot)
	}
	// Repeats must return the cold verdicts: replay per-request streams.
	if tot.ServeShutdowns != 1 {
		t.Fatalf("expected exactly one shutdown event, got %d", tot.ServeShutdowns)
	}
}

func TestRepeatVerdictMatchesColdRun(t *testing.T) {
	s := New(Config{RequestTimeout: 5 * time.Second})
	defer s.Shutdown(context.Background())
	cold, err := s.Infer(presetProblem(t, "twostep"))
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := s.Infer(presetProblem(t, "twostep"))
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Source != "cache" {
		t.Fatalf("repeat source = %s", warm.Source)
	}
	if warm.Verdict != cold.Verdict || warm.Winner != cold.Winner {
		t.Fatalf("repeat verdict %v/%s differs from cold %v/%s",
			warm.Verdict, warm.Winner, cold.Verdict, cold.Winner)
	}
}

func TestHTTPSurface(t *testing.T) {
	counters := obs.NewCounters()
	s := New(Config{Counters: counters, RequestTimeout: 5 * time.Second})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return resp, m
	}

	// Preset request.
	resp, m := post(`{"preset":"power"}`)
	if resp.StatusCode != http.StatusOK || m["source"] != "cold" {
		t.Fatalf("preset: %d %v", resp.StatusCode, m)
	}
	// An explicit-presentation request equivalent to the preset must hit
	// the cache through canonicalization, even with renamed symbols and
	// without the zero equations spelled out (power is {A0·A0 = B} + zero
	// equations over {A0, B, 0}; rename B -> Q and 0 -> Z).
	resp, m = post(`{"alphabet":["A0","Q","Z"],"a0":"A0","zero":"Z",
		"equations":["A0 A0 = Q"]}`)
	if resp.StatusCode != http.StatusOK || m["source"] != "cache" {
		t.Fatalf("explicit twin: %d %v", resp.StatusCode, m)
	}
	// TD-mode request.
	// The goal is the dependency itself under renamed variables: trivially
	// implied, and the chase proves it within the default budget.
	resp, m = post(`{"schema":["A","B"],"deps":["R(x,y) & R(x,y2) -> R(x2,y)"],"goal":"R(a,b) & R(a,b2) -> R(a2,b)"}`)
	if resp.StatusCode != http.StatusOK || m["mode"] != "td" || m["verdict"] != "implied" {
		t.Fatalf("td: %d %v", resp.StatusCode, m)
	}
	// Malformed requests are 400s.
	for _, bad := range []string{
		`{`,
		`{"preset":"no-such-preset"}`,
		`{"preset":"power","goal":"(x)->(x)"}`,
		`{"schema":["A"],"deps":[],"goal":""}`,
		`{"unknown_field":1}`,
	} {
		resp, _ := post(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// Health and metrics.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hr, err)
	}
	hr.Body.Close()
	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var metrics struct {
		Gauges   Stats            `json:"gauges"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(mr.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	mr.Body.Close()
	if metrics.Gauges.Requests < 3 || metrics.Counters["serve.requests"] < 3 {
		t.Fatalf("metrics report %+v", metrics)
	}
}

func TestCanonicalizationSharesCacheAcrossRenaming(t *testing.T) {
	// The load-bearing cache property end-to-end: an explicit presentation
	// with renamed symbols and shuffled, flipped equations hits the cache
	// line its twin populated.
	r := &gatedRunner{verdict: core.Unknown}
	s := New(Config{Runner: r.run})
	p1, err := ParseRequest(Request{Alphabet: []string{"A0", "Z", "B", "C"}, A0: "A0", Zero: "Z",
		Equations: []string{"A0 B = C", "C C = Z", "B A0 = B"}})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseRequest(Request{Alphabet: []string{"X", "A0", "Y", "Z"}, A0: "A0", Zero: "Z",
		Equations: []string{"Z = X X", "Y A0 = Y", "A0 Y = X"}})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := s.Infer(p1); err != nil || resp.Source != "cold" {
		t.Fatalf("p1: %v %v", resp.Source, err)
	}
	resp, err := s.Infer(p2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "cache" {
		t.Fatalf("renamed twin missed the cache (source=%s, keys %s vs %s)",
			resp.Source, p1.Key, p2.Key)
	}
	if r.count() != 1 {
		t.Fatalf("engine ran %d times", r.count())
	}
}

package serve

import (
	"context"
	"testing"
	"time"

	"templatedep/internal/core"
	"templatedep/internal/obs"
)

// tdProblem parses a TD-mode request with the shared join dependency and
// the given goal. All goals below share the dependency set and the
// antecedent tableau, so they canonicalize to one chase-state key while
// keeping distinct verdict keys.
func tdProblem(t *testing.T, goal string) *Problem {
	t.Helper()
	p, err := ParseRequest(Request{
		Schema: []string{"A", "B", "C"},
		Deps:   []string{"R(a,b,c) & R(a,b2,c2) -> R(a,b,c2)"},
		Goal:   goal,
	})
	if err != nil {
		t.Fatalf("ParseRequest(%s): %v", goal, err)
	}
	return p
}

const (
	goalSameConcl = "R(x,y,z) & R(x,y2,z2) -> R(x,y,z2)" // the dep itself, renamed
	goalSwapConcl = "R(x,y,z) & R(x,y2,z2) -> R(x,y2,z)" // same antecedents, swapped conclusion
)

// Two goals over the same dependency set and antecedent tableau share one
// chase computation: the first request runs cold and deposits its chase
// state, the second warm-starts from it and reports source "warm".
func TestWarmStartSharesChaseAcrossGoals(t *testing.T) {
	p1 := tdProblem(t, goalSameConcl)
	p2 := tdProblem(t, goalSwapConcl)
	if p1.StateKey == "" || p1.StateKey != p2.StateKey {
		t.Fatalf("state keys differ: %q vs %q", p1.StateKey, p2.StateKey)
	}
	if p1.Key == p2.Key {
		t.Fatalf("verdict keys collide: %q", p1.Key)
	}

	counters := obs.NewCounters()
	s := New(Config{Counters: counters, RequestTimeout: 5 * time.Second})
	defer s.Shutdown(context.Background())

	cold, err := s.Infer(p1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Source != "cold" || cold.Verdict != core.Implied {
		t.Fatalf("first goal: source=%s verdict=%v", cold.Source, cold.Verdict)
	}
	if got := s.Stats().StateEntries; got != 1 {
		t.Fatalf("state entries after cold run = %d, want 1", got)
	}

	warm, err := s.Infer(p2)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != "warm" {
		t.Fatalf("second goal source = %s, want warm", warm.Source)
	}
	if got := counters.Get("serve.warm"); got != 1 {
		t.Fatalf("serve.warm = %d, want 1", got)
	}
	// Warm runs count as misses (an engine run happened), not hits.
	if got := counters.Get("serve.cache_misses"); got != 2 {
		t.Fatalf("serve.cache_misses = %d, want 2", got)
	}

	// The warm verdict must equal what a fresh server computes cold.
	fresh := New(Config{RequestTimeout: 5 * time.Second})
	defer fresh.Shutdown(context.Background())
	ref, err := fresh.Infer(tdProblem(t, goalSwapConcl))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Verdict != ref.Verdict {
		t.Fatalf("warm verdict %v differs from cold reference %v", warm.Verdict, ref.Verdict)
	}

	// The verdict cache still works on top: an exact repeat is a pure hit.
	if resp, err := s.Infer(tdProblem(t, goalSwapConcl)); err != nil || resp.Source != "cache" {
		t.Fatalf("repeat: source=%v err=%v", resp.Source, err)
	}
}

// Disabling the state cache disables warm starts but changes nothing else.
func TestStateCacheDisabled(t *testing.T) {
	counters := obs.NewCounters()
	s := New(Config{Counters: counters, StateCacheSize: -1, RequestTimeout: 5 * time.Second})
	defer s.Shutdown(context.Background())
	for _, goal := range []string{goalSameConcl, goalSwapConcl} {
		resp, err := s.Infer(tdProblem(t, goal))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Source != "cold" || resp.Verdict != core.Implied {
			t.Fatalf("%s: source=%s verdict=%v", goal, resp.Source, resp.Verdict)
		}
	}
	if got := counters.Get("serve.warm"); got != 0 {
		t.Fatalf("serve.warm = %d, want 0", got)
	}
	if got := s.Stats().StateEntries; got != 0 {
		t.Fatalf("state entries = %d, want 0", got)
	}
}

// Concurrent different-goal requests on one state key must not deadlock:
// the leader registers the state flight, the follower parks on it, and when
// the leader's runner yields no reusable state the follower falls back to
// its own cold run.
func TestStateFlightFallsBackWhenNoState(t *testing.T) {
	r := &gatedRunner{release: make(chan struct{}), verdict: core.Unknown}
	s := New(Config{Runner: r.run})
	defer s.Shutdown(context.Background())
	p1 := tdProblem(t, goalSameConcl)
	p2 := tdProblem(t, goalSwapConcl)

	results := make(chan Response, 2)
	errs := make(chan error, 2)
	run := func(p *Problem) {
		resp, err := s.Infer(p)
		if err != nil {
			errs <- err
			return
		}
		results <- resp
	}
	go run(p1)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Inflight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	go run(p2)
	// Give the follower time to park on the leader's state flight; the
	// assertions below hold regardless of exactly where it is blocked.
	time.Sleep(50 * time.Millisecond)
	close(r.release)

	for i := 0; i < 2; i++ {
		select {
		case resp := <-results:
			if resp.Source != "cold" {
				t.Fatalf("source = %s, want cold (stub runner returns no state)", resp.Source)
			}
		case err := <-errs:
			t.Fatalf("Infer: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("request deadlocked on the state flight")
		}
	}
	if r.count() != 2 {
		t.Fatalf("engine ran %d times, want 2 (distinct goals, no state to share)", r.count())
	}
}

// Canonical cache keys. Two requests that pose the same inference problem
// must map to the same key, or the verdict cache answers neither and the
// singleflight collapses nothing. "The same problem" is wider than "the
// same bytes":
//
//   - a presentation's symbol names are arbitrary (renaming every non-
//     distinguished symbol yields an isomorphic semigroup, hence the same
//     verdict),
//   - the order of the equation list is irrelevant (a presentation is a
//     SET of equations), as is each equation's orientation (x = y and
//     y = x generate the same congruence),
//   - a TD set's member order and the TDs' display names are irrelevant.
//
// CanonPresentation therefore computes a true canonical form up to symbol
// renaming: iterated color refinement (symbols are distinguished by an
// isomorphism-invariant signature of their occurrences) followed by
// individualization with full branching, taking the lexicographically
// minimal serialization over all completions. Refinement collapses the
// branching to nothing on every realistic presentation; a node cap guards
// the factorial worst case, falling back to a renaming-sensitive (but
// still sound) key — a fallback costs cache hits, never correctness.
//
// CanonInference canonicalizes a TD instance up to dependency order and
// naming. Column permutations and antecedent-row permutations are NOT
// canonicalized (that is the same graph-isomorphism-shaped problem again,
// for a request form that — unlike presentations, which the reduction
// emits in every renaming — rarely arrives permuted); two requests that
// differ only there are answered correctly, just without sharing a cache
// line.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"templatedep/internal/td"
	"templatedep/internal/words"
)

// canonNodeCap bounds the individualization-refinement search. Refinement
// leaves at most a handful of interchangeable symbols on real inputs, so
// hitting the cap means an adversarially symmetric presentation; the
// fallback key keeps such requests sound and cheap.
const canonNodeCap = 4096

// keyDigest condenses a canonical form into the wire key: a short hex
// digest for events and responses plus the full form as the map key.
func keyDigest(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:8])
}

// CanonPresentation returns the canonical cache key of p: equal for any
// two presentations that differ only by renaming non-distinguished
// symbols, permuting the equation list, or flipping equation orientations.
func CanonPresentation(p *words.Presentation) string {
	n := p.Alphabet.Size()
	c := &canonizer{
		n:    n,
		a0:   int(p.Alphabet.A0()),
		zero: int(p.Alphabet.Zero()),
		eqs:  make([][2][]int, 0, len(p.Equations)),
	}
	for _, e := range p.Equations {
		c.eqs = append(c.eqs, [2][]int{symbolIDs(e.LHS), symbolIDs(e.RHS)})
	}
	if s, ok := c.canonical(); ok {
		return "pres:" + s
	}
	// Too symmetric to canonicalize within the cap: fall back to a key in
	// the original names. Sound (identical requests still collide) but
	// renaming-blind.
	return "presraw:" + rawPresentationForm(p)
}

func symbolIDs(w words.Word) []int {
	out := make([]int, len(w))
	for i, s := range w {
		out[i] = int(s)
	}
	return out
}

func rawPresentationForm(p *words.Presentation) string {
	forms := make([]string, 0, len(p.Equations))
	for _, e := range p.Equations {
		l, r := e.LHS.Key(), e.RHS.Key()
		if r < l {
			l, r = r, l
		}
		forms = append(forms, l+"="+r)
	}
	sort.Strings(forms)
	forms = dedupSorted(forms)
	return strings.Join(p.Alphabet.Names(), ",") + "|" + strings.Join(forms, ";")
}

// canonizer runs the individualization-refinement canonical labeling.
type canonizer struct {
	n, a0, zero int
	eqs         [][2][]int
	nodes       int
	best        string
	found       bool
}

// canonical returns the minimal serialization over all refinement-guided
// labelings, or ok=false when the search exceeded canonNodeCap.
func (c *canonizer) canonical() (string, bool) {
	colors := make([]int, c.n)
	colors[c.a0] = 1
	colors[c.zero] = 2
	c.search(c.refine(colors))
	return c.best, c.found && c.nodes <= canonNodeCap
}

// refine iterates color refinement to a fixpoint: each symbol's new color
// is determined by its old color and the isomorphism-invariant multiset of
// its occurrences (which equations it appears in, on which side, at which
// position, with sides identified by their color strings rather than their
// textual order). Classes only ever split, so at most n iterations run.
func (c *canonizer) refine(colors []int) []int {
	distinct := countDistinct(colors)
	for {
		occ := make([][]string, c.n)
		for _, eq := range c.eqs {
			ls := colorString(eq[0], colors)
			rs := colorString(eq[1], colors)
			a, b := ls, rs
			if b < a {
				a, b = b, a
			}
			esig := a + "=" + b
			for side, w := range eq {
				scs := ls
				if side == 1 {
					scs = rs
				}
				for pos, sym := range w {
					occ[sym] = append(occ[sym], esig+"#"+scs+"@"+strconv.Itoa(pos))
				}
			}
		}
		sigs := make([]string, c.n)
		for s := 0; s < c.n; s++ {
			sort.Strings(occ[s])
			sigs[s] = strconv.Itoa(colors[s]) + "|" + strings.Join(occ[s], "&")
		}
		order := append([]string(nil), sigs...)
		sort.Strings(order)
		order = dedupSorted(order)
		id := make(map[string]int, len(order))
		for i, sg := range order {
			id[sg] = i
		}
		next := make([]int, c.n)
		for s, sg := range sigs {
			next[s] = id[sg]
		}
		if nd := countDistinct(next); nd == distinct {
			return next
		} else {
			distinct = nd
		}
		colors = next
	}
}

// search explores the individualization tree: at each node with a
// non-singleton color class it branches on every member of the first such
// class, re-refines, and recurses; discrete leaves serialize the labeled
// presentation and the lexicographic minimum over leaves is the canonical
// form. Exceeding canonNodeCap abandons the whole search (the caller falls
// back), keeping the result independent of traversal order.
func (c *canonizer) search(colors []int) {
	if c.nodes > canonNodeCap {
		return
	}
	c.nodes++
	count := make(map[int]int, c.n)
	maxColor := 0
	for _, col := range colors {
		count[col]++
		if col > maxColor {
			maxColor = col
		}
	}
	cell := -1
	for col := 0; col <= maxColor; col++ {
		if count[col] > 1 {
			cell = col
			break
		}
	}
	if cell == -1 {
		s := c.serialize(colors)
		if !c.found || s < c.best {
			c.best, c.found = s, true
		}
		return
	}
	for sym := 0; sym < c.n; sym++ {
		if colors[sym] != cell {
			continue
		}
		next := append([]int(nil), colors...)
		next[sym] = maxColor + 1
		c.search(c.refine(next))
		if c.nodes > canonNodeCap {
			return
		}
	}
}

// serialize renders the presentation under a discrete coloring: symbols
// are named by their color rank, equations are orientation-normalized,
// sorted, and deduplicated, and the distinguished symbols' ranks are
// pinned in a header so A0 and 0 can never trade places silently.
func (c *canonizer) serialize(colors []int) string {
	rank := densify(colors)
	forms := make([]string, 0, len(c.eqs))
	for _, eq := range c.eqs {
		l := rankString(eq[0], rank)
		r := rankString(eq[1], rank)
		if r < l {
			l, r = r, l
		}
		forms = append(forms, l+"="+r)
	}
	sort.Strings(forms)
	forms = dedupSorted(forms)
	return "n" + strconv.Itoa(c.n) +
		",a" + strconv.Itoa(rank[c.a0]) +
		",z" + strconv.Itoa(rank[c.zero]) + "|" +
		strings.Join(forms, ";")
}

// densify maps a discrete coloring to ranks 0..n-1 in color order.
func densify(colors []int) []int {
	idx := make([]int, len(colors))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return colors[idx[a]] < colors[idx[b]] })
	rank := make([]int, len(colors))
	for r, sym := range idx {
		rank[sym] = r
	}
	return rank
}

func colorString(w []int, colors []int) string {
	parts := make([]string, len(w))
	for i, s := range w {
		parts[i] = strconv.Itoa(colors[s])
	}
	return strings.Join(parts, ".")
}

func rankString(w []int, rank []int) string {
	parts := make([]string, len(w))
	for i, s := range w {
		parts[i] = strconv.Itoa(rank[s])
	}
	return strings.Join(parts, ".")
}

func countDistinct(colors []int) int {
	seen := make(map[int]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// CanonInference returns the canonical cache key of a TD instance:
// invariant under dependency-set order, duplicate members, TD display
// names, and attribute names (variables are rendered by their tableau
// indices, which the tableau layer already normalizes to first-occurrence
// order).
func CanonInference(deps []*td.TD, goal *td.TD) string {
	forms := make([]string, 0, len(deps))
	for _, d := range deps {
		forms = append(forms, canonTD(d))
	}
	sort.Strings(forms)
	forms = dedupSorted(forms)
	width := 0
	if goal != nil {
		width = goal.Schema().Width()
	}
	return "td:w" + strconv.Itoa(width) + "|" +
		strings.Join(forms, ";") + ">>" + canonTD(goal)
}

// CanonChaseState returns the canonical chase-state cache key of a TD
// instance: the CanonInference form truncated before the goal's conclusion
// row. The chase of deps ⊨? goal starts from the goal's frozen antecedents
// and is otherwise goal-independent — tableau variable numbering is
// first-occurrence order with antecedents first, so the antecedent rows'
// canonical rendering is unaffected by the conclusion — which means two
// goals sharing a dependency set and antecedent tableau chase the SAME
// deterministic computation and can share one snapshot.
func CanonChaseState(deps []*td.TD, goal *td.TD) string {
	full := CanonInference(deps, goal)
	// canonTD renders antecedents '>' conclusion; the last '>' therefore
	// cuts exactly the goal's conclusion row off the full key.
	return "cs:" + full[:strings.LastIndexByte(full, '>')]
}

func canonTD(d *td.TD) string {
	row := func(r []int) string {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = strconv.Itoa(v)
		}
		return strings.Join(parts, ".")
	}
	var b strings.Builder
	for i := 0; i < d.NumAntecedents(); i++ {
		if i > 0 {
			b.WriteByte('&')
		}
		vt := d.Antecedent(i)
		vals := make([]int, len(vt))
		for a, v := range vt {
			vals[a] = int(v)
		}
		b.WriteString(row(vals))
	}
	b.WriteByte('>')
	vt := d.Conclusion()
	vals := make([]int, len(vt))
	for a, v := range vt {
		vals[a] = int(v)
	}
	b.WriteString(row(vals))
	return b.String()
}

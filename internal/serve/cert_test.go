package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"templatedep/internal/cert"
	"templatedep/internal/core"
	"templatedep/internal/obs"
)

// validCert obtains a genuine, checkable certificate by running one real
// cold inference (the twostep preset is Implied with a 2-step derivation).
func validCert(t *testing.T) *cert.Certificate {
	t.Helper()
	s := New(Config{RequestTimeout: 5 * time.Second})
	defer s.Shutdown(context.Background())
	resp, err := s.Infer(presetProblem(t, "twostep"))
	if err != nil {
		t.Fatalf("cold twostep: %v", err)
	}
	if resp.Cert == nil {
		t.Fatalf("cold twostep run produced no certificate")
	}
	return resp.Cert
}

func TestColdRunCarriesVerifiedCert(t *testing.T) {
	counters := obs.NewCounters()
	s := New(Config{Counters: counters, RequestTimeout: 5 * time.Second})
	defer s.Shutdown(context.Background())

	cold, err := s.Infer(presetProblem(t, "twostep"))
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cold.Verdict != core.Implied || cold.Cert == nil {
		t.Fatalf("cold twostep: verdict=%v cert=%v", cold.Verdict, cold.Cert)
	}
	if err := cert.Check(cold.Cert); err != nil {
		t.Fatalf("served certificate fails the independent checker: %v", err)
	}
	hit, err := s.Infer(presetProblem(t, "twostep"))
	if err != nil || hit.Source != "cache" {
		t.Fatalf("repeat: source=%s err=%v", hit.Source, err)
	}
	if hit.Cert == nil {
		t.Fatalf("cache hit dropped the certificate")
	}
	fcex, err := s.Infer(presetProblem(t, "power"))
	if err != nil {
		t.Fatalf("power: %v", err)
	}
	if fcex.Verdict != core.FiniteCounterexample || fcex.Cert == nil {
		t.Fatalf("power: verdict=%v cert=%v", fcex.Verdict, fcex.Cert)
	}
	if fcex.Cert.Kind != cert.KindFiniteModel {
		t.Fatalf("power cert kind = %s, want %s", fcex.Cert.Kind, cert.KindFiniteModel)
	}
	if err := cert.Check(fcex.Cert); err != nil {
		t.Fatalf("finite-model certificate fails the checker: %v", err)
	}
	if got := counters.Get("serve.cert_checked"); got != 2 {
		t.Fatalf("serve.cert_checked = %d, want 2 (one per cold run)", got)
	}
	if got := counters.Get("serve.cert_rejected"); got != 0 {
		t.Fatalf("serve.cert_rejected = %d, want 0", got)
	}
}

func TestFillPathRejectedCertDroppedVerdictKept(t *testing.T) {
	bad := *validCert(t)
	bad.Version++ // fails cert.Check without touching the payload
	counters := obs.NewCounters()
	r := func(_ context.Context, _ *Problem, _ core.Budget) (CachedVerdict, error) {
		return CachedVerdict{Verdict: core.Implied, Winner: "derivation", Cert: &bad}, nil
	}
	s := New(Config{Runner: r, Counters: counters})
	resp, err := s.Infer(presetProblem(t, "twostep"))
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	if resp.Verdict != core.Implied {
		t.Fatalf("verdict = %v, want Implied (rejection must not change the verdict)", resp.Verdict)
	}
	if resp.Cert != nil {
		t.Fatalf("rejected certificate was served anyway")
	}
	if counters.Get("serve.cert_checked") != 1 || counters.Get("serve.cert_rejected") != 1 {
		t.Fatalf("cert counters = %d checked / %d rejected, want 1/1",
			counters.Get("serve.cert_checked"), counters.Get("serve.cert_rejected"))
	}
}

func TestCacheHitWithFailingCertIsMissAndRecomputed(t *testing.T) {
	good := validCert(t)
	bad := *good
	bad.Version++
	counters := obs.NewCounters()
	r := &gatedRunner{verdict: core.Implied}
	s := New(Config{Runner: r.run, Counters: counters})
	p := presetProblem(t, "twostep")

	// Plant a cached entry whose certificate was never verified and does
	// not check out — the shape a corrupted persisted cache would have.
	s.mu.Lock()
	s.cache.Put(p.Key, CachedVerdict{Verdict: core.Implied, Cert: &bad})
	s.mu.Unlock()

	resp, err := s.Infer(p)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	if resp.Source != "cold" {
		t.Fatalf("hit with failing cert served from %q, want cold recompute", resp.Source)
	}
	if r.count() != 1 {
		t.Fatalf("engine ran %d times, want 1 recompute", r.count())
	}
	if counters.Get("serve.cert_rejected") != 1 {
		t.Fatalf("serve.cert_rejected = %d, want 1", counters.Get("serve.cert_rejected"))
	}
	// The recomputed entry replaced the poisoned one.
	if resp2, err := s.Infer(p); err != nil || resp2.Source != "cache" {
		t.Fatalf("repeat after recompute: source=%v err=%v", resp2.Source, err)
	}

	// A stored-but-unverified GOOD certificate verifies on its hit and the
	// entry is served (and marked checked, so the next hit skips the work).
	q := presetProblem(t, "power")
	s.mu.Lock()
	s.cache.Put(q.Key, CachedVerdict{Verdict: core.Implied, Cert: good})
	s.mu.Unlock()
	resp3, err := s.Infer(q)
	if err != nil || resp3.Source != "cache" || resp3.Cert == nil {
		t.Fatalf("unverified good cert: source=%v cert=%v err=%v", resp3.Source, resp3.Cert, err)
	}
	if counters.Get("serve.cert_checked") != 2 {
		t.Fatalf("serve.cert_checked = %d, want 2", counters.Get("serve.cert_checked"))
	}
	s.mu.Lock()
	v, _ := s.cache.Get(q.Key)
	s.mu.Unlock()
	if !v.CertOK {
		t.Fatalf("hit-path verification did not mark the entry checked")
	}
}

func TestLargerBudgetOverwritesCachedUnknown(t *testing.T) {
	r := &gatedRunner{verdict: core.Unknown}
	s := New(Config{Runner: r.run})

	small := presetProblem(t, "gap")
	if resp, err := s.Infer(small); err != nil || resp.Source != "cold" {
		t.Fatalf("first: %v %v", resp.Source, err)
	}
	if resp, err := s.Infer(small); err != nil || resp.Source != "cache" {
		t.Fatalf("same budget repeat: %v %v", resp.Source, err)
	}

	big, err := ParseRequest(Request{Preset: "gap", Rounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if big.Key != small.Key {
		t.Fatalf("budget override changed the canonical key")
	}
	if resp, err := s.Infer(big); err != nil || resp.Source != "cold" {
		t.Fatalf("larger budget should re-run the Unknown: %v %v", resp.Source, err)
	}
	if r.count() != 2 {
		t.Fatalf("engine ran %d times, want 2", r.count())
	}
	// The big run overwrote the entry: a repeat at the big class hits...
	if resp, err := s.Infer(big); err != nil || resp.Source != "cache" {
		t.Fatalf("repeat at larger class: %v %v", resp.Source, err)
	}
	// ...and so does a smaller class — its budget cannot do better.
	tiny, err := ParseRequest(Request{Preset: "gap", Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := s.Infer(tiny); err != nil || resp.Source != "cache" {
		t.Fatalf("smaller class should hit: %v %v", resp.Source, err)
	}
	if r.count() != 2 {
		t.Fatalf("engine ran %d times after hits, want 2", r.count())
	}
}

func TestHTTPCertOptIn(t *testing.T) {
	s := New(Config{RequestTimeout: 5 * time.Second})
	defer s.Shutdown(context.Background())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return m
	}

	if m := post("/infer", `{"preset":"twostep"}`); m["cert"] != nil {
		t.Fatalf("cert served without opt-in: %v", m["cert"])
	}
	m := post("/infer?cert=1", `{"preset":"twostep"}`)
	raw, ok := m["cert"].(map[string]any)
	if !ok {
		t.Fatalf("?cert=1 response carries no certificate: %v", m)
	}
	// The inline certificate must itself decode and check.
	buf, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cert.Decode(buf)
	if err != nil {
		t.Fatalf("inline cert decode: %v", err)
	}
	if err := cert.Check(c); err != nil {
		t.Fatalf("inline cert check: %v", err)
	}
	// Budget-override fields are part of the wire schema.
	if m := post("/infer", `{"preset":"gap","rounds":4,"tuples":64}`); m["verdict"] == nil {
		t.Fatalf("budget override request failed: %v", m)
	}
}

package serve

import (
	"container/list"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/core"
)

// CachedVerdict is what the verdict cache stores per canonical key: the
// verdict itself plus enough provenance to answer a repeat request exactly
// as the cold run did. Caching the verdict is sound because the key is
// canonical (see canon.go): every request mapping to the key poses an
// equivalent problem, and the engines are deterministic for a fixed
// budget, so the cold verdict is THE verdict for the whole class.
type CachedVerdict struct {
	Verdict core.Verdict
	// Winner names the arm that produced the verdict on the cold run
	// ("derivation"/"model-search" for presentations, "chase"/"finite-db"
	// for TD instances, "" for Unknown).
	Winner string
	// Stop records how the cold run's budget cut it short ("deadline",
	// "cancelled"), empty when the engines ran to their own conclusion.
	// Cached so a repeat of an Unknown verdict reports the same stop
	// reason as the run it is standing in for.
	Stop string
	// ColdMS is the engine wall-clock of the cold run, echoed on hits so
	// clients can see what the cache saved them.
	ColdMS float64
	// State is the chase-state snapshot the run captured, set by the runner
	// for td-mode problems. The server moves it into the state cache and
	// strips it before the verdict cache stores the entry — verdicts are
	// small, snapshots hold instances.
	State *chase.State
	// Warm reports that the run warm-started from a cached chase state
	// (Response.Source "warm").
	Warm bool
	// Cert is the verifiable certificate backing a definitive verdict,
	// nil for Unknown verdicts (and for the rare definitive run whose
	// certifying replay itself ran out of budget). The server re-checks
	// it with the independent verifier before storing and again before
	// replaying a hit whose CertOK flag is unset.
	Cert *cert.Certificate
	// CertOK records that Cert passed cert.Check after the cold run. A
	// stored entry with a Cert but CertOK false is re-verified on its
	// next hit and treated as a miss if the check fails.
	CertOK bool
	// Class is the budget class the cold run was answered under (the
	// effective chase limits). An Unknown verdict only stands in for
	// requests whose budget does not exceed this class — a larger-budget
	// request re-runs and overwrites the entry.
	Class budget.Limits
}

// lru is a bounded most-recently-used verdict cache. It is NOT
// self-locking: the server accesses it only under its own mutex, which
// also covers the in-flight table — one lock ordering, no lock juggling.
type lru struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val CachedVerdict
}

func newLRU(cap int) *lru {
	return &lru{cap: cap, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached verdict for key, promoting it to most recent.
func (l *lru) Get(key string) (CachedVerdict, bool) {
	el, ok := l.m[key]
	if !ok {
		return CachedVerdict{}, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full. Returns whether an eviction happened.
func (l *lru) Put(key string, v CachedVerdict) bool {
	if el, ok := l.m[key]; ok {
		l.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = v
		return false
	}
	l.m[key] = l.ll.PushFront(&lruEntry{key: key, val: v})
	if l.ll.Len() <= l.cap {
		return false
	}
	oldest := l.ll.Back()
	l.ll.Remove(oldest)
	delete(l.m, oldest.Value.(*lruEntry).key)
	return true
}

// Len returns the number of cached verdicts.
func (l *lru) Len() int { return l.ll.Len() }

// Delete removes key from the cache, reporting whether it was present.
// Used when a stored certificate fails re-verification on a hit: the
// entry is evicted and the request recomputed.
func (l *lru) Delete(key string) bool {
	el, ok := l.m[key]
	if !ok {
		return false
	}
	l.ll.Remove(el)
	delete(l.m, key)
	return true
}

// stateLRU is the bounded chase-state cache, keyed by the canonical
// dependency-set + goal-antecedent prefix (CanonChaseState). Like the
// verdict lru it is not self-locking: the server accesses it under its own
// mutex. It holds far fewer, far larger entries than the verdict cache —
// each value carries a chased instance — so it gets its own (smaller) cap.
type stateLRU struct {
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type stateEntry struct {
	key string
	st  *chase.State
}

func newStateLRU(cap int) *stateLRU {
	return &stateLRU{cap: cap, ll: list.New(), m: make(map[string]*list.Element)}
}

// Get returns the cached state for key (nil if absent), promoting it.
func (l *stateLRU) Get(key string) *chase.State {
	el, ok := l.m[key]
	if !ok {
		return nil
	}
	l.ll.MoveToFront(el)
	return el.Value.(*stateEntry).st
}

// Put stores st under key when it extends what is already there — complete
// snapshots beat paused ones, deeper paused snapshots (larger-budget runs)
// overwrite shallower ones, and anything else leaves the entry alone.
// Returns whether st was stored.
func (l *stateLRU) Put(key string, st *chase.State) bool {
	if st == nil {
		return false
	}
	if el, ok := l.m[key]; ok {
		e := el.Value.(*stateEntry)
		l.ll.MoveToFront(el)
		if !st.Extends(e.st) {
			return false
		}
		e.st = st
		return true
	}
	l.m[key] = l.ll.PushFront(&stateEntry{key: key, st: st})
	if l.ll.Len() > l.cap {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.m, oldest.Value.(*stateEntry).key)
	}
	return true
}

// Len returns the number of cached states.
func (l *stateLRU) Len() int { return l.ll.Len() }

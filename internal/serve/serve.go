// Package serve is the long-running inference service over the engine
// front-ends — the adaptive portfolio (internal/portfolio, the default
// Runner) or the static facade (internal/core, Config.Engine "race"): an
// HTTP/JSON layer that answers TD-implication queries with the same
// engines as the CLIs, but amortizes work across requests.
//
// Undecidability shapes the serving economics. A single query may burn its
// entire budget and still answer Unknown — that is the honest outcome the
// Main Theorem forces — so repeated work is the one cost a service CAN
// eliminate. Two layers do so:
//
//   - a bounded LRU verdict cache keyed by the CANONICAL form of the
//     problem (canon.go), so a repeat query — even renamed or reordered —
//     is answered without touching an engine;
//   - a singleflight table collapsing identical in-flight queries: N
//     concurrent requests for one problem run ONE chase, and the other
//     N−1 wait for its verdict;
//   - a chase-state cache keyed by the canonical (dependency set, goal
//     antecedents) prefix (CanonChaseState): the chase is goal-conclusion-
//     independent, so queries sharing that prefix share one deterministic
//     chase computation. A td-mode cold run captures its chase state; later
//     queries over the same prefix warm-start from it (Source "warm") with
//     verdicts and Stats identical to a cold run, and concurrent queries
//     over the prefix singleflight on the STATE key too, so a batch of
//     goals over one dependency set chases its fixpoint once. States
//     truncated by meter exhaustion are only reused by strictly larger
//     budget classes (chase.State.ReusableUnder) and are overwritten by the
//     deeper states larger-budget runs produce (chase.State.Extends).
//
// Each cold request runs under a governor derived from the server-wide
// limits via budget.ForRequest: its context is a child of the server's
// root context, so draining cancels every in-flight engine at its next
// checkpoint, and engines close their traces on the way out (the
// partial-trace contract of internal/obs). Every event a request causes is
// stamped with a per-request trace ID, making one server trace separable
// into per-request sub-traces.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/finitemodel"
	"templatedep/internal/obs"
	"templatedep/internal/portfolio"
	"templatedep/internal/relation"
	"templatedep/internal/ring"
	"templatedep/internal/search"
	"templatedep/internal/store"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// Runner executes one cold inference. The server owns timing, caching, and
// deduplication; the runner only turns a problem and a budget into a
// verdict. Injectable so lifecycle tests can gate and count engine runs.
type Runner func(ctx context.Context, p *Problem, b core.Budget) (CachedVerdict, error)

// Config configures a Server. The zero value serves with engine-default
// budgets, a 1024-entry cache, and no event sink.
type Config struct {
	// Limits are the server-wide per-request meter limits. Each request
	// derives its arm governors from them; zero fields fall back to the
	// owning engine's defaults, so Limits{} means "the budgets tdinfer
	// would use".
	Limits budget.Limits
	// RequestTimeout bounds each cold run's wall clock (0 = meters only).
	RequestTimeout time.Duration
	// MaxInflight caps concurrent engine runs; excess cold requests wait
	// for a slot (0 = unlimited). Cache hits and deduplicated followers
	// never consume a slot.
	MaxInflight int
	// CacheSize bounds the verdict cache (entries; 0 = 1024).
	CacheSize int
	// StateCacheSize bounds the chase-state cache (entries; 0 = 64;
	// negative disables state caching). State entries carry chased
	// instances, so the default is much smaller than the verdict cache's.
	StateCacheSize int
	// Workers sets the engines' intra-run parallelism (chase round
	// sharding, finite-db subtree splitting) for every cold run; 0 keeps
	// the engines serial. Results are bit-identical for every value.
	Workers int
	// Sink receives every event of every request, each stamped with the
	// request's trace ID.
	Sink obs.Sink
	// Counters, when set, additionally folds every event through a
	// CounterSink — the source of /metrics.
	Counters *obs.Counters
	// Engine picks the inference front-end when Runner is nil:
	// "portfolio" (or "") serves every cold run through the adaptive
	// portfolio scheduler, "race" through the static fixed-budget
	// front-ends (the pre-portfolio behavior).
	Engine string
	// Runner overrides the engine entry point (nil = resolved from
	// Engine).
	Runner Runner
	// Store, when set, is the disk-backed write-through verdict store:
	// every answered verdict is persisted (internal/store supersession
	// rules apply) and a cache miss consults it before any peer or engine,
	// so a restarted replica answers previously-settled keys from disk
	// (Response.Source "store"). The server reads and writes the store but
	// does not own it — the caller opens and closes it.
	Store *store.Store
	// Peers are the base URLs ("http://host:port") of every replica in the
	// serving ring, this one included. With fewer than two peers the ring
	// is off and every miss computes locally.
	Peers []string
	// Self is this replica's own base URL exactly as it appears in Peers —
	// the identity under which the ring assigns it keys.
	Self string
	// PeerTimeout bounds each peer-fill round trip (0 = 2s). Kept tight on
	// purpose: a slow owner is indistinguishable from a down one, and the
	// local engines are always available as the fallback.
	PeerTimeout time.Duration
	// PeerClient overrides the HTTP client used for peer fills (nil = a
	// default client bounded by PeerTimeout). Injectable for tests.
	PeerClient *http.Client
}

const (
	defaultCacheSize      = 1024
	defaultStateCacheSize = 64
	defaultPeerTimeout    = 2 * time.Second
)

// Problem is a parsed, canonicalized request.
type Problem struct {
	// Mode is "presentation" or "td".
	Mode string
	// Pres is set in presentation mode.
	Pres *words.Presentation
	// Deps and Goal are set in td mode.
	Deps []*td.TD
	Goal *td.TD
	// Key is the full canonical form — the cache and singleflight key.
	Key string
	// Hash is the short digest of Key used on the wire and in events.
	Hash string
	// StateKey is the chase-state cache key (CanonChaseState), set for td
	// problems; queries sharing it share one chase computation.
	StateKey string
	// Limits carries the request's per-meter budget overrides (zero
	// fields defer to the server-wide limits). Deliberately NOT part of
	// the canonical Key: the problem class is the same whatever budget a
	// client brings — the budget only decides whether a cached Unknown
	// verdict may stand in for the request (CachedVerdict.Class).
	Limits budget.Limits
	// Wire is the request as it arrived, kept so a peer fill can forward
	// the problem verbatim to the replica that owns its key.
	Wire Request
	// LocalOnly marks a request that must be answered without consulting
	// peers (set for incoming peer fills — see peerFillHeader): two
	// replicas with disagreeing rings degrade to local computes instead of
	// forwarding a request back and forth.
	LocalOnly bool
}

// Request is the JSON body of POST /infer. Exactly one problem form must
// be present: a preset name, an explicit presentation, or a TD instance.
type Request struct {
	// Preset names a built-in presentation family (words.Preset).
	Preset string `json:"preset,omitempty"`
	// Alphabet/A0/Zero/Equations spell out a presentation. Equations use
	// the "x y = z" notation of the CLIs.
	Alphabet  []string `json:"alphabet,omitempty"`
	A0        string   `json:"a0,omitempty"`
	Zero      string   `json:"zero,omitempty"`
	Equations []string `json:"equations,omitempty"`
	// Schema/Deps/Goal spell out a TD instance in td.Parse notation.
	Schema []string `json:"schema,omitempty"`
	Deps   []string `json:"deps,omitempty"`
	Goal   string   `json:"goal,omitempty"`
	// Rounds/Tuples/Nodes/Words override the server-wide meter limits for
	// this request only (0 = server default). A request whose budget class
	// exceeds the one a cached Unknown verdict was computed under re-runs
	// the engines and overwrites the entry — bigger budgets may settle
	// what smaller ones could not.
	Rounds int `json:"rounds,omitempty"`
	Tuples int `json:"tuples,omitempty"`
	Nodes  int `json:"nodes,omitempty"`
	Words  int `json:"words,omitempty"`
}

// Response is the JSON body of a successful POST /infer.
type Response struct {
	// Req is the request's trace ID — grep the server's JSONL trace for
	// this value to see everything the request caused.
	Req string `json:"req"`
	// Key is the canonical problem digest; equal keys got equal verdicts.
	Key string `json:"key"`
	// Mode is "presentation" or "td".
	Mode string `json:"mode"`
	// Source says how the verdict was obtained: "cold" (an engine ran),
	// "warm" (an engine ran, warm-started from the chase-state cache),
	// "cache" (verdict cache), "dedup" (collapsed into an identical
	// in-flight run), "store" (disk-backed verdict store — a restart-warm
	// hit), or "peer" (certificate-verified fill from the ring owner).
	Source string `json:"source"`
	// Verdict is "implied", "finite-counterexample", or "unknown".
	Verdict core.Verdict `json:"verdict"`
	// Winner names the arm that settled the cold run, when one did.
	Winner string `json:"winner,omitempty"`
	// Stop reports how the cold run's budget cut it short, if it did.
	Stop string `json:"stop,omitempty"`
	// ElapsedMS is this request's wall clock; ColdMS is the engine wall
	// clock of the run that produced the verdict (equal for cold
	// requests, the amount saved for cache/dedup ones).
	ElapsedMS float64 `json:"elapsed_ms"`
	ColdMS    float64 `json:"cold_ms"`
	// Cert is the verifiable certificate backing a definitive verdict,
	// checked by the server before it was stored. The HTTP layer strips
	// it unless the client asked (POST /infer?cert=1); Infer always fills
	// it when one exists.
	Cert *cert.Certificate `json:"cert,omitempty"`
}

// call is one in-flight cold run; followers for the same key block on done.
type call struct {
	done chan struct{}
	val  CachedVerdict
	err  error
	// dups counts followers collapsed into this run (observable by tests
	// and the dedup events).
	dups atomic.Int64
}

// stateCall is one in-flight chase-state computation: the first cold run
// over a state key becomes its leader; runs for OTHER goals sharing the key
// wait on done and then warm-start from whatever state the leader
// published. (Identical goals never get here — the verdict singleflight
// collapses them first.)
type stateCall struct {
	done chan struct{}
}

// Server answers inference requests. Create with New, serve via Handler,
// stop via BeginDrain + Shutdown.
type Server struct {
	cfg        Config
	base       []obs.Sink
	rootCtx    context.Context
	rootCancel context.CancelFunc
	sem        chan struct{}
	ring       *ring.Ring
	peerClient *http.Client

	mu          sync.Mutex
	cache       *lru
	states      *stateLRU
	inflight    map[string]*call
	stateFlight map[string]*stateCall
	draining    bool
	drainN      int

	// wg tracks cold engine runs; Shutdown waits on it.
	wg           sync.WaitGroup
	reqSeq       atomic.Int64
	engineNow    atomic.Int64
	enginePeak   atomic.Int64
	requestsSeen atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = defaultCacheSize
	}
	if cfg.StateCacheSize == 0 {
		cfg.StateCacheSize = defaultStateCacheSize
	}
	if cfg.Runner == nil {
		if cfg.Engine == "race" {
			cfg.Runner = CoreRunner
		} else {
			cfg.Runner = PortfolioRunner
		}
	}
	var base []obs.Sink
	if cfg.Sink != nil {
		base = append(base, cfg.Sink)
	}
	if cfg.Counters != nil {
		base = append(base, obs.NewCounterSink(cfg.Counters))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		base:       base,
		rootCtx:    ctx,
		rootCancel: cancel,
		cache:      newLRU(cfg.CacheSize),
		inflight:   make(map[string]*call),
	}
	if cfg.StateCacheSize > 0 {
		s.states = newStateLRU(cfg.StateCacheSize)
		s.stateFlight = make(map[string]*stateCall)
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	if len(cfg.Peers) > 1 && cfg.Self != "" {
		s.ring = ring.New(cfg.Peers, 0)
		s.peerClient = cfg.PeerClient
		if s.peerClient == nil {
			timeout := cfg.PeerTimeout
			if timeout <= 0 {
				timeout = defaultPeerTimeout
			}
			s.peerClient = &http.Client{Timeout: timeout}
		}
	}
	return s
}

// emit fans a serve-layer event (no request attribution) to every sink.
func (s *Server) emit(e obs.Event) {
	e.Src = "serve"
	for _, d := range s.base {
		d.Event(e)
	}
}

// reqSink stamps the request trace ID on every event passing through,
// whatever layer emitted it, and fans out to the server's sinks. This is
// what makes a multi-request server trace separable: grep for one req
// value and the lines are exactly that request's sub-trace.
type reqSink struct {
	id  string
	dst []obs.Sink
}

func (r reqSink) Event(e obs.Event) {
	e.Req = r.id
	for _, d := range r.dst {
		d.Event(e)
	}
}

// pick resolves one meter limit: the server-wide value when set, the
// owning engine's default otherwise.
func pick(cfgv, def int) int {
	if cfgv > 0 {
		return cfgv
	}
	return def
}

// limitsFor merges the request's per-meter budget overrides over the
// server-wide limits; zero override fields fall through to the config.
func (s *Server) limitsFor(p *Problem) budget.Limits {
	l := s.cfg.Limits
	if p.Limits.Rounds > 0 {
		l.Rounds = p.Limits.Rounds
	}
	if p.Limits.Tuples > 0 {
		l.Tuples = p.Limits.Tuples
	}
	if p.Limits.Nodes > 0 {
		l.Nodes = p.Limits.Nodes
	}
	if p.Limits.Words > 0 {
		l.Words = p.Limits.Words
	}
	return l
}

// chaseLimits resolves the per-request chase meter limits — the budget
// class every td-mode run executes under, which also gates reuse of
// budget-stopped chase states (chase.State.ReusableUnder).
func (s *Server) chaseLimits(p *Problem) budget.Limits {
	l := s.limitsFor(p)
	return budget.Limits{
		Rounds: pick(l.Rounds, chase.DefaultLimits.Rounds),
		Tuples: pick(l.Tuples, chase.DefaultLimits.Tuples),
	}
}

// requestClass is the fully resolved budget class of a request: every
// meter at its effective value (override, server config, or engine
// default). Stored with Unknown verdicts so a later, strictly larger
// request is treated as a miss (classExceeds) and overwrites the entry.
func (s *Server) requestClass(p *Problem) budget.Limits {
	l := s.limitsFor(p)
	c := s.chaseLimits(p)
	c.Nodes = pick(l.Nodes, search.DefaultLimits.Nodes)
	c.Words = pick(l.Words, words.DefaultLimits.Words)
	return c
}

// classExceeds reports whether budget class a exceeds b on any meter —
// the condition under which a may settle a problem b answered Unknown.
func classExceeds(a, b budget.Limits) bool {
	return a.Rounds > b.Rounds || a.Tuples > b.Tuples ||
		a.Nodes > b.Nodes || a.Words > b.Words
}

// budgetFor builds the per-request core budget: one request-scoped
// governor rooted at the server context (budget.ForRequest), one child
// governor per arm carrying the derived limits, and the request-stamping
// sink threaded through every layer. Certify is always on — the service
// never stores a definitive verdict without a checkable proof.
func (s *Server) budgetFor(p *Problem, sink obs.Sink) (core.Budget, *budget.Governor, context.CancelFunc) {
	l := s.limitsFor(p)
	g, cancel := budget.ForRequest(s.rootCtx, s.cfg.RequestTimeout, l)
	b := core.Budget{Governor: g, Sink: sink, Certify: true}
	b.Chase = chase.DefaultOptions()
	b.Chase.Governor = g.Child(s.chaseLimits(p))
	b.Chase.Workers = s.cfg.Workers
	b.FiniteDB.Workers = s.cfg.Workers
	b.Closure.Governor = g.Child(budget.Limits{
		Words: pick(l.Words, words.DefaultLimits.Words),
	})
	b.ModelSearch.Governor = g.Child(budget.Limits{
		Nodes: pick(l.Nodes, search.DefaultLimits.Nodes),
	})
	b.FiniteDB.Governor = g.Child(budget.Limits{
		Nodes: pick(l.Nodes, finitemodel.DefaultLimits.Nodes),
	})
	return b, g, cancel
}

// CoreRunner is the production Runner: the racing front-end for
// presentations (first definitive arm wins), the sequential dual run for
// TD instances.
func CoreRunner(_ context.Context, p *Problem, b core.Budget) (CachedVerdict, error) {
	if p.Pres != nil {
		res, err := core.AnalyzePresentationRace(p.Pres, b)
		if err != nil {
			return CachedVerdict{}, err
		}
		return CachedVerdict{Verdict: res.Verdict, Winner: res.Winner, Cert: res.Cert()}, nil
	}
	res, err := core.Infer(p.Deps, p.Goal, b)
	if err != nil {
		return CachedVerdict{}, err
	}
	winner := ""
	switch res.Verdict {
	case core.Implied:
		winner = "chase"
	case core.FiniteCounterexample:
		winner = "finite-db"
	}
	v := CachedVerdict{Verdict: res.Verdict, Winner: winner, Cert: res.Cert()}
	if res.Chase != nil {
		v.State = res.Chase.State
		v.Warm = res.Chase.WarmStarted
	}
	return v, nil
}

// PortfolioRunner is the default Runner: every arm races under one
// adaptive portfolio governor, with meter headroom reallocated between
// arms from live progress signals. The chase-state cache keeps working
// unchanged — the chase arm threads the request's warm state into its
// first lease and its final lease's snapshot back out.
func PortfolioRunner(_ context.Context, p *Problem, b core.Budget) (CachedVerdict, error) {
	opt := b.PortfolioOptions()
	var res *portfolio.Result
	var err error
	if p.Pres != nil {
		res, err = portfolio.AnalyzePresentation(p.Pres, opt)
	} else {
		res, err = portfolio.Infer(p.Deps, p.Goal, opt)
	}
	if err != nil {
		return CachedVerdict{}, err
	}
	v := CachedVerdict{Verdict: core.VerdictOf(res.Verdict), Winner: res.Winner, Cert: res.Cert()}
	if res.Chase != nil {
		v.State = res.Chase.State
		// The portfolio warm-carries its own snapshots between leases;
		// a request only counts as "warm" when the state came from the
		// service's cache, not from intra-run carry.
		v.Warm = res.Chase.WarmStarted && b.Chase.WarmState != nil
	}
	return v, nil
}

// ParseRequest validates a wire request and canonicalizes it into a
// Problem.
func ParseRequest(req Request) (*Problem, error) {
	p, err := parseProblem(req)
	if err != nil {
		return nil, err
	}
	p.Limits = budget.Limits{Rounds: req.Rounds, Tuples: req.Tuples,
		Nodes: req.Nodes, Words: req.Words}
	p.Wire = req
	return p, nil
}

func parseProblem(req Request) (*Problem, error) {
	forms := 0
	if req.Preset != "" {
		forms++
	}
	if len(req.Equations) > 0 || len(req.Alphabet) > 0 {
		forms++
	}
	if req.Goal != "" || len(req.Schema) > 0 || len(req.Deps) > 0 {
		forms++
	}
	if forms != 1 {
		return nil, fmt.Errorf("serve: request must carry exactly one of preset, equations, or schema/deps/goal (got %d forms)", forms)
	}
	switch {
	case req.Preset != "":
		p, err := words.Preset(req.Preset)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		return presentationProblem(p), nil
	case len(req.Equations) > 0 || len(req.Alphabet) > 0:
		a, err := words.NewAlphabet(req.Alphabet, req.A0, req.Zero)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		eqs := make([]words.Equation, 0, len(req.Equations))
		for _, line := range req.Equations {
			e, err := words.ParseEquation(a, line)
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			eqs = append(eqs, e)
		}
		p, err := words.NewPresentation(a, eqs)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		return presentationProblem(p), nil
	default:
		if req.Goal == "" || len(req.Schema) == 0 {
			return nil, fmt.Errorf("serve: td requests need schema and goal")
		}
		schema, err := relation.NewSchema(req.Schema)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		deps, err := td.ParseSet(schema, strings.Join(req.Deps, "\n"))
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		goal, err := td.Parse(schema, req.Goal, "D0")
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		key := CanonInference(deps, goal)
		return &Problem{Mode: "td", Deps: deps, Goal: goal, Key: key, Hash: keyDigest(key),
			StateKey: CanonChaseState(deps, goal)}, nil
	}
}

func presentationProblem(p *words.Presentation) *Problem {
	// Key the zero-completed form: the reduction applies WithZeroEquations
	// before chasing, so requests that differ only in whether they spell
	// the zero equations out pose the same problem and must share a line.
	key := CanonPresentation(p.WithZeroEquations())
	return &Problem{Mode: "presentation", Pres: p, Key: key, Hash: keyDigest(key)}
}

// ErrDraining is returned (as 503 on the wire) once BeginDrain was called.
var ErrDraining = errors.New("serve: draining")

// Infer answers one parsed problem: cache, then singleflight, then a cold
// governed run. It is the transport-independent core of the HTTP handler.
func (s *Server) Infer(p *Problem) (Response, error) {
	start := time.Now()
	id := "r" + strconv.FormatInt(s.reqSeq.Add(1), 10)
	s.requestsSeen.Add(1)
	sink := reqSink{id: id, dst: s.base}
	resp := Response{Req: id, Key: p.Hash, Mode: p.Mode}
	finish := func(src string, v CachedVerdict) (Response, error) {
		resp.Source = src
		resp.Verdict = v.Verdict
		resp.Winner = v.Winner
		resp.Stop = v.Stop
		resp.ColdMS = v.ColdMS
		resp.Cert = v.Cert
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
		sink.Event(obs.Event{Type: obs.EvServeRequest, Src: "serve",
			Key: p.Hash, Source: src, Verdict: v.Verdict.String()})
		return resp, nil
	}
	emitCertCheck := func(kind, verdict string) {
		sink.Event(obs.Event{Type: obs.EvCertCheck, Src: "serve",
			Key: p.Hash, Source: kind, Verdict: verdict})
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Response{}, ErrDraining
	}
	// rejectedKind remembers a hit whose stored certificate failed
	// re-verification: the entry was evicted and the request falls
	// through to a recompute; the cert_check event is emitted once the
	// lock is released.
	rejectedKind := ""
	if v, ok := s.cache.Get(p.Key); ok {
		switch {
		case v.Verdict == core.Unknown && classExceeds(s.requestClass(p), v.Class):
			// A strictly larger budget may settle what this entry's class
			// could not: treat the hit as a miss and let the cold run
			// overwrite it.
		case v.Cert != nil && !v.CertOK:
			// The stored certificate was never (successfully) verified —
			// re-check before replaying the verdict, evict on failure (from
			// the disk store too: a proof this process cannot verify must
			// not answer the next process either).
			kind := string(v.Cert.Kind)
			if err := cert.Check(v.Cert); err != nil {
				s.cache.Delete(p.Key)
				if s.cfg.Store != nil {
					s.cfg.Store.Delete(p.Key)
				}
				rejectedKind = kind
			} else {
				v.CertOK = true
				s.cache.Put(p.Key, v)
				s.mu.Unlock()
				emitCertCheck(kind, "ok")
				sink.Event(obs.Event{Type: obs.EvServeCacheHit, Src: "serve", Key: p.Hash})
				return finish("cache", v)
			}
		default:
			s.mu.Unlock()
			sink.Event(obs.Event{Type: obs.EvServeCacheHit, Src: "serve", Key: p.Hash})
			return finish("cache", v)
		}
	}
	if c, ok := s.inflight[p.Key]; ok {
		c.dups.Add(1)
		s.mu.Unlock()
		if rejectedKind != "" {
			emitCertCheck(rejectedKind, "rejected")
		}
		<-c.done
		if c.err != nil {
			return Response{}, c.err
		}
		sink.Event(obs.Event{Type: obs.EvServeDedup, Src: "serve", Key: p.Hash})
		return finish("dedup", c.val)
	}
	c := &call{done: make(chan struct{})}
	s.inflight[p.Key] = c
	s.wg.Add(1)
	s.mu.Unlock()
	if rejectedKind != "" {
		emitCertCheck(rejectedKind, "rejected")
	}

	// The leader stays on the drain WaitGroup through its event emission,
	// so a graceful Shutdown's serve_shutdown line lands after every cold
	// request's serve_request line.
	defer s.wg.Done()
	var src string
	c.val, src, c.err = s.lead(p, sink)
	s.mu.Lock()
	delete(s.inflight, p.Key)
	if c.err == nil {
		s.cache.Put(p.Key, c.val)
	}
	s.mu.Unlock()
	close(c.done)
	if c.err != nil {
		return Response{}, c.err
	}
	if src != "store" {
		// Write-through: everything this replica answered — cold, warm,
		// and peer-filled verdicts alike — lands on disk, so a restart
		// re-answers it from the store (src "store" was already there).
		s.storePut(p, c.val)
	}
	return finish(src, c.val)
}

// lead runs a singleflight leader's lookup ladder below the in-memory
// cache: disk store, then ring owner, then a local engine run. Returns the
// verdict and its Response.Source.
func (s *Server) lead(p *Problem, sink obs.Sink) (CachedVerdict, string, error) {
	if v, ok := s.storeGet(p, sink); ok {
		return v, "store", nil
	}
	if v, ok := s.peerFill(p, sink); ok {
		return v, "peer", nil
	}
	v, err := s.runCold(p, sink)
	if err != nil {
		return CachedVerdict{}, "", err
	}
	src := "cold"
	if v.Warm {
		src = "warm"
		sink.Event(obs.Event{Type: obs.EvServeWarm, Src: "serve",
			Key: keyDigest(p.StateKey)})
	}
	return v, src, nil
}

// leaseState resolves how a cold run interacts with the chase-state cache.
// A reusable complete state warm-starts the run immediately (no flight
// needed — nothing is left to compute for the key). Otherwise the first run
// over the key leads a state computation, possibly seeded by a reusable
// paused state; later runs for OTHER goals sharing the key follow, waiting
// for the leader's published state. Budget-stopped states whose class is
// not strictly below this request's are skipped (ReusableUnder).
func (s *Server) leaseState(p *Problem) (warm *chase.State, flight *stateCall, lead bool) {
	if s.states == nil || p.StateKey == "" {
		return nil, nil, false
	}
	limits := s.chaseLimits(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.states.Get(p.StateKey); st != nil && st.ReusableUnder(limits) {
		if st.Complete() {
			return st, nil, false
		}
		warm = st
	}
	if c, ok := s.stateFlight[p.StateKey]; ok {
		return nil, c, false
	}
	s.stateFlight[p.StateKey] = &stateCall{done: make(chan struct{})}
	return warm, nil, true
}

// closeStateFlight releases the state-key singleflight entry, waking
// followers (who then re-read the state cache). Only the leader calls it.
func (s *Server) closeStateFlight(key string) {
	s.mu.Lock()
	c := s.stateFlight[key]
	delete(s.stateFlight, key)
	s.mu.Unlock()
	if c != nil {
		close(c.done)
	}
}

// runCold executes the engines for one leader request.
func (s *Server) runCold(p *Problem, sink obs.Sink) (CachedVerdict, error) {
	warm, flight, lead := s.leaseState(p)
	if lead {
		defer s.closeStateFlight(p.StateKey)
	}
	if flight != nil {
		// Follower of an in-flight state computation: wait for its leader
		// to publish, then warm-start from whatever landed in the cache.
		// The wait happens before any semaphore slot is held and the leader
		// never waits on followers, so this cannot deadlock.
		select {
		case <-flight.done:
		case <-s.rootCtx.Done():
			return CachedVerdict{}, s.rootCtx.Err()
		}
		s.mu.Lock()
		if st := s.states.Get(p.StateKey); st != nil && st.ReusableUnder(s.chaseLimits(p)) {
			warm = st
		}
		s.mu.Unlock()
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-s.rootCtx.Done():
			return CachedVerdict{}, s.rootCtx.Err()
		}
	}
	n := s.engineNow.Add(1)
	for {
		peak := s.enginePeak.Load()
		if n <= peak || s.enginePeak.CompareAndSwap(peak, n) {
			break
		}
	}
	defer s.engineNow.Add(-1)

	b, g, cancel := s.budgetFor(p, sink)
	defer cancel()
	if s.states != nil && p.StateKey != "" {
		b.Chase.CaptureState = true
		b.Chase.WarmState = warm
	}
	t0 := time.Now()
	v, err := s.cfg.Runner(g.Context(), p, b)
	if err != nil {
		return CachedVerdict{}, err
	}
	if v.State != nil && s.states != nil && p.StateKey != "" {
		s.mu.Lock()
		s.states.Put(p.StateKey, v.State)
		s.mu.Unlock()
	}
	// The snapshot lives in the state cache only: the verdict cache and
	// dedup followers get a State-free value.
	v.State = nil
	v.ColdMS = float64(time.Since(t0)) / float64(time.Millisecond)
	if o := g.Interrupted(); o.Stopped() {
		v.Stop = o.String()
	}
	// Verify the engine's certificate with the independent checker before
	// the verdict is stored or served. A rejection never trusts the proof
	// — the cert is dropped — but keeps the verdict: the engines are the
	// soundness anchor, the certificate is the audit trail.
	if v.Cert != nil {
		kind := string(v.Cert.Kind)
		if cerr := cert.Check(v.Cert); cerr != nil {
			v.Cert = nil
			sink.Event(obs.Event{Type: obs.EvCertCheck, Src: "serve",
				Key: p.Hash, Source: kind, Verdict: "rejected"})
		} else {
			v.CertOK = true
			sink.Event(obs.Event{Type: obs.EvCertCheck, Src: "serve",
				Key: p.Hash, Source: kind, Verdict: "ok"})
		}
	}
	v.Class = s.requestClass(p)
	return v, nil
}

// BeginDrain flips the server into draining mode: subsequent requests are
// refused with ErrDraining while in-flight ones run to completion. Returns
// the number of engine runs that were in flight at the flip (idempotent —
// repeat calls return the first flip's count).
func (s *Server) BeginDrain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		s.drainN = int(s.engineNow.Load())
	}
	return s.drainN
}

// Shutdown drains the server: it waits for every in-flight engine run to
// finish, cancelling the server root context if ctx expires first so
// governed engines stop at their next checkpoint (closing their traces —
// the partial-trace contract), then emits the serve_shutdown event. The
// returned error is ctx's error when the drain needed the cancellation
// push, nil for a fully graceful drain.
func (s *Server) Shutdown(ctx context.Context) error {
	n := s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.rootCancel()
		<-done
		err = ctx.Err()
	}
	s.rootCancel()
	s.emit(obs.Event{Type: obs.EvServeShutdown, N: n})
	return err
}

// Stats is the /metrics gauge block (counters live in Config.Counters).
type Stats struct {
	Requests     int64 `json:"requests"`
	CacheEntries int   `json:"cache_entries"`
	StateEntries int   `json:"state_entries"`
	Inflight     int64 `json:"inflight"`
	InflightPeak int64 `json:"inflight_peak"`
	Draining     bool  `json:"draining"`
	// StoreRecords is the disk store's live record count (0 when the
	// server runs without a store); Peers is the ring size (0 when
	// sharding is off).
	StoreRecords int `json:"store_records,omitempty"`
	Peers        int `json:"peers,omitempty"`
}

// Stats snapshots the server gauges.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	entries := s.cache.Len()
	stateEntries := 0
	if s.states != nil {
		stateEntries = s.states.Len()
	}
	draining := s.draining
	s.mu.Unlock()
	st := Stats{
		Requests:     s.requestsSeen.Load(),
		CacheEntries: entries,
		StateEntries: stateEntries,
		Inflight:     s.engineNow.Load(),
		InflightPeak: s.enginePeak.Load(),
		Draining:     draining,
	}
	if s.cfg.Store != nil {
		st.StoreRecords = s.cfg.Store.Len()
	}
	if s.ring != nil {
		st.Peers = s.ring.Len()
	}
	return st
}

// dupsFor reports how many followers are collapsed into the in-flight run
// for key (testing hook for the singleflight path).
func (s *Server) dupsFor(key string) int {
	s.mu.Lock()
	c := s.inflight[key]
	s.mu.Unlock()
	if c == nil {
		return 0
	}
	return int(c.dups.Load())
}

// Handler returns the HTTP surface: POST /infer, GET /healthz, GET
// /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := ParseRequest(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	// An incoming peer fill must be answered from local resources only —
	// never re-forwarded (see peerFillHeader).
	p.LocalOnly = r.Header.Get(peerFillHeader) == "1"
	resp, err := s.Infer(p)
	if r.URL.Query().Get("cert") != "1" {
		// Certificates can dwarf the verdict they back; clients opt in
		// with POST /infer?cert=1.
		resp.Cert = nil
	}
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	// A draining replica answers 503 so load balancers and ring peers
	// stop routing to it while its in-flight runs finish; /infer is
	// already refusing with ErrDraining by then.
	if st.Draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{"gauges": s.Stats()}
	if s.cfg.Counters != nil {
		out["counters"] = s.cfg.Counters.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

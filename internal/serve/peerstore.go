package serve

import (
	"bytes"
	"encoding/json"
	"net/http"

	"templatedep/internal/cert"
	"templatedep/internal/core"
	"templatedep/internal/obs"
	"templatedep/internal/store"
)

// This file is the server's sharded/persistent tier: the disk-backed
// verdict store (restart-warm hits, write-through puts) and consistent-hash
// peer fill (a local miss whose canonical key another replica owns is
// forwarded there, and its answer adopted only after the certificate it
// returns is re-verified HERE, against OUR parse of the problem the
// certificate itself embeds). The leader's full lookup ladder is
// cache → store → peer → engine; every rung below the cache runs inside
// the singleflight, so concurrent identical requests cost one store read,
// one peer round trip, or one engine run — never N.

// peerFillHeader marks a forwarded peer-fill request. An owner answering
// one never forwards again, whatever its own ring says — two replicas with
// disagreeing peer lists must degrade to local computes, not ping-pong a
// request between each other.
const peerFillHeader = "X-TD-Peer-Fill"

// recordOf converts a cached verdict into its durable form.
func recordOf(key string, v CachedVerdict) store.Record {
	rec := store.Record{
		Key:     key,
		Verdict: v.Verdict.String(),
		Winner:  v.Winner,
		Stop:    v.Stop,
		ColdMS:  v.ColdMS,
		Class: store.Class{Rounds: v.Class.Rounds, Tuples: v.Class.Tuples,
			Nodes: v.Class.Nodes, Words: v.Class.Words},
	}
	if v.Cert != nil && v.CertOK {
		if b, err := json.Marshal(v.Cert); err == nil {
			rec.Cert = b
		}
	}
	return rec
}

// verdictOf converts a durable record back into a cacheable verdict. The
// certificate is decoded but NOT yet trusted: CertOK stays false, so the
// store-hit path (and, failing that, the cache-hit path) re-verifies it
// before the verdict is replayed — a restart answers from disk, but never
// on the dead process's say-so alone.
func verdictOf(rec store.Record) (CachedVerdict, bool) {
	var vd core.Verdict
	if err := vd.UnmarshalText([]byte(rec.Verdict)); err != nil {
		return CachedVerdict{}, false
	}
	v := CachedVerdict{
		Verdict: vd,
		Winner:  rec.Winner,
		Stop:    rec.Stop,
		ColdMS:  rec.ColdMS,
	}
	v.Class.Rounds = rec.Class.Rounds
	v.Class.Tuples = rec.Class.Tuples
	v.Class.Nodes = rec.Class.Nodes
	v.Class.Words = rec.Class.Words
	if len(rec.Cert) > 0 {
		var c cert.Certificate
		if err := json.Unmarshal(rec.Cert, &c); err != nil {
			return CachedVerdict{}, false
		}
		v.Cert = &c
	}
	return v, true
}

// storeGet answers a leader's miss from the disk store when it can: a
// definitive record whose certificate (if any) re-verifies, or an unknown
// record whose budget class covers this request's. A certificate that
// fails re-verification tombstones the record — disk content is an input
// here, not an authority.
func (s *Server) storeGet(p *Problem, sink obs.Sink) (CachedVerdict, bool) {
	if s.cfg.Store == nil {
		return CachedVerdict{}, false
	}
	rec, ok := s.cfg.Store.Get(p.Key)
	if !ok {
		return CachedVerdict{}, false
	}
	v, ok := verdictOf(rec)
	if !ok {
		return CachedVerdict{}, false
	}
	if v.Verdict == core.Unknown && classExceeds(s.requestClass(p), v.Class) {
		// This request's budget exceeds the class the stored unknown was
		// computed under — a live run may settle it (and will overwrite
		// the record through the write-through path).
		return CachedVerdict{}, false
	}
	if v.Cert != nil {
		kind := string(v.Cert.Kind)
		if err := cert.Check(v.Cert); err != nil {
			s.cfg.Store.Delete(p.Key)
			sink.Event(obs.Event{Type: obs.EvCertCheck, Src: "serve",
				Key: p.Hash, Source: kind, Verdict: "rejected"})
			return CachedVerdict{}, false
		}
		v.CertOK = true
		sink.Event(obs.Event{Type: obs.EvCertCheck, Src: "serve",
			Key: p.Hash, Source: kind, Verdict: "ok"})
	}
	sink.Event(obs.Event{Type: obs.EvServeStoreHit, Src: "serve", Key: p.Hash})
	return v, true
}

// storePut writes an answered verdict through to disk. Store errors are
// swallowed: a full disk must not fail a request the engines already
// answered (the store's own events record what was and wasn't written).
func (s *Server) storePut(p *Problem, v CachedVerdict) {
	if s.cfg.Store == nil {
		return
	}
	_, _ = s.cfg.Store.Put(recordOf(p.Key, v))
}

// peerFill forwards a local miss to the ring owner of its canonical key
// and adopts the answer only when it comes back certificate-complete:
// definitive, carrying a certificate that (a) passes the independent
// checker and (b) embeds a problem THIS replica canonicalizes to the same
// key. Anything less — peer down, unknown verdict, missing or rejected
// certificate — falls back to a local engine run; sharding is a fast path,
// never a correctness dependency.
func (s *Server) peerFill(p *Problem, sink obs.Sink) (CachedVerdict, bool) {
	if s.ring == nil || p.LocalOnly {
		return CachedVerdict{}, false
	}
	owner := s.ring.Owner(p.Key)
	if owner == "" || owner == s.cfg.Self {
		return CachedVerdict{}, false
	}
	fill := func(verdict string) {
		sink.Event(obs.Event{Type: obs.EvServePeerFill, Src: "serve",
			Key: p.Hash, Source: owner, Verdict: verdict})
	}
	body, err := json.Marshal(p.Wire)
	if err != nil {
		fill("down")
		return CachedVerdict{}, false
	}
	req, err := http.NewRequestWithContext(s.rootCtx, http.MethodPost,
		owner+"/infer?cert=1", bytes.NewReader(body))
	if err != nil {
		fill("down")
		return CachedVerdict{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peerFillHeader, "1")
	httpResp, err := s.peerClient.Do(req)
	if err != nil {
		fill("down")
		return CachedVerdict{}, false
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		fill("down")
		return CachedVerdict{}, false
	}
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		fill("down")
		return CachedVerdict{}, false
	}
	if resp.Verdict == core.Unknown || resp.Cert == nil {
		// An unknown verdict is a budget report about the PEER's budget;
		// adopting it would let one replica's limits answer for another's.
		// A definitive verdict without a certificate is just a claim.
		fill("unknown")
		return CachedVerdict{}, false
	}
	// The certificate embeds the problem it proves. Re-parse it with OUR
	// canonicalizer: only if it lands on the same canonical key does the
	// proof speak for this request. Then re-check the proof itself. A peer
	// can therefore be wrong, stale, or hostile — never believed.
	kind := string(resp.Cert.Kind)
	cp := resp.Cert.Problem
	certProblem, err := parseProblem(Request{
		Alphabet: cp.Alphabet, A0: cp.A0, Zero: cp.Zero, Equations: cp.Equations,
		Schema: cp.Schema, Deps: cp.Deps, Goal: cp.Goal,
	})
	if err != nil || certProblem.Key != p.Key ||
		resp.Cert.Verdict != resp.Verdict.String() || cert.Check(resp.Cert) != nil {
		sink.Event(obs.Event{Type: obs.EvCertCheck, Src: "serve",
			Key: p.Hash, Source: kind, Verdict: "rejected"})
		fill("rejected")
		return CachedVerdict{}, false
	}
	sink.Event(obs.Event{Type: obs.EvCertCheck, Src: "serve",
		Key: p.Hash, Source: kind, Verdict: "ok"})
	fill("ok")
	return CachedVerdict{
		Verdict: resp.Verdict,
		Winner:  resp.Winner,
		ColdMS:  resp.ColdMS,
		Cert:    resp.Cert,
		CertOK:  true,
		Class:   s.requestClass(p),
	}, true
}

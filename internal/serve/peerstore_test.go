package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"templatedep/internal/core"
	"templatedep/internal/obs"
	"templatedep/internal/store"
)

func tempVerdictStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.DefaultPath(dir), store.Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreWriteThroughAndRestartWarm is the persistence acceptance
// property: a verdict answered before a restart is answered after it from
// the disk store (Source "store"), certificate intact, without an engine
// run.
func TestStoreWriteThroughAndRestartWarm(t *testing.T) {
	dir := t.TempDir()
	st := tempVerdictStore(t, dir)

	s1 := New(Config{Store: st, RequestTimeout: 10 * time.Second})
	p := presetProblem(t, "twostep")
	cold, err := s1.Infer(p)
	if err != nil || cold.Source != "cold" || cold.Cert == nil {
		t.Fatalf("cold: source=%v cert=%v err=%v", cold.Source, cold.Cert, err)
	}
	s1.Shutdown(context.Background())
	if rec, ok := st.Get(p.Key); !ok || rec.Verdict != "implied" || len(rec.Cert) == 0 {
		t.Fatalf("write-through record missing or certless: %+v ok=%v", rec, ok)
	}
	st.Close()

	// "Restart": a fresh server over a fresh open of the same log, with a
	// runner that must never fire.
	st2 := tempVerdictStore(t, dir)
	counters := obs.NewCounters()
	r := &gatedRunner{verdict: core.Unknown}
	s2 := New(Config{Store: st2, Runner: r.run, Counters: counters})
	defer s2.Shutdown(context.Background())

	warm, err := s2.Infer(presetProblem(t, "twostep"))
	if err != nil {
		t.Fatalf("restart infer: %v", err)
	}
	if warm.Source != "store" {
		t.Fatalf("restarted replica answered from %q, want store", warm.Source)
	}
	if warm.Verdict != core.Implied || warm.Cert == nil {
		t.Fatalf("store hit lost the verdict or certificate: %v cert=%v", warm.Verdict, warm.Cert)
	}
	if r.count() != 0 {
		t.Fatalf("restart recomputed a stored verdict (%d engine runs)", r.count())
	}
	if counters.Get("serve.store_hits") != 1 {
		t.Fatalf("serve.store_hits = %d, want 1", counters.Get("serve.store_hits"))
	}
	// The stored certificate was re-verified on the hit, not trusted.
	if counters.Get("serve.cert_checked") != 1 || counters.Get("serve.cert_rejected") != 0 {
		t.Fatalf("cert counters = %d/%d, want 1 checked, 0 rejected",
			counters.Get("serve.cert_checked"), counters.Get("serve.cert_rejected"))
	}
	// The store hit landed in the in-memory cache: the next repeat never
	// touches disk.
	again, err := s2.Infer(presetProblem(t, "twostep"))
	if err != nil || again.Source != "cache" {
		t.Fatalf("repeat after store hit: source=%v err=%v", again.Source, err)
	}
}

// TestStoreUnknownClassUpgradePersists: an unknown answered under a small
// budget class stands for same-or-smaller requests across a restart, but a
// larger-budget request re-runs and its class upgrade lands back on disk.
func TestStoreUnknownClassUpgradePersists(t *testing.T) {
	dir := t.TempDir()
	st := tempVerdictStore(t, dir)
	r1 := &gatedRunner{verdict: core.Unknown}
	s1 := New(Config{Store: st, Runner: r1.run})
	small, err := ParseRequest(Request{Preset: "gap", Rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := s1.Infer(small); err != nil || resp.Source != "cold" {
		t.Fatalf("small cold: %v %v", resp.Source, err)
	}
	s1.Shutdown(context.Background())
	st.Close()

	st2 := tempVerdictStore(t, dir)
	r2 := &gatedRunner{verdict: core.Unknown}
	s2 := New(Config{Store: st2, Runner: r2.run})
	defer s2.Shutdown(context.Background())

	// Same class after restart: the stored unknown stands.
	if resp, err := s2.Infer(small); err != nil || resp.Source != "store" {
		t.Fatalf("same-class restart: source=%v err=%v", resp.Source, err)
	}
	if r2.count() != 0 {
		t.Fatalf("same-class request re-ran the engine")
	}
	// Larger class: the stored unknown is a miss, the re-run overwrites
	// the record with the bigger class — durably.
	big, err := ParseRequest(Request{Preset: "gap", Rounds: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := s2.Infer(big); err != nil || resp.Source != "cold" {
		t.Fatalf("larger-class restart: source=%v err=%v", resp.Source, err)
	}
	if r2.count() != 1 {
		t.Fatalf("larger-class request ran %d engines, want 1", r2.count())
	}
	rec, ok := st2.Get(big.Key)
	if !ok || rec.Class.Rounds != 100000 {
		t.Fatalf("class upgrade did not persist: %+v ok=%v", rec, ok)
	}
}

// twoReplicas wires two serve.Servers into a two-peer ring over real HTTP
// listeners (the URLs must exist before New, so the handlers are bound
// through late-binding shims).
func twoReplicas(t *testing.T, mk func(peers []string, self string) Config) (a, b *Server, urls [2]string) {
	t.Helper()
	var ha, hb http.Handler
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { ha.ServeHTTP(w, r) }))
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hb.ServeHTTP(w, r) }))
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)
	peers := []string{srvA.URL, srvB.URL}
	a = New(mk(peers, srvA.URL))
	b = New(mk(peers, srvB.URL))
	t.Cleanup(func() { a.Shutdown(context.Background()); b.Shutdown(context.Background()) })
	ha, hb = a.Handler(), b.Handler()
	return a, b, [2]string{srvA.URL, srvB.URL}
}

// ownedProblem finds a definitive-verdict preset whose canonical key the
// ring assigns to owner.
func ownedProblem(t *testing.T, s *Server, owner string, exclude ...string) *Problem {
	t.Helper()
	candidates := []string{"twostep", "power", "chain:2", "chain:3", "chain:4", "chain:5", "chain:6"}
	for _, name := range candidates {
		skip := false
		for _, x := range exclude {
			skip = skip || name == x
		}
		if skip {
			continue
		}
		p := presetProblem(t, name)
		if s.ring.Owner(p.Key) == owner {
			return p
		}
	}
	t.Fatalf("no candidate preset hashes to owner %s", owner)
	return nil
}

// TestPeerFillAdoptsVerifiedVerdict: a miss on the non-owner replica is
// answered by the owner, and adopted only after the certificate the owner
// returned verified locally. The non-owner's engine never runs.
func TestPeerFillAdoptsVerifiedVerdict(t *testing.T) {
	countersA, countersB := obs.NewCounters(), obs.NewCounters()
	var engineB int
	servers := map[string]*obs.Counters{}
	a, b, urls := twoReplicas(t, func(peers []string, self string) Config {
		cfg := Config{Peers: peers, Self: self, RequestTimeout: 10 * time.Second}
		if len(servers) == 0 {
			cfg.Counters = countersA
			servers[self] = countersA
		} else {
			cfg.Counters = countersB
			servers[self] = countersB
			cfg.Runner = func(ctx context.Context, p *Problem, bud core.Budget) (CachedVerdict, error) {
				engineB++
				return PortfolioRunner(ctx, p, bud)
			}
		}
		return cfg
	})
	_ = a
	p := ownedProblem(t, b, urls[0]) // owned by A; asked on B

	resp, err := b.Infer(p)
	if err != nil {
		t.Fatalf("peer-filled infer: %v", err)
	}
	if resp.Source != "peer" {
		t.Fatalf("source = %q, want peer", resp.Source)
	}
	if resp.Verdict == core.Unknown || resp.Cert == nil {
		t.Fatalf("peer fill adopted verdict=%v cert=%v", resp.Verdict, resp.Cert)
	}
	if engineB != 0 {
		t.Fatalf("non-owner ran its own engine %d times", engineB)
	}
	if countersB.Get("serve.peer_fills") != 1 || countersB.Get("serve.peer_ok") != 1 {
		t.Fatalf("peer counters on B: %v", countersB.Snapshot())
	}
	// The owner computed it (cold) and saw it as a peer-fill request.
	if countersA.Get("serve.cache_misses") != 1 {
		t.Fatalf("owner counters: %v", countersA.Snapshot())
	}
	// The adopted verdict is cached: the repeat stays local.
	again, err := b.Infer(p)
	if err != nil || again.Source != "cache" {
		t.Fatalf("repeat after peer fill: source=%v err=%v", again.Source, err)
	}
}

// fakeOwner serves canned /infer responses — the shape of a peer that is
// buggy, stale, or hostile.
func fakeOwner(t *testing.T, respond func() Response) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(peerFillHeader) != "1" {
			t.Errorf("peer fill arrived without %s header", peerFillHeader)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(respond())
	}))
	t.Cleanup(srv.Close)
	return srv
}

// peerRingServer builds one real replica whose ring routes to owner for
// some problems; pick one with ownedProblem.
func peerRingServer(t *testing.T, ownerURL string, counters *obs.Counters, r Runner) *Server {
	t.Helper()
	self := "http://self.invalid:1"
	s := New(Config{Peers: []string{ownerURL, self}, Self: self,
		Counters: counters, Runner: r, RequestTimeout: 10 * time.Second})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

// TestPeerFillTamperedCertRejectedAndRecomputed is the adversarial
// acceptance property: a peer answering with a certificate that does not
// prove THIS problem — here a perfectly valid certificate for a DIFFERENT
// problem — is rejected (serve.cert_rejected) and the verdict recomputed
// locally. A corrupted certificate for the right problem must fail the
// same way.
func TestPeerFillTamperedCertRejectedAndRecomputed(t *testing.T) {
	goodCert := validCert(t) // proves twostep, not what we will ask for
	owner := fakeOwner(t, func() Response {
		return Response{Source: "cold", Verdict: core.Implied, Winner: "derivation", Cert: goodCert}
	})
	counters := obs.NewCounters()
	r := &gatedRunner{verdict: core.Implied}
	s := peerRingServer(t, owner.URL, counters, r.run)
	// Exclude twostep from selection: the fake's cert would legitimately
	// prove it, and this test needs a cert for the WRONG problem.
	p := ownedProblem(t, s, owner.URL, "twostep")
	if p.Key == presetProblem(t, "twostep").Key {
		t.Fatalf("candidate selection returned the certificate's own problem")
	}

	resp, err := s.Infer(p)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}
	if resp.Source != "cold" {
		t.Fatalf("source = %q, want cold (local fallback after rejection)", resp.Source)
	}
	if r.count() != 1 {
		t.Fatalf("local fallback ran %d engines, want 1", r.count())
	}
	if counters.Get("serve.peer_fills") != 1 || counters.Get("serve.peer_rejected") != 1 {
		t.Fatalf("peer counters: %v", counters.Snapshot())
	}
	if counters.Get("serve.cert_rejected") != 1 {
		t.Fatalf("serve.cert_rejected = %d, want 1", counters.Get("serve.cert_rejected"))
	}

	// Variant: right problem, corrupted certificate (fails cert.Check).
	bad := *validCert(t)
	bad.Version++
	owner2 := fakeOwner(t, func() Response {
		return Response{Source: "cold", Verdict: core.Implied, Winner: "derivation", Cert: &bad}
	})
	counters2 := obs.NewCounters()
	r2 := &gatedRunner{verdict: core.Implied}
	s2 := peerRingServer(t, owner2.URL, counters2, r2.run)
	q := ownedProblem(t, s2, owner2.URL)
	resp2, err := s2.Infer(q)
	if err != nil || resp2.Source != "cold" {
		t.Fatalf("corrupt-cert fallback: source=%v err=%v", resp2.Source, err)
	}
	if counters2.Get("serve.peer_rejected") != 1 || counters2.Get("serve.cert_rejected") != 1 {
		t.Fatalf("corrupt-cert counters: %v", counters2.Snapshot())
	}
}

// TestPeerDownFallsBackLocal: an unreachable owner costs one failed fill,
// then the local engines answer.
func TestPeerDownFallsBackLocal(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore

	counters := obs.NewCounters()
	r := &gatedRunner{verdict: core.Implied}
	s := peerRingServer(t, deadURL, counters, r.run)
	p := ownedProblem(t, s, deadURL)

	resp, err := s.Infer(p)
	if err != nil || resp.Source != "cold" {
		t.Fatalf("peer-down fallback: source=%v err=%v", resp.Source, err)
	}
	if r.count() != 1 {
		t.Fatalf("fallback ran %d engines, want 1", r.count())
	}
	if counters.Get("serve.peer_fills") != 1 || counters.Get("serve.peer_down") != 1 {
		t.Fatalf("peer counters: %v", counters.Snapshot())
	}
}

// TestPeerUnknownFallsBackLocal: a peer's Unknown is its budget's report,
// not ours — never adopted.
func TestPeerUnknownFallsBackLocal(t *testing.T) {
	owner := fakeOwner(t, func() Response {
		return Response{Source: "cold", Verdict: core.Unknown}
	})
	counters := obs.NewCounters()
	r := &gatedRunner{verdict: core.Implied}
	s := peerRingServer(t, owner.URL, counters, r.run)
	p := ownedProblem(t, s, owner.URL)

	resp, err := s.Infer(p)
	if err != nil || resp.Source != "cold" {
		t.Fatalf("peer-unknown fallback: source=%v err=%v", resp.Source, err)
	}
	if counters.Get("serve.peer_unknown") != 1 {
		t.Fatalf("peer counters: %v", counters.Snapshot())
	}
}

// TestPeerFillRequestsNeverReForward: a request carrying the peer-fill
// header is answered locally even when the ring says another replica owns
// it — the no-ping-pong rule.
func TestPeerFillRequestsNeverReForward(t *testing.T) {
	counters := obs.NewCounters()
	r := &gatedRunner{verdict: core.Implied}
	s := peerRingServer(t, "http://unreachable.invalid:1", counters, r.run)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Find a problem owned by the unreachable peer, then ask for it AS a
	// peer fill: the server must not try to forward it anywhere.
	p := ownedProblem(t, s, "http://unreachable.invalid:1")
	body, _ := json.Marshal(p.Wire)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/infer", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(peerFillHeader, "1")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", httpResp.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != "cold" {
		t.Fatalf("source = %q, want cold (local-only)", resp.Source)
	}
	if counters.Get("serve.peer_fills") != 0 {
		t.Fatalf("a peer-fill request was re-forwarded: %v", counters.Snapshot())
	}
}

// TestHealthzDrain503: /healthz flips to 503 the moment the drain begins,
// so balancers stop routing before the listener goes away.
func TestHealthzDrain503(t *testing.T) {
	s := New(Config{Runner: (&gatedRunner{verdict: core.Implied}).run})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func() int {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("healthy replica /healthz = %d, want 200", code)
	}
	s.BeginDrain()
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("draining replica /healthz = %d, want 503", code)
	}
	s.Shutdown(context.Background())
}

package ring

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like the serving layer's canonical keys: structured text,
		// not random bytes — the dispersion must come from the hash.
		keys[i] = fmt.Sprintf("pres|eq:%d|A0 A0 = B%d|0", i, i%7)
	}
	return keys
}

func TestOwnerDeterministicAndOrderInvariant(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	permuted := []string{"http://c:3", "http://a:1", "http://b:2"}
	r1 := New(peers, 0)
	r2 := New(permuted, 0)
	in := map[string]bool{}
	for _, p := range peers {
		in[p] = true
	}
	for _, k := range testKeys(500) {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 != o2 {
			t.Fatalf("key %q: owner depends on peer-list order (%q vs %q)", k, o1, o2)
		}
		if !in[o1] {
			t.Fatalf("key %q: owner %q not in peer set", k, o1)
		}
		if again := r1.Owner(k); again != o1 {
			t.Fatalf("key %q: owner not deterministic (%q then %q)", k, o1, again)
		}
	}
}

func TestEmptyAndSingleRing(t *testing.T) {
	if got := New(nil, 0).Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	r := New([]string{"only"}, 0)
	for _, k := range testKeys(50) {
		if r.Owner(k) != "only" {
			t.Fatalf("single-peer ring must own everything")
		}
	}
	if New([]string{"a", "a", "", "a"}, 0).Len() != 1 {
		t.Fatalf("duplicate/empty peers must collapse")
	}
}

func TestBalance(t *testing.T) {
	peers := []string{"p0", "p1", "p2", "p3"}
	r := New(peers, 0)
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	// With 128 vnodes the skew stays well under 2x of the fair share; the
	// bound here is loose on purpose — it guards against a broken hash
	// (everything on one peer), not statistical perfection.
	fair := len(keys) / len(peers)
	for _, p := range peers {
		if counts[p] < fair/3 {
			t.Fatalf("peer %s owns %d of %d keys (fair share %d) — ring is unbalanced: %v",
				p, counts[p], len(keys), fair, counts)
		}
	}
}

// TestRebalanceMinimality is the property the ring exists for: growing the
// fleet from N to N+1 peers moves only ~K/(N+1) of K keys, and every moved
// key moves TO the new peer — no key shuffles between two old peers.
func TestRebalanceMinimality(t *testing.T) {
	peers := []string{"p0", "p1", "p2"}
	r3 := New(peers, 0)
	r4 := r3.With("p3")
	keys := testKeys(6000)
	moved := 0
	for _, k := range keys {
		before, after := r3.Owner(k), r4.Owner(k)
		if before == after {
			continue
		}
		moved++
		if after != "p3" {
			t.Fatalf("key %q moved %q -> %q: reassignment between surviving peers", k, before, after)
		}
	}
	fair := len(keys) / 4
	if moved == 0 {
		t.Fatalf("no keys moved to the new peer")
	}
	if moved > fair*2 {
		t.Fatalf("adding one peer moved %d of %d keys (fair share %d) — not minimal", moved, len(keys), fair)
	}
}

func TestRemovalOnlyOrphansRemovedPeersKeys(t *testing.T) {
	r4 := New([]string{"p0", "p1", "p2", "p3"}, 0)
	r3 := r4.Without("p3")
	keys := testKeys(6000)
	for _, k := range keys {
		before, after := r4.Owner(k), r3.Owner(k)
		if before != "p3" && before != after {
			t.Fatalf("key %q owned by surviving peer %q was reassigned to %q on removal of p3", k, before, after)
		}
		if after == "p3" {
			t.Fatalf("key %q still owned by removed peer", k)
		}
	}
	// Round trip: removing then re-adding restores the original assignment.
	back := r3.With("p3")
	for _, k := range keys[:500] {
		if back.Owner(k) != r4.Owner(k) {
			t.Fatalf("re-adding a peer did not restore its ownership")
		}
	}
}

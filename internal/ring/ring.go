// Package ring implements the consistent-hash key partitioner of the
// sharded serving tier: a fixed assignment of the canonical key-space to a
// set of peer replicas that every replica computes identically from the
// peer list alone, with no coordination traffic.
//
// Why consistent hashing rather than `hash(key) mod N`: the serving tier's
// whole value is that a definitive verdict, once computed, is permanent
// (the implication problem is undecidable, so recomputation is the one
// cost that can never be amortized away — see DESIGN.md §14). Ownership
// therefore has to be STABLE under membership change. With mod-N hashing a
// single added replica reassigns (N-1)/N of all keys — nearly every warm
// key goes cold at once. On a hash ring with virtual nodes, adding or
// removing one peer moves only ~K/N of K keys, and every moved key moves
// to (or from) the changed peer; the other peers' assignments are
// untouched. That rebalance-minimality property is pinned by the package
// tests.
//
// The ring is immutable: membership changes build a new Ring. Lookups are
// a binary search over the sorted vnode points, safe for concurrent use.
package ring

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per peer. 128 points per peer
// keeps the maximum/mean ownership skew under ~1.3x for small clusters
// while the whole ring for a 16-peer fleet stays ~2k points — one binary
// search over a 2k slice per lookup.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash assignment of string keys to peers.
type Ring struct {
	points []point // sorted by hash
	peers  []string
	vnodes int
}

type point struct {
	h    uint64
	peer string
}

// hash64 is the ring's hash: FNV-1a over the raw bytes. The ring only
// needs uniform dispersion, not adversarial collision resistance — peers
// are a trusted fleet and keys are canonical forms, not attacker-chosen
// cache-busting strings (an attacker who can submit problems can always
// force cold engine runs more cheaply than by hunting hash collisions).
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// New builds a ring over peers with vnodes virtual points per peer
// (vnodes <= 0 selects DefaultVnodes). Duplicate peers are collapsed; an
// empty peer list yields a ring whose Owner is always "". The peer strings
// are opaque identities — the serving tier uses base URLs — and their
// ORDER is irrelevant: two replicas configured with permuted peer lists
// compute identical ownership, which is what lets the fleet agree without
// talking.
func New(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(peers))
	kept := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		kept = append(kept, p)
	}
	r := &Ring{peers: kept, vnodes: vnodes}
	r.points = make([]point, 0, len(kept)*vnodes)
	for _, p := range kept {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{h: hash64(p + "#" + strconv.Itoa(i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Tie-break on peer name so permuted peer lists sort identically
		// even in the astronomically unlikely event of a point collision.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Owner returns the peer owning key: the first vnode point clockwise from
// the key's hash (wrapping at the top of the ring). Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// Peers returns the deduplicated peer set, in first-seen order of the list
// the ring was built from.
func (r *Ring) Peers() []string {
	out := make([]string, len(r.peers))
	copy(out, r.peers)
	return out
}

// Len returns the number of peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// With returns a new ring with peer added (no-op copy if already present).
func (r *Ring) With(peer string) *Ring {
	return New(append(r.Peers(), peer), r.vnodes)
}

// Without returns a new ring with peer removed.
func (r *Ring) Without(peer string) *Ring {
	kept := make([]string, 0, len(r.peers))
	for _, p := range r.peers {
		if p != peer {
			kept = append(kept, p)
		}
	}
	return New(kept, r.vnodes)
}

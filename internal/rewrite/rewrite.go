// Package rewrite implements string rewriting systems over the alphabets of
// package words, with shortlex-oriented rules and bounded Knuth–Bendix
// completion. It is a second, independent solver for the word problem the
// Main Lemma is about:
//
//   - a presentation's equations are oriented into length-reducing (more
//     precisely, shortlex-reducing) rules, so rewriting always terminates;
//   - completion adds rules for unresolved critical pairs; if it reaches a
//     confluent system, the word problem for that presentation is DECIDED
//     by comparing normal forms — undecidability means completion cannot
//     always succeed, and the budget makes that visible;
//   - on presentations where both run to an answer, the rewriting decision
//     and the equational-closure search of package words must agree (they
//     are cross-checked in tests and benchmarked against each other).
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/words"
)

// Rule is an oriented rewrite rule LHS -> RHS with LHS shortlex-greater.
type Rule struct {
	LHS, RHS words.Word
}

// Format renders the rule.
func (r Rule) Format(a *words.Alphabet) string {
	return r.LHS.Format(a) + " -> " + r.RHS.Format(a)
}

// System is a set of shortlex-oriented rewrite rules.
type System struct {
	Alphabet *words.Alphabet
	Rules    []Rule
}

// Orient turns an equation into a rule by shortlex order; trivial equations
// return ok=false.
func Orient(e words.Equation) (Rule, bool) {
	switch e.LHS.Compare(e.RHS) {
	case 0:
		return Rule{}, false
	case 1:
		return Rule{LHS: e.LHS, RHS: e.RHS}, true
	default:
		return Rule{LHS: e.RHS, RHS: e.LHS}, true
	}
}

// FromPresentation orients every equation of p.
func FromPresentation(p *words.Presentation) *System {
	s := &System{Alphabet: p.Alphabet}
	seen := make(map[string]bool)
	for _, e := range p.Equations {
		if r, ok := Orient(e); ok {
			k := r.LHS.Key() + ">" + r.RHS.Key()
			if !seen[k] {
				seen[k] = true
				s.Rules = append(s.Rules, r)
			}
		}
	}
	return s
}

// RewriteOnce applies the first applicable rule at the leftmost position;
// returns the rewritten word and whether a rewrite happened.
func (s *System) RewriteOnce(w words.Word) (words.Word, bool) {
	for i := 0; i < len(w); i++ {
		for _, r := range s.Rules {
			if i+len(r.LHS) > len(w) {
				continue
			}
			match := true
			for j := range r.LHS {
				if w[i+j] != r.LHS[j] {
					match = false
					break
				}
			}
			if match {
				return w.ReplaceAt(i, len(r.LHS), r.RHS), true
			}
		}
	}
	return w, false
}

// NormalForm rewrites w to an irreducible word. Because every rule is
// shortlex-reducing, this always terminates; the internal step limit only
// guards against a non-reducing rule sneaking in through direct Rules
// manipulation.
func (s *System) NormalForm(w words.Word) (words.Word, error) {
	limit := 1000 + 100*len(w)*(len(s.Rules)+1)
	cur := w
	for i := 0; i < limit; i++ {
		next, changed := s.RewriteOnce(cur)
		if !changed {
			return cur, nil
		}
		cur = next
	}
	return nil, fmt.Errorf("rewrite: normal form not reached within %d steps (non-reducing rule?)", limit)
}

// Joinable reports whether u and v rewrite to the same normal form.
func (s *System) Joinable(u, v words.Word) (bool, error) {
	nu, err := s.NormalForm(u)
	if err != nil {
		return false, err
	}
	nv, err := s.NormalForm(v)
	if err != nil {
		return false, err
	}
	return nu.Equal(nv), nil
}

// CriticalPairs returns the unresolved critical pairs of the system: pairs
// of distinct words both reachable in one step from a common superposition
// of two rule left sides, whose normal forms differ.
func (s *System) CriticalPairs() ([][2]words.Word, error) {
	var out [][2]words.Word
	add := func(x, y words.Word) error {
		nx, err := s.NormalForm(x)
		if err != nil {
			return err
		}
		ny, err := s.NormalForm(y)
		if err != nil {
			return err
		}
		if !nx.Equal(ny) {
			out = append(out, [2]words.Word{nx, ny})
		}
		return nil
	}
	for _, r1 := range s.Rules {
		for _, r2 := range s.Rules {
			// Overlap type 1: r2.LHS occurs inside r1.LHS.
			for _, pos := range r1.LHS.Occurrences(r2.LHS) {
				x := r1.RHS
				y := r1.LHS.ReplaceAt(pos, len(r2.LHS), r2.RHS)
				if err := add(x, y); err != nil {
					return nil, err
				}
			}
			// Overlap type 2: a proper suffix of r1.LHS is a proper prefix
			// of r2.LHS.
			for k := 1; k < len(r1.LHS) && k < len(r2.LHS); k++ {
				ok := true
				for j := 0; j < k; j++ {
					if r1.LHS[len(r1.LHS)-k+j] != r2.LHS[j] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				// Superposition: r1.LHS + r2.LHS[k:].
				super := r1.LHS.Concat(r2.LHS[k:])
				x := r1.RHS.Concat(r2.LHS[k:])
				y := super[:len(r1.LHS)-k].Concat(r2.RHS)
				if err := add(x, y); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// CompletionOptions bounds Knuth–Bendix completion.
type CompletionOptions struct {
	// Governor bounds completion: its rules meter caps the rule count, its
	// rounds meter caps completion sweeps, and its context is checked once
	// per sweep. Nil resolves to DefaultLimits.
	Governor *budget.Governor
	// Sink receives one rule_added event per oriented rule adopted from an
	// unresolved critical pair, and the final verdict ("confluent" or
	// "diverged"). Nil disables emission. See docs/OBSERVABILITY.md.
	Sink obs.Sink
}

// DefaultLimits bound an ungoverned completion: 500 rules across 100
// sweeps.
var DefaultLimits = budget.Limits{Rules: 500, Rounds: 100}

// CompletionResult reports how completion ended.
type CompletionResult struct {
	// Confluent is true when no unresolved critical pairs remain: the
	// system decides its word problem.
	Confluent bool
	// Iterations is the number of sweeps performed.
	Iterations int
	// Budget reports how the governor cut completion short (rule or sweep
	// budget, cancellation); zero (ok) with Confluent false never happens
	// — an ok non-confluent return is reported as exhausted sweeps.
	Budget budget.Outcome
}

// Complete runs Knuth–Bendix completion in place, adding oriented rules for
// unresolved critical pairs until none remain or budgets run out. A budget
// stop is not an error: it is reported in CompletionResult.Budget (the
// system simply diverged within bounds, which undecidability guarantees
// must sometimes happen).
func (s *System) Complete(opt CompletionOptions) (CompletionResult, error) {
	g := budget.Resolve(opt.Governor, DefaultLimits)
	res := CompletionResult{}
	verdict := func(v string) {
		if opt.Sink != nil {
			if res.Budget.Stopped() {
				typ := obs.EvBudgetExhausted
				if res.Budget.Code != budget.CodeExhausted {
					typ = obs.EvCancelled
				}
				opt.Sink.Event(obs.Event{Type: typ, Src: "rewrite",
					Round: res.Iterations, Resource: res.Budget.Reason()})
			}
			opt.Sink.Event(obs.Event{Type: obs.EvVerdict, Src: "rewrite",
				Verdict: v, Round: res.Iterations, Rules: len(s.Rules)})
		}
	}
	// Seed rules count against the rule meter, so the cap is on the total
	// system size, as it was when it capped len(s.Rules) directly.
	g.Add(budget.Rules, len(s.Rules))
	for it := 1; ; it++ {
		if o := g.Charge(budget.Rounds, 1); o.Stopped() {
			res.Budget = o
			verdict("diverged")
			return res, nil
		}
		res.Iterations = it
		pairs, err := s.CriticalPairs()
		if err != nil {
			return res, err
		}
		if len(pairs) == 0 {
			res.Confluent = true
			s.simplify()
			verdict("confluent")
			return res, nil
		}
		added := 0
		for _, p := range pairs {
			r, ok := Orient(words.Eq(p[0], p[1]))
			if !ok {
				continue
			}
			if o := g.Charge(budget.Rules, 1); o.Stopped() {
				res.Budget = o
				verdict("diverged")
				return res, nil
			}
			s.Rules = append(s.Rules, r)
			added++
			if opt.Sink != nil {
				opt.Sink.Event(obs.Event{Type: obs.EvRuleAdded, Src: "rewrite",
					Iter: it, Rules: len(s.Rules)})
			}
		}
		if added == 0 {
			// All pairs were trivial after normalization races; re-check.
			res.Confluent = true
			s.simplify()
			verdict("confluent")
			return res, nil
		}
	}
}

// simplify removes rules whose left side is reducible by the others and
// normalizes right sides; it keeps the decision procedure but shrinks it.
func (s *System) simplify() {
	sort.Slice(s.Rules, func(i, j int) bool {
		if c := s.Rules[i].LHS.Compare(s.Rules[j].LHS); c != 0 {
			return c < 0
		}
		return s.Rules[i].RHS.Compare(s.Rules[j].RHS) < 0
	})
	var kept []Rule
	for i, r := range s.Rules {
		others := &System{Alphabet: s.Alphabet}
		others.Rules = append(others.Rules, s.Rules[:i]...)
		others.Rules = append(others.Rules, s.Rules[i+1:]...)
		if _, reducible := others.RewriteOnce(r.LHS); reducible {
			// Check the rule is redundant: both sides joinable without it.
			if ok, err := others.Joinable(r.LHS, r.RHS); err == nil && ok {
				s.Rules = append(s.Rules[:i:i], s.Rules[i+1:]...)
				s.simplify()
				return
			}
		}
		kept = append(kept, r)
	}
	s.Rules = kept
}

// DecideGoal decides (when the system is confluent) whether A0 = 0 holds.
func (s *System) DecideGoal() (bool, error) {
	return s.Joinable(words.W(s.Alphabet.A0()), words.W(s.Alphabet.Zero()))
}

// Format renders the system, one rule per line.
func (s *System) Format() string {
	var b strings.Builder
	for _, r := range s.Rules {
		b.WriteString(r.Format(s.Alphabet))
		b.WriteByte('\n')
	}
	return b.String()
}

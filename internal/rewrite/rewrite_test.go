package rewrite

import (
	"math/rand"
	"strings"
	"templatedep/internal/budget"
	"testing"
	"testing/quick"

	"templatedep/internal/words"
)

func TestOrient(t *testing.T) {
	if _, ok := Orient(words.Eq(words.W(1), words.W(1))); ok {
		t.Error("trivial equation oriented")
	}
	r, ok := Orient(words.Eq(words.W(1), words.W(1, 2)))
	if !ok || !r.LHS.Equal(words.W(1, 2)) {
		t.Errorf("orientation wrong: %v %v", r, ok)
	}
	r2, ok := Orient(words.Eq(words.W(2), words.W(1)))
	if !ok || !r2.LHS.Equal(words.W(2)) {
		t.Errorf("lex orientation wrong: %v", r2)
	}
}

func TestNormalFormZeroAbsorption(t *testing.T) {
	p := words.PowerPresentation()
	s := FromPresentation(p)
	a := p.Alphabet
	// A0 B 0 A0 reduces: anything touching 0 collapses to 0... rules:
	// A0·A0 -> B (shortlex: len2 > len1), X·0 -> 0, 0·X -> 0.
	w := words.MustParseWord(a, "A0 B 0 A0")
	nf, err := s.NormalForm(w)
	if err != nil {
		t.Fatal(err)
	}
	if !nf.Equal(words.W(a.Zero())) {
		t.Errorf("NF = %s", nf.Format(a))
	}
	// A0 A0 -> B.
	nf2, err := s.NormalForm(words.MustParseWord(a, "A0 A0"))
	if err != nil {
		t.Fatal(err)
	}
	if !nf2.Equal(words.W(a.MustSymbol("B"))) {
		t.Errorf("NF(A0 A0) = %s", nf2.Format(a))
	}
}

func TestRewriteOnceLeftmost(t *testing.T) {
	p := words.PowerPresentation()
	s := FromPresentation(p)
	a := p.Alphabet
	w := words.MustParseWord(a, "A0 A0 A0 A0")
	one, changed := s.RewriteOnce(w)
	if !changed {
		t.Fatal("no rewrite")
	}
	// Leftmost: B A0 A0.
	if one.Format(a) != "B A0 A0" {
		t.Errorf("one step = %q", one.Format(a))
	}
}

func TestCompleteChainDecides(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		p := words.ChainPresentation(n)
		s := FromPresentation(p)
		res, err := s.Complete(CompletionOptions{})
		if err != nil {
			t.Fatalf("Chain(%d): %v", n, err)
		}
		if !res.Confluent {
			t.Fatalf("Chain(%d): completion not confluent after %d iterations", n, res.Iterations)
		}
		ok, err := s.DecideGoal()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("Chain(%d): goal should be decided true", n)
		}
	}
}

func TestCompletePowerDecidesNegative(t *testing.T) {
	p := words.PowerPresentation()
	s := FromPresentation(p)
	res, err := s.Complete(CompletionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confluent {
		t.Fatal("power presentation should complete")
	}
	ok, err := s.DecideGoal()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("goal should be decided false")
	}
}

func TestCompleteTwoStep(t *testing.T) {
	p := words.TwoStepPresentation()
	s := FromPresentation(p)
	res, err := s.Complete(CompletionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confluent {
		t.Fatal("two-step should complete")
	}
	ok, err := s.DecideGoal()
	if err != nil || !ok {
		t.Errorf("goal decision = %v, %v", ok, err)
	}
}

// Cross-validation: on random presentations where both the closure search
// and completion give definite answers, they agree.
func TestRewriteAgreesWithClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := words.RandomPresentation(rng, 2, 3)
		s := FromPresentation(p)
		res, err := s.Complete(CompletionOptions{Governor: budget.New(nil, budget.Limits{Rules: 200, Rounds: 30})})
		if err != nil || !res.Confluent {
			return true // completion inconclusive; nothing to compare
		}
		decided, err := s.DecideGoal()
		if err != nil {
			return true
		}
		cl := words.DeriveGoal(p, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 3000}), LengthCap: 10})
		switch cl.Verdict {
		case words.Derivable:
			if !decided {
				t.Logf("seed %d: closure derivable, rewriting says no", seed)
				return false
			}
		case words.NotDerivable:
			if decided {
				t.Logf("seed %d: closure not-derivable, rewriting says yes", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Error(err)
	}
}

func TestCriticalPairsDetectNonConfluence(t *testing.T) {
	// Two rules with the same LHS: k0k0 -> A0 and k0k0 -> s1 in Chain(2).
	p := words.ChainPresentation(2)
	s := FromPresentation(p)
	pairs, err := s.CriticalPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Error("expected unresolved critical pairs before completion")
	}
}

func TestFormat(t *testing.T) {
	p := words.PowerPresentation()
	s := FromPresentation(p)
	if !strings.Contains(s.Format(), "->") {
		t.Errorf("Format = %q", s.Format())
	}
}

func TestSimplifyShrinks(t *testing.T) {
	p := words.ChainPresentation(2)
	s := FromPresentation(p)
	if _, err := s.Complete(CompletionOptions{}); err != nil {
		t.Fatal(err)
	}
	before := len(s.Rules)
	// Add a redundant rule and re-simplify via Complete (already confluent).
	s.Rules = append(s.Rules, s.Rules[0])
	res, err := s.Complete(CompletionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Confluent {
		t.Fatal("should remain confluent")
	}
	if len(s.Rules) > before+1 {
		t.Errorf("rules grew from %d to %d", before, len(s.Rules))
	}
	// Decision still works.
	ok, err := s.DecideGoal()
	if err != nil || !ok {
		t.Errorf("goal decision = %v, %v", ok, err)
	}
}

package tm

import (
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/words"
)

func TestValidate(t *testing.T) {
	m := WriteOneAndHalt()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &TM{NumStates: 2, NumSymbols: 2, Start: 0, Halt: 1,
		Delta: map[[2]int]Transition{{1, 0}: {NextState: 0, Write: 0, Move: Right}}}
	if err := bad.Validate(); err == nil {
		t.Error("halt state with outgoing transition accepted")
	}
	if err := (&TM{NumStates: 0}).Validate(); err == nil {
		t.Error("empty machine accepted")
	}
	if err := (&TM{NumStates: 1, NumSymbols: 1, Start: 5}).Validate(); err == nil {
		t.Error("bad start accepted")
	}
	outOfRange := &TM{NumStates: 2, NumSymbols: 2, Start: 0, Halt: 1,
		Delta: map[[2]int]Transition{{0, 0}: {NextState: 9, Write: 0, Move: Right}}}
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestRunHalting(t *testing.T) {
	halted, steps, cfg, err := WriteOneAndHalt().Run(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !halted || steps != 1 {
		t.Errorf("halted=%v steps=%d", halted, steps)
	}
	if cfg.Tape[0] != 1 {
		t.Errorf("tape %v", cfg.Tape)
	}
}

func TestRunScan(t *testing.T) {
	for n := 0; n <= 4; n++ {
		input := make([]int, n)
		for i := range input {
			input[i] = 1
		}
		halted, steps, _, err := ScanRightAndHalt().Run(input, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !halted || steps != n+1 {
			t.Errorf("n=%d: halted=%v steps=%d, want %d", n, halted, steps, n+1)
		}
	}
}

func TestRunForeverBudget(t *testing.T) {
	halted, steps, _, err := RunForever().Run(nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if halted || steps != 50 {
		t.Errorf("halted=%v steps=%d", halted, steps)
	}
}

func TestRunLeftMove(t *testing.T) {
	halted, steps, _, err := FlipFlopAndHalt().Run(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !halted || steps != 2 {
		t.Errorf("halted=%v steps=%d", halted, steps)
	}
	// A machine that immediately moves left of cell 0 errors out.
	bad := &TM{NumStates: 2, NumSymbols: 1, Start: 0, Halt: 1,
		Delta: map[[2]int]Transition{{0, 0}: {NextState: 1, Write: 0, Move: Left}}}
	if _, _, _, err := bad.Run(nil, 10); err == nil {
		t.Error("left-of-tape move not reported")
	}
}

func TestRunMissingTransition(t *testing.T) {
	m := &TM{NumStates: 3, NumSymbols: 2, Start: 0, Halt: 2,
		Delta: map[[2]int]Transition{{0, 0}: {NextState: 1, Write: 1, Move: Right}}}
	if _, _, _, err := m.Run(nil, 10); err == nil {
		t.Error("missing transition not reported")
	}
}

func TestEncodeHaltingDerivable(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *TM
	}{
		{"write-one", WriteOneAndHalt()},
		{"flip-flop", FlipFlopAndHalt()},
	} {
		p, err := EncodePresentation(tc.m, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.CheckZeroEquations(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res := words.DeriveGoal(p, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 200000})})
		if res.Verdict != words.Derivable {
			t.Fatalf("%s: verdict %v (explored %d)", tc.name, res.Verdict, res.WordsExplored)
		}
		if err := res.Derivation.Validate(p); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		t.Logf("%s: derivation length %d, %d words explored", tc.name, res.Derivation.Len(), res.WordsExplored)
	}
}

func TestEncodeScanWithInput(t *testing.T) {
	p, err := EncodePresentation(ScanRightAndHalt(), []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res := words.DeriveGoal(p, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 500000})})
	if res.Verdict != words.Derivable {
		t.Fatalf("verdict %v (explored %d)", res.Verdict, res.WordsExplored)
	}
}

func TestEncodeNonHaltingNotQuicklyDerivable(t *testing.T) {
	p, err := EncodePresentation(RunForever(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := words.DeriveGoal(p, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 20000}), LengthCap: 12})
	if res.Verdict == words.Derivable {
		t.Fatal("non-halting machine's goal became derivable")
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, err := EncodePresentation(WriteOneAndHalt(), []int{7}); err == nil {
		t.Error("out-of-range input accepted")
	}
	bad := &TM{NumStates: 0}
	if _, err := EncodePresentation(bad, nil); err == nil {
		t.Error("invalid machine accepted")
	}
}

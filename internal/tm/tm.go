// Package tm implements deterministic single-tape Turing machines and the
// Post/Turing-style encoding of their halting problem into semigroup
// presentations with zero — the ultimate source of the undecidability that
// the paper transports, via the Main Lemma's word problem, into template
// dependency inference.
//
// A machine configuration is encoded as the word
//
//	L  (tape symbols left of head)  q  (symbol under head, rest)  R
//
// over an alphabet containing the tape symbols, the states, and the end
// markers L and R. Each machine transition becomes a word equation that
// rewrites configurations exactly as the machine moves; halting-state
// cleanup equations erase the tape; and the equations A0 = (initial
// configuration) and L qH R = 0 tie the Main Lemma goal A0 = 0 to halting:
//
//	the machine halts on the input  ==>  A0 = 0 is equationally derivable.
//
// (The converse — that a derivation exists only when the machine halts —
// is Post's theorem for this construction; the package exercises the
// constructive direction.)
package tm

import (
	"fmt"
	"sort"

	"templatedep/internal/words"
)

// Dir is a head direction.
type Dir int

const (
	// Left moves the head one cell left.
	Left Dir = iota
	// Right moves the head one cell right.
	Right
)

// Transition is one entry of the transition function.
type Transition struct {
	NextState int
	Write     int
	Move      Dir
}

// TM is a deterministic single-tape Turing machine. Symbol 0 is the blank.
// The machine halts upon entering state Halt (which has no outgoing
// transitions). The head must never move left from the leftmost cell; Run
// reports such a move as an error, and the encoding assumes it never
// happens.
type TM struct {
	NumStates  int
	NumSymbols int
	Start      int
	Halt       int
	Delta      map[[2]int]Transition
}

// Validate checks structural sanity.
func (m *TM) Validate() error {
	if m.NumStates < 1 || m.NumSymbols < 1 {
		return fmt.Errorf("tm: need at least one state and one symbol")
	}
	if m.Start < 0 || m.Start >= m.NumStates || m.Halt < 0 || m.Halt >= m.NumStates {
		return fmt.Errorf("tm: start/halt state out of range")
	}
	for k, tr := range m.Delta {
		if k[0] == m.Halt {
			return fmt.Errorf("tm: halt state has an outgoing transition")
		}
		if k[0] < 0 || k[0] >= m.NumStates || k[1] < 0 || k[1] >= m.NumSymbols {
			return fmt.Errorf("tm: transition key %v out of range", k)
		}
		if tr.NextState < 0 || tr.NextState >= m.NumStates || tr.Write < 0 || tr.Write >= m.NumSymbols {
			return fmt.Errorf("tm: transition %v target out of range", k)
		}
	}
	return nil
}

// Config is a machine configuration for simulation.
type Config struct {
	Tape  []int
	Head  int
	State int
}

// Run simulates the machine on the input for at most maxSteps steps.
// It returns whether the machine halted, the number of steps executed, and
// the final configuration. An attempted move left of cell 0 is an error.
func (m *TM) Run(input []int, maxSteps int) (bool, int, Config, error) {
	if err := m.Validate(); err != nil {
		return false, 0, Config{}, err
	}
	tape := append([]int(nil), input...)
	if len(tape) == 0 {
		tape = []int{0}
	}
	cfg := Config{Tape: tape, State: m.Start}
	for step := 0; step < maxSteps; step++ {
		if cfg.State == m.Halt {
			return true, step, cfg, nil
		}
		if cfg.Head >= len(cfg.Tape) {
			cfg.Tape = append(cfg.Tape, 0)
		}
		tr, ok := m.Delta[[2]int{cfg.State, cfg.Tape[cfg.Head]}]
		if !ok {
			return false, step, cfg, fmt.Errorf("tm: no transition from state %d on symbol %d", cfg.State, cfg.Tape[cfg.Head])
		}
		cfg.Tape[cfg.Head] = tr.Write
		cfg.State = tr.NextState
		switch tr.Move {
		case Right:
			cfg.Head++
		case Left:
			if cfg.Head == 0 {
				return false, step, cfg, fmt.Errorf("tm: head moved left of the leftmost cell")
			}
			cfg.Head--
		}
	}
	return cfg.State == m.Halt, maxSteps, cfg, nil
}

// EncodePresentation encodes the machine's halting on the given input as a
// semigroup presentation over an alphabet with distinguished A0 and 0.
// The goal A0 = 0 is derivable whenever the machine halts on the input.
func EncodePresentation(m *TM, input []int) (*words.Presentation, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	for _, s := range input {
		if s < 0 || s >= m.NumSymbols {
			return nil, fmt.Errorf("tm: input symbol %d out of range", s)
		}
	}

	names := []string{"A0"}
	for s := 0; s < m.NumSymbols; s++ {
		names = append(names, fmt.Sprintf("t%d", s))
	}
	for q := 0; q < m.NumStates; q++ {
		names = append(names, fmt.Sprintf("q%d", q))
	}
	names = append(names, "L", "R", "0")
	a, err := words.NewAlphabet(names, "A0", "0")
	if err != nil {
		return nil, err
	}
	tape := func(s int) words.Symbol { return a.MustSymbol(fmt.Sprintf("t%d", s)) }
	state := func(q int) words.Symbol { return a.MustSymbol(fmt.Sprintf("q%d", q)) }
	lm, rm := a.MustSymbol("L"), a.MustSymbol("R")

	var eqs []words.Equation

	// Initial configuration: A0 = L q0 (input) R. With an empty input the
	// head still faces the right marker (blanks materialize on demand).
	init := words.W(lm, state(m.Start))
	for _, s := range input {
		init = init.Concat(words.W(tape(s)))
	}
	init = init.Concat(words.W(rm))
	eqs = append(eqs, words.Eq(init, words.W(a.A0())))

	// Transition equations, in sorted (state, symbol) order so the encoded
	// presentation is deterministic (Delta is a map).
	keys := make([][2]int, 0, len(m.Delta))
	for k := range m.Delta {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		tr := m.Delta[k]
		q, s := k[0], k[1]
		switch tr.Move {
		case Right:
			// q s = s' q'
			eqs = append(eqs, words.Eq(
				words.W(state(q), tape(s)),
				words.W(tape(tr.Write), state(tr.NextState))))
			if s == 0 {
				// At the right marker the blank materializes: q R = s' q' R.
				eqs = append(eqs, words.Eq(
					words.W(state(q), rm),
					words.W(tape(tr.Write), state(tr.NextState), rm)))
			}
		case Left:
			// c q s = q' c s' for every tape symbol c.
			for c := 0; c < m.NumSymbols; c++ {
				eqs = append(eqs, words.Eq(
					words.W(tape(c), state(q), tape(s)),
					words.W(state(tr.NextState), tape(c), tape(tr.Write))))
				if s == 0 {
					// c q R = q' c s' R.
					eqs = append(eqs, words.Eq(
						words.W(tape(c), state(q), rm),
						words.W(state(tr.NextState), tape(c), tape(tr.Write), rm)))
				}
			}
		}
	}

	// Halting cleanup: the halt state eats the tape, then L qH R = 0.
	qh := state(m.Halt)
	for s := 0; s < m.NumSymbols; s++ {
		eqs = append(eqs, words.Eq(words.W(qh, tape(s)), words.W(qh)))
		eqs = append(eqs, words.Eq(words.W(tape(s), qh), words.W(qh)))
	}
	eqs = append(eqs, words.Eq(words.W(lm, qh, rm), words.W(a.Zero())))

	p, err := words.NewPresentation(a, eqs)
	if err != nil {
		return nil, err
	}
	return p.WithZeroEquations(), nil
}

// WriteOneAndHalt returns the smallest interesting halting machine: on a
// blank tape it writes symbol 1 and halts. Its encoded derivation is
// A0 = L q0 R = L t1 qH R = L qH R = 0.
func WriteOneAndHalt() *TM {
	return &TM{
		NumStates:  2,
		NumSymbols: 2,
		Start:      0,
		Halt:       1,
		Delta: map[[2]int]Transition{
			{0, 0}: {NextState: 1, Write: 1, Move: Right},
		},
	}
}

// ScanRightAndHalt returns a machine that scans right over 1s and halts on
// the first blank. On input 1^n it runs n+1 steps.
func ScanRightAndHalt() *TM {
	return &TM{
		NumStates:  2,
		NumSymbols: 2,
		Start:      0,
		Halt:       1,
		Delta: map[[2]int]Transition{
			{0, 1}: {NextState: 0, Write: 1, Move: Right},
			{0, 0}: {NextState: 1, Write: 0, Move: Right},
		},
	}
}

// RunForever returns a machine that never halts: it walks right writing 1s
// for eternity. Its encoded presentation has an underivable goal (and, per
// the Main Lemma's gap, possibly no finite cancellation counterexample
// either).
func RunForever() *TM {
	return &TM{
		NumStates:  2,
		NumSymbols: 2,
		Start:      0,
		Halt:       1,
		Delta: map[[2]int]Transition{
			{0, 0}: {NextState: 0, Write: 1, Move: Right},
			{0, 1}: {NextState: 0, Write: 1, Move: Right},
		},
	}
}

// FlipFlopAndHalt returns a 3-state machine exercising a left move: it
// writes 1, steps right, writes 1, steps back left, and halts on reading
// the 1 it wrote first.
func FlipFlopAndHalt() *TM {
	return &TM{
		NumStates:  3,
		NumSymbols: 2,
		Start:      0,
		Halt:       2,
		Delta: map[[2]int]Transition{
			{0, 0}: {NextState: 1, Write: 1, Move: Right},
			{1, 0}: {NextState: 2, Write: 1, Move: Left},
			{1, 1}: {NextState: 2, Write: 1, Move: Left},
		},
	}
}

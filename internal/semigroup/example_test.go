package semigroup_test

import (
	"fmt"

	"templatedep/internal/semigroup"
)

func ExampleNilpotentCyclic() {
	// N4 = {a, a², a³, 0}: the workhorse witness family for Reduction
	// Theorem part (B) — zero, no identity, cancellation conditions (i)
	// and (ii).
	n4 := semigroup.NilpotentCyclic(4)
	z, _ := n4.Zero()
	_, hasID := n4.Identity()
	fmt.Println("order:", n4.Size())
	fmt.Println("zero index:", int(z))
	fmt.Println("has identity:", hasID)
	fmt.Println("cancellation:", semigroup.CheckCancellation(n4) == nil)
	// Output:
	// order: 4
	// zero index: 3
	// has identity: false
	// cancellation: true
}

func ExampleAdjoinIdentity() {
	// The proof of part (B) adjoins an identity to the witness; the paper's
	// claim that cancellation survives is checked mechanically.
	g := semigroup.NilpotentCyclic(3)
	gp, id := semigroup.AdjoinIdentity(g)
	fmt.Println("order:", gp.Size())
	fmt.Println("identity index:", int(id))
	fmt.Println("cancellation preserved:", semigroup.CheckCancellation(gp) == nil)
	// Output:
	// order: 4
	// identity index: 3
	// cancellation preserved: true
}

func ExampleTakeCensus() {
	c := semigroup.TakeCensus(2)
	fmt.Printf("order-2 semigroups up to isomorphism: %d (witness class: %d)\n",
		c.Classes, c.WitnessClass)
	// Output:
	// order-2 semigroups up to isomorphism: 5 (witness class: 1)
}

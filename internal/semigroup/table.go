// Package semigroup implements finite semigroups as explicit multiplication
// tables, together with the structural notions the Gurevich–Lewis proof
// manipulates: zero and identity elements, the cancellation property for
// semigroups with zero (conditions (i) and (ii) of the paper), adjoining an
// identity, evaluating words of a presentation, and checking that a finite
// semigroup satisfies a presentation.
//
// Conventions: elements are 0..n-1. A Table need not have a zero or an
// identity; accessors report them when present. All operations are on
// immutable tables; constructors validate associativity.
package semigroup

import (
	"fmt"
	"strings"

	"templatedep/internal/words"
)

// Elem is an element of a finite semigroup, an index in 0..n-1.
type Elem int

// Table is a finite semigroup given by its multiplication table.
// mul[i*n+j] is the product of elements i and j.
type Table struct {
	n    int
	mul  []Elem
	name string
}

// New builds a semigroup from a square multiplication table and verifies
// associativity (via Light's test against a generating set, falling back to
// the naive cubic check for tiny tables).
func New(mul [][]Elem, name string) (*Table, error) {
	n := len(mul)
	if n == 0 {
		return nil, fmt.Errorf("semigroup: empty table")
	}
	t := &Table{n: n, mul: make([]Elem, n*n), name: name}
	for i, row := range mul {
		if len(row) != n {
			return nil, fmt.Errorf("semigroup: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if int(v) < 0 || int(v) >= n {
				return nil, fmt.Errorf("semigroup: entry (%d,%d)=%d out of range", i, j, int(v))
			}
			t.mul[i*n+j] = v
		}
	}
	if i, j, k, ok := t.associativityDefect(); !ok {
		return nil, fmt.Errorf("semigroup: not associative: (%d·%d)·%d != %d·(%d·%d)", i, j, k, i, j, k)
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(mul [][]Elem, name string) *Table {
	t, err := New(mul, name)
	if err != nil {
		panic(err)
	}
	return t
}

// newUnchecked builds a table without the associativity check; for internal
// constructors whose output is associative by construction.
func newUnchecked(n int, mul []Elem, name string) *Table {
	return &Table{n: n, mul: mul, name: name}
}

// Size returns the number of elements.
func (t *Table) Size() int { return t.n }

// Name returns the descriptive name given at construction.
func (t *Table) Name() string { return t.name }

// Mul returns the product x·y.
func (t *Table) Mul(x, y Elem) Elem { return t.mul[int(x)*t.n+int(y)] }

// MulWordElems multiplies a non-empty sequence of elements left to right.
func (t *Table) MulWordElems(es []Elem) (Elem, error) {
	if len(es) == 0 {
		return 0, fmt.Errorf("semigroup: cannot multiply the empty sequence in a semigroup")
	}
	acc := es[0]
	for _, e := range es[1:] {
		acc = t.Mul(acc, e)
	}
	return acc, nil
}

// associativityDefect returns a witness (i,j,k) with (ij)k != i(jk), or
// ok=true if the table is associative. Uses Light's associativity test:
// associativity needs checking only against a generating set.
func (t *Table) associativityDefect() (Elem, Elem, Elem, bool) {
	gens := t.GeneratingSet()
	n := t.n
	for _, g := range gens {
		// Light's test: for generator g, compare the table L_g∘M with M∘R_g.
		for i := 0; i < n; i++ {
			ig := t.mul[i*n+int(g)]
			for k := 0; k < n; k++ {
				if t.mul[int(ig)*n+k] != t.mul[i*n+int(t.mul[int(g)*n+k])] {
					return Elem(i), g, Elem(k), false
				}
			}
		}
	}
	return 0, 0, 0, true
}

// AssociativityNaive is the straightforward O(n^3) check; exposed for the
// ablation benchmark against Light's test.
func (t *Table) AssociativityNaive() bool {
	n := t.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ij := t.mul[i*n+j]
			for k := 0; k < n; k++ {
				if t.mul[int(ij)*n+k] != t.mul[i*n+int(t.mul[j*n+k])] {
					return false
				}
			}
		}
	}
	return true
}

// GeneratingSet returns a (not necessarily minimal) generating set computed
// greedily: elements not expressible as products of previously chosen ones.
func (t *Table) GeneratingSet() []Elem {
	n := t.n
	inSpan := make([]bool, n)
	span := make([]Elem, 0, n)
	var gens []Elem
	add := func(e Elem) {
		if !inSpan[e] {
			inSpan[e] = true
			span = append(span, e)
		}
	}
	closeSpan := func() {
		for changed := true; changed; {
			changed = false
			for _, x := range span {
				for _, y := range span {
					p := t.Mul(x, y)
					if !inSpan[p] {
						inSpan[p] = true
						span = append(span, p)
						changed = true
					}
				}
			}
		}
	}
	for e := 0; e < n; e++ {
		if !inSpan[e] {
			gens = append(gens, Elem(e))
			add(Elem(e))
			closeSpan()
		}
	}
	return gens
}

// Zero returns the zero element (x·z = z·x = z for all x), if any.
func (t *Table) Zero() (Elem, bool) {
	for z := 0; z < t.n; z++ {
		isZero := true
		for x := 0; x < t.n; x++ {
			if t.mul[x*t.n+z] != Elem(z) || t.mul[z*t.n+x] != Elem(z) {
				isZero = false
				break
			}
		}
		if isZero {
			return Elem(z), true
		}
	}
	return 0, false
}

// Identity returns the identity element, if any.
func (t *Table) Identity() (Elem, bool) {
	for e := 0; e < t.n; e++ {
		isID := true
		for x := 0; x < t.n; x++ {
			if t.mul[e*t.n+x] != Elem(x) || t.mul[x*t.n+e] != Elem(x) {
				isID = false
				break
			}
		}
		if isID {
			return Elem(e), true
		}
	}
	return 0, false
}

// Idempotents returns all x with x·x = x.
func (t *Table) Idempotents() []Elem {
	var out []Elem
	for x := 0; x < t.n; x++ {
		if t.mul[x*t.n+x] == Elem(x) {
			out = append(out, Elem(x))
		}
	}
	return out
}

// IsCommutative reports whether the operation is commutative.
func (t *Table) IsCommutative() bool {
	for i := 0; i < t.n; i++ {
		for j := i + 1; j < t.n; j++ {
			if t.mul[i*t.n+j] != t.mul[j*t.n+i] {
				return false
			}
		}
	}
	return true
}

// String renders the multiplication table.
func (t *Table) String() string {
	var b strings.Builder
	if t.name != "" {
		fmt.Fprintf(&b, "%s (order %d)\n", t.name, t.n)
	}
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", int(t.mul[i*t.n+j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Rows returns the multiplication table as a fresh n×n int matrix —
// Rows()[i][j] = i·j. It is the serialization-facing accessor (certificate
// payloads, diagnostics); mutating the returned matrix does not affect the
// table.
func (t *Table) Rows() [][]int {
	rows := make([][]int, t.n)
	for i := 0; i < t.n; i++ {
		row := make([]int, t.n)
		for j := 0; j < t.n; j++ {
			row[j] = int(t.mul[i*t.n+j])
		}
		rows[i] = row
	}
	return rows
}

// Equal reports table equality (same order, same products); names ignored.
func (t *Table) Equal(u *Table) bool {
	if t.n != u.n {
		return false
	}
	for i := range t.mul {
		if t.mul[i] != u.mul[i] {
			return false
		}
	}
	return true
}

// Interpretation assigns a semigroup element to every alphabet symbol; it is
// how a finite semigroup becomes a model of a presentation.
type Interpretation struct {
	Table  *Table
	Assign map[words.Symbol]Elem
	// Alphabet is the alphabet the assignment is over, kept so consumers
	// (certificate serialization, diagnostics) can render symbol names
	// without threading the alphabet separately.
	Alphabet *words.Alphabet
}

// NewInterpretation validates that every symbol of a is assigned.
func NewInterpretation(t *Table, a *words.Alphabet, assign map[words.Symbol]Elem) (*Interpretation, error) {
	for _, s := range a.Symbols() {
		e, ok := assign[s]
		if !ok {
			return nil, fmt.Errorf("semigroup: symbol %s unassigned", a.Name(s))
		}
		if int(e) < 0 || int(e) >= t.Size() {
			return nil, fmt.Errorf("semigroup: symbol %s assigned out-of-range element %d", a.Name(s), int(e))
		}
	}
	return &Interpretation{Table: t, Assign: assign, Alphabet: a}, nil
}

// Eval computes the value of a non-empty word.
func (in *Interpretation) Eval(w words.Word) (Elem, error) {
	if w.IsEmpty() {
		return 0, fmt.Errorf("semigroup: cannot evaluate the empty word")
	}
	acc, ok := in.Assign[w[0]]
	if !ok {
		return 0, fmt.Errorf("semigroup: unassigned symbol %d", int(w[0]))
	}
	for _, s := range w[1:] {
		e, ok := in.Assign[s]
		if !ok {
			return 0, fmt.Errorf("semigroup: unassigned symbol %d", int(s))
		}
		acc = in.Table.Mul(acc, e)
	}
	return acc, nil
}

// SatisfiesEquation reports whether both sides evaluate equally.
func (in *Interpretation) SatisfiesEquation(e words.Equation) (bool, error) {
	l, err := in.Eval(e.LHS)
	if err != nil {
		return false, err
	}
	r, err := in.Eval(e.RHS)
	if err != nil {
		return false, err
	}
	return l == r, nil
}

// SatisfiesPresentation reports whether every equation holds; on failure the
// index of the first violated equation is returned.
func (in *Interpretation) SatisfiesPresentation(p *words.Presentation) (bool, int, error) {
	for i, e := range p.Equations {
		ok, err := in.SatisfiesEquation(e)
		if err != nil {
			return false, i, err
		}
		if !ok {
			return false, i, nil
		}
	}
	return true, -1, nil
}

// IsModelOfMainLemmaFailure reports whether this interpretation witnesses
// failure of the Main Lemma formula for p: every equation of p holds but
// A0 = 0 does not, the zero symbol denotes a semigroup zero, the semigroup
// has no identity, and the cancellation property (conditions (i) and (ii))
// holds. This is exactly the hypothesis of Reduction Theorem part (B).
func (in *Interpretation) IsModelOfMainLemmaFailure(p *words.Presentation) error {
	a := p.Alphabet
	ok, bad, err := in.SatisfiesPresentation(p)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("semigroup: equation %d (%s) fails", bad, p.Equations[bad].Format(a))
	}
	z, hasZero := in.Table.Zero()
	if !hasZero {
		return fmt.Errorf("semigroup: no zero element")
	}
	if in.Assign[a.Zero()] != z {
		return fmt.Errorf("semigroup: symbol 0 denotes %d, not the zero %d", int(in.Assign[a.Zero()]), int(z))
	}
	if in.Assign[a.A0()] == z {
		return fmt.Errorf("semigroup: A0 denotes the zero, so the goal holds rather than fails")
	}
	if _, hasID := in.Table.Identity(); hasID {
		return fmt.Errorf("semigroup: has an identity; part (B) requires a semigroup without identity")
	}
	if err := CheckCancellation(in.Table); err != nil {
		return err
	}
	return nil
}

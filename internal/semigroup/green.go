package semigroup

import "fmt"

// Green's relations — the standard structural equivalences of semigroup
// theory. They are used here to characterize the witness semigroups of
// Reduction Theorem part (B): in a finite cancellation semigroup with zero
// and no identity, every element outside {0} generates a strictly larger
// ideal than its proper products, which is what makes the P/Q construction
// of the counter-model so sparse.
//
// All relations are computed in S^1 (the semigroup with an identity
// adjoined), as is conventional: a R b iff aS^1 = bS^1, a L b iff
// S^1a = S^1b, H = R ∧ L, J: S^1aS^1 = S^1bS^1, and for finite semigroups
// D = J.

// GreenClasses partitions the elements of t under one of Green's relations.
type GreenClasses struct {
	// Class[i] is the class index of element i; classes are numbered in
	// first-seen order.
	Class []int
	// Count is the number of classes.
	Count int
}

func classesOf(n int, key func(Elem) string) GreenClasses {
	g := GreenClasses{Class: make([]int, n)}
	seen := make(map[string]int)
	for i := 0; i < n; i++ {
		k := key(Elem(i))
		id, ok := seen[k]
		if !ok {
			id = g.Count
			g.Count++
			seen[k] = id
		}
		g.Class[i] = id
	}
	return g
}

// rightIdeal returns the characteristic bitset of aS^1 as a string key.
func rightIdeal(t *Table, a Elem) string {
	n := t.Size()
	in := make([]byte, n)
	in[a] = 1 // identity of S^1
	for x := 0; x < n; x++ {
		in[t.Mul(a, Elem(x))] = 1
	}
	return string(in)
}

func leftIdeal(t *Table, a Elem) string {
	n := t.Size()
	in := make([]byte, n)
	in[a] = 1
	for x := 0; x < n; x++ {
		in[t.Mul(Elem(x), a)] = 1
	}
	return string(in)
}

func twoSidedIdeal(t *Table, a Elem) string {
	n := t.Size()
	in := make([]bool, n)
	in[a] = true
	// Close under left and right multiplication.
	for changed := true; changed; {
		changed = false
		for e := 0; e < n; e++ {
			if !in[e] {
				continue
			}
			for x := 0; x < n; x++ {
				if p := t.Mul(Elem(x), Elem(e)); !in[p] {
					in[p] = true
					changed = true
				}
				if p := t.Mul(Elem(e), Elem(x)); !in[p] {
					in[p] = true
					changed = true
				}
			}
		}
	}
	out := make([]byte, n)
	for i, b := range in {
		if b {
			out[i] = 1
		}
	}
	return string(out)
}

// GreenR computes the R-classes (equal right ideals).
func GreenR(t *Table) GreenClasses {
	return classesOf(t.Size(), func(a Elem) string { return rightIdeal(t, a) })
}

// GreenL computes the L-classes (equal left ideals).
func GreenL(t *Table) GreenClasses {
	return classesOf(t.Size(), func(a Elem) string { return leftIdeal(t, a) })
}

// GreenH computes the H-classes (R and L).
func GreenH(t *Table) GreenClasses {
	return classesOf(t.Size(), func(a Elem) string {
		return rightIdeal(t, a) + "|" + leftIdeal(t, a)
	})
}

// GreenJ computes the J-classes (equal two-sided principal ideals). For
// finite semigroups J coincides with D.
func GreenJ(t *Table) GreenClasses {
	return classesOf(t.Size(), func(a Elem) string { return twoSidedIdeal(t, a) })
}

// Related reports whether x and y are in the same class.
func (g GreenClasses) Related(x, y Elem) bool { return g.Class[x] == g.Class[y] }

// Sizes returns the class sizes indexed by class id.
func (g GreenClasses) Sizes() []int {
	out := make([]int, g.Count)
	for _, c := range g.Class {
		out[c]++
	}
	return out
}

// String summarizes the partition.
func (g GreenClasses) String() string {
	return fmt.Sprintf("%d classes with sizes %v", g.Count, g.Sizes())
}

// IsJTrivial reports whether every J-class is a singleton. Finite
// cancellation semigroups with zero and without identity are J-trivial:
// a = xby forces, by repeated application, a length argument that only the
// zero can absorb (compare the nilpotent witnesses of part (B)).
func IsJTrivial(t *Table) bool {
	return GreenJ(t).Count == t.Size()
}

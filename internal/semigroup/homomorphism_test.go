package semigroup

import "testing"

func TestQuotientProjectionIsHomomorphism(t *testing.T) {
	n5 := NilpotentCyclic(5)
	c, err := CongruenceClosure(n5, [][2]Elem{{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	q, idx := c.Quotient()
	if err := IsHomomorphism(n5, q, QuotientProjection(idx)); err != nil {
		t.Errorf("projection not a homomorphism: %v", err)
	}
}

func TestAdjoinIdentityEmbedding(t *testing.T) {
	// The inclusion G -> G' of the part (B) proof is an embedding.
	g := NilpotentCyclic(4)
	gp, _ := AdjoinIdentity(g)
	inc := make([]Elem, g.Size())
	for i := range inc {
		inc[i] = Elem(i)
	}
	if err := IsEmbedding(g, gp, inc); err != nil {
		t.Errorf("inclusion not an embedding: %v", err)
	}
}

func TestIsHomomorphismRejections(t *testing.T) {
	n3 := NilpotentCyclic(3)
	if err := IsHomomorphism(n3, n3, []Elem{0}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := IsHomomorphism(n3, n3, []Elem{0, 1, 9}); err == nil {
		t.Error("out-of-range image accepted")
	}
	// a -> a, a2 -> a, 0 -> 0 breaks f(a·a) = f(a)·f(a).
	if err := IsHomomorphism(n3, n3, []Elem{0, 0, 2}); err == nil {
		t.Error("non-homomorphism accepted")
	}
	// Non-injective homomorphism rejected by IsEmbedding: collapse all to 0.
	if err := IsEmbedding(n3, n3, []Elem{2, 2, 2}); err == nil {
		t.Error("constant map accepted as embedding")
	}
	// But it IS a homomorphism (everything to the zero).
	if err := IsHomomorphism(n3, n3, []Elem{2, 2, 2}); err != nil {
		t.Errorf("constant-zero map rejected: %v", err)
	}
}

func TestCountHomomorphisms(t *testing.T) {
	// N2 = {a, 0}, a² = 0. Homs N2 -> N3: f(0₂) must be idempotent... work
	// it out: f determined by f(a) = x with x·x = f(a²) = f(0₂); f(0₂)
	// must be the image of the zero, and f respects products. Candidates
	// for (f(a), f(0)): (a, a²): a·a = a² ✓ and 0-row: f(0·a) = f(0) = a²
	// vs f(0)·f(a) = a²·a = 0 ✗. So zero must map to a zero-absorbing
	// element for all images: f(0)·f(a) = f(0) forces... enumerate by hand
	// is error-prone; assert agreement with a direct filter instead.
	n2 := NilpotentCyclic(2)
	n3 := NilpotentCyclic(3)
	got := CountHomomorphisms(n2, n3)
	brute := 0
	for x := 0; x < 3; x++ {
		for z := 0; z < 3; z++ {
			f := []Elem{Elem(x), Elem(z)}
			if IsHomomorphism(n2, n3, f) == nil {
				brute++
			}
		}
	}
	if got != brute {
		t.Errorf("CountHomomorphisms = %d, brute = %d", got, brute)
	}
	if got == 0 {
		t.Error("expected at least the constant-zero homomorphism")
	}
}

func TestCountHomomorphismsIdentity(t *testing.T) {
	// Hom(G, G) always contains the identity.
	g := NilpotentCyclic(3)
	if CountHomomorphisms(g, g) < 1 {
		t.Error("no endomorphisms found")
	}
}

package semigroup

import (
	"strings"
	"testing"
)

func TestGreenNilpotentCyclic(t *testing.T) {
	// N4 = {a, a2, a3=0... no: a, a2, a3, 0}. Principal ideals are nested
	// strictly: every Green relation is trivial (singleton classes).
	n4 := NilpotentCyclic(4)
	for name, g := range map[string]GreenClasses{
		"R": GreenR(n4), "L": GreenL(n4), "H": GreenH(n4), "J": GreenJ(n4),
	} {
		if g.Count != n4.Size() {
			t.Errorf("%s: %d classes, want %d (trivial)", name, g.Count, n4.Size())
		}
	}
	if !IsJTrivial(n4) {
		t.Error("N4 should be J-trivial")
	}
}

func TestGreenGroup(t *testing.T) {
	// In a group every Green relation is total: one class.
	g := cyclicGroup(4)
	for name, cls := range map[string]GreenClasses{
		"R": GreenR(g), "L": GreenL(g), "H": GreenH(g), "J": GreenJ(g),
	} {
		if cls.Count != 1 {
			t.Errorf("%s: %d classes, want 1", name, cls.Count)
		}
	}
	if IsJTrivial(g) {
		t.Error("a nontrivial group is not J-trivial")
	}
}

func TestGreenLeftZero(t *testing.T) {
	// Left-zero semigroup: x·y = x. aS^1 = {a} ∪ {a} = {a}: R-classes are
	// singletons... a·x = a so aS^1 = {a}: all right ideals are distinct
	// singletons -> R trivial. S^1a = {a} ∪ {x·a} = everything... x·a = x,
	// so S^1a = S ∪ {a} = S: all left ideals equal -> L is total.
	lz := leftZero(3)
	if got := GreenR(lz).Count; got != 3 {
		t.Errorf("R classes = %d, want 3", got)
	}
	if got := GreenL(lz).Count; got != 1 {
		t.Errorf("L classes = %d, want 1", got)
	}
	// H = R ∧ L = R here.
	if got := GreenH(lz).Count; got != 3 {
		t.Errorf("H classes = %d, want 3", got)
	}
	// J: two-sided ideals all equal S -> one class.
	if got := GreenJ(lz).Count; got != 1 {
		t.Errorf("J classes = %d, want 1", got)
	}
}

func TestGreenRelatedAndSizes(t *testing.T) {
	lz := leftZero(3)
	l := GreenL(lz)
	if !l.Related(0, 2) {
		t.Error("left-zero elements should be L-related")
	}
	sizes := l.Sizes()
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
	if !strings.Contains(l.String(), "1 classes") {
		t.Errorf("String = %q", l.String())
	}
}

func TestWitnessSemigroupsAreJTrivial(t *testing.T) {
	// The nilpotent witnesses used for part (B) are all J-trivial.
	for n := 2; n <= 6; n++ {
		if !IsJTrivial(NilpotentCyclic(n)) {
			t.Errorf("N%d not J-trivial", n)
		}
	}
	b23, _ := FreeNilpotent(2, 3)
	if !IsJTrivial(b23) {
		t.Error("B(2,3) not J-trivial")
	}
}

package semigroup

import (
	"fmt"
	"sort"
)

// Congruence is an equivalence relation on a table's elements compatible
// with multiplication: x ~ x' and y ~ y' imply xy ~ x'y'.
type Congruence struct {
	table  *Table
	parent []Elem
}

// CongruenceClosure computes the smallest congruence on t containing the
// given pairs, by union-find with product propagation to fixpoint.
func CongruenceClosure(t *Table, pairs [][2]Elem) (*Congruence, error) {
	n := t.Size()
	c := &Congruence{table: t, parent: make([]Elem, n)}
	for i := range c.parent {
		c.parent[i] = Elem(i)
	}
	for _, p := range pairs {
		for _, e := range p {
			if int(e) < 0 || int(e) >= n {
				return nil, fmt.Errorf("semigroup: congruence pair element %d out of range", int(e))
			}
		}
		c.union(p[0], p[1])
	}
	// Propagate compatibility to fixpoint.
	for changed := true; changed; {
		changed = false
		for x := 0; x < n; x++ {
			for y := x + 1; y < n; y++ {
				if c.find(Elem(x)) != c.find(Elem(y)) {
					continue
				}
				for z := 0; z < n; z++ {
					if c.union(t.Mul(Elem(x), Elem(z)), t.Mul(Elem(y), Elem(z))) {
						changed = true
					}
					if c.union(t.Mul(Elem(z), Elem(x)), t.Mul(Elem(z), Elem(y))) {
						changed = true
					}
				}
			}
		}
	}
	return c, nil
}

func (c *Congruence) find(e Elem) Elem {
	for c.parent[e] != e {
		c.parent[e] = c.parent[c.parent[e]]
		e = c.parent[e]
	}
	return e
}

// union merges the classes of x and y, reporting whether anything changed.
func (c *Congruence) union(x, y Elem) bool {
	rx, ry := c.find(x), c.find(y)
	if rx == ry {
		return false
	}
	if rx > ry {
		rx, ry = ry, rx
	}
	c.parent[ry] = rx
	return true
}

// Related reports whether x ~ y.
func (c *Congruence) Related(x, y Elem) bool { return c.find(x) == c.find(y) }

// Classes returns the partition as sorted slices, sorted by smallest member.
func (c *Congruence) Classes() [][]Elem {
	byRoot := make(map[Elem][]Elem)
	for e := 0; e < c.table.Size(); e++ {
		r := c.find(Elem(e))
		byRoot[r] = append(byRoot[r], Elem(e))
	}
	out := make([][]Elem, 0, len(byRoot))
	for _, cls := range byRoot {
		out = append(out, cls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Quotient returns t/~ together with the projection map from t's elements
// to quotient indices.
func (c *Congruence) Quotient() (*Table, []Elem) {
	classes := c.Classes()
	idx := make([]Elem, c.table.Size())
	for qi, cls := range classes {
		for _, e := range cls {
			idx[e] = Elem(qi)
		}
	}
	n := len(classes)
	mul := make([]Elem, n*n)
	for i, ci := range classes {
		for j, cj := range classes {
			mul[i*n+j] = idx[c.table.Mul(ci[0], cj[0])]
		}
	}
	return newUnchecked(n, mul, c.table.Name()+"/~"), idx
}

// ReesQuotient collapses a two-sided ideal to a single zero element. The
// ideal must be closed under multiplication by arbitrary elements on both
// sides; an error reports a violation. The projection map is returned.
func ReesQuotient(t *Table, ideal []Elem) (*Table, []Elem, error) {
	inIdeal := make([]bool, t.Size())
	for _, e := range ideal {
		if int(e) < 0 || int(e) >= t.Size() {
			return nil, nil, fmt.Errorf("semigroup: ideal element %d out of range", int(e))
		}
		inIdeal[e] = true
	}
	if len(ideal) == 0 {
		return nil, nil, fmt.Errorf("semigroup: empty ideal")
	}
	for i := 0; i < t.Size(); i++ {
		for j := 0; j < t.Size(); j++ {
			if (inIdeal[i] || inIdeal[j]) && !inIdeal[t.Mul(Elem(i), Elem(j))] {
				return nil, nil, fmt.Errorf("semigroup: set is not an ideal: %d·%d escapes", i, j)
			}
		}
	}
	var pairs [][2]Elem
	first := ideal[0]
	for _, e := range ideal[1:] {
		pairs = append(pairs, [2]Elem{first, e})
	}
	c, err := CongruenceClosure(t, pairs)
	if err != nil {
		return nil, nil, err
	}
	q, idx := c.Quotient()
	return q, idx, nil
}

// IsIsomorphic reports whether s and t are isomorphic, by backtracking over
// bijections with idempotent/row-profile pruning. Intended for small tables
// (order <= 8 or so).
func IsIsomorphic(s, t *Table) bool {
	n := s.Size()
	if n != t.Size() {
		return false
	}
	// Invariant profile: (is idempotent, row multiset rank, column multiset
	// rank) must match under any isomorphism; compare coarse signatures.
	sig := func(tb *Table, e Elem) [3]int {
		idem := 0
		if tb.Mul(e, e) == e {
			idem = 1
		}
		rowDistinct := map[Elem]bool{}
		colDistinct := map[Elem]bool{}
		for x := 0; x < tb.Size(); x++ {
			rowDistinct[tb.Mul(e, Elem(x))] = true
			colDistinct[tb.Mul(Elem(x), e)] = true
		}
		return [3]int{idem, len(rowDistinct), len(colDistinct)}
	}
	ssig := make([][3]int, n)
	tsig := make([][3]int, n)
	for i := 0; i < n; i++ {
		ssig[i] = sig(s, Elem(i))
		tsig[i] = sig(t, Elem(i))
	}
	perm := make([]Elem, n)
	used := make([]bool, n)
	for i := range perm {
		perm[i] = -1
	}
	var try func(i int) bool
	try = func(i int) bool {
		if i == n {
			return true
		}
		for j := 0; j < n; j++ {
			if used[j] || ssig[i] != tsig[j] {
				continue
			}
			perm[i] = Elem(j)
			used[j] = true
			ok := true
			// Check all products among assigned elements.
			for a := 0; a <= i && ok; a++ {
				for b := 0; b <= i && ok; b++ {
					p := s.Mul(Elem(a), Elem(b))
					if int(p) <= i {
						if t.Mul(perm[a], perm[b]) != perm[p] {
							ok = false
						}
					} else {
						// Product maps outside the assigned prefix: its
						// image must not be an already-used target that
						// conflicts; defer full check.
						q := t.Mul(perm[a], perm[b])
						for c := 0; c <= i; c++ {
							if perm[c] == q && Elem(c) != p {
								ok = false
								break
							}
						}
					}
				}
			}
			if ok && try(i+1) {
				return true
			}
			used[j] = false
			perm[i] = -1
		}
		return false
	}
	return try(0)
}

package semigroup

import "fmt"

// Homomorphisms between finite semigroups. Used to validate the package's
// quotient constructions (the natural projection onto a quotient is a
// surjective homomorphism) and the identity-adjoining embedding of the
// part (B) proof.

// IsHomomorphism reports whether f (given as a total map from s's elements)
// respects multiplication: f(x·y) = f(x)·f(y).
func IsHomomorphism(s, t *Table, f []Elem) error {
	if len(f) != s.Size() {
		return fmt.Errorf("semigroup: map has %d entries, want %d", len(f), s.Size())
	}
	for _, v := range f {
		if int(v) < 0 || int(v) >= t.Size() {
			return fmt.Errorf("semigroup: image %d out of range", int(v))
		}
	}
	for x := 0; x < s.Size(); x++ {
		for y := 0; y < s.Size(); y++ {
			if f[s.Mul(Elem(x), Elem(y))] != t.Mul(f[x], f[y]) {
				return fmt.Errorf("semigroup: f(%d·%d) = %d but f(%d)·f(%d) = %d",
					x, y, int(f[s.Mul(Elem(x), Elem(y))]), x, y, int(t.Mul(f[x], f[y])))
			}
		}
	}
	return nil
}

// IsEmbedding reports whether f is an injective homomorphism.
func IsEmbedding(s, t *Table, f []Elem) error {
	if err := IsHomomorphism(s, t, f); err != nil {
		return err
	}
	seen := make(map[Elem]int)
	for x, v := range f {
		if prev, dup := seen[v]; dup {
			return fmt.Errorf("semigroup: not injective: f(%d) = f(%d) = %d", prev, x, int(v))
		}
		seen[v] = x
	}
	return nil
}

// CountHomomorphisms counts all homomorphisms s -> t by backtracking over
// generator images (non-generators are forced). Intended for small tables.
func CountHomomorphisms(s, t *Table) int {
	n := s.Size()
	f := make([]Elem, n)
	for i := range f {
		f[i] = -1
	}
	count := 0
	var try func(x int)
	try = func(x int) {
		if x == n {
			count++
			return
		}
		for v := 0; v < t.Size(); v++ {
			f[x] = Elem(v)
			ok := true
			// Check all products among assigned elements that land in the
			// assigned prefix.
			for a := 0; a <= x && ok; a++ {
				for b := 0; b <= x && ok; b++ {
					p := s.Mul(Elem(a), Elem(b))
					if int(p) <= x && f[p] != t.Mul(f[a], f[b]) {
						ok = false
					}
					if int(p) > x {
						// Partially determined: the image of p is forced;
						// record-check later when p is reached. Consistency
						// deferred to that level.
						_ = p
					}
				}
			}
			if ok {
				try(x + 1)
			}
			f[x] = -1
		}
	}
	try(0)
	return count
}

// QuotientProjection returns the natural map of CongruenceClosure.Quotient
// as an element map suitable for IsHomomorphism.
func QuotientProjection(idx []Elem) []Elem {
	return append([]Elem(nil), idx...)
}

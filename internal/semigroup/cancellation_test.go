package semigroup

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNilpotentCyclicCancellation(t *testing.T) {
	for n := 2; n <= 8; n++ {
		if err := CheckCancellation(NilpotentCyclic(n)); err != nil {
			t.Errorf("N%d: %v", n, err)
		}
	}
}

func TestFreeNilpotentCancellation(t *testing.T) {
	for _, kc := range [][2]int{{1, 2}, {2, 2}, {2, 3}, {3, 2}} {
		tb, gens := FreeNilpotent(kc[0], kc[1])
		if err := CheckCancellation(tb); err != nil {
			t.Errorf("B(%d,%d): %v", kc[0], kc[1], err)
		}
		if len(gens) != kc[0] {
			t.Errorf("B(%d,%d): %d generators", kc[0], kc[1], len(gens))
		}
		if _, ok := tb.Identity(); ok {
			t.Errorf("B(%d,%d) has an identity", kc[0], kc[1])
		}
		if _, ok := tb.Zero(); !ok {
			t.Errorf("B(%d,%d) has no zero", kc[0], kc[1])
		}
	}
}

func TestCancellationRequiresZero(t *testing.T) {
	if err := CheckCancellation(cyclicGroup(3)); err == nil {
		t.Error("semigroup without zero accepted")
	}
}

func TestConditionIIViolation(t *testing.T) {
	// {e, b, 0} with e·e = e and every other product 0: e is idempotent but
	// not an identity (e·b = 0 != b), so condition (ii) applies and fails
	// on e·e = e != 0. Condition (i) holds, so the error must cite (ii).
	tb := MustNew([][]Elem{
		{0, 2, 2},
		{2, 2, 2},
		{2, 2, 2},
	}, "idem-no-id")
	err := CheckCancellation(tb)
	if err == nil {
		t.Fatal("condition (ii) violation not detected")
	}
	if !strings.Contains(err.Error(), "(ii)") {
		t.Errorf("error should cite condition (ii): %v", err)
	}
}

func TestConditionIViolationProper(t *testing.T) {
	// Null extension with a genuine (i) violation: x·y = x·y' != 0 with
	// y != y'. Build: elements {a, b, c, z} with a·b = a·c = b (nonzero),
	// everything else z. Associativity: products of three elements always
	// hit z... check: (a·b)·x = b·x = z; a·(b·x) = a·z = z ok; (a·a)·b =
	// z·b = z; a·(a·b) = a·b = b. NOT associative. Instead use a table
	// where the violating products are absorbed: elements {a, b, z};
	// a·a = b, b·anything = z, a·b = b·a = z? Then y -> a·y: a·a = b,
	// a·b = z: injective on nonzero. Try three generators: x·y1 = x·y2 = w
	// requires w != 0 and w·t = 0 for all t to keep associativity simple:
	// elements {x, y1, y2, w, z}: x·y1 = x·y2 = w, all other products z.
	// Check associativity: (x·y1)·t = w·t = z and x·(y1·t) = x·z = z ✓;
	// (t·x)·y1 = z·y1 = z, t·(x·y1) = t·w = z ✓; (x·x)·y1 = z·y1 = z,
	// x·(x·y1) = x·w = z ✓. Associative.
	mul := make([][]Elem, 5)
	for i := range mul {
		mul[i] = []Elem{4, 4, 4, 4, 4}
	}
	mul[0][1] = 3 // x·y1 = w
	mul[0][2] = 3 // x·y2 = w
	tb := MustNew(mul, "viol-i")
	err := CheckCancellation(tb)
	if err == nil {
		t.Fatal("condition (i) violation not detected")
	}
}

func TestAdjoinIdentity(t *testing.T) {
	n3 := NilpotentCyclic(3)
	g, id := AdjoinIdentity(n3)
	if g.Size() != 4 {
		t.Fatalf("size %d", g.Size())
	}
	gotID, ok := g.Identity()
	if !ok || gotID != id {
		t.Errorf("identity = %v, %v", gotID, ok)
	}
	// Old products preserved.
	if g.Mul(0, 0) != n3.Mul(0, 0) {
		t.Error("old products changed")
	}
	// Zero survives.
	z, ok := g.Zero()
	if !ok || z != Elem(2) {
		t.Errorf("zero = %v, %v", z, ok)
	}
	if !g.AssociativityNaive() {
		t.Error("adjoined table not associative")
	}
}

// The paper's claim in the proof of (B): if G (no identity, with zero) has
// the cancellation property, then G' = G + identity has it too.
func TestAdjoinIdentityPreservesCancellation(t *testing.T) {
	cases := []*Table{NilpotentCyclic(3), NilpotentCyclic(6)}
	tb, _ := FreeNilpotent(2, 3)
	cases = append(cases, tb)
	for _, g := range cases {
		if err := CheckCancellation(g); err != nil {
			t.Fatalf("%s: precondition: %v", g.Name(), err)
		}
		gp, _ := AdjoinIdentity(g)
		if err := CheckCancellation(gp); err != nil {
			t.Errorf("%s: cancellation lost after adjoining identity: %v", g.Name(), err)
		}
	}
}

// Property: for random nilpotent-style tables built from Rees quotients of
// free nilpotents, cancellation of G implies cancellation of G+I.
func TestAdjoinIdentityPreservesCancellationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(2)
		c := 2 + rng.Intn(2)
		g, _ := FreeNilpotent(k, c)
		if err := CheckCancellation(g); err != nil {
			return true // not a cancellation semigroup; vacuous
		}
		gp, _ := AdjoinIdentity(g)
		return CheckCancellation(gp) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

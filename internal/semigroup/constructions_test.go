package semigroup

import (
	"testing"

	"templatedep/internal/words"
)

func TestNilpotentCyclicStructure(t *testing.T) {
	n5 := NilpotentCyclic(5)
	// a^2 · a^2 = a^4, the last nonzero power in N5.
	if got := n5.Mul(PowerElem(5, 2), PowerElem(5, 2)); got != PowerElem(5, 4) {
		t.Errorf("a^2·a^2 = %v", got)
	}
	// a^3 · a^2 = a^5 = 0.
	if got := n5.Mul(PowerElem(5, 3), PowerElem(5, 2)); got != Elem(4) {
		t.Errorf("a^3·a^2 = %v", got)
	}
	// a · a^2 = a^3
	if got := n5.Mul(PowerElem(5, 1), PowerElem(5, 2)); got != PowerElem(5, 3) {
		t.Errorf("a·a^2 = %v", got)
	}
	if !n5.AssociativityNaive() {
		t.Error("N5 not associative")
	}
	// Degenerate n clamps to 2.
	if NilpotentCyclic(1).Size() != 2 {
		t.Error("clamp failed")
	}
	if PowerElem(3, 7) != Elem(2) {
		t.Error("PowerElem overflow should be zero")
	}
}

func TestFreeNilpotentStructure(t *testing.T) {
	// B(2,3): words of length 1..2 over 2 generators: 2 + 4 = 6, plus zero.
	tb, gens := FreeNilpotent(2, 3)
	if tb.Size() != 7 {
		t.Fatalf("size %d, want 7", tb.Size())
	}
	if !tb.AssociativityNaive() {
		t.Error("not associative")
	}
	// g0·g1 is a length-2 word (nonzero); (g0·g1)·g0 = 0.
	p := tb.Mul(gens[0], gens[1])
	z, _ := tb.Zero()
	if p == z {
		t.Error("g0·g1 should be nonzero")
	}
	if tb.Mul(p, gens[0]) != z {
		t.Error("length-3 product should be zero")
	}
	// Distinct length-2 words are distinct elements.
	q := tb.Mul(gens[1], gens[0])
	if p == q {
		t.Error("g0g1 and g1g0 should differ")
	}
	// Degenerate arguments clamp.
	small, g := FreeNilpotent(0, 0)
	if small.Size() != 2 || len(g) != 1 {
		t.Errorf("clamped B = order %d with %d gens", small.Size(), len(g))
	}
}

func TestDirectProduct(t *testing.T) {
	a := NilpotentCyclic(2)
	b := NilpotentCyclic(3)
	p := DirectProduct(a, b)
	if p.Size() != 6 {
		t.Fatalf("size %d", p.Size())
	}
	if !p.AssociativityNaive() {
		t.Error("product not associative")
	}
	// Zero of the product is the pair of zeros: (1, 2) -> 1*3+2 = 5.
	z, ok := p.Zero()
	if !ok || z != Elem(5) {
		t.Errorf("zero = %v, %v", z, ok)
	}
	if p.IsCommutative() != (a.IsCommutative() && b.IsCommutative()) {
		t.Error("commutativity of product wrong")
	}
}

func TestSubsemigroupGenerated(t *testing.T) {
	n6 := NilpotentCyclic(6)
	// a^2 generates {a^2, a^4, 0}: indices 1, 3, 5.
	sub, members, err := SubsemigroupGenerated(n6, []Elem{PowerElem(6, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 3 {
		t.Fatalf("size %d, want 3 (got members %v)", sub.Size(), members)
	}
	if !sub.AssociativityNaive() {
		t.Error("not associative")
	}
	// Subsemigroup of a^2 is isomorphic to N3.
	if !IsIsomorphic(sub, NilpotentCyclic(3)) {
		t.Error("a^2-subsemigroup of N6 should be isomorphic to N3")
	}
	if _, _, err := SubsemigroupGenerated(n6, nil); err == nil {
		t.Error("empty generating set accepted")
	}
	if _, _, err := SubsemigroupGenerated(n6, []Elem{99}); err == nil {
		t.Error("out-of-range generator accepted")
	}
}

func TestNilpotentInterpretationForPowers(t *testing.T) {
	for m := 1; m <= 4; m++ {
		in, p, err := NilpotentInterpretationForPowers(m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if err := in.IsModelOfMainLemmaFailure(p); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
	}
}

func TestTrivialZeroInterpretationSatisfiesAll(t *testing.T) {
	p := words.ChainPresentation(2)
	in, err := TrivialZeroInterpretation(p)
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, err := in.SatisfiesPresentation(p)
	if err != nil || !ok {
		t.Errorf("ok=%v bad=%d err=%v", ok, bad, err)
	}
}

package semigroup

import (
	"strings"
	"testing"

	"templatedep/internal/words"
)

// leftZero returns the left-zero semigroup of order n: x·y = x.
func leftZero(n int) *Table {
	mul := make([][]Elem, n)
	for i := range mul {
		mul[i] = make([]Elem, n)
		for j := range mul[i] {
			mul[i][j] = Elem(i)
		}
	}
	return MustNew(mul, "LZ")
}

// cyclicGroup returns Z_n under addition.
func cyclicGroup(n int) *Table {
	mul := make([][]Elem, n)
	for i := range mul {
		mul[i] = make([]Elem, n)
		for j := range mul[i] {
			mul[i][j] = Elem((i + j) % n)
		}
	}
	return MustNew(mul, "Z")
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, ""); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := New([][]Elem{{0, 0}, {0}}, ""); err == nil {
		t.Error("ragged table accepted")
	}
	if _, err := New([][]Elem{{5}}, ""); err == nil {
		t.Error("out-of-range entry accepted")
	}
	// Non-associative magma: x·y table chosen to break associativity.
	bad := [][]Elem{
		{0, 1},
		{0, 0},
	}
	// (1·1)·1 = 0·1 = 1; 1·(1·1) = 1·0 = 0.
	if _, err := New(bad, ""); err == nil {
		t.Error("non-associative table accepted")
	}
}

func TestZeroIdentityIdempotents(t *testing.T) {
	n3 := NilpotentCyclic(3)
	z, ok := n3.Zero()
	if !ok || z != Elem(2) {
		t.Errorf("N3 zero = %v, %v", z, ok)
	}
	if _, ok := n3.Identity(); ok {
		t.Error("N3 should have no identity")
	}
	idem := n3.Idempotents()
	if len(idem) != 1 || idem[0] != z {
		t.Errorf("N3 idempotents = %v", idem)
	}

	g := cyclicGroup(4)
	if _, ok := g.Zero(); ok {
		t.Error("Z4 has no zero")
	}
	id, ok := g.Identity()
	if !ok || id != Elem(0) {
		t.Errorf("Z4 identity = %v, %v", id, ok)
	}
}

func TestMulWordElems(t *testing.T) {
	n4 := NilpotentCyclic(4)
	// a · a = a^2
	got, err := n4.MulWordElems([]Elem{0, 0})
	if err != nil || got != PowerElem(4, 2) {
		t.Errorf("a·a = %v, %v", got, err)
	}
	// a·a·a·a = 0 in N4
	got, err = n4.MulWordElems([]Elem{0, 0, 0, 0})
	if err != nil || got != Elem(3) {
		t.Errorf("a^4 = %v, %v", got, err)
	}
	if _, err := n4.MulWordElems(nil); err == nil {
		t.Error("empty product accepted")
	}
}

func TestAssociativityAgreement(t *testing.T) {
	for _, tb := range []*Table{NilpotentCyclic(5), cyclicGroup(6), leftZero(4)} {
		if !tb.AssociativityNaive() {
			t.Errorf("%s: naive check failed", tb.Name())
		}
		if _, _, _, ok := tb.associativityDefect(); !ok {
			t.Errorf("%s: Light's test failed", tb.Name())
		}
	}
}

func TestGeneratingSet(t *testing.T) {
	n5 := NilpotentCyclic(5)
	gens := n5.GeneratingSet()
	// a generates everything: a, a^2, a^3, 0=a^4.
	if len(gens) != 1 || gens[0] != Elem(0) {
		t.Errorf("N5 generators = %v", gens)
	}
	lz := leftZero(3)
	if len(lz.GeneratingSet()) != 3 {
		t.Errorf("left-zero generators = %v", lz.GeneratingSet())
	}
}

func TestIsCommutative(t *testing.T) {
	if !NilpotentCyclic(4).IsCommutative() {
		t.Error("N4 should be commutative")
	}
	if leftZero(2).IsCommutative() {
		t.Error("left-zero should not be commutative")
	}
}

func TestStringAndEqual(t *testing.T) {
	n2 := NilpotentCyclic(2)
	s := n2.String()
	if !strings.Contains(s, "N2") || !strings.Contains(s, "1 1") {
		t.Errorf("String = %q", s)
	}
	if !n2.Equal(NilpotentCyclic(2)) {
		t.Error("equal tables reported unequal")
	}
	if n2.Equal(NilpotentCyclic(3)) {
		t.Error("different orders reported equal")
	}
	if n2.Equal(leftZero(2)) {
		t.Error("different tables reported equal")
	}
}

func TestInterpretationEvalAndSatisfaction(t *testing.T) {
	in, p, err := NilpotentInterpretationForPowers(2)
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, err := in.SatisfiesPresentation(p)
	if err != nil || !ok {
		t.Fatalf("satisfaction: ok=%v bad=%d err=%v", ok, bad, err)
	}
	// Goal must fail: A0 evaluates to a != 0.
	goalHolds, err := in.SatisfiesEquation(p.Goal())
	if err != nil {
		t.Fatal(err)
	}
	if goalHolds {
		t.Error("goal should fail in the counterexample")
	}
	if err := in.IsModelOfMainLemmaFailure(p); err != nil {
		t.Errorf("IsModelOfMainLemmaFailure: %v", err)
	}
}

func TestInterpretationErrors(t *testing.T) {
	p := words.PowerPresentation()
	t2 := NilpotentCyclic(2)
	if _, err := NewInterpretation(t2, p.Alphabet, map[words.Symbol]Elem{}); err == nil {
		t.Error("missing assignment accepted")
	}
	if _, err := NewInterpretation(t2, p.Alphabet, map[words.Symbol]Elem{
		p.Alphabet.A0():            Elem(9),
		p.Alphabet.Zero():          Elem(1),
		p.Alphabet.MustSymbol("B"): Elem(0),
	}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	in, err := TrivialZeroInterpretation(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Eval(words.Word{}); err == nil {
		t.Error("empty word evaluated")
	}
	// Trivial interpretation satisfies everything but is not a failure
	// witness (A0 = 0 holds).
	if err := in.IsModelOfMainLemmaFailure(p); err == nil {
		t.Error("trivial interpretation accepted as failure witness")
	}
}

func TestIsModelOfMainLemmaFailureRejections(t *testing.T) {
	// Equation fails: interpret PowerPresentation in N3 with B -> a (not a^2).
	p := words.PowerPresentation()
	n3 := NilpotentCyclic(3)
	in, err := NewInterpretation(n3, p.Alphabet, map[words.Symbol]Elem{
		p.Alphabet.A0():            Elem(0),
		p.Alphabet.MustSymbol("B"): Elem(0), // wrong: a·a = a^2, not a
		p.Alphabet.Zero():          Elem(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.IsModelOfMainLemmaFailure(p); err == nil {
		t.Error("violated equation accepted")
	}
	// Zero symbol not the zero element.
	in2, err := NewInterpretation(n3, p.Alphabet, map[words.Symbol]Elem{
		p.Alphabet.A0():            Elem(0),
		p.Alphabet.MustSymbol("B"): Elem(1),
		p.Alphabet.Zero():          Elem(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in2.IsModelOfMainLemmaFailure(p); err == nil {
		t.Error("mis-assigned zero accepted")
	}
	// Semigroup with identity must be rejected.
	g := cyclicGroup(3)
	inG, err := NewInterpretation(g, p.Alphabet, map[words.Symbol]Elem{
		p.Alphabet.A0():            Elem(1),
		p.Alphabet.MustSymbol("B"): Elem(2),
		p.Alphabet.Zero():          Elem(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inG.IsModelOfMainLemmaFailure(p); err == nil {
		t.Error("group (no zero / has identity) accepted")
	}
}

package semigroup

import "testing"

func TestCountLabeledMatchesOEIS(t *testing.T) {
	// OEIS A023814: number of associative binary operations on an n-set.
	want := map[int]int{1: 1, 2: 8, 3: 113}
	for n, w := range want {
		if got := CountLabeled(n); got != w {
			t.Errorf("CountLabeled(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestCountLabeledOrder4MatchesOEIS(t *testing.T) {
	if testing.Short() {
		t.Skip("order-4 enumeration (~200ms) skipped in -short mode")
	}
	if got := CountLabeled(4); got != 3492 {
		t.Errorf("CountLabeled(4) = %d, want 3492", got)
	}
}

func TestCountUpToIsoOrder4MatchesOEIS(t *testing.T) {
	if testing.Short() {
		t.Skip("order-4 iso enumeration (~500ms) skipped in -short mode")
	}
	if got := CountUpToIso(4); got != 188 {
		t.Errorf("CountUpToIso(4) = %d, want 188", got)
	}
}

func TestCountUpToIsoMatchesOEIS(t *testing.T) {
	// OEIS A027851: number of semigroups of order n up to isomorphism.
	want := map[int]int{1: 1, 2: 5, 3: 24}
	for n, w := range want {
		if got := CountUpToIso(n); got != w {
			t.Errorf("CountUpToIso(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestEnumerateLabeledAllAssociative(t *testing.T) {
	EnumerateLabeled(3, func(tb *Table) bool {
		if !tb.AssociativityNaive() {
			t.Fatalf("non-associative table yielded:\n%s", tb.String())
		}
		return true
	})
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	EnumerateLabeled(3, func(*Table) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop after %d", n)
	}
	n = 0
	EnumerateUpToIso(2, func(*Table) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("iso early stop after %d", n)
	}
}

func TestEnumerateRepsPairwiseNonIsomorphic(t *testing.T) {
	var reps []*Table
	EnumerateUpToIso(3, func(tb *Table) bool {
		reps = append(reps, tb)
		return true
	})
	for i := 0; i < len(reps); i++ {
		for j := i + 1; j < len(reps); j++ {
			if IsIsomorphic(reps[i], reps[j]) {
				t.Fatalf("representatives %d and %d are isomorphic", i, j)
			}
		}
	}
}

func TestTakeCensusOrder3(t *testing.T) {
	c := TakeCensus(3)
	if c.Classes != 24 {
		t.Fatalf("classes = %d, want 24", c.Classes)
	}
	// The null semigroup + a: N3 is among them, so the witness class is
	// non-empty; monoids of order 3 exist; at least one non-commutative
	// semigroup (left-zero) exists.
	if c.WitnessClass < 1 {
		t.Error("witness class empty at order 3")
	}
	if c.WithIdentity < 1 || c.WithZero < 1 {
		t.Errorf("census: %+v", c)
	}
	if c.Commutative >= c.Classes {
		t.Error("every order-3 semigroup commutative?")
	}
	if c.JTrivial < 1 {
		t.Error("no J-trivial semigroups found")
	}
}

func TestEnumerateDegenerate(t *testing.T) {
	if CountLabeled(0) != 0 {
		t.Error("order 0 should yield nothing")
	}
	if CountLabeled(1) != 1 {
		t.Error("order 1 has exactly one table")
	}
}

package semigroup

import "fmt"

// CheckCancellation verifies the paper's cancellation property for a finite
// semigroup with zero.
//
// For a semigroup G with zero 0 and an identity, the property is
//
//	(i) (xy = xy' != 0  or  yx = y'x != 0)  =>  y = y'.
//
// If G has zero but no identity, the property additionally requires
//
//	(ii) (xy = x or yx = x)  =>  x = 0,
//
// the condition that "describes a circumstance in which cancellation would
// yield the identity, if there were one"; it is what makes adjoining an
// identity preserve cancellation (see AdjoinIdentity and the proof of part
// (B)). CheckCancellation returns nil iff the applicable conditions hold.
func CheckCancellation(t *Table) error {
	z, ok := t.Zero()
	if !ok {
		return fmt.Errorf("semigroup: cancellation property is defined for semigroups with zero; none found")
	}
	if err := checkConditionI(t, z); err != nil {
		return err
	}
	if _, hasID := t.Identity(); !hasID {
		if err := checkConditionII(t, z); err != nil {
			return err
		}
	}
	return nil
}

// checkConditionI verifies (i): nonzero products cancel on both sides.
func checkConditionI(t *Table, z Elem) error {
	n := t.Size()
	for x := 0; x < n; x++ {
		// Left cancellation: the map y -> xy must be injective on
		// preimages of nonzero values.
		seen := make([]int, n) // product -> first y+1 with x·y = product
		for y := 0; y < n; y++ {
			p := t.Mul(Elem(x), Elem(y))
			if p == z {
				continue
			}
			if prev := seen[p]; prev != 0 && Elem(prev-1) != Elem(y) {
				return fmt.Errorf("semigroup: condition (i) fails: %d·%d = %d·%d = %d != 0", x, prev-1, x, y, int(p))
			}
			seen[p] = y + 1
		}
		// Right cancellation: y -> yx injective on nonzero products.
		for i := range seen {
			seen[i] = 0
		}
		for y := 0; y < n; y++ {
			p := t.Mul(Elem(y), Elem(x))
			if p == z {
				continue
			}
			if prev := seen[p]; prev != 0 && Elem(prev-1) != Elem(y) {
				return fmt.Errorf("semigroup: condition (i) fails: %d·%d = %d·%d = %d != 0", prev-1, x, y, x, int(p))
			}
			seen[p] = y + 1
		}
	}
	return nil
}

// checkConditionII verifies (ii): xy = x or yx = x implies x = 0.
func checkConditionII(t *Table, z Elem) error {
	n := t.Size()
	for x := 0; x < n; x++ {
		if Elem(x) == z {
			continue
		}
		for y := 0; y < n; y++ {
			if t.Mul(Elem(x), Elem(y)) == Elem(x) {
				return fmt.Errorf("semigroup: condition (ii) fails: %d·%d = %d != 0", x, y, x)
			}
			if t.Mul(Elem(y), Elem(x)) == Elem(x) {
				return fmt.Errorf("semigroup: condition (ii) fails: %d·%d = %d != 0", y, x, x)
			}
		}
	}
	return nil
}

// AdjoinIdentity returns G' = G ∪ {I} with I a fresh identity element (the
// construction in the proof of part (B)). The new element has index
// t.Size(). The paper's claim — that if G has the cancellation property
// (with zero, without identity) then so does G' — is verified by
// TestAdjoinIdentityPreservesCancellation and benchmarked as experiment E8.
func AdjoinIdentity(t *Table) (*Table, Elem) {
	n := t.Size()
	m := n + 1
	mul := make([]Elem, m*m)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mul[i*m+j] = t.Mul(Elem(i), Elem(j))
		}
	}
	id := Elem(n)
	for i := 0; i < m; i++ {
		mul[i*m+int(id)] = Elem(i)
		mul[int(id)*m+i] = Elem(i)
	}
	name := t.Name()
	if name != "" {
		name += "+I"
	}
	return newUnchecked(m, mul, name), id
}

package psearch

import (
	"context"
	"testing"

	"templatedep/internal/budget"
)

// linear builds a run function that explores counts[t] nodes in task t and
// reports a witness when wit[t] is set.
func linear(counts []int, wit map[int]bool) func(int, *Ctx) bool {
	return func(t int, ctx *Ctx) bool {
		for i := 0; i < counts[t]; i++ {
			if !ctx.Node() {
				return false
			}
		}
		return wit[t]
	}
}

func TestWinnerDeterministicAcrossWorkers(t *testing.T) {
	counts := []int{100, 250, 50, 400, 10, 75, 300, 20}
	wit := map[int]bool{5: true, 6: true}
	want := 100 + 250 + 50 + 400 + 10 + 75 // tasks 0..5
	for _, workers := range []int{1, 2, 4, 8} {
		rep := Explore(len(counts), Options{Workers: workers, Batch: 8}, linear(counts, wit))
		if rep.Winner != 5 {
			t.Errorf("workers=%d: winner %d, want 5", workers, rep.Winner)
		}
		if rep.Committed != want {
			t.Errorf("workers=%d: committed %d, want %d", workers, rep.Committed, want)
		}
		if rep.Stop.Stopped() {
			t.Errorf("workers=%d: unexpected stop %v", workers, rep.Stop)
		}
		if workers == 1 && rep.Speculative != 0 {
			t.Errorf("serial run has %d speculative nodes", rep.Speculative)
		}
	}
}

func TestSerialSkipsTasksAfterWinner(t *testing.T) {
	counts := []int{10, 10, 10, 10}
	rep := Explore(len(counts), Options{Workers: 1, Batch: 4}, linear(counts, map[int]bool{1: true}))
	if rep.Winner != 1 {
		t.Fatalf("winner %d", rep.Winner)
	}
	for _, tt := range []int{2, 3} {
		if rep.Tasks[tt].Ran {
			t.Errorf("task %d ran after the winner", tt)
		}
		if !rep.Tasks[tt].Aborted {
			t.Errorf("task %d not marked aborted", tt)
		}
	}
	if rep.Committed != 20 || rep.Speculative != 0 {
		t.Errorf("committed %d speculative %d", rep.Committed, rep.Speculative)
	}
}

func TestParallelAbortsHigherTasksAfterWin(t *testing.T) {
	// Task 0 wins immediately; the huge task 3 must be cut off at a
	// checkpoint instead of running to completion.
	counts := []int{1, 1, 1, 1 << 20}
	var rep Report
	for i := 0; i < 10; i++ { // scheduling-dependent: try a few times
		rep = Explore(len(counts), Options{Workers: 4, Batch: 16}, linear(counts, map[int]bool{0: true}))
		if rep.Winner != 0 {
			t.Fatalf("winner %d, want 0", rep.Winner)
		}
		if rep.Committed != 1 {
			t.Fatalf("committed %d, want 1", rep.Committed)
		}
		if rep.Tasks[3].Ran && rep.Tasks[3].Nodes == counts[3] {
			t.Fatalf("task 3 ran to completion (%d nodes) despite task 0 winning", rep.Tasks[3].Nodes)
		}
	}
}

func TestBudgetExhaustionStopsExploration(t *testing.T) {
	g := budget.New(nil, budget.Limits{})
	counts := []int{1000, 1000}
	rep := Explore(len(counts), Options{Workers: 1, Governor: g, Allowance: 100, Batch: 10},
		linear(counts, nil))
	if rep.Winner != -1 {
		t.Errorf("winner %d", rep.Winner)
	}
	if rep.Stop != budget.Exhausted(budget.Nodes) {
		t.Errorf("stop %v, want exhausted:nodes", rep.Stop)
	}
	if rep.Committed > 110+1 { // one batch of slack past the share
		t.Errorf("explored %d nodes on a 100-node allowance", rep.Committed)
	}
	if got := g.Used(budget.Nodes); got != rep.Committed {
		t.Errorf("parent meter %d, committed %d", got, rep.Committed)
	}
}

func TestWitnessSuppressedWhenLowerTaskStopped(t *testing.T) {
	// Worker shares: 2 workers x 50 nodes. Task 0 burns past its share and
	// stops; task 1 finds a witness instantly. The witness must be
	// suppressed: the serial search would have stopped inside task 0.
	g := budget.New(nil, budget.Limits{})
	counts := []int{1000, 1}
	rep := Explore(len(counts), Options{Workers: 2, Governor: g, Allowance: 100, Batch: 10},
		linear(counts, map[int]bool{1: true}))
	if rep.Winner != -1 {
		t.Errorf("winner %d, want suppressed (-1)", rep.Winner)
	}
	if !rep.Stop.Stopped() {
		t.Error("no stop outcome reported")
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := budget.New(ctx, budget.Limits{})
	rep := Explore(2, Options{Workers: 1, Governor: g, Batch: 4}, linear([]int{100, 100}, nil))
	if rep.Stop.Code != budget.CodeCancelled {
		t.Errorf("stop %v, want cancelled", rep.Stop)
	}
	if rep.Winner != -1 {
		t.Errorf("winner %d", rep.Winner)
	}
}

func TestPruneVocabulary(t *testing.T) {
	if PruneSymmetry.String() != "symmetry" || PruneNone.String() != "none" {
		t.Fatal("prune spellings changed")
	}
	for _, s := range []string{"symmetry", "none", ""} {
		if _, err := ParsePrune(s); err != nil {
			t.Errorf("ParsePrune(%q): %v", s, err)
		}
	}
	if _, err := ParsePrune("bogus"); err == nil {
		t.Error("ParsePrune accepted garbage")
	}
}

func TestZeroTasks(t *testing.T) {
	rep := Explore(0, Options{}, func(int, *Ctx) bool { t.Fatal("run called"); return false })
	if rep.Winner != -1 || rep.Committed != 0 || rep.Stop.Stopped() {
		t.Errorf("unexpected report %+v", rep)
	}
}

// Package psearch is the parallel subtree-splitting backtracking core
// (DESIGN.md §8) shared by the two counter-model search engines:
// internal/search over multiplication tables and internal/finitemodel
// over database instances.
//
// An engine splits one structural coordinate's backtracking tree at a
// prefix depth into independent subtree tasks, indexed in the lexicographic
// order the serial depth-first search would visit them, and hands them to
// Explore. Explore runs the tasks on Options.Workers goroutines pulling
// from an ordered queue (idle workers "steal" the next unclaimed subtree),
// with first-witness-wins semantics and a deterministic tie-break: the
// winner is the LEAST-indexed task that reports a witness, and tasks above
// a recorded winner are cancelled at their next checkpoint. Because every
// task below the winner runs to completion, the set of committed nodes —
// the winner's subtree plus everything left of it — is exactly the node set
// the serial search visits, for every Workers value.
//
// Budgets: each worker derives a child governor from Options.Governor
// carrying an equal share of the node allowance, so a runaway subtree
// stops at its share instead of starving the siblings; all nodes
// (committed and speculative) are settled into the parent meter. Results
// are bit-identical across Workers values as long as no worker share is
// exhausted; under a budget stop the parallel run may stop earlier or
// later than the serial one, and Explore then suppresses any witness that
// a stopped lower-indexed task could have preempted, so a budget-stopped
// run never reports a witness the serial search might not have reached.
package psearch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"templatedep/internal/budget"
)

// Prune selects the symmetry-breaking mode of an engine. Pruning decisions
// are made identically in serial and parallel runs (they depend only on
// the task's own prefix, never on scheduling), so the searched tree is the
// same for every Workers value.
type Prune uint8

const (
	// PruneSymmetry is the production mode: canonical-ordering symmetry
	// breaking is applied (least-number value capping and canonical
	// assignment enumeration for tables, first-occurrence value order and
	// lex-least tuple insertion for instances).
	PruneSymmetry Prune = iota
	// PruneNone disables symmetry breaking — the exhaustive baseline kept
	// for ablation benchmarks and soundness tests.
	PruneNone
)

func (p Prune) String() string {
	if p == PruneNone {
		return "none"
	}
	return "symmetry"
}

// ParsePrune reads the CLI spelling of a prune mode.
func ParsePrune(s string) (Prune, error) {
	switch s {
	case "symmetry", "":
		return PruneSymmetry, nil
	case "none":
		return PruneNone, nil
	}
	return PruneSymmetry, fmt.Errorf("psearch: unknown prune mode %q (want symmetry or none)", s)
}

// DefaultBatch is the checkpoint interval: nodes counted between child
// governor charges, winner polls, and parent settles. It matches the 4096
// batching the engines already use for events, so cancellation latency
// stays one batch.
const DefaultBatch = 4096

// Options configures one Explore call.
type Options struct {
	// Workers is the number of goroutines exploring subtree tasks; values
	// below 2 run the tasks inline on the calling goroutine.
	Workers int
	// Governor is the parent governor: its context is polled at every
	// checkpoint and every explored node is settled into its Nodes meter.
	// Nil disables both (tests only; engines always pass one).
	Governor *budget.Governor
	// Allowance is the node budget for this exploration, split into equal
	// per-worker child budgets; <= 0 means unlimited (the context alone
	// stops the run).
	Allowance int
	// Batch overrides DefaultBatch (tests shrink it to force checkpoints).
	Batch int
}

// TaskStat describes one task after Explore returns.
type TaskStat struct {
	// Nodes is how many nodes the task explored.
	Nodes int
	// Worker is the goroutine (0-based) that ran the task. This is the ONE
	// scheduling-dependent field of the report; everything else is
	// deterministic when the budget suffices.
	Worker int
	// Ran reports that the task was started (false: skipped because a
	// lower-indexed task had already won, or the workers stopped first).
	Ran bool
	// Aborted reports that the task was skipped or cut short because a
	// lower-indexed task won.
	Aborted bool
	// Stop is how the worker's budget cut the task short, if it did.
	Stop budget.Outcome
}

// Report is the outcome of one Explore call.
type Report struct {
	// Winner is the least-indexed task that reported a witness with every
	// lower-indexed task run to completion, or -1. The suppression rule —
	// no winner while a lower-indexed task was stopped by budget — keeps
	// budget-stopped runs honest: the serial search might have found a
	// different (lex-smaller) witness inside the stopped subtree.
	Winner int
	// Committed counts the deterministic node set: all nodes when there is
	// no winner, the nodes of tasks 0..Winner otherwise — exactly what the
	// serial search visits.
	Committed int
	// Speculative counts nodes explored beyond the winning subtree by
	// parallel workers; always settled into the governor, never part of an
	// engine's deterministic ledger. Zero when Workers <= 1.
	Speculative int
	// Stop is set when the exploration was cut short by budget or context.
	Stop budget.Outcome
	// Tasks holds one entry per task, indexed by task.
	Tasks []TaskStat
}

// Ctx is the per-task handle the engine's subtree walk reports nodes to.
type Ctx struct {
	parent    *budget.Governor
	child     *budget.Governor
	winner    *atomic.Int64
	task      int
	batchSize int
	countdown int
	nodes     int
	unsettled int
	aborted   bool
	stop      budget.Outcome
}

// Node records one explored node. A false return tells the walk to unwind
// immediately: the task's budget share is exhausted, the context is done,
// or a lower-indexed task has won.
func (c *Ctx) Node() bool {
	c.nodes++
	c.unsettled++
	c.countdown--
	if c.countdown > 0 {
		return true
	}
	c.countdown = c.batchSize
	return c.checkpoint()
}

// Halted reports that a previous Node call returned false, letting
// recursive walks distinguish "no witness here" from "stop unwinding".
func (c *Ctx) Halted() bool { return c.aborted || c.stop.Stopped() }

func (c *Ctx) checkpoint() bool {
	n := c.unsettled
	c.unsettled = 0
	if c.parent != nil {
		c.parent.Add(budget.Nodes, n)
	}
	if c.child != nil {
		if o := c.child.Charge(budget.Nodes, n); o.Stopped() {
			c.stop = o
			return false
		}
	}
	if c.winner.Load() < int64(c.task) {
		c.aborted = true
		return false
	}
	return true
}

// flush settles the trailing partial batch without stop checks (the task
// is already over).
func (c *Ctx) flush() {
	if c.unsettled == 0 {
		return
	}
	if c.parent != nil {
		c.parent.Add(budget.Nodes, c.unsettled)
	}
	if c.child != nil {
		c.child.Add(budget.Nodes, c.unsettled)
	}
	c.unsettled = 0
}

// Explore runs tasks 0..tasks-1 through run on opt.Workers goroutines.
// run must return true exactly when its subtree contains a witness; it
// must call ctx.Node for every node it expands and unwind when Node
// returns false.
func Explore(tasks int, opt Options, run func(task int, ctx *Ctx) bool) Report {
	rep := Report{Winner: -1, Tasks: make([]TaskStat, tasks)}
	if tasks == 0 {
		return rep
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > tasks {
		workers = tasks
	}
	batch := opt.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	share := 0
	if opt.Allowance > 0 {
		share = opt.Allowance / workers
		if share < 1 {
			share = 1 // a zero child limit would mean "unlimited"
		}
	}

	// winner holds the least task index that found a witness; tasks is the
	// "none" sentinel so every real index improves on it.
	var winner atomic.Int64
	winner.Store(int64(tasks))
	var cursor atomic.Int64

	work := func(w int) {
		var child *budget.Governor
		if opt.Governor != nil {
			child = opt.Governor.Child(budget.Limits{Nodes: share})
		} else if share > 0 {
			child = budget.New(nil, budget.Limits{Nodes: share})
		}
		ctx := Ctx{parent: opt.Governor, child: child, winner: &winner, batchSize: batch}
		for {
			t := int(cursor.Add(1)) - 1
			if t >= tasks {
				return
			}
			st := &rep.Tasks[t]
			st.Worker = w
			if winner.Load() < int64(t) {
				st.Aborted = true
				continue
			}
			ctx.task = t
			ctx.nodes = 0
			ctx.countdown = ctx.batchSize
			ctx.aborted = false
			ctx.stop = budget.Outcome{}
			st.Ran = true
			found := run(t, &ctx)
			ctx.flush()
			st.Nodes = ctx.nodes
			st.Aborted = ctx.aborted
			st.Stop = ctx.stop
			if found && !ctx.Halted() {
				// CAS-min: record t unless a smaller index already won.
				for {
					cur := winner.Load()
					if int64(t) >= cur || winner.CompareAndSwap(cur, int64(t)) {
						break
					}
				}
			}
			if ctx.stop.Stopped() {
				return // this worker's budget share is gone
			}
		}
	}

	if workers == 1 {
		work(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				work(w)
			}(w)
		}
		wg.Wait()
	}

	// Validate the winner: every lower-indexed task must have run to
	// completion, otherwise the serial search might have stopped (or found
	// a lex-smaller witness) first.
	if w := int(winner.Load()); w < tasks {
		valid := true
		for t := 0; t < w; t++ {
			if !rep.Tasks[t].Ran || rep.Tasks[t].Stop.Stopped() {
				valid = false
				break
			}
		}
		if valid {
			rep.Winner = w
		}
	}
	total := 0
	for t := range rep.Tasks {
		total += rep.Tasks[t].Nodes
	}
	if rep.Winner >= 0 {
		for t := 0; t <= rep.Winner; t++ {
			rep.Committed += rep.Tasks[t].Nodes
		}
		rep.Speculative = total - rep.Committed
		return rep
	}
	rep.Committed = total
	for t := range rep.Tasks {
		if rep.Tasks[t].Stop.Stopped() {
			rep.Stop = rep.Tasks[t].Stop
			break
		}
	}
	if !rep.Stop.Stopped() {
		for t := range rep.Tasks {
			if !rep.Tasks[t].Ran && !rep.Tasks[t].Aborted {
				// Workers died without recording an outcome on this task;
				// the only silent cause is a budget share spent exactly at
				// a task boundary.
				rep.Stop = budget.Exhausted(budget.Nodes)
				break
			}
		}
	}
	return rep
}

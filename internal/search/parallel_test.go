package search

import (
	"bytes"
	"reflect"
	"testing"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/psearch"
	"templatedep/internal/semigroup"
	"templatedep/internal/words"
)

// The parallel determinism contract: every Workers value returns the same
// witness (same order, same table, same assignment), the same committed
// node ledger, and a trace that replays to the same totals. tower:2 is the
// workload because it does real search work (hundreds of nodes over four
// orders) before the witness at order 5.
func TestParallelDeterministicWitness(t *testing.T) {
	p := words.PowerTowerPresentation(2)
	type run struct {
		table  [][]semigroup.Elem
		assign map[words.Symbol]semigroup.Elem
		nodes  int
		totals obs.Totals
	}
	do := func(workers int) run {
		var buf bytes.Buffer
		sink := obs.NewJSONLSink(&buf)
		res, err := FindCounterModel(p, Options{
			Orders:   budget.Range{Lo: 2, Hi: 5},
			Workers:  workers,
			Governor: budget.New(nil, budget.Limits{Nodes: 1_000_000}),
			Sink:     sink,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Interpretation == nil {
			t.Fatalf("workers=%d: no model (%s)", workers, res.Status())
		}
		totals, err := obs.Replay(&buf)
		if err != nil {
			t.Fatalf("workers=%d: replay: %v", workers, err)
		}
		tb := res.Interpretation.Table
		rows := make([][]semigroup.Elem, tb.Size())
		for x := 0; x < tb.Size(); x++ {
			rows[x] = make([]semigroup.Elem, tb.Size())
			for y := 0; y < tb.Size(); y++ {
				rows[x][y] = tb.Mul(semigroup.Elem(x), semigroup.Elem(y))
			}
		}
		return run{table: rows, assign: res.Interpretation.Assign, nodes: res.NodesVisited, totals: totals}
	}
	base := do(1)
	if base.totals.SearchNodes != base.nodes {
		t.Errorf("serial trace replays %d nodes, result ledger says %d", base.totals.SearchNodes, base.nodes)
	}
	for _, workers := range []int{2, 4} {
		got := do(workers)
		if !reflect.DeepEqual(got.table, base.table) {
			t.Errorf("workers=%d: witness table differs\n got %v\nwant %v", workers, got.table, base.table)
		}
		if !reflect.DeepEqual(got.assign, base.assign) {
			t.Errorf("workers=%d: witness assignment differs: %v vs %v", workers, got.assign, base.assign)
		}
		if got.nodes != base.nodes {
			t.Errorf("workers=%d: %d nodes visited, serial visited %d", workers, got.nodes, base.nodes)
		}
		if !reflect.DeepEqual(got.totals, base.totals) {
			t.Errorf("workers=%d: replayed totals differ\n got %+v\nwant %+v", workers, got.totals, base.totals)
		}
	}
}

// Symmetry pruning must change only the node count, never the verdict.
func TestPruneAblationSoundness(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
		hi   int
		want string
	}{
		{"tower2", words.PowerTowerPresentation(2), 5, "model-found"},
		{"power", words.PowerPresentation(), 4, "model-found"},
		{"gap", words.IdempotentGapPresentation(), 5, "no-model-within-bounds"},
	} {
		var nodes [2]int
		for i, prune := range []psearch.Prune{psearch.PruneSymmetry, psearch.PruneNone} {
			res, err := FindCounterModel(tc.p, Options{
				Orders:   budget.Range{Lo: 2, Hi: tc.hi},
				Prune:    prune,
				Governor: budget.New(nil, budget.Limits{Nodes: 1_000_000}),
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, prune, err)
			}
			if got := res.Status(); got != tc.want {
				t.Errorf("%s/%s: verdict %s, want %s", tc.name, prune, got, tc.want)
			}
			nodes[i] = res.NodesVisited
		}
		if nodes[0] > nodes[1] {
			t.Errorf("%s: symmetry pruning visited MORE nodes (%d) than the exhaustive run (%d)",
				tc.name, nodes[0], nodes[1])
		}
	}
}

// SplitDepth is a load-balancing knob, never a semantic one.
func TestSplitDepthInvariance(t *testing.T) {
	p := words.PowerTowerPresentation(2)
	var base Result
	for i, depth := range []int{0, 1, 3} {
		res, err := FindCounterModel(p, Options{
			Orders:     budget.Range{Lo: 2, Hi: 5},
			Workers:    4,
			SplitDepth: depth,
			Governor:   budget.New(nil, budget.Limits{Nodes: 1_000_000}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Interpretation == nil {
			t.Fatalf("depth=%d: no model", depth)
		}
		if i == 0 {
			base = res
			continue
		}
		if res.Interpretation.Table.Size() != base.Interpretation.Table.Size() {
			t.Errorf("depth=%d: witness order %d, want %d", depth,
				res.Interpretation.Table.Size(), base.Interpretation.Table.Size())
		}
	}
}

// injectiveOffZero edge cases (satellite): the zero-length table and the
// all-zero row are both injective-off-zero — zero entries are exempt from
// condition (i) — while a repeated nonzero entry in a row or column is
// not. Unset cells never count.
func TestInjectiveOffZeroEdgeCases(t *testing.T) {
	u := unset
	for _, tc := range []struct {
		name string
		n    int
		mul  []semigroup.Elem
		want bool
	}{
		{"empty table", 0, nil, true},
		{"single zero cell", 1, []semigroup.Elem{0}, true},
		{"all-zero row", 2, []semigroup.Elem{0, 0, 0, 1}, true},
		{"all unset", 2, []semigroup.Elem{u, u, u, u}, true},
		{"repeated nonzero in row", 2, []semigroup.Elem{1, 1, u, u}, false},
		{"repeated nonzero in column", 2, []semigroup.Elem{1, u, 1, u}, false},
		{"repeated zero in column ok", 2, []semigroup.Elem{0, 1, 0, u}, true},
		{"unset does not collide", 2, []semigroup.Elem{u, 1, u, u}, true},
	} {
		if got := injectiveOffZero(tc.mul, tc.n); got != tc.want {
			t.Errorf("%s: injectiveOffZero = %v, want %v", tc.name, got, tc.want)
		}
	}
}

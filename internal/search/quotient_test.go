package search

import (
	"testing"

	"templatedep/internal/reduction"
	"templatedep/internal/words"
)

func TestNilpotentQuotientWitnessPower(t *testing.T) {
	// At class 2 every product in B collapses to zero, so A0·A0 = B forces
	// B onto the zero — and the quotient is exactly the minimal null
	// witness the table search also finds.
	p := words.PowerPresentation()
	in, ok, err := NilpotentQuotientWitness(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no witness at class 2")
	}
	if err := in.IsModelOfMainLemmaFailure(p); err != nil {
		t.Error(err)
	}
	if in.Table.Size() != 2 {
		t.Errorf("witness order %d, want 2", in.Table.Size())
	}
}

func TestNilpotentQuotientWitnessNilpotentSafe(t *testing.T) {
	p := words.NilpotentSafePresentation(2)
	in, ok, err := BestNilpotentQuotientWitness(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no witness up to class 4")
	}
	if err := in.IsModelOfMainLemmaFailure(p); err != nil {
		t.Error(err)
	}
	t.Logf("witness order %d", in.Table.Size())
}

func TestNilpotentQuotientRejectsDerivable(t *testing.T) {
	// Derivable presentations force A0 into the zero class at every class.
	for _, p := range []*words.Presentation{words.TwoStepPresentation(), words.ChainPresentation(2)} {
		_, ok, err := BestNilpotentQuotientWitness(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatal("witness found for a derivable presentation")
		}
	}
}

func TestNilpotentQuotientRejectsGap(t *testing.T) {
	// The idempotent equation A0·A0 = A0 collapses A0 into the zero class
	// in every nilpotent quotient (a^2 ~ a forces a ~ a^k ~ 0), so no
	// witness can emerge — consistent with the instance having NO finite
	// cancellation witness at all.
	_, ok, err := BestNilpotentQuotientWitness(words.IdempotentGapPresentation(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible witness for the gap instance")
	}
}

func TestNilpotentQuotientFeedsDirectionB(t *testing.T) {
	// End to end: quotient witness -> part (B) counter-model, verified.
	p := words.PowerPresentation()
	in, ok, err := BestNilpotentQuotientWitness(p, 3)
	if err != nil || !ok {
		t.Fatalf("witness: %v %v", ok, err)
	}
	rep, err := reduction.VerifyDirectionB(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CounterModel.Instance.Len() == 0 {
		t.Error("empty counter-model")
	}
}

// Package search implements a finite-model finder for the semigroup side of
// the Gurevich–Lewis Main Lemma: given a presentation E over an alphabet S
// with distinguished symbols A0 and 0, it looks for a finite S-generated
// semigroup WITHOUT identity, having the cancellation property (conditions
// (i) and (ii)), in which every equation of E holds but A0 = 0 fails.
//
// Finding such a model certifies membership of the instance in the Main
// Theorem's second set: by Reduction Theorem part (B) it yields a finite
// database satisfying D in which D0 fails. Together with the equational
// closure of internal/words (which certifies membership in the first set),
// this realizes the two semi-procedures whose domains the paper proves
// effectively inseparable.
//
// The search enumerates multiplication tables by backtracking over cells
// with constraint propagation:
//
//   - element 0 is the zero (its row and column are pinned);
//   - symbol A0 is interpreted as element 1 (any model can be relabeled);
//   - (2,1) equations pin single cells before the search starts;
//   - condition (ii) forbids any cell x·y = x or x·y = y with the repeated
//     element nonzero;
//   - condition (i) is enforced by keeping rows and columns injective off
//     zero;
//   - associativity is pruned on every fully determined triple and
//     re-verified at the leaves.
package search

import (
	"fmt"

	"templatedep/internal/obs"
	"templatedep/internal/semigroup"
	"templatedep/internal/words"
)

// Options bounds the model search.
type Options struct {
	// MinOrder and MaxOrder bound the semigroup order tried (inclusive).
	// Defaults: 2 and 6.
	MinOrder, MaxOrder int
	// MaxNodes caps the total number of backtracking nodes across all
	// orders and assignments. <= 0 means 5,000,000.
	MaxNodes int
	// QuotientClasses > 0 tries the nilpotent-quotient construction
	// (classes 2..QuotientClasses) BEFORE the table search; witnesses found
	// this way cost no search nodes. Sound but incomplete, hence opt-in.
	QuotientClasses int
	// Sink receives search_node events (batched every nodeEventBatch
	// expanded nodes, plus a per-order remainder) and the final verdict.
	// Nil disables emission. See docs/OBSERVABILITY.md.
	Sink obs.Sink
}

// nodeEventBatch is the search_node batching interval: one event per this
// many backtracking nodes keeps sink overhead out of the inner loop while
// still giving a live progress signal a few times per second.
const nodeEventBatch = 4096

// DefaultOptions returns generous interactive defaults.
func DefaultOptions() Options {
	return Options{MinOrder: 2, MaxOrder: 6, MaxNodes: 5_000_000}
}

// Outcome reports how a search ended.
type Outcome int

const (
	// NoModelWithinBounds means the space up to MaxOrder was exhausted:
	// no counterexample of that size exists (NOT a proof that none exists).
	NoModelWithinBounds Outcome = iota
	// ModelFound means a witness was found.
	ModelFound
	// BudgetExhausted means MaxNodes was hit before the space was covered.
	BudgetExhausted
)

func (o Outcome) String() string {
	switch o {
	case ModelFound:
		return "model-found"
	case BudgetExhausted:
		return "budget-exhausted"
	default:
		return "no-model-within-bounds"
	}
}

// Result is the outcome of FindCounterModel.
type Result struct {
	Outcome Outcome
	// Interpretation witnesses Main Lemma failure for the ORIGINAL
	// presentation; non-nil iff Outcome == ModelFound.
	Interpretation *semigroup.Interpretation
	// Presentation is the presentation the witness interprets (the input).
	Presentation *words.Presentation
	// NodesVisited counts backtracking nodes explored.
	NodesVisited int
}

// FindCounterModel searches for a finite cancellation counterexample to the
// Main Lemma goal of p. Presentations not in (2,1) form are normalized
// first; a witness for the normalized form is mapped back to the original
// alphabet through the normalization's aliases.
func FindCounterModel(p *words.Presentation, opt Options) (Result, error) {
	if opt.MinOrder < 2 {
		opt.MinOrder = 2
	}
	if opt.MaxOrder < opt.MinOrder {
		opt.MaxOrder = opt.MinOrder
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 5_000_000
	}
	p = p.WithZeroEquations()

	if opt.QuotientClasses > 0 {
		wit, ok, err := BestNilpotentQuotientWitness(p, opt.QuotientClasses)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return Result{Outcome: ModelFound, Interpretation: wit, Presentation: p}, nil
		}
	}

	work := p
	var norm *words.Normalization
	if !p.IsTwoOne() {
		var err error
		norm, err = words.Normalize(p)
		if err != nil {
			return Result{}, err
		}
		work = norm.Presentation
	}

	s := &searcher{pres: work, budget: opt.MaxNodes, sink: opt.Sink}
	verdict := func(o Outcome) {
		if s.sink != nil {
			s.flushNodes()
			s.sink.Event(obs.Event{Type: obs.EvVerdict, Src: "search", Verdict: o.String(), N: s.nodes})
		}
	}
	for n := opt.MinOrder; n <= opt.MaxOrder; n++ {
		s.order = n
		found, err := s.searchOrder(n)
		if err != nil {
			return Result{}, err
		}
		if s.sink != nil {
			s.flushNodes()
		}
		if s.budget <= 0 && found == nil {
			verdict(BudgetExhausted)
			return Result{Outcome: BudgetExhausted, Presentation: p, NodesVisited: s.nodes}, nil
		}
		if found != nil {
			in, err := mapBack(p, norm, found)
			if err != nil {
				return Result{}, err
			}
			if err := in.IsModelOfMainLemmaFailure(p); err != nil {
				return Result{}, fmt.Errorf("search: internal error: found model fails verification: %w", err)
			}
			verdict(ModelFound)
			return Result{Outcome: ModelFound, Interpretation: in, Presentation: p, NodesVisited: s.nodes}, nil
		}
	}
	verdict(NoModelWithinBounds)
	return Result{Outcome: NoModelWithinBounds, Presentation: p, NodesVisited: s.nodes}, nil
}

// mapBack restricts a witness for the normalized presentation to the
// original alphabet (original symbol s is interpreted as the value of its
// alias representative).
func mapBack(orig *words.Presentation, norm *words.Normalization, in *semigroup.Interpretation) (*semigroup.Interpretation, error) {
	if norm == nil {
		return in, nil
	}
	assign := make(map[words.Symbol]semigroup.Elem, orig.Alphabet.Size())
	for _, s := range orig.Alphabet.Symbols() {
		r := s
		if rep, ok := norm.Aliases[s]; ok {
			r = rep
		}
		v, ok := in.Assign[r]
		if !ok {
			return nil, fmt.Errorf("search: representative of %s unassigned", orig.Alphabet.Name(s))
		}
		assign[s] = v
	}
	return semigroup.NewInterpretation(in.Table, orig.Alphabet, assign)
}

// searcher holds the state shared across orders.
type searcher struct {
	pres   *words.Presentation
	budget int
	nodes  int
	// sink, when non-nil, receives batched search_node events; pending
	// counts nodes expanded since the last emission, order is the
	// semigroup order currently under search.
	sink    obs.Sink
	pending int
	order   int
}

// countNode records one expanded backtracking node and emits a batched
// search_node event when the batch fills.
func (s *searcher) countNode() {
	s.nodes++
	s.budget--
	if s.sink == nil {
		return
	}
	s.pending++
	if s.pending >= nodeEventBatch {
		s.flushNodes()
	}
}

// flushNodes emits the partial batch, if any.
func (s *searcher) flushNodes() {
	if s.sink != nil && s.pending > 0 {
		s.sink.Event(obs.Event{Type: obs.EvSearchNode, Src: "search", Order: s.order, N: s.pending})
		s.pending = 0
	}
}

const unset = semigroup.Elem(-1)

// searchOrder looks for a model of exactly order n. Returns the witness
// interpretation over the searcher's (normalized) presentation, or nil.
func (s *searcher) searchOrder(n int) (*semigroup.Interpretation, error) {
	a := s.pres.Alphabet
	syms := a.Symbols()
	// Assignment: zero symbol -> 0, A0 -> 1, others enumerated.
	free := make([]words.Symbol, 0, len(syms))
	for _, sym := range syms {
		if sym != a.Zero() && sym != a.A0() {
			free = append(free, sym)
		}
	}
	assign := make(map[words.Symbol]semigroup.Elem, len(syms))
	assign[a.Zero()] = 0
	assign[a.A0()] = 1

	var tryAssign func(i int) (*semigroup.Interpretation, error)
	tryAssign = func(i int) (*semigroup.Interpretation, error) {
		if s.budget <= 0 {
			return nil, nil
		}
		if i == len(free) {
			tb := s.searchTable(n, assign)
			if tb == nil {
				return nil, nil
			}
			cp := make(map[words.Symbol]semigroup.Elem, len(assign))
			for k, v := range assign {
				cp[k] = v
			}
			return semigroup.NewInterpretation(tb, a, cp)
		}
		for e := 0; e < n; e++ {
			assign[free[i]] = semigroup.Elem(e)
			in, err := tryAssign(i + 1)
			if err != nil || in != nil {
				return in, err
			}
		}
		delete(assign, free[i])
		return nil, nil
	}
	return tryAssign(0)
}

// searchTable backtracks over the n×n multiplication table under the given
// symbol assignment, returning a verified table or nil.
func (s *searcher) searchTable(n int, assign map[words.Symbol]semigroup.Elem) *semigroup.Table {
	mul := make([]semigroup.Elem, n*n)
	for i := range mul {
		mul[i] = unset
	}
	at := func(x, y semigroup.Elem) semigroup.Elem { return mul[int(x)*n+int(y)] }
	set := func(x, y, v semigroup.Elem) { mul[int(x)*n+int(y)] = v }

	// Pin the zero row and column.
	for i := 0; i < n; i++ {
		set(semigroup.Elem(i), 0, 0)
		set(0, semigroup.Elem(i), 0)
	}
	// Pin cells from (2,1) equations.
	for _, e := range s.pres.Equations {
		if !e.IsTwoOne() {
			continue // non-(2,1) presentations were normalized upstream
		}
		x, y := assign[e.LHS[0]], assign[e.LHS[1]]
		v := assign[e.RHS[0]]
		if cur := at(x, y); cur != unset && cur != v {
			return nil // contradictory pinning under this assignment
		}
		// Cancellation conditions on pinned cells.
		if v == x && x != 0 {
			return nil
		}
		if v == y && y != 0 {
			return nil
		}
		set(x, y, v)
	}
	// Row/column injectivity-off-zero for pinned cells.
	if !s.injectiveOffZero(mul, n) {
		return nil
	}

	// Collect free cells in row-major order.
	var cells []int
	for i := range mul {
		if mul[i] == unset {
			cells = append(cells, i)
		}
	}

	var try func(ci int) *semigroup.Table
	try = func(ci int) *semigroup.Table {
		s.countNode()
		if s.budget <= 0 {
			return nil
		}
		if ci == len(cells) {
			return s.verifyLeaf(mul, n, assign)
		}
		idx := cells[ci]
		x, y := semigroup.Elem(idx/n), semigroup.Elem(idx%n)
		for v := 0; v < n; v++ {
			val := semigroup.Elem(v)
			if val == x && x != 0 {
				continue // condition (ii): x·y = x
			}
			if val == y && y != 0 {
				continue // condition (ii): x·y = y
			}
			mul[idx] = val
			if s.cellConsistent(mul, n, x, y) {
				if tb := try(ci + 1); tb != nil {
					return tb
				}
				if s.budget <= 0 {
					mul[idx] = unset
					return nil
				}
			}
			mul[idx] = unset
		}
		return nil
	}
	return try(0)
}

// cellConsistent checks local constraints after setting cell (x, y):
// injectivity off zero in row x and column y, and associativity on every
// triple that the new cell completes.
func (s *searcher) cellConsistent(mul []semigroup.Elem, n int, x, y semigroup.Elem) bool {
	v := mul[int(x)*n+int(y)]
	if v != 0 {
		for yy := 0; yy < n; yy++ {
			if semigroup.Elem(yy) != y && mul[int(x)*n+yy] == v {
				return false // condition (i), left cancellation
			}
		}
		for xx := 0; xx < n; xx++ {
			if semigroup.Elem(xx) != x && mul[xx*n+int(y)] == v {
				return false // condition (i), right cancellation
			}
		}
	}
	at := func(a, b semigroup.Elem) semigroup.Elem {
		if a == unset || b == unset {
			return unset
		}
		return mul[int(a)*n+int(b)]
	}
	// Triples (x, y, c): (x·y)·c vs x·(y·c).
	for c := 0; c < n; c++ {
		ce := semigroup.Elem(c)
		l := at(v, ce)
		yc := at(y, ce)
		r := at(x, yc)
		if l != unset && r != unset && l != r {
			return false
		}
		// Triples (c, x, y): (c·x)·y vs c·(x·y).
		cx := at(ce, x)
		l2 := at(cx, y)
		r2 := at(ce, v)
		if l2 != unset && r2 != unset && l2 != r2 {
			return false
		}
		// Triples (x, c, y) where x·c or c·y routes through the new cell are
		// covered by the two patterns above when the completing cell is
		// (x, y); remaining patterns are caught at the leaf.
	}
	return true
}

// injectiveOffZero verifies condition-(i) injectivity on the current
// (partially filled) table.
func (s *searcher) injectiveOffZero(mul []semigroup.Elem, n int) bool {
	for x := 0; x < n; x++ {
		seenRow := make(map[semigroup.Elem]bool)
		seenCol := make(map[semigroup.Elem]bool)
		for y := 0; y < n; y++ {
			if v := mul[x*n+y]; v != unset && v != 0 {
				if seenRow[v] {
					return false
				}
				seenRow[v] = true
			}
			if v := mul[y*n+x]; v != unset && v != 0 {
				if seenCol[v] {
					return false
				}
				seenCol[v] = true
			}
		}
	}
	return true
}

// verifyLeaf runs the full, authoritative checks on a complete table.
func (s *searcher) verifyLeaf(mul []semigroup.Elem, n int, assign map[words.Symbol]semigroup.Elem) *semigroup.Table {
	rows := make([][]semigroup.Elem, n)
	for i := 0; i < n; i++ {
		rows[i] = append([]semigroup.Elem(nil), mul[i*n:(i+1)*n]...)
	}
	tb, err := semigroup.New(rows, fmt.Sprintf("search-%d", n))
	if err != nil {
		return nil // not associative
	}
	if _, hasID := tb.Identity(); hasID {
		return nil
	}
	if err := semigroup.CheckCancellation(tb); err != nil {
		return nil
	}
	in, err := semigroup.NewInterpretation(tb, s.pres.Alphabet, assign)
	if err != nil {
		return nil
	}
	ok, _, err := in.SatisfiesPresentation(s.pres)
	if err != nil || !ok {
		return nil
	}
	// A0 != 0 holds by construction (A0 -> 1, zero -> 0).
	return tb
}

// Package search implements a finite-model finder for the semigroup side of
// the Gurevich–Lewis Main Lemma: given a presentation E over an alphabet S
// with distinguished symbols A0 and 0, it looks for a finite S-generated
// semigroup WITHOUT identity, having the cancellation property (conditions
// (i) and (ii)), in which every equation of E holds but A0 = 0 fails.
//
// Finding such a model certifies membership of the instance in the Main
// Theorem's second set: by Reduction Theorem part (B) it yields a finite
// database satisfying D in which D0 fails. Together with the equational
// closure of internal/words (which certifies membership in the first set),
// this realizes the two semi-procedures whose domains the paper proves
// effectively inseparable.
//
// The search enumerates multiplication tables by backtracking over cells
// with constraint propagation:
//
//   - element 0 is the zero (its row and column are pinned);
//   - symbol A0 is interpreted as element 1 (any model can be relabeled);
//   - (2,1) equations pin single cells before the search starts;
//   - condition (ii) forbids any cell x·y = x or x·y = y with the repeated
//     element nonzero;
//   - condition (i) is enforced by keeping rows and columns injective off
//     zero;
//   - associativity is pruned on every fully determined triple and
//     re-verified at the leaves.
//
// Two orthogonal accelerations sit on top (see DESIGN.md §8). Symmetry
// breaking (Options.Prune, on by default) exploits that any witness can be
// relabeled by a permutation fixing 0 and 1: free symbols are assigned in
// canonical first-occurrence order, and free cells only receive values at
// most one above the largest element designated so far (the least-number
// heuristic). Parallelism (Options.Workers) splits each order's
// backtracking tree at a prefix depth into independent subtree tasks run
// through internal/psearch, first witness wins with a deterministic
// lex-least tie-break, so the result is identical for every Workers value.
package search

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/psearch"
	"templatedep/internal/semigroup"
	"templatedep/internal/words"
)

// Options bounds the model search.
type Options struct {
	// Orders is the inclusive window of semigroup orders tried — a
	// structural coordinate, not a meter. A zero Lo means 2 (the smallest
	// identity-free order of interest); a Hi below Lo is raised to Lo.
	Orders budget.Range
	// Governor bounds the search: its nodes meter caps the total number of
	// backtracking nodes across all orders and assignments (committed and
	// speculative alike), and its context is checked every nodeEventBatch
	// nodes, keeping the inner loop free of governor traffic. Nil resolves
	// to DefaultLimits.
	Governor *budget.Governor
	// QuotientClasses > 0 tries the nilpotent-quotient construction
	// (classes 2..QuotientClasses) BEFORE the table search; witnesses found
	// this way cost no search nodes. Sound but incomplete, hence opt-in.
	QuotientClasses int
	// Sink receives search_split, search_steal, and search_node events
	// (one aggregate per split wave) plus the final verdict. Nil disables
	// emission. See docs/OBSERVABILITY.md.
	Sink obs.Sink
	// Workers is the number of goroutines exploring subtree tasks; <= 1
	// searches serially. The witness, the node ledger, and the replayed
	// trace totals are identical for every value — only the worker
	// attribute of search_steal events depends on scheduling — as long as
	// the node budget is not exhausted mid-run (per-worker budget shares
	// may stop a parallel run at a different point than a serial one).
	Workers int
	// SplitDepth forces the table-cell prefix depth at which each order's
	// tree is split into subtree tasks; 0 grows the split adaptively until
	// at least taskTarget subtrees exist. The depth never affects results,
	// only load balance.
	SplitDepth int
	// Prune selects symmetry breaking: psearch.PruneSymmetry (the zero
	// value) enables canonical assignment enumeration and least-number
	// value capping; psearch.PruneNone searches exhaustively — the
	// ablation baseline kept for benchmarks and soundness tests.
	Prune psearch.Prune
}

// nodeEventBatch is the generation-phase governor checkpoint interval,
// matching psearch.DefaultBatch so cancellation latency is one batch
// everywhere.
const nodeEventBatch = 4096

// taskTarget is how many subtree tasks an adaptive split aims for: enough
// granularity to keep any worker count busy, small enough that the split
// frontier (one table copy per task) stays negligible. Fixed — never
// derived from Workers — so the committed node ledger is identical for
// every Workers value.
const taskTarget = 64

// DefaultOrders is the order window an unconfigured search covers.
var DefaultOrders = budget.Range{Lo: 2, Hi: 6}

// DefaultLimits is the node budget an ungoverned search runs under.
var DefaultLimits = budget.Limits{Nodes: 5_000_000}

// DefaultOptions returns generous interactive defaults.
func DefaultOptions() Options {
	return Options{Orders: DefaultOrders}
}

// Result is the outcome of FindCounterModel.
type Result struct {
	// Interpretation witnesses Main Lemma failure for the ORIGINAL
	// presentation; nil when no model was found.
	Interpretation *semigroup.Interpretation
	// Presentation is the presentation the witness interprets (the input).
	Presentation *words.Presentation
	// NodesVisited counts committed backtracking nodes: split-prefix nodes
	// plus every task up to and including the winning subtree — exactly
	// the nodes a serial run explores, whatever Workers is.
	NodesVisited int
	// SpeculativeNodes counts nodes parallel workers explored in subtrees
	// beyond the winning one — work a serial run would not have done. They
	// are charged to the governor but excluded from NodesVisited and from
	// the event stream, keeping both deterministic. Zero when Workers <= 1.
	SpeculativeNodes int
	// Budget reports how the governor cut the search short; zero (ok)
	// means the order window was covered.
	Budget budget.Outcome
}

// Status renders the search outcome for display and events: "model-found",
// "no-model-within-bounds" (the window was covered without a witness — NOT
// a proof that none exists), or the budget stop ("exhausted:nodes",
// "cancelled", "deadline").
func (r Result) Status() string {
	switch {
	case r.Interpretation != nil:
		return "model-found"
	case r.Budget.Stopped():
		return r.Budget.String()
	}
	return "no-model-within-bounds"
}

// FindCounterModel searches for a finite cancellation counterexample to the
// Main Lemma goal of p. Presentations not in (2,1) form are normalized
// first; a witness for the normalized form is mapped back to the original
// alphabet through the normalization's aliases.
func FindCounterModel(p *words.Presentation, opt Options) (Result, error) {
	if opt.Orders.Lo < 2 {
		opt.Orders.Lo = 2
	}
	if opt.Orders.Hi < opt.Orders.Lo {
		opt.Orders.Hi = opt.Orders.Lo
	}
	p = p.WithZeroEquations()

	if opt.QuotientClasses > 0 {
		wit, ok, err := BestNilpotentQuotientWitness(p, opt.QuotientClasses)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return Result{Interpretation: wit, Presentation: p}, nil
		}
	}

	work := p
	var norm *words.Normalization
	if !p.IsTwoOne() {
		var err error
		norm, err = words.Normalize(p)
		if err != nil {
			return Result{}, err
		}
		work = norm.Presentation
	}

	g := budget.Resolve(opt.Governor, DefaultLimits)
	s := &searcher{pres: work, gov: g, opt: opt, sink: opt.Sink,
		limited: g.Limit(budget.Nodes) > 0, remaining: g.Limit(budget.Nodes)}
	if !s.limited {
		// Ungoverned nodes meter: only the context can stop the search.
		s.remaining = int(^uint(0) >> 1)
	}
	// finish settles the meter and closes the trace: a budget stop event
	// when the governor cut the run, then the verdict, so partial traces
	// stay well formed.
	finish := func(r Result) Result {
		s.settleGen()
		r.SpeculativeNodes = s.spec
		if s.sink != nil {
			if r.Budget.Stopped() {
				typ := obs.EvBudgetExhausted
				if r.Budget.Code != budget.CodeExhausted {
					typ = obs.EvCancelled
				}
				s.sink.Event(obs.Event{Type: typ, Src: "search", Resource: r.Budget.Reason()})
			}
			s.sink.Event(obs.Event{Type: obs.EvVerdict, Src: "search", Verdict: r.Status(), N: s.nodes})
		}
		return r
	}
	// Refuse to start under an already-stopped governor, so a run cancelled
	// during an earlier stage cannot race the first node batch for an
	// answer (the overall verdict must not depend on checkpoint timing).
	if o := g.Interrupted(); o.Stopped() {
		return finish(Result{Presentation: p, Budget: o}), nil
	}
	for n := opt.Orders.Lo; n <= opt.Orders.Hi; n++ {
		s.order = n
		found, err := s.searchOrder(n)
		if err != nil {
			return Result{}, err
		}
		if s.remaining <= 0 && found == nil {
			out := s.stop
			if !out.Stopped() {
				out = budget.Exhausted(budget.Nodes)
			}
			return finish(Result{Presentation: p, NodesVisited: s.nodes, Budget: out}), nil
		}
		if found != nil {
			in, err := mapBack(p, norm, found)
			if err != nil {
				return Result{}, err
			}
			if err := in.IsModelOfMainLemmaFailure(p); err != nil {
				return Result{}, fmt.Errorf("search: internal error: found model fails verification: %w", err)
			}
			return finish(Result{Interpretation: in, Presentation: p, NodesVisited: s.nodes}), nil
		}
	}
	return finish(Result{Presentation: p, NodesVisited: s.nodes}), nil
}

// mapBack restricts a witness for the normalized presentation to the
// original alphabet (original symbol s is interpreted as the value of its
// alias representative).
func mapBack(orig *words.Presentation, norm *words.Normalization, in *semigroup.Interpretation) (*semigroup.Interpretation, error) {
	if norm == nil {
		return in, nil
	}
	assign := make(map[words.Symbol]semigroup.Elem, orig.Alphabet.Size())
	for _, s := range orig.Alphabet.Symbols() {
		r := s
		if rep, ok := norm.Aliases[s]; ok {
			r = rep
		}
		v, ok := in.Assign[r]
		if !ok {
			return nil, fmt.Errorf("search: representative of %s unassigned", orig.Alphabet.Name(s))
		}
		assign[s] = v
	}
	return semigroup.NewInterpretation(in.Table, orig.Alphabet, assign)
}

// searcher holds the state shared across orders.
type searcher struct {
	pres *words.Presentation
	gov  *budget.Governor
	opt  Options
	// limited reports whether the governor's nodes meter has a cap;
	// remaining is the countdown mirroring it (committed, speculative, and
	// split-generation nodes all count). A context stop zeroes it at the
	// next batch boundary.
	limited   bool
	remaining int
	// nodes is the committed ledger (generation + tasks up to the winner);
	// spec counts parallel overshoot.
	nodes int
	spec  int
	// genUnsettled is how many generation-phase nodes have not yet been
	// reported to the governor (task nodes are settled by psearch).
	genUnsettled int
	// stop records a context stop observed at a checkpoint.
	stop budget.Outcome
	// sink, when non-nil, receives the per-wave event groups; lastEmitted
	// tracks the committed count already covered by search_node events.
	sink        obs.Sink
	lastEmitted int
	order       int
}

// countGen records one node expanded during split generation (assignment
// pinning prefixes and frontier deepening — the part of the tree above the
// subtree tasks). Every nodeEventBatch nodes it settles the governor meter
// and polls the context. Returns false when the search must stop.
func (s *searcher) countGen() bool {
	s.nodes++
	s.remaining--
	s.genUnsettled++
	if s.genUnsettled >= nodeEventBatch {
		s.settleGen()
		if o := s.gov.Interrupted(); o.Stopped() {
			s.stop = o
			s.remaining = 0
		}
	}
	return s.remaining > 0
}

func (s *searcher) settleGen() {
	s.gov.Add(budget.Nodes, s.genUnsettled)
	s.genUnsettled = 0
}

const unset = semigroup.Elem(-1)

// tableState is one node of the split frontier: a symbol assignment, a
// partially filled table, and the index of the first undecided free cell.
// The frontier states become the independent subtree tasks.
type tableState struct {
	assign map[words.Symbol]semigroup.Elem
	cells  []int
	mul    []semigroup.Elem
	ci     int
	// maxEl is the largest designated element so far — 0, 1, the
	// assignment images, and every coordinate or value of a decided free
	// cell — the least-number heuristic's bound.
	maxEl int
	// table is set by a winning task's leaf verification.
	table *semigroup.Table
}

// searchOrder looks for a model of exactly order n. Returns the witness
// interpretation over the searcher's (normalized) presentation, or nil.
//
// The order's backtracking tree is searched in waves: symbol assignments
// are enumerated in canonical order, each consistent pinned table becomes
// a frontier root, and once taskTarget roots accumulate (or the
// enumeration ends) the wave is deepened and explored in parallel. Waves
// keep memory bounded on presentations with many symbols while preserving
// the serial visit order across wave boundaries.
func (s *searcher) searchOrder(n int) (*semigroup.Interpretation, error) {
	a := s.pres.Alphabet
	syms := a.Symbols()
	free := make([]words.Symbol, 0, len(syms))
	for _, sym := range syms {
		if sym != a.Zero() && sym != a.A0() {
			free = append(free, sym)
		}
	}
	assign := make(map[words.Symbol]semigroup.Elem, len(syms))
	assign[a.Zero()] = 0
	assign[a.A0()] = 1

	var roots []*tableState
	var witness *tableState

	// enumAssign walks free-symbol assignments; under PruneSymmetry the
	// image of each next symbol is capped one above the largest image so
	// far (first-occurrence order — any assignment is a relabeling of a
	// canonical one by a permutation fixing 0 and 1). Returns false to
	// abort the enumeration (witness found or budget stop).
	var enumAssign func(i, maxImg int) bool
	enumAssign = func(i, maxImg int) bool {
		if s.remaining <= 0 {
			return false
		}
		if i == len(free) {
			// Every completed assignment is a generation node, whether or
			// not its pins survive: on presentations with many symbols
			// almost all assignments die right here, and without charging
			// them the node budget would never be consulted — the
			// enumeration is exponential in the alphabet size.
			if !s.countGen() {
				return false
			}
			if st := s.pinTable(n, assign); st != nil {
				roots = append(roots, st)
				if len(roots) >= taskTarget {
					return s.runWave(n, &roots, &witness)
				}
			}
			return true
		}
		hi := n - 1
		if s.opt.Prune == psearch.PruneSymmetry && maxImg+1 < hi {
			hi = maxImg + 1
		}
		for e := 0; e <= hi; e++ {
			assign[free[i]] = semigroup.Elem(e)
			nm := maxImg
			if e > nm {
				nm = e
			}
			if !enumAssign(i+1, nm) {
				return false
			}
		}
		delete(assign, free[i])
		return true
	}
	if enumAssign(0, 1) && len(roots) > 0 {
		s.runWave(n, &roots, &witness)
	}
	s.flushNodes(n)
	if witness == nil {
		return nil, nil
	}
	cp := make(map[words.Symbol]semigroup.Elem, len(witness.assign))
	for k, v := range witness.assign {
		cp[k] = v
	}
	return semigroup.NewInterpretation(witness.table, a, cp)
}

// pinTable builds the pinned table for one assignment: zero row and
// column, plus the cells forced by (2,1) equations. Returns nil when the
// pins contradict each other or the cancellation conditions.
func (s *searcher) pinTable(n int, assign map[words.Symbol]semigroup.Elem) *tableState {
	mul := make([]semigroup.Elem, n*n)
	for i := range mul {
		mul[i] = unset
	}
	at := func(x, y semigroup.Elem) semigroup.Elem { return mul[int(x)*n+int(y)] }
	set := func(x, y, v semigroup.Elem) { mul[int(x)*n+int(y)] = v }

	for i := 0; i < n; i++ {
		set(semigroup.Elem(i), 0, 0)
		set(0, semigroup.Elem(i), 0)
	}
	for _, e := range s.pres.Equations {
		if !e.IsTwoOne() {
			continue // non-(2,1) presentations were normalized upstream
		}
		x, y := assign[e.LHS[0]], assign[e.LHS[1]]
		v := assign[e.RHS[0]]
		if cur := at(x, y); cur != unset && cur != v {
			return nil // contradictory pinning under this assignment
		}
		// Cancellation conditions on pinned cells.
		if v == x && x != 0 {
			return nil
		}
		if v == y && y != 0 {
			return nil
		}
		set(x, y, v)
	}
	if !injectiveOffZero(mul, n) {
		return nil
	}

	var cells []int
	for i := range mul {
		if mul[i] == unset {
			cells = append(cells, i)
		}
	}
	// Assignment images (and the pinned cells, whose coordinates and
	// values are assignment images) are designated; 1 is always present.
	maxEl := 1
	for _, v := range assign {
		if int(v) > maxEl {
			maxEl = int(v)
		}
	}
	cp := make(map[words.Symbol]semigroup.Elem, len(assign))
	for k, v := range assign {
		cp[k] = v
	}
	return &tableState{assign: cp, cells: cells, mul: mul, maxEl: maxEl}
}

// branch enumerates the consistent values for free cell ci of state st in
// ascending order — the one place the child-generation rule (condition
// (ii), least-number cap, local consistency) is written, so the split
// frontier and the task walks prune identically. visit receives the value
// and the updated designated-element bound; returning false stops the
// enumeration. st.mul is restored before branch returns.
func (s *searcher) branch(st *tableState, n, ci, maxEl int, visit func(v semigroup.Elem, maxEl int) bool) bool {
	idx := st.cells[ci]
	x, y := idx/n, idx%n
	hi := n - 1
	if s.opt.Prune == psearch.PruneSymmetry {
		m := maxEl
		if x > m {
			m = x
		}
		if y > m {
			m = y
		}
		// Least-number heuristic: a value above every designated element
		// +1 is a relabeling of the +1 case by a transposition fixing the
		// designated set.
		if m+1 < hi {
			hi = m + 1
		}
	}
	for v := 0; v <= hi; v++ {
		val := semigroup.Elem(v)
		if int(val) == x && x != 0 {
			continue // condition (ii): x·y = x
		}
		if int(val) == y && y != 0 {
			continue // condition (ii): x·y = y
		}
		st.mul[idx] = val
		if cellConsistent(st.mul, n, semigroup.Elem(x), semigroup.Elem(y)) {
			nm := maxEl
			if x > nm {
				nm = x
			}
			if y > nm {
				nm = y
			}
			if v > nm {
				nm = v
			}
			if !visit(val, nm) {
				st.mul[idx] = unset
				return false
			}
		}
		st.mul[idx] = unset
	}
	return true
}

// runWave deepens the accumulated frontier roots into subtree tasks and
// explores them through psearch. On return *roots is cleared; *witness is
// set when a task verified a model. Returns false to stop the assignment
// enumeration (witness found or budget stop).
func (s *searcher) runWave(n int, roots *[]*tableState, witness **tableState) bool {
	frontier := *roots
	*roots = nil
	depth := 0
	for s.remaining > 0 {
		if s.opt.SplitDepth > 0 {
			if depth >= s.opt.SplitDepth {
				break
			}
		} else if len(frontier) >= taskTarget {
			break
		}
		expandable := false
		next := make([]*tableState, 0, len(frontier))
		for _, st := range frontier {
			if st.ci == len(st.cells) {
				next = append(next, st)
				continue
			}
			expandable = true
			if !s.countGen() {
				return false
			}
			s.branch(st, n, st.ci, st.maxEl, func(v semigroup.Elem, maxEl int) bool {
				child := &tableState{assign: st.assign, cells: st.cells,
					mul: append([]semigroup.Elem(nil), st.mul...), ci: st.ci + 1, maxEl: maxEl}
				next = append(next, child)
				return true
			})
		}
		if !expandable {
			break
		}
		frontier = next
		depth++
	}
	if s.remaining <= 0 {
		return false
	}
	if len(frontier) == 0 {
		// The whole subtree died during frontier generation: there is
		// nothing to dispatch, so no split/steal events — but the
		// generation nodes were counted and must reach the stream.
		s.flushNodes(n)
		return true
	}

	allowance := 0
	if s.limited {
		allowance = s.remaining
	}
	rep := psearch.Explore(len(frontier), psearch.Options{
		Workers: s.opt.Workers, Governor: s.gov, Allowance: allowance,
	}, func(t int, ctx *psearch.Ctx) bool {
		return s.runTask(frontier[t], n, ctx)
	})
	s.nodes += rep.Committed
	s.spec += rep.Speculative
	s.remaining -= rep.Committed + rep.Speculative

	if s.sink != nil {
		s.sink.Event(obs.Event{Type: obs.EvSearchSplit, Src: "search",
			Order: n, N: len(frontier), Depth: depth})
		upto := len(frontier) - 1
		if rep.Winner >= 0 {
			upto = rep.Winner
		}
		for t := 0; t <= upto; t++ {
			s.sink.Event(obs.Event{Type: obs.EvSearchSteal, Src: "search",
				Order: n, Task: t, Worker: rep.Tasks[t].Worker, N: rep.Tasks[t].Nodes})
		}
		s.flushNodes(n)
	}

	if rep.Winner >= 0 {
		*witness = frontier[rep.Winner]
		return false
	}
	if rep.Stop.Stopped() {
		s.stop = rep.Stop
		s.remaining = 0
		return false
	}
	return true
}

// flushNodes emits the committed nodes not yet covered by a search_node
// event (one aggregate per wave, plus the order's remainder).
func (s *searcher) flushNodes(order int) {
	if s.sink != nil && s.nodes > s.lastEmitted {
		s.sink.Event(obs.Event{Type: obs.EvSearchNode, Src: "search", Order: order, N: s.nodes - s.lastEmitted})
		s.lastEmitted = s.nodes
	}
}

// runTask explores one subtree task: depth-first over the remaining free
// cells, reporting every node to ctx. Returns true when a verified model
// was found (stored in st.table).
func (s *searcher) runTask(st *tableState, n int, ctx *psearch.Ctx) bool {
	var dfs func(ci, maxEl int) bool
	dfs = func(ci, maxEl int) bool {
		if !ctx.Node() {
			return false
		}
		if ci == len(st.cells) {
			if tb := s.verifyLeaf(st.mul, n, st.assign); tb != nil {
				st.table = tb
				return true
			}
			return false
		}
		s.branch(st, n, ci, maxEl, func(_ semigroup.Elem, nm int) bool {
			if dfs(ci+1, nm) {
				return false // witness found: stop branching
			}
			return !ctx.Halted()
		})
		return st.table != nil
	}
	return dfs(st.ci, st.maxEl)
}

// cellConsistent checks local constraints after setting cell (x, y):
// injectivity off zero in row x and column y, and associativity on every
// triple that the new cell completes.
func cellConsistent(mul []semigroup.Elem, n int, x, y semigroup.Elem) bool {
	v := mul[int(x)*n+int(y)]
	if v != 0 {
		for yy := 0; yy < n; yy++ {
			if semigroup.Elem(yy) != y && mul[int(x)*n+yy] == v {
				return false // condition (i), left cancellation
			}
		}
		for xx := 0; xx < n; xx++ {
			if semigroup.Elem(xx) != x && mul[xx*n+int(y)] == v {
				return false // condition (i), right cancellation
			}
		}
	}
	at := func(a, b semigroup.Elem) semigroup.Elem {
		if a == unset || b == unset {
			return unset
		}
		return mul[int(a)*n+int(b)]
	}
	// Triples (x, y, c): (x·y)·c vs x·(y·c).
	for c := 0; c < n; c++ {
		ce := semigroup.Elem(c)
		l := at(v, ce)
		yc := at(y, ce)
		r := at(x, yc)
		if l != unset && r != unset && l != r {
			return false
		}
		// Triples (c, x, y): (c·x)·y vs c·(x·y).
		cx := at(ce, x)
		l2 := at(cx, y)
		r2 := at(ce, v)
		if l2 != unset && r2 != unset && l2 != r2 {
			return false
		}
		// Triples (x, c, y) where x·c or c·y routes through the new cell are
		// covered by the two patterns above when the completing cell is
		// (x, y); remaining patterns are caught at the leaf.
	}
	return true
}

// injectiveOffZero verifies condition-(i) injectivity on the current
// (partially filled) table: no nonzero value repeats within a row or a
// column. Zero entries are exempt (condition (i) only constrains products
// off the zero ideal), so an all-zero row is fine; n = 0 is vacuously
// injective.
func injectiveOffZero(mul []semigroup.Elem, n int) bool {
	for x := 0; x < n; x++ {
		seenRow := make(map[semigroup.Elem]bool)
		seenCol := make(map[semigroup.Elem]bool)
		for y := 0; y < n; y++ {
			if v := mul[x*n+y]; v != unset && v != 0 {
				if seenRow[v] {
					return false
				}
				seenRow[v] = true
			}
			if v := mul[y*n+x]; v != unset && v != 0 {
				if seenCol[v] {
					return false
				}
				seenCol[v] = true
			}
		}
	}
	return true
}

// verifyLeaf runs the full, authoritative checks on a complete table. It
// only reads s.pres, so concurrent tasks may call it safely.
func (s *searcher) verifyLeaf(mul []semigroup.Elem, n int, assign map[words.Symbol]semigroup.Elem) *semigroup.Table {
	rows := make([][]semigroup.Elem, n)
	for i := 0; i < n; i++ {
		rows[i] = append([]semigroup.Elem(nil), mul[i*n:(i+1)*n]...)
	}
	tb, err := semigroup.New(rows, fmt.Sprintf("search-%d", n))
	if err != nil {
		return nil // not associative
	}
	if _, hasID := tb.Identity(); hasID {
		return nil
	}
	if err := semigroup.CheckCancellation(tb); err != nil {
		return nil
	}
	in, err := semigroup.NewInterpretation(tb, s.pres.Alphabet, assign)
	if err != nil {
		return nil
	}
	ok, _, err := in.SatisfiesPresentation(s.pres)
	if err != nil || !ok {
		return nil
	}
	// A0 != 0 holds by construction (A0 -> 1, zero -> 0).
	return tb
}

// Package search implements a finite-model finder for the semigroup side of
// the Gurevich–Lewis Main Lemma: given a presentation E over an alphabet S
// with distinguished symbols A0 and 0, it looks for a finite S-generated
// semigroup WITHOUT identity, having the cancellation property (conditions
// (i) and (ii)), in which every equation of E holds but A0 = 0 fails.
//
// Finding such a model certifies membership of the instance in the Main
// Theorem's second set: by Reduction Theorem part (B) it yields a finite
// database satisfying D in which D0 fails. Together with the equational
// closure of internal/words (which certifies membership in the first set),
// this realizes the two semi-procedures whose domains the paper proves
// effectively inseparable.
//
// The search enumerates multiplication tables by backtracking over cells
// with constraint propagation:
//
//   - element 0 is the zero (its row and column are pinned);
//   - symbol A0 is interpreted as element 1 (any model can be relabeled);
//   - (2,1) equations pin single cells before the search starts;
//   - condition (ii) forbids any cell x·y = x or x·y = y with the repeated
//     element nonzero;
//   - condition (i) is enforced by keeping rows and columns injective off
//     zero;
//   - associativity is pruned on every fully determined triple and
//     re-verified at the leaves.
package search

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/semigroup"
	"templatedep/internal/words"
)

// Options bounds the model search.
type Options struct {
	// Orders is the inclusive window of semigroup orders tried — a
	// structural coordinate, not a meter. A zero Lo means 2 (the smallest
	// identity-free order of interest); a Hi below Lo is raised to Lo.
	Orders budget.Range
	// Governor bounds the search: its nodes meter caps the total number of
	// backtracking nodes across all orders and assignments, and its
	// context is checked every nodeEventBatch nodes, keeping the inner
	// loop free of governor traffic. Nil resolves to DefaultLimits.
	Governor *budget.Governor
	// QuotientClasses > 0 tries the nilpotent-quotient construction
	// (classes 2..QuotientClasses) BEFORE the table search; witnesses found
	// this way cost no search nodes. Sound but incomplete, hence opt-in.
	QuotientClasses int
	// Sink receives search_node events (batched every nodeEventBatch
	// expanded nodes, plus a per-order remainder) and the final verdict.
	// Nil disables emission. See docs/OBSERVABILITY.md.
	Sink obs.Sink
}

// nodeEventBatch is the search_node batching interval: one event per this
// many backtracking nodes keeps sink overhead out of the inner loop while
// still giving a live progress signal a few times per second.
const nodeEventBatch = 4096

// DefaultOrders is the order window an unconfigured search covers.
var DefaultOrders = budget.Range{Lo: 2, Hi: 6}

// DefaultLimits is the node budget an ungoverned search runs under.
var DefaultLimits = budget.Limits{Nodes: 5_000_000}

// DefaultOptions returns generous interactive defaults.
func DefaultOptions() Options {
	return Options{Orders: DefaultOrders}
}

// Result is the outcome of FindCounterModel.
type Result struct {
	// Interpretation witnesses Main Lemma failure for the ORIGINAL
	// presentation; nil when no model was found.
	Interpretation *semigroup.Interpretation
	// Presentation is the presentation the witness interprets (the input).
	Presentation *words.Presentation
	// NodesVisited counts backtracking nodes explored.
	NodesVisited int
	// Budget reports how the governor cut the search short; zero (ok)
	// means the order window was covered.
	Budget budget.Outcome
}

// Status renders the search outcome for display and events: "model-found",
// "no-model-within-bounds" (the window was covered without a witness — NOT
// a proof that none exists), or the budget stop ("exhausted:nodes",
// "cancelled", "deadline").
func (r Result) Status() string {
	switch {
	case r.Interpretation != nil:
		return "model-found"
	case r.Budget.Stopped():
		return r.Budget.String()
	}
	return "no-model-within-bounds"
}

// FindCounterModel searches for a finite cancellation counterexample to the
// Main Lemma goal of p. Presentations not in (2,1) form are normalized
// first; a witness for the normalized form is mapped back to the original
// alphabet through the normalization's aliases.
func FindCounterModel(p *words.Presentation, opt Options) (Result, error) {
	if opt.Orders.Lo < 2 {
		opt.Orders.Lo = 2
	}
	if opt.Orders.Hi < opt.Orders.Lo {
		opt.Orders.Hi = opt.Orders.Lo
	}
	p = p.WithZeroEquations()

	if opt.QuotientClasses > 0 {
		wit, ok, err := BestNilpotentQuotientWitness(p, opt.QuotientClasses)
		if err != nil {
			return Result{}, err
		}
		if ok {
			return Result{Interpretation: wit, Presentation: p}, nil
		}
	}

	work := p
	var norm *words.Normalization
	if !p.IsTwoOne() {
		var err error
		norm, err = words.Normalize(p)
		if err != nil {
			return Result{}, err
		}
		work = norm.Presentation
	}

	g := budget.Resolve(opt.Governor, DefaultLimits)
	s := &searcher{pres: work, gov: g, remaining: g.Limit(budget.Nodes), sink: opt.Sink}
	if s.remaining <= 0 {
		// Ungoverned nodes meter: only the context can stop the search.
		s.remaining = int(^uint(0) >> 1)
	}
	// finish settles the meter and closes the trace: a budget stop event
	// when the governor cut the run, then the verdict, so partial traces
	// stay well formed.
	finish := func(r Result) Result {
		g.Add(budget.Nodes, s.nodes-s.settled)
		s.settled = s.nodes
		if s.sink != nil {
			s.flushNodes()
			if r.Budget.Stopped() {
				typ := obs.EvBudgetExhausted
				if r.Budget.Code != budget.CodeExhausted {
					typ = obs.EvCancelled
				}
				s.sink.Event(obs.Event{Type: typ, Src: "search", Resource: r.Budget.Reason()})
			}
			s.sink.Event(obs.Event{Type: obs.EvVerdict, Src: "search", Verdict: r.Status(), N: s.nodes})
		}
		return r
	}
	// Refuse to start under an already-stopped governor, so a run cancelled
	// during an earlier stage cannot race the first node batch for an
	// answer (the overall verdict must not depend on checkpoint timing).
	if o := g.Interrupted(); o.Stopped() {
		return finish(Result{Presentation: p, Budget: o}), nil
	}
	for n := opt.Orders.Lo; n <= opt.Orders.Hi; n++ {
		s.order = n
		found, err := s.searchOrder(n)
		if err != nil {
			return Result{}, err
		}
		if s.sink != nil {
			s.flushNodes()
		}
		if s.remaining <= 0 && found == nil {
			out := s.stop
			if !out.Stopped() {
				out = budget.Exhausted(budget.Nodes)
			}
			return finish(Result{Presentation: p, NodesVisited: s.nodes, Budget: out}), nil
		}
		if found != nil {
			in, err := mapBack(p, norm, found)
			if err != nil {
				return Result{}, err
			}
			if err := in.IsModelOfMainLemmaFailure(p); err != nil {
				return Result{}, fmt.Errorf("search: internal error: found model fails verification: %w", err)
			}
			return finish(Result{Interpretation: in, Presentation: p, NodesVisited: s.nodes}), nil
		}
	}
	return finish(Result{Presentation: p, NodesVisited: s.nodes}), nil
}

// mapBack restricts a witness for the normalized presentation to the
// original alphabet (original symbol s is interpreted as the value of its
// alias representative).
func mapBack(orig *words.Presentation, norm *words.Normalization, in *semigroup.Interpretation) (*semigroup.Interpretation, error) {
	if norm == nil {
		return in, nil
	}
	assign := make(map[words.Symbol]semigroup.Elem, orig.Alphabet.Size())
	for _, s := range orig.Alphabet.Symbols() {
		r := s
		if rep, ok := norm.Aliases[s]; ok {
			r = rep
		}
		v, ok := in.Assign[r]
		if !ok {
			return nil, fmt.Errorf("search: representative of %s unassigned", orig.Alphabet.Name(s))
		}
		assign[s] = v
	}
	return semigroup.NewInterpretation(in.Table, orig.Alphabet, assign)
}

// searcher holds the state shared across orders.
type searcher struct {
	pres *words.Presentation
	gov  *budget.Governor
	// remaining is the node countdown mirroring the governor's nodes
	// limit; the inner loop exits on remaining <= 0, and a context stop is
	// injected by zeroing it at the next batch boundary.
	remaining int
	nodes     int
	// settled is how many nodes have been reported to the governor.
	settled int
	// stop records a context stop observed at a batch checkpoint.
	stop budget.Outcome
	// sink, when non-nil, receives batched search_node events; pending
	// counts nodes expanded since the last emission, order is the
	// semigroup order currently under search.
	sink    obs.Sink
	pending int
	order   int
}

// countNode records one expanded backtracking node and emits a batched
// search_node event when the batch fills. Every nodeEventBatch nodes it
// also settles the governor meter and polls the context — the bounded
// cancellation latency of the search is one batch.
func (s *searcher) countNode() {
	s.nodes++
	s.remaining--
	if s.nodes%nodeEventBatch == 0 {
		s.gov.Add(budget.Nodes, s.nodes-s.settled)
		s.settled = s.nodes
		if o := s.gov.Interrupted(); o.Stopped() {
			s.stop = o
			s.remaining = 0
		}
	}
	if s.sink == nil {
		return
	}
	s.pending++
	if s.pending >= nodeEventBatch {
		s.flushNodes()
	}
}

// flushNodes emits the partial batch, if any.
func (s *searcher) flushNodes() {
	if s.sink != nil && s.pending > 0 {
		s.sink.Event(obs.Event{Type: obs.EvSearchNode, Src: "search", Order: s.order, N: s.pending})
		s.pending = 0
	}
}

const unset = semigroup.Elem(-1)

// searchOrder looks for a model of exactly order n. Returns the witness
// interpretation over the searcher's (normalized) presentation, or nil.
func (s *searcher) searchOrder(n int) (*semigroup.Interpretation, error) {
	a := s.pres.Alphabet
	syms := a.Symbols()
	// Assignment: zero symbol -> 0, A0 -> 1, others enumerated.
	free := make([]words.Symbol, 0, len(syms))
	for _, sym := range syms {
		if sym != a.Zero() && sym != a.A0() {
			free = append(free, sym)
		}
	}
	assign := make(map[words.Symbol]semigroup.Elem, len(syms))
	assign[a.Zero()] = 0
	assign[a.A0()] = 1

	var tryAssign func(i int) (*semigroup.Interpretation, error)
	tryAssign = func(i int) (*semigroup.Interpretation, error) {
		if s.remaining <= 0 {
			return nil, nil
		}
		if i == len(free) {
			tb := s.searchTable(n, assign)
			if tb == nil {
				return nil, nil
			}
			cp := make(map[words.Symbol]semigroup.Elem, len(assign))
			for k, v := range assign {
				cp[k] = v
			}
			return semigroup.NewInterpretation(tb, a, cp)
		}
		for e := 0; e < n; e++ {
			assign[free[i]] = semigroup.Elem(e)
			in, err := tryAssign(i + 1)
			if err != nil || in != nil {
				return in, err
			}
		}
		delete(assign, free[i])
		return nil, nil
	}
	return tryAssign(0)
}

// searchTable backtracks over the n×n multiplication table under the given
// symbol assignment, returning a verified table or nil.
func (s *searcher) searchTable(n int, assign map[words.Symbol]semigroup.Elem) *semigroup.Table {
	mul := make([]semigroup.Elem, n*n)
	for i := range mul {
		mul[i] = unset
	}
	at := func(x, y semigroup.Elem) semigroup.Elem { return mul[int(x)*n+int(y)] }
	set := func(x, y, v semigroup.Elem) { mul[int(x)*n+int(y)] = v }

	// Pin the zero row and column.
	for i := 0; i < n; i++ {
		set(semigroup.Elem(i), 0, 0)
		set(0, semigroup.Elem(i), 0)
	}
	// Pin cells from (2,1) equations.
	for _, e := range s.pres.Equations {
		if !e.IsTwoOne() {
			continue // non-(2,1) presentations were normalized upstream
		}
		x, y := assign[e.LHS[0]], assign[e.LHS[1]]
		v := assign[e.RHS[0]]
		if cur := at(x, y); cur != unset && cur != v {
			return nil // contradictory pinning under this assignment
		}
		// Cancellation conditions on pinned cells.
		if v == x && x != 0 {
			return nil
		}
		if v == y && y != 0 {
			return nil
		}
		set(x, y, v)
	}
	// Row/column injectivity-off-zero for pinned cells.
	if !s.injectiveOffZero(mul, n) {
		return nil
	}

	// Collect free cells in row-major order.
	var cells []int
	for i := range mul {
		if mul[i] == unset {
			cells = append(cells, i)
		}
	}

	var try func(ci int) *semigroup.Table
	try = func(ci int) *semigroup.Table {
		s.countNode()
		if s.remaining <= 0 {
			return nil
		}
		if ci == len(cells) {
			return s.verifyLeaf(mul, n, assign)
		}
		idx := cells[ci]
		x, y := semigroup.Elem(idx/n), semigroup.Elem(idx%n)
		for v := 0; v < n; v++ {
			val := semigroup.Elem(v)
			if val == x && x != 0 {
				continue // condition (ii): x·y = x
			}
			if val == y && y != 0 {
				continue // condition (ii): x·y = y
			}
			mul[idx] = val
			if s.cellConsistent(mul, n, x, y) {
				if tb := try(ci + 1); tb != nil {
					return tb
				}
				if s.remaining <= 0 {
					mul[idx] = unset
					return nil
				}
			}
			mul[idx] = unset
		}
		return nil
	}
	return try(0)
}

// cellConsistent checks local constraints after setting cell (x, y):
// injectivity off zero in row x and column y, and associativity on every
// triple that the new cell completes.
func (s *searcher) cellConsistent(mul []semigroup.Elem, n int, x, y semigroup.Elem) bool {
	v := mul[int(x)*n+int(y)]
	if v != 0 {
		for yy := 0; yy < n; yy++ {
			if semigroup.Elem(yy) != y && mul[int(x)*n+yy] == v {
				return false // condition (i), left cancellation
			}
		}
		for xx := 0; xx < n; xx++ {
			if semigroup.Elem(xx) != x && mul[xx*n+int(y)] == v {
				return false // condition (i), right cancellation
			}
		}
	}
	at := func(a, b semigroup.Elem) semigroup.Elem {
		if a == unset || b == unset {
			return unset
		}
		return mul[int(a)*n+int(b)]
	}
	// Triples (x, y, c): (x·y)·c vs x·(y·c).
	for c := 0; c < n; c++ {
		ce := semigroup.Elem(c)
		l := at(v, ce)
		yc := at(y, ce)
		r := at(x, yc)
		if l != unset && r != unset && l != r {
			return false
		}
		// Triples (c, x, y): (c·x)·y vs c·(x·y).
		cx := at(ce, x)
		l2 := at(cx, y)
		r2 := at(ce, v)
		if l2 != unset && r2 != unset && l2 != r2 {
			return false
		}
		// Triples (x, c, y) where x·c or c·y routes through the new cell are
		// covered by the two patterns above when the completing cell is
		// (x, y); remaining patterns are caught at the leaf.
	}
	return true
}

// injectiveOffZero verifies condition-(i) injectivity on the current
// (partially filled) table.
func (s *searcher) injectiveOffZero(mul []semigroup.Elem, n int) bool {
	for x := 0; x < n; x++ {
		seenRow := make(map[semigroup.Elem]bool)
		seenCol := make(map[semigroup.Elem]bool)
		for y := 0; y < n; y++ {
			if v := mul[x*n+y]; v != unset && v != 0 {
				if seenRow[v] {
					return false
				}
				seenRow[v] = true
			}
			if v := mul[y*n+x]; v != unset && v != 0 {
				if seenCol[v] {
					return false
				}
				seenCol[v] = true
			}
		}
	}
	return true
}

// verifyLeaf runs the full, authoritative checks on a complete table.
func (s *searcher) verifyLeaf(mul []semigroup.Elem, n int, assign map[words.Symbol]semigroup.Elem) *semigroup.Table {
	rows := make([][]semigroup.Elem, n)
	for i := 0; i < n; i++ {
		rows[i] = append([]semigroup.Elem(nil), mul[i*n:(i+1)*n]...)
	}
	tb, err := semigroup.New(rows, fmt.Sprintf("search-%d", n))
	if err != nil {
		return nil // not associative
	}
	if _, hasID := tb.Identity(); hasID {
		return nil
	}
	if err := semigroup.CheckCancellation(tb); err != nil {
		return nil
	}
	in, err := semigroup.NewInterpretation(tb, s.pres.Alphabet, assign)
	if err != nil {
		return nil
	}
	ok, _, err := in.SatisfiesPresentation(s.pres)
	if err != nil || !ok {
		return nil
	}
	// A0 != 0 holds by construction (A0 -> 1, zero -> 0).
	return tb
}

package search

import (
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/semigroup"
	"templatedep/internal/words"
)

func TestFindCounterModelPower(t *testing.T) {
	// {A0·A0 = B}: the null semigroup of order 2 (A0 -> x, B -> 0, x² = 0)
	// is already a counterexample; the search must find order 2.
	res, err := FindCounterModel(words.PowerPresentation(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Interpretation == nil {
		t.Fatalf("outcome %v after %d nodes", res.Status(), res.NodesVisited)
	}
	if got := res.Interpretation.Table.Size(); got != 2 {
		t.Errorf("model order %d, want minimal 2", got)
	}
	if err := res.Interpretation.IsModelOfMainLemmaFailure(res.Presentation); err != nil {
		t.Error(err)
	}
}

func TestFindCounterModelNilpotentSafe(t *testing.T) {
	// B1 denotes A0², B2 denotes A0³; models where everything beyond A0
	// collapses to zero exist at order 2 (A0 -> x, B1, B2 -> 0).
	res, err := FindCounterModel(words.NilpotentSafePresentation(2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Interpretation == nil {
		t.Fatalf("outcome %v", res.Status())
	}
	if err := res.Interpretation.IsModelOfMainLemmaFailure(res.Presentation); err != nil {
		t.Error(err)
	}
}

func TestFindCounterModelDerivableHasNone(t *testing.T) {
	// TwoStep: A0 = 0 is derivable, so NO model of any size can falsify it.
	res, err := FindCounterModel(words.TwoStepPresentation(), Options{Orders: budget.Range{Lo: 2, Hi: 3}, Governor: budget.New(nil, budget.Limits{Nodes: 2_000_000})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interpretation != nil {
		t.Fatalf("found impossible counterexample:\n%s", res.Interpretation.Table.String())
	}
}

func TestFindCounterModelIdempotentGap(t *testing.T) {
	// {A0·A0 = A0}: not derivable, but condition (ii) excludes every finite
	// cancellation counterexample without identity. The search must exhaust
	// its bounds without a model.
	res, err := FindCounterModel(words.IdempotentGapPresentation(), Options{Orders: budget.Range{Lo: 2, Hi: 4}, Governor: budget.New(nil, budget.Limits{Nodes: 4_000_000})})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Status(); got != "no-model-within-bounds" {
		t.Fatalf("outcome %v, want no-model-within-bounds", got)
	}
}

func TestFindCounterModelChain(t *testing.T) {
	// Chain presentations are derivable; no counterexample may be found.
	res, err := FindCounterModel(words.ChainPresentation(2), Options{Orders: budget.Range{Lo: 2, Hi: 3}, Governor: budget.New(nil, budget.Limits{Nodes: 3_000_000})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interpretation != nil {
		t.Fatal("found impossible counterexample for a derivable instance")
	}
}

func TestFindCounterModelBudget(t *testing.T) {
	// An equation-free alphabet at order 3 leaves four free cells; a budget
	// of 3 nodes cannot reach a leaf, so the search must report exhaustion.
	a := words.MustAlphabet([]string{"A0", "X", "0"}, "A0", "0")
	p, err := words.NewPresentation(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindCounterModel(p, Options{Orders: budget.Range{Lo: 3, Hi: 3}, Governor: budget.New(nil, budget.Limits{Nodes: 3})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != budget.Exhausted(budget.Nodes) {
		t.Fatalf("outcome %v (nodes %d), want exhausted:nodes", res.Status(), res.NodesVisited)
	}
}

func TestFindCounterModelNormalizesLongEquations(t *testing.T) {
	// A presentation with a length-3 equation must be normalized internally
	// and the witness mapped back to the original alphabet.
	a := words.MustAlphabet([]string{"A0", "C", "0"}, "A0", "0")
	p, err := words.NewPresentation(a, []words.Equation{
		words.Eq(words.MustParseWord(a, "A0 A0 A0"), words.MustParseWord(a, "C")),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindCounterModel(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Interpretation == nil {
		t.Fatalf("outcome %v", res.Status())
	}
	// The verified witness must be over the ORIGINAL alphabet.
	for _, s := range a.Symbols() {
		if _, ok := res.Interpretation.Assign[s]; !ok {
			t.Errorf("symbol %s unassigned in mapped-back witness", a.Name(s))
		}
	}
	if err := res.Interpretation.IsModelOfMainLemmaFailure(p.WithZeroEquations()); err != nil {
		t.Error(err)
	}
}

func TestQuotientFastPath(t *testing.T) {
	opt := DefaultOptions()
	opt.QuotientClasses = 3
	res, err := FindCounterModel(words.PowerPresentation(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interpretation == nil {
		t.Fatalf("outcome %v", res.Status())
	}
	if res.NodesVisited != 0 {
		t.Errorf("quotient path should cost no search nodes, used %d", res.NodesVisited)
	}
	if err := res.Interpretation.IsModelOfMainLemmaFailure(res.Presentation); err != nil {
		t.Error(err)
	}
	// The fast path must not produce false positives on derivable input:
	// the table search still runs (and finds nothing).
	opt2 := Options{Orders: budget.Range{Lo: 2, Hi: 3}, Governor: budget.New(nil, budget.Limits{Nodes: 2_000_000}), QuotientClasses: 3}
	res2, err := FindCounterModel(words.TwoStepPresentation(), opt2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Interpretation != nil {
		t.Fatal("impossible witness for a derivable presentation")
	}
}

func TestFoundModelsHaveCancellation(t *testing.T) {
	for _, p := range []*words.Presentation{
		words.PowerPresentation(),
		words.NilpotentSafePresentation(1),
	} {
		res, err := FindCounterModel(p, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Interpretation == nil {
			t.Fatalf("outcome %v", res.Status())
		}
		if err := semigroup.CheckCancellation(res.Interpretation.Table); err != nil {
			t.Error(err)
		}
		if _, hasID := res.Interpretation.Table.Identity(); hasID {
			t.Error("model has an identity")
		}
	}
}

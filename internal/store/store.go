// Package store is the disk-backed write-through verdict store of the
// serving tier: an append-only log of checksummed records plus an
// in-memory index, so a restarted replica answers every previously-settled
// canonical key without re-running an engine.
//
// The economics follow from the Main Theorem. Implication for template
// dependencies is undecidable, so a definitive verdict may have cost an
// arbitrarily large engine run — and, being definitive for a CANONICAL key
// class (internal/serve/canon), it is permanent: no future request in the
// class can ever be answered differently. A verdict is therefore the one
// artifact worth persisting forever, and losing the in-memory cache to a
// restart is the one cold-start cost a fleet can actually avoid. Unknown
// verdicts are different: they are honest budget reports, valid only as
// "this budget class could not settle it", so they are stored WITH their
// budget class and a strictly larger class overwrites them — on disk as in
// memory.
//
// Durability model, deliberately modest (stdlib only, no fsync):
//
//   - every Put appends one length-prefixed, CRC-checksummed record and
//     updates the index before returning, so a killed PROCESS loses
//     nothing that was Put (the OS page cache survives the process);
//   - a machine crash may tear the final record; Open detects the torn
//     tail by length/checksum, truncates it, and keeps every record before
//     it — recovery never invents data and never drops a clean prefix;
//   - a record mid-file that fails its checksum ends recovery at that
//     offset (append-only logs corrupt from the tail; a flipped byte
//     earlier means the file is not ours to guess about), again keeping
//     the clean prefix.
//
// Overwrites append a superseding record and deletions append a tombstone;
// the index keeps only the newest live record per key, and Compact
// rewrites the log with exactly the live records (temp file + rename, so a
// crash mid-compaction leaves the old log intact). Puts auto-compact once
// dead bytes exceed both a floor and the live size, keeping the log within
// ~2x of its live content.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"templatedep/internal/obs"
)

// magic opens every log file; a file that exists but does not start with
// it is refused rather than silently rewritten.
var magic = []byte("TDVSTOR1")

// recordHeaderLen is the per-record framing: a 4-byte little-endian
// payload length followed by the payload's CRC-32 (IEEE).
const recordHeaderLen = 8

// maxRecordLen bounds a single record payload. Certificates dominate
// record size and stay far below this; the bound exists so a corrupt
// length prefix cannot make recovery attempt a multi-gigabyte allocation.
const maxRecordLen = 64 << 20

// autoCompactFloor is the minimum dead-byte volume before a Put triggers
// compaction (compacting a tiny log is churn, not savings).
const autoCompactFloor = 256 << 10

// Record is one stored verdict. Verdict strings use the engine vocabulary
// ("implied", "finite-counterexample", "unknown").
type Record struct {
	// Key is the full canonical problem key (not the short digest) — the
	// index key, shared by every renamed/reordered variant of the problem.
	Key     string `json:"key"`
	Verdict string `json:"verdict,omitempty"`
	Winner  string `json:"winner,omitempty"`
	Stop    string `json:"stop,omitempty"`
	// ColdMS is the engine wall-clock of the run that produced the
	// verdict, echoed on store hits so clients see what the fleet saved.
	ColdMS float64 `json:"cold_ms,omitempty"`
	// Class is the resolved budget class of the run (meaningful for
	// "unknown" verdicts; see Supersedes).
	Class Class `json:"class,omitempty"`
	// Cert is the encoded verifiable certificate backing a definitive
	// verdict (may be empty for the rare definitive run whose certifying
	// replay ran out of budget).
	Cert json.RawMessage `json:"cert,omitempty"`
	// Deleted marks a tombstone: an appended "forget this key" record,
	// written by Delete so an eviction survives restart (recovery drops
	// the key; compaction drops the tombstone itself).
	Deleted bool `json:"deleted,omitempty"`
}

// Class is a budget class: the effective per-meter limits a run executed
// under. It mirrors budget.Limits without importing it — the store is a
// dumb durability layer and compares classes only for the overwrite rule.
type Class struct {
	Rounds int `json:"rounds,omitempty"`
	Tuples int `json:"tuples,omitempty"`
	Nodes  int `json:"nodes,omitempty"`
	Words  int `json:"words,omitempty"`
}

// Exceeds reports whether c exceeds d on any meter — the condition under
// which a run under c may settle what a run under d answered unknown.
func (c Class) Exceeds(d Class) bool {
	return c.Rounds > d.Rounds || c.Tuples > d.Tuples ||
		c.Nodes > d.Nodes || c.Words > d.Words
}

// definitive reports whether the record's verdict is permanent.
func (r Record) definitive() bool {
	return r.Verdict == "implied" || r.Verdict == "finite-counterexample"
}

// Supersedes reports whether r should replace old for the same key:
// definitive beats unknown, a definitive record upgrades from certless to
// certified, and between unknowns a strictly larger budget class wins.
// A definitive record is never replaced by an unknown, and an equal-class
// unknown leaves the stored one in place (no churn on repeats).
func (r Record) Supersedes(old Record) bool {
	switch {
	case r.definitive() && !old.definitive():
		return true
	case r.definitive() && old.definitive():
		// Same verdict for the key either way (the canonical-key contract);
		// only rewrite to attach a certificate a prior run could not
		// produce.
		return len(old.Cert) == 0 && len(r.Cert) > 0
	case old.definitive():
		return false
	default:
		return r.Class.Exceeds(old.Class)
	}
}

// keyDigest is the short key form stamped on events, matching the serving
// layer's wire digests so one trace correlates across layers.
func keyDigest(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// Options configures Open.
type Options struct {
	// Sink receives the store's lifecycle events (store_recover,
	// store_put, store_compact); nil disables emission.
	Sink obs.Sink
	// NoAutoCompact disables the Put-triggered compaction heuristic;
	// Compact can still be called explicitly (tests pin compaction
	// behavior without racing the heuristic).
	NoAutoCompact bool
}

// Store is a disk-backed verdict store. Safe for concurrent use; events
// are emitted under the store lock, so they land in the sink in the order
// the mutations happened.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	path string
	opts Options

	index map[string]Record
	// liveBytes / deadBytes partition the log's record bytes (framing
	// included) into the newest record per key vs superseded ones.
	liveBytes int64
	deadBytes int64
	size      int64 // current file size (append offset)
	closed    bool
}

// RecoverStats reports what Open found on disk.
type RecoverStats struct {
	// Records is the number of live (indexed) records.
	Records int
	// Superseded is the number of log records skipped because a later
	// record for the same key superseded them (tombstones included).
	Superseded int
	// DroppedBytes is the torn/corrupt tail truncated from the log.
	DroppedBytes int64
}

// Open opens (or creates) the verdict store at path, replaying the log
// into the in-memory index and truncating any torn tail. The parent
// directory must exist.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, opts: opts, index: make(map[string]Record)}
	st, err := s.recover()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.emit(obs.Event{Type: obs.EvStoreRecover, N: st.Records,
		Added: st.Superseded, Bytes: int(st.DroppedBytes)})
	return s, nil
}

func (s *Store) emit(e obs.Event) {
	if s.opts.Sink == nil {
		return
	}
	e.Src = "store"
	s.opts.Sink.Event(e)
}

// recover replays the log. Called with the store not yet shared, so no
// locking.
func (s *Store) recover() (RecoverStats, error) {
	var st RecoverStats
	info, err := s.f.Stat()
	if err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	if info.Size() == 0 {
		// Fresh store: stamp the magic header.
		if _, err := s.f.Write(magic); err != nil {
			return st, fmt.Errorf("store: %w", err)
		}
		s.size = int64(len(magic))
		return st, nil
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(s.f, hdr); err != nil || string(hdr) != string(magic) {
		return st, fmt.Errorf("store: %s is not a verdict store (bad magic)", s.path)
	}
	// Scan records until EOF or the first frame that fails its length or
	// checksum — the torn tail. bytesAt tracks the framed size of each
	// key's newest record so superseded records count as dead immediately.
	offset := int64(len(magic))
	bytesAt := make(map[string]int64, 64)
	frame := make([]byte, recordHeaderLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(s.f, frame); err != nil {
			if err == io.EOF {
				break
			}
			if err == io.ErrUnexpectedEOF {
				st.DroppedBytes = info.Size() - offset
				break
			}
			return st, fmt.Errorf("store: %w", err)
		}
		plen := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if plen == 0 || plen > maxRecordLen || offset+recordHeaderLen+int64(plen) > info.Size() {
			st.DroppedBytes = info.Size() - offset
			break
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(s.f, payload); err != nil {
			st.DroppedBytes = info.Size() - offset
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			st.DroppedBytes = info.Size() - offset
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" {
			st.DroppedBytes = info.Size() - offset
			break
		}
		recBytes := recordHeaderLen + int64(plen)
		if prevBytes, ok := bytesAt[rec.Key]; ok {
			// A later record for a seen key: the log's append order IS the
			// supersession order (Put appends only superseding records,
			// Delete only tombstones), so the earlier record is dead.
			s.deadBytes += prevBytes
			st.Superseded++
		}
		if rec.Deleted {
			// The tombstone itself is dead weight too; it only exists to
			// outlive the record it kills until the next compaction.
			delete(bytesAt, rec.Key)
			delete(s.index, rec.Key)
			s.deadBytes += recBytes
		} else {
			bytesAt[rec.Key] = recBytes
			s.index[rec.Key] = rec
		}
		offset += recBytes
	}
	if st.DroppedBytes > 0 {
		if err := s.f.Truncate(offset); err != nil {
			return st, fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	if _, err := s.f.Seek(offset, io.SeekStart); err != nil {
		return st, fmt.Errorf("store: %w", err)
	}
	s.size = offset
	for _, b := range bytesAt {
		s.liveBytes += b
	}
	st.Records = len(s.index)
	return st, nil
}

// Get returns the live record for key.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[key]
	return rec, ok
}

// append frames and writes one record payload, updating the size gauges.
// Caller holds the lock.
func (s *Store) append(rec Record) (int, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	frame := make([]byte, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[recordHeaderLen:], payload)
	if _, err := s.f.Write(frame); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	s.size += int64(len(frame))
	return len(frame), nil
}

// frameLen estimates the framed byte length of rec as stored (re-encoding;
// only used for dead/live accounting, where an estimate is fine).
func frameLen(rec Record) int64 {
	b, err := json.Marshal(rec)
	if err != nil {
		return 0
	}
	return recordHeaderLen + int64(len(b))
}

// Put writes rec through to disk if it supersedes the stored record for
// its key (or the key is new), updating the index before returning.
// Returns whether the record was written. A false return still leaves the
// caller's verdict answerable — the stored record it lost to answers at
// least as much.
func (s *Store) Put(rec Record) (bool, error) {
	if rec.Key == "" || rec.Deleted {
		return false, errors.New("store: invalid record")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errors.New("store: closed")
	}
	old, exists := s.index[rec.Key]
	if exists && !rec.Supersedes(old) {
		s.emit(obs.Event{Type: obs.EvStorePut, Key: keyDigest(rec.Key), Source: "skip"})
		return false, nil
	}
	n, err := s.append(rec)
	if err != nil {
		return false, err
	}
	if exists {
		b := frameLen(old)
		s.liveBytes -= b
		s.deadBytes += b
	}
	s.index[rec.Key] = rec
	s.liveBytes += int64(n)
	disposition := "insert"
	if exists {
		disposition = "overwrite"
	}
	s.emit(obs.Event{Type: obs.EvStorePut, Key: keyDigest(rec.Key),
		Source: disposition, Bytes: n})
	if !s.opts.NoAutoCompact && s.deadBytes > autoCompactFloor && s.deadBytes > s.liveBytes {
		return true, s.compactLocked()
	}
	return true, nil
}

// Delete removes key, appending a tombstone so the eviction survives a
// restart. Used when a stored certificate fails re-verification: the
// entry must not answer another request, this process or the next.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	rec, ok := s.index[key]
	if !ok {
		return nil
	}
	n, err := s.append(Record{Key: key, Deleted: true})
	if err != nil {
		return err
	}
	delete(s.index, key)
	b := frameLen(rec)
	s.liveBytes -= b
	s.deadBytes += b + int64(n)
	return nil
}

// Compact rewrites the log with exactly the live records (temp file +
// rename). A crash before the rename leaves the original log intact; a
// crash after it leaves the compacted log — either way Open recovers a
// consistent store.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	reclaimed := s.deadBytes
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	if _, err := tmp.Write(magic); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	size := int64(len(magic))
	for _, rec := range s.index {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		frame := make([]byte, recordHeaderLen+len(payload))
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
		copy(frame[recordHeaderLen:], payload)
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
		size += int64(len(frame))
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	// Reopen the renamed file for appends; the old handle points at the
	// unlinked pre-compaction log.
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	s.f.Close()
	s.f = f
	s.size = size
	s.liveBytes = size - int64(len(magic))
	s.deadBytes = 0
	s.emit(obs.Event{Type: obs.EvStoreCompact, N: len(s.index), Bytes: int(reclaimed)})
	return nil
}

// Stats is the store's gauge block.
type Stats struct {
	Records   int   `json:"records"`
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	FileBytes int64 `json:"file_bytes"`
}

// Stats snapshots the store gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Records: len(s.index), LiveBytes: s.liveBytes,
		DeadBytes: s.deadBytes, FileBytes: s.size}
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Path returns the log file path.
func (s *Store) Path() string { return s.path }

// Close releases the file (writes are unbuffered, so nothing to flush).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// DefaultPath returns the conventional store location under dir:
// dir/verdicts.log.
func DefaultPath(dir string) string { return filepath.Join(dir, "verdicts.log") }

package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"templatedep/internal/obs"
)

func tempStore(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	path := DefaultPath(t.TempDir())
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func mustPut(t *testing.T, s *Store, rec Record) {
	t.Helper()
	wrote, err := s.Put(rec)
	if err != nil {
		t.Fatalf("Put(%s): %v", rec.Key, err)
	}
	if !wrote {
		t.Fatalf("Put(%s): skipped, want written", rec.Key)
	}
}

func TestPutGetSupersession(t *testing.T) {
	s, _ := tempStore(t, Options{NoAutoCompact: true})

	// An unknown verdict carries its budget class.
	small := Class{Rounds: 4, Tuples: 100}
	mustPut(t, s, Record{Key: "k1", Verdict: "unknown", Stop: "exhausted:rounds", Class: small})

	// A repeat at the same class is a skip — nothing new to say.
	wrote, err := s.Put(Record{Key: "k1", Verdict: "unknown", Class: small})
	if err != nil || wrote {
		t.Fatalf("equal-class unknown re-put: wrote=%v err=%v, want skip", wrote, err)
	}

	// A strictly larger class overwrites.
	big := Class{Rounds: 16, Tuples: 100}
	mustPut(t, s, Record{Key: "k1", Verdict: "unknown", Class: big})
	got, ok := s.Get("k1")
	if !ok || got.Class != big {
		t.Fatalf("Get after class upgrade: %+v ok=%v", got, ok)
	}

	// A definitive verdict beats any unknown, and is never demoted back.
	mustPut(t, s, Record{Key: "k1", Verdict: "implied", Winner: "chase",
		Cert: json.RawMessage(`{"v":1}`)})
	wrote, err = s.Put(Record{Key: "k1", Verdict: "unknown", Class: Class{Rounds: 99, Tuples: 99, Nodes: 99, Words: 99}})
	if err != nil || wrote {
		t.Fatalf("unknown over definitive: wrote=%v err=%v, want skip", wrote, err)
	}
	got, _ = s.Get("k1")
	if got.Verdict != "implied" || len(got.Cert) == 0 {
		t.Fatalf("definitive record lost: %+v", got)
	}

	// A certless definitive record upgrades to a certified one, once.
	mustPut(t, s, Record{Key: "k2", Verdict: "finite-counterexample"})
	mustPut(t, s, Record{Key: "k2", Verdict: "finite-counterexample",
		Cert: json.RawMessage(`{"v":1,"kind":"finite-model"}`)})
	wrote, _ = s.Put(Record{Key: "k2", Verdict: "finite-counterexample",
		Cert: json.RawMessage(`{"v":2}`)})
	if wrote {
		t.Fatalf("certified definitive must not be rewritten again")
	}
}

// TestReopenRebuildsIndex is the restart-warm property: every live record
// survives a clean close and reopen, including class-upgraded unknowns
// (the upgrade must persist, not the first write).
func TestReopenRebuildsIndex(t *testing.T) {
	s, path := tempStore(t, Options{NoAutoCompact: true})
	mustPut(t, s, Record{Key: "def", Verdict: "implied", Winner: "chase",
		ColdMS: 12.5, Cert: json.RawMessage(`{"v":1}`)})
	mustPut(t, s, Record{Key: "unk", Verdict: "unknown", Stop: "exhausted:tuples",
		Class: Class{Rounds: 4, Tuples: 100}})
	mustPut(t, s, Record{Key: "unk", Verdict: "unknown", Stop: "exhausted:rounds",
		Class: Class{Rounds: 32, Tuples: 100}})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	counters := obs.NewCounters()
	s2, err := Open(path, Options{Sink: obs.NewCounterSink(counters), NoAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopen: %d records, want 2", s2.Len())
	}
	def, ok := s2.Get("def")
	if !ok || def.Verdict != "implied" || def.Winner != "chase" || def.ColdMS != 12.5 || len(def.Cert) == 0 {
		t.Fatalf("definitive record did not survive reopen: %+v ok=%v", def, ok)
	}
	unk, ok := s2.Get("unk")
	if !ok || (unk.Class != Class{Rounds: 32, Tuples: 100}) {
		t.Fatalf("class-upgraded unknown did not persist: %+v ok=%v", unk, ok)
	}
	if got := counters.Get("store.recovered_records"); got != 2 {
		t.Fatalf("store.recovered_records = %d, want 2", got)
	}
	if got := counters.Get("store.superseded_records"); got != 1 {
		t.Fatalf("store.superseded_records = %d, want 1 (the pre-upgrade unknown)", got)
	}
	if got := counters.Get("store.dropped_bytes"); got != 0 {
		t.Fatalf("clean log dropped %d bytes on recovery", got)
	}
}

// TestTornTailRecovery is the crash property: a log truncated mid-record
// reopens with every complete record intact and the torn tail dropped.
func TestTornTailRecovery(t *testing.T) {
	s, path := tempStore(t, Options{NoAutoCompact: true})
	mustPut(t, s, Record{Key: "a", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})
	mustPut(t, s, Record{Key: "b", Verdict: "finite-counterexample", Cert: json.RawMessage(`{"v":1}`)})
	sizeBefore := s.Stats().FileBytes
	mustPut(t, s, Record{Key: "victim", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})
	s.Close()

	// Tear the final record: keep its header and half its payload, as a
	// crash mid-write would.
	torn := sizeBefore + recordHeaderLen + 10
	if err := os.Truncate(path, torn); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	counters := obs.NewCounters()
	s2, err := Open(path, Options{Sink: obs.NewCounterSink(counters), NoAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen torn log: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("torn reopen: %d records, want 2", s2.Len())
	}
	if _, ok := s2.Get("victim"); ok {
		t.Fatalf("torn record resurrected")
	}
	for _, k := range []string{"a", "b"} {
		if rec, ok := s2.Get(k); !ok || !rec.definitive() {
			t.Fatalf("complete record %q lost in torn-tail recovery", k)
		}
	}
	if got := counters.Get("store.dropped_bytes"); got != recordHeaderLen+10 {
		t.Fatalf("store.dropped_bytes = %d, want %d", got, recordHeaderLen+10)
	}
	// The file itself was truncated back to the clean prefix, so appends
	// land on a record boundary: a new put and reopen must both work.
	mustPut(t, s2, Record{Key: "c", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})
	s2.Close()
	s3, err := Open(path, Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer s3.Close()
	if s3.Len() != 3 {
		t.Fatalf("after post-tear append: %d records, want 3", s3.Len())
	}
}

// TestCorruptRecordEndsRecovery: a flipped byte mid-file fails that
// record's checksum; recovery keeps the clean prefix and truncates there.
func TestCorruptRecordEndsRecovery(t *testing.T) {
	s, path := tempStore(t, Options{NoAutoCompact: true})
	mustPut(t, s, Record{Key: "keep", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})
	cut := s.Stats().FileBytes
	mustPut(t, s, Record{Key: "corrupt", Verdict: "implied"})
	mustPut(t, s, Record{Key: "after", Verdict: "implied"})
	s.Close()

	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the "corrupt" record.
	if _, err := f.WriteAt([]byte{'X'}, cut+recordHeaderLen+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(path, Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen corrupt log: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("corrupt reopen: %d records, want 1", s2.Len())
	}
	if _, ok := s2.Get("keep"); !ok {
		t.Fatalf("clean prefix record lost")
	}
	if _, ok := s2.Get("after"); ok {
		t.Fatalf("record after corruption must not be trusted")
	}
}

func TestDeleteTombstoneSurvivesReopen(t *testing.T) {
	s, path := tempStore(t, Options{NoAutoCompact: true})
	mustPut(t, s, Record{Key: "bad", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})
	mustPut(t, s, Record{Key: "good", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})
	if err := s.Delete("bad"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := s.Get("bad"); ok {
		t.Fatalf("deleted key still answers")
	}
	s.Close()

	s2, err := Open(path, Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get("bad"); ok {
		t.Fatalf("tombstoned key resurrected on reopen")
	}
	if _, ok := s2.Get("good"); !ok {
		t.Fatalf("unrelated key lost")
	}

	// Deleting and re-putting works: the tombstone does not shadow a
	// later record.
	mustPut(t, s2, Record{Key: "bad", Verdict: "finite-counterexample", Cert: json.RawMessage(`{"v":2}`)})
	s2.Close()
	s3, err := Open(path, Options{NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rec, ok := s3.Get("bad"); !ok || rec.Verdict != "finite-counterexample" {
		t.Fatalf("re-put after tombstone did not persist: %+v ok=%v", rec, ok)
	}
}

func TestCompactReclaimsDeadBytes(t *testing.T) {
	counters := obs.NewCounters()
	s, path := tempStore(t, Options{Sink: obs.NewCounterSink(counters), NoAutoCompact: true})
	// Churn one key through many class upgrades and delete another —
	// plenty of dead log weight.
	for i := 1; i <= 20; i++ {
		mustPut(t, s, Record{Key: "churn", Verdict: "unknown", Class: Class{Rounds: i}})
	}
	mustPut(t, s, Record{Key: "gone", Verdict: "unknown", Class: Class{Rounds: 1}})
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, Record{Key: "stay", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})

	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatalf("test setup produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 {
		t.Fatalf("dead bytes after compaction: %d", after.DeadBytes)
	}
	if after.FileBytes >= before.FileBytes {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.FileBytes, after.FileBytes)
	}
	if after.Records != 2 {
		t.Fatalf("compaction changed live records: %d, want 2", after.Records)
	}
	if counters.Get("store.compactions") != 1 || counters.Get("store.reclaimed_bytes") == 0 {
		t.Fatalf("compaction counters: %v", counters.Snapshot())
	}

	// The compacted log still appends and reopens cleanly.
	mustPut(t, s, Record{Key: "post", Verdict: "implied", Cert: json.RawMessage(`{"v":1}`)})
	s.Close()
	s2, err := Open(path, Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("reopen compacted log: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("compacted reopen: %d records, want 3", s2.Len())
	}
	if rec, _ := s2.Get("churn"); (rec.Class != Class{Rounds: 20}) {
		t.Fatalf("highest class lost in compaction: %+v", rec)
	}
	if _, ok := s2.Get("gone"); ok {
		t.Fatalf("tombstoned key resurrected by compaction")
	}
}

func TestAutoCompactTriggers(t *testing.T) {
	s, _ := tempStore(t, Options{})
	// Churn a fat record (payload padding via the cert) until dead bytes
	// cross the floor; auto-compaction must kick in on its own.
	pad := make([]byte, 8192)
	for i := range pad {
		pad[i] = 'a'
	}
	cert, _ := json.Marshal(map[string]string{"pad": string(pad)})
	for i := 1; i <= 80; i++ {
		mustPut(t, s, Record{Key: "fat", Verdict: "unknown", Class: Class{Rounds: i},
			Cert: cert})
	}
	st := s.Stats()
	if st.DeadBytes > autoCompactFloor && st.DeadBytes > st.LiveBytes {
		t.Fatalf("auto-compaction never ran: %+v", st)
	}
}

func TestOpenRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("just some text, definitely not a verdict log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, err := Open(path, Options{}); err == nil {
		s.Close()
		t.Fatalf("Open accepted a non-store file")
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	s, _ := tempStore(t, Options{})
	mustPut(t, s, Record{Key: "k", Verdict: "implied"})
	s.Close()
	if _, err := s.Put(Record{Key: "k2", Verdict: "implied"}); err == nil {
		t.Fatalf("Put on closed store succeeded")
	}
	if err := s.Delete("k"); err == nil {
		t.Fatalf("Delete on closed store succeeded")
	}
	// Get still answers from the in-memory index (read-only after close).
	if _, ok := s.Get("k"); !ok {
		t.Fatalf("Get after close lost the index")
	}
}

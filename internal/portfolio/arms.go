package portfolio

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/eid"
	"templatedep/internal/finitemodel"
	"templatedep/internal/reduction"
	"templatedep/internal/rewrite"
	"templatedep/internal/search"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// This file builds the individual arms. Each constructor fixes the arm's
// dominant meter, opening grants, and hard ceilings, and wraps the engine
// call in a closure that classifies the lease's health from the engine's
// own statistics. The health heuristics are deliberately local — an arm
// judges only its own meters — which is what keeps the reallocation
// sequence deterministic.

// armCeilings resolves an arm's hard ceilings: the limits of the governor
// the caller put in the engine options, or the engine defaults.
func armCeilings(g *budget.Governor, def budget.Limits) budget.Limits {
	if g != nil {
		return g.Limits()
	}
	return def
}

// rateHealth classifies a work-per-step rate against the arm's previous
// lease: a growing rate means the arm is diverging inside its lease
// (stalling), a clearly shrinking one means it is converging.
func rateHealth(rate float64, last *float64, has *bool) armHealth {
	defer func() { *last, *has = rate, true }()
	if !*has {
		return healthSteady
	}
	switch {
	case rate > *last*1.25:
		return healthStalling
	case rate < *last*0.80:
		return healthConverging
	default:
		return healthSteady
	}
}

// kbArm runs Knuth–Bendix completion on one persistent System. Rules are
// re-charged by Complete at the top of every call, so the lease's rules
// cap reads cumulatively; sweeps are charged per call, so the rounds cap
// is a per-lease sweep allowance (sweeps, unlike rules, are never
// re-done: the System keeps its progress between leases). A confluent
// system that decides the goal wins Implied; a confluent system that
// refutes it retires the arm with the definitive GoalRefuted flag.
func kbArm(sys *rewrite.System, opt Options, res *Result, scale int) *arm {
	a := &arm{
		name:  "kb",
		meter: budget.Rules,
		// The opening rules grant is proportional to the seeded system:
		// Complete re-charges the current rules at the top of every call,
		// and a completion that converges typically adds a fraction of the
		// seed before simplification shrinks it back.
		cur: budget.Limits{Rules: 2*len(sys.Rules) + 32*scale, Rounds: 6 * scale},
		max: armCeilings(opt.Completion.Governor, rewrite.DefaultLimits),
	}
	var lastRate float64
	var hasRate bool
	a.run = func(g *budget.Governor) (leaseResult, error) {
		before := len(sys.Rules)
		cres, err := sys.Complete(rewrite.CompletionOptions{Governor: g, Sink: opt.Sink})
		if err != nil {
			return leaseResult{}, err
		}
		if cres.Confluent {
			decided, err := sys.DecideGoal()
			if err != nil {
				return leaseResult{}, err
			}
			if decided {
				return leaseResult{win: Implied, verdict: "implied"}, nil
			}
			res.GoalRefuted = true
			return leaseResult{done: true, note: "refuted", verdict: "goal-refuted"}, nil
		}
		sweeps := cres.Iterations
		if sweeps < 1 {
			sweeps = 1
		}
		rate := float64(len(sys.Rules)-before) / float64(sweeps)
		return leaseResult{
			health:  rateHealth(rate, &lastRate, &hasRate),
			verdict: "diverged",
			outcome: cres.Budget,
		}, nil
	}
	return a
}

// chaseArm runs the TD chase with warm-state carry: each lease resumes
// the previous lease's snapshot when the budget-class rule allows, so the
// arm's meters stay cumulative without re-doing rounds. Tracing or
// history options make snapshots ineligible, in which case every lease
// re-runs cold under the bigger cumulative cap — same verdicts, more
// wall-clock.
func chaseArm(deps []*td.TD, d0 *td.TD, opt Options, res *Result, scale int) *arm {
	a := &arm{
		name:  "chase",
		meter: budget.Rounds,
		cur:   budget.Limits{Rounds: 2 * scale, Tuples: 8192 * scale},
		max:   armCeilings(opt.Chase.Governor, chase.DefaultLimits),
	}
	carry := opt.Chase.WarmState
	// A carried state is only reusable under a lease whose budget class
	// strictly dominates the one it stopped under; grow the opening grant
	// until it does (or the ceiling makes warm reuse impossible, in which
	// case the first lease falls back to a cold run).
	for carry != nil && !carry.ReusableUnder(a.cur) {
		grew := false
		for _, r := range []budget.Resource{budget.Rounds, budget.Tuples} {
			v := a.cur.Of(r)
			if m := a.max.Of(r); m <= 0 || v < m {
				nv := v * 2
				if m := a.max.Of(r); m > 0 && nv > m {
					nv = m
				}
				a.cur = a.cur.With(r, nv)
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	var prevRounds, prevTuples int
	var lastRate float64
	var hasRate bool
	a.run = func(g *budget.Governor) (leaseResult, error) {
		co := opt.Chase
		co.Governor = g
		co.Workers = opt.Workers
		co.Sink = opt.Sink
		co.WarmState = carry
		co.CaptureState = true
		cres, err := chase.Implies(deps, d0, co)
		if err != nil {
			return leaseResult{}, err
		}
		res.Chase = &cres
		if cres.State != nil {
			carry = cres.State
		}
		switch cres.Verdict {
		case chase.Implied:
			return leaseResult{win: Implied, verdict: "implied"}, nil
		case chase.NotImplied:
			res.Counterexample = cres.Instance
			return leaseResult{win: FiniteCounterexample, verdict: "not-implied"}, nil
		}
		dr := cres.Stats.Rounds - prevRounds
		dt := cres.Stats.TuplesAdded - prevTuples
		prevRounds, prevTuples = cres.Stats.Rounds, cres.Stats.TuplesAdded
		if dr < 1 {
			dr = 1
		}
		rate := float64(dt) / float64(dr)
		return leaseResult{
			health:  rateHealth(rate, &lastRate, &hasRate),
			verdict: "unknown",
			outcome: cres.Budget,
		}, nil
	}
	return a
}

// eidArm runs the EID-chase on the same instance. The engine cannot
// snapshot, so every lease re-runs from scratch under the grown
// cumulative caps; its per-lease delta statistics still measure only the
// new rounds, because the re-done prefix reproduces the previous lease's
// totals exactly.
func eidArm(deps []*td.TD, d0 *td.TD, opt Options, res *Result, scale int) *arm {
	edeps := make([]*eid.EID, len(deps))
	for i, d := range deps {
		edeps[i] = eid.FromTD(d)
	}
	egoal := eid.FromTD(d0)
	a := &arm{
		name:  "eid",
		meter: budget.Rounds,
		cur:   budget.Limits{Rounds: 2 * scale, Tuples: 8192 * scale},
		max:   armCeilings(opt.EID.Governor, eid.DefaultLimits),
	}
	var prevRounds, prevTuples int
	var lastRate float64
	var hasRate bool
	a.run = func(g *budget.Governor) (leaseResult, error) {
		eres, err := eid.Implies(edeps, egoal, eid.Options{Governor: g})
		if err != nil {
			return leaseResult{}, err
		}
		switch eres.Verdict {
		case eid.Implied:
			return leaseResult{win: Implied, verdict: "implied"}, nil
		case eid.NotImplied:
			res.Counterexample = eres.Instance
			return leaseResult{win: FiniteCounterexample, verdict: "not-implied"}, nil
		}
		dr := eres.Rounds - prevRounds
		dt := eres.TuplesAdded - prevTuples
		prevRounds, prevTuples = eres.Rounds, eres.TuplesAdded
		if dr < 1 {
			dr = 1
		}
		rate := float64(dt) / float64(dr)
		return leaseResult{
			health:  rateHealth(rate, &lastRate, &hasRate),
			verdict: "unknown",
			outcome: eres.Budget,
		}, nil
	}
	return a
}

// modelSearchArm runs the finite counter-model search over a growing
// order window: each covered window advances Hi by one (structural
// progress, so the arm reports converging), and covering the caller's
// whole window retires the arm. Node exhaustion inside a window counts as
// stalling. Workers is pinned to 1: a parallel search stopped by a budget
// commits a scheduling-dependent node count, which would leak
// nondeterminism into the reallocation sequence.
func modelSearchArm(p *words.Presentation, in *reduction.Instance, opt Options, res *Result, scale int) *arm {
	window := opt.ModelSearch.Orders
	if window.Lo < 2 {
		window.Lo = 2
	}
	if window.Hi < window.Lo {
		window.Hi = search.DefaultOrders.Hi
	}
	a := &arm{
		name:  "model-search",
		meter: budget.Nodes,
		cur:   budget.Limits{Nodes: 2048 * scale},
		max:   armCeilings(opt.ModelSearch.Governor, search.DefaultLimits),
	}
	curHi := window.Lo
	a.run = func(g *budget.Governor) (leaseResult, error) {
		so := opt.ModelSearch
		so.Governor = g
		so.Workers = 1
		so.Sink = opt.Sink
		so.Orders = budget.Range{Lo: window.Lo, Hi: curHi}
		sres, err := search.FindCounterModel(p, so)
		if err != nil {
			return leaseResult{}, err
		}
		if sres.Interpretation != nil {
			cm, err := in.BuildCounterModel(sres.Interpretation)
			if err != nil {
				return leaseResult{}, err
			}
			if err := in.Verify(cm); err != nil {
				return leaseResult{}, fmt.Errorf("counter-model failed verification: %w", err)
			}
			res.Witness = sres.Interpretation
			res.CounterModel = cm
			return leaseResult{win: FiniteCounterexample, verdict: sres.Status()}, nil
		}
		if !sres.Budget.Stopped() {
			if curHi >= window.Hi {
				return leaseResult{done: true, note: "covered", verdict: sres.Status()}, nil
			}
			curHi++
			return leaseResult{health: healthConverging, verdict: sres.Status()}, nil
		}
		return leaseResult{health: healthStalling, verdict: sres.Status(), outcome: sres.Budget}, nil
	}
	return a
}

// finiteDBArm runs the finite-database enumerator over a growing size
// window, with the same window mechanics and Workers = 1 pinning as the
// model search.
func finiteDBArm(deps []*td.TD, d0 *td.TD, opt Options, res *Result, scale int) *arm {
	window := opt.FiniteDB.Sizes
	if window.Lo < 1 {
		window.Lo = 1
	}
	if window.Hi < window.Lo {
		window.Hi = finitemodel.DefaultSizes.Hi
	}
	a := &arm{
		name:  "finite-db",
		meter: budget.Nodes,
		cur:   budget.Limits{Nodes: 2048 * scale},
		max:   armCeilings(opt.FiniteDB.Governor, finitemodel.DefaultLimits),
	}
	curHi := window.Lo
	a.run = func(g *budget.Governor) (leaseResult, error) {
		fo := opt.FiniteDB
		fo.Governor = g
		fo.Workers = 1
		fo.Sink = opt.Sink
		fo.Sizes = budget.Range{Lo: window.Lo, Hi: curHi}
		fres, err := finitemodel.FindCounterexample(deps, d0, fo)
		if err != nil {
			return leaseResult{}, err
		}
		if fres.Instance != nil {
			res.Counterexample = fres.Instance
			return leaseResult{win: FiniteCounterexample, verdict: fres.Status()}, nil
		}
		if !fres.Budget.Stopped() {
			if curHi >= window.Hi {
				return leaseResult{done: true, note: "covered", verdict: fres.Status()}, nil
			}
			curHi++
			return leaseResult{health: healthConverging, verdict: fres.Status()}, nil
		}
		return leaseResult{health: healthStalling, verdict: fres.Status(), outcome: fres.Budget}, nil
	}
	return a
}

// scaleOf resolves Options.TickScale.
func scaleOf(opt Options) int {
	if opt.TickScale > 0 {
		return opt.TickScale
	}
	return 1
}

// AnalyzePresentation runs the presentation-level portfolio: Knuth–Bendix
// completion, the finite counter-model search, and both chases on the
// reduction's (D, D0), in that fixed scheduling order. Completion leads
// because a confluent system settles the word problem in one decision
// procedure call — the cheapest possible win when it exists — and the
// moment it completes, every other arm is retired in the same tick.
func AnalyzePresentation(p *words.Presentation, opt Options) (*Result, error) {
	in, err := reduction.Build(p)
	if err != nil {
		return nil, err
	}
	res := &Result{Instance: in}
	// A structural kb retirement carried in from a previous run keeps its
	// definitive meaning even though the arm will not run again.
	if opt.Memory != nil {
		if m, ok := opt.Memory.Arms["kb"]; ok && m.Done && m.Note == "refuted" {
			res.GoalRefuted = true
		}
	}
	scale := scaleOf(opt)
	arms := []*arm{
		kbArm(rewrite.FromPresentation(in.Pres), opt, res, scale),
		modelSearchArm(p, in, opt, res, scale),
		chaseArm(in.D, in.D0, opt, res, scale),
		eidArm(in.D, in.D0, opt, res, scale),
	}
	out, err := run(arms, opt, res)
	if err == nil && opt.Certify {
		certify(out, cert.PresentationProblem(p), in.D, in.D0)
	}
	return out, err
}

// Infer runs the TD-level portfolio: the chase, the finite-database
// enumerator, and the EID chase, in that fixed scheduling order. The
// chase leads because it is the only arm that can certify Implied with a
// proof trace and the only one that can snapshot across leases.
func Infer(deps []*td.TD, d0 *td.TD, opt Options) (*Result, error) {
	res := &Result{}
	scale := scaleOf(opt)
	arms := []*arm{
		chaseArm(deps, d0, opt, res, scale),
		finiteDBArm(deps, d0, opt, res, scale),
		eidArm(deps, d0, opt, res, scale),
	}
	out, err := run(arms, opt, res)
	if err == nil && opt.Certify {
		certify(out, cert.TDProblem(d0.Schema(), deps, d0), deps, d0)
	}
	return out, err
}

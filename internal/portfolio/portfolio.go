// Package portfolio runs every engine in the repository as one adaptive
// portfolio under a single parent budget, reallocating meter headroom
// between the arms as live progress signals come in.
//
// The static front-ends in core treat the engines as fixed-budget arms: the
// race gives each arm its whole budget up front, iterative deepening grows
// every budget by the same schedule whether the arm is converging or
// thrashing. This package replaces both with a governed portfolio:
//
//   - every arm (Knuth–Bendix completion, finite counter-model search, the
//     TD chase, the EID chase, the finite-database enumerator) holds a
//     cumulative budget LEASE — a child governor of the parent pool capping
//     the arm's dominant meter;
//   - a scheduler ticks through the arms, and at each tick decides, from
//     each arm's own progress signals, whether to feed the arm (grow its
//     lease fast), grow it steadily, or starve it (withhold growth and
//     re-probe later);
//   - the first definitive verdict retires every other arm immediately,
//     and a KB completion that decides the goal ends the run in the same
//     tick it completes in;
//   - every decision — grants, withheld grants, retirements — is emitted
//     as a typed portfolio_realloc observability event carrying the arm,
//     the meter, the old and new cumulative grant, and the driving signal,
//     so a trace replays the full reallocation history.
//
// # Scheduling model and determinism
//
// Arms run on ONE goroutine, time-sliced in a fixed order, one lease per
// live arm per tick. Nothing in the reallocation policy reads the clock, a
// channel, or scheduler state: each arm's health is computed from its own
// meters (tuples-per-round delta rate for the chases, rules-per-sweep rate
// for completion, window coverage for the backtracking searches), so the
// whole decision sequence — and therefore the whole trace — is a pure
// function of the input and the options. Re-running with the same options
// yields a byte-identical trace for any Workers value: the chase arm's
// merge-phase emission is deterministic under Workers > 1, and the two
// backtracking-search arms are pinned to Workers = 1 inside the portfolio
// because a parallel search stopped by a budget is the one engine run in
// the repository whose committed-node count is scheduling-dependent.
//
// # Lease mechanics
//
// Grants are CUMULATIVE caps, not increments. Arms that cannot snapshot
// (eid, the searches) re-run from scratch under the bigger cap, re-doing
// their prefix; the chase arm resumes from its captured State (the warm
// replay re-charges the prefix, so its meters still read cumulatively) and
// Knuth–Bendix keeps one System whose rules are re-charged at the top of
// every completion call. The parent pool is settled with the per-lease
// DELTA of each meter — the pool meters logical frontier progress, not
// re-done prefix work — and when the parent caps a meter, Remaining
// headroom clamps every grant, so the portfolio never promises an arm more
// than the pool has left.
//
// # Completeness
//
// Starved arms are not killed: every fourth tick a starved arm gets a
// probe lease at an aggressively grown grant, so on instances where the
// early signals mislead, the portfolio still deepens every arm
// geometrically and remains complete in the limit on both of the Main
// Theorem's sets. An arm retires only for a structural reason (completion
// refuted the goal, a search covered its whole window) or when its lease
// already sits at the arm's hard ceiling and still exhausts.
package portfolio

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/eid"
	"templatedep/internal/finitemodel"
	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/rewrite"
	"templatedep/internal/search"
	"templatedep/internal/semigroup"
)

// Verdict is the three-valued outcome of a portfolio run. The values and
// strings mirror core.Verdict so front-ends can map between the two
// layers by name.
type Verdict int

const (
	// Unknown means every arm retired or the parent budget stopped the
	// run before any arm produced a definitive answer.
	Unknown Verdict = iota
	// Implied means D logically implies D0 (won by the chase, the EID
	// chase, or a confluent completion that decides the goal).
	Implied
	// FiniteCounterexample means a finite database satisfies D and
	// violates D0 (won by a chase fixpoint, the finite-database
	// enumerator, or a verified finite counter-model).
	FiniteCounterexample
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case FiniteCounterexample:
		return "finite-counterexample"
	default:
		return "unknown"
	}
}

// Scheduling constants. They are part of the determinism contract: the
// reallocation sequence depends only on these and on the arms' meters.
const (
	// DefaultMaxTicks caps scheduler passes when no arm answers and no
	// arm manages to retire — far above what geometric lease growth needs
	// to reach every arm's ceiling.
	DefaultMaxTicks = 64
	// stallThreshold is the hysteresis: an arm is starved only after this
	// many consecutive stalling leases, so one noisy lease cannot starve
	// a converging arm.
	stallThreshold = 2
	// probeEvery is the starvation re-probe period: a starved arm skips
	// probeEvery-1 ticks (each skip recorded as a withheld grant), then
	// runs a probe lease at the fed growth factor.
	probeEvery = 4
	// growSteady and growFed are the lease growth factors for healthy and
	// converging arms.
	growSteady = 2
	growFed    = 4
)

// Options configures a portfolio run. The zero value runs every arm under
// its engine's default ceilings with no parent pool.
type Options struct {
	// Governor is the parent pool: its context cancels the whole
	// portfolio at the next lease boundary, and any meter it caps becomes
	// a shared pool whose Remaining headroom clamps every arm's grants.
	// Nil resolves to an unlimited background governor.
	Governor *budget.Governor
	// Sink receives the portfolio's own events (arm_start / arm_result
	// per lease, portfolio_realloc per decision, cancelled, verdict, all
	// with Src "portfolio") and is threaded into each arm engine that
	// accepts a sink. Nil disables emission.
	Sink obs.Sink
	// Workers parallelizes the chase arm (merge-phase emission stays
	// deterministic). The two backtracking-search arms always run with
	// Workers = 1 — their committed-node counts under a budget stop are
	// the one scheduling-dependent statistic in the repository, and the
	// portfolio's reallocation policy feeds on exact meter readings.
	Workers int
	// TickScale multiplies every arm's opening grants; <= 0 means 1.
	// Verdicts are invariant under TickScale (leases grow geometrically
	// either way); traces are not, since lease boundaries move.
	TickScale int
	// MaxTicks caps scheduler passes; <= 0 means DefaultMaxTicks.
	MaxTicks int
	// Memory seeds the arms with allocations learned by a previous run
	// (see Result.Memory); nil starts cold.
	Memory *Memory
	// Certify makes a definitive verdict carry a serializable certificate
	// (Result.Cert): native proof objects (a validated chase trace, the
	// verified counter-model) serialize directly, and Implied wins from
	// arms without one (kb, eid, an untraced chase lease) are certified by
	// a deterministic traced chase replay. Off by default — the replay
	// costs one extra chase run on some wins.
	Certify bool

	// Per-engine options. Governors inside them contribute their meter
	// limits as the arm's hard ceilings (engine defaults otherwise); the
	// portfolio replaces the governor itself with per-lease children and
	// overrides Sink and Workers per the portfolio contract.
	Chase       chase.Options
	EID         eid.Options
	ModelSearch search.Options
	FiniteDB    finitemodel.Options
	Completion  rewrite.CompletionOptions
}

// Decision is one reallocation decision, mirrored 1:1 by a
// portfolio_realloc event on the sink.
type Decision struct {
	// Tick is the scheduler pass the decision was taken in.
	Tick int
	// Arm names the arm: "kb", "model-search", "chase", "eid",
	// "finite-db".
	Arm string
	// Meter is the resource whose cumulative grant the decision changes.
	Meter budget.Resource
	// Old and New are the cumulative grant before and after. New == Old
	// records a withheld grant (a starved arm skipping a tick); New == 0
	// records retirement.
	Old, New int
	// Signal is what drove the decision: "seed", "steady", "fed",
	// "stalled", "probe", "capped", or a retirement reason ("confluent",
	// "refuted", "covered", "exhausted", "preempted").
	Signal string
}

// ArmReport summarizes one arm's run.
type ArmReport struct {
	// Name is the arm name as used in events and decisions.
	Name string
	// Leases is how many leases the arm ran.
	Leases int
	// Grants holds the final cumulative caps of the arm's lease.
	Grants budget.Limits
	// Used holds the arm's settled logical meter usage.
	Used budget.Limits
	// Done reports the arm retired before the run ended; Note is the
	// retirement reason.
	Done bool
	Note string
	// Starved reports the arm was starved when the run ended.
	Starved bool
}

// Memory carries allocations learned by one portfolio run into the next —
// iterative deepening threads it through rounds so a re-run does not
// re-learn that (say) the chase needs tuples much faster than rounds.
type Memory struct {
	Arms map[string]ArmMemory
}

// ArmMemory is one arm's learned state.
type ArmMemory struct {
	// Grants are the cumulative caps the arm had reached.
	Grants budget.Limits
	// Stall and Starved carry the health hysteresis.
	Stall   int
	Starved bool
	// Done with a structural Note ("refuted", "covered") keeps the arm
	// retired in the next run; budget-relative notes ("exhausted") do
	// not, since the next run may hold a bigger pool.
	Done bool
	Note string
}

// Result reports a portfolio run.
type Result struct {
	Verdict Verdict
	// Winner names the arm that produced the verdict; "" for Unknown.
	Winner string
	// GoalRefuted reports that Knuth–Bendix completion became confluent
	// and decided the word problem negatively: derivability of A0 = 0 is
	// definitively refuted, which rules out certifying implication via
	// Reduction Theorem (A) but does NOT settle the TD question (the gap
	// instances live exactly there). Presentation runs only.
	GoalRefuted bool
	// Instance is the reduction's (D, D0); presentation runs only.
	Instance *reduction.Instance
	// Chase is the chase arm's final lease (its trace is the proof when
	// the chase won; its State warm-starts a later run).
	Chase *chase.Result
	// Counterexample is the finite database violating D0, when an arm
	// found one.
	Counterexample *relation.Instance
	// Witness and CounterModel certify a model-search win.
	Witness      *semigroup.Interpretation
	CounterModel *reduction.CounterModel
	// Ticks is the number of scheduler passes run.
	Ticks int
	// Decisions is the full reallocation decision sequence, mirrored 1:1
	// by the portfolio_realloc events on the sink.
	Decisions []Decision
	// Arms reports every arm in scheduling order.
	Arms []ArmReport
	// Stop reports how the parent budget cut the run short; zero when
	// the run ended by verdict or by every arm retiring.
	Stop budget.Outcome
	// Memory is the learned allocation state, ready to seed a re-run.
	Memory *Memory

	cert *cert.Certificate
}

// Cert returns the run's serializable certificate: non-nil for definitive
// verdicts of runs with Options.Certify set whose winning verdict could be
// certified (see the Certify doc), nil otherwise.
func (r *Result) Cert() *cert.Certificate { return r.cert }

// armHealth is an arm's self-reported progress classification for one
// lease, computed from the arm's own meters only.
type armHealth int

const (
	healthSteady armHealth = iota
	// healthConverging: the arm's work-per-step rate is shrinking (chase
	// delta shrinking, completion adding fewer rules per sweep) or the
	// arm made structural progress (a search covered its window) — feed
	// it.
	healthConverging
	// healthStalling: the rate is growing — the arm is diverging within
	// its lease; two in a row starve it.
	healthStalling
)

// leaseResult is what one arm lease reports back to the scheduler.
type leaseResult struct {
	// win, when not Unknown, is the definitive verdict; the arm has
	// already written its certificates into the shared Result.
	win Verdict
	// done retires the arm for the structural reason in note.
	done bool
	note string
	// health drives the next reallocation decision for this arm.
	health armHealth
	// verdict is the arm_result event's verdict string.
	verdict string
	// outcome is how the lease's governor stopped it.
	outcome budget.Outcome
}

// arm is one portfolio member: a name, a dominant meter, the cumulative
// lease caps, hard ceilings, and a closure running one lease.
type arm struct {
	name  string
	meter budget.Resource
	// cur holds the cumulative caps of the next lease; max holds the hard
	// ceilings (0 = uncapped).
	cur, max budget.Limits
	// run executes one lease under g; g's limits are a.cur.
	run func(g *budget.Governor) (leaseResult, error)

	done    bool
	note    string
	stall   int
	starved bool
	skip    int
	leases  int
	health  armHealth
	settled budget.Limits
	lastOut budget.Outcome
}

// clampSeed clamps every capped meter of l to the arm ceiling and the
// parent pool headroom, flooring at 1 so a clamp never turns a cap into
// "uncapped".
func (a *arm) clampSeed(parent *budget.Governor) {
	for _, r := range budget.Resources() {
		v := a.cur.Of(r)
		if v <= 0 {
			continue
		}
		if m := a.max.Of(r); m > 0 && v > m {
			v = m
		}
		if rem, ok := parent.Remaining(r); ok && v > rem {
			v = rem
		}
		if v < 1 {
			v = 1
		}
		a.cur = a.cur.With(r, v)
	}
}

// grown returns a.cur with every capped meter multiplied by mult, clamped
// to the arm ceiling and to settled-plus-pool-headroom, never shrinking.
func (a *arm) grown(parent *budget.Governor, mult int) budget.Limits {
	l := a.cur
	for _, r := range budget.Resources() {
		v := a.cur.Of(r)
		if v <= 0 {
			continue
		}
		nv := v * mult
		if m := a.max.Of(r); m > 0 && nv > m {
			nv = m
		}
		if rem, ok := parent.Remaining(r); ok {
			if ceil := a.settled.Of(r) + rem; nv > ceil {
				nv = ceil
			}
		}
		if nv < v {
			nv = v
		}
		l = l.With(r, nv)
	}
	return l
}

// adopt seeds the arm from a previous run's memory: grants merge upward
// (never below this run's opening grants), hysteresis carries over, and a
// structural retirement stays retired.
func (a *arm) adopt(mem *Memory) {
	if mem == nil {
		return
	}
	m, ok := mem.Arms[a.name]
	if !ok {
		return
	}
	for _, r := range budget.Resources() {
		if v := m.Grants.Of(r); v > a.cur.Of(r) && a.cur.Of(r) > 0 {
			a.cur = a.cur.With(r, v)
		}
	}
	a.stall = m.Stall
	a.starved = m.Starved
	if m.Done && (m.Note == "refuted" || m.Note == "covered") {
		a.done, a.note = true, m.Note
	}
}

// run is the portfolio scheduler: a sequential, deterministic time-slicer
// over the arms. res arrives with mode-specific fields (Instance) already
// set; the arms write their certificates into it through closures.
func run(arms []*arm, opt Options, res *Result) (*Result, error) {
	parent := budget.Resolve(opt.Governor, budget.Limits{})
	maxTicks := opt.MaxTicks
	if maxTicks <= 0 {
		maxTicks = DefaultMaxTicks
	}
	emit := func(e obs.Event) {
		if opt.Sink != nil {
			e.Src = "portfolio"
			opt.Sink.Event(e)
		}
	}
	decide := func(tick int, a *arm, meter budget.Resource, old, now int, signal string) {
		res.Decisions = append(res.Decisions, Decision{Tick: tick, Arm: a.name, Meter: meter, Old: old, New: now, Signal: signal})
		emit(obs.Event{Type: obs.EvPortfolioRealloc, Arm: a.name, Resource: meter.String(),
			Old: old, New: now, Signal: signal, Round: tick})
	}
	retire := func(tick int, a *arm, note string) {
		a.done, a.note = true, note
		decide(tick, a, a.meter, a.cur.Of(a.meter), 0, note)
	}
	finish := func(tick int) (*Result, error) {
		res.Ticks = tick
		res.Memory = &Memory{Arms: make(map[string]ArmMemory, len(arms))}
		for _, a := range arms {
			res.Arms = append(res.Arms, ArmReport{Name: a.name, Leases: a.leases,
				Grants: a.cur, Used: a.settled, Done: a.done, Note: a.note, Starved: a.starved})
			res.Memory.Arms[a.name] = ArmMemory{Grants: a.cur, Stall: a.stall,
				Starved: a.starved, Done: a.done, Note: a.note}
		}
		emit(obs.Event{Type: obs.EvVerdict, Verdict: res.Verdict.String(), Round: tick})
		return res, nil
	}
	interrupted := func(tick int, o budget.Outcome) (*Result, error) {
		res.Stop = o
		emit(obs.Event{Type: obs.EvCancelled, Resource: o.Reason(), Round: tick})
		return finish(tick)
	}

	for _, a := range arms {
		a.adopt(opt.Memory)
		a.clampSeed(parent)
	}

	tick := 0
	for tick < maxTicks {
		tick++
		live := 0
		for _, a := range arms {
			if !a.done {
				live++
			}
		}
		if live == 0 {
			tick--
			break
		}
		for _, a := range arms {
			if a.done {
				continue
			}
			if o := parent.Interrupted(); o.Stopped() {
				return interrupted(tick, o)
			}

			// Retirement check first: if the last lease exhausted a meter
			// that cannot grow even at the fed factor, no future lease can
			// do better — the arm is at its ceiling (or the pool is dry).
			if a.leases > 0 && a.lastOut.Code == budget.CodeExhausted {
				r := a.lastOut.Resource
				if a.grown(parent, growFed).Of(r) == a.cur.Of(r) {
					retire(tick, a, "exhausted")
					continue
				}
			}

			// Reallocation decision.
			var signal string
			mult := 1
			switch {
			case a.leases == 0:
				signal = "seed"
			case a.starved:
				if a.skip < probeEvery-1 {
					a.skip++
					decide(tick, a, a.meter, a.cur.Of(a.meter), a.cur.Of(a.meter), "stalled")
					continue
				}
				a.skip = 0
				signal, mult = "probe", growFed
			case a.health == healthConverging:
				signal, mult = "fed", growFed
			default:
				signal, mult = "steady", growSteady
			}
			next := a.cur
			if mult > 1 {
				next = a.grown(parent, mult)
				if next.Of(a.meter) == a.cur.Of(a.meter) {
					signal = "capped"
				}
			}
			decide(tick, a, a.meter, a.cur.Of(a.meter), next.Of(a.meter), signal)
			for _, r := range budget.Resources() {
				if r != a.meter && next.Of(r) != a.cur.Of(r) {
					decide(tick, a, r, a.cur.Of(r), next.Of(r), signal)
				}
			}
			a.cur = next

			// Run the lease.
			child := parent.Child(a.cur)
			emit(obs.Event{Type: obs.EvArmStart, Arm: a.name, Round: tick})
			lr, err := a.run(child)
			if err != nil {
				return nil, fmt.Errorf("portfolio: %s arm: %w", a.name, err)
			}
			a.leases++
			a.lastOut = lr.outcome
			a.health = lr.health
			for _, r := range budget.Resources() {
				u := child.Used(r)
				if d := u - a.settled.Of(r); d > 0 {
					parent.Add(r, d)
					a.settled = a.settled.With(r, u)
				}
			}
			emit(obs.Event{Type: obs.EvArmResult, Arm: a.name, Verdict: lr.verdict, Round: tick})

			if lr.win != Unknown {
				res.Verdict = lr.win
				res.Winner = a.name
				a.done, a.note = true, "won"
				for _, o := range arms {
					if !o.done {
						retire(tick, o, "preempted")
					}
				}
				return finish(tick)
			}
			if lr.done {
				retire(tick, a, lr.note)
				continue
			}
			switch lr.health {
			case healthConverging, healthSteady:
				a.stall, a.starved = 0, false
			case healthStalling:
				a.stall++
				if a.stall >= stallThreshold {
					a.starved = true
				}
			}
			if lr.outcome.Code == budget.CodeCancelled || lr.outcome.Code == budget.CodeDeadline {
				return interrupted(tick, lr.outcome)
			}
		}
	}
	if tick == maxTicks {
		for _, a := range arms {
			if !a.done {
				res.Stop = budget.Exhausted(budget.Rounds)
				emit(obs.Event{Type: obs.EvBudgetExhausted, Resource: budget.Rounds.String(), Round: tick})
				break
			}
		}
	}
	res.Verdict = Unknown
	return finish(tick)
}

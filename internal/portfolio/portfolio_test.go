package portfolio

import (
	"bytes"
	"encoding/json"
	"testing"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

func mustPreset(t *testing.T, name string) *words.Presentation {
	t.Helper()
	p, err := words.Preset(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func analyze(t *testing.T, name string, opt Options) *Result {
	t.Helper()
	res, err := AnalyzePresentation(mustPreset(t, name), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// tight returns arm ceilings small enough to run the gap preset in test
// time. Gap's chase instance roughly squares per round, and the engines
// only consult their meters at coarse checkpoints — a tuple ceiling under
// the round-five blow-up keeps every lease short, the same reason the CLI
// smoke runs gap under a deadline. Every arm still runs several leases,
// stalls, and retires, which is exactly what the gap tests exercise.
func tight() Options {
	opt := Options{}
	opt.Chase.Governor = budget.New(nil, budget.Limits{Rounds: 16, Tuples: 1500})
	opt.EID.Governor = budget.New(nil, budget.Limits{Rounds: 16, Tuples: 1500})
	opt.ModelSearch.Governor = budget.New(nil, budget.Limits{Nodes: 50000})
	return opt
}

func TestAnalyzeVerdicts(t *testing.T) {
	for _, tc := range []struct {
		preset string
		want   Verdict
	}{
		{"twostep", Implied},
		{"chain:3", Implied},
		{"power", FiniteCounterexample},
		{"collapse:4", Implied},
		{"gap", Unknown},
	} {
		opt := Options{}
		if tc.preset == "gap" {
			opt = tight()
		}
		res := analyze(t, tc.preset, opt)
		if res.Verdict != tc.want {
			t.Errorf("%s: verdict %v (winner %q), want %v", tc.preset, res.Verdict, res.Winner, tc.want)
		}
		if res.Verdict != Unknown && res.Winner == "" {
			t.Errorf("%s: definitive verdict with no winner", tc.preset)
		}
	}
}

func TestAnalyzeCertificates(t *testing.T) {
	res := analyze(t, "power", Options{})
	if res.Verdict != FiniteCounterexample {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Winner != "model-search" {
		t.Errorf("winner %q, want model-search", res.Winner)
	}
	if res.Witness == nil || res.CounterModel == nil {
		t.Error("missing counter-model certificates")
	}
	if !res.GoalRefuted {
		t.Error("power's goal is finitely refutable; want GoalRefuted")
	}
}

func TestGapRefutedButUnknown(t *testing.T) {
	res := analyze(t, "gap", tight())
	if res.Verdict != Unknown {
		t.Fatalf("gap must stay Unknown, got %v (winner %q)", res.Verdict, res.Winner)
	}
	if !res.GoalRefuted {
		t.Error("completion refutes gap's goal; want GoalRefuted")
	}
	if res.Stop.Stopped() {
		t.Errorf("every arm retires on its own; want zero Stop, got %v", res.Stop)
	}
	for _, a := range res.Arms {
		if !a.Done {
			t.Errorf("arm %s not retired at end of run", a.Name)
		}
	}
}

// A Knuth–Bendix win must end the run in the tick it happens in: no other
// arm gets a lease, and each is retired with a preempted decision in the
// same tick.
func TestKBWinPreemptsInSameTick(t *testing.T) {
	res := analyze(t, "collapse:4", Options{})
	if res.Verdict != Implied || res.Winner != "kb" {
		t.Fatalf("want kb to win Implied, got %v winner %q", res.Verdict, res.Winner)
	}
	if res.Ticks != 1 {
		t.Errorf("kb completes in its first lease; want 1 tick, got %d", res.Ticks)
	}
	preempted := map[string]bool{}
	for _, d := range res.Decisions {
		if d.Signal == "preempted" {
			if d.Tick != res.Ticks {
				t.Errorf("preemption of %s at tick %d, want %d", d.Arm, d.Tick, res.Ticks)
			}
			if d.New != 0 {
				t.Errorf("preemption of %s with New %d, want 0", d.Arm, d.New)
			}
			preempted[d.Arm] = true
		}
	}
	for _, a := range res.Arms {
		if a.Name == "kb" {
			continue
		}
		if a.Leases != 0 {
			t.Errorf("arm %s ran %d leases after a tick-1 kb win", a.Name, a.Leases)
		}
		if !preempted[a.Name] {
			t.Errorf("arm %s has no preempted decision", a.Name)
		}
	}
}

func traceOf(t *testing.T, name string, opt Options) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	opt.Sink = sink
	res, err := AnalyzePresentation(mustPreset(t, name), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// The whole portfolio trace — every engine event and every reallocation
// decision — must be byte-identical across re-runs and across Workers
// values. This is the determinism contract that makes portfolio traces
// replayable evidence.
func TestTraceDeterminism(t *testing.T) {
	for _, preset := range []string{"power", "gap"} {
		base := Options{}
		if preset == "gap" {
			base = tight()
		}
		o1 := base
		o1.Workers = 1
		res1, trace1 := traceOf(t, preset, o1)
		res2, trace2 := traceOf(t, preset, o1)
		if !bytes.Equal(trace1, trace2) {
			t.Errorf("%s: re-run trace differs", preset)
		}
		if res1.Verdict != res2.Verdict || len(res1.Decisions) != len(res2.Decisions) {
			t.Errorf("%s: re-run results differ", preset)
		}
		o4 := base
		o4.Workers = 4
		res4, trace4 := traceOf(t, preset, o4)
		if !bytes.Equal(trace1, trace4) {
			t.Errorf("%s: Workers=4 trace differs from Workers=1", preset)
		}
		if res1.Verdict != res4.Verdict {
			t.Errorf("%s: Workers=4 verdict differs", preset)
		}
	}
}

// Verdicts are invariant under the tick scale: moving the lease boundaries
// changes the trace but never the answer.
func TestVerdictInvariantUnderTickScale(t *testing.T) {
	for _, preset := range []string{"twostep", "power", "chain:3"} {
		var want Verdict
		for i, scale := range []int{1, 2, 3} {
			res := analyze(t, preset, Options{TickScale: scale})
			if i == 0 {
				want = res.Verdict
				continue
			}
			if res.Verdict != want {
				t.Errorf("%s: TickScale %d verdict %v, want %v", preset, scale, res.Verdict, want)
			}
		}
	}
}

// Replaying a portfolio trace must reproduce the in-memory decision
// sequence exactly: one portfolio_realloc event per Decision, the same
// granted totals, and the same final verdict.
func TestTraceReplayMatchesDecisions(t *testing.T) {
	res, trace := traceOf(t, "gap", tight())
	tot, err := obs.Replay(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if tot.PortfolioReallocs != len(res.Decisions) {
		t.Errorf("replayed %d reallocs, result has %d decisions", tot.PortfolioReallocs, len(res.Decisions))
	}
	granted := map[string]int{}
	for _, d := range res.Decisions {
		if d.New > d.Old {
			granted[d.Meter.String()] += d.New - d.Old
		}
	}
	for meter, want := range granted {
		if tot.PortfolioGranted[meter] != want {
			t.Errorf("granted[%s] = %d replayed, %d decided", meter, tot.PortfolioGranted[meter], want)
		}
	}
	if got := tot.Verdicts["portfolio"]; got != res.Verdict.String() {
		t.Errorf("replayed verdict %q, want %q", got, res.Verdict)
	}
	// The counter vocabulary must agree with the decision sequence too:
	// feed the decoded trace through a CounterSink.
	c := obs.NewCounters()
	cs := obs.NewCounterSink(c)
	for _, line := range bytes.Split(bytes.TrimRight(trace, "\n"), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatal(err)
		}
		cs.Event(e)
	}
	if got := c.Get("portfolio.reallocs"); got != int64(len(res.Decisions)) {
		t.Errorf("counter portfolio.reallocs = %d, want %d", got, len(res.Decisions))
	}
}

// Starvation must not kill an arm: a starved arm keeps probing, so on an
// instance only that arm can settle, the portfolio still answers.
// Collapse's alphabet makes the counter-model search enumerate
// exponentially, so with completion capped below its confluence point the
// search arm stalls lease after lease — the canonical starvation victim.
func TestStarvedArmStillProbes(t *testing.T) {
	opt := Options{}
	opt.Completion.Governor = budget.New(nil, budget.Limits{Rules: 100, Rounds: 50})
	opt.Chase.Governor = budget.New(nil, budget.Limits{Rounds: 2, Tuples: 200})
	opt.EID.Governor = budget.New(nil, budget.Limits{Rounds: 2, Tuples: 200})
	opt.ModelSearch.Governor = budget.New(nil, budget.Limits{Nodes: 200000})
	opt.ModelSearch.Orders = budget.Range{Lo: 2, Hi: 2}
	res := analyze(t, "collapse:4", opt)
	withheld := 0
	probes := 0
	for _, d := range res.Decisions {
		switch d.Signal {
		case "stalled":
			withheld++
		case "probe":
			probes++
		}
	}
	if withheld == 0 {
		t.Error("collapse should starve the search arm at least once")
	}
	if withheld > 0 && probes == 0 {
		t.Error("starved arms must probe, never sleep forever")
	}
}

func TestInferTDLevel(t *testing.T) {
	_, fig1 := td.GarmentExample()
	res, err := Infer([]*td.TD{fig1}, fig1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied || res.Winner != "chase" {
		t.Errorf("self-implication: verdict %v winner %q", res.Verdict, res.Winner)
	}
	if res.Chase == nil {
		t.Error("missing chase result")
	}

	res, err = Infer(nil, fig1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != FiniteCounterexample {
		t.Errorf("empty-D: verdict %v", res.Verdict)
	}
	if res.Counterexample == nil {
		t.Error("missing counterexample")
	}
}

// Ceilings from the per-engine governors bound the portfolio: with every
// arm pinned to a tiny ceiling, the run retires everything and reports
// Unknown instead of burning the engines' defaults.
func TestArmCeilingsRespected(t *testing.T) {
	_, fig1 := td.GarmentExample()
	opt := Options{}
	opt.Chase.Governor = budget.New(nil, budget.Limits{Rounds: 1, Tuples: 2})
	opt.EID.Governor = budget.New(nil, budget.Limits{Rounds: 1, Tuples: 2})
	opt.FiniteDB.Governor = budget.New(nil, budget.Limits{Nodes: 5})
	opt.FiniteDB.Sizes = budget.Range{Lo: 1, Hi: 1}
	res, err := Infer([]*td.TD{fig1}, fig1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v under starvation ceilings", res.Verdict)
	}
	for _, d := range res.Decisions {
		if d.Arm == "chase" && d.Meter == budget.Rounds && d.New > 1 {
			t.Errorf("chase rounds grant %d exceeds ceiling 1", d.New)
		}
	}
}

// A parent pool meter clamps grants: no cumulative tuples grant may exceed
// the pool.
func TestParentPoolClampsGrants(t *testing.T) {
	const pool = 20000
	opt := tight()
	opt.Governor = budget.New(nil, budget.Limits{Tuples: pool})
	res := analyze(t, "gap", opt)
	for _, d := range res.Decisions {
		if d.Meter == budget.Tuples && d.New > pool {
			t.Errorf("tick %d %s: tuples grant %d exceeds pool %d", d.Tick, d.Arm, d.New, pool)
		}
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict %v", res.Verdict)
	}
}

// Memory carries learned allocations and structural retirements into the
// next run: the kb arm's definitive refutation stays retired, and the
// chase arm opens at (at least) its learned grant.
func TestMemoryCarriesAcrossRuns(t *testing.T) {
	fopt := tight()
	fopt.MaxTicks = 4
	first := analyze(t, "gap", fopt)
	if first.Memory == nil {
		t.Fatal("no memory")
	}
	kbMem, ok := first.Memory.Arms["kb"]
	if !ok || !kbMem.Done || kbMem.Note != "refuted" {
		t.Fatalf("kb memory %+v, want structural refutation", kbMem)
	}
	var learned int
	for _, a := range first.Arms {
		if a.Name == "chase" {
			learned = a.Grants.Rounds
		}
	}
	if learned <= 2 {
		t.Fatalf("chase should have grown past its seed in 4 ticks, got %d", learned)
	}

	sopt := tight()
	sopt.MaxTicks = 4
	sopt.Memory = first.Memory
	second := analyze(t, "gap", sopt)
	for _, a := range second.Arms {
		if a.Name == "kb" {
			if a.Leases != 0 || !a.Done {
				t.Errorf("kb re-ran despite remembered refutation: %+v", a)
			}
		}
	}
	for _, d := range second.Decisions {
		if d.Arm == "chase" && d.Signal == "seed" {
			if d.New < learned {
				t.Errorf("chase reseeded at %d, below learned grant %d", d.New, learned)
			}
			break
		}
	}
	if !second.GoalRefuted {
		t.Error("remembered refutation must still set GoalRefuted")
	}
}

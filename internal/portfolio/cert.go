package portfolio

import (
	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/td"
)

// This file attaches certificates to definitive portfolio results. The
// portfolio's arms are optimized for finding verdicts, not proofs: the
// chase arm runs untraced (tracing makes warm-state snapshots ineligible),
// and the kb and eid arms have no replayable proof object at all. A
// finite-counterexample win always has its database in hand, so it
// serializes directly; an Implied win is certified by a deterministic
// traced chase replay under generous fresh limits — the chase semidecides
// IMPL, so a sound Implied verdict replays to the same answer, and the
// validated trace is the certificate.

// certify writes res.cert for a definitive verdict. doc must describe the
// problem (deps, d0) the run answered; for presentation runs it embeds the
// ORIGINAL presentation and (deps, d0) are the reduction's.
func certify(res *Result, doc cert.Problem, deps []*td.TD, d0 *td.TD) {
	switch res.Verdict {
	case Implied:
		if res.Winner == "chase" && res.Chase != nil && len(res.Chase.Trace) > 0 {
			res.cert = cert.NewChase(doc, res.Chase.Trace)
			return
		}
		res.cert = cert.CertifyImplied(doc, deps, d0, replayLimits(res))
	case FiniteCounterexample:
		if res.CounterModel != nil {
			res.cert = cert.NewFiniteModel(doc, res.CounterModel.Instance, res.Witness)
			return
		}
		if res.Counterexample != nil {
			res.cert = cert.NewFiniteModel(doc, res.Counterexample, nil)
		}
	}
}

// replayLimits sizes the certifying replay from the chase arm's final
// cumulative grants, with margin (the winning verdict may have come from
// kb or eid, which the chase was trailing), floored at the chase defaults.
func replayLimits(res *Result) budget.Limits {
	l := chase.DefaultLimits
	for _, a := range res.Arms {
		if a.Name != "chase" {
			continue
		}
		if r := a.Grants.Of(budget.Rounds); 2*r+4 > l.Rounds {
			l.Rounds = 2*r + 4
		}
		if t := a.Grants.Of(budget.Tuples); 4*t+1024 > l.Tuples {
			l.Tuples = 4*t + 1024
		}
	}
	return l
}

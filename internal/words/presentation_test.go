package words

import (
	"strings"
	"testing"
)

func TestParseEquation(t *testing.T) {
	a := MustAlphabet([]string{"A0", "B", "C", "0"}, "A0", "0")
	e, err := ParseEquation(a, "A0 B = C")
	if err != nil {
		t.Fatalf("ParseEquation: %v", err)
	}
	if e.Format(a) != "A0 B = C" {
		t.Errorf("Format = %q", e.Format(a))
	}
	if !e.IsTwoOne() {
		t.Error("should be (2,1)")
	}
	if _, err := ParseEquation(a, "A0 B C"); err == nil {
		t.Error("missing '=' should fail")
	}
	if _, err := ParseEquation(a, "A0 = B = C"); err == nil {
		t.Error("two '=' should fail")
	}
	if _, err := ParseEquation(a, " = C"); err == nil {
		t.Error("empty side should fail")
	}
}

func TestEquationHelpers(t *testing.T) {
	e := Eq(W(1, 2), W(3))
	if e.IsTrivial() {
		t.Error("not trivial")
	}
	if !Eq(W(1), W(1)).IsTrivial() {
		t.Error("trivial not detected")
	}
	r := e.Reversed()
	if !r.LHS.Equal(W(3)) || !r.RHS.Equal(W(1, 2)) {
		t.Error("Reversed wrong")
	}
	if e.Key() == r.Key() {
		t.Error("Key should distinguish orientation")
	}
	if Eq(W(1), W(2)).IsTwoOne() || Eq(W(1, 2, 3), W(4)).IsTwoOne() {
		t.Error("IsTwoOne wrong")
	}
}

func TestZeroEquations(t *testing.T) {
	a := StandardAlphabet(1) // A0, A1, 0
	eqs := ZeroEquations(a)
	// For n symbols: n right absorptions + (n-1) left (0·0=0 only once).
	want := 2*a.Size() - 1
	if len(eqs) != want {
		t.Fatalf("len = %d, want %d", len(eqs), want)
	}
	z := a.Zero()
	for _, e := range eqs {
		if !e.RHS.Equal(W(z)) || len(e.LHS) != 2 || !e.LHS.Contains(z) {
			t.Errorf("bad zero equation %s", e.Format(a))
		}
	}
}

func TestWithZeroEquationsIdempotent(t *testing.T) {
	p := PowerPresentation()
	q := p.WithZeroEquations()
	if len(q.Equations) != len(p.Equations) {
		t.Errorf("WithZeroEquations added duplicates: %d vs %d", len(q.Equations), len(p.Equations))
	}
	if err := q.CheckZeroEquations(); err != nil {
		t.Errorf("CheckZeroEquations: %v", err)
	}
}

func TestCheckZeroEquationsMissing(t *testing.T) {
	a := StandardAlphabet(0)
	p, err := NewPresentation(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckZeroEquations(); err == nil {
		t.Error("missing zero equations should be reported")
	}
}

func TestParsePresentation(t *testing.T) {
	a := MustAlphabet([]string{"A0", "B", "C", "0"}, "A0", "0")
	p, err := ParsePresentation(a, `
# a comment
A0 B = C

C C = 0
`)
	if err != nil {
		t.Fatalf("ParsePresentation: %v", err)
	}
	if len(p.Equations) != 2 {
		t.Fatalf("len = %d", len(p.Equations))
	}
	if !strings.Contains(p.Format(), "A0 B = C") {
		t.Errorf("Format = %q", p.Format())
	}
	if _, err := ParsePresentation(a, "A0 ="); err == nil {
		t.Error("bad line should fail")
	}
}

func TestNewPresentationRejectsForeignSymbols(t *testing.T) {
	a := StandardAlphabet(0)
	if _, err := NewPresentation(a, []Equation{Eq(W(99), W(0))}); err == nil {
		t.Error("foreign symbol should fail")
	}
	if _, err := NewPresentation(nil, nil); err == nil {
		t.Error("nil alphabet should fail")
	}
}

func TestGoal(t *testing.T) {
	p := PowerPresentation()
	g := p.Goal()
	if !g.LHS.Equal(W(p.Alphabet.A0())) || !g.RHS.Equal(W(p.Alphabet.Zero())) {
		t.Errorf("Goal = %s", g.Format(p.Alphabet))
	}
}

func TestPresentationIsTwoOne(t *testing.T) {
	if !PowerPresentation().IsTwoOne() {
		t.Error("PowerPresentation should be (2,1)")
	}
	a := MustAlphabet([]string{"A0", "B", "0"}, "A0", "0")
	p, _ := NewPresentation(a, []Equation{Eq(W(0, 1, 2), W(1))})
	if p.IsTwoOne() {
		t.Error("(3,1) equation should not be (2,1)")
	}
}

package words

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Preset returns a named presentation family member, as used by the
// command-line tools: "power", "twostep", "gap", "chain:N", "nilpotent:M".
func Preset(name string) (*Presentation, error) {
	switch {
	case name == "power":
		return PowerPresentation(), nil
	case name == "twostep":
		return TwoStepPresentation(), nil
	case name == "gap":
		return IdempotentGapPresentation(), nil
	case strings.HasPrefix(name, "chain:"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "chain:"))
		if err != nil {
			return nil, fmt.Errorf("words: bad chain preset %q", name)
		}
		return ChainPresentation(n), nil
	case strings.HasPrefix(name, "nilpotent:"):
		m, err := strconv.Atoi(strings.TrimPrefix(name, "nilpotent:"))
		if err != nil {
			return nil, fmt.Errorf("words: bad nilpotent preset %q", name)
		}
		return NilpotentSafePresentation(m), nil
	case strings.HasPrefix(name, "tower:"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "tower:"))
		if err != nil {
			return nil, fmt.Errorf("words: bad tower preset %q", name)
		}
		return PowerTowerPresentation(k), nil
	case strings.HasPrefix(name, "collapse:"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "collapse:"))
		if err != nil {
			return nil, fmt.Errorf("words: bad collapse preset %q", name)
		}
		return CollapsePresentation(k), nil
	default:
		return nil, fmt.Errorf("words: unknown preset %q (try power, twostep, gap, chain:N, nilpotent:M, tower:K, collapse:K)", name)
	}
}

// Generators for presentation families used by tests, examples, and the
// experiment harness. Each family has a known ground truth:
//
//   - ChainPresentation(n): the goal A0 = 0 IS derivable, with shortest
//     derivation length Θ(n); used to exercise direction (A) of the
//     Reduction Theorem at scale.
//   - NilpotentSafePresentation(k): the goal is NOT derivable, and the free
//     k-nilpotent semigroup B(S,k) (see internal/semigroup) is a finite
//     cancellation counterexample; used for direction (B).
//   - PowerPresentation: A0^2 = B etc., falsified by nilpotent cyclic
//     semigroups.

// ChainPresentation returns a presentation over {A0, s1..s(n-1),
// k0..k(n-1), 0} whose equations force the derivation chain
//
//	A0 = k0·k0 = s1 = k1·k1 = s2 = ... = s(n-1) = k(n-1)·k(n-1) = 0
//
// of length 2n: each link expands a chain symbol s(i) to the square of a
// fresh symbol k(i) and contracts it to the next chain symbol. All
// equations are in (2,1) form; the zero equations are included. The goal
// A0 = 0 is derivable with exactly 2n steps.
func ChainPresentation(n int) *Presentation {
	if n < 1 {
		n = 1
	}
	names := []string{"A0"}
	for i := 1; i < n; i++ {
		names = append(names, fmt.Sprintf("s%d", i))
	}
	for i := 0; i < n; i++ {
		names = append(names, fmt.Sprintf("k%d", i))
	}
	names = append(names, "0")
	a := MustAlphabet(names, "A0", "0")
	var eqs []Equation
	prev := a.MustSymbol("A0")
	for i := 0; i < n; i++ {
		k := a.MustSymbol(fmt.Sprintf("k%d", i))
		var next Symbol
		if i == n-1 {
			next = a.Zero()
		} else {
			next = a.MustSymbol(fmt.Sprintf("s%d", i+1))
		}
		// k·k = prev (expansion target) and k·k = next (contraction source).
		eqs = append(eqs, Eq(W(k, k), W(prev)))
		eqs = append(eqs, Eq(W(k, k), W(next)))
		prev = next
	}
	p, err := NewPresentation(a, eqs)
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

// NilpotentSafePresentation returns a presentation over {A0, B1..B(m), 0}
// whose non-zero equations only define products of generators as fresh
// generators (A0·A0 = B1, B1·A0 = B2, ..., i.e. Bi denotes A0^(i+1)). The
// goal A0 = 0 is not derivable: the free nilpotent semigroup of class
// m+2 over one generator — the nilpotent cyclic semigroup N(m+2) — is a
// finite cancellation counterexample without identity in which A0 ≠ 0.
func NilpotentSafePresentation(m int) *Presentation {
	if m < 1 {
		m = 1
	}
	names := []string{"A0"}
	for i := 1; i <= m; i++ {
		names = append(names, fmt.Sprintf("B%d", i))
	}
	names = append(names, "0")
	a := MustAlphabet(names, "A0", "0")
	var eqs []Equation
	a0 := a.A0()
	prev := a0
	for i := 1; i <= m; i++ {
		b := a.MustSymbol(fmt.Sprintf("B%d", i))
		eqs = append(eqs, Eq(W(prev, a0), W(b)))
		prev = b
	}
	p, err := NewPresentation(a, eqs)
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

// PowerPresentation returns the presentation {A0·A0 = B} + zero equations
// over {A0, B, 0}: the smallest natural non-derivable instance. The
// nilpotent cyclic semigroup N3 = {a, a^2, 0} falsifies the goal.
func PowerPresentation() *Presentation {
	a := MustAlphabet([]string{"A0", "B", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{Eq(W(a.A0(), a.A0()), W(a.MustSymbol("B")))})
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

// TwoStepPresentation returns the presentation {b·c = A0, b·c = 0} + zero
// equations: the smallest derivable instance whose derivation
// A0 <- b·c -> 0 has length 2 and passes through a longer word, exercising
// the expansion direction of the chase (D2/D3/D4 of Fig. 3).
func TwoStepPresentation() *Presentation {
	a := MustAlphabet([]string{"A0", "b", "c", "0"}, "A0", "0")
	b, c := a.MustSymbol("b"), a.MustSymbol("c")
	p, err := NewPresentation(a, []Equation{
		Eq(W(b, c), W(a.A0())),
		Eq(W(b, c), W(a.Zero())),
	})
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

// IdempotentGapPresentation returns {A0·A0 = A0} + zero equations. The goal
// A0 = 0 is NOT equationally derivable (the two-element semilattice {e, 0}
// with e·e = e satisfies the equations with A0 = e ≠ 0), yet NO finite
// cancellation semigroup without identity falsifies it (condition (ii)
// forces x·x = x ⟹ x = 0). The instance therefore lies in NEITHER of the
// Main Theorem's two inseparable sets: the gap the undecidability proof
// lives in.
func IdempotentGapPresentation() *Presentation {
	a := MustAlphabet([]string{"A0", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{Eq(W(a.A0(), a.A0()), W(a.A0()))})
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

// PowerTowerPresentation returns the presentation {cK·cK = c(K-1), ...,
// c2·c2 = c1, c1·c1 = A0} + zero equations over {A0, c1..cK, 0}: A0 is
// forced to be the 2^K-th power of cK. The goal A0 = 0 is NOT derivable —
// the nilpotent cyclic semigroup N(2^K + 1) interprets cK as its generator
// and falsifies it — but every equation pins a NONZERO product (cK·cK =
// c(K-1) with c(K-1) ≠ 0 in any witness interpreting A0 ≠ 0 forces the
// whole power chain nonzero), so the all-zero table never satisfies the
// presentation with the pins, and the model search must genuinely explore
// tables up to order 2^K + 1. This is the stress workload for the parallel
// search benchmarks: unlike power/nilpotent:M (witness at tiny order,
// found within a handful of nodes) the search does exponential work below
// the witness order.
func PowerTowerPresentation(k int) *Presentation {
	if k < 1 {
		k = 1
	}
	names := []string{"A0"}
	for i := 1; i <= k; i++ {
		names = append(names, fmt.Sprintf("c%d", i))
	}
	names = append(names, "0")
	a := MustAlphabet(names, "A0", "0")
	var eqs []Equation
	prev := a.A0()
	for i := 1; i <= k; i++ {
		c := a.MustSymbol(fmt.Sprintf("c%d", i))
		eqs = append(eqs, Eq(W(c, c), W(prev)))
		prev = c
	}
	p, err := NewPresentation(a, eqs)
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

// CollapsePresentation returns a presentation that is DERIVABLE but
// engineered so that equational closure drowns while Knuth–Bendix
// completion decides it in a handful of sweeps: the KB-decidable workload
// for the adaptive portfolio.
//
// The backbone is the chain family: A0 = k0·k0 = s1 = k1·k1 = ... = 0, a
// derivation of length Θ(k). On top, every chain symbol k(i) opens a
// self-expanding junk tree over fresh private symbols: k(i) = x(i)·y(i,0)
// roots it, and x(i) = x(i)·y(i,j) for j = 1..2k lets every junk word
// grow 2k distinct longer neighbours forever. The junk equations are
// listed before the backbone links, so closure's breadth-first frontier
// enqueues the (2k)^depth junk flood ahead of the backbone successor at
// every level and exhausts a 10^5-word budget long before the depth-2k
// derivation surfaces. For completion the junk is free: the rules
// x(i)·y(i,j) -> x(i) and x(i)·y(i,0) -> k(i) are over private symbols
// whose suffixes never match another rule's prefix, so they contribute
// zero critical pairs.
//
// The alphabet lists the zero symbol FIRST, making it the shortlex
// minimum. The paired backbone rules k(i)·k(i) -> s(i) / -> s(i+1) then
// collapse cleanly: their critical pairs orient every chain symbol down
// to 0 (s(k-1) -> 0, ..., s1 -> 0, and finally A0 -> 0), so the completed
// system joins A0 and 0 and DecideGoal answers the instance positively.
func CollapsePresentation(k int) *Presentation {
	if k < 2 {
		k = 2
	}
	names := []string{"0", "A0"}
	for i := 1; i < k; i++ {
		names = append(names, fmt.Sprintf("s%d", i))
	}
	for i := 0; i < k; i++ {
		names = append(names, fmt.Sprintf("k%d", i))
	}
	for i := 0; i < k; i++ {
		names = append(names, fmt.Sprintf("x%d", i))
		for j := 0; j <= 2*k; j++ {
			names = append(names, fmt.Sprintf("y%d_%d", i, j))
		}
	}
	a := MustAlphabet(names, "A0", "0")
	var eqs []Equation
	prev := a.A0()
	for i := 0; i < k; i++ {
		ki := a.MustSymbol(fmt.Sprintf("k%d", i))
		var next Symbol
		if i == k-1 {
			next = a.Zero()
		} else {
			next = a.MustSymbol(fmt.Sprintf("s%d", i+1))
		}
		// Junk first: closure generates neighbours in equation order, so
		// the flood of junk expansions enqueues ahead of the backbone
		// successor at every BFS level.
		x := a.MustSymbol(fmt.Sprintf("x%d", i))
		for j := 1; j <= 2*k; j++ {
			y := a.MustSymbol(fmt.Sprintf("y%d_%d", i, j))
			eqs = append(eqs, Eq(W(x, y), W(x)))
		}
		eqs = append(eqs, Eq(W(x, a.MustSymbol(fmt.Sprintf("y%d_0", i))), W(ki)))
		eqs = append(eqs, Eq(W(ki, ki), W(prev)))
		eqs = append(eqs, Eq(W(ki, ki), W(next)))
		prev = next
	}
	p, err := NewPresentation(a, eqs)
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

// RandomPresentation generates a reproducible random presentation with m
// extra symbols and k random (2,1) equations (plus the zero equations).
// Ground truth is unknown; used to exercise the dual semidecision harness.
func RandomPresentation(rng *rand.Rand, m, k int) *Presentation {
	if m < 1 {
		m = 1
	}
	a := StandardAlphabet(m)
	syms := a.Symbols()
	nonZero := make([]Symbol, 0, len(syms)-1)
	for _, s := range syms {
		if s != a.Zero() {
			nonZero = append(nonZero, s)
		}
	}
	pick := func() Symbol { return nonZero[rng.Intn(len(nonZero))] }
	var eqs []Equation
	for i := 0; i < k; i++ {
		e := Eq(W(pick(), pick()), W(syms[rng.Intn(len(syms))]))
		if e.IsTrivial() {
			continue
		}
		eqs = append(eqs, e)
	}
	p, err := NewPresentation(a, eqs)
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

package words

import (
	"fmt"
	"strings"
)

// Word is a finite, non-empty-or-empty sequence of symbols. The empty word
// is permitted as a Go value (it is the identity of the free monoid) but
// presentations and equations reject it: the paper works with semigroups,
// whose elements are denoted by non-empty words.
type Word []Symbol

// W builds a word from symbols; convenience constructor.
func W(syms ...Symbol) Word { return Word(syms) }

// ParseWord parses a whitespace-separated sequence of symbol names, e.g.
// "A0 B C". A single token with no spaces is also accepted when every
// character is a symbol name of its own ("ABC" with one-letter symbols).
func ParseWord(a *Alphabet, s string) (Word, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("words: empty word")
	}
	fields := strings.Fields(s)
	if len(fields) == 1 {
		// Try the whole token as one symbol first, then fall back to
		// per-character parsing for compact one-letter-symbol notation.
		if sym, ok := a.Symbol(fields[0]); ok {
			return Word{sym}, nil
		}
		w := make(Word, 0, len(fields[0]))
		for _, r := range fields[0] {
			sym, ok := a.Symbol(string(r))
			if !ok {
				return nil, fmt.Errorf("words: unknown symbol %q in word %q", string(r), s)
			}
			w = append(w, sym)
		}
		return w, nil
	}
	w := make(Word, 0, len(fields))
	for _, f := range fields {
		sym, ok := a.Symbol(f)
		if !ok {
			return nil, fmt.Errorf("words: unknown symbol %q in word %q", f, s)
		}
		w = append(w, sym)
	}
	return w, nil
}

// MustParseWord is ParseWord that panics on error.
func MustParseWord(a *Alphabet, s string) Word {
	w, err := ParseWord(a, s)
	if err != nil {
		panic(err)
	}
	return w
}

// Len returns the number of symbols.
func (w Word) Len() int { return len(w) }

// IsEmpty reports whether w is the empty word.
func (w Word) IsEmpty() bool { return len(w) == 0 }

// Concat returns the concatenation w·v as a fresh word.
func (w Word) Concat(v Word) Word {
	out := make(Word, 0, len(w)+len(v))
	out = append(out, w...)
	out = append(out, v...)
	return out
}

// Clone returns a copy of w.
func (w Word) Clone() Word {
	out := make(Word, len(w))
	copy(out, w)
	return out
}

// Equal reports symbol-wise equality.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// Key returns a map-key encoding of w. Two words have equal keys iff they
// are equal. The encoding packs each symbol as a rune, so it is valid for
// alphabets of any realistic size.
func (w Word) Key() string {
	rs := make([]rune, len(w))
	for i, s := range w {
		rs[i] = rune(s) + 1 // avoid NUL for friendliness in debuggers
	}
	return string(rs)
}

// KeyToWord decodes a Key back into a word.
func KeyToWord(k string) Word {
	rs := []rune(k)
	w := make(Word, len(rs))
	for i, r := range rs {
		w[i] = Symbol(r - 1)
	}
	return w
}

// IndexOf returns the first position at which v occurs as a factor
// (contiguous subword) of w, or -1.
func (w Word) IndexOf(v Word) int {
	if len(v) == 0 || len(v) > len(w) {
		return -1
	}
outer:
	for i := 0; i+len(v) <= len(w); i++ {
		for j := range v {
			if w[i+j] != v[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

// Occurrences returns every position at which v occurs as a factor of w.
func (w Word) Occurrences(v Word) []int {
	if len(v) == 0 || len(v) > len(w) {
		return nil
	}
	var out []int
outer:
	for i := 0; i+len(v) <= len(w); i++ {
		for j := range v {
			if w[i+j] != v[j] {
				continue outer
			}
		}
		out = append(out, i)
	}
	return out
}

// ReplaceAt returns a fresh word in which the factor of length old occurring
// at position i is replaced by repl. It panics if the slice bounds are
// invalid.
func (w Word) ReplaceAt(i, old int, repl Word) Word {
	if i < 0 || i+old > len(w) {
		panic(fmt.Sprintf("words: ReplaceAt(%d, %d) out of range for word of length %d", i, old, len(w)))
	}
	out := make(Word, 0, len(w)-old+len(repl))
	out = append(out, w[:i]...)
	out = append(out, repl...)
	out = append(out, w[i+old:]...)
	return out
}

// Contains reports whether symbol s occurs in w.
func (w Word) Contains(s Symbol) bool {
	for _, x := range w {
		if x == s {
			return true
		}
	}
	return false
}

// Format renders the word using the alphabet's symbol names separated by
// spaces when any name has more than one character, or compactly otherwise.
func (w Word) Format(a *Alphabet) string {
	if len(w) == 0 {
		return "ε"
	}
	compact := true
	for _, s := range w {
		if len(a.Name(s)) != 1 {
			compact = false
			break
		}
	}
	var b strings.Builder
	for i, s := range w {
		if !compact && i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a.Name(s))
	}
	return b.String()
}

// Compare orders words by shortlex: shorter first, then lexicographically by
// symbol index. Returns -1, 0, or 1.
func (w Word) Compare(v Word) int {
	if len(w) != len(v) {
		if len(w) < len(v) {
			return -1
		}
		return 1
	}
	for i := range w {
		if w[i] != v[i] {
			if w[i] < v[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

package words

import (
	"templatedep/internal/budget"
	"testing"
)

// FuzzParseSpec exercises the presentation spec parser: no panics, and
// accepted specs round-trip through FormatSpec.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"symbols: A0 b c 0\nb c = A0\nb c = 0\n",
		"symbols: A0 0\n",
		"symbols: s z\na0: s\nzero: z\ns s = z\n",
		"# comment\nsymbols: A0 0\nA0 A0 = A0\n",
		"symbols: A0 0\nA0 = 0",
		"b c = A0",
		"symbols: A0 A0 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseSpec(input)
		if err != nil {
			return
		}
		again, err := ParseSpec(FormatSpec(p, false))
		if err != nil {
			t.Fatalf("FormatSpec output rejected: %v", err)
		}
		if len(again.Equations) != len(p.Equations) {
			t.Fatalf("round trip changed equation count: %d vs %d", len(again.Equations), len(p.Equations))
		}
	})
}

// FuzzDerive runs the closure search on fuzz-generated words over a fixed
// presentation; verdicts must be stable and derivations valid.
func FuzzDerive(f *testing.F) {
	f.Add("A0", "0")
	f.Add("b c", "A0")
	f.Add("b", "c")
	p := TwoStepPresentation()
	f.Fuzz(func(t *testing.T, fromS, toS string) {
		from, err := ParseWord(p.Alphabet, fromS)
		if err != nil {
			return
		}
		to, err := ParseWord(p.Alphabet, toS)
		if err != nil {
			return
		}
		res := Derive(p, from, to, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 300}), LengthCap: 8})
		if res.Verdict == Derivable {
			if err := res.Derivation.Validate(p); err != nil {
				t.Fatal(err)
			}
		}
	})
}

package words

import (
	"fmt"

	"templatedep/internal/budget"
)

// The equational-closure solver is a semidecision procedure for the uniform
// word problem: given a presentation E and words u, v, decide whether u = v
// is derivable from E (equivalently, by Birkhoff's theorem for semigroups,
// whether u = v holds in every S-generated semigroup satisfying E).
//
// The procedure runs a breadth-first search over the words reachable from u
// by single-occurrence replacements x -> y or y -> x for equations x = y of
// E. If v is reached, u = v is derivable and an explicit derivation (the
// sequence u = w0, w1, ..., wm = v of the paper's proof of Reduction Theorem
// part (A)) is returned. If the whole reachable class is exhausted without
// meeting v, u = v is NOT derivable — a definitive negative answer. If the
// budget runs out first, the answer is Unknown (the problem is undecidable
// in general, so a budget cut is unavoidable).

// Verdict is the three-valued outcome of a budgeted semidecision run.
type Verdict int

const (
	// Unknown means the search exhausted its budget without an answer.
	Unknown Verdict = iota
	// Derivable means the equation was proved; a Derivation witnesses it.
	Derivable
	// NotDerivable means the full equivalence class was enumerated and the
	// target is not in it: a definitive refutation.
	NotDerivable
)

func (v Verdict) String() string {
	switch v {
	case Derivable:
		return "derivable"
	case NotDerivable:
		return "not-derivable"
	default:
		return "unknown"
	}
}

// ClosureOptions bounds the breadth-first closure search.
type ClosureOptions struct {
	// Governor bounds the search: its words meter caps the number of
	// distinct words enumerated, and its context is checked once per
	// dequeued word, so cancellation latency is one BFS expansion. Nil
	// resolves to DefaultLimits.
	Governor *budget.Governor
	// LengthCap caps the length of words explored; replacements that would
	// produce a longer word are not followed. <= 0 means unbounded. Note
	// that a length cap makes the explored class an under-approximation,
	// so exhaustion under a cap yields Unknown, not NotDerivable, unless no
	// expansion was ever cut off. It is a structural window, not a meter:
	// it shapes WHICH words are reachable, not how many the budget admits.
	LengthCap int
}

// DefaultLimits is the single definition of the closure search's default
// word budget, shared by Derive, DeriveBidirectional, and
// EquivalenceClass.
var DefaultLimits = budget.Limits{Words: 100000}

// DefaultClosureOptions are generous defaults for interactive use.
func DefaultClosureOptions() ClosureOptions {
	return ClosureOptions{}
}

// Step records one rewrite in a derivation: equation Eq of the presentation
// applied at position Pos of the previous word; Forward means LHS -> RHS.
type Step struct {
	Eq      int
	Pos     int
	Forward bool
	Result  Word
}

// Derivation is an explicit equational proof that From = To: a chain of
// single-replacement steps. Validate checks it against a presentation.
type Derivation struct {
	From  Word
	To    Word
	Steps []Step
}

// Len returns the number of rewrite steps.
func (d *Derivation) Len() int { return len(d.Steps) }

// Words returns the full chain u0, u1, ..., um.
func (d *Derivation) Words() []Word {
	out := make([]Word, 0, len(d.Steps)+1)
	out = append(out, d.From)
	for _, s := range d.Steps {
		out = append(out, s.Result)
	}
	return out
}

// Validate checks every step of the derivation against p.
func (d *Derivation) Validate(p *Presentation) error {
	cur := d.From
	for i, s := range d.Steps {
		if s.Eq < 0 || s.Eq >= len(p.Equations) {
			return fmt.Errorf("words: step %d references equation %d out of range", i, s.Eq)
		}
		e := p.Equations[s.Eq]
		from, to := e.LHS, e.RHS
		if !s.Forward {
			from, to = to, from
		}
		if s.Pos < 0 || s.Pos+len(from) > len(cur) {
			return fmt.Errorf("words: step %d: position %d out of range", i, s.Pos)
		}
		for j := range from {
			if cur[s.Pos+j] != from[j] {
				return fmt.Errorf("words: step %d: word does not match equation side at position %d", i, s.Pos)
			}
		}
		next := cur.ReplaceAt(s.Pos, len(from), to)
		if !next.Equal(s.Result) {
			return fmt.Errorf("words: step %d: recorded result does not match rewrite", i)
		}
		cur = next
	}
	if !cur.Equal(d.To) {
		return fmt.Errorf("words: derivation ends at %v, not the claimed target", cur)
	}
	return nil
}

// Format renders the derivation chain, one word per line with
// justifications.
func (d *Derivation) Format(p *Presentation) string {
	a := p.Alphabet
	out := d.From.Format(a) + "\n"
	for _, s := range d.Steps {
		dir := "->"
		if !s.Forward {
			dir = "<-"
		}
		out += fmt.Sprintf("  = %s   [eq %d %s at %d: %s]\n",
			s.Result.Format(a), s.Eq, dir, s.Pos, p.Equations[s.Eq].Format(a))
	}
	return out
}

// Result is the outcome of a Derive call.
type Result struct {
	Verdict Verdict
	// Derivation is non-nil iff Verdict == Derivable.
	Derivation *Derivation
	// WordsExplored is the number of distinct words enumerated.
	WordsExplored int
	// Truncated reports that some expansion was skipped due to LengthCap,
	// which downgrades exhaustion to Unknown.
	Truncated bool
	// Budget reports how the governor cut the search short; zero (ok)
	// means the search ended on its own.
	Budget budget.Outcome
}

// Derive searches for an equational derivation of from = to under p.
func Derive(p *Presentation, from, to Word, opt ClosureOptions) Result {
	g := budget.Resolve(opt.Governor, DefaultLimits)
	wordCap := g.Limit(budget.Words)
	// Refuse to start under an already-stopped governor (see the chase and
	// search entry checks: verdicts must not depend on checkpoint timing).
	if o := g.Interrupted(); o.Stopped() {
		return Result{Verdict: Unknown, Budget: o}
	}
	if from.IsEmpty() || to.IsEmpty() {
		return Result{Verdict: NotDerivable}
	}
	if from.Equal(to) {
		return Result{Verdict: Derivable, Derivation: &Derivation{From: from, To: to}, WordsExplored: 1}
	}

	type edge struct {
		prevKey string
		step    Step
	}
	visited := map[string]edge{from.Key(): {}}
	queue := []string{from.Key()}
	truncated := false
	target := to.Key()

	reconstruct := func(k string) *Derivation {
		// Walk parents back to the source, then reverse.
		var rev []Step
		for k != from.Key() {
			e := visited[k]
			rev = append(rev, e.step)
			k = e.prevKey
		}
		steps := make([]Step, len(rev))
		for i := range rev {
			steps[i] = rev[len(rev)-1-i]
		}
		return &Derivation{From: from, To: to, Steps: steps}
	}

	for len(queue) > 0 {
		if o := g.Interrupted(); o.Stopped() {
			g.Add(budget.Words, len(visited))
			return Result{Verdict: Unknown, WordsExplored: len(visited), Truncated: truncated, Budget: o}
		}
		k := queue[0]
		queue = queue[1:]
		w := KeyToWord(k)
		for ei, eq := range p.Equations {
			for _, dirForward := range []bool{true, false} {
				src, dst := eq.LHS, eq.RHS
				if !dirForward {
					src, dst = dst, src
				}
				if len(dst) > len(src) && opt.LengthCap > 0 && len(w)-len(src)+len(dst) > opt.LengthCap {
					if len(w.Occurrences(src)) > 0 {
						truncated = true
					}
					continue
				}
				for _, pos := range w.Occurrences(src) {
					nw := w.ReplaceAt(pos, len(src), dst)
					nk := nw.Key()
					if _, seen := visited[nk]; seen {
						continue
					}
					visited[nk] = edge{prevKey: k, step: Step{Eq: ei, Pos: pos, Forward: dirForward, Result: nw}}
					if nk == target {
						g.Add(budget.Words, len(visited))
						return Result{
							Verdict:       Derivable,
							Derivation:    reconstruct(nk),
							WordsExplored: len(visited),
							Truncated:     truncated,
						}
					}
					if wordCap > 0 && len(visited) >= wordCap {
						g.Add(budget.Words, len(visited))
						return Result{Verdict: Unknown, WordsExplored: len(visited), Truncated: truncated,
							Budget: budget.Exhausted(budget.Words)}
					}
					queue = append(queue, nk)
				}
			}
		}
	}
	g.Add(budget.Words, len(visited))
	if truncated {
		return Result{Verdict: Unknown, WordsExplored: len(visited), Truncated: true}
	}
	return Result{Verdict: NotDerivable, WordsExplored: len(visited)}
}

// DeriveGoal searches for a derivation of the Main Lemma's goal A0 = 0.
func DeriveGoal(p *Presentation, opt ClosureOptions) Result {
	return Derive(p, W(p.Alphabet.A0()), W(p.Alphabet.Zero()), opt)
}

// EquivalenceClass enumerates the equational class of from under p, up to
// the budget. The boolean result reports whether the class was fully
// enumerated (no budget or length truncation).
func EquivalenceClass(p *Presentation, from Word, opt ClosureOptions) ([]Word, bool) {
	g := budget.Resolve(opt.Governor, DefaultLimits)
	wordCap := g.Limit(budget.Words)
	visited := map[string]bool{from.Key(): true}
	queue := []Word{from}
	complete := true
	for len(queue) > 0 {
		if g.Interrupted().Stopped() {
			complete = false
			break
		}
		w := queue[0]
		queue = queue[1:]
		for _, eq := range p.Equations {
			for _, dirForward := range []bool{true, false} {
				src, dst := eq.LHS, eq.RHS
				if !dirForward {
					src, dst = dst, src
				}
				if len(dst) > len(src) && opt.LengthCap > 0 && len(w)-len(src)+len(dst) > opt.LengthCap {
					if len(w.Occurrences(src)) > 0 {
						complete = false
					}
					continue
				}
				for _, pos := range w.Occurrences(src) {
					nw := w.ReplaceAt(pos, len(src), dst)
					nk := nw.Key()
					if visited[nk] {
						continue
					}
					if wordCap > 0 && len(visited) >= wordCap {
						complete = false
						continue
					}
					visited[nk] = true
					queue = append(queue, nw)
				}
			}
		}
	}
	g.Add(budget.Words, len(visited))
	out := make([]Word, 0, len(visited))
	for k := range visited {
		out = append(out, KeyToWord(k))
	}
	sortWords(out)
	return out, complete
}

func sortWords(ws []Word) {
	// shortlex order for determinism
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Compare(ws[j-1]) < 0; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

package words

import (
	"math/rand"
	"templatedep/internal/budget"
	"testing"
)

func TestChainPresentationShape(t *testing.T) {
	p := ChainPresentation(3)
	if !p.IsTwoOne() {
		t.Error("not (2,1)")
	}
	if err := p.CheckZeroEquations(); err != nil {
		t.Error(err)
	}
	// Alphabet: A0, s1, s2, k0, k1, k2, 0 = 7 symbols.
	if p.Alphabet.Size() != 7 {
		t.Errorf("alphabet size %d", p.Alphabet.Size())
	}
	// Degenerate argument is clamped to n=1: A0, k0, 0.
	if ChainPresentation(0).Alphabet.Size() != 3 {
		t.Error("clamp failed")
	}
}

func TestNilpotentSafePresentation(t *testing.T) {
	p := NilpotentSafePresentation(2)
	if !p.IsTwoOne() {
		t.Error("not (2,1)")
	}
	res := DeriveGoal(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 5000})})
	// Definitional equations only: A0's class is infinite? A0 matches RHS
	// of no equation and LHS of none alone; expansions: B1 -> A0 A0 only
	// applies to words containing B1. The class of A0 is {A0}: definite no.
	if res.Verdict != NotDerivable {
		t.Errorf("verdict %v, want NotDerivable", res.Verdict)
	}
}

func TestPowerAndTwoStepAndGap(t *testing.T) {
	if got := DeriveGoal(PowerPresentation(), DefaultClosureOptions()).Verdict; got != NotDerivable {
		t.Errorf("power: %v", got)
	}
	if got := DeriveGoal(TwoStepPresentation(), DefaultClosureOptions()).Verdict; got != Derivable {
		t.Errorf("two-step: %v", got)
	}
	if got := DeriveGoal(IdempotentGapPresentation(), ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 300})}).Verdict; got != Unknown {
		t.Errorf("gap: %v", got)
	}
}

func TestPowerTowerPresentation(t *testing.T) {
	p := PowerTowerPresentation(2)
	if !p.IsTwoOne() {
		t.Error("not (2,1)")
	}
	if err := p.CheckZeroEquations(); err != nil {
		t.Error(err)
	}
	// Alphabet: A0, c1, c2, 0.
	if p.Alphabet.Size() != 4 {
		t.Errorf("alphabet size %d", p.Alphabet.Size())
	}
	// Definitional chain downward: A0's equational class stays {A0}.
	res := DeriveGoal(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 5000})})
	if res.Verdict != NotDerivable {
		t.Errorf("verdict %v, want NotDerivable", res.Verdict)
	}
	if PowerTowerPresentation(0).Alphabet.Size() != 3 {
		t.Error("clamp failed")
	}
	if _, err := Preset("tower:2"); err != nil {
		t.Errorf("preset: %v", err)
	}
	if _, err := Preset("tower:x"); err == nil {
		t.Error("bad tower preset accepted")
	}
}

func TestRandomPresentationReproducible(t *testing.T) {
	p1 := RandomPresentation(rand.New(rand.NewSource(42)), 3, 5)
	p2 := RandomPresentation(rand.New(rand.NewSource(42)), 3, 5)
	if p1.Format() != p2.Format() {
		t.Error("same seed should give same presentation")
	}
	if err := p1.CheckZeroEquations(); err != nil {
		t.Error(err)
	}
	if !p1.IsTwoOne() {
		t.Error("random presentation should be (2,1)")
	}
}

package words

import "templatedep/internal/budget"

// DeriveBidirectional searches for a derivation of from = to by expanding
// breadth-first frontiers from BOTH endpoints and meeting in the middle.
// Because single-replacement rewriting is symmetric (each equation applies
// in both directions), the backward frontier explores exactly the
// equivalence class of `to`, and any common word yields a derivation by
// inverting the backward path's steps in place.
//
// Whether this beats the forward-only search depends on endpoint degree:
// meet-in-the-middle pays off between low-degree endpoints, while the goal
// word 0 of the Main Lemma is pathological — the absorption equations give
// the zero symbol an enormous rewrite neighbourhood (every A·0 and 0·A), so
// for A0 = 0 goals the backward frontier can dominate the total work. The
// ablation benchmark BenchmarkSearchStrategies measures both regimes; the
// two searches always agree on verdicts.
func DeriveBidirectional(p *Presentation, from, to Word, opt ClosureOptions) Result {
	g := budget.Resolve(opt.Governor, DefaultLimits)
	wordCap := g.Limit(budget.Words)
	if from.IsEmpty() || to.IsEmpty() {
		return Result{Verdict: NotDerivable}
	}
	if from.Equal(to) {
		return Result{Verdict: Derivable, Derivation: &Derivation{From: from, To: to}, WordsExplored: 1}
	}

	type edge struct {
		prevKey string
		step    Step // step applied at prev producing this word
	}
	visF := map[string]edge{from.Key(): {}}
	visB := map[string]edge{to.Key(): {}}
	queueF := []string{from.Key()}
	queueB := []string{to.Key()}
	truncated := false

	totalVisited := func() int { return len(visF) + len(visB) }

	// buildForward reconstructs from -> k using visF.
	buildForward := func(k string) []Step {
		var rev []Step
		for k != from.Key() {
			e := visF[k]
			rev = append(rev, e.step)
			k = e.prevKey
		}
		steps := make([]Step, len(rev))
		for i := range rev {
			steps[i] = rev[len(rev)-1-i]
		}
		return steps
	}
	// buildBackward reconstructs k -> to by inverting visB's edges: if prev
	// --step--> cur (recorded while expanding toward `to`'s class), then
	// cur --inverse(step)--> prev, at the same position.
	buildBackward := func(k string) []Step {
		var steps []Step
		for k != to.Key() {
			e := visB[k]
			inv := Step{Eq: e.step.Eq, Pos: e.step.Pos, Forward: !e.step.Forward, Result: KeyToWord(e.prevKey)}
			steps = append(steps, inv)
			k = e.prevKey
		}
		return steps
	}

	finish := func(meet string) Result {
		steps := buildForward(meet)
		steps = append(steps, buildBackward(meet)...)
		d := &Derivation{From: from, To: to, Steps: steps}
		g.Add(budget.Words, totalVisited())
		return Result{Verdict: Derivable, Derivation: d, WordsExplored: totalVisited(), Truncated: truncated}
	}

	expand := func(queue *[]string, vis map[string]edge, other map[string]edge) (string, bool) {
		// Expand one full BFS level of the chosen side; return a meeting
		// key if found.
		levelSize := len(*queue)
		for i := 0; i < levelSize; i++ {
			k := (*queue)[0]
			*queue = (*queue)[1:]
			w := KeyToWord(k)
			for ei, eq := range p.Equations {
				for _, dirForward := range []bool{true, false} {
					src, dst := eq.LHS, eq.RHS
					if !dirForward {
						src, dst = dst, src
					}
					if len(dst) > len(src) && opt.LengthCap > 0 && len(w)-len(src)+len(dst) > opt.LengthCap {
						if len(w.Occurrences(src)) > 0 {
							truncated = true
						}
						continue
					}
					for _, pos := range w.Occurrences(src) {
						nw := w.ReplaceAt(pos, len(src), dst)
						nk := nw.Key()
						if _, seen := vis[nk]; seen {
							continue
						}
						vis[nk] = edge{prevKey: k, step: Step{Eq: ei, Pos: pos, Forward: dirForward, Result: nw}}
						if _, met := other[nk]; met {
							return nk, true
						}
						if wordCap > 0 && totalVisited() >= wordCap {
							return "", false
						}
						*queue = append(*queue, nk)
					}
				}
			}
		}
		return "", false
	}

	for len(queueF) > 0 || len(queueB) > 0 {
		if o := g.Interrupted(); o.Stopped() {
			g.Add(budget.Words, totalVisited())
			return Result{Verdict: Unknown, WordsExplored: totalVisited(), Truncated: truncated, Budget: o}
		}
		if wordCap > 0 && totalVisited() >= wordCap {
			g.Add(budget.Words, totalVisited())
			return Result{Verdict: Unknown, WordsExplored: totalVisited(), Truncated: truncated,
				Budget: budget.Exhausted(budget.Words)}
		}
		// Expand the smaller live frontier first.
		if len(queueF) > 0 && (len(queueF) <= len(queueB) || len(queueB) == 0) {
			if meet, ok := expand(&queueF, visF, visB); ok {
				return finish(meet)
			}
		} else if len(queueB) > 0 {
			if meet, ok := expand(&queueB, visB, visF); ok {
				return finish(meet)
			}
		}
		if wordCap > 0 && totalVisited() >= wordCap {
			g.Add(budget.Words, totalVisited())
			return Result{Verdict: Unknown, WordsExplored: totalVisited(), Truncated: truncated,
				Budget: budget.Exhausted(budget.Words)}
		}
		if len(queueF) == 0 && len(queueB) == 0 {
			break
		}
		// If one side is exhausted and no meeting happened, the classes are
		// disjoint as far as explored; only definitive when untruncated and
		// that side's class was fully enumerated.
		if len(queueF) == 0 || len(queueB) == 0 {
			g.Add(budget.Words, totalVisited())
			if !truncated {
				return Result{Verdict: NotDerivable, WordsExplored: totalVisited()}
			}
			return Result{Verdict: Unknown, WordsExplored: totalVisited(), Truncated: true}
		}
	}
	g.Add(budget.Words, totalVisited())
	if truncated {
		return Result{Verdict: Unknown, WordsExplored: totalVisited(), Truncated: true}
	}
	return Result{Verdict: NotDerivable, WordsExplored: totalVisited()}
}

// DeriveGoalBidirectional is DeriveBidirectional for the goal A0 = 0.
func DeriveGoalBidirectional(p *Presentation, opt ClosureOptions) Result {
	return DeriveBidirectional(p, W(p.Alphabet.A0()), W(p.Alphabet.Zero()), opt)
}

package words

import (
	"math/rand"
	"templatedep/internal/budget"
	"testing"
	"testing/quick"
)

func TestNormalizeAlreadyTwoOne(t *testing.T) {
	p := PowerPresentation()
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Presentation.IsTwoOne() {
		t.Fatal("not (2,1)")
	}
	if n.GoalForced {
		t.Error("GoalForced should be false")
	}
	if len(n.Definitions) != 0 {
		t.Errorf("no fresh symbols expected, got %d", len(n.Definitions))
	}
	if err := n.Presentation.CheckZeroEquations(); err != nil {
		t.Error(err)
	}
}

func TestNormalizePaperExample(t *testing.T) {
	// The paper's example: replace ABC = DA by AB = E, DA = F, EC = F.
	a := MustAlphabet([]string{"A0", "A", "B", "C", "D", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{
		Eq(MustParseWord(a, "A B C"), MustParseWord(a, "D A")),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Presentation.IsTwoOne() {
		t.Fatal("not (2,1)")
	}
	// Two fresh symbols: one for AB, one for DA.
	if len(n.Definitions) != 2 {
		t.Fatalf("fresh symbols = %d, want 2; defs %v", len(n.Definitions), n.Definitions)
	}
	wantDefs := map[string]bool{"AB": true, "DA": true}
	for s, d := range n.Definitions {
		if !wantDefs[d.Format(a)] {
			t.Errorf("unexpected definition %s := %s", n.Presentation.Alphabet.Name(s), d.Format(a))
		}
	}
}

func TestNormalizeLongBothSides(t *testing.T) {
	a := MustAlphabet([]string{"A0", "A", "B", "C", "D", "E", "F", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{
		Eq(MustParseWord(a, "A B C D"), MustParseWord(a, "E F A")),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Presentation.IsTwoOne() {
		t.Fatal("not (2,1)")
	}
	// Prefixes AB, ABC (LHS chain) and EF, EFA (RHS chain): 4 fresh symbols.
	if len(n.Definitions) != 4 {
		t.Errorf("fresh symbols = %d, want 4", len(n.Definitions))
	}
	// Every definition must expand to a word over the ORIGINAL alphabet.
	for _, d := range n.Definitions {
		for _, s := range d {
			if !a.Contains(s) {
				t.Errorf("definition uses non-original symbol %d", s)
			}
		}
	}
}

func TestNormalizePrefixMemoization(t *testing.T) {
	// Two equations sharing the prefix AB should share the fresh symbol.
	a := MustAlphabet([]string{"A0", "A", "B", "C", "D", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{
		Eq(MustParseWord(a, "A B C"), MustParseWord(a, "D")),
		Eq(MustParseWord(a, "A B D"), MustParseWord(a, "C")),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Definitions) != 1 {
		t.Errorf("fresh symbols = %d, want 1 (shared AB)", len(n.Definitions))
	}
}

func TestNormalizeAliases(t *testing.T) {
	// A = B alias: substituted away, conservativity of derivability.
	a := MustAlphabet([]string{"A0", "A", "B", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{
		Eq(MustParseWord(a, "A"), MustParseWord(a, "B")),
		Eq(MustParseWord(a, "A A"), MustParseWord(a, "A0")),
		Eq(MustParseWord(a, "B B"), MustParseWord(a, "0")),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Original: A0 ~ AA ~ AB ~ BB ~ 0, so the goal is derivable.
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Presentation.IsTwoOne() {
		t.Fatal("not (2,1)")
	}
	res := DeriveGoal(n.Presentation, DefaultClosureOptions())
	if res.Verdict != Derivable {
		t.Fatalf("goal should remain derivable after aliasing; got %v", res.Verdict)
	}
	// Alias map sends A and B to a common representative.
	sa, _ := a.Symbol("A")
	sb, _ := a.Symbol("B")
	if n.Aliases[sa] != n.Aliases[sb] {
		t.Error("A and B not unified")
	}
}

func TestNormalizeGoalForced(t *testing.T) {
	a := MustAlphabet([]string{"A0", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{
		Eq(MustParseWord(a, "A0"), MustParseWord(a, "0")),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !n.GoalForced {
		t.Fatal("GoalForced should be true")
	}
	if !n.Presentation.IsTwoOne() {
		t.Fatal("not (2,1)")
	}
	res := DeriveGoal(n.Presentation, DefaultClosureOptions())
	if res.Verdict != Derivable {
		t.Fatalf("goal must be derivable via the gadget; got %v", res.Verdict)
	}
}

// Property: normalization preserves derivability of the goal on random
// presentations (checked by running the closure on both and comparing when
// both give definite answers).
func TestNormalizePreservesDerivability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomPresentation(rng, 2, 3)
		// Random presentations are already (2,1); stretch one equation to
		// length 3 to force decomposition.
		if len(p.Equations) > 0 {
			e := p.Equations[0]
			p.Equations[0] = Eq(e.LHS.Concat(W(p.Alphabet.A0())), e.RHS)
		}
		n, err := Normalize(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		before := DeriveGoal(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 1500}), LengthCap: 8})
		after := DeriveGoal(n.Presentation, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 3000}), LengthCap: 10})
		if before.Verdict == Derivable && after.Verdict == NotDerivable {
			t.Logf("seed %d: derivable became not-derivable", seed)
			return false
		}
		if before.Verdict == NotDerivable && after.Verdict == Derivable {
			t.Logf("seed %d: not-derivable became derivable", seed)
			return false
		}
		if after.Verdict == Derivable {
			if err := after.Derivation.Validate(n.Presentation); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func TestExpandWordAndAliases(t *testing.T) {
	a := MustAlphabet([]string{"A0", "A", "B", "C", "0"}, "A0", "0")
	p, err := NewPresentation(a, []Equation{
		Eq(MustParseWord(a, "A B C"), MustParseWord(a, "A0")),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Normalize(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find the fresh symbol for AB and expand a word containing it.
	var fresh Symbol = -1
	for s, d := range n.Definitions {
		if d.Format(a) == "AB" {
			fresh = s
		}
	}
	if fresh < 0 {
		t.Fatal("no fresh symbol for AB")
	}
	got := n.ExpandWord(W(fresh, a.MustSymbol("C")))
	if got.Format(a) != "ABC" {
		t.Errorf("ExpandWord = %q", got.Format(a))
	}
	// ApplyAliases is the identity here.
	w := MustParseWord(a, "A B")
	if !n.ApplyAliases(w).Equal(w) {
		t.Error("ApplyAliases should be identity without alias equations")
	}
}

package words

import (
	"strings"
	"testing"
)

func TestParseSpecBasic(t *testing.T) {
	p, err := ParseSpec(`
# the two-step instance
symbols: A0 b c 0
b c = A0
b c = 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alphabet.Size() != 4 {
		t.Errorf("alphabet %v", p.Alphabet)
	}
	if err := p.CheckZeroEquations(); err != nil {
		t.Error(err)
	}
	if got := DeriveGoal(p, DefaultClosureOptions()).Verdict; got != Derivable {
		t.Errorf("verdict %v", got)
	}
}

func TestParseSpecCustomDistinguished(t *testing.T) {
	p, err := ParseSpec(`
symbols: start z
a0: start
zero: z
start start = z
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alphabet.Name(p.Alphabet.A0()) != "start" || p.Alphabet.Name(p.Alphabet.Zero()) != "z" {
		t.Error("distinguished symbols wrong")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"b c = A0",                     // no symbols line
		"symbols: A0 0\nnonsense line", // unparseable line
		"symbols: A0\n",                // missing zero symbol
		"symbols: A0 0\nA0 X = 0",      // unknown symbol in equation
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestFormatSpecRoundTrip(t *testing.T) {
	p := TwoStepPresentation()
	spec := FormatSpec(p, true)
	if strings.Contains(spec, "A0 0 = 0") {
		t.Error("zero equations should be omitted")
	}
	q, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("reparse:\n%s\n%v", spec, err)
	}
	if len(q.Equations) != len(p.Equations) {
		t.Errorf("equations %d vs %d", len(q.Equations), len(p.Equations))
	}
	// Full spec (zero equations included) also round-trips.
	full := FormatSpec(p, false)
	q2, err := ParseSpec(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Equations) != len(p.Equations) {
		t.Errorf("full round trip %d vs %d", len(q2.Equations), len(p.Equations))
	}
}

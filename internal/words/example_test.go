package words_test

import (
	"fmt"

	"templatedep/internal/words"
)

func ExampleDeriveGoal() {
	p := words.TwoStepPresentation() // b·c = A0 and b·c = 0
	res := words.DeriveGoal(p, words.DefaultClosureOptions())
	fmt.Println(res.Verdict)
	for _, w := range res.Derivation.Words() {
		fmt.Println(w.Format(p.Alphabet))
	}
	// Output:
	// derivable
	// A0
	// bc
	// 0
}

func ExampleNormalize() {
	// The paper's example: ABC = DA becomes AB = E, DA = F, EC = F.
	a := words.MustAlphabet([]string{"A0", "A", "B", "C", "D", "0"}, "A0", "0")
	p, err := words.NewPresentation(a, []words.Equation{
		words.Eq(words.MustParseWord(a, "A B C"), words.MustParseWord(a, "D A")),
	})
	if err != nil {
		panic(err)
	}
	n, err := words.Normalize(p)
	if err != nil {
		panic(err)
	}
	fmt.Println("(2,1) form:", n.Presentation.IsTwoOne())
	fmt.Println("fresh symbols:", len(n.Definitions))
	// Output:
	// (2,1) form: true
	// fresh symbols: 2
}

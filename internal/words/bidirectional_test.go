package words

import (
	"math/rand"
	"templatedep/internal/budget"
	"testing"
	"testing/quick"
)

func TestBidirectionalChain(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		p := ChainPresentation(n)
		res := DeriveGoalBidirectional(p, DefaultClosureOptions())
		if res.Verdict != Derivable {
			t.Fatalf("Chain(%d): verdict %v", n, res.Verdict)
		}
		if err := res.Derivation.Validate(p); err != nil {
			t.Fatalf("Chain(%d): %v", n, err)
		}
		if res.Derivation.Len() != 2*n {
			t.Errorf("Chain(%d): length %d, want %d", n, res.Derivation.Len(), 2*n)
		}
	}
}

func TestBidirectionalTwoStep(t *testing.T) {
	p := TwoStepPresentation()
	res := DeriveGoalBidirectional(p, DefaultClosureOptions())
	if res.Verdict != Derivable {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if err := res.Derivation.Validate(p); err != nil {
		t.Fatal(err)
	}
	if res.Derivation.Len() != 2 {
		t.Errorf("length %d", res.Derivation.Len())
	}
}

func TestBidirectionalNotDerivable(t *testing.T) {
	// Power: the class of A0 is the singleton {A0}; the forward frontier
	// exhausts and no meeting happens.
	p := PowerPresentation()
	res := DeriveGoalBidirectional(p, DefaultClosureOptions())
	if res.Verdict != NotDerivable {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestBidirectionalBudget(t *testing.T) {
	p := IdempotentGapPresentation()
	res := DeriveGoalBidirectional(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 100})})
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestBidirectionalReflexiveAndEmpty(t *testing.T) {
	p := PowerPresentation()
	w := W(p.Alphabet.A0())
	res := DeriveBidirectional(p, w, w, DefaultClosureOptions())
	if res.Verdict != Derivable || res.Derivation.Len() != 0 {
		t.Errorf("reflexive: %v", res.Verdict)
	}
	if res := DeriveBidirectional(p, Word{}, w, DefaultClosureOptions()); res.Verdict != NotDerivable {
		t.Errorf("empty: %v", res.Verdict)
	}
}

// bushPresentation builds a branchy derivable instance: n chain levels,
// each reachable through w parallel squared symbols, so the BFS branching
// factor is w in both directions.
func bushPresentation(n, w int) *Presentation {
	names := []string{"A0"}
	for i := 1; i < n; i++ {
		names = append(names, "s"+itoa(i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < w; j++ {
			names = append(names, "k"+itoa(i)+"_"+itoa(j))
		}
	}
	names = append(names, "0")
	a := MustAlphabet(names, "A0", "0")
	var eqs []Equation
	prev := a.MustSymbol("A0")
	for i := 0; i < n; i++ {
		var next Symbol
		if i == n-1 {
			next = a.Zero()
		} else {
			next = a.MustSymbol("s" + itoa(i+1))
		}
		for j := 0; j < w; j++ {
			k := a.MustSymbol("k" + itoa(i) + "_" + itoa(j))
			eqs = append(eqs, Eq(W(k, k), W(prev)), Eq(W(k, k), W(next)))
		}
		prev = next
	}
	p, err := NewPresentation(a, eqs)
	if err != nil {
		panic(err)
	}
	return p.WithZeroEquations()
}

func itoa(i int) string {
	if i == 0 {
		return "0x"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func TestBidirectionalInteriorWords(t *testing.T) {
	// Between two interior chain symbols both searches must agree and
	// produce valid shortest-or-valid derivations; relative cost depends on
	// endpoint degree and is reported, not asserted (see the strategy
	// benchmark).
	p := bushPresentation(8, 4)
	a := p.Alphabet
	from := W(a.A0())
	to := W(a.MustSymbol("s7"))
	uni := Derive(p, from, to, DefaultClosureOptions())
	bi := DeriveBidirectional(p, from, to, DefaultClosureOptions())
	if uni.Verdict != Derivable || bi.Verdict != Derivable {
		t.Fatalf("verdicts %v %v", uni.Verdict, bi.Verdict)
	}
	if err := bi.Derivation.Validate(p); err != nil {
		t.Fatal(err)
	}
	if err := uni.Derivation.Validate(p); err != nil {
		t.Fatal(err)
	}
	t.Logf("bush(8,4) interior: unidirectional %d words, bidirectional %d words",
		uni.WordsExplored, bi.WordsExplored)
}

func TestBidirectionalZeroEndpointCost(t *testing.T) {
	// The measured phenomenon the benchmarks report: searching backward
	// from the zero symbol explores the absorption neighbourhood (every
	// A·0 and 0·A), so for the A0 = 0 goal the bidirectional search can be
	// strictly WORSE than the forward-only search. Both must still agree.
	p := bushPresentation(6, 4)
	uni := DeriveGoal(p, DefaultClosureOptions())
	bi := DeriveGoalBidirectional(p, DefaultClosureOptions())
	if uni.Verdict != Derivable || bi.Verdict != Derivable {
		t.Fatalf("verdicts %v %v", uni.Verdict, bi.Verdict)
	}
	if err := bi.Derivation.Validate(p); err != nil {
		t.Fatal(err)
	}
	t.Logf("bush(6,4) goal: unidirectional %d words, bidirectional %d words",
		uni.WordsExplored, bi.WordsExplored)
}

// Property: the two searches agree on random presentations (both validated
// when derivable).
func TestBidirectionalAgreesWithUnidirectional(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomPresentation(rng, 2+rng.Intn(2), 2+rng.Intn(3))
		uni := DeriveGoal(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 1500}), LengthCap: 8})
		bi := DeriveGoalBidirectional(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 1500}), LengthCap: 8})
		if uni.Verdict == Derivable && bi.Verdict == NotDerivable {
			t.Logf("seed %d: uni derivable, bi not", seed)
			return false
		}
		if uni.Verdict == NotDerivable && bi.Verdict == Derivable {
			t.Logf("seed %d: uni not derivable, bi derivable", seed)
			return false
		}
		if bi.Verdict == Derivable {
			if err := bi.Derivation.Validate(p); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Error(err)
	}
}

package words

import (
	"fmt"
	"strconv"
	"strings"
)

// Derivation certificates: a compact, machine-checkable text form of an
// equational proof, so a derivation found by one tool run can be verified
// by another (sgword derive emits them; ParseDerivation + Validate checks
// them against the presentation).
//
// Format (one token per line element, '#' comments allowed):
//
//	cert v1
//	from: <word>
//	to: <word>
//	step: <eq-index> <position> <+|-> <result word>
//	...
//
// '+' means the equation was applied left-to-right.

// MarshalText renders the derivation as a certificate.
func (d *Derivation) MarshalText(p *Presentation) string {
	var b strings.Builder
	b.WriteString("cert v1\n")
	fmt.Fprintf(&b, "from: %s\n", d.From.Format(p.Alphabet))
	fmt.Fprintf(&b, "to: %s\n", d.To.Format(p.Alphabet))
	for _, s := range d.Steps {
		dir := "+"
		if !s.Forward {
			dir = "-"
		}
		fmt.Fprintf(&b, "step: %d %d %s %s\n", s.Eq, s.Pos, dir, s.Result.Format(p.Alphabet))
	}
	return b.String()
}

// ParseDerivation reads a certificate and validates it against p; the
// returned derivation is guaranteed valid.
func ParseDerivation(p *Presentation, text string) (*Derivation, error) {
	d := &Derivation{}
	sawHeader := false
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case line == "cert v1":
			sawHeader = true
		case strings.HasPrefix(line, "from: "):
			w, err := ParseWord(p.Alphabet, strings.TrimPrefix(line, "from: "))
			if err != nil {
				return nil, fmt.Errorf("words: cert line %d: %w", ln+1, err)
			}
			d.From = w
		case strings.HasPrefix(line, "to: "):
			w, err := ParseWord(p.Alphabet, strings.TrimPrefix(line, "to: "))
			if err != nil {
				return nil, fmt.Errorf("words: cert line %d: %w", ln+1, err)
			}
			d.To = w
		case strings.HasPrefix(line, "step: "):
			fields := strings.Fields(strings.TrimPrefix(line, "step: "))
			if len(fields) < 4 {
				return nil, fmt.Errorf("words: cert line %d: step needs eq, pos, dir, result", ln+1)
			}
			eq, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("words: cert line %d: bad equation index: %w", ln+1, err)
			}
			pos, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("words: cert line %d: bad position: %w", ln+1, err)
			}
			var fwd bool
			switch fields[2] {
			case "+":
				fwd = true
			case "-":
				fwd = false
			default:
				return nil, fmt.Errorf("words: cert line %d: direction must be + or -", ln+1)
			}
			result, err := ParseWord(p.Alphabet, strings.Join(fields[3:], " "))
			if err != nil {
				return nil, fmt.Errorf("words: cert line %d: %w", ln+1, err)
			}
			d.Steps = append(d.Steps, Step{Eq: eq, Pos: pos, Forward: fwd, Result: result})
		default:
			return nil, fmt.Errorf("words: cert line %d: cannot parse %q", ln+1, raw)
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("words: missing 'cert v1' header")
	}
	if d.From == nil || d.To == nil {
		return nil, fmt.Errorf("words: certificate missing from/to lines")
	}
	if err := d.Validate(p); err != nil {
		return nil, fmt.Errorf("words: certificate invalid: %w", err)
	}
	return d, nil
}

package words

import (
	"strings"
	"testing"
)

func TestCertificateRoundTrip(t *testing.T) {
	for _, p := range []*Presentation{TwoStepPresentation(), ChainPresentation(3)} {
		res := DeriveGoal(p, DefaultClosureOptions())
		if res.Verdict != Derivable {
			t.Fatal("setup")
		}
		text := res.Derivation.MarshalText(p)
		back, err := ParseDerivation(p, text)
		if err != nil {
			t.Fatalf("reparse:\n%s\n%v", text, err)
		}
		if back.Len() != res.Derivation.Len() {
			t.Errorf("length changed: %d vs %d", back.Len(), res.Derivation.Len())
		}
		if !back.From.Equal(res.Derivation.From) || !back.To.Equal(res.Derivation.To) {
			t.Error("endpoints changed")
		}
	}
}

func TestCertificateRejectsTampering(t *testing.T) {
	p := TwoStepPresentation()
	res := DeriveGoal(p, DefaultClosureOptions())
	text := res.Derivation.MarshalText(p)

	// Tamper: change an equation index.
	bad := strings.Replace(text, "step: 0", "step: 3", 1)
	if bad == text {
		// The first step may not use equation 0; flip a direction instead.
		bad = strings.Replace(text, " + ", " - ", 1)
	}
	if _, err := ParseDerivation(p, bad); err == nil {
		t.Error("tampered certificate accepted")
	}

	// Structural garbage.
	for _, g := range []string{
		"",
		"cert v1\n",
		"cert v1\nfrom: A0\n",
		"cert v1\nfrom: A0\nto: 0\nstep: x 0 + A0\n",
		"cert v1\nfrom: A0\nto: 0\nstep: 0 0 ? A0\n",
		"cert v1\nfrom: A0\nto: 0\nnonsense\n",
		"from: A0\nto: 0\n", // no header
	} {
		if _, err := ParseDerivation(p, g); err == nil {
			t.Errorf("accepted garbage %q", g)
		}
	}
}

func TestCertificateComments(t *testing.T) {
	p := TwoStepPresentation()
	res := DeriveGoal(p, DefaultClosureOptions())
	text := "# a comment\n" + res.Derivation.MarshalText(p) + "\n# trailing\n"
	if _, err := ParseDerivation(p, text); err != nil {
		t.Error(err)
	}
}

package words

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseWord(t *testing.T) {
	a := MustAlphabet([]string{"A0", "b", "c", "0"}, "A0", "0")
	w, err := ParseWord(a, "A0 b c")
	if err != nil {
		t.Fatalf("ParseWord: %v", err)
	}
	if w.Len() != 3 || w.Format(a) != "A0 b c" {
		t.Errorf("parsed %q", w.Format(a))
	}
	// Compact one-letter parsing.
	one := MustAlphabet([]string{"a", "b", "z"}, "a", "z")
	w2, err := ParseWord(one, "abz")
	if err != nil {
		t.Fatalf("compact ParseWord: %v", err)
	}
	if w2.Format(one) != "abz" {
		t.Errorf("compact parsed %q", w2.Format(one))
	}
	// Whole-token symbol beats per-character split.
	w3, err := ParseWord(a, "A0")
	if err != nil || w3.Len() != 1 {
		t.Errorf("ParseWord(A0) = %v, %v", w3, err)
	}
	if _, err := ParseWord(a, ""); err == nil {
		t.Error("empty word should fail")
	}
	if _, err := ParseWord(a, "A0 nope"); err == nil {
		t.Error("unknown symbol should fail")
	}
}

func TestWordOperations(t *testing.T) {
	w := W(0, 1, 2)
	v := W(1, 2)
	if w.IndexOf(v) != 1 {
		t.Errorf("IndexOf = %d, want 1", w.IndexOf(v))
	}
	if w.IndexOf(W(3)) != -1 {
		t.Error("IndexOf missing should be -1")
	}
	if got := W(0, 1, 0, 1).Occurrences(W(0, 1)); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Occurrences = %v", got)
	}
	// Overlapping occurrences.
	if got := W(0, 0, 0).Occurrences(W(0, 0)); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("overlapping Occurrences = %v", got)
	}
	r := w.ReplaceAt(1, 2, W(9))
	if !r.Equal(W(0, 9)) {
		t.Errorf("ReplaceAt = %v", r)
	}
	if !w.Equal(W(0, 1, 2)) {
		t.Error("ReplaceAt mutated the receiver")
	}
	if !w.Concat(v).Equal(W(0, 1, 2, 1, 2)) {
		t.Error("Concat wrong")
	}
	if !w.Contains(2) || w.Contains(7) {
		t.Error("Contains wrong")
	}
	c := w.Clone()
	c[0] = 5
	if w[0] == 5 {
		t.Error("Clone aliases the receiver")
	}
}

func TestReplaceAtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ReplaceAt out of range should panic")
		}
	}()
	W(0, 1).ReplaceAt(1, 2, W(5))
}

func TestWordKeyRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		w := make(Word, len(raw))
		for i, b := range raw {
			w[i] = Symbol(int(b) % 500)
		}
		return KeyToWord(w.Key()).Equal(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestWordKeyInjective(t *testing.T) {
	f := func(raw1, raw2 []uint8) bool {
		w1 := make(Word, len(raw1))
		for i, b := range raw1 {
			w1[i] = Symbol(b)
		}
		w2 := make(Word, len(raw2))
		for i, b := range raw2 {
			w2[i] = Symbol(b)
		}
		return (w1.Key() == w2.Key()) == w1.Equal(w2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestWordCompareShortlex(t *testing.T) {
	cases := []struct {
		a, b Word
		want int
	}{
		{W(0), W(0, 0), -1},
		{W(0, 0), W(0), 1},
		{W(0, 1), W(0, 2), -1},
		{W(2), W(1), 1},
		{W(1, 2), W(1, 2), 0},
		{W(), W(0), -1},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: Compare = %d, want %d", i, got, c.want)
		}
	}
}

func TestWordFormat(t *testing.T) {
	a := MustAlphabet([]string{"a", "b", "z"}, "a", "z")
	if got := W(0, 1, 2).Format(a); got != "abz" {
		t.Errorf("compact Format = %q", got)
	}
	multi := MustAlphabet([]string{"A0", "b", "0"}, "A0", "0")
	if got := W(0, 1).Format(multi); got != "A0 b" {
		t.Errorf("spaced Format = %q", got)
	}
	if got := (Word{}).Format(a); got != "ε" {
		t.Errorf("empty Format = %q", got)
	}
}

func TestConcatCopies(t *testing.T) {
	// Concat must not alias its inputs even when capacity allows.
	w := make(Word, 1, 10)
	w[0] = 1
	v := W(2)
	c := w.Concat(v)
	c[0] = 9
	if w[0] != 1 {
		t.Error("Concat aliased input")
	}
}

// Package words implements finite alphabets, words (strings over an
// alphabet), semigroup equations, and finitely presented semigroups with
// zero, together with an equational-closure semidecision procedure for the
// word problem.
//
// This is the substrate for the Main Lemma of Gurevich & Lewis (1982): the
// lemma concerns formulas
//
//	x1 = y1 & ... & xn = yn  ==>  A0 = 0
//
// over an alphabet S containing the distinguished symbols A0 and 0, where
// the zero-absorption equations A·0 = 0 and 0·A = 0 for every A in S appear
// among the antecedents.
package words

import (
	"fmt"
	"strings"
)

// Symbol is an index into an Alphabet. Symbols are small non-negative
// integers; the zero value is the first symbol of its alphabet.
type Symbol int

// Alphabet is a finite, ordered set of named generator symbols with two
// distinguished members: A0 (the source symbol of the word problem) and Zero
// (the symbol that the presentations force to be a semigroup zero).
//
// Alphabets are immutable once built; Extend returns a fresh alphabet.
type Alphabet struct {
	names []string
	index map[string]Symbol
	a0    Symbol
	zero  Symbol
}

// NewAlphabet builds an alphabet from the given symbol names. The names a0
// and zero must appear in names and must be distinct.
func NewAlphabet(names []string, a0, zero string) (*Alphabet, error) {
	if a0 == zero {
		return nil, fmt.Errorf("words: A0 and zero must be distinct symbols (both %q)", a0)
	}
	a := &Alphabet{
		names: make([]string, len(names)),
		index: make(map[string]Symbol, len(names)),
		a0:    -1,
		zero:  -1,
	}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("words: empty symbol name at position %d", i)
		}
		if strings.ContainsAny(n, " \t\n=*") {
			return nil, fmt.Errorf("words: symbol name %q contains reserved characters", n)
		}
		if _, dup := a.index[n]; dup {
			return nil, fmt.Errorf("words: duplicate symbol name %q", n)
		}
		a.names[i] = n
		a.index[n] = Symbol(i)
	}
	var ok bool
	if a.a0, ok = a.index[a0]; !ok {
		return nil, fmt.Errorf("words: A0 symbol %q not among names", a0)
	}
	if a.zero, ok = a.index[zero]; !ok {
		return nil, fmt.Errorf("words: zero symbol %q not among names", zero)
	}
	return a, nil
}

// MustAlphabet is NewAlphabet that panics on error; for tests and fixtures.
func MustAlphabet(names []string, a0, zero string) *Alphabet {
	a, err := NewAlphabet(names, a0, zero)
	if err != nil {
		panic(err)
	}
	return a
}

// StandardAlphabet returns the alphabet {A0, A1, ..., A(extra), 0} used
// throughout the paper: A0 is the distinguished source symbol and "0" is the
// zero symbol.
func StandardAlphabet(extra int) *Alphabet {
	names := make([]string, 0, extra+2)
	for i := 0; i <= extra; i++ {
		names = append(names, fmt.Sprintf("A%d", i))
	}
	names = append(names, "0")
	return MustAlphabet(names, "A0", "0")
}

// Size returns the number of symbols.
func (a *Alphabet) Size() int { return len(a.names) }

// A0 returns the distinguished source symbol.
func (a *Alphabet) A0() Symbol { return a.a0 }

// Zero returns the distinguished zero symbol.
func (a *Alphabet) Zero() Symbol { return a.zero }

// Name returns the name of s.
func (a *Alphabet) Name(s Symbol) string {
	if int(s) < 0 || int(s) >= len(a.names) {
		return fmt.Sprintf("?%d", int(s))
	}
	return a.names[s]
}

// Symbol looks up a symbol by name.
func (a *Alphabet) Symbol(name string) (Symbol, bool) {
	s, ok := a.index[name]
	return s, ok
}

// MustSymbol looks up a symbol by name and panics if absent.
func (a *Alphabet) MustSymbol(name string) Symbol {
	s, ok := a.index[name]
	if !ok {
		panic(fmt.Sprintf("words: no symbol %q in alphabet", name))
	}
	return s
}

// Symbols returns all symbols in order.
func (a *Alphabet) Symbols() []Symbol {
	out := make([]Symbol, len(a.names))
	for i := range a.names {
		out[i] = Symbol(i)
	}
	return out
}

// Names returns a copy of the symbol names in order.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// Contains reports whether s is a symbol of this alphabet.
func (a *Alphabet) Contains(s Symbol) bool {
	return int(s) >= 0 && int(s) < len(a.names)
}

// Extend returns a new alphabet with the given extra symbol appended, along
// with the new symbol. The distinguished symbols are unchanged.
func (a *Alphabet) Extend(name string) (*Alphabet, Symbol, error) {
	if _, dup := a.index[name]; dup {
		return nil, 0, fmt.Errorf("words: symbol %q already present", name)
	}
	names := make([]string, len(a.names), len(a.names)+1)
	copy(names, a.names)
	names = append(names, name)
	b, err := NewAlphabet(names, a.names[a.a0], a.names[a.zero])
	if err != nil {
		return nil, 0, err
	}
	return b, Symbol(len(names) - 1), nil
}

// FreshName returns a symbol name based on prefix that is not yet in the
// alphabet.
func (a *Alphabet) FreshName(prefix string) string {
	if _, taken := a.index[prefix]; !taken {
		return prefix
	}
	for i := 0; ; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if _, taken := a.index[n]; !taken {
			return n
		}
	}
}

// String renders the alphabet as {name, name, ...} marking the
// distinguished symbols.
func (a *Alphabet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range a.names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n)
		switch Symbol(i) {
		case a.a0:
			b.WriteString("(=A0)")
		case a.zero:
			b.WriteString("(=zero)")
		}
	}
	b.WriteByte('}')
	return b.String()
}

package words

import (
	"fmt"
	"sort"
)

// Normalization is the result of converting a presentation to (2,1) normal
// form, in which every equation has a length-2 left side and a length-1
// right side. This is the form the Gurevich–Lewis reduction consumes: each
// normalized equation AB = C yields the four dependencies D1–D4 of Fig. 3.
//
// The conversion is conservative in both directions of the Main Lemma:
//
//   - the implication "equations ⟹ A0 = 0" is equationally derivable from
//     the original presentation iff it is derivable from the normalized one;
//   - the original presentation has a finite cancellation model without
//     identity in which A0 ≠ 0 iff the normalized one does (new symbols are
//     definitional: each denotes a product of original generators).
//
// Alias equations A = B between single symbols are handled by substituting a
// canonical representative; Aliases records the substitution. Longer
// equations are chain-decomposed through fresh definitional symbols;
// Definitions records, for each fresh symbol, the word over the ORIGINAL
// alphabet that it denotes.
type Normalization struct {
	// Presentation is the normalized (2,1) presentation over Alphabet.
	Presentation *Presentation
	// Original is the input presentation.
	Original *Presentation
	// Aliases maps original symbols to their canonical representative
	// (identity for non-aliased symbols).
	Aliases map[Symbol]Symbol
	// Definitions maps each fresh symbol of the normalized alphabet to the
	// word over the original alphabet it denotes.
	Definitions map[Symbol]Word
	// GoalForced reports that the alias analysis already identified A0 with
	// 0, so the goal A0 = 0 is trivially derivable; the normalized
	// presentation then contains an explicit two-step derivation gadget.
	GoalForced bool
}

// Normalize converts p to (2,1) normal form. The zero-absorption equations
// are added if missing (they are already (2,1)).
func Normalize(p *Presentation) (*Normalization, error) {
	p = p.WithZeroEquations()
	a := p.Alphabet

	// Phase 1: alias analysis over (1,1) equations via union-find.
	parent := make([]Symbol, a.Size())
	for i := range parent {
		parent[i] = Symbol(i)
	}
	var find func(Symbol) Symbol
	find = func(s Symbol) Symbol {
		if parent[s] != s {
			parent[s] = find(parent[s])
		}
		return parent[s]
	}
	union := func(x, y Symbol) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for _, e := range p.Equations {
		if len(e.LHS) == 1 && len(e.RHS) == 1 && e.LHS[0] != e.RHS[0] {
			union(e.LHS[0], e.RHS[0])
		}
	}
	// Choose representatives: zero wins, then A0, then the lowest index.
	// Collect classes first.
	classes := make(map[Symbol][]Symbol)
	for _, s := range a.Symbols() {
		classes[find(s)] = append(classes[find(s)], s)
	}
	rep := make(map[Symbol]Symbol, a.Size())
	goalForced := false
	for root, members := range classes {
		best := members[0]
		hasZero, hasA0 := false, false
		for _, m := range members {
			if m == a.Zero() {
				hasZero = true
			}
			if m == a.A0() {
				hasA0 = true
			}
			if m < best {
				best = m
			}
		}
		switch {
		case hasZero:
			best = a.Zero()
		case hasA0:
			best = a.A0()
		}
		if hasZero && hasA0 {
			goalForced = true
		}
		_ = root
		for _, m := range members {
			rep[m] = best
		}
	}
	subst := func(w Word) Word {
		out := make(Word, len(w))
		for i, s := range w {
			out[i] = rep[s]
		}
		return out
	}

	n := &Normalization{
		Original:    p,
		Aliases:     rep,
		Definitions: make(map[Symbol]Word),
		GoalForced:  goalForced,
	}

	// Phase 2: substitute aliases, drop trivial equations, and collect the
	// equations still needing decomposition.
	curAlphabet := a
	var outEqs []Equation
	type pending struct{ lhs, rhs Word }
	var todo []pending
	seen := make(map[string]bool)
	addEq := func(e Equation) {
		if e.IsTrivial() || seen[e.Key()] {
			return
		}
		seen[e.Key()] = true
		outEqs = append(outEqs, e)
	}
	for _, e := range p.Equations {
		lhs, rhs := subst(e.LHS), subst(e.RHS)
		if lhs.Equal(rhs) {
			continue
		}
		// Orient: longer side on the left; on ties keep as given.
		if len(lhs) < len(rhs) {
			lhs, rhs = rhs, lhs
		}
		switch {
		case len(lhs) == 1 && len(rhs) == 1:
			// Fully handled by aliasing.
			continue
		case len(lhs) == 2 && len(rhs) == 1:
			addEq(Eq(lhs, rhs))
		default:
			todo = append(todo, pending{lhs, rhs})
		}
	}

	// Phase 3: chain-decompose long sides through definitional symbols.
	// defSym memoizes, per word (over the current alphabet, keyed by its
	// original-alphabet expansion), the symbol defined to denote it.
	defSym := make(map[string]Symbol)
	// expand rewrites a word over the extended alphabet into the original
	// alphabet by replacing definitional symbols with their definitions.
	expand := func(w Word) Word {
		out := make(Word, 0, len(w))
		for _, s := range w {
			if d, ok := n.Definitions[s]; ok {
				out = append(out, d...)
			} else {
				out = append(out, s)
			}
		}
		return out
	}
	// reduceToSymbol returns a symbol denoting w (|w| >= 1), emitting the
	// definitional chain equations as needed.
	var reduceToSymbol func(w Word) (Symbol, error)
	reduceToSymbol = func(w Word) (Symbol, error) {
		if len(w) == 1 {
			return w[0], nil
		}
		key := expand(w).Key()
		if s, ok := defSym[key]; ok {
			return s, nil
		}
		pre, err := reduceToSymbol(w[:len(w)-1])
		if err != nil {
			return 0, err
		}
		name := curAlphabet.FreshName("G")
		na, fresh, err := curAlphabet.Extend(name)
		if err != nil {
			return 0, err
		}
		curAlphabet = na
		n.Definitions[fresh] = expand(w)
		defSym[key] = fresh
		addEq(Eq(W(pre, w[len(w)-1]), W(fresh)))
		return fresh, nil
	}
	// reduceToPair returns (x, y) such that xy denotes w, |w| >= 2.
	reduceToPair := func(w Word) (Symbol, Symbol, error) {
		if len(w) == 2 {
			return w[0], w[1], nil
		}
		pre, err := reduceToSymbol(w[:len(w)-1])
		if err != nil {
			return 0, 0, err
		}
		return pre, w[len(w)-1], nil
	}
	for _, pe := range todo {
		// |lhs| >= 2 here (orientation), rhs arbitrary >= 1.
		x1, x2, err := reduceToPair(pe.lhs)
		if err != nil {
			return nil, err
		}
		rhsSym, err := reduceToSymbol(pe.rhs)
		if err != nil {
			return nil, err
		}
		e := Eq(W(x1, x2), W(rhsSym))
		if !e.IsTrivial() {
			addEq(e)
		}
	}

	// Phase 4: if aliasing forced A0 = 0, add an explicit (2,1) derivation
	// gadget c·c = A0, c·c = 0 so that the goal remains derivable in the
	// normalized presentation (whose equations no longer mention the alias).
	if goalForced {
		name := curAlphabet.FreshName("G")
		na, fresh, err := curAlphabet.Extend(name)
		if err != nil {
			return nil, err
		}
		curAlphabet = na
		n.Definitions[fresh] = W(a.Zero())
		addEq(Eq(W(fresh, fresh), W(a.A0())))
		addEq(Eq(W(fresh, fresh), W(a.Zero())))
	}

	// The extended alphabet needs zero equations for the fresh symbols too.
	np, err := NewPresentation(curAlphabet, outEqs)
	if err != nil {
		return nil, err
	}
	np = np.WithZeroEquations()
	// Deterministic order: sort equations for reproducibility.
	sort.SliceStable(np.Equations, func(i, j int) bool {
		return np.Equations[i].Key() < np.Equations[j].Key()
	})
	if !np.IsTwoOne() {
		return nil, fmt.Errorf("words: internal error: normalization produced a non-(2,1) equation")
	}
	n.Presentation = np
	return n, nil
}

// ExpandWord rewrites a word over the normalized alphabet into the original
// alphabet, replacing definitional symbols by the words they denote and
// aliased symbols by themselves (aliases map original symbols only).
func (n *Normalization) ExpandWord(w Word) Word {
	out := make(Word, 0, len(w))
	for _, s := range w {
		if d, ok := n.Definitions[s]; ok {
			out = append(out, d...)
		} else {
			out = append(out, s)
		}
	}
	return out
}

// ApplyAliases rewrites a word over the original alphabet through the alias
// substitution chosen by the normalization.
func (n *Normalization) ApplyAliases(w Word) Word {
	out := make(Word, len(w))
	for i, s := range w {
		if r, ok := n.Aliases[s]; ok {
			out[i] = r
		} else {
			out[i] = s
		}
	}
	return out
}

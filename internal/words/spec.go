package words

import (
	"fmt"
	"strings"
)

// ParseSpec reads a complete presentation from a self-contained textual
// spec, the format used by the command-line tools:
//
//	# comment
//	symbols: A0 b c 0
//	a0: A0          # optional; defaults to the symbol named A0
//	zero: 0         # optional; defaults to the symbol named 0
//	b c = A0
//	b c = 0
//
// Zero-absorption equations are added automatically.
func ParseSpec(spec string) (*Presentation, error) {
	var symbolNames []string
	a0Name, zeroName := "A0", "0"
	var eqLines []string
	for ln, raw := range strings.Split(spec, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "symbols:"):
			symbolNames = strings.Fields(strings.TrimPrefix(line, "symbols:"))
		case strings.HasPrefix(line, "a0:"):
			a0Name = strings.TrimSpace(strings.TrimPrefix(line, "a0:"))
		case strings.HasPrefix(line, "zero:"):
			zeroName = strings.TrimSpace(strings.TrimPrefix(line, "zero:"))
		case strings.Contains(line, "="):
			eqLines = append(eqLines, line)
		default:
			return nil, fmt.Errorf("words: spec line %d: cannot parse %q", ln+1, raw)
		}
	}
	if len(symbolNames) == 0 {
		return nil, fmt.Errorf("words: spec has no 'symbols:' line")
	}
	a, err := NewAlphabet(symbolNames, a0Name, zeroName)
	if err != nil {
		return nil, err
	}
	p, err := ParsePresentation(a, strings.Join(eqLines, "\n"))
	if err != nil {
		return nil, err
	}
	return p.WithZeroEquations(), nil
}

// FormatSpec renders a presentation in the ParseSpec format (omitting the
// auto-added zero equations for brevity when omitZero is set).
func FormatSpec(p *Presentation, omitZero bool) string {
	var b strings.Builder
	b.WriteString("symbols: " + strings.Join(p.Alphabet.Names(), " ") + "\n")
	b.WriteString("a0: " + p.Alphabet.Name(p.Alphabet.A0()) + "\n")
	b.WriteString("zero: " + p.Alphabet.Name(p.Alphabet.Zero()) + "\n")
	zeroKeys := make(map[string]bool)
	if omitZero {
		for _, e := range ZeroEquations(p.Alphabet) {
			zeroKeys[e.Key()] = true
		}
	}
	for _, e := range p.Equations {
		if zeroKeys[e.Key()] {
			continue
		}
		b.WriteString(e.Format(p.Alphabet) + "\n")
	}
	return b.String()
}

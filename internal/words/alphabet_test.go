package words

import (
	"strings"
	"testing"
)

func TestNewAlphabetBasics(t *testing.T) {
	a, err := NewAlphabet([]string{"A0", "B", "0"}, "A0", "0")
	if err != nil {
		t.Fatalf("NewAlphabet: %v", err)
	}
	if a.Size() != 3 {
		t.Errorf("Size = %d, want 3", a.Size())
	}
	if a.Name(a.A0()) != "A0" {
		t.Errorf("A0 name = %q", a.Name(a.A0()))
	}
	if a.Name(a.Zero()) != "0" {
		t.Errorf("zero name = %q", a.Name(a.Zero()))
	}
	if s, ok := a.Symbol("B"); !ok || a.Name(s) != "B" {
		t.Errorf("Symbol(B) = %v, %v", s, ok)
	}
	if _, ok := a.Symbol("missing"); ok {
		t.Error("Symbol(missing) should not exist")
	}
}

func TestNewAlphabetErrors(t *testing.T) {
	cases := []struct {
		names    []string
		a0, zero string
	}{
		{[]string{"A0", "0"}, "A0", "A0"},         // a0 == zero
		{[]string{"A0", "A0", "0"}, "A0", "0"},    // duplicate
		{[]string{"A0", "", "0"}, "A0", "0"},      // empty name
		{[]string{"A0", "x y", "0"}, "A0", "0"},   // reserved char
		{[]string{"B", "0"}, "A0", "0"},           // missing a0
		{[]string{"A0", "B"}, "A0", "0"},          // missing zero
		{[]string{"A0", "a=b", "0"}, "A0", "0"},   // reserved '='
		{[]string{"A0", "st*ar", "0"}, "A0", "0"}, // reserved '*'
	}
	for i, c := range cases {
		if _, err := NewAlphabet(c.names, c.a0, c.zero); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStandardAlphabet(t *testing.T) {
	a := StandardAlphabet(3)
	if a.Size() != 5 {
		t.Fatalf("Size = %d, want 5 (A0..A3, 0)", a.Size())
	}
	if got := a.Name(a.A0()); got != "A0" {
		t.Errorf("A0 = %q", got)
	}
	if got := a.Name(a.Zero()); got != "0" {
		t.Errorf("zero = %q", got)
	}
	for _, n := range []string{"A1", "A2", "A3"} {
		if _, ok := a.Symbol(n); !ok {
			t.Errorf("missing %s", n)
		}
	}
}

func TestAlphabetExtendAndFresh(t *testing.T) {
	a := StandardAlphabet(1)
	b, s, err := a.Extend("E")
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if b.Name(s) != "E" {
		t.Errorf("new symbol name = %q", b.Name(s))
	}
	if a.Size() != 3 {
		t.Errorf("original alphabet mutated: size %d", a.Size())
	}
	if b.Size() != 4 {
		t.Errorf("extended size = %d", b.Size())
	}
	// Distinguished symbols survive.
	if b.Name(b.A0()) != "A0" || b.Name(b.Zero()) != "0" {
		t.Errorf("distinguished symbols lost: %s %s", b.Name(b.A0()), b.Name(b.Zero()))
	}
	if _, _, err := b.Extend("E"); err == nil {
		t.Error("duplicate Extend should fail")
	}
	fresh := b.FreshName("E")
	if fresh == "E" {
		t.Error("FreshName returned taken name")
	}
	if _, taken := b.Symbol(fresh); taken {
		t.Errorf("FreshName %q already in alphabet", fresh)
	}
}

func TestAlphabetString(t *testing.T) {
	a := StandardAlphabet(0)
	s := a.String()
	if !strings.Contains(s, "A0(=A0)") || !strings.Contains(s, "0(=zero)") {
		t.Errorf("String = %q, want distinguished markers", s)
	}
}

func TestAlphabetContains(t *testing.T) {
	a := StandardAlphabet(0)
	if !a.Contains(a.A0()) || !a.Contains(a.Zero()) {
		t.Error("Contains false for members")
	}
	if a.Contains(Symbol(-1)) || a.Contains(Symbol(99)) {
		t.Error("Contains true for non-members")
	}
}

func TestMustSymbolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSymbol should panic on unknown name")
		}
	}()
	StandardAlphabet(0).MustSymbol("nope")
}

package words

import (
	"math/rand"
	"strings"
	"templatedep/internal/budget"
	"testing"
	"testing/quick"
)

func TestDeriveChain(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		p := ChainPresentation(n)
		res := DeriveGoal(p, DefaultClosureOptions())
		if res.Verdict != Derivable {
			t.Fatalf("Chain(%d): verdict %v", n, res.Verdict)
		}
		if err := res.Derivation.Validate(p); err != nil {
			t.Fatalf("Chain(%d): invalid derivation: %v", n, err)
		}
		if got := res.Derivation.Len(); got != 2*n {
			t.Errorf("Chain(%d): derivation length %d, want %d", n, got, 2*n)
		}
	}
}

func TestDeriveTwoStep(t *testing.T) {
	p := TwoStepPresentation()
	res := DeriveGoal(p, DefaultClosureOptions())
	if res.Verdict != Derivable {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Derivation.Len() != 2 {
		t.Errorf("derivation length %d, want 2", res.Derivation.Len())
	}
	if err := res.Derivation.Validate(p); err != nil {
		t.Error(err)
	}
	// The chain must pass through the two-symbol word b·c.
	ws := res.Derivation.Words()
	if len(ws) != 3 || ws[1].Len() != 2 {
		t.Errorf("unexpected chain %v", ws)
	}
}

func TestDeriveNotDerivable(t *testing.T) {
	// PowerPresentation: class of A0 is {A0} plus nothing reachable without
	// growing; with a length cap the search stays finite. Expansions exist
	// (B -> A0·A0 etc.), so cap lengths and expect Unknown OR run uncapped
	// with enough budget: the class of A0 is actually infinite? No: A0 can
	// be rewritten only by equations whose side matches. A0 matches no LHS
	// and no RHS except... A0·A0 = B requires two symbols. So the class of
	// the single-symbol word A0 is {A0} alone: definitively NotDerivable.
	p := PowerPresentation()
	res := DeriveGoal(p, DefaultClosureOptions())
	if res.Verdict != NotDerivable {
		t.Fatalf("verdict %v (explored %d)", res.Verdict, res.WordsExplored)
	}
	if res.WordsExplored != 1 {
		t.Errorf("explored %d words, want 1", res.WordsExplored)
	}
}

func TestDeriveIdempotentGapUnknown(t *testing.T) {
	// A0 = A0·A0 = A0·A0·A0 = ...: infinite class, never reaching 0. A
	// budgeted search must return Unknown.
	p := IdempotentGapPresentation()
	res := DeriveGoal(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 200})})
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.WordsExplored < 150 {
		t.Errorf("explored only %d words", res.WordsExplored)
	}
}

func TestDeriveLengthCapTruncates(t *testing.T) {
	p := IdempotentGapPresentation()
	res := DeriveGoal(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 100000}), LengthCap: 4})
	if res.Verdict != Unknown || !res.Truncated {
		t.Fatalf("verdict %v truncated %v, want Unknown+truncated", res.Verdict, res.Truncated)
	}
}

func TestDeriveReflexive(t *testing.T) {
	p := PowerPresentation()
	w := W(p.Alphabet.A0())
	res := Derive(p, w, w, DefaultClosureOptions())
	if res.Verdict != Derivable || res.Derivation.Len() != 0 {
		t.Fatalf("reflexive derivation wrong: %v", res)
	}
	if err := res.Derivation.Validate(p); err != nil {
		t.Error(err)
	}
}

func TestDeriveEmptyWords(t *testing.T) {
	p := PowerPresentation()
	if res := Derive(p, Word{}, W(0), DefaultClosureOptions()); res.Verdict != NotDerivable {
		t.Errorf("empty source: %v", res.Verdict)
	}
}

func TestDerivationValidateRejectsCorruption(t *testing.T) {
	p := ChainPresentation(1)
	res := DeriveGoal(p, DefaultClosureOptions())
	if res.Verdict != Derivable {
		t.Fatal("setup failed")
	}
	d := *res.Derivation
	// Corrupt the equation index.
	bad := d
	bad.Steps = append([]Step(nil), d.Steps...)
	bad.Steps[0].Eq = 999
	if err := bad.Validate(p); err == nil {
		t.Error("corrupted eq index accepted")
	}
	// Corrupt a position.
	bad2 := d
	bad2.Steps = append([]Step(nil), d.Steps...)
	bad2.Steps[0].Pos = 7
	if err := bad2.Validate(p); err == nil {
		t.Error("corrupted position accepted")
	}
	// Corrupt the final word.
	bad3 := d
	bad3.To = W(0, 0, 0)
	if err := bad3.Validate(p); err == nil {
		t.Error("corrupted target accepted")
	}
	// Corrupt a step result.
	bad4 := d
	bad4.Steps = append([]Step(nil), d.Steps...)
	bad4.Steps[0].Result = W(0, 0, 0, 0)
	if err := bad4.Validate(p); err == nil {
		t.Error("corrupted step result accepted")
	}
}

func TestDerivationFormat(t *testing.T) {
	p := TwoStepPresentation()
	res := DeriveGoal(p, DefaultClosureOptions())
	s := res.Derivation.Format(p)
	if !strings.Contains(s, "A0") || !strings.Contains(s, "eq ") {
		t.Errorf("Format = %q", s)
	}
}

func TestEquivalenceClassBudget(t *testing.T) {
	// Class of A0 under {bc=A0, bc=0, zero eqs} is infinite (the zero
	// equations expand 0 -> A0·0 -> A0·A0·0 -> ...), so a budgeted
	// enumeration must report incompleteness while still containing the
	// near neighbourhood of A0.
	p := TwoStepPresentation()
	cls, complete := EquivalenceClass(p, W(p.Alphabet.A0()), ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 50})})
	if complete {
		t.Error("infinite class reported complete")
	}
	if len(cls) == 0 || len(cls) > 50 {
		t.Errorf("class size %d out of budget", len(cls))
	}
	// A0, bc, and 0 must all be present (they are within 2 BFS steps).
	keys := make(map[string]bool, len(cls))
	for _, w := range cls {
		keys[w.Key()] = true
	}
	for _, want := range []Word{W(p.Alphabet.A0()), W(p.Alphabet.Zero()), MustParseWord(p.Alphabet, "b c")} {
		if !keys[want.Key()] {
			t.Errorf("class missing %s", want.Format(p.Alphabet))
		}
	}
}

func TestEquivalenceClassFinite(t *testing.T) {
	// A presentation with only contracting equations in reach: class of A0
	// under PowerPresentation is the singleton {A0}.
	p := PowerPresentation()
	cls, complete := EquivalenceClass(p, W(p.Alphabet.A0()), ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 1000})})
	if !complete || len(cls) != 1 {
		t.Errorf("class = %v (complete=%v), want singleton", cls, complete)
	}
}

// Property: every derivation returned by Derive validates, and BFS yields a
// shortest derivation (length monotone under larger budgets).
func TestDeriveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomPresentation(rng, 2+rng.Intn(2), 2+rng.Intn(3))
		res := DeriveGoal(p, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 1500}), LengthCap: 8})
		if res.Verdict == Derivable {
			if err := res.Derivation.Validate(p); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: derivability is symmetric (u ~ v iff v ~ u).
func TestDeriveSymmetry(t *testing.T) {
	p := ChainPresentation(2)
	a0 := W(p.Alphabet.A0())
	z := W(p.Alphabet.Zero())
	fwd := Derive(p, a0, z, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 20000})})
	bwd := Derive(p, z, a0, ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 20000})})
	if fwd.Verdict != Derivable || bwd.Verdict != Derivable {
		t.Fatalf("fwd %v bwd %v", fwd.Verdict, bwd.Verdict)
	}
	if err := bwd.Derivation.Validate(p); err != nil {
		t.Error(err)
	}
}

// The decidable fragment of the corpus: multivalued dependencies (MVDs)
// and independence atoms over a single typed schema, rendered as TDs.
//
// Both classes embed into template dependencies exactly (see the
// encodings below), both have complete finite axiomatizations with
// finitely controllable countermodels, and both are decidable by small
// saturation procedures (oracle.go) that never touch the chase or any
// search engine — which is what makes them usable as a differential
// ground-truth oracle. DESIGN.md §15 spells out the soundness argument
// and why this fragment stands in for the issue's "inclusion/FD"
// suggestion: typed TDs are tuple-generating and single-relation, so
// INDs (cross-relation) and FDs (equality-generating) have no TD form,
// while MVDs and independence atoms are the canonical decidable classes
// that do.
package corpus

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

// colMask is a set of columns of a schema of width <= 8, one bit per
// column index.
type colMask uint32

func (m colMask) has(a int) bool { return m&(1<<a) != 0 }

func (m colMask) names(s *relation.Schema) string {
	if m == 0 {
		return "∅"
	}
	var b strings.Builder
	for a := 0; a < s.Width(); a++ {
		if m.has(a) {
			b.WriteString(s.Name(relation.Attr(a)))
		}
	}
	return b.String()
}

// mvdTD renders the MVD X ↠ Y over s as a full TD:
//
//	t1 = x on every column
//	t2 = x on X, y elsewhere
//	=>   x on X ∪ Y, y on the rest
//
// Two tuples agreeing on X force the tuple that keeps t1's values on
// X ∪ Y and takes t2's on the complement — the textbook MVD shape. The
// TD is full (no existential column), so the chase terminates on it and
// finite and unrestricted implication coincide.
func mvdTD(s *relation.Schema, x, y colMask, name string) *td.TD {
	w := s.Width()
	t1 := make(tableau.VarTuple, w)
	t2 := make(tableau.VarTuple, w)
	concl := make(tableau.VarTuple, w)
	for a := 0; a < w; a++ {
		t1[a] = 0
		if x.has(a) {
			t2[a] = 0
		} else {
			t2[a] = 1
		}
		if x.has(a) || y.has(a) {
			concl[a] = 0
		} else {
			concl[a] = 1
		}
	}
	return td.MustNew(s, []tableau.VarTuple{t1, t2}, concl, name)
}

// atomTD renders the independence atom X ⊥ Y (X, Y nonempty and
// disjoint) over s as a TD:
//
//	t1 = x on every column
//	t2 = y on every column
//	=>   x on X, y on Y, fresh existential z elsewhere
//
// For every ordered pair of tuples there must be a tuple agreeing with
// the first on X and the second on Y — the cross-product semantics of
// the atom. Columns outside X ∪ Y are existential, so the TD is
// embedded unless X ∪ Y covers the schema.
func atomTD(s *relation.Schema, x, y colMask, name string) *td.TD {
	w := s.Width()
	t1 := make(tableau.VarTuple, w)
	t2 := make(tableau.VarTuple, w)
	concl := make(tableau.VarTuple, w)
	for a := 0; a < w; a++ {
		t1[a] = 0
		t2[a] = 1
		switch {
		case x.has(a):
			concl[a] = 0
		case y.has(a):
			concl[a] = 1
		default:
			concl[a] = 2 // fresh per column: antecedents use 0 and 1 only
		}
	}
	return td.MustNew(s, []tableau.VarTuple{t1, t2}, concl, name)
}

// sides is one dependency of either fragment class, as column masks.
type sides struct{ x, y colMask }

// genOracle alternates MVD and independence-atom instances. Each carries
// the fragment decider's verdict as ground truth.
func genOracle(rng *rand.Rand, idx int) Instance {
	w := 3 + rng.Intn(3) // width 3..5
	if idx%2 == 0 {
		// MVDs render as full TDs, so the chase terminates and decides
		// them in both directions at any width the mask type allows.
		return genOracleMVD(rng, schemaOfWidth(w))
	}
	// Independence atoms embed with existential columns, so their
	// "not implied" direction settles only through the finite-database
	// enumerator, whose search space is exponential in schema width; at
	// width 5 a countermodel can sit beyond any fuzzing-scale node
	// budget. Atoms therefore stay at width <= 4 — the oracle family
	// must always reach a definitive engine consensus.
	if w > 4 {
		w = 4
	}
	return genOracleAtom(rng, schemaOfWidth(w))
}

func genOracleMVD(rng *rand.Rand, s *relation.Schema) Instance {
	w := s.Width()
	n := 1 + rng.Intn(3)
	mvds := make([]sides, n)
	deps := make([]*td.TD, n)
	var desc []string
	for j := range mvds {
		x := colMask(rng.Intn(1 << w))
		y := colMask(rng.Intn(1 << w))
		mvds[j] = sides{x, y}
		deps[j] = mvdTD(s, x, y, fmt.Sprintf("mvd%d", j))
		desc = append(desc, fmt.Sprintf("%s↠%s", x.names(s), y.names(s)))
	}
	goal := sides{colMask(rng.Intn(1 << w)), colMask(rng.Intn(1 << w))}
	verdict := OracleNotImplied
	if mvdImplies(w, mvds, goal) {
		verdict = OracleImplied
	}
	return Instance{
		Family: FamilyOracle,
		Kind:   KindTD,
		Label: fmt.Sprintf("mvd{%s}⊢%s↠%s", strings.Join(desc, ","),
			goal.x.names(s), goal.y.names(s)),
		Schema: s,
		Deps:   deps,
		Goal:   mvdTD(s, goal.x, goal.y, "goal"),
		Oracle: verdict,
	}
}

func genOracleAtom(rng *rand.Rand, s *relation.Schema) Instance {
	w := s.Width()
	all := colMask(1<<w) - 1
	// randPair draws X nonempty and proper, Y a nonempty subset of the
	// complement — disjoint by construction.
	randPair := func() sides {
		x := colMask(1 + rng.Intn(int(all)-1))
		y := randNonemptySubset(rng, all&^x)
		return sides{x, y}
	}
	n := 1 + rng.Intn(3)
	atoms := make([]sides, n)
	deps := make([]*td.TD, n)
	var desc []string
	for j := range atoms {
		atoms[j] = randPair()
		deps[j] = atomTD(s, atoms[j].x, atoms[j].y, fmt.Sprintf("ind%d", j))
		desc = append(desc, fmt.Sprintf("%s⊥%s", atoms[j].x.names(s), atoms[j].y.names(s)))
	}
	goal := randPair()
	verdict := OracleNotImplied
	if atomImplies(w, atoms, goal) {
		verdict = OracleImplied
	}
	return Instance{
		Family: FamilyOracle,
		Kind:   KindTD,
		Label: fmt.Sprintf("ind{%s}⊢%s⊥%s", strings.Join(desc, ","),
			goal.x.names(s), goal.y.names(s)),
		Schema: s,
		Deps:   deps,
		Goal:   atomTD(s, goal.x, goal.y, "goal"),
		Oracle: verdict,
	}
}

// randNonemptySubset draws a uniform-ish nonempty subset of mask
// (mask must be nonempty).
func randNonemptySubset(rng *rand.Rand, mask colMask) colMask {
	sub := colMask(rng.Intn(int(mask)+1)) & mask
	if sub != 0 {
		return sub
	}
	// Fall back to one random bit of mask.
	k := rng.Intn(bits.OnesCount32(uint32(mask)))
	for a := 0; ; a++ {
		if mask.has(a) {
			if k == 0 {
				return 1 << a
			}
			k--
		}
	}
}

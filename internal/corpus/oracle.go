// The fragment ground-truth deciders. Both are direct implementations of
// complete axiomatizations over column bitmasks — no chase, no model
// search, no shared code with any engine — so a disagreement between an
// engine and these procedures is evidence about the engine, not about a
// shared bug.
package corpus

// mvdImplies decides Σ ⊨ X ↠ Y for multivalued dependencies over a
// schema of width w, by Beeri's dependency-basis algorithm: start from
// the single block U − X and repeatedly split any block B against a
// dependency V ↠ W with V ∩ B = ∅, B ∩ W ≠ ∅, and B − W ≠ ∅ into
// B ∩ W and B − W; at the fixpoint the blocks are the dependency basis
// DEP(X), and Σ ⊨ X ↠ Y iff Y − X is a union of blocks. The algorithm
// is complete for MVD implication, and because mvdTD renders MVDs as
// full TDs (terminating chase), finite and unrestricted implication
// coincide on this family — so the oracle is binding in both
// directions.
func mvdImplies(w int, deps []sides, goal sides) bool {
	all := colMask(1<<w) - 1
	need := goal.y &^ goal.x
	if need == 0 {
		return true // trivial: Y ⊆ X
	}
	blocks := []colMask{all &^ goal.x}
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			for i, b := range blocks {
				if b&d.x == 0 && b&d.y != 0 && b&^d.y != 0 {
					blocks[i] = b & d.y
					blocks = append(blocks, b&^d.y)
					changed = true
				}
			}
		}
	}
	var cover colMask
	for _, b := range blocks {
		if b&need != 0 {
			if b&^need != 0 {
				return false // a block straddles Y's boundary
			}
			cover |= b
		}
	}
	return cover == need
}

// atomImplies decides Σ ⊨ X ⊥ Y for independence atoms over a schema of
// width w, by saturating the Geiger–Paz–Pearl axioms:
//
//	trivial:       X ⊥ ∅
//	symmetry:      X ⊥ Y  ⊢  Y ⊥ X
//	decomposition: X ⊥ YZ ⊢  X ⊥ Y
//	exchange:      X ⊥ Y, XY ⊥ Z ⊢ X ⊥ YZ
//
// This system is complete for independence atoms over database
// relations (Kontinen–Link–Väänänen; see PAPERS.md), and the
// completeness proof builds finite countermodels, so "not derivable"
// certifies a finite counterexample — the oracle is binding in both
// directions here too. The state space is all ordered pairs of disjoint
// column sets (≤ 2^w · 2^w cells at w ≤ 5), saturated to a fixpoint.
func atomImplies(w int, deps []sides, goal sides) bool {
	n := 1 << w
	have := make([][]bool, n)
	for x := range have {
		have[x] = make([]bool, n)
		have[x][0] = true // trivial: X ⊥ ∅
		have[0][x] = true
	}
	for _, d := range deps {
		have[d.x][d.y] = true
	}
	for changed := true; changed; {
		changed = false
		mark := func(x, y colMask) {
			if !have[x][y] {
				have[x][y] = true
				changed = true
			}
		}
		for x := colMask(0); int(x) < n; x++ {
			for y := colMask(0); int(y) < n; y++ {
				if !have[x][y] || x&y != 0 {
					continue
				}
				mark(y, x) // symmetry
				// decomposition on both sides (via symmetry): every
				// subset of y stays independent of x.
				for sub := y; ; sub = (sub - 1) & y {
					mark(x, sub)
					if sub == 0 {
						break
					}
				}
				// exchange: x ⊥ y and xy ⊥ z gives x ⊥ yz.
				for z := colMask(0); int(z) < n; z++ {
					if have[x|y][z] && (x|y)&z == 0 {
						mark(x, y|z)
					}
				}
			}
		}
	}
	return have[goal.x][goal.y]
}

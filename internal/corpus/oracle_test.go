package corpus

import (
	"testing"

	"templatedep/internal/relation"
)

// Column masks over schema A, B, C, (D): bit a = column index.
const (
	cA colMask = 1 << iota
	cB
	cC
	cD
)

// TestMVDOraclePinned pins the dependency-basis decider against
// hand-derived MVD implication verdicts.
func TestMVDOraclePinned(t *testing.T) {
	cases := []struct {
		name string
		w    int
		deps []sides
		goal sides
		want bool
	}{
		// Complementation: over ABC, A↠B forces A↠C.
		{"complementation", 3, []sides{{cA, cB}}, sides{cA, cC}, true},
		// ...but not over ABCD, where the complement of B is CD.
		{"no-complement-w4", 4, []sides{{cA, cB}}, sides{cA, cC}, false},
		// Transitivity: A↠B, B↠C ⊢ A↠(C−B) = C.
		{"transitivity", 4, []sides{{cA, cB}, {cB, cC}}, sides{cA, cC}, true},
		// X ∪ Y = U is trivially implied.
		{"trivial-cover", 3, nil, sides{cA, cB | cC}, true},
		// Y ⊆ X is trivially implied.
		{"trivial-subset", 3, nil, sides{cA | cB, cA}, true},
		// Nothing follows from nothing.
		{"empty-sigma", 3, nil, sides{cA, cB}, false},
		// Augmentation does not reverse: AB↠C gives nothing about A↠C.
		{"no-deaugment", 4, []sides{{cA | cB, cC}}, sides{cA, cC}, false},
		// MVDs do not decompose their right side: A↠BC ⊬ A↠B.
		{"no-decomposition", 4, []sides{{cA, cB | cC}}, sides{cA, cB}, false},
		// Augmentation holds: A↠B ⊢ AB↠C over ABC (trivially, C = U−AB).
		{"augment-trivial", 3, []sides{{cA, cB}}, sides{cA | cB, cC}, true},
	}
	for _, tc := range cases {
		if got := mvdImplies(tc.w, tc.deps, tc.goal); got != tc.want {
			t.Errorf("%s: mvdImplies = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestAtomOraclePinned pins the Geiger–Paz–Pearl saturation against
// hand-derived independence-atom verdicts.
func TestAtomOraclePinned(t *testing.T) {
	cases := []struct {
		name string
		w    int
		deps []sides
		goal sides
		want bool
	}{
		// Decomposition: A⊥BC ⊢ A⊥B.
		{"decomposition", 3, []sides{{cA, cB | cC}}, sides{cA, cB}, true},
		// Symmetry: A⊥B ⊢ B⊥A.
		{"symmetry", 3, []sides{{cA, cB}}, sides{cB, cA}, true},
		// Exchange: A⊥B, AB⊥C ⊢ A⊥BC.
		{"exchange", 3, []sides{{cA, cB}, {cA | cB, cC}}, sides{cA, cB | cC}, true},
		// No transfer to a fresh column: A⊥B ⊬ A⊥C. The 2-tuple relation
		// {(0,0,0), (1,0,1)} satisfies A⊥B and violates A⊥C.
		{"no-transfer", 3, []sides{{cA, cB}}, sides{cA, cC}, false},
		// Independence is not transitive: A⊥B, B⊥C ⊬ A⊥C.
		{"no-transitivity", 4, []sides{{cA, cB}, {cB, cC}}, sides{cA, cC}, false},
		// Nothing follows from nothing.
		{"empty-sigma", 3, nil, sides{cA, cB}, false},
		// Exchange needs the joint premise: A⊥B, A⊥C ⊬ A⊥BC.
		{"no-composition", 3, []sides{{cA, cB}, {cA, cC}}, sides{cA, cB | cC}, false},
		// Derived symmetry + decomposition chain: BC⊥A ⊢ A⊥C.
		{"sym-then-decompose", 3, []sides{{cB | cC, cA}}, sides{cA, cC}, true},
	}
	for _, tc := range cases {
		if got := atomImplies(tc.w, tc.deps, tc.goal); got != tc.want {
			t.Errorf("%s: atomImplies = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestOracleAgainstSemantics cross-checks both deciders against direct
// TD satisfaction on exhaustively enumerated tiny relations: if the
// decider says "not implied", some small relation must satisfy the deps
// and violate the goal... and if it says "implied", no relation of the
// sizes we can afford to enumerate may be a counterexample. This keeps
// the oracle honest without calling any engine.
func TestOracleAgainstSemantics(t *testing.T) {
	insts, err := Generate(Options{Seed: 99, Oracle: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if in.Oracle != OracleImplied {
			continue
		}
		// Soundness spot-check: chase-free, search-free enumeration of
		// relations with 2 tuples over values {0,1} — any counterexample
		// here refutes an "implied" oracle verdict.
		w := in.Schema.Width()
		if w > 4 {
			continue // 2^(2w) grows fast; smoke the small schemas only
		}
		if tinyCounterexample(in, w) {
			t.Errorf("%s (%s): oracle says implied but a 2-tuple relation satisfies the deps and violates the goal", in.ID, in.Label)
		}
	}
}

// tinyCounterexample enumerates all relations of at most 2 tuples over
// {0,1}^w and reports whether one satisfies every dep while violating
// the goal — which would refute an "implied" oracle verdict.
func tinyCounterexample(in Instance, w int) bool {
	nCodes := 1 << w
	build := func(codes ...int) *relation.Instance {
		inst := relation.NewInstance(in.Schema)
		for _, code := range codes {
			t := make(relation.Tuple, w)
			for a := 0; a < w; a++ {
				t[a] = relation.Value((code >> a) & 1)
			}
			inst.MustAdd(t)
		}
		return inst
	}
	for c1 := 0; c1 < nCodes; c1++ {
		for c2 := c1; c2 < nCodes; c2++ {
			inst := build(c1, c2)
			ok := true
			for _, d := range in.Deps {
				if sat, _ := d.Satisfies(inst); !sat {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if sat, _ := in.Goal.Satisfies(inst); !sat {
				return true
			}
		}
	}
	return false
}

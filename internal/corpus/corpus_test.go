package corpus

import (
	"strings"
	"testing"
)

// TestGenerateWorkerIndependent pins the determinism contract: the same
// seed and family counts produce a byte-identical corpus for every
// Workers value.
func TestGenerateWorkerIndependent(t *testing.T) {
	opt := Options{Seed: 42, TM: 6, Random: 10, Oracle: 10}
	var want string
	for _, workers := range []int{1, 2, 4, 7} {
		opt.Workers = workers
		insts, err := Generate(opt)
		if err != nil {
			t.Fatalf("Generate(workers=%d): %v", workers, err)
		}
		var b strings.Builder
		for _, in := range insts {
			b.WriteString(in.Format())
		}
		got := b.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("corpus differs between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestGenerateSeedSensitive: different seeds give different corpora (the
// random families actually consume the seed).
func TestGenerateSeedSensitive(t *testing.T) {
	a, err := Generate(Options{Seed: 1, Random: 8, Oracle: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Options{Seed: 2, Random: 8, Oracle: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Format() != b[i].Format() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical corpora")
	}
}

// TestGenerateComposition checks family assignment, IDs, and that every
// instance is well-formed for its kind.
func TestGenerateComposition(t *testing.T) {
	insts, err := Generate(Options{Seed: 7, TM: 5, Random: 6, Oracle: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 18 {
		t.Fatalf("got %d instances, want 18", len(insts))
	}
	counts := map[Family]int{}
	for _, in := range insts {
		counts[in.Family]++
		switch in.Kind {
		case KindPresentation:
			if in.Pres == nil {
				t.Errorf("%s: presentation instance without a presentation", in.ID)
			}
		case KindTD:
			if in.Schema == nil || len(in.Deps) == 0 || in.Goal == nil {
				t.Errorf("%s: TD instance incomplete", in.ID)
			}
		default:
			t.Errorf("%s: unknown kind %q", in.ID, in.Kind)
		}
		if in.Family == FamilyOracle && in.Oracle == OracleNone {
			t.Errorf("%s: oracle instance without ground truth", in.ID)
		}
		if in.Family != FamilyOracle && in.Oracle != OracleNone {
			t.Errorf("%s: non-oracle instance carries ground truth %q", in.ID, in.Oracle)
		}
	}
	if counts[FamilyTM] != 5 || counts[FamilyRandom] != 6 || counts[FamilyOracle] != 7 {
		t.Fatalf("family composition %v, want tm=5 random=6 oracle=7", counts)
	}
}

// TestOracleFragmentTDShapes: MVD TDs are full (terminating chase);
// independence-atom TDs are embedded unless X ∪ Y covers the schema.
func TestOracleFragmentTDShapes(t *testing.T) {
	s := schemaOfWidth(4)
	mvd := mvdTD(s, 0b0001, 0b0010, "mvd")
	if !mvd.IsFull() {
		t.Errorf("mvdTD produced an embedded TD: %s", mvd.Format())
	}
	atom := atomTD(s, 0b0001, 0b0010, "atom")
	if atom.IsFull() {
		t.Errorf("atomTD(X∪Y ⊂ U) produced a full TD: %s", atom.Format())
	}
	covering := atomTD(s, 0b0011, 0b1100, "atom-cover")
	if !covering.IsFull() {
		t.Errorf("atomTD(X∪Y = U) produced an embedded TD: %s", covering.Format())
	}
}

// Package corpus is a deterministic, seeded scenario generator for the
// differential fuzzing gate (internal/difffuzz). It produces three
// instance families:
//
//   - "tm": TM-derived hard presentations from internal/tm at scaled
//     tape sizes — the paper's own undecidability construction, so the
//     corpus always contains instances the engines cannot fully decide;
//   - "random": random (2,1)-normalized presentations and random TD
//     instances over parameterized schemas (width, antecedent count, and
//     a variable-reuse knob);
//   - "oracle": a decidable fragment — multivalued dependencies and
//     independence atoms rendered as TDs — whose ground truth is computed
//     by an independent axiomatic decider (see oracle.go) that never
//     calls the chase or any search engine.
//
// Determinism contract: the corpus is a pure function of Options.Seed and
// the family counts. Every instance is generated from its own PRNG,
// seeded by a splitmix64-style mix of the corpus seed and the instance's
// global index, and workers write results into their index slot — so the
// corpus is byte-identical for every Options.Workers value (pinned by
// TestGenerateWorkerIndependent).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
	"templatedep/internal/tm"
	"templatedep/internal/words"
)

// Family names a corpus family.
type Family string

const (
	// FamilyTM is the TM-derived hard family (presentations).
	FamilyTM Family = "tm"
	// FamilyRandom is the random presentation / random TD family.
	FamilyRandom Family = "random"
	// FamilyOracle is the decidable fragment with independent ground truth.
	FamilyOracle Family = "oracle"
)

// Kind tells which engine set an instance is run through.
type Kind string

const (
	// KindPresentation instances run the presentation pipeline (reduction,
	// derivation/model-search race, portfolio).
	KindPresentation Kind = "presentation"
	// KindTD instances run the TD-level engines (chase, EID chase,
	// finite-db enumerator, core, portfolio).
	KindTD Kind = "td"
)

// OracleVerdict is the decidable fragment's ground truth: "" when no
// oracle applies (the tm and random families).
type OracleVerdict string

const (
	// OracleNone marks instances without a ground-truth oracle.
	OracleNone OracleVerdict = ""
	// OracleImplied: the fragment decider derives the goal from the deps.
	OracleImplied OracleVerdict = "implied"
	// OracleNotImplied: the decider refutes the implication (and by the
	// fragment's finite controllability, a finite counterexample exists).
	OracleNotImplied OracleVerdict = "not-implied"
)

// Instance is one generated scenario.
type Instance struct {
	// ID is "family/NNN", unique within one corpus.
	ID string
	// Family is the generating family.
	Family Family
	// Kind selects the engine set.
	Kind Kind
	// Label is a human-readable description of the construction.
	Label string

	// Pres is set for KindPresentation instances.
	Pres *words.Presentation

	// Schema, Deps, Goal are set for KindTD instances.
	Schema *relation.Schema
	Deps   []*td.TD
	Goal   *td.TD

	// Oracle is the fragment ground truth (FamilyOracle only).
	Oracle OracleVerdict
}

// Format renders the instance deterministically — the byte-identity
// surface of the determinism contract.
func (in Instance) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s kind=%s label=%s oracle=%s\n", in.ID, in.Kind, in.Label, in.Oracle)
	if in.Pres != nil {
		b.WriteString(in.Pres.Format())
		b.WriteString("\n")
	}
	for _, d := range in.Deps {
		b.WriteString(d.Format())
		b.WriteString("\n")
	}
	if in.Goal != nil {
		b.WriteString(in.Goal.Format())
		b.WriteString("\n")
	}
	return b.String()
}

// Options parameterizes a corpus.
type Options struct {
	// Seed is the corpus seed; the corpus is a pure function of it and
	// the family counts.
	Seed int64
	// TM, Random, Oracle are per-family instance counts.
	TM, Random, Oracle int
	// Workers parallelizes generation; output is identical for every
	// value. <= 0 means 1.
	Workers int

	// MaxSymbols caps the extra (non-distinguished) symbols of a random
	// presentation; <= 0 means 3.
	MaxSymbols int
	// MaxEquations caps the random (2,1) equations per presentation;
	// <= 0 means 4.
	MaxEquations int
	// MaxWidth caps the schema width of a random TD instance; <= 1
	// means 4.
	MaxWidth int
	// MaxAntecedents caps the antecedent rows of a random TD; <= 0
	// means 3.
	MaxAntecedents int
	// VarReuse is the percent chance a random tableau cell reuses an
	// existing variable of its column instead of minting a fresh one;
	// <= 0 means 60.
	VarReuse int
}

func (opt Options) withDefaults() Options {
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	if opt.MaxSymbols <= 0 {
		opt.MaxSymbols = 3
	}
	if opt.MaxEquations <= 0 {
		opt.MaxEquations = 4
	}
	if opt.MaxWidth <= 1 {
		opt.MaxWidth = 4
	}
	if opt.MaxAntecedents <= 0 {
		opt.MaxAntecedents = 3
	}
	if opt.VarReuse <= 0 {
		opt.VarReuse = 60
	}
	return opt
}

// mixSeed derives instance i's PRNG seed from the corpus seed with a
// splitmix64 finalizer, so per-instance streams are independent and the
// assignment is order-free (workers can generate in any order).
func mixSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Generate produces the corpus: opt.TM instances of FamilyTM, then
// opt.Random of FamilyRandom, then opt.Oracle of FamilyOracle, in stable
// index order regardless of Workers.
func Generate(opt Options) ([]Instance, error) {
	opt = opt.withDefaults()
	total := opt.TM + opt.Random + opt.Oracle
	out := make([]Instance, total)
	errs := make([]error, total)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i], errs[i] = generate(opt, i)
			}
		}()
	}
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// generate builds global-index i from its own PRNG.
func generate(opt Options, i int) (Instance, error) {
	rng := rand.New(rand.NewSource(mixSeed(opt.Seed, i)))
	var in Instance
	var err error
	switch {
	case i < opt.TM:
		in, err = genTM(i)
		in.ID = fmt.Sprintf("tm/%03d", i)
	case i < opt.TM+opt.Random:
		idx := i - opt.TM
		in, err = genRandom(rng, idx, opt)
		in.ID = fmt.Sprintf("random/%03d", idx)
	default:
		idx := i - opt.TM - opt.Random
		in = genOracle(rng, idx)
		in.ID = fmt.Sprintf("oracle/%03d", idx)
	}
	return in, err
}

// genTM encodes a rotating set of Turing machines at scaled tape sizes.
// ScanRightAndHalt on 1^n halts in n+1 steps, so n is the hardness knob;
// RunForever instances land in the undecidability gap (underivable goal,
// possibly no finite counterexample) and keep the honest-Unknown path in
// the corpus.
func genTM(idx int) (Instance, error) {
	var (
		m     *tm.TM
		input []int
		label string
	)
	switch idx % 4 {
	case 0:
		n := 1 + (idx/4)%5
		m, input, label = tm.ScanRightAndHalt(), ones(n), fmt.Sprintf("scan-right-1^%d", n)
	case 1:
		m, label = tm.WriteOneAndHalt(), "write-one"
	case 2:
		m, label = tm.FlipFlopAndHalt(), "flip-flop"
	default:
		if idx%8 == 3 {
			m, label = tm.RunForever(), "run-forever"
		} else {
			n := 2 + (idx/8)%4
			m, input, label = tm.ScanRightAndHalt(), ones(n), fmt.Sprintf("scan-right-1^%d", n)
		}
	}
	p, err := tm.EncodePresentation(m, input)
	if err != nil {
		return Instance{}, err
	}
	return Instance{Family: FamilyTM, Kind: KindPresentation, Label: label, Pres: p}, nil
}

func ones(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// genRandom alternates random (2,1) presentations and random TD
// instances.
func genRandom(rng *rand.Rand, idx int, opt Options) (Instance, error) {
	if idx%2 == 0 {
		m := 1 + rng.Intn(opt.MaxSymbols)
		k := 1 + rng.Intn(opt.MaxEquations)
		p := words.RandomPresentation(rng, m, k)
		return Instance{
			Family: FamilyRandom,
			Kind:   KindPresentation,
			Label:  fmt.Sprintf("rand-pres-m%d-k%d", m, k),
			Pres:   p,
		}, nil
	}
	w := 2 + rng.Intn(opt.MaxWidth-1)
	s := schemaOfWidth(w)
	nDeps := 1 + rng.Intn(3)
	deps := make([]*td.TD, nDeps)
	for j := range deps {
		d, err := randomTD(rng, s, opt, fmt.Sprintf("dep%d", j))
		if err != nil {
			return Instance{}, err
		}
		deps[j] = d
	}
	goal, err := randomTD(rng, s, opt, "goal")
	if err != nil {
		return Instance{}, err
	}
	return Instance{
		Family: FamilyRandom,
		Kind:   KindTD,
		Label:  fmt.Sprintf("rand-td-w%d-d%d", w, nDeps),
		Schema: s,
		Deps:   deps,
		Goal:   goal,
	}, nil
}

// randomTD draws a TD over s: 1..MaxAntecedents antecedent rows whose
// cells reuse an existing column variable with probability VarReuse%,
// and a conclusion that reuses an antecedent variable with probability
// 75% (and is existential otherwise).
func randomTD(rng *rand.Rand, s *relation.Schema, opt Options, name string) (*td.TD, error) {
	w := s.Width()
	rows := 1 + rng.Intn(opt.MaxAntecedents)
	used := make([]int, w)
	ants := make([]tableau.VarTuple, rows)
	for r := range ants {
		t := make(tableau.VarTuple, w)
		for a := 0; a < w; a++ {
			if used[a] > 0 && rng.Intn(100) < opt.VarReuse {
				t[a] = tableau.Var(rng.Intn(used[a]))
			} else {
				t[a] = tableau.Var(used[a])
				used[a]++
			}
		}
		ants[r] = t
	}
	concl := make(tableau.VarTuple, w)
	for a := 0; a < w; a++ {
		if rng.Intn(100) < 75 {
			concl[a] = tableau.Var(rng.Intn(used[a]))
		} else {
			concl[a] = tableau.Var(used[a]) // existential
		}
	}
	return td.New(s, ants, concl, name)
}

// schemaAttrNames is the fixed attribute pool for generated TD schemas.
var schemaAttrNames = []string{"A", "B", "C", "D", "E"}

func schemaOfWidth(w int) *relation.Schema {
	return relation.MustSchema(schemaAttrNames[:w]...)
}

// Canon-stability checking: the canonical key of an instance must be
// invariant under exactly the transformations internal/serve's canon
// layer documents. Each mutation below applies only documented-invariant
// transformations, so a key change is a canonicalization bug, never an
// over-eager test.
package difffuzz

import (
	"fmt"
	"math/rand"

	"templatedep/internal/corpus"
	"templatedep/internal/relation"
	"templatedep/internal/serve"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// checkCanon computes the instance's canonical key, then re-keys
// opt.Mutations mutated copies and reports any key drift through
// problem. The mutation stream is seeded from opt.Seed and the case
// index, independent of the corpus seed.
func checkCanon(in corpus.Instance, caseIdx int, opt Options, problem func(kind, format string, args ...any)) error {
	rng := rand.New(rand.NewSource(mutSeed(opt.Seed, caseIdx)))
	if in.Kind == corpus.KindPresentation {
		base := serve.CanonPresentation(in.Pres)
		for m := 0; m < opt.Mutations; m++ {
			mut, err := mutatePresentation(rng, in.Pres)
			if err != nil {
				return fmt.Errorf("difffuzz: %s: mutation %d: %w", in.ID, m, err)
			}
			if got := serve.CanonPresentation(mut); got != base {
				problem("canon", "mutation %d (symbol rename + equation shuffle/flip) changed the key: %q -> %q", m, base, got)
			}
		}
		return nil
	}
	base := serve.CanonInference(in.Deps, in.Goal)
	for m := 0; m < opt.Mutations; m++ {
		deps, goal, err := mutateTDInstance(rng, in.Schema, in.Deps, in.Goal)
		if err != nil {
			return fmt.Errorf("difffuzz: %s: mutation %d: %w", in.ID, m, err)
		}
		if got := serve.CanonInference(deps, goal); got != base {
			problem("canon", "mutation %d (attr rename + dep shuffle/dup + var renumber) changed the key: %q -> %q", m, base, got)
		}
	}
	return nil
}

// mutSeed mixes the mutation seed with the case index (same finalizer as
// the corpus generator, offset so the streams differ).
func mutSeed(seed int64, i int) int64 {
	z := uint64(seed)*0xA24BAED4963EE407 + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// mutatePresentation applies the three invariances CanonPresentation
// documents: rename (and reposition) every non-distinguished symbol,
// permute the equation list, and flip equation orientations.
func mutatePresentation(rng *rand.Rand, p *words.Presentation) (*words.Presentation, error) {
	a := p.Alphabet
	oldNames := a.Names()
	a0Name, zeroName := a.Name(a.A0()), a.Name(a.Zero())
	var others []int
	for i, n := range oldNames {
		if n != a0Name && n != zeroName {
			others = append(others, i)
		}
	}
	newNames := append([]string(nil), oldNames...)
	symMap := make([]words.Symbol, len(oldNames))
	for i := range symMap {
		symMap[i] = words.Symbol(i) // distinguished symbols keep index and name
	}
	perm := rng.Perm(len(others))
	for i, j := range perm {
		// Old symbol others[j] lands at position others[i] under a fresh
		// name (fresh names cannot collide with A0/zero or each other).
		newNames[others[i]] = fmt.Sprintf("g%d", i)
		symMap[others[j]] = words.Symbol(others[i])
	}
	na, err := words.NewAlphabet(newNames, a0Name, zeroName)
	if err != nil {
		return nil, err
	}
	mapWord := func(w words.Word) words.Word {
		out := make(words.Word, len(w))
		for k, s := range w {
			out[k] = symMap[s]
		}
		return out
	}
	eqs := make([]words.Equation, len(p.Equations))
	for i, e := range p.Equations {
		ne := words.Eq(mapWord(e.LHS), mapWord(e.RHS))
		if rng.Intn(2) == 0 {
			ne = ne.Reversed()
		}
		eqs[i] = ne
	}
	rng.Shuffle(len(eqs), func(i, j int) { eqs[i], eqs[j] = eqs[j], eqs[i] })
	return words.NewPresentation(na, eqs)
}

// mutateTDInstance applies the invariances CanonInference documents:
// attribute renaming, dependency-list permutation and duplication, TD
// display renaming, and per-column variable renumbering. Column order
// and antecedent-row order are left alone — the canon layer does not
// promise invariance under those.
func mutateTDInstance(rng *rand.Rand, s *relation.Schema, deps []*td.TD, goal *td.TD) ([]*td.TD, *td.TD, error) {
	names := make([]string, s.Width())
	for a := range names {
		names[a] = fmt.Sprintf("Col%d", a)
	}
	ns, err := relation.NewSchema(names)
	if err != nil {
		return nil, nil, err
	}
	remap := func(d *td.TD, name string) (*td.TD, error) {
		w := s.Width()
		rows := make([]tableau.VarTuple, d.NumAntecedents()+1)
		for r := 0; r < d.NumAntecedents(); r++ {
			rows[r] = d.Antecedent(r)
		}
		rows[len(rows)-1] = d.Conclusion()
		// Per-column variable permutation: a pure renumbering, which
		// tableau.New normalizes back out.
		perms := make([][]tableau.Var, w)
		for a := 0; a < w; a++ {
			max := 0
			for _, row := range rows {
				if int(row[a])+1 > max {
					max = int(row[a]) + 1
				}
			}
			p := rng.Perm(max)
			perms[a] = make([]tableau.Var, max)
			for v, pv := range p {
				perms[a][v] = tableau.Var(pv)
			}
		}
		out := make([]tableau.VarTuple, len(rows))
		for r, row := range rows {
			nr := make(tableau.VarTuple, w)
			for a := 0; a < w; a++ {
				nr[a] = perms[a][row[a]]
			}
			out[r] = nr
		}
		return td.New(ns, out[:len(out)-1], out[len(out)-1], name)
	}
	mutDeps := make([]*td.TD, 0, len(deps)+1)
	for i, d := range deps {
		nd, err := remap(d, fmt.Sprintf("m%d", i))
		if err != nil {
			return nil, nil, err
		}
		mutDeps = append(mutDeps, nd)
	}
	// Duplicate one member: CanonInference dedups the set.
	mutDeps = append(mutDeps, mutDeps[rng.Intn(len(mutDeps))])
	rng.Shuffle(len(mutDeps), func(i, j int) { mutDeps[i], mutDeps[j] = mutDeps[j], mutDeps[i] })
	mutGoal, err := remap(goal, "mgoal")
	if err != nil {
		return nil, nil, err
	}
	return mutDeps, mutGoal, nil
}

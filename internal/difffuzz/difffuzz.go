// Package difffuzz is the differential fuzzing harness: it runs every
// corpus instance (internal/corpus) through all applicable engines under
// a matched governor and checks the cross-engine invariants:
//
//   - verdict agreement: two engines given the same meter limits may
//     disagree only through "unknown" — definitive "implied" vs
//     definitive "finite-counterexample" is a soundness bug in one of
//     them;
//   - oracle agreement: on the decidable fragment, every definitive
//     engine verdict must match the independent axiomatic decider;
//   - certification: every certificate any engine produces must survive
//     an Encode/Decode round trip and pass cert.Check, and a consensus
//     definitive verdict must ship at least one such certificate;
//   - canon stability: the canonical key of an instance must be
//     invariant under the renamings and reorderings the canon layer
//     documents (symbol renaming, equation order and orientation for
//     presentations; dependency order, duplicates, attribute names, and
//     variable renumbering for TD instances).
//
// Every case emits a fuzz_case event, and every violated invariant a
// fuzz_disagree event, on Options.Sink (see docs/OBSERVABILITY.md).
package difffuzz

import (
	"fmt"
	"sync"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/corpus"
	"templatedep/internal/eid"
	"templatedep/internal/finitemodel"
	"templatedep/internal/obs"
	"templatedep/internal/portfolio"
	"templatedep/internal/rewrite"
	"templatedep/internal/search"
	"templatedep/internal/words"
)

// DefaultLimits are the matched meter classes every engine runs under:
// each engine gets a fresh governor drawing the limits for the meters it
// uses (rounds/tuples for the chases, nodes for the searches, words for
// the closure, rules for completion).
// The tuple cap is deliberately modest: a divergent embedded-TD chase
// joins every antecedent row against the whole instance each round, so
// runtime grows quadratically in the cap — 2500 keeps a cap-out under
// tens of milliseconds while leaving room for every terminating chase
// the corpus generates.
var DefaultLimits = budget.Limits{
	Rounds: 24,
	Tuples: 2500,
	Nodes:  150000,
	Words:  40000,
	Rules:  150,
}

// Options parameterizes a differential run.
type Options struct {
	// Limits are the matched meter classes; zero fields take
	// DefaultLimits values.
	Limits budget.Limits
	// Sizes is the finite-db enumerator's instance-size window (TD
	// instances); zero means {1, 2}.
	Sizes budget.Range
	// Orders is the counter-model search's semigroup-order window
	// (presentation instances); zero means {2, 4}.
	Orders budget.Range
	// LengthCap bounds the word length explored by equational closure;
	// without it TM-derived presentations generate unboundedly long words
	// and the closure exhausts memory before the Words meter bites.
	// <= 0 means 12.
	LengthCap int
	// Mutations is the number of canon-stability mutations per instance;
	// <= 0 means 3.
	Mutations int
	// Seed seeds the mutation streams (independent of the corpus seed).
	Seed int64
	// Workers parallelizes cases; <= 0 means 1. Verdicts and
	// disagreements are independent of Workers (results land by index);
	// per-family timings are wall-clock and therefore not.
	Workers int
	// Sink receives fuzz_case / fuzz_disagree events (Src "difffuzz").
	Sink obs.Sink
}

func (opt Options) withDefaults() Options {
	if opt.Limits.Rounds <= 0 {
		opt.Limits.Rounds = DefaultLimits.Rounds
	}
	if opt.Limits.Tuples <= 0 {
		opt.Limits.Tuples = DefaultLimits.Tuples
	}
	if opt.Limits.Nodes <= 0 {
		opt.Limits.Nodes = DefaultLimits.Nodes
	}
	if opt.Limits.Words <= 0 {
		opt.Limits.Words = DefaultLimits.Words
	}
	if opt.Limits.Rules <= 0 {
		opt.Limits.Rules = DefaultLimits.Rules
	}
	if opt.Sizes.Hi <= 0 {
		// Up to 4 tuples: some not-implied independence atoms have no
		// 2-tuple counterexample (the oracle family must reach definitive
		// verdicts, and the node meter still bounds the search).
		opt.Sizes = budget.Range{Lo: 1, Hi: 4}
	}
	if opt.Orders.Hi <= 0 {
		opt.Orders = budget.Range{Lo: 2, Hi: 4}
	}
	if opt.LengthCap <= 0 {
		opt.LengthCap = 12
	}
	if opt.Mutations <= 0 {
		opt.Mutations = 3
	}
	if opt.Workers <= 0 {
		opt.Workers = 1
	}
	return opt
}

// EngineRun is one engine's outcome on one instance.
type EngineRun struct {
	Engine  string `json:"engine"`
	Verdict string `json:"verdict"`
	NS      int64  `json:"ns"`
	// Certified reports the engine produced a certificate that passed
	// the round-trip + cert.Check gate.
	Certified bool `json:"certified,omitempty"`
}

// Case is one instance's differential outcome.
type Case struct {
	ID     string `json:"id"`
	Family string `json:"family"`
	Kind   string `json:"kind"`
	Label  string `json:"label"`
	// Verdict is the consensus definitive verdict ("unknown" when no
	// engine was definitive).
	Verdict string `json:"verdict"`
	// Oracle is the fragment ground truth ("" outside FamilyOracle).
	Oracle  string      `json:"oracle,omitempty"`
	Engines []EngineRun `json:"engines"`
	// Problems lists the violated invariants, prefixed with the
	// invariant name ("verdict:", "oracle:", "cert:", "canon:").
	Problems []string `json:"problems,omitempty"`
	// NS is the case's total engine wall time.
	NS int64 `json:"ns"`
}

// Result is a full differential run.
type Result struct {
	Cases []Case
	// Disagreements flattens every case's Problems, prefixed with the
	// case ID. The gate requires it empty.
	Disagreements []string
}

// Run executes the differential harness over instances.
func Run(instances []corpus.Instance, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	cases := make([]Case, len(instances))
	errs := make([]error, len(instances))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cases[i], errs[i] = runCase(instances[i], i, opt)
			}
		}()
	}
	for i := range instances {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{Cases: cases}
	for _, c := range cases {
		for _, p := range c.Problems {
			res.Disagreements = append(res.Disagreements, c.ID+": "+p)
		}
	}
	return res, nil
}

// engineOut is one engine run before invariant checking.
type engineOut struct {
	name    string
	verdict string
	cert    *cert.Certificate
	ns      int64
}

// Fresh governors per engine per instance: governors meter cumulatively,
// so reuse across runs would make later engines run on an exhausted
// budget and measure nothing.
func gov(l budget.Limits) *budget.Governor { return budget.New(nil, l) }

func (opt Options) chaseOptions() chase.Options {
	return chase.Options{
		Governor:  gov(budget.Limits{Rounds: opt.Limits.Rounds, Tuples: opt.Limits.Tuples}),
		SemiNaive: true,
	}
}

func (opt Options) eidOptions() eid.Options {
	return eid.Options{Governor: gov(budget.Limits{Rounds: opt.Limits.Rounds, Tuples: opt.Limits.Tuples})}
}

// Presentation reductions have wide schemas (a TM encoding builds ~170
// dependencies), so a full chase budget explodes in the first join. As in
// the core tests, the chase gets a token budget there — the derivation,
// completion, and model-search arms carry presentation instances, and the
// chase confirmation simply reports unknown when it cannot finish.
func (opt Options) presChaseOptions() chase.Options {
	return chase.Options{Governor: gov(budget.Limits{Rounds: 1, Tuples: 50}), SemiNaive: true}
}

func (opt Options) presEIDOptions() eid.Options {
	return eid.Options{Governor: gov(budget.Limits{Rounds: 1, Tuples: 50})}
}

func (opt Options) finiteDBOptions() finitemodel.Options {
	return finitemodel.Options{Sizes: opt.Sizes, Governor: gov(budget.Limits{Nodes: opt.Limits.Nodes})}
}

func (opt Options) modelSearchOptions() search.Options {
	return search.Options{Orders: opt.Orders, Governor: gov(budget.Limits{Nodes: opt.Limits.Nodes})}
}

func (opt Options) closureOptions() words.ClosureOptions {
	return words.ClosureOptions{
		Governor:  gov(budget.Limits{Words: opt.Limits.Words}),
		LengthCap: opt.LengthCap,
	}
}

func (opt Options) completionOptions() rewrite.CompletionOptions {
	return rewrite.CompletionOptions{Governor: gov(budget.Limits{Rules: opt.Limits.Rules, Rounds: 25})}
}

func chaseVerdictString(v chase.Verdict) string {
	switch v {
	case chase.Implied:
		return "implied"
	case chase.NotImplied:
		// A TD chase fixpoint without the conclusion IS a finite
		// counterexample, so the engines share one verdict vocabulary.
		return "finite-counterexample"
	}
	return "unknown"
}

func eidVerdictString(v eid.Verdict) string {
	switch v {
	case eid.Implied:
		return "implied"
	case eid.NotImplied:
		return "finite-counterexample"
	}
	return "unknown"
}

// runTD runs the TD-level engine set.
func runTD(in corpus.Instance, opt Options) ([]engineOut, error) {
	var outs []engineOut
	run := func(name string, f func() (string, *cert.Certificate, error)) error {
		start := time.Now()
		verdict, c, err := f()
		if err != nil {
			return fmt.Errorf("difffuzz: %s: engine %s: %w", in.ID, name, err)
		}
		outs = append(outs, engineOut{name: name, verdict: verdict, cert: c, ns: time.Since(start).Nanoseconds()})
		return nil
	}
	if err := run("chase", func() (string, *cert.Certificate, error) {
		res, err := chase.Implies(in.Deps, in.Goal, opt.chaseOptions())
		return chaseVerdictString(res.Verdict), nil, err
	}); err != nil {
		return nil, err
	}
	if err := run("eid", func() (string, *cert.Certificate, error) {
		eids := make([]*eid.EID, len(in.Deps))
		for i, d := range in.Deps {
			eids[i] = eid.FromTD(d)
		}
		res, err := eid.Implies(eids, eid.FromTD(in.Goal), opt.eidOptions())
		return eidVerdictString(res.Verdict), nil, err
	}); err != nil {
		return nil, err
	}
	if err := run("finite-db", func() (string, *cert.Certificate, error) {
		res, err := finitemodel.FindCounterexample(in.Deps, in.Goal, opt.finiteDBOptions())
		if err != nil {
			return "", nil, err
		}
		if res.Instance != nil {
			return "finite-counterexample", nil, nil
		}
		return "unknown", nil, nil
	}); err != nil {
		return nil, err
	}
	// core is the designated certificate producer for TD instances:
	// Certify forces chase tracing, so a definitive verdict always
	// carries a certificate (own trace for Implied, the counterexample
	// database for FCEX).
	if err := run("core", func() (string, *cert.Certificate, error) {
		res, err := core.Infer(in.Deps, in.Goal, core.Budget{
			Chase:    opt.chaseOptions(),
			FiniteDB: opt.finiteDBOptions(),
			Certify:  true,
		})
		return res.Verdict.String(), res.Cert(), err
	}); err != nil {
		return nil, err
	}
	if err := run("portfolio", func() (string, *cert.Certificate, error) {
		res, err := portfolio.Infer(in.Deps, in.Goal, portfolio.Options{
			Chase:    opt.chaseOptions(),
			EID:      opt.eidOptions(),
			FiniteDB: opt.finiteDBOptions(),
			Certify:  true,
		})
		if err != nil {
			return "", nil, err
		}
		return res.Verdict.String(), res.Cert(), nil
	}); err != nil {
		return nil, err
	}
	return outs, nil
}

// runPresentation runs the presentation-level engine set.
func runPresentation(in corpus.Instance, opt Options) ([]engineOut, error) {
	var outs []engineOut
	run := func(name string, f func() (string, *cert.Certificate, error)) error {
		start := time.Now()
		verdict, c, err := f()
		if err != nil {
			return fmt.Errorf("difffuzz: %s: engine %s: %w", in.ID, name, err)
		}
		outs = append(outs, engineOut{name: name, verdict: verdict, cert: c, ns: time.Since(start).Nanoseconds()})
		return nil
	}
	presBudget := func() core.Budget {
		return core.Budget{
			Chase:       opt.presChaseOptions(),
			Closure:     opt.closureOptions(),
			ModelSearch: opt.modelSearchOptions(),
			FiniteDB:    opt.finiteDBOptions(),
		}
	}
	// race and seq are the designated certificate producers here: their
	// definitive verdicts always carry a proof object (a derivation or a
	// verified counter-model), so Cert() is structurally non-nil.
	if err := run("race", func() (string, *cert.Certificate, error) {
		res, err := core.AnalyzePresentationRace(in.Pres, presBudget())
		if err != nil {
			return "", nil, err
		}
		return res.Verdict.String(), res.Cert(), nil
	}); err != nil {
		return nil, err
	}
	if err := run("seq", func() (string, *cert.Certificate, error) {
		res, err := core.AnalyzePresentation(in.Pres, presBudget())
		if err != nil {
			return "", nil, err
		}
		return res.Verdict.String(), res.Cert(), nil
	}); err != nil {
		return nil, err
	}
	if err := run("portfolio", func() (string, *cert.Certificate, error) {
		// Certify stays off here: an Implied win from the kb or eid arm
		// would trigger a certifying chase replay at chase.DefaultLimits
		// floors, and on a wide presentation reduction that replay does
		// not terminate in fuzzing time. race and seq are the designated
		// certificate producers for presentation instances.
		res, err := portfolio.AnalyzePresentation(in.Pres, portfolio.Options{
			Chase:       opt.presChaseOptions(),
			EID:         opt.presEIDOptions(),
			ModelSearch: opt.modelSearchOptions(),
			Completion:  opt.completionOptions(),
		})
		if err != nil {
			return "", nil, err
		}
		return res.Verdict.String(), res.Cert(), nil
	}); err != nil {
		return nil, err
	}
	return outs, nil
}

// definitive reports whether v is a definitive verdict.
func definitive(v string) bool { return v == "implied" || v == "finite-counterexample" }

// runCase runs instance i's engine set and checks every invariant.
func runCase(in corpus.Instance, i int, opt Options) (Case, error) {
	var (
		outs []engineOut
		err  error
	)
	if in.Kind == corpus.KindPresentation {
		outs, err = runPresentation(in, opt)
	} else {
		outs, err = runTD(in, opt)
	}
	if err != nil {
		return Case{}, err
	}
	c := Case{
		ID:      in.ID,
		Family:  string(in.Family),
		Kind:    string(in.Kind),
		Label:   in.Label,
		Verdict: "unknown",
		Oracle:  string(in.Oracle),
	}
	problem := func(kind, format string, args ...any) {
		detail := fmt.Sprintf(format, args...)
		c.Problems = append(c.Problems, kind+": "+detail)
		if opt.Sink != nil {
			opt.Sink.Event(obs.Event{
				Type: obs.EvFuzzDisagree, Src: "difffuzz",
				Key: in.ID, Source: string(in.Family), Arm: kind, Verdict: detail,
			})
		}
	}

	// Verdict agreement: definitive verdicts must be pairwise equal, and
	// the first one is the consensus.
	for k := range outs {
		c.NS += outs[k].ns
		if !definitive(outs[k].verdict) {
			continue
		}
		if c.Verdict == "unknown" {
			c.Verdict = outs[k].verdict
		} else if outs[k].verdict != c.Verdict {
			problem("verdict", "engine %s says %q but an earlier engine said %q",
				outs[k].name, outs[k].verdict, c.Verdict)
		}
	}

	// Oracle agreement: directional — an engine may time out into
	// "unknown", but a definitive verdict must match the ground truth.
	if in.Oracle != corpus.OracleNone {
		want := "implied"
		if in.Oracle == corpus.OracleNotImplied {
			want = "finite-counterexample"
		}
		for _, o := range outs {
			if definitive(o.verdict) && o.verdict != want {
				problem("oracle", "engine %s says %q but the fragment decider says %q (%s)",
					o.name, o.verdict, want, in.Label)
			}
		}
	}

	// Certification: every produced certificate must round-trip and pass
	// the independent checker; a consensus definitive verdict must ship
	// at least one that does.
	certified := false
	for k, o := range outs {
		run := EngineRun{Engine: o.name, Verdict: o.verdict, NS: o.ns}
		if o.cert != nil {
			if err := checkCert(o.cert); err != nil {
				problem("cert", "engine %s certificate rejected: %v", o.name, err)
			} else {
				run.Certified = true
				certified = true
			}
		}
		c.Engines = append(c.Engines, run)
		_ = k
	}
	if definitive(c.Verdict) && !certified {
		problem("cert", "consensus verdict %q shipped no checkable certificate", c.Verdict)
	}

	// Canon stability under the documented invariances.
	if err := checkCanon(in, i, opt, problem); err != nil {
		return Case{}, err
	}

	if opt.Sink != nil {
		opt.Sink.Event(obs.Event{
			Type: obs.EvFuzzCase, Src: "difffuzz",
			Key: in.ID, Source: string(in.Family), Verdict: c.Verdict, N: len(outs),
		})
	}
	return c, nil
}

// checkCert round-trips c through its wire form and verifies the decoded
// copy with the standalone checker.
func checkCert(c *cert.Certificate) error {
	data, err := c.Encode()
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	dec, err := cert.Decode(data)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	return cert.Check(dec)
}

package difffuzz

import (
	"strings"
	"testing"

	"templatedep/internal/corpus"
	"templatedep/internal/obs"
)

// TestRunSmallCorpusClean runs a small mixed corpus through every engine
// and requires zero invariant violations — the same gate ci.sh enforces,
// in miniature.
func TestRunSmallCorpusClean(t *testing.T) {
	insts, err := corpus.Generate(corpus.Options{Seed: 5, TM: 4, Random: 8, Oracle: 8})
	if err != nil {
		t.Fatal(err)
	}
	counters := obs.NewCounters()
	res, err := Run(insts, Options{Seed: 11, Workers: 4, Sink: obs.NewCounterSink(counters)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != len(insts) {
		t.Fatalf("got %d cases for %d instances", len(res.Cases), len(insts))
	}
	for _, d := range res.Disagreements {
		t.Errorf("disagreement: %s", d)
	}
	for _, c := range res.Cases {
		if len(c.Engines) == 0 {
			t.Errorf("%s: no engines ran", c.ID)
		}
		if c.Oracle != "" && c.Verdict != "unknown" && c.Verdict != engineVerdict(c.Oracle) {
			t.Errorf("%s: consensus %q vs oracle %q survived without a problem entry", c.ID, c.Verdict, c.Oracle)
		}
	}
	snap := counters.Snapshot()
	if snap["fuzz.cases"] != int64(len(insts)) {
		t.Errorf("fuzz.cases = %d, want %d", snap["fuzz.cases"], len(insts))
	}
	if snap["fuzz.disagreements"] != 0 {
		t.Errorf("fuzz.disagreements = %d, want 0", snap["fuzz.disagreements"])
	}
	for _, fam := range []string{"tm", "random", "oracle"} {
		if snap["fuzz.family."+fam+".cases"] == 0 {
			t.Errorf("fuzz.family.%s.cases = 0, want > 0", fam)
		}
	}
}

// TestRunWorkerIndependent pins that verdicts and disagreements do not
// depend on Workers (results land by case index; mutation streams are
// seeded per case).
func TestRunWorkerIndependent(t *testing.T) {
	insts, err := corpus.Generate(corpus.Options{Seed: 3, TM: 2, Random: 4, Oracle: 6})
	if err != nil {
		t.Fatal(err)
	}
	render := func(r *Result) string {
		var b strings.Builder
		for _, c := range r.Cases {
			b.WriteString(c.ID)
			b.WriteString(" ")
			b.WriteString(c.Verdict)
			for _, e := range c.Engines {
				b.WriteString(" ")
				b.WriteString(e.Engine)
				b.WriteString("=")
				b.WriteString(e.Verdict)
			}
			b.WriteString("\n")
		}
		for _, d := range r.Disagreements {
			b.WriteString(d)
			b.WriteString("\n")
		}
		return b.String()
	}
	var want string
	for _, workers := range []int{1, 3} {
		res, err := Run(insts, Options{Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := render(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("fuzz outcome differs between Workers=1 and Workers=%d:\n%s\n---\n%s", workers, want, got)
		}
	}
}

// TestOracleFamilyDecided: with the default governors, every oracle
// instance must reach a definitive consensus (the fragment is decidable
// and the encodings are small), and it must match the ground truth.
func TestOracleFamilyDecided(t *testing.T) {
	insts, err := corpus.Generate(corpus.Options{Seed: 21, Oracle: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(insts, Options{Seed: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Disagreements {
		t.Errorf("disagreement: %s", d)
	}
	for _, c := range res.Cases {
		if c.Verdict == "unknown" {
			t.Errorf("%s (%s): oracle instance stayed unknown", c.ID, c.Label)
			continue
		}
		if c.Verdict != engineVerdict(c.Oracle) {
			t.Errorf("%s (%s): consensus %q, oracle %q", c.ID, c.Label, c.Verdict, c.Oracle)
		}
	}
}

// engineVerdict maps an oracle verdict to the engines' shared vocabulary
// (the fragment is finitely controllable, so "not implied" always means a
// finite counterexample exists).
func engineVerdict(oracle string) string {
	if oracle == "not-implied" {
		return "finite-counterexample"
	}
	return oracle
}

// Package finitemodel implements a brute-force finite-database
// counterexample search for template dependency inference: given D and D0,
// it enumerates small typed instances looking for one that satisfies every
// member of D and violates D0.
//
// This is the database-side realization of the Main Theorem's second set
// {(D, D0) : D0 fails in some finite database satisfying D}: enumerating
// all finite databases is a genuine semidecision procedure for membership.
// It complements the chase (which certifies the first set) and the
// semigroup route of package reduction (which produces large structured
// counterexamples the enumeration could never reach).
//
// The search enumerates instances in a canonical order (tuples strictly
// increasing lexicographically, values per column restricted to
// first-occurrence order) to prune isomorphic duplicates.
package finitemodel

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

// Options bounds the enumeration.
type Options struct {
	// Sizes is the inclusive window of instance sizes (tuple counts)
	// enumerated — a structural coordinate, not a meter. A zero Lo means
	// 1; a zero (or too-small) Hi means DefaultSizes.Hi.
	Sizes budget.Range
	// ValuesPerColumn caps the active domain per attribute; <= 0 means
	// Sizes.Hi (more values than tuples never helps: each tuple
	// contributes one value per column).
	ValuesPerColumn int
	// Governor bounds the enumeration: its nodes meter caps search nodes,
	// and its context is polled every checkInterval nodes. Nil resolves to
	// DefaultLimits.
	Governor *budget.Governor
}

// DefaultSizes is the size window an unconfigured enumeration covers —
// conservative, for narrow schemas.
var DefaultSizes = budget.Range{Lo: 1, Hi: 4}

// DefaultLimits is the node budget an ungoverned enumeration runs under.
var DefaultLimits = budget.Limits{Nodes: 2_000_000}

// DefaultOptions returns conservative defaults for narrow schemas.
func DefaultOptions() Options { return Options{Sizes: DefaultSizes} }

// checkInterval is how many search nodes pass between governor
// checkpoints: the same batch width as the model search's event batching,
// keeping the inner loop free of context polls.
const checkInterval = 4096

// Result is the outcome of FindCounterexample.
type Result struct {
	// Instance is the counterexample database; nil when none was found.
	Instance *relation.Instance
	// NodesVisited counts enumeration nodes explored.
	NodesVisited int
	// Budget reports how the governor cut the search short; zero (ok)
	// means the size window was covered.
	Budget budget.Outcome
}

// Status renders the outcome for display and events: "found",
// "exhausted-within-bounds" (the window was covered with no counterexample
// — not a proof that none exists at all), or the budget stop.
func (r Result) Status() string {
	switch {
	case r.Instance != nil:
		return "found"
	case r.Budget.Stopped():
		return r.Budget.String()
	}
	return "exhausted-within-bounds"
}

// FindCounterexample searches for a finite instance satisfying every
// dependency in deps and violating d0.
func FindCounterexample(deps []*td.TD, d0 *td.TD, opt Options) (Result, error) {
	if opt.Sizes.Lo <= 0 {
		opt.Sizes.Lo = 1
	}
	if opt.Sizes.Hi < opt.Sizes.Lo {
		opt.Sizes.Hi = DefaultSizes.Hi
		if opt.Sizes.Hi < opt.Sizes.Lo {
			opt.Sizes.Hi = opt.Sizes.Lo
		}
	}
	if opt.ValuesPerColumn <= 0 || opt.ValuesPerColumn > opt.Sizes.Hi {
		opt.ValuesPerColumn = opt.Sizes.Hi
	}
	schema := d0.Schema()
	for i, d := range deps {
		if !d.Schema().Equal(schema) {
			return Result{}, fmt.Errorf("finitemodel: dependency %d has a different schema", i)
		}
	}
	g := budget.Resolve(opt.Governor, DefaultLimits)
	// A procedure whose governor is already stopped must refuse to start:
	// without this, a run cancelled during an earlier stage could still
	// produce a fresh (if genuine) answer from the first node batch,
	// making the overall verdict depend on checkpoint timing.
	if o := g.Interrupted(); o.Stopped() {
		return Result{Budget: o}, nil
	}
	s := &searcher{schema: schema, deps: deps, d0: d0, opt: opt,
		gov: g, remaining: g.Limit(budget.Nodes)}
	if s.remaining <= 0 {
		s.remaining = int(^uint(0) >> 1)
	}
	settle := func() {
		g.Add(budget.Nodes, s.nodes-s.settled)
		s.settled = s.nodes
	}
	for n := opt.Sizes.Lo; n <= opt.Sizes.Hi; n++ {
		inst, err := s.searchSize(n)
		if err != nil {
			return Result{}, err
		}
		if inst != nil {
			settle()
			return Result{Instance: inst, NodesVisited: s.nodes}, nil
		}
		if s.remaining <= 0 {
			out := s.stop
			if !out.Stopped() {
				out = budget.Exhausted(budget.Nodes)
			}
			settle()
			return Result{NodesVisited: s.nodes, Budget: out}, nil
		}
	}
	settle()
	return Result{NodesVisited: s.nodes}, nil
}

type searcher struct {
	schema *relation.Schema
	deps   []*td.TD
	d0     *td.TD
	opt    Options
	gov    *budget.Governor
	// remaining mirrors the governor's nodes limit; a context stop zeroes
	// it at the next checkInterval boundary.
	remaining int
	nodes     int
	settled   int
	stop      budget.Outcome
}

// searchSize enumerates canonical instances with exactly n tuples.
func (s *searcher) searchSize(n int) (*relation.Instance, error) {
	width := s.schema.Width()
	tuples := make([]relation.Tuple, n)
	used := make([]int, width) // distinct values used so far per column

	var place func(ti int) (*relation.Instance, error)
	var fill func(ti, col int, tup relation.Tuple, usedDelta []int) (*relation.Instance, error)

	check := func() (*relation.Instance, error) {
		inst := relation.NewInstance(s.schema)
		for _, t := range tuples {
			if _, _, err := inst.Add(t); err != nil {
				return nil, err
			}
		}
		if inst.Len() != n {
			return nil, nil // duplicate tuples; skip
		}
		for _, d := range s.deps {
			if ok, _ := d.Satisfies(inst); !ok {
				return nil, nil
			}
		}
		if ok, _ := s.d0.Satisfies(inst); ok {
			return nil, nil
		}
		return inst, nil
	}

	fill = func(ti, col int, tup relation.Tuple, usedDelta []int) (*relation.Instance, error) {
		s.nodes++
		s.remaining--
		if s.nodes%checkInterval == 0 {
			s.gov.Add(budget.Nodes, s.nodes-s.settled)
			s.settled = s.nodes
			if o := s.gov.Interrupted(); o.Stopped() {
				s.stop = o
				s.remaining = 0
			}
		}
		if s.remaining <= 0 {
			return nil, nil
		}
		if col == width {
			// Canonical order: strictly greater than the previous tuple.
			if ti > 0 && !lexLess(tuples[ti-1], tup) {
				return nil, nil
			}
			tuples[ti] = tup.Clone()
			return place(ti + 1)
		}
		limit := used[col]
		if limit >= s.opt.ValuesPerColumn {
			limit = s.opt.ValuesPerColumn - 1
		}
		for v := 0; v <= limit; v++ {
			tup[col] = relation.Value(v)
			fresh := v == used[col]
			if fresh {
				used[col]++
				usedDelta[col]++
			}
			inst, err := fill(ti, col+1, tup, usedDelta)
			if err != nil || inst != nil {
				return inst, err
			}
			if fresh {
				used[col]--
				usedDelta[col]--
			}
		}
		return nil, nil
	}

	place = func(ti int) (*relation.Instance, error) {
		if ti == n {
			return check()
		}
		tup := make(relation.Tuple, width)
		usedDelta := make([]int, width)
		return fill(ti, 0, tup, usedDelta)
	}
	return place(0)
}

func lexLess(a, b relation.Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

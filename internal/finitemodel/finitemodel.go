// Package finitemodel implements a brute-force finite-database
// counterexample search for template dependency inference: given D and D0,
// it enumerates small typed instances looking for one that satisfies every
// member of D and violates D0.
//
// This is the database-side realization of the Main Theorem's second set
// {(D, D0) : D0 fails in some finite database satisfying D}: enumerating
// all finite databases is a genuine semidecision procedure for membership.
// It complements the chase (which certifies the first set) and the
// semigroup route of package reduction (which produces large structured
// counterexamples the enumeration could never reach).
//
// By default the search enumerates instances in a canonical order — tuples
// strictly increasing lexicographically, values per column restricted to
// first-occurrence order — pruning isomorphic duplicates; Options.Prune
// can disable both restrictions for ablation. Like internal/search, the
// enumeration runs through internal/psearch: the decision tree is split at
// a prefix depth into independent subtree tasks explored on
// Options.Workers goroutines, with first-witness-wins semantics and a
// deterministic lex-least tie-break, so the counterexample returned is the
// same for every Workers value (see DESIGN.md §8).
package finitemodel

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/psearch"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

// Options bounds the enumeration.
type Options struct {
	// Sizes is the inclusive window of instance sizes (tuple counts)
	// enumerated — a structural coordinate, not a meter. A zero Lo means
	// 1; a zero (or too-small) Hi means DefaultSizes.Hi.
	Sizes budget.Range
	// ValuesPerColumn caps the active domain per attribute; <= 0 means
	// Sizes.Hi (more values than tuples never helps: each tuple
	// contributes one value per column).
	ValuesPerColumn int
	// Governor bounds the enumeration: its nodes meter caps search nodes,
	// and its context is polled every checkInterval nodes. Nil resolves to
	// DefaultLimits.
	Governor *budget.Governor
	// Sink receives search_split, search_steal, and search_node events
	// (Src "finitemodel", Order carrying the instance size) plus the final
	// verdict. Nil disables emission. See docs/OBSERVABILITY.md.
	Sink obs.Sink
	// Workers is the number of goroutines exploring subtree tasks; <= 1
	// enumerates serially. The counterexample and the node ledger are
	// identical for every value as long as the node budget is not
	// exhausted mid-run.
	Workers int
	// SplitDepth forces the prefix depth at which each size's decision
	// tree is split into subtree tasks; 0 grows the split adaptively.
	SplitDepth int
	// Prune selects symmetry breaking: psearch.PruneSymmetry (the zero
	// value) enumerates canonical instances only (lex-increasing tuples,
	// first-occurrence value order per column); psearch.PruneNone
	// enumerates every value combination — the ablation baseline.
	Prune psearch.Prune
}

// DefaultSizes is the size window an unconfigured enumeration covers —
// conservative, for narrow schemas.
var DefaultSizes = budget.Range{Lo: 1, Hi: 4}

// DefaultLimits is the node budget an ungoverned enumeration runs under.
var DefaultLimits = budget.Limits{Nodes: 2_000_000}

// DefaultOptions returns conservative defaults for narrow schemas.
func DefaultOptions() Options { return Options{Sizes: DefaultSizes} }

// checkInterval is how many search nodes pass between governor
// checkpoints: the same batch width as psearch.DefaultBatch, keeping the
// inner loop free of context polls.
const checkInterval = 4096

// taskTarget matches internal/search: how many subtree tasks an adaptive
// split aims for, independent of Workers so the node ledger is too.
const taskTarget = 64

// Result is the outcome of FindCounterexample.
type Result struct {
	// Instance is the counterexample database; nil when none was found.
	Instance *relation.Instance
	// NodesVisited counts committed enumeration nodes — the node set a
	// serial run explores, whatever Workers is.
	NodesVisited int
	// SpeculativeNodes counts nodes parallel workers explored beyond the
	// winning subtree; charged to the governor, excluded from
	// NodesVisited. Zero when Workers <= 1.
	SpeculativeNodes int
	// Budget reports how the governor cut the search short; zero (ok)
	// means the size window was covered.
	Budget budget.Outcome
}

// Status renders the outcome for display and events: "found",
// "exhausted-within-bounds" (the window was covered with no counterexample
// — not a proof that none exists at all), or the budget stop.
func (r Result) Status() string {
	switch {
	case r.Instance != nil:
		return "found"
	case r.Budget.Stopped():
		return r.Budget.String()
	}
	return "exhausted-within-bounds"
}

// FindCounterexample searches for a finite instance satisfying every
// dependency in deps and violating d0.
func FindCounterexample(deps []*td.TD, d0 *td.TD, opt Options) (Result, error) {
	if opt.Sizes.Lo <= 0 {
		opt.Sizes.Lo = 1
	}
	if opt.Sizes.Hi < opt.Sizes.Lo {
		opt.Sizes.Hi = DefaultSizes.Hi
		if opt.Sizes.Hi < opt.Sizes.Lo {
			opt.Sizes.Hi = opt.Sizes.Lo
		}
	}
	if opt.ValuesPerColumn <= 0 || opt.ValuesPerColumn > opt.Sizes.Hi {
		opt.ValuesPerColumn = opt.Sizes.Hi
	}
	schema := d0.Schema()
	for i, d := range deps {
		if !d.Schema().Equal(schema) {
			return Result{}, fmt.Errorf("finitemodel: dependency %d has a different schema", i)
		}
	}
	g := budget.Resolve(opt.Governor, DefaultLimits)
	s := &searcher{schema: schema, deps: deps, d0: d0, opt: opt, gov: g,
		sink: opt.Sink, limited: g.Limit(budget.Nodes) > 0, remaining: g.Limit(budget.Nodes)}
	if !s.limited {
		s.remaining = int(^uint(0) >> 1)
	}
	finish := func(r Result) Result {
		s.settleGen()
		r.SpeculativeNodes = s.spec
		if s.sink != nil {
			if r.Budget.Stopped() {
				typ := obs.EvBudgetExhausted
				if r.Budget.Code != budget.CodeExhausted {
					typ = obs.EvCancelled
				}
				s.sink.Event(obs.Event{Type: typ, Src: "finitemodel", Resource: r.Budget.Reason()})
			}
			s.sink.Event(obs.Event{Type: obs.EvVerdict, Src: "finitemodel", Verdict: r.Status(), N: s.nodes})
		}
		return r
	}
	// A procedure whose governor is already stopped must refuse to start:
	// without this, a run cancelled during an earlier stage could still
	// produce a fresh (if genuine) answer from the first node batch,
	// making the overall verdict depend on checkpoint timing.
	if o := g.Interrupted(); o.Stopped() {
		return finish(Result{Budget: o}), nil
	}
	for n := opt.Sizes.Lo; n <= opt.Sizes.Hi; n++ {
		inst, err := s.searchSize(n)
		if err != nil {
			return Result{}, err
		}
		if inst != nil {
			return finish(Result{Instance: inst, NodesVisited: s.nodes}), nil
		}
		if s.remaining <= 0 {
			out := s.stop
			if !out.Stopped() {
				out = budget.Exhausted(budget.Nodes)
			}
			return finish(Result{NodesVisited: s.nodes, Budget: out}), nil
		}
	}
	return finish(Result{NodesVisited: s.nodes}), nil
}

type searcher struct {
	schema *relation.Schema
	deps   []*td.TD
	d0     *td.TD
	opt    Options
	gov    *budget.Governor
	// limited reports whether the nodes meter has a cap; remaining is the
	// countdown mirroring it. A context stop zeroes it at the next
	// checkInterval boundary.
	limited   bool
	remaining int
	// nodes is the committed ledger; spec counts parallel overshoot;
	// genUnsettled is how many split-generation nodes have not yet been
	// reported to the governor (task nodes are settled by psearch).
	nodes        int
	spec         int
	genUnsettled int
	stop         budget.Outcome
	sink         obs.Sink
	lastEmitted  int
}

// countGen records one node expanded during split generation, settling the
// governor meter and polling the context every checkInterval nodes.
// Returns false when the search must stop.
func (s *searcher) countGen() bool {
	s.nodes++
	s.remaining--
	s.genUnsettled++
	if s.genUnsettled >= checkInterval {
		s.settleGen()
		if o := s.gov.Interrupted(); o.Stopped() {
			s.stop = o
			s.remaining = 0
		}
	}
	return s.remaining > 0
}

func (s *searcher) settleGen() {
	s.gov.Add(budget.Nodes, s.genUnsettled)
	s.genUnsettled = 0
}

// instState is one node of the decision tree: the committed tuples, the
// partially filled current tuple, and the per-column first-occurrence
// counters. A state with n committed tuples and col 0 is a leaf (the
// candidate instance is complete).
type instState struct {
	tuples []relation.Tuple
	tup    relation.Tuple
	col    int
	used   []int
	// inst is set by a winning task's leaf check.
	inst *relation.Instance
}

func (st *instState) clone() *instState {
	cp := &instState{col: st.col}
	cp.tuples = make([]relation.Tuple, len(st.tuples))
	for i, t := range st.tuples {
		cp.tuples[i] = t.Clone()
	}
	cp.tup = st.tup.Clone()
	cp.used = append([]int(nil), st.used...)
	return cp
}

// searchSize enumerates instances with exactly n tuples: the decision tree
// is deepened into a frontier of subtree tasks and explored through
// psearch (see DESIGN.md §8).
func (s *searcher) searchSize(n int) (*relation.Instance, error) {
	width := s.schema.Width()
	root := &instState{tup: make(relation.Tuple, width), used: make([]int, width)}
	frontier := []*instState{root}
	depth := 0
	for s.remaining > 0 {
		if s.opt.SplitDepth > 0 {
			if depth >= s.opt.SplitDepth {
				break
			}
		} else if len(frontier) >= taskTarget {
			break
		}
		expandable := false
		next := make([]*instState, 0, len(frontier))
		for _, st := range frontier {
			if len(st.tuples) == n {
				next = append(next, st)
				continue
			}
			expandable = true
			if !s.countGen() {
				s.flushNodes(n)
				return nil, nil
			}
			s.branch(st, n, func() bool {
				next = append(next, st.clone())
				return true
			})
		}
		if !expandable {
			break
		}
		frontier = next
		depth++
	}
	if s.remaining <= 0 {
		s.flushNodes(n)
		return nil, nil
	}
	if len(frontier) == 0 {
		// The whole subtree died during frontier generation: there is
		// nothing to dispatch, so no split/steal events — but the
		// generation nodes were counted and must reach the stream.
		s.flushNodes(n)
		return nil, nil
	}

	allowance := 0
	if s.limited {
		allowance = s.remaining
	}
	rep := psearch.Explore(len(frontier), psearch.Options{
		Workers: s.opt.Workers, Governor: s.gov, Allowance: allowance,
	}, func(t int, ctx *psearch.Ctx) bool {
		return s.runTask(frontier[t], n, ctx)
	})
	s.nodes += rep.Committed
	s.spec += rep.Speculative
	s.remaining -= rep.Committed + rep.Speculative

	if s.sink != nil {
		s.sink.Event(obs.Event{Type: obs.EvSearchSplit, Src: "finitemodel",
			Order: n, N: len(frontier), Depth: depth})
		upto := len(frontier) - 1
		if rep.Winner >= 0 {
			upto = rep.Winner
		}
		for t := 0; t <= upto; t++ {
			s.sink.Event(obs.Event{Type: obs.EvSearchSteal, Src: "finitemodel",
				Order: n, Task: t, Worker: rep.Tasks[t].Worker, N: rep.Tasks[t].Nodes})
		}
	}
	s.flushNodes(n)

	if rep.Winner >= 0 {
		return frontier[rep.Winner].inst, nil
	}
	if rep.Stop.Stopped() {
		s.stop = rep.Stop
		s.remaining = 0
	}
	return nil, nil
}

// flushNodes emits the committed nodes not yet covered by a search_node
// event.
func (s *searcher) flushNodes(size int) {
	if s.sink != nil && s.nodes > s.lastEmitted {
		s.sink.Event(obs.Event{Type: obs.EvSearchNode, Src: "finitemodel", Order: size, N: s.nodes - s.lastEmitted})
		s.lastEmitted = s.nodes
	}
}

// branch enumerates the children of non-leaf state st in canonical order —
// the one place the child-generation rule (value caps, lex-least tuple
// insertion) is written, so the split frontier and the task walks prune
// identically. visit sees st mutated into the child and may recurse or
// clone it; returning false stops the enumeration. st is restored before
// branch returns.
func (s *searcher) branch(st *instState, n int, visit func() bool) {
	width := s.schema.Width()
	if st.col == width {
		// Tuple complete. Under symmetry pruning only lex-increasing tuple
		// sequences are kept: any instance is a set, so some permutation of
		// its tuples is sorted, and that ordering is enumerated instead.
		if s.opt.Prune == psearch.PruneSymmetry {
			if k := len(st.tuples); k > 0 && !lexLess(st.tuples[k-1], st.tup) {
				return
			}
		}
		saved := st.tup
		st.tuples = append(st.tuples, st.tup.Clone())
		st.tup = make(relation.Tuple, width)
		st.col = 0
		visit()
		st.tuples = st.tuples[:len(st.tuples)-1]
		st.tup = saved
		st.col = width
		return
	}
	// Value choice for the current column. Under symmetry pruning values
	// appear in first-occurrence order: the next value may exceed the
	// largest used so far by at most one (fresh values are interchangeable
	// by a column-wise renaming, so only the least fresh one is tried).
	col := st.col
	limit := s.opt.ValuesPerColumn - 1
	if s.opt.Prune == psearch.PruneSymmetry && st.used[col] < limit {
		limit = st.used[col]
	}
	for v := 0; v <= limit; v++ {
		st.tup[col] = relation.Value(v)
		fresh := s.opt.Prune == psearch.PruneSymmetry && v == st.used[col]
		if fresh {
			st.used[col]++
		}
		st.col = col + 1
		ok := visit()
		st.col = col
		if fresh {
			st.used[col]--
		}
		if !ok {
			return
		}
	}
}

// runTask explores one subtree task depth-first, reporting every node to
// ctx. Returns true when a counterexample was found (stored in st.inst).
func (s *searcher) runTask(st *instState, n int, ctx *psearch.Ctx) bool {
	var dfs func() bool
	dfs = func() bool {
		if !ctx.Node() {
			return false
		}
		if len(st.tuples) == n && st.col == 0 {
			if inst := s.checkLeaf(st.tuples, n); inst != nil {
				st.inst = inst
				return true
			}
			return false
		}
		s.branch(st, n, func() bool {
			if dfs() {
				return false // witness found: stop branching
			}
			return !ctx.Halted()
		})
		return st.inst != nil
	}
	return dfs()
}

// checkLeaf verifies one complete candidate: the tuples must form an
// instance of exactly n distinct tuples satisfying every member of D and
// violating D0. It only reads the searcher's dependencies (Satisfies is
// pure), so concurrent tasks may call it safely.
func (s *searcher) checkLeaf(tuples []relation.Tuple, n int) *relation.Instance {
	inst := relation.NewInstance(s.schema)
	for _, t := range tuples {
		if _, _, err := inst.Add(t); err != nil {
			return nil
		}
	}
	if inst.Len() != n {
		return nil // duplicate tuples; skip
	}
	for _, d := range s.deps {
		if ok, _ := d.Satisfies(inst); !ok {
			return nil
		}
	}
	if ok, _ := s.d0.Satisfies(inst); ok {
		return nil
	}
	return inst
}

// lexLess is the strict lexicographic order on tuples. Mismatched lengths
// (which a single schema never produces) compare by longest common prefix,
// shorter first, so the order stays total; zero-length tuples compare
// equal.
func lexLess(a, b relation.Tuple) bool {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	for i := 0; i < m; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Package finitemodel implements a brute-force finite-database
// counterexample search for template dependency inference: given D and D0,
// it enumerates small typed instances looking for one that satisfies every
// member of D and violates D0.
//
// This is the database-side realization of the Main Theorem's second set
// {(D, D0) : D0 fails in some finite database satisfying D}: enumerating
// all finite databases is a genuine semidecision procedure for membership.
// It complements the chase (which certifies the first set) and the
// semigroup route of package reduction (which produces large structured
// counterexamples the enumeration could never reach).
//
// The search enumerates instances in a canonical order (tuples strictly
// increasing lexicographically, values per column restricted to
// first-occurrence order) to prune isomorphic duplicates.
package finitemodel

import (
	"fmt"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

// Options bounds the enumeration.
type Options struct {
	// MaxTuples caps the instance size. <= 0 means 4.
	MaxTuples int
	// MaxValuesPerColumn caps the active domain per attribute; <= 0 means
	// MaxTuples (more values than tuples never helps: each tuple
	// contributes one value per column).
	MaxValuesPerColumn int
	// MaxNodes caps search nodes. <= 0 means 2,000,000.
	MaxNodes int
}

// DefaultOptions returns conservative defaults for narrow schemas.
func DefaultOptions() Options { return Options{MaxTuples: 4} }

// Outcome reports how the search ended.
type Outcome int

const (
	// ExhaustedWithinBounds means no counterexample exists within the
	// bounds (not a proof that none exists at all).
	ExhaustedWithinBounds Outcome = iota
	// Found means a counterexample database was found.
	Found
	// BudgetExhausted means MaxNodes ran out first.
	BudgetExhausted
)

func (o Outcome) String() string {
	switch o {
	case Found:
		return "found"
	case BudgetExhausted:
		return "budget-exhausted"
	default:
		return "exhausted-within-bounds"
	}
}

// Result is the outcome of FindCounterexample.
type Result struct {
	Outcome      Outcome
	Instance     *relation.Instance // non-nil iff Outcome == Found
	NodesVisited int
}

// FindCounterexample searches for a finite instance satisfying every
// dependency in deps and violating d0.
func FindCounterexample(deps []*td.TD, d0 *td.TD, opt Options) (Result, error) {
	if opt.MaxTuples <= 0 {
		opt.MaxTuples = 4
	}
	if opt.MaxValuesPerColumn <= 0 || opt.MaxValuesPerColumn > opt.MaxTuples {
		opt.MaxValuesPerColumn = opt.MaxTuples
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 2_000_000
	}
	schema := d0.Schema()
	for i, d := range deps {
		if !d.Schema().Equal(schema) {
			return Result{}, fmt.Errorf("finitemodel: dependency %d has a different schema", i)
		}
	}
	s := &searcher{schema: schema, deps: deps, d0: d0, opt: opt}
	for n := 1; n <= opt.MaxTuples; n++ {
		inst, err := s.searchSize(n)
		if err != nil {
			return Result{}, err
		}
		if inst != nil {
			return Result{Outcome: Found, Instance: inst, NodesVisited: s.nodes}, nil
		}
		if s.nodes >= s.opt.MaxNodes {
			return Result{Outcome: BudgetExhausted, NodesVisited: s.nodes}, nil
		}
	}
	return Result{Outcome: ExhaustedWithinBounds, NodesVisited: s.nodes}, nil
}

type searcher struct {
	schema *relation.Schema
	deps   []*td.TD
	d0     *td.TD
	opt    Options
	nodes  int
}

// searchSize enumerates canonical instances with exactly n tuples.
func (s *searcher) searchSize(n int) (*relation.Instance, error) {
	width := s.schema.Width()
	tuples := make([]relation.Tuple, n)
	used := make([]int, width) // distinct values used so far per column

	var place func(ti int) (*relation.Instance, error)
	var fill func(ti, col int, tup relation.Tuple, usedDelta []int) (*relation.Instance, error)

	check := func() (*relation.Instance, error) {
		inst := relation.NewInstance(s.schema)
		for _, t := range tuples {
			if _, _, err := inst.Add(t); err != nil {
				return nil, err
			}
		}
		if inst.Len() != n {
			return nil, nil // duplicate tuples; skip
		}
		for _, d := range s.deps {
			if ok, _ := d.Satisfies(inst); !ok {
				return nil, nil
			}
		}
		if ok, _ := s.d0.Satisfies(inst); ok {
			return nil, nil
		}
		return inst, nil
	}

	fill = func(ti, col int, tup relation.Tuple, usedDelta []int) (*relation.Instance, error) {
		s.nodes++
		if s.nodes >= s.opt.MaxNodes {
			return nil, nil
		}
		if col == width {
			// Canonical order: strictly greater than the previous tuple.
			if ti > 0 && !lexLess(tuples[ti-1], tup) {
				return nil, nil
			}
			tuples[ti] = tup.Clone()
			return place(ti + 1)
		}
		limit := used[col]
		if limit >= s.opt.MaxValuesPerColumn {
			limit = s.opt.MaxValuesPerColumn - 1
		}
		for v := 0; v <= limit; v++ {
			tup[col] = relation.Value(v)
			fresh := v == used[col]
			if fresh {
				used[col]++
				usedDelta[col]++
			}
			inst, err := fill(ti, col+1, tup, usedDelta)
			if err != nil || inst != nil {
				return inst, err
			}
			if fresh {
				used[col]--
				usedDelta[col]--
			}
		}
		return nil, nil
	}

	place = func(ti int) (*relation.Instance, error) {
		if ti == n {
			return check()
		}
		tup := make(relation.Tuple, width)
		usedDelta := make([]int, width)
		return fill(ti, 0, tup, usedDelta)
	}
	return place(0)
}

func lexLess(a, b relation.Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

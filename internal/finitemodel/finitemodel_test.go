package finitemodel

import (
	"fmt"
	"math/rand"
	"templatedep/internal/budget"
	"testing/quick"

	"templatedep/internal/chase"
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func TestFindCounterexampleBasic(t *testing.T) {
	// D empty, D0 = fig1: any instance violating fig1 works; the smallest
	// has 2 tuples (a shared supplier, two styles/sizes, nobody covering
	// the cross).
	_, fig1 := td.GarmentExample()
	res, err := FindCounterexample(nil, fig1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil {
		t.Fatalf("outcome %v after %d nodes", res.Status(), res.NodesVisited)
	}
	if res.Instance.Len() != 2 {
		t.Errorf("counterexample size %d, want 2", res.Instance.Len())
	}
	if ok, _ := fig1.Satisfies(res.Instance); ok {
		t.Error("returned instance satisfies D0")
	}
}

func TestFindCounterexampleRespectsD(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "goal")
	res, err := FindCounterexample([]*td.TD{join}, goal, Options{Sizes: budget.Range{Lo: 1, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil {
		t.Fatalf("outcome %v", res.Status())
	}
	if ok, _ := join.Satisfies(res.Instance); !ok {
		t.Error("counterexample violates a member of D")
	}
	if ok, _ := goal.Satisfies(res.Instance); ok {
		t.Error("counterexample satisfies D0")
	}
}

func TestNoCounterexampleForImpliedGoal(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	res, err := FindCounterexample([]*td.TD{join}, goal, Options{Sizes: budget.Range{Lo: 1, Hi: 3}, Governor: budget.New(nil, budget.Limits{Nodes: 5_000_000})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance != nil {
		t.Fatalf("found impossible counterexample:\n%s", res.Instance.String())
	}
}

func TestNoCounterexampleForTrivialGoal(t *testing.T) {
	s := relation.MustSchema("A", "B")
	triv := td.MustParse(s, "R(a, b) -> R(a, b)", "")
	res, err := FindCounterexample(nil, triv, Options{Sizes: budget.Range{Lo: 1, Hi: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Status(); got != "exhausted-within-bounds" {
		t.Errorf("outcome %v", got)
	}
}

func TestBudget(t *testing.T) {
	_, fig1 := td.GarmentExample()
	res, err := FindCounterexample(nil, fig1, Options{Sizes: budget.Range{Lo: 1, Hi: 4}, Governor: budget.New(nil, budget.Limits{Nodes: 3})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != budget.Exhausted(budget.Nodes) {
		t.Errorf("outcome %v", res.Status())
	}
}

func TestSchemaMismatch(t *testing.T) {
	s := relation.MustSchema("A", "B")
	other := relation.MustSchema("X", "Y", "Z")
	d := td.MustParse(s, "R(a, b) -> R(a, b')", "")
	g := td.MustParse(other, "R(x, y, z) -> R(x, y, z')", "")
	if _, err := FindCounterexample([]*td.TD{d}, g, DefaultOptions()); err == nil {
		t.Error("schema mismatch accepted")
	}
}

// Property: on random full-TD instances over a 2-column schema, the
// enumerator agrees with the chase decision procedure — whenever Decide
// says "not implied" AND the chase's own counterexample is small, the
// enumerator finds a counterexample too; whenever Decide says "implied",
// the enumerator must find nothing at any size.
func TestAgreesWithDecideProperty(t *testing.T) {
	s := relation.MustSchema("A", "B")
	mk := func(rng *rand.Rand) *td.TD {
		// Random full TD with 2 antecedents over small variable pools; the
		// conclusion reuses antecedent variables only.
		av := []int{rng.Intn(2), rng.Intn(2)}
		bv := []int{rng.Intn(2), rng.Intn(2)}
		text := fmt.Sprintf("R(a%d, b%d) & R(a%d, b%d) -> R(a%d, b%d)",
			av[0], bv[0], av[1], bv[1], av[rng.Intn(2)], bv[rng.Intn(2)])
		return td.MustParse(s, text, "rand")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dep := mk(rng)
		goal := mk(rng)
		decided, err := chase.Decide([]*td.TD{dep}, goal, 0)
		if err != nil {
			return true // bound refusal etc.; vacuous
		}
		// Chase counterexample size bounds the enumeration needed.
		cres, err := chase.Implies([]*td.TD{dep}, goal, chase.DefaultOptions())
		if err != nil {
			t.Log(err)
			return false
		}
		res, err := FindCounterexample([]*td.TD{dep}, goal, Options{Sizes: budget.Range{Lo: 1, Hi: 4}, Governor: budget.New(nil, budget.Limits{Nodes: 3_000_000})})
		if err != nil {
			t.Log(err)
			return false
		}
		if decided && res.Instance != nil {
			t.Logf("seed %d: implied but counterexample found:\n%s", seed, res.Instance.String())
			return false
		}
		if !decided && cres.Instance.Len() <= 4 && res.Instance == nil {
			t.Logf("seed %d: not implied with %d-tuple chase witness, enumerator found nothing",
				seed, cres.Instance.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

func TestAgreesWithChaseOnSmallCases(t *testing.T) {
	// For the full-TD case the chase decides; the enumerator must agree on
	// existence of counterexamples within its bounds.
	s := relation.MustSchema("A", "B")
	full := td.MustParse(s, "R(a, b) & R(a', b) -> R(a, b)", "") // trivial
	goal := td.MustParse(s, "R(a, b) & R(a', b') -> R(a, b')", "cross")
	res, err := FindCounterexample([]*td.TD{full}, goal, Options{Sizes: budget.Range{Lo: 1, Hi: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil {
		t.Fatalf("outcome %v; {(0,0),(1,1)} should be a counterexample", res.Status())
	}
}

package finitemodel

import (
	"bytes"
	"reflect"
	"testing"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/psearch"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// The parallel determinism contract for the instance enumerator: every
// Workers value returns the same counterexample, the same committed node
// ledger, and a trace that replays to the same totals. The gap reduction
// is the workload — its 6-column schema makes the per-size decision trees
// deep enough to split.
func TestParallelDeterministicCounterexample(t *testing.T) {
	in, err := reduction.Build(words.IdempotentGapPresentation())
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		inst   string
		nodes  int
		totals obs.Totals
	}
	do := func(workers int) run {
		var buf bytes.Buffer
		res, err := FindCounterexample(in.D, in.D0, Options{
			Sizes:    budget.Range{Lo: 1, Hi: 2},
			Workers:  workers,
			Governor: budget.New(nil, budget.Limits{Nodes: 1_000_000}),
			Sink:     obs.NewJSONLSink(&buf),
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Instance == nil {
			t.Fatalf("workers=%d: no counterexample (%s)", workers, res.Status())
		}
		totals, err := obs.Replay(&buf)
		if err != nil {
			t.Fatalf("workers=%d: replay: %v", workers, err)
		}
		return run{inst: res.Instance.String(), nodes: res.NodesVisited, totals: totals}
	}
	base := do(1)
	if base.totals.SearchNodes != base.nodes {
		t.Errorf("serial trace replays %d nodes, result ledger says %d", base.totals.SearchNodes, base.nodes)
	}
	if v := base.totals.Verdicts["finitemodel"]; v != "found" {
		t.Errorf("trace verdict %q, want found", v)
	}
	for _, workers := range []int{2, 4} {
		got := do(workers)
		if got.inst != base.inst {
			t.Errorf("workers=%d: counterexample differs\n got %s\nwant %s", workers, got.inst, base.inst)
		}
		if got.nodes != base.nodes {
			t.Errorf("workers=%d: %d nodes visited, serial visited %d", workers, got.nodes, base.nodes)
		}
		if !reflect.DeepEqual(got.totals, base.totals) {
			t.Errorf("workers=%d: replayed totals differ\n got %+v\nwant %+v", workers, got.totals, base.totals)
		}
	}
}

// Disabling symmetry pruning must change only the node count (the
// exhaustive run revisits permuted instances), never the verdict.
func TestPruneAblationSoundness(t *testing.T) {
	in, err := reduction.Build(words.IdempotentGapPresentation())
	if err != nil {
		t.Fatal(err)
	}
	var nodes [2]int
	for i, prune := range []psearch.Prune{psearch.PruneSymmetry, psearch.PruneNone} {
		res, err := FindCounterexample(in.D, in.D0, Options{
			Sizes:    budget.Range{Lo: 1, Hi: 2},
			Prune:    prune,
			Governor: budget.New(nil, budget.Limits{Nodes: 1_000_000}),
		})
		if err != nil {
			t.Fatalf("%s: %v", prune, err)
		}
		if res.Instance == nil {
			t.Fatalf("%s: no counterexample (%s)", prune, res.Status())
		}
		nodes[i] = res.NodesVisited
	}
	if nodes[0] >= nodes[1] {
		t.Errorf("symmetry pruning visited %d nodes, exhaustive run %d — pruning should strictly reduce the gap tree",
			nodes[0], nodes[1])
	}
	// The non-existence side: an implied goal yields no counterexample in
	// either mode.
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	for _, prune := range []psearch.Prune{psearch.PruneSymmetry, psearch.PruneNone} {
		res, err := FindCounterexample([]*td.TD{join}, goal, Options{
			Sizes:    budget.Range{Lo: 1, Hi: 3},
			Prune:    prune,
			Governor: budget.New(nil, budget.Limits{Nodes: 10_000_000}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instance != nil {
			t.Errorf("%s: found impossible counterexample", prune)
		}
	}
}

// lexLess edge cases (satellite): zero-length tuples, equal tuples, and
// mismatched lengths must keep the order strict and total.
func TestLexLessEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b relation.Tuple
		want bool
	}{
		{"both empty", relation.Tuple{}, relation.Tuple{}, false},
		{"nil vs nil", nil, nil, false},
		{"empty vs nonempty", relation.Tuple{}, relation.Tuple{0}, true},
		{"nonempty vs empty", relation.Tuple{0}, relation.Tuple{}, false},
		{"equal", relation.Tuple{1, 2}, relation.Tuple{1, 2}, false},
		{"less in first", relation.Tuple{0, 9}, relation.Tuple{1, 0}, true},
		{"less in last", relation.Tuple{1, 1}, relation.Tuple{1, 2}, true},
		{"greater", relation.Tuple{2, 0}, relation.Tuple{1, 9}, false},
		{"prefix shorter first", relation.Tuple{1}, relation.Tuple{1, 0}, true},
		{"prefix longer second", relation.Tuple{1, 0}, relation.Tuple{1}, false},
		{"all zero", relation.Tuple{0, 0, 0}, relation.Tuple{0, 0, 0}, false},
	} {
		if got := lexLess(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: lexLess(%v, %v) = %v, want %v", tc.name, tc.a, tc.b, got, tc.want)
		}
		// Strictness: a < b and b < a never both hold.
		if lexLess(tc.a, tc.b) && lexLess(tc.b, tc.a) {
			t.Errorf("%s: order not antisymmetric", tc.name)
		}
	}
}

package core

import (
	"context"
	"runtime/pprof"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/chase"
	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/search"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// This file adds the two "run forever, answer when you can" front-ends that
// turn the budgeted procedures into genuine semidecision procedures:
//
//   - AnalyzePresentationRace runs the two semi-procedures CONCURRENTLY and
//     returns as soon as either certifies an answer;
//   - AnalyzePresentationDeepening runs rounds of geometrically increasing
//     budgets until an answer or the governor stops it — complete in the
//     limit: every instance in either of the Main Theorem's two sets is
//     eventually decided, and (necessarily) instances in neither set run
//     until the deadline.

// RaceResult is the outcome of AnalyzePresentationRace.
type RaceResult struct {
	*PresentationResult
	// Winner names the side that produced the verdict: "derivation",
	// "model-search", or "" for Unknown.
	Winner string
}

// AnalyzePresentationRace runs the derivability search and the
// counter-model search in parallel goroutines and returns the first
// definitive answer (or Unknown when both budgets exhaust). The reduction
// instance is built once, up front. Both arms run under a shared cancel
// context derived from b.Governor, so the first definitive answer cancels
// the losing arm at its next checkpoint instead of letting it burn its
// whole budget; the cancelled arm is then joined, so no goroutine or event
// emission outlives the call.
func AnalyzePresentationRace(p *words.Presentation, b Budget) (*RaceResult, error) {
	in, err := reduction.Build(p)
	if err != nil {
		return nil, err
	}

	b = b.withSink()
	parent := context.Background()
	if b.Governor != nil {
		parent = b.Governor.Context()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	// Rebuild each arm's governor on the race context, keeping whatever
	// meter limits the caller configured (or the engine defaults).
	armLimits := func(g *budget.Governor, def budget.Limits) budget.Limits {
		if g != nil {
			return g.Limits()
		}
		return def
	}
	b.Closure.Governor = budget.New(ctx, armLimits(b.Closure.Governor, words.DefaultLimits))
	b.ModelSearch.Governor = budget.New(ctx, armLimits(b.ModelSearch.Governor, search.DefaultLimits))

	type outcome struct {
		res    *PresentationResult
		winner string
		err    error
	}
	ch := make(chan outcome, 2)

	// Each arm runs under a pprof label so CPU profiles of long races
	// split by arm, and announces itself on the sink. Arm events from the
	// two goroutines interleave nondeterministically — sinks must be
	// concurrency-safe (see obs.Sink) — but each arm's own events stay
	// ordered.
	go pprof.Do(ctx, pprof.Labels("race_arm", "derivation"), func(context.Context) {
		b.emit(obs.Event{Type: obs.EvArmStart, Arm: "derivation"})
		dres := words.DeriveGoal(in.Pres, b.Closure)
		b.emit(obs.Event{Type: obs.EvArmResult, Arm: "derivation", Verdict: dres.Verdict.String()})
		if dres.Verdict != words.Derivable {
			ch <- outcome{}
			return
		}
		res := &PresentationResult{Instance: in, Verdict: Implied, Derivation: dres.Derivation}
		ch <- outcome{res: res, winner: "derivation"}
	})
	go pprof.Do(ctx, pprof.Labels("race_arm", "model-search"), func(context.Context) {
		b.emit(obs.Event{Type: obs.EvArmStart, Arm: "model-search"})
		sres, err := search.FindCounterModel(p, b.ModelSearch)
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		b.emit(obs.Event{Type: obs.EvArmResult, Arm: "model-search", Verdict: sres.Status()})
		if sres.Interpretation == nil {
			ch <- outcome{}
			return
		}
		cm, err := in.BuildCounterModel(sres.Interpretation)
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		if err := in.Verify(cm); err != nil {
			ch <- outcome{err: err}
			return
		}
		res := &PresentationResult{Instance: in, Verdict: FiniteCounterexample, Witness: sres.Interpretation, CounterModel: cm}
		ch <- outcome{res: res, winner: "model-search"}
	})

	// The first definitive answer cancels the other arm, but the race still
	// JOINS it before returning: the loser stops at its next governor
	// checkpoint (bounded latency), and once this function returns, no arm
	// goroutine is left running or emitting events. Long-running callers
	// (the serving layer) depend on that — abandoned arms would otherwise
	// accumulate and could write to a trace while it is being flushed.
	var firstErr error
	var won *RaceResult
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		if o.res != nil && won == nil {
			won = &RaceResult{PresentationResult: o.res, Winner: o.winner}
			cancel()
		}
	}
	if won != nil {
		return won, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &RaceResult{PresentationResult: &PresentationResult{Instance: in, Verdict: Unknown}}, nil
}

// DeepeningOptions configures the iterative-deepening front-ends.
type DeepeningOptions struct {
	// Initial seeds the first round. Per-round budgets are derived from
	// Governor as child governors, so any governors inside Initial only
	// contribute their meter limits as starting points; every later round
	// doubles the word and node budgets (semigroup orders grow by 1 per
	// round, chase rounds by 4).
	Initial Budget
	// Governor bounds the whole deepening run: its rounds meter caps the
	// number of deepening rounds and its context is shared with every
	// per-round child budget, so a deadline or SIGINT interrupts an arm
	// mid-search instead of waiting for the round to finish. Nil means a
	// 2-second deadline and 16 rounds.
	Governor *budget.Governor
	// Portfolio switches InferDeepening onto the adaptive portfolio
	// scheduler: each round runs every arm under one reallocating
	// governor, and the allocations learned in one round (portfolio
	// Memory) seed the next, alongside the usual chase snapshot carry.
	Portfolio bool
}

// resolveDeepening applies the DeepeningOptions defaults, returning the
// run governor and a cancel func releasing its timer (a no-op for
// caller-supplied governors).
func resolveDeepening(opt DeepeningOptions) (*budget.Governor, context.CancelFunc) {
	if opt.Governor != nil {
		return opt.Governor, func() {}
	}
	return budget.ForDuration(2*time.Second, budget.Limits{Rounds: 16})
}

// AnalyzePresentationDeepening alternates the two semi-procedures with
// geometrically increasing budgets. It is complete in the limit (modulo the
// governor's deadline): if the instance lies in either of the Main
// Theorem's sets, a large enough round certifies it.
func AnalyzePresentationDeepening(p *words.Presentation, opt DeepeningOptions) (*PresentationResult, int, error) {
	g, release := resolveDeepening(opt)
	defer release()
	b := opt.Initial
	wordCap, nodeCap, chaseRounds, orderHi := 64, 512, 4, search.DefaultOrders.Lo
	if ig := b.Closure.Governor; ig != nil && ig.Limit(budget.Words) > 0 {
		wordCap = ig.Limit(budget.Words)
	}
	if ig := b.ModelSearch.Governor; ig != nil && ig.Limit(budget.Nodes) > 0 {
		nodeCap = ig.Limit(budget.Nodes)
	}
	if b.ModelSearch.Orders.Hi > 0 {
		orderHi = b.ModelSearch.Orders.Hi
	}
	var last *PresentationResult
	rounds := 0
	for round := 1; ; round++ {
		if o := g.Charge(budget.Rounds, 1); o.Stopped() {
			return last, rounds, nil
		}
		rounds = round
		b.Closure.Governor = g.Child(budget.Limits{Words: wordCap})
		b.ModelSearch.Governor = g.Child(budget.Limits{Nodes: nodeCap})
		b.ModelSearch.Orders = budget.Range{Lo: search.DefaultOrders.Lo, Hi: orderHi}
		b.Chase.Governor = g.Child(budget.Limits{Rounds: chaseRounds, Tuples: chase.DefaultLimits.Tuples})
		res, err := AnalyzePresentation(p, b)
		if err != nil {
			return nil, round, err
		}
		last = res
		// The deepen_round event closes the block of arm/sub-procedure
		// events this round produced (the stream is sequential here).
		b.emit(obs.Event{Type: obs.EvDeepenRound, Round: round, Verdict: res.Verdict.String()})
		if res.Verdict != Unknown {
			return res, round, nil
		}
		// Governor checkpoint between rounds: with the context also
		// threaded into every arm, overshoot past a deadline is bounded by
		// one arm checkpoint, not a whole round.
		if g.Interrupted().Stopped() {
			return res, round, nil
		}
		wordCap *= 2
		nodeCap *= 2
		orderHi++
		chaseRounds += 4
	}
}

// InferDeepening is the TD-level counterpart of
// AnalyzePresentationDeepening: it alternates the chase and the
// finite-database enumerator with geometrically increasing budgets until an
// answer or the governor stops it. Complete in the limit on both of the
// Main Theorem's sets.
func InferDeepening(deps []*td.TD, d0 *td.TD, opt DeepeningOptions) (InferenceResult, int, error) {
	g, release := resolveDeepening(opt)
	defer release()
	if opt.Portfolio {
		return inferPortfolioDeepening(deps, d0, opt, g)
	}
	b := opt.Initial
	b.Chase.SemiNaive = true
	chaseRounds, chaseTuples, fdbSize, fdbNodes := 2, 32, 1, 1024
	if ig := b.Chase.Governor; ig != nil {
		if n := ig.Limit(budget.Rounds); n > 0 {
			chaseRounds = n
		}
		if n := ig.Limit(budget.Tuples); n > 0 {
			chaseTuples = n
		}
	}
	if b.FiniteDB.Sizes.Hi > 0 {
		fdbSize = b.FiniteDB.Sizes.Hi
	}
	if ig := b.FiniteDB.Governor; ig != nil && ig.Limit(budget.Nodes) > 0 {
		fdbNodes = ig.Limit(budget.Nodes)
	}
	var last InferenceResult
	rounds := 0
	// Each round's chase resumes the previous round's snapshot instead of
	// re-deriving its prefix: the budget classes strictly grow between
	// rounds, so even a meter-stopped snapshot passes the budget-class rule
	// (chase.State.ReusableUnder) for the next round.
	var carry *chase.State
	for round := 1; ; round++ {
		if o := g.Charge(budget.Rounds, 1); o.Stopped() {
			return last, rounds, nil
		}
		rounds = round
		b.Chase.Governor = g.Child(budget.Limits{Rounds: chaseRounds, Tuples: chaseTuples})
		b.Chase.CaptureState = true
		b.Chase.WarmState = carry
		b.FiniteDB.Governor = g.Child(budget.Limits{Nodes: fdbNodes})
		b.FiniteDB.Sizes = budget.Range{Lo: 1, Hi: fdbSize}
		res, err := Infer(deps, d0, b)
		if err != nil {
			return InferenceResult{}, round, err
		}
		if res.Chase != nil && res.Chase.State != nil {
			carry = res.Chase.State
		}
		last = res
		b.emit(obs.Event{Type: obs.EvDeepenRound, Round: round, Verdict: res.Verdict.String()})
		if res.Verdict != Unknown || g.Interrupted().Stopped() {
			return res, round, nil
		}
		chaseRounds *= 2
		chaseTuples *= 4
		fdbSize++
		fdbNodes *= 4
	}
}

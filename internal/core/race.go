package core

import (
	"context"
	"runtime/pprof"
	"time"

	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/search"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// This file adds the two "run forever, answer when you can" front-ends that
// turn the budgeted procedures into genuine semidecision procedures:
//
//   - AnalyzePresentationRace runs the two semi-procedures CONCURRENTLY and
//     returns as soon as either certifies an answer;
//   - AnalyzePresentationDeepening runs rounds of geometrically increasing
//     budgets until an answer or a wall-clock deadline — complete in the
//     limit: every instance in either of the Main Theorem's two sets is
//     eventually decided, and (necessarily) instances in neither set run
//     until the deadline.

// RaceResult is the outcome of AnalyzePresentationRace.
type RaceResult struct {
	*PresentationResult
	// Winner names the side that produced the verdict: "derivation",
	// "model-search", or "" for Unknown.
	Winner string
}

// AnalyzePresentationRace runs the derivability search and the
// counter-model search in parallel goroutines and returns the first
// definitive answer (or Unknown when both budgets exhaust). The reduction
// instance is built once, up front.
func AnalyzePresentationRace(p *words.Presentation, budget Budget) (*RaceResult, error) {
	in, err := reduction.Build(p)
	if err != nil {
		return nil, err
	}

	budget = budget.withSink()
	type outcome struct {
		res    *PresentationResult
		winner string
		err    error
	}
	ch := make(chan outcome, 2)

	// Each arm runs under a pprof label so CPU profiles of long races
	// split by arm, and announces itself on the sink. Arm events from the
	// two goroutines interleave nondeterministically — sinks must be
	// concurrency-safe (see obs.Sink) — but each arm's own events stay
	// ordered.
	go pprof.Do(context.Background(), pprof.Labels("race_arm", "derivation"), func(context.Context) {
		budget.emit(obs.Event{Type: obs.EvArmStart, Arm: "derivation"})
		dres := words.DeriveGoal(in.Pres, budget.Closure)
		budget.emit(obs.Event{Type: obs.EvArmResult, Arm: "derivation", Verdict: dres.Verdict.String()})
		if dres.Verdict != words.Derivable {
			ch <- outcome{}
			return
		}
		res := &PresentationResult{Instance: in, Verdict: Implied, Derivation: dres.Derivation}
		ch <- outcome{res: res, winner: "derivation"}
	})
	go pprof.Do(context.Background(), pprof.Labels("race_arm", "model-search"), func(context.Context) {
		budget.emit(obs.Event{Type: obs.EvArmStart, Arm: "model-search"})
		sres, err := search.FindCounterModel(p, budget.ModelSearch)
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		budget.emit(obs.Event{Type: obs.EvArmResult, Arm: "model-search", Verdict: sres.Outcome.String()})
		if sres.Outcome != search.ModelFound {
			ch <- outcome{}
			return
		}
		cm, err := in.BuildCounterModel(sres.Interpretation)
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		if err := in.Verify(cm); err != nil {
			ch <- outcome{err: err}
			return
		}
		res := &PresentationResult{Instance: in, Verdict: FiniteCounterexample, Witness: sres.Interpretation, CounterModel: cm}
		ch <- outcome{res: res, winner: "model-search"}
	})

	var firstErr error
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		if o.res != nil {
			return &RaceResult{PresentationResult: o.res, Winner: o.winner}, nil
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &RaceResult{PresentationResult: &PresentationResult{Instance: in, Verdict: Unknown}}, nil
}

// DeepeningOptions configures AnalyzePresentationDeepening.
type DeepeningOptions struct {
	// Initial is the budget of the first round; every later round doubles
	// the word, node, and order budgets (orders grow by 1 per round).
	Initial Budget
	// Deadline bounds the total wall-clock time. <= 0 means 2 seconds.
	Deadline time.Duration
	// MaxRounds caps deepening rounds. <= 0 means 16.
	MaxRounds int
}

// AnalyzePresentationDeepening alternates the two semi-procedures with
// geometrically increasing budgets. It is complete in the limit (modulo the
// deadline): if the instance lies in either of the Main Theorem's sets, a
// large enough round certifies it.
func AnalyzePresentationDeepening(p *words.Presentation, opt DeepeningOptions) (*PresentationResult, int, error) {
	if opt.Deadline <= 0 {
		opt.Deadline = 2 * time.Second
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 16
	}
	b := opt.Initial
	if b.Closure.MaxWords <= 0 {
		b.Closure.MaxWords = 64
	}
	if b.ModelSearch.MaxNodes <= 0 {
		b.ModelSearch.MaxNodes = 512
	}
	if b.ModelSearch.MaxOrder <= 0 {
		b.ModelSearch.MaxOrder = 2
	}
	start := time.Now()
	var last *PresentationResult
	for round := 1; round <= opt.MaxRounds; round++ {
		res, err := AnalyzePresentation(p, b)
		if err != nil {
			return nil, round, err
		}
		last = res
		// The deepen_round event closes the block of arm/sub-procedure
		// events this round produced (the stream is sequential here).
		b.emit(obs.Event{Type: obs.EvDeepenRound, Round: round, Verdict: res.Verdict.String()})
		if res.Verdict != Unknown {
			return res, round, nil
		}
		if time.Since(start) > opt.Deadline {
			return res, round, nil
		}
		b.Closure.MaxWords *= 2
		b.ModelSearch.MaxNodes *= 2
		b.ModelSearch.MaxOrder++
		b.Chase.MaxRounds += 4
	}
	return last, opt.MaxRounds, nil
}

// InferDeepening is the TD-level counterpart of
// AnalyzePresentationDeepening: it alternates the chase and the
// finite-database enumerator with geometrically increasing budgets until an
// answer or the deadline. Complete in the limit on both of the Main
// Theorem's sets.
func InferDeepening(deps []*td.TD, d0 *td.TD, opt DeepeningOptions) (InferenceResult, int, error) {
	if opt.Deadline <= 0 {
		opt.Deadline = 2 * time.Second
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 16
	}
	b := opt.Initial
	if b.Chase.MaxRounds <= 0 {
		b.Chase.MaxRounds = 2
	}
	if b.Chase.MaxTuples <= 0 {
		b.Chase.MaxTuples = 32
	}
	b.Chase.SemiNaive = true
	if b.FiniteDB.MaxTuples <= 0 {
		b.FiniteDB.MaxTuples = 1
	}
	if b.FiniteDB.MaxNodes <= 0 {
		b.FiniteDB.MaxNodes = 1024
	}
	start := time.Now()
	var last InferenceResult
	for round := 1; round <= opt.MaxRounds; round++ {
		res, err := Infer(deps, d0, b)
		if err != nil {
			return InferenceResult{}, round, err
		}
		last = res
		b.emit(obs.Event{Type: obs.EvDeepenRound, Round: round, Verdict: res.Verdict.String()})
		if res.Verdict != Unknown || time.Since(start) > opt.Deadline {
			return res, round, nil
		}
		b.Chase.MaxRounds *= 2
		b.Chase.MaxTuples *= 4
		b.FiniteDB.MaxTuples++
		b.FiniteDB.MaxNodes *= 4
	}
	return last, opt.MaxRounds, nil
}

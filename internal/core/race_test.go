package core

import (
	"testing"
	"time"

	"templatedep/internal/search"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

func TestRaceImplied(t *testing.T) {
	res, err := AnalyzePresentationRace(words.TwoStepPresentation(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied || res.Winner != "derivation" {
		t.Errorf("verdict %v winner %q", res.Verdict, res.Winner)
	}
	if res.Derivation == nil {
		t.Error("missing derivation")
	}
}

func TestRaceCounterexample(t *testing.T) {
	// Make the derivation side exhaust fast so the model search wins.
	b := DefaultBudget()
	b.Closure = words.ClosureOptions{MaxWords: 10, MaxLength: 4}
	res, err := AnalyzePresentationRace(words.PowerPresentation(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != FiniteCounterexample || res.Winner != "model-search" {
		t.Errorf("verdict %v winner %q", res.Verdict, res.Winner)
	}
	if res.CounterModel == nil {
		t.Error("missing counter-model")
	}
}

func TestRaceUnknown(t *testing.T) {
	b := DefaultBudget()
	b.Closure = words.ClosureOptions{MaxWords: 50, MaxLength: 6}
	b.ModelSearch = search.Options{MaxOrder: 3, MaxNodes: 10000}
	res, err := AnalyzePresentationRace(words.IdempotentGapPresentation(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown || res.Winner != "" {
		t.Errorf("verdict %v winner %q", res.Verdict, res.Winner)
	}
}

func TestDeepeningFindsAnswersFromTinyBudgets(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
		want Verdict
	}{
		{"twostep", words.TwoStepPresentation(), Implied},
		{"power", words.PowerPresentation(), FiniteCounterexample},
		{"chain2", words.ChainPresentation(2), Implied},
	} {
		res, rounds, err := AnalyzePresentationDeepening(tc.p, DeepeningOptions{Deadline: 10 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Verdict != tc.want {
			t.Errorf("%s: verdict %v after %d rounds, want %v", tc.name, res.Verdict, rounds, tc.want)
		}
	}
}

func TestInferDeepening(t *testing.T) {
	s, fig1 := td.GarmentExample()
	_ = s
	// Self-implication: found at some deepening round.
	res, rounds, err := InferDeepening([]*td.TD{fig1}, fig1, DeepeningOptions{Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Errorf("verdict %v after %d rounds", res.Verdict, rounds)
	}
	// Non-implication: the chase fixpoint (or enumerator) refutes.
	cross := td.MustParse(fig1.Schema(), "R(a, b, c) & R(a', b', c') -> R(a*, b, c')", "cross")
	res2, _, err := InferDeepening([]*td.TD{fig1}, cross, DeepeningOptions{Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != FiniteCounterexample {
		t.Errorf("verdict %v", res2.Verdict)
	}
}

func TestDeepeningGapStaysUnknown(t *testing.T) {
	res, rounds, err := AnalyzePresentationDeepening(words.IdempotentGapPresentation(),
		DeepeningOptions{Deadline: 300 * time.Millisecond, MaxRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict %v after %d rounds — the gap instance must stay undecided", res.Verdict, rounds)
	}
}

package core

import (
	"templatedep/internal/budget"
	"testing"
	"time"

	"templatedep/internal/search"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

func TestRaceImplied(t *testing.T) {
	res, err := AnalyzePresentationRace(words.TwoStepPresentation(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied || res.Winner != "derivation" {
		t.Errorf("verdict %v winner %q", res.Verdict, res.Winner)
	}
	if res.Derivation == nil {
		t.Error("missing derivation")
	}
}

func TestRaceCounterexample(t *testing.T) {
	// Make the derivation side exhaust fast so the model search wins.
	b := DefaultBudget()
	b.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 10}), LengthCap: 4}
	res, err := AnalyzePresentationRace(words.PowerPresentation(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != FiniteCounterexample || res.Winner != "model-search" {
		t.Errorf("verdict %v winner %q", res.Verdict, res.Winner)
	}
	if res.CounterModel == nil {
		t.Error("missing counter-model")
	}
}

func TestRaceUnknown(t *testing.T) {
	b := DefaultBudget()
	b.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 50}), LengthCap: 6}
	b.ModelSearch = search.Options{Orders: budget.Range{Lo: 2, Hi: 3}, Governor: budget.New(nil, budget.Limits{Nodes: 10000})}
	res, err := AnalyzePresentationRace(words.IdempotentGapPresentation(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown || res.Winner != "" {
		t.Errorf("verdict %v winner %q", res.Verdict, res.Winner)
	}
}

func TestDeepeningFindsAnswersFromTinyBudgets(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
		want Verdict
	}{
		{"twostep", words.TwoStepPresentation(), Implied},
		{"power", words.PowerPresentation(), FiniteCounterexample},
		{"chain2", words.ChainPresentation(2), Implied},
	} {
		g, cancel := budget.ForDuration(10*time.Second, budget.Limits{Rounds: 16})
		res, rounds, err := AnalyzePresentationDeepening(tc.p, DeepeningOptions{Governor: g})
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Verdict != tc.want {
			t.Errorf("%s: verdict %v after %d rounds, want %v", tc.name, res.Verdict, rounds, tc.want)
		}
	}
}

func TestInferDeepening(t *testing.T) {
	s, fig1 := td.GarmentExample()
	_ = s
	// Self-implication: found at some deepening round.
	g1, cancel1 := budget.ForDuration(5*time.Second, budget.Limits{Rounds: 16})
	defer cancel1()
	res, rounds, err := InferDeepening([]*td.TD{fig1}, fig1, DeepeningOptions{Governor: g1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Errorf("verdict %v after %d rounds", res.Verdict, rounds)
	}
	// Non-implication: the chase fixpoint (or enumerator) refutes.
	cross := td.MustParse(fig1.Schema(), "R(a, b, c) & R(a', b', c') -> R(a*, b, c')", "cross")
	g2, cancel2 := budget.ForDuration(5*time.Second, budget.Limits{Rounds: 16})
	defer cancel2()
	res2, _, err := InferDeepening([]*td.TD{fig1}, cross, DeepeningOptions{Governor: g2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != FiniteCounterexample {
		t.Errorf("verdict %v", res2.Verdict)
	}
}

// Regression: a race deadline must not overshoot by more than one
// checkpoint batch. Before the governor refactor, each arm polled its own
// deadline only between rounds, so on the divergent gap instance a single
// deep round (minutes of trigger enumeration) could hold the race open far
// past its budget. The arms now poll the shared context inside their loops
// — per dequeued word, per 4096 search nodes, per 4096 chase
// homomorphisms — so the whole race returns within one batch of the
// deadline. The wall-clock bound below is a generous CI margin, still far
// below the minutes a per-round-only poll would take.
func TestRaceDeadlineOvershootBounded(t *testing.T) {
	g, cancel := budget.ForDuration(150*time.Millisecond, budget.Limits{})
	defer cancel()
	b := DefaultBudget()
	b.Governor = g
	// Per-arm budgets so large that only the deadline can stop the run. On
	// the gap presentation the model-search arm refutes its whole order
	// range structurally (zero nodes), so the derivation arm — exploring
	// the infinite class A0, A0·A0, ... — is the one that must notice the
	// deadline.
	b.Closure = words.ClosureOptions{Governor: g.Child(budget.Limits{Words: 1 << 30}), LengthCap: 1 << 30}
	b.ModelSearch = search.Options{Orders: budget.Range{Lo: 2, Hi: 64}, Governor: g.Child(budget.Limits{})}
	start := time.Now()
	res, err := AnalyzePresentationRace(words.IdempotentGapPresentation(), b)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown || res.Winner != "" {
		t.Errorf("verdict %v winner %q, want unknown with no winner", res.Verdict, res.Winner)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline overshoot: 150ms budget took %v", elapsed)
	}
}

func TestDeepeningGapStaysUnknown(t *testing.T) {
	g, cancel := budget.ForDuration(300*time.Millisecond, budget.Limits{Rounds: 6})
	defer cancel()
	res, rounds, err := AnalyzePresentationDeepening(words.IdempotentGapPresentation(),
		DeepeningOptions{Governor: g})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict %v after %d rounds — the gap instance must stay undecided", res.Verdict, rounds)
	}
}

// Package core is the high-level facade of the library: it wires the word
// problem solvers, the finite-model searches, the reduction, and the chase
// into the paper's dual semidecision picture.
//
// The Main Theorem says the sets
//
//	IMPL = {(D, D0) : D0 holds in every database satisfying D}
//	FCEX = {(D, D0) : D0 fails in some finite database satisfying D}
//
// are effectively inseparable — no algorithm decides between them. What CAN
// be done, and what this package does, is run a semi-procedure for each set
// side by side under explicit budgets:
//
//   - the chase semidecides IMPL (a proof trace certifies membership);
//   - finite-database / finite-semigroup search semidecides FCEX (a
//     counterexample certifies membership);
//   - on instances in neither set — they exist, e.g. the reduction of
//     {A0·A0 = A0} — both procedures run forever, and a budgeted run
//     reports Unknown. Undecidability guarantees that no budget heuristic
//     can eliminate the Unknown outcome; this library makes the phenomenon
//     observable rather than pretending to decide it.
package core

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/chase"
	"templatedep/internal/finitemodel"
	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/rewrite"
	"templatedep/internal/search"
	"templatedep/internal/semigroup"
	"templatedep/internal/td"
	"templatedep/internal/tm"
	"templatedep/internal/words"
)

// Budget bundles the budgets of every sub-procedure.
type Budget struct {
	Chase       chase.Options
	Closure     words.ClosureOptions
	ModelSearch search.Options
	FiniteDB    finitemodel.Options
	// Governor is the run-wide governor: its context (cancellation,
	// deadline) is inherited by every sub-procedure whose options do not
	// already carry a governor, via child governors metering under each
	// engine's default limits. One SIGINT or deadline therefore stops the
	// whole dual run, while each arm keeps its own meters.
	Governor *budget.Governor
	// Sink receives the front-end's own events (which arm is running,
	// arm outcomes, deepening rounds, the verdict) and is propagated to
	// every sub-procedure whose options do not already carry a sink, so
	// one sink observes the whole dual run. See docs/OBSERVABILITY.md.
	Sink obs.Sink
	// Certify makes every definitive TD-level verdict carry a serializable
	// certificate (Cert() on the result): chase tracing is forced on so an
	// Implied verdict has a replayable trace. Off by default — tracing
	// costs allocations on the hot path, so benchmarks stay unchanged.
	Certify bool
}

// withSink propagates b.Sink into sub-procedure options that have none,
// returning the adjusted copy.
func (b Budget) withSink() Budget {
	if b.Sink != nil {
		if b.Chase.Sink == nil {
			b.Chase.Sink = b.Sink
		}
		if b.ModelSearch.Sink == nil {
			b.ModelSearch.Sink = b.Sink
		}
		if b.FiniteDB.Sink == nil {
			b.FiniteDB.Sink = b.Sink
		}
	}
	return b
}

// withGovernor derives child governors from b.Governor for sub-procedures
// that have none: children share the parent context but meter
// independently under each engine's default limits, replacing the old
// per-engine Max* knobs with one cancellation root.
func (b Budget) withGovernor() Budget {
	if b.Governor == nil {
		return b
	}
	if b.Chase.Governor == nil {
		b.Chase.Governor = b.Governor.Child(chase.DefaultLimits)
	}
	if b.Closure.Governor == nil {
		b.Closure.Governor = b.Governor.Child(words.DefaultLimits)
	}
	if b.ModelSearch.Governor == nil {
		b.ModelSearch.Governor = b.Governor.Child(search.DefaultLimits)
	}
	if b.FiniteDB.Governor == nil {
		b.FiniteDB.Governor = b.Governor.Child(finitemodel.DefaultLimits)
	}
	return b
}

// completionGovernor builds the governor for the bounded Knuth–Bendix
// fallback: tighter than rewrite.DefaultLimits because completion is a
// side-check here, inheriting the run's context when one exists.
func (b Budget) completionGovernor() *budget.Governor {
	l := budget.Limits{Rules: 200, Rounds: 25}
	if b.Governor != nil {
		return b.Governor.Child(l)
	}
	return budget.New(nil, l)
}

// emit sends e to the budget's sink with Src "core".
func (b Budget) emit(e obs.Event) {
	if b.Sink != nil {
		e.Src = "core"
		b.Sink.Event(e)
	}
}

// DefaultBudget returns moderate budgets suitable for interactive use.
func DefaultBudget() Budget {
	return Budget{
		Chase:       chase.DefaultOptions(),
		Closure:     words.DefaultClosureOptions(),
		ModelSearch: search.DefaultOptions(),
		FiniteDB:    finitemodel.DefaultOptions(),
	}
}

// Verdict is the outcome of a dual semidecision run.
type Verdict int

const (
	// Unknown means neither semi-procedure reached an answer in budget.
	Unknown Verdict = iota
	// Implied means D logically implies D0.
	Implied
	// FiniteCounterexample means a finite database satisfies D and
	// violates D0.
	FiniteCounterexample
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case FiniteCounterexample:
		return "finite-counterexample"
	default:
		return "unknown"
	}
}

// MarshalText renders the verdict as its String form, so JSON documents
// (the serving layer's responses, load reports) carry "implied" rather
// than an opaque integer.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses the String form back.
func (v *Verdict) UnmarshalText(text []byte) error {
	switch string(text) {
	case "implied":
		*v = Implied
	case "finite-counterexample":
		*v = FiniteCounterexample
	case "unknown":
		*v = Unknown
	default:
		return fmt.Errorf("core: unknown verdict %q", text)
	}
	return nil
}

// InferenceResult reports a TD-level dual semidecision run.
type InferenceResult struct {
	Verdict Verdict
	// Chase holds the chase run (its trace is the proof when Implied; its
	// fixpoint is the counterexample when the chase itself refuted).
	Chase *chase.Result
	// Counterexample is the finite database violating D0, when found
	// (either the chase fixpoint or the enumerator's witness).
	Counterexample *relation.Instance

	cert *cert.Certificate
}

// Cert returns the run's serializable certificate: non-nil for every
// definitive verdict of a run with Budget.Certify set (and for portfolio
// runs whose winning arm's verdict could be certified), nil for Unknown
// and for uncertified runs.
func (r InferenceResult) Cert() *cert.Certificate { return r.cert }

// WithCert returns a copy of r carrying c; it is how layers that rebuild
// an InferenceResult from parts (the portfolio front-end, the CLIs'
// presentation adapter) thread a certificate through without exporting
// the field itself.
func (r InferenceResult) WithCert(c *cert.Certificate) InferenceResult {
	r.cert = c
	return r
}

// Infer runs the dual semidecision for an arbitrary TD instance: the chase
// for IMPL and, if the chase is inconclusive, the finite-database
// enumerator for FCEX.
func Infer(deps []*td.TD, d0 *td.TD, b Budget) (InferenceResult, error) {
	b = b.withSink().withGovernor()
	if b.Certify && !b.Chase.CaptureState {
		// Force tracing so an Implied verdict has a replayable proof.
		// Snapshot-capturing runs (the serving layer's warm-state cache)
		// stay untraced — tracing makes snapshots ineligible — and
		// certify by replay instead.
		b.Chase.Trace = true
	}
	doc := func() cert.Problem { return cert.TDProblem(d0.Schema(), deps, d0) }
	// certImplied turns an Implied chase result into a certificate: its own
	// trace when the run recorded a complete one, a deterministic traced
	// replay under the same budget class (with margin) otherwise.
	certImplied := func(cres *chase.Result) *cert.Certificate {
		if len(cres.Trace) > 0 && !cres.WarmStarted {
			return cert.NewChase(doc(), cres.Trace)
		}
		var lim budget.Limits
		if b.Chase.Governor != nil {
			l := b.Chase.Governor.Limits()
			if l.Rounds > 0 {
				lim.Rounds = 2*l.Rounds + 4
			}
			if l.Tuples > 0 {
				lim.Tuples = 4*l.Tuples + 1024
			}
		}
		return cert.CertifyImplied(doc(), deps, d0, lim)
	}
	verdict := func(res InferenceResult) (InferenceResult, error) {
		b.emit(obs.Event{Type: obs.EvVerdict, Verdict: res.Verdict.String()})
		return res, nil
	}
	b.emit(obs.Event{Type: obs.EvArmStart, Arm: "chase"})
	cres, err := chase.Implies(deps, d0, b.Chase)
	if err != nil {
		return InferenceResult{}, err
	}
	b.emit(obs.Event{Type: obs.EvArmResult, Arm: "chase", Verdict: cres.Verdict.String()})
	switch cres.Verdict {
	case chase.Implied:
		res := InferenceResult{Verdict: Implied, Chase: &cres}
		if b.Certify {
			res.cert = certImplied(&cres)
		}
		return verdict(res)
	case chase.NotImplied:
		res := InferenceResult{Verdict: FiniteCounterexample, Chase: &cres, Counterexample: cres.Instance}
		if b.Certify {
			res.cert = cert.NewFiniteModel(doc(), cres.Instance, nil)
		}
		return verdict(res)
	}
	b.emit(obs.Event{Type: obs.EvArmStart, Arm: "finite-db"})
	fres, err := finitemodel.FindCounterexample(deps, d0, b.FiniteDB)
	if err != nil {
		return InferenceResult{}, err
	}
	b.emit(obs.Event{Type: obs.EvArmResult, Arm: "finite-db", Verdict: fres.Status()})
	if fres.Instance != nil {
		res := InferenceResult{Verdict: FiniteCounterexample, Chase: &cres, Counterexample: fres.Instance}
		if b.Certify {
			res.cert = cert.NewFiniteModel(doc(), fres.Instance, nil)
		}
		return verdict(res)
	}
	return verdict(InferenceResult{Verdict: Unknown, Chase: &cres})
}

// PresentationResult reports a presentation-level run of the paper's
// pipeline.
type PresentationResult struct {
	Verdict Verdict
	// Instance is the reduction's (D, D0).
	Instance *reduction.Instance
	// Derivation certifies the goal (Verdict Implied).
	Derivation *words.Derivation
	// ChaseProof is present when the chase confirmed D ⊨ D0 in budget.
	ChaseProof *chase.Result
	// Witness and CounterModel certify Verdict FiniteCounterexample.
	Witness      *semigroup.Interpretation
	CounterModel *reduction.CounterModel
	// GoalRefuted reports that the word-problem layer DEFINITIVELY refuted
	// derivability of A0 = 0 (the equational class of A0 was exhausted, or
	// Knuth–Bendix completion decided the word problem negatively). This
	// rules out certifying implication via Reduction Theorem (A); it does
	// NOT by itself settle the TD question — the reduction maps only
	// derivable instances into IMPL and finitely-refutable ones into FCEX,
	// and the gap between them is where the undecidability lives.
	GoalRefuted bool
}

// Cert assembles the run's serializable certificate from the proof
// objects the pipeline already carries, embedding the ORIGINAL
// presentation (the checker rebuilds the reduction deterministically):
// an equational derivation or a chase trace for Implied, the
// counter-database plus the semigroup witness for FiniteCounterexample.
// Nil for Unknown, and for definitive verdicts whose run kept no proof
// object (an untraced chase win — certify those with cert.CertifyImplied).
func (r *PresentationResult) Cert() *cert.Certificate {
	if r == nil || r.Instance == nil || r.Instance.Original == nil {
		return nil
	}
	doc := cert.PresentationProblem(r.Instance.Original)
	switch r.Verdict {
	case Implied:
		if r.Derivation != nil {
			return cert.NewDerivation(doc, r.Instance.Pres, r.Derivation)
		}
		if r.ChaseProof != nil {
			return cert.NewChase(doc, r.ChaseProof.Trace)
		}
	case FiniteCounterexample:
		if r.CounterModel != nil {
			return cert.NewFiniteModel(doc, r.CounterModel.Instance, r.Witness)
		}
	}
	return nil
}

// AnalyzePresentation runs the full pipeline on a semigroup presentation:
// build (D, D0), then run the word-problem semi-procedure (whose success
// implies, by Reduction Theorem (A), that D ⊨ D0 — confirmed by the chase
// when the chase budget allows) and the finite-cancellation-model search
// (whose success yields, by (B), a finite counterexample database —
// verified tuple by tuple).
func AnalyzePresentation(p *words.Presentation, b Budget) (*PresentationResult, error) {
	b = b.withSink().withGovernor()
	in, err := reduction.Build(p)
	if err != nil {
		return nil, err
	}
	res := &PresentationResult{Instance: in}
	verdict := func() (*PresentationResult, error) {
		b.emit(obs.Event{Type: obs.EvVerdict, Verdict: res.Verdict.String()})
		return res, nil
	}

	b.emit(obs.Event{Type: obs.EvArmStart, Arm: "derivation"})
	dres := words.DeriveGoal(in.Pres, b.Closure)
	b.emit(obs.Event{Type: obs.EvArmResult, Arm: "derivation", Verdict: dres.Verdict.String()})
	if dres.Verdict == words.Derivable {
		res.Verdict = Implied
		res.Derivation = dres.Derivation
		// Confirm with a traced chase run and validate the trace
		// independently before exposing it as a proof.
		cres, err := chase.ProveImplies(in.D, in.D0, b.Chase)
		if err != nil {
			return nil, err
		}
		if cres.Verdict == chase.Implied {
			res.ChaseProof = &cres
		}
		return verdict()
	}

	if dres.Verdict == words.NotDerivable {
		res.GoalRefuted = true
	} else {
		// The closure was inconclusive; try Knuth–Bendix completion, which
		// can refute derivability even when A0's equational class is
		// infinite.
		sys := rewrite.FromPresentation(in.Pres)
		copt := rewrite.CompletionOptions{Governor: b.completionGovernor(), Sink: b.Sink}
		if cres, err := sys.Complete(copt); err == nil && cres.Confluent {
			if decided, err := sys.DecideGoal(); err == nil && !decided {
				res.GoalRefuted = true
			}
		}
	}

	b.emit(obs.Event{Type: obs.EvArmStart, Arm: "model-search"})
	sres, err := search.FindCounterModel(p, b.ModelSearch)
	if err != nil {
		return nil, err
	}
	b.emit(obs.Event{Type: obs.EvArmResult, Arm: "model-search", Verdict: sres.Status()})
	if sres.Interpretation != nil {
		cm, err := in.BuildCounterModel(sres.Interpretation)
		if err != nil {
			return nil, err
		}
		if err := in.Verify(cm); err != nil {
			return nil, fmt.Errorf("core: counter-model failed verification: %w", err)
		}
		res.Verdict = FiniteCounterexample
		res.Witness = sres.Interpretation
		res.CounterModel = cm
		return verdict()
	}
	res.Verdict = Unknown
	return verdict()
}

// AnalyzeTM encodes a Turing machine's halting on the given input and runs
// the presentation pipeline: a halting machine yields Verdict Implied.
func AnalyzeTM(m *tm.TM, input []int, b Budget) (*PresentationResult, error) {
	p, err := tm.EncodePresentation(m, input)
	if err != nil {
		return nil, err
	}
	return AnalyzePresentation(p, b)
}

package core

import (
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/finitemodel"
	"templatedep/internal/relation"
	"templatedep/internal/search"
	"templatedep/internal/td"
	"templatedep/internal/tm"
	"templatedep/internal/words"
)

func TestInferImplied(t *testing.T) {
	_, fig1 := td.GarmentExample()
	res, err := Infer([]*td.TD{fig1}, fig1, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Errorf("verdict %v", res.Verdict)
	}
	if res.Chase == nil {
		t.Error("missing chase proof")
	}
}

func TestInferCounterexampleViaChaseFixpoint(t *testing.T) {
	_, fig1 := td.GarmentExample()
	res, err := Infer(nil, fig1, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != FiniteCounterexample {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Counterexample == nil {
		t.Fatal("missing counterexample")
	}
	if ok, _ := fig1.Satisfies(res.Counterexample); ok {
		t.Error("counterexample satisfies D0")
	}
}

func TestInferCounterexampleViaEnumerator(t *testing.T) {
	// Force the chase to be inconclusive with a tiny budget, so the
	// enumerator must find the counterexample.
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "goal")
	b := DefaultBudget()
	b.Chase = chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 1, Tuples: 3}), SemiNaive: true}
	b.FiniteDB = finitemodel.Options{Governor: budget.New(nil, budget.Limits{Tuples: 3})}
	res, err := Infer([]*td.TD{join}, goal, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != FiniteCounterexample {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if ok, _ := join.Satisfies(res.Counterexample); !ok {
		t.Error("counterexample violates D")
	}
}

func TestInferUnknown(t *testing.T) {
	_, fig1 := td.GarmentExample()
	b := DefaultBudget()
	b.Chase = chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 1, Tuples: 2}), SemiNaive: true} // cannot finish
	b.FiniteDB = finitemodel.Options{Sizes: budget.Range{Lo: 1, Hi: 1}, Governor: budget.New(nil, budget.Limits{Nodes: 5})}
	res, err := Infer([]*td.TD{fig1}, fig1, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict %v", res.Verdict)
	}
}

func TestAnalyzePresentationImplied(t *testing.T) {
	b := DefaultBudget()
	b.Chase = chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true}
	res, err := AnalyzePresentation(words.TwoStepPresentation(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Derivation == nil {
		t.Error("missing derivation certificate")
	}
	if res.ChaseProof == nil {
		t.Error("chase should confirm within budget")
	}
}

func TestAnalyzePresentationCounterexample(t *testing.T) {
	res, err := AnalyzePresentation(words.PowerPresentation(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != FiniteCounterexample {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.CounterModel == nil || res.Witness == nil {
		t.Fatal("missing counterexample artifacts")
	}
	// The database-level counterexample is verified inside; spot-check D0.
	if ok, _ := res.Instance.D0.Satisfies(res.CounterModel.Instance); ok {
		t.Error("counter-model satisfies D0")
	}
}

func TestGoalRefutedFlag(t *testing.T) {
	// power: the closure exhausts A0's singleton class — refuted directly.
	res, err := AnalyzePresentation(words.PowerPresentation(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if !res.GoalRefuted {
		t.Error("power: goal refutation not reported")
	}
	// gap: the class is infinite, but Knuth–Bendix completion succeeds and
	// decides the word problem negatively.
	b := DefaultBudget()
	b.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 200}), LengthCap: 8}
	b.ModelSearch = search.Options{Orders: budget.Range{Lo: 2, Hi: 3}, Governor: budget.New(nil, budget.Limits{Nodes: 100000})}
	res2, err := AnalyzePresentation(words.IdempotentGapPresentation(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != Unknown {
		t.Fatalf("verdict %v", res2.Verdict)
	}
	if !res2.GoalRefuted {
		t.Error("gap: completion should refute derivability")
	}
	// twostep: derivable — no refutation.
	res3, err := AnalyzePresentation(words.TwoStepPresentation(), DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res3.GoalRefuted {
		t.Error("twostep: spurious refutation")
	}
}

func TestAnalyzePresentationUnknownGap(t *testing.T) {
	// The idempotent-gap instance lies in NEITHER set; with finite budgets
	// the result must be Unknown.
	b := DefaultBudget()
	b.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 300}), LengthCap: 8}
	b.ModelSearch = search.Options{Orders: budget.Range{Lo: 2, Hi: 4}, Governor: budget.New(nil, budget.Limits{Nodes: 200000})}
	res, err := AnalyzePresentation(words.IdempotentGapPresentation(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict %v — the gap instance must stay undecided", res.Verdict)
	}
}

func TestAnalyzeTMHalting(t *testing.T) {
	b := DefaultBudget()
	b.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 200000})}
	// Skip the chase confirmation for the TM instance (its schema is wide);
	// the derivation alone certifies direction (A).
	b.Chase = chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 1, Tuples: 50}), SemiNaive: true}
	res, err := AnalyzeTM(tm.WriteOneAndHalt(), nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Derivation == nil {
		t.Fatal("missing derivation")
	}
}

package core

import (
	"templatedep/internal/budget"
	"templatedep/internal/chase"
	"templatedep/internal/obs"
	"templatedep/internal/portfolio"
	"templatedep/internal/td"
)

// This file bridges the static front-ends onto internal/portfolio, the
// adaptive scheduler that replaces fixed up-front arm budgets with leases
// reallocated from live progress signals. The bridge owns the vocabulary
// translation in both directions: a core Budget becomes portfolio Options
// (arm governors contribute their limits as hard ceilings, the run-wide
// governor becomes the parent pool), and a portfolio Verdict maps back
// onto the core one by construction — the two enums share values and
// strings.

// PortfolioOptions derives portfolio Options from the budget: each arm
// governor's limits become that arm's hard ceilings, the run-wide
// governor becomes the parent pool (its context cancels the portfolio at
// the next lease boundary; any meter it caps becomes shared headroom),
// and the sink and chase worker count thread through. The EID arm
// mirrors the chase ceilings — the two chases meter the same resources —
// and completion runs under the same bounded side-check governor as the
// static pipeline's Knuth–Bendix fallback.
func (b Budget) PortfolioOptions() portfolio.Options {
	opt := portfolio.Options{
		Governor:    b.Governor,
		Sink:        b.Sink,
		Workers:     b.Chase.Workers,
		Certify:     b.Certify,
		Chase:       b.Chase,
		ModelSearch: b.ModelSearch,
		FiniteDB:    b.FiniteDB,
	}
	opt.EID.Governor = b.Chase.Governor
	opt.Completion.Governor = b.completionGovernor()
	return opt
}

// VerdictOf maps a portfolio verdict onto the core vocabulary.
func VerdictOf(v portfolio.Verdict) Verdict {
	switch v {
	case portfolio.Implied:
		return Implied
	case portfolio.FiniteCounterexample:
		return FiniteCounterexample
	default:
		return Unknown
	}
}

// inferPortfolioDeepening is the adaptive body of InferDeepening: rounds
// of portfolio runs under geometrically growing arm ceilings, with the
// learned allocation state (portfolio Memory) and the chase snapshot
// carried from round to round, so a later round neither re-learns that
// the chase wants tuples faster than rounds nor re-derives the chase
// prefix.
func inferPortfolioDeepening(deps []*td.TD, d0 *td.TD, opt DeepeningOptions, g *budget.Governor) (InferenceResult, int, error) {
	b := opt.Initial
	chaseRounds, chaseTuples, fdbSize, fdbNodes := 2, 32, 1, 1024
	if ig := b.Chase.Governor; ig != nil {
		if n := ig.Limit(budget.Rounds); n > 0 {
			chaseRounds = n
		}
		if n := ig.Limit(budget.Tuples); n > 0 {
			chaseTuples = n
		}
	}
	if b.FiniteDB.Sizes.Hi > 0 {
		fdbSize = b.FiniteDB.Sizes.Hi
	}
	if ig := b.FiniteDB.Governor; ig != nil && ig.Limit(budget.Nodes) > 0 {
		fdbNodes = ig.Limit(budget.Nodes)
	}
	var last InferenceResult
	var mem *portfolio.Memory
	var carry *chase.State
	rounds := 0
	for round := 1; ; round++ {
		if o := g.Charge(budget.Rounds, 1); o.Stopped() {
			return last, rounds, nil
		}
		rounds = round
		po := b.PortfolioOptions()
		// The deepening governor's rounds meter counts DEEPENING rounds;
		// the portfolio must not drain it with chase rounds, so the parent
		// pool is a meterless child sharing only the cancellation context.
		po.Governor = g.Child(budget.Limits{})
		po.Chase.Governor = budget.New(nil, budget.Limits{Rounds: chaseRounds, Tuples: chaseTuples})
		po.EID.Governor = po.Chase.Governor
		po.FiniteDB.Governor = budget.New(nil, budget.Limits{Nodes: fdbNodes})
		po.FiniteDB.Sizes = budget.Range{Lo: 1, Hi: fdbSize}
		po.Chase.CaptureState = true
		po.Chase.WarmState = carry
		po.Memory = mem
		res, err := portfolio.Infer(deps, d0, po)
		if err != nil {
			return InferenceResult{}, round, err
		}
		mem = res.Memory
		if res.Chase != nil && res.Chase.State != nil {
			carry = res.Chase.State
		}
		last = InferenceResult{Verdict: VerdictOf(res.Verdict), Chase: res.Chase, Counterexample: res.Counterexample, cert: res.Cert()}
		b.emit(obs.Event{Type: obs.EvDeepenRound, Round: round, Verdict: last.Verdict.String()})
		if last.Verdict != Unknown || g.Interrupted().Stopped() {
			return last, round, nil
		}
		chaseRounds *= 2
		chaseTuples *= 4
		fdbSize++
		fdbNodes *= 4
	}
}

package core_test

import (
	"fmt"

	"templatedep/internal/core"
	"templatedep/internal/words"
)

func ExampleAnalyzePresentation() {
	// The two-step instance: A0 = b·c = 0 is derivable, so by Reduction
	// Theorem (A) the generated dependency set implies D0.
	res, err := core.AnalyzePresentation(words.TwoStepPresentation(), core.DefaultBudget())
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", res.Verdict)
	fmt.Println("derivation steps:", res.Derivation.Len())
	fmt.Println("dependencies:", len(res.Instance.D))
	// Output:
	// verdict: implied
	// derivation steps: 2
	// dependencies: 36
}

func ExampleAnalyzePresentation_counterexample() {
	// {A0·A0 = B}: falsified by a finite cancellation semigroup, so by
	// part (B) a finite database separates D from D0.
	res, err := core.AnalyzePresentation(words.PowerPresentation(), core.DefaultBudget())
	if err != nil {
		panic(err)
	}
	fmt.Println("verdict:", res.Verdict)
	fmt.Println("witness order:", res.Witness.Table.Size())
	fmt.Println("database tuples:", res.CounterModel.Instance.Len())
	// Output:
	// verdict: finite-counterexample
	// witness order: 2
	// database tuples: 3
}

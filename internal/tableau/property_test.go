package tableau

import (
	"math/rand"
	"testing"
	"testing/quick"

	"templatedep/internal/relation"
)

// bruteCount enumerates every row-to-tuple map and counts the consistent
// ones — the specification CountHomomorphisms must match.
func bruteCount(t *Tableau, inst *relation.Instance) int {
	tuples := inst.Tuples()
	k := t.Len()
	idx := make([]int, k)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			as := NewAssignment(t)
			for ri := 0; ri < k; ri++ {
				row := t.Row(ri)
				tup := tuples[idx[ri]]
				for a, v := range row {
					if as[a][v] == Unbound {
						as[a][v] = tup[a]
					} else if as[a][v] != tup[a] {
						return
					}
				}
			}
			count++
			return
		}
		for j := range tuples {
			idx[i] = j
			rec(i + 1)
		}
	}
	if len(tuples) == 0 {
		return 0
	}
	rec(0)
	return count
}

// Property: the pruned backtracking search counts exactly the same
// homomorphisms as brute-force enumeration, on random tableaux and
// instances.
func TestHomomorphismCountMatchesBruteForce(t *testing.T) {
	s := relation.MustSchema("A", "B")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := make([]VarTuple, 1+rng.Intn(3))
		for i := range rows {
			rows[i] = VarTuple{Var(rng.Intn(2)), Var(rng.Intn(3))}
		}
		tab, err := New(s, rows)
		if err != nil {
			return false
		}
		inst := relation.NewInstance(s)
		for i := 0; i < 1+rng.Intn(5); i++ {
			inst.MustAdd(relation.Tuple{relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3))})
		}
		got := tab.CountHomomorphisms(inst, nil)
		want := bruteCount(tab, inst)
		if got != want {
			t.Logf("seed %d: got %d, brute %d\ntableau:\n%s\ninstance:\n%s", seed, got, want, tab, inst)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(29))}); err != nil {
		t.Error(err)
	}
}

// Property: the indexed RowSatisfiable agrees with the linear scan on
// random rows, assignments, and instances.
func TestRowSatisfiableMatchesScan(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab, err := New(s, []VarTuple{{0, 0, 0}, {1, 1, 1}})
		if err != nil {
			return false
		}
		inst := relation.NewInstance(s)
		for i := 0; i < rng.Intn(6); i++ {
			inst.MustAdd(relation.Tuple{relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3))})
		}
		as := NewAssignment(tab)
		for a := 0; a < 3; a++ {
			for v := 0; v < tab.VarCount(relation.Attr(a)); v++ {
				if rng.Intn(2) == 0 {
					as[a][v] = relation.Value(rng.Intn(4))
				}
			}
		}
		row := tab.Row(rng.Intn(2))
		return RowSatisfiable(row, as, inst) == RowSatisfiableScan(row, as, inst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Error(err)
	}
}

// Property: HasHomomorphism agrees with CountHomomorphisms > 0 under random
// seeds binding a prefix of the variables.
func TestSeededHomSearchConsistency(t *testing.T) {
	s := relation.MustSchema("A", "B")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab, err := New(s, []VarTuple{{0, 0}, {Var(rng.Intn(2)), 1}})
		if err != nil {
			return false
		}
		inst := relation.NewInstance(s)
		for i := 0; i < 2+rng.Intn(4); i++ {
			inst.MustAdd(relation.Tuple{relation.Value(rng.Intn(2)), relation.Value(rng.Intn(3))})
		}
		sd := NewAssignment(tab)
		if rng.Intn(2) == 0 {
			sd[0][0] = relation.Value(rng.Intn(2))
		}
		if rng.Intn(2) == 0 {
			sd[1][0] = relation.Value(rng.Intn(3))
		}
		return tab.HasHomomorphism(inst, sd) == (tab.CountHomomorphisms(inst, sd) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Error(err)
	}
}

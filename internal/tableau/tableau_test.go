package tableau

import (
	"strings"
	"testing"

	"templatedep/internal/relation"
)

func twoCol() *relation.Schema { return relation.MustSchema("A", "B") }

func TestNewRenumbering(t *testing.T) {
	s := twoCol()
	// Input uses sparse variable numbers; New renumbers densely per column.
	tab, err := New(s, []VarTuple{{7, 3}, {7, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.VarCount(0) != 1 || tab.VarCount(1) != 2 {
		t.Errorf("var counts = %d, %d", tab.VarCount(0), tab.VarCount(1))
	}
	if tab.Row(0)[0] != tab.Row(1)[0] {
		t.Error("shared variable lost")
	}
	if tab.Row(0)[1] == tab.Row(1)[1] {
		t.Error("distinct variables merged")
	}
}

func TestNewErrors(t *testing.T) {
	s := twoCol()
	if _, err := New(s, []VarTuple{{1}}); err == nil {
		t.Error("wrong width accepted")
	}
	if _, err := New(s, []VarTuple{{-1, 0}}); err == nil {
		t.Error("negative variable accepted")
	}
}

func TestFreeze(t *testing.T) {
	s := twoCol()
	tab := MustNew(s, []VarTuple{{0, 0}, {0, 1}})
	inst, as := tab.Freeze()
	if inst.Len() != 2 {
		t.Errorf("frozen size %d", inst.Len())
	}
	if !inst.Contains(relation.Tuple{0, 0}) || !inst.Contains(relation.Tuple{0, 1}) {
		t.Error("frozen tuples wrong")
	}
	if as[0][0] != 0 || as[1][1] != 1 {
		t.Error("identity assignment wrong")
	}
}

func TestEachHomomorphismBasic(t *testing.T) {
	s := twoCol()
	// Pattern: two rows sharing the A variable.
	tab := MustNew(s, []VarTuple{{0, 0}, {0, 1}})
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{10, 1})
	inst.MustAdd(relation.Tuple{10, 2})
	inst.MustAdd(relation.Tuple{20, 3})
	// Homs: row0 and row1 map to tuples sharing A-value. Pairs within
	// {10,1},{10,2}: 2x2 = 4; within {20,3}: 1. Total 5.
	if got := tab.CountHomomorphisms(inst, nil); got != 5 {
		t.Errorf("CountHomomorphisms = %d, want 5", got)
	}
	if !tab.HasHomomorphism(inst, nil) {
		t.Error("HasHomomorphism = false")
	}
}

func TestEachHomomorphismNoMatch(t *testing.T) {
	s := twoCol()
	// Two rows that must differ in... actually patterns can always map all
	// rows to a single tuple; to get no homomorphism the instance must be
	// empty.
	tab := MustNew(s, []VarTuple{{0, 0}})
	inst := relation.NewInstance(s)
	if tab.HasHomomorphism(inst, nil) {
		t.Error("hom into empty instance")
	}
	if tab.CountHomomorphisms(inst, nil) != 0 {
		t.Error("count into empty instance")
	}
}

func TestEachHomomorphismSeed(t *testing.T) {
	s := twoCol()
	tab := MustNew(s, []VarTuple{{0, 0}})
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{1, 5})
	inst.MustAdd(relation.Tuple{2, 6})
	seed := NewAssignment(tab)
	seed[0][0] = 2 // force the A variable to 2
	n := 0
	var got relation.Value
	tab.EachHomomorphism(inst, seed, func(as Assignment) bool {
		n++
		got = as[1][0]
		return true
	})
	if n != 1 || got != 6 {
		t.Errorf("seeded homs = %d, B value %d", n, int(got))
	}
}

func TestEachPrefixHomomorphism(t *testing.T) {
	s := twoCol()
	// Row 0 is the "antecedent", row 1 the "conclusion" introducing a fresh
	// B variable.
	tab := MustNew(s, []VarTuple{{0, 0}, {0, 1}})
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{1, 5})
	n := 0
	tab.EachPrefixHomomorphism(inst, nil, 1, func(as Assignment) bool {
		n++
		if as[1][1] != Unbound {
			t.Error("conclusion-only variable should stay unbound")
		}
		return true
	})
	if n != 1 {
		t.Errorf("prefix homs = %d", n)
	}
	// rowLimit out of range clamps to all rows.
	if got := 0; true {
		tab.EachPrefixHomomorphism(inst, nil, 99, func(Assignment) bool { got++; return true })
		if got != 1 {
			t.Errorf("clamped homs = %d", got)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	s := twoCol()
	tab := MustNew(s, []VarTuple{{0, 0}})
	inst := relation.NewInstance(s)
	for i := 0; i < 10; i++ {
		inst.MustAdd(relation.Tuple{relation.Value(i), 0})
	}
	n := 0
	tab.EachHomomorphism(inst, nil, func(Assignment) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop after %d", n)
	}
}

func TestRowSatisfiable(t *testing.T) {
	s := twoCol()
	tab := MustNew(s, []VarTuple{{0, 0}, {0, 1}})
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{3, 7})
	as := NewAssignment(tab)
	as[0][0] = 3
	// Conclusion row {0, 1}: A bound to 3, B unbound -> wildcard.
	if !RowSatisfiable(tab.Row(1), as, inst) {
		t.Error("should match with wildcard B")
	}
	as[0][0] = 4
	if RowSatisfiable(tab.Row(1), as, inst) {
		t.Error("should not match A=4")
	}
}

func TestAssignmentClone(t *testing.T) {
	s := twoCol()
	tab := MustNew(s, []VarTuple{{0, 0}})
	as := NewAssignment(tab)
	as[0][0] = 5
	cp := as.Clone()
	cp[0][0] = 9
	if as[0][0] != 5 {
		t.Error("Clone aliases")
	}
}

func TestBacktrackingRestoresBindings(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	// Rows force joint consistency; enumeration must not leak bindings
	// between branches.
	tab := MustNew(s, []VarTuple{{0, 0, 0}, {0, 1, 1}, {1, 1, 2}})
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{1, 1, 1})
	inst.MustAdd(relation.Tuple{1, 2, 2})
	inst.MustAdd(relation.Tuple{2, 2, 3})
	inst.MustAdd(relation.Tuple{2, 1, 9})
	count := tab.CountHomomorphisms(inst, nil)
	// Verify against brute force.
	brute := 0
	tuples := inst.Tuples()
	for _, t0 := range tuples {
		for _, t1 := range tuples {
			for _, t2 := range tuples {
				// row0 = (a0,b0,c0), row1 = (a0,b1,c1), row2 = (a1,b1,c2)
				if t0[0] == t1[0] && t1[1] == t2[1] {
					brute++
				}
			}
		}
	}
	if count != brute {
		t.Errorf("CountHomomorphisms = %d, brute force = %d", count, brute)
	}
}

func TestTableauString(t *testing.T) {
	s := twoCol()
	tab := MustNew(s, []VarTuple{{0, 0}})
	if !strings.Contains(tab.String(), "R(a0, b0)") {
		t.Errorf("String = %q", tab.String())
	}
}

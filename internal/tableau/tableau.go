// Package tableau implements tableaux — patterns of tuples over typed
// variables — and homomorphism search from tableaux into relation
// instances. Tableaux are the syntactic core of template dependencies: a
// TD's antecedents form a tableau, and TD satisfaction and the chase are
// both defined through tableau homomorphisms.
//
// Variables are scoped per attribute (column), mirroring the paper's typing
// restriction: a variable of column A simply cannot occur in column B,
// because variable identity is (attribute, index).
package tableau

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"templatedep/internal/relation"
)

// Var is a variable index, scoped to one attribute of a schema. Var values
// in a normalized tableau are dense: 0..n-1 per column.
type Var int

// VarTuple is one pattern row: one variable per attribute in schema order.
type VarTuple []Var

// Clone copies the row.
func (v VarTuple) Clone() VarTuple {
	out := make(VarTuple, len(v))
	copy(out, v)
	return out
}

// Equal reports component-wise equality.
func (v VarTuple) Equal(u VarTuple) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// Tableau is a finite set (list) of pattern rows over a schema. Construct
// with New, which validates widths and renumbers variables densely per
// column (preserving equalities).
type Tableau struct {
	schema *relation.Schema
	rows   []VarTuple
	// varCount[a] is the number of distinct variables in column a.
	varCount []int
	// joinPool recycles index-join scratch state (see join.go). A Tableau
	// is immutable after New, so sharing the pool across goroutines is safe.
	joinPool sync.Pool
}

// New builds a tableau from rows, renumbering variables densely per column.
// Variable identity is preserved within a column: rows sharing a variable
// index in the input share the renumbered variable.
func New(s *relation.Schema, rows []VarTuple) (*Tableau, error) {
	t := &Tableau{schema: s, varCount: make([]int, s.Width())}
	remap := make([]map[Var]Var, s.Width())
	for a := range remap {
		remap[a] = make(map[Var]Var)
	}
	for ri, r := range rows {
		if len(r) != s.Width() {
			return nil, fmt.Errorf("tableau: row %d has width %d, want %d", ri, len(r), s.Width())
		}
		nr := make(VarTuple, len(r))
		for a, v := range r {
			if v < 0 {
				return nil, fmt.Errorf("tableau: negative variable in row %d column %s", ri, s.Name(relation.Attr(a)))
			}
			nv, ok := remap[a][v]
			if !ok {
				nv = Var(t.varCount[a])
				remap[a][v] = nv
				t.varCount[a]++
			}
			nr[a] = nv
		}
		t.rows = append(t.rows, nr)
	}
	return t, nil
}

// MustNew is New that panics on error.
func MustNew(s *relation.Schema, rows []VarTuple) *Tableau {
	t, err := New(s, rows)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the tableau's schema.
func (t *Tableau) Schema() *relation.Schema { return t.schema }

// Len returns the number of rows.
func (t *Tableau) Len() int { return len(t.rows) }

// Row returns the i-th row (not copied).
func (t *Tableau) Row(i int) VarTuple { return t.rows[i] }

// Rows returns the rows (not copied).
func (t *Tableau) Rows() []VarTuple { return t.rows }

// VarCount returns the number of distinct variables in column a.
func (t *Tableau) VarCount(a relation.Attr) int { return t.varCount[a] }

// String renders the tableau with column-scoped variable names like a0, b1.
func (t *Tableau) String() string {
	var b strings.Builder
	for _, r := range t.rows {
		b.WriteString("R(")
		for a, v := range r {
			if a > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strings.ToLower(t.schema.Name(relation.Attr(a))))
			b.WriteString(strconv.Itoa(int(v)))
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// Assignment maps variables to instance values, per column: Assignment[a][v]
// is the value of variable v of column a, or Unbound.
type Assignment [][]relation.Value

// Unbound marks an unassigned variable.
const Unbound = relation.Value(-1)

// NewAssignment creates an all-unbound assignment for t.
func NewAssignment(t *Tableau) Assignment {
	out := make(Assignment, t.schema.Width())
	for a := range out {
		col := make([]relation.Value, t.varCount[a])
		for i := range col {
			col[i] = Unbound
		}
		out[a] = col
	}
	return out
}

// Clone deep-copies the assignment.
func (as Assignment) Clone() Assignment {
	out := make(Assignment, len(as))
	for a := range as {
		out[a] = append([]relation.Value(nil), as[a]...)
	}
	return out
}

// Freeze converts the tableau into an instance by interpreting each
// variable as a distinct fresh value (the identity assignment), and returns
// the instance together with that assignment. This is the "frozen tableau"
// used to seed the chase: variable v of column a becomes value v.
func (t *Tableau) Freeze() (*relation.Instance, Assignment) {
	inst := relation.NewInstance(t.schema)
	as := NewAssignment(t)
	for a := range as {
		for v := range as[a] {
			as[a][v] = relation.Value(v)
		}
	}
	for _, r := range t.rows {
		tup := make(relation.Tuple, len(r))
		for a, v := range r {
			tup[a] = relation.Value(v)
		}
		inst.MustAdd(tup)
	}
	return inst, as
}

// matchRow reports whether row can be mapped to tup under as, recording the
// new bindings it makes in trail (as (attr, var) pairs) so they can be
// undone on backtrack.
func matchRow(row VarTuple, tup relation.Tuple, as Assignment, trail *[][2]int) bool {
	start := len(*trail)
	for a, v := range row {
		bound := as[a][v]
		if bound == Unbound {
			as[a][v] = tup[a]
			*trail = append(*trail, [2]int{a, int(v)})
		} else if bound != tup[a] {
			// Undo this row's bindings.
			for _, tr := range (*trail)[start:] {
				as[tr[0]][tr[1]] = Unbound
			}
			*trail = (*trail)[:start]
			return false
		}
	}
	return true
}

// EachHomomorphism enumerates every homomorphism from t into inst that
// extends seed (pass nil for no seed), invoking yield for each; if yield
// returns false the enumeration stops early. The assignment passed to yield
// is reused across calls — clone it to retain.
func (t *Tableau) EachHomomorphism(inst *relation.Instance, seed Assignment, yield func(Assignment) bool) {
	t.EachPrefixHomomorphism(inst, seed, len(t.rows), yield)
}

// EachPrefixHomomorphism enumerates homomorphisms of the first rowLimit
// rows of t into inst. Variables occurring only in later rows stay unbound
// in the yielded assignment. This is how a TD (whose conclusion is the last
// row of its combined tableau) matches its antecedents while leaving
// conclusion-only variables existential. It runs the index-driven join of
// join.go; EachPrefixHomomorphismScan is the naive-scan ablation reference.
func (t *Tableau) EachPrefixHomomorphism(inst *relation.Instance, seed Assignment, rowLimit int, yield func(Assignment) bool) {
	if rowLimit < 0 || rowLimit > len(t.rows) {
		rowLimit = len(t.rows)
	}
	t.EachRangeHomomorphism(inst, FullRanges(inst, rowLimit), -1, seed, yield)
}

// EachPrefixHomomorphismScan is EachPrefixHomomorphism via the naive
// nested-loop scan, kept as the ablation reference (mirroring the
// RowSatisfiable/RowSatisfiableScan pair).
func (t *Tableau) EachPrefixHomomorphismScan(inst *relation.Instance, seed Assignment, rowLimit int, yield func(Assignment) bool) {
	if rowLimit < 0 || rowLimit > len(t.rows) {
		rowLimit = len(t.rows)
	}
	candidates := make([][]relation.Tuple, rowLimit)
	for i := range candidates {
		candidates[i] = inst.Tuples()
	}
	t.EachCandidateHomomorphism(candidates, seed, yield)
}

// EachCandidateHomomorphism enumerates homomorphisms of the first
// len(candidates) rows, where row i may only map to a tuple in
// candidates[i], by scanning every candidate at every backtracking level.
// It remains the general API for candidate sets that are not index windows
// of an instance and the ablation reference for the index-driven join
// (EachRangeHomomorphism), which the chase and all default entry points use
// instead.
func (t *Tableau) EachCandidateHomomorphism(candidates [][]relation.Tuple, seed Assignment, yield func(Assignment) bool) {
	rowLimit := len(candidates)
	if rowLimit > len(t.rows) {
		rowLimit = len(t.rows)
	}
	as := NewAssignment(t)
	if seed != nil {
		for a := range seed {
			for v, val := range seed[a] {
				if val != Unbound {
					as[a][v] = val
				}
			}
		}
	}
	var trail [][2]int
	var rec func(ri int) bool // returns false to abort everything
	rec = func(ri int) bool {
		if ri == rowLimit {
			return yield(as)
		}
		row := t.rows[ri]
		for _, tup := range candidates[ri] {
			mark := len(trail)
			if matchRow(row, tup, as, &trail) {
				if !rec(ri + 1) {
					return false
				}
				for _, tr := range trail[mark:] {
					as[tr[0]][tr[1]] = Unbound
				}
				trail = trail[:mark]
			}
		}
		return true
	}
	rec(0)
}

// HasHomomorphism reports whether at least one homomorphism extending seed
// exists.
func (t *Tableau) HasHomomorphism(inst *relation.Instance, seed Assignment) bool {
	found := false
	t.EachHomomorphism(inst, seed, func(Assignment) bool {
		found = true
		return false
	})
	return found
}

// CountHomomorphisms counts all homomorphisms extending seed.
func (t *Tableau) CountHomomorphisms(inst *relation.Instance, seed Assignment) int {
	n := 0
	t.EachHomomorphism(inst, seed, func(Assignment) bool {
		n++
		return true
	})
	return n
}

// RowSatisfiable reports whether inst contains a tuple matching row under
// assignment as, treating unbound variables as wildcards. This is the
// conclusion check of TD satisfaction: bound positions must agree; unbound
// (existential) positions match anything. The instance's inverted index is
// consulted: only tuples on the shortest posting list among the bound
// positions are examined.
func RowSatisfiable(row VarTuple, as Assignment, inst *relation.Instance) bool {
	bestAttr, bestVal := -1, relation.Value(0)
	bestLen := -1
	for a, v := range row {
		if bound := as[a][v]; bound != Unbound {
			l := len(inst.Matching(relation.Attr(a), bound))
			if bestLen < 0 || l < bestLen {
				bestAttr, bestVal, bestLen = a, bound, l
			}
		}
	}
	if bestAttr < 0 {
		return inst.Len() > 0 // fully existential row matches any tuple
	}
	for _, idx := range inst.Matching(relation.Attr(bestAttr), bestVal) {
		tup := inst.Tuple(idx)
		ok := true
		for a, v := range row {
			if bound := as[a][v]; bound != Unbound && bound != tup[a] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// RowSatisfiableWithin is RowSatisfiable restricted to the instance prefix
// of tuples with index < limit. Posting lists hold ascending indices, so
// each list is scanned only up to the first out-of-prefix entry. This is
// the goal check of warm-started chases: a boundary snapshot exposes every
// intermediate instance of the run as a prefix, and this predicate answers
// "was the conclusion witnessed after round i" without materializing the
// prefix.
func RowSatisfiableWithin(row VarTuple, as Assignment, inst *relation.Instance, limit int) bool {
	if limit >= inst.Len() {
		return RowSatisfiable(row, as, inst)
	}
	bestAttr, bestVal := -1, relation.Value(0)
	bestLen := -1
	for a, v := range row {
		if bound := as[a][v]; bound != Unbound {
			l := len(inst.Matching(relation.Attr(a), bound))
			if bestLen < 0 || l < bestLen {
				bestAttr, bestVal, bestLen = a, bound, l
			}
		}
	}
	if bestAttr < 0 {
		return limit > 0 // fully existential row matches any in-prefix tuple
	}
	for _, idx := range inst.Matching(relation.Attr(bestAttr), bestVal) {
		if idx >= limit {
			break
		}
		tup := inst.Tuple(idx)
		ok := true
		for a, v := range row {
			if bound := as[a][v]; bound != Unbound && bound != tup[a] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// RowSatisfiableScan is the index-free linear scan, kept for the ablation
// benchmark against the posting-list version.
func RowSatisfiableScan(row VarTuple, as Assignment, inst *relation.Instance) bool {
	for _, tup := range inst.Tuples() {
		ok := true
		for a, v := range row {
			if bound := as[a][v]; bound != Unbound && bound != tup[a] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

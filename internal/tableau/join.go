// Index-driven homomorphism enumeration.
//
// The naive enumeration in tableau.go (EachCandidateHomomorphism) scans
// every candidate tuple at every backtracking level. The join here instead
// exploits the inverted index an Instance already maintains: at each level
// it picks the cheapest remaining row (dynamic selectivity ordering) and
// enumerates only the tuples on the posting lists of that row's already
// bound variables, intersecting the shortest lists when several variables
// are bound. Rows with no bound variables fall back to their index range.
//
// Candidate restriction is expressed as an index Range per row rather than
// an explicit tuple slice: the chase's semi-naive delta decomposition only
// ever restricts rows to contiguous index windows of the growing instance
// (old / delta / all), and posting lists store ascending tuple indices, so
// a window is a binary search away. The scan-based enumeration survives in
// tableau.go as the ablation reference and as the general API for candidate
// sets that are not index windows.
package tableau

import (
	"sort"

	"templatedep/internal/relation"
)

// Range restricts a tableau row to instance tuples with index in [Lo, Hi).
type Range struct{ Lo, Hi int }

// FullRanges returns n ranges covering the whole instance, the candidate
// restriction equivalent to EachPrefixHomomorphism's rowLimit = n.
func FullRanges(inst *relation.Instance, n int) []Range {
	out := make([]Range, n)
	for i := range out {
		out[i] = Range{0, inst.Len()}
	}
	return out
}

// EachRangeHomomorphism enumerates homomorphisms of the first len(ranges)
// rows of t into inst, where row i may only map to tuples with index in
// ranges[i], using the index-driven join. pin >= 0 forces that row to the
// outermost backtracking level (the chase pins the delta row, which both
// applies the most selective restriction first and keeps enumeration order
// independent of how the delta is sharded across workers); pin < 0 lets
// the selectivity heuristic choose every level. The assignment passed to
// yield is reused across calls — clone it to retain. Enumeration order is
// deterministic but unspecified; the set of yielded homomorphisms is
// exactly that of the scan-based enumeration.
func (t *Tableau) EachRangeHomomorphism(inst *relation.Instance, ranges []Range, pin int, seed Assignment, yield func(Assignment) bool) {
	var pins []int
	if pin >= 0 {
		pins = []int{pin}
	}
	t.EachPinnedHomomorphism(inst, ranges, pins, seed, yield)
}

// EachPinnedHomomorphism generalizes EachRangeHomomorphism to a pinned
// prefix: pins[d] is forced to backtracking level d, and levels past the
// prefix fall back to the selectivity heuristic. A pinned level enumerates
// its candidates in ascending instance index within the row's range, so
// splitting that range across calls and concatenating the yields in range
// order reproduces the unsplit enumeration exactly — the property the chase
// relies on to shard work across workers without perturbing the trace. Rows
// in pins must be distinct and within the matched prefix.
func (t *Tableau) EachPinnedHomomorphism(inst *relation.Instance, ranges []Range, pins []int, seed Assignment, yield func(Assignment) bool) {
	n := len(ranges)
	if n > len(t.rows) {
		n = len(t.rows)
		ranges = ranges[:n]
	}
	// Join state is pooled per tableau: the chase calls this once per
	// (dependency, delta position, shard) task every round, and the
	// assignment/scratch allocations would otherwise dominate small rounds.
	j, _ := t.joinPool.Get().(*join)
	if j == nil {
		j = &join{
			t:      t,
			as:     NewAssignment(t),
			used:   make([]bool, len(t.rows)),
			levels: make([]levelBuf, len(t.rows)),
		}
	}
	for a := range j.as {
		col := j.as[a]
		for i := range col {
			col[i] = Unbound
		}
	}
	if seed != nil {
		for a := range seed {
			for v, val := range seed[a] {
				if val != Unbound {
					j.as[a][v] = val
				}
			}
		}
	}
	j.inst, j.ranges, j.n, j.pins, j.yield = inst, ranges, n, pins, yield
	j.trail = j.trail[:0]
	if n == 0 {
		yield(j.as)
	} else {
		j.rec(0)
	}
	j.inst, j.ranges, j.pins, j.yield = nil, nil, nil, nil
	t.joinPool.Put(j)
}

// levelBuf holds per-depth scratch so the recursion allocates nothing per
// node after warm-up.
type levelBuf struct {
	lists [][]int // clipped posting lists of the chosen row's bound vars
	buf   []int   // intersection output
}

type join struct {
	t      *Tableau
	inst   *relation.Instance
	ranges []Range
	as     Assignment
	used   []bool
	trail  [][2]int
	levels []levelBuf
	n      int // rows being matched (a prefix of the tableau)
	pins   []int
	yield  func(Assignment) bool
}

// clip returns the part of an ascending posting list with values in
// [lo, hi).
func clip(list []int, lo, hi int) []int {
	i0 := sort.SearchInts(list, lo)
	i1 := i0 + sort.SearchInts(list[i0:], hi)
	return list[i0:i1]
}

// cost estimates the number of candidate tuples for row ri under the
// current assignment: the shortest in-range posting list among its bound
// variables, or the range width when nothing is bound yet.
func (j *join) cost(ri int) int {
	r := j.ranges[ri]
	span := r.Hi - r.Lo
	if span < 0 {
		span = 0
	}
	best := span
	for a, v := range j.t.rows[ri] {
		if bound := j.as[a][v]; bound != Unbound {
			if c := len(clip(j.inst.Matching(relation.Attr(a), bound), r.Lo, r.Hi)); c < best {
				best = c
			}
		}
	}
	return best
}

// pick chooses the row for this backtracking level and materializes its
// candidate tuple indices. wholeRange reports that no variable of the row
// is bound yet, so every index in [lo, hi) is a candidate and cands is
// meaningless.
func (j *join) pick(depth int) (ri int, cands []int, wholeRange bool, lo, hi int) {
	if depth < len(j.pins) && j.pins[depth] >= 0 && j.pins[depth] < j.n {
		ri = j.pins[depth]
	} else {
		ri = -1
		best := 0
		for r := 0; r < j.n; r++ {
			if j.used[r] {
				continue
			}
			c := j.cost(r)
			if ri < 0 || c < best {
				ri, best = r, c
			}
		}
	}
	rng := j.ranges[ri]
	lo, hi = rng.Lo, rng.Hi
	lb := &j.levels[depth]
	lb.lists = lb.lists[:0]
	for a, v := range j.t.rows[ri] {
		if bound := j.as[a][v]; bound != Unbound {
			lb.lists = append(lb.lists, clip(j.inst.Matching(relation.Attr(a), bound), lo, hi))
		}
	}
	switch len(lb.lists) {
	case 0:
		return ri, nil, true, lo, hi
	case 1:
		return ri, lb.lists[0], false, lo, hi
	}
	// Intersect, driving with the shortest list (insertion sort: the list
	// count is bounded by the schema width).
	for i := 1; i < len(lb.lists); i++ {
		for k := i; k > 0 && len(lb.lists[k]) < len(lb.lists[k-1]); k-- {
			lb.lists[k], lb.lists[k-1] = lb.lists[k-1], lb.lists[k]
		}
	}
	lb.buf = intersect(lb.buf[:0], lb.lists)
	return ri, lb.buf, false, lo, hi
}

// intersect writes the intersection of ascending int lists into dst; the
// first list must be the shortest (the driver).
func intersect(dst []int, lists [][]int) []int {
outer:
	for _, x := range lists[0] {
		for _, l := range lists[1:] {
			k := sort.SearchInts(l, x)
			if k == len(l) || l[k] != x {
				continue outer
			}
		}
		dst = append(dst, x)
	}
	return dst
}

func (j *join) rec(depth int) bool {
	if depth == j.n {
		return j.yield(j.as)
	}
	ri, cands, wholeRange, lo, hi := j.pick(depth)
	j.used[ri] = true
	row := j.t.rows[ri]
	try := func(tup relation.Tuple) bool {
		mark := len(j.trail)
		if matchRow(row, tup, j.as, &j.trail) {
			if !j.rec(depth + 1) {
				return false
			}
			for _, tr := range j.trail[mark:] {
				j.as[tr[0]][tr[1]] = Unbound
			}
			j.trail = j.trail[:mark]
		}
		return true
	}
	ok := true
	if wholeRange {
		for idx := lo; idx < hi && ok; idx++ {
			ok = try(j.inst.Tuple(idx))
		}
	} else {
		for _, idx := range cands {
			if !ok {
				break
			}
			ok = try(j.inst.Tuple(idx))
		}
	}
	j.used[ri] = false
	return ok
}

package tableau

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"templatedep/internal/relation"
)

// collectMultiset runs an enumeration and returns the multiset of yielded
// assignments (rendered to strings, with multiplicities).
func collectMultiset(run func(yield func(Assignment) bool)) map[string]int {
	out := make(map[string]int)
	run(func(as Assignment) bool {
		out[fmt.Sprint(as)]++
		return true
	})
	return out
}

func multisetsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// randomJoinCase builds a random tableau, instance, and seed over a
// three-column schema.
func randomJoinCase(rng *rand.Rand) (*Tableau, *relation.Instance, Assignment) {
	s := relation.MustSchema("A", "B", "C")
	rows := make([]VarTuple, 1+rng.Intn(4))
	for i := range rows {
		rows[i] = VarTuple{Var(rng.Intn(2)), Var(rng.Intn(3)), Var(rng.Intn(3))}
	}
	tab := MustNew(s, rows)
	inst := relation.NewInstance(s)
	for i := 0; i < rng.Intn(12); i++ {
		inst.MustAdd(relation.Tuple{
			relation.Value(rng.Intn(3)), relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)),
		})
	}
	var seed Assignment
	if rng.Intn(2) == 0 {
		seed = NewAssignment(tab)
		for a := range seed {
			for v := range seed[a] {
				if rng.Intn(4) == 0 {
					// Sometimes a value absent from the instance.
					seed[a][v] = relation.Value(rng.Intn(5))
				}
			}
		}
	}
	return tab, inst, seed
}

// Property: the index-driven join and the naive scan yield the identical
// multiset of homomorphisms on random tableaux, instances, and seeds, for
// every prefix length.
func TestIndexJoinMatchesScan(t *testing.T) {
	f := func(seed64 int64) bool {
		rng := rand.New(rand.NewSource(seed64))
		tab, inst, seed := randomJoinCase(rng)
		for limit := 0; limit <= tab.Len(); limit++ {
			idx := collectMultiset(func(y func(Assignment) bool) {
				tab.EachPrefixHomomorphism(inst, seed, limit, y)
			})
			scan := collectMultiset(func(y func(Assignment) bool) {
				tab.EachPrefixHomomorphismScan(inst, seed, limit, y)
			})
			if !multisetsEqual(idx, scan) {
				t.Logf("seed %d limit %d: index %v scan %v\ntableau:\n%s\ninstance:\n%s",
					seed64, limit, idx, scan, tab, inst)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

// Property: range-restricted index enumeration (with and without a pinned
// row) matches the scan over the equivalent candidate slices — the contract
// the semi-naive chase's delta sharding relies on.
func TestRangeJoinMatchesCandidateScan(t *testing.T) {
	f := func(seed64 int64) bool {
		rng := rand.New(rand.NewSource(seed64))
		tab, inst, seed := randomJoinCase(rng)
		n := inst.Len()
		k := tab.Len()
		ranges := make([]Range, k)
		cands := make([][]relation.Tuple, k)
		for i := range ranges {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n-lo+1)
			ranges[i] = Range{lo, hi}
			cands[i] = inst.Tuples()[lo:hi]
		}
		pin := rng.Intn(k+1) - 1 // -1 (auto) or a pinned row
		idx := collectMultiset(func(y func(Assignment) bool) {
			tab.EachRangeHomomorphism(inst, ranges, pin, seed, y)
		})
		scan := collectMultiset(func(y func(Assignment) bool) {
			tab.EachCandidateHomomorphism(cands, seed, y)
		})
		if !multisetsEqual(idx, scan) {
			t.Logf("seed %d pin %d ranges %v: index %v scan %v\ntableau:\n%s\ninstance:\n%s",
				seed64, pin, ranges, idx, scan, tab, inst)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Error(err)
	}
}

// A pinned delta row must make enumeration order independent of how the
// delta window is sharded: concatenating shard results in order equals the
// unsharded enumeration, element for element.
func TestPinnedShardingPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 50; trial++ {
		tab, inst, _ := randomJoinCase(rng)
		n := inst.Len()
		if n < 2 {
			continue
		}
		k := tab.Len()
		ranges := make([]Range, k)
		for i := range ranges {
			ranges[i] = Range{0, n}
		}
		pin := rng.Intn(k)
		var whole []string
		tab.EachRangeHomomorphism(inst, ranges, pin, nil, func(as Assignment) bool {
			whole = append(whole, fmt.Sprint(as))
			return true
		})
		shards := 2 + rng.Intn(3)
		var pieced []string
		for s := 0; s < shards; s++ {
			sr := make([]Range, k)
			copy(sr, ranges)
			sr[pin] = Range{n * s / shards, n * (s + 1) / shards}
			tab.EachRangeHomomorphism(inst, sr, pin, nil, func(as Assignment) bool {
				pieced = append(pieced, fmt.Sprint(as))
				return true
			})
		}
		if len(whole) != len(pieced) {
			t.Fatalf("trial %d: %d homs whole, %d sharded", trial, len(whole), len(pieced))
		}
		for i := range whole {
			if whole[i] != pieced[i] {
				t.Fatalf("trial %d: order diverges at %d: %s vs %s", trial, i, whole[i], pieced[i])
			}
		}
	}
}

package cert

import (
	"context"

	"templatedep/internal/budget"
	"templatedep/internal/chase"
	"templatedep/internal/td"
)

// CertifyImplied produces a chase certificate for an "implied" verdict that
// was reached without a replayable proof object — a Knuth–Bendix
// completion, an EID embedding, or an untraced chase run. It re-runs the
// traced restricted chase under a fresh governor capped by lim (zero-value
// fields fall back to chase.DefaultLimits); the chase is deterministic, so
// a sound verdict replays to Implied and the validated trace becomes the
// certificate. Returns nil when the replay does not confirm the verdict
// within lim — callers then report the verdict without a certificate.
func CertifyImplied(doc Problem, deps []*td.TD, d0 *td.TD, lim budget.Limits) *Certificate {
	for _, r := range budget.Resources() {
		if lim.Of(r) == 0 {
			lim = lim.With(r, chase.DefaultLimits.Of(r))
		}
	}
	g := budget.New(context.Background(), lim)
	res, err := chase.ProveImplies(deps, d0, chase.Options{Governor: g, SemiNaive: true})
	if err != nil || res.Verdict != chase.Implied {
		return nil
	}
	return NewChase(doc, res.Trace)
}

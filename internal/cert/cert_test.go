package cert_test

import (
	"strings"
	"testing"

	"templatedep/internal/budget"
	"templatedep/internal/cert"
	"templatedep/internal/core"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// impliedPresentationCert runs the presentation pipeline on a derivable
// instance and returns its certificate after an encode/decode round trip.
func impliedPresentationCert(t *testing.T) *cert.Certificate {
	t.Helper()
	res, err := core.AnalyzePresentation(words.TwoStepPresentation(), core.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Implied {
		t.Fatalf("verdict %v, want implied", res.Verdict)
	}
	return roundTrip(t, res.Cert())
}

// fcexPresentationCert runs the pipeline on the power presentation (finite
// counterexample N3) and round-trips its certificate.
func fcexPresentationCert(t *testing.T) *cert.Certificate {
	t.Helper()
	res, err := core.AnalyzePresentation(words.PowerPresentation(), core.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.FiniteCounterexample {
		t.Fatalf("verdict %v, want finite-counterexample", res.Verdict)
	}
	return roundTrip(t, res.Cert())
}

func roundTrip(t *testing.T, c *cert.Certificate) *cert.Certificate {
	t.Helper()
	if c == nil {
		t.Fatal("nil certificate for definitive verdict")
	}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cert.Decode(data)
	if err != nil {
		t.Fatalf("decode of freshly encoded certificate: %v", err)
	}
	return dec
}

func TestDerivationCertRoundTrip(t *testing.T) {
	c := impliedPresentationCert(t)
	if c.Kind != cert.KindDerivation {
		t.Fatalf("kind %s, want derivation", c.Kind)
	}
	if err := cert.Check(c); err != nil {
		t.Fatalf("valid derivation certificate rejected: %v", err)
	}
}

func TestFiniteModelCertRoundTrip(t *testing.T) {
	c := fcexPresentationCert(t)
	if c.Kind != cert.KindFiniteModel {
		t.Fatalf("kind %s, want finite-model", c.Kind)
	}
	if len(c.Model.Table) == 0 || len(c.Model.Assign) == 0 {
		t.Fatal("presentation counterexample certificate lacks the semigroup witness")
	}
	if err := cert.Check(c); err != nil {
		t.Fatalf("valid finite-model certificate rejected: %v", err)
	}
}

func TestChaseCertRoundTripTD(t *testing.T) {
	_, fig1 := td.GarmentExample()
	b := core.DefaultBudget()
	b.Certify = true
	res, err := core.Infer([]*td.TD{fig1}, fig1, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.Implied {
		t.Fatalf("verdict %v, want implied", res.Verdict)
	}
	c := roundTrip(t, res.Cert())
	if c.Kind != cert.KindChase {
		t.Fatalf("kind %s, want chase", c.Kind)
	}
	if err := cert.Check(c); err != nil {
		t.Fatalf("valid chase certificate rejected: %v", err)
	}
}

func TestFiniteModelCertRoundTripTD(t *testing.T) {
	_, fig1 := td.GarmentExample()
	b := core.DefaultBudget()
	b.Certify = true
	res, err := core.Infer(nil, fig1, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != core.FiniteCounterexample {
		t.Fatalf("verdict %v, want finite-counterexample", res.Verdict)
	}
	c := roundTrip(t, res.Cert())
	if err := cert.Check(c); err != nil {
		t.Fatalf("valid TD finite-model certificate rejected: %v", err)
	}
}

func TestCertifyImpliedReplay(t *testing.T) {
	// An untraced win (as from the KB or EID portfolio arms) certifies by
	// deterministic chase replay.
	p := words.TwoStepPresentation()
	res, err := core.AnalyzePresentation(p, core.DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	in := res.Instance
	c := cert.CertifyImplied(cert.PresentationProblem(p), in.D, in.D0, budget.Limits{})
	if c == nil {
		t.Fatal("replay failed to certify a sound implied verdict")
	}
	if err := cert.Check(roundTrip(t, c)); err != nil {
		t.Fatalf("replayed certificate rejected: %v", err)
	}
}

// --- adversarial rejection (satellite: every tamper fails with a precise error) ---

func wantCheckError(t *testing.T, c *cert.Certificate, substr string) {
	t.Helper()
	err := cert.Check(c)
	if err == nil {
		t.Fatalf("tampered certificate accepted (wanted error containing %q)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestRejectCorruptedChaseStep(t *testing.T) {
	_, fig1 := td.GarmentExample()
	b := core.DefaultBudget()
	b.Certify = true
	res, err := core.Infer([]*td.TD{fig1}, fig1, b)
	if err != nil {
		t.Fatal(err)
	}
	// A step firing a dependency the problem does not have.
	c := roundTrip(t, res.Cert())
	c.Chase.Steps[0].Dep = 99
	wantCheckError(t, c, "dependency index")

	// A step whose tuple does not fit the schema.
	c = roundTrip(t, res.Cert())
	c.Chase.Steps[0].Tuple = c.Chase.Steps[0].Tuple[:1]
	wantCheckError(t, c, "tuple width")

	// A step whose tuple no antecedent homomorphism justifies: fig1's
	// conclusion has universal STYLE and SIZE positions, and 424242 never
	// occurs in the replayed instance.
	c = roundTrip(t, res.Cert())
	c.Chase.Steps[0].Tuple[1] = 424242
	wantCheckError(t, c, "justifies")

	// An emptied trace no longer reaches the goal witness (the goal here
	// is not trivially implied, so the frozen antecedents alone cannot
	// witness it).
	c = roundTrip(t, res.Cert())
	c.Chase.Steps = nil
	wantCheckError(t, c, "witness the goal")
}

func TestRejectForgedDerivation(t *testing.T) {
	c := impliedPresentationCert(t)

	// Tamper a step's recorded result: the chain no longer rewrites.
	forged := roundTrip(t, c)
	forged.Derivation.Steps[0].Result = forged.Derivation.To
	wantCheckError(t, forged, "step 0")

	// Re-target the derivation at a non-goal equation.
	forged = roundTrip(t, c)
	forged.Derivation.From = forged.Derivation.To
	wantCheckError(t, forged, "not the goal")
}

func TestRejectModelFailingDependency(t *testing.T) {
	// A hand-built TD problem keeps the tamper deterministic. On the
	// diagonal {(1,1),(2,2)} the dependency g only matches trivially (its
	// third antecedent R(a0, b1) forces a0's and a1's rows to share both
	// values), so it holds, while the product goal needs the absent (1,2).
	valid := &cert.Certificate{
		Version: cert.Version,
		Kind:    cert.KindFiniteModel,
		Verdict: "finite-counterexample",
		Problem: cert.Problem{
			Schema: []string{"A", "B"},
			Deps:   []string{"g: R(a0, b0) & R(a1, b1) & R(a0, b1) -> R(a1, b0)"},
			Goal:   "R(a0, b0) & R(a1, b1) -> R(a0, b1)",
		},
		Model: &cert.Model{Tuples: [][]int{{1, 1}, {2, 2}}},
	}
	if err := cert.Check(valid); err != nil {
		t.Fatalf("valid hand-built model certificate rejected: %v", err)
	}

	// Adding (1,2) activates g's match (1,1),(2,2),(1,2) -> needs the
	// absent (2,1): the model now violates the dependency.
	broken := roundTrip(t, valid)
	broken.Model.Tuples = [][]int{{1, 1}, {2, 2}, {1, 2}}
	wantCheckError(t, broken, "violates dependency")

	// A model satisfying the goal certifies nothing.
	broken = roundTrip(t, valid)
	broken.Model.Tuples = [][]int{{1, 1}}
	wantCheckError(t, broken, "not a counterexample")
}

func TestRejectTamperedWitness(t *testing.T) {
	c := fcexPresentationCert(t)

	// Reassign A0 to the zero element: the goal then HOLDS in the
	// witness, so it is no longer a Main Lemma failure model.
	broken := roundTrip(t, c)
	broken.Model.Assign[broken.Problem.A0] = broken.Model.Assign[broken.Problem.Zero]
	wantCheckError(t, broken, "witness")
}

func TestRejectTruncatedJSON(t *testing.T) {
	c := impliedPresentationCert(t)
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cert.Decode(data[:len(data)/2]); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := cert.Decode(append(data, []byte("{}")...)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := cert.Decode([]byte(strings.Replace(string(data), `"kind"`, `"kinds"`, 1))); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestRejectVersionAndShape(t *testing.T) {
	c := impliedPresentationCert(t)

	bad := roundTrip(t, c)
	bad.Version = cert.Version + 1
	wantCheckError(t, bad, "unsupported version")

	bad = roundTrip(t, c)
	bad.Verdict = "finite-counterexample"
	wantCheckError(t, bad, "certifies verdict")

	bad = roundTrip(t, c)
	bad.Derivation = nil
	if err := cert.Check(bad); err == nil {
		t.Fatal("payload-less certificate accepted")
	}
}

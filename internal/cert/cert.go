// Package cert defines the one serializable proof-object format of the
// repository: a versioned, self-describing JSON certificate for a
// definitive inference verdict, together with a fast independent checker.
//
// The paper's dual semidecision structure means every definitive verdict
// already has a latent proof object — a chase derivation or an equational
// derivation for "implied", a finite database (optionally with the finite
// semigroup witness it was built from) for "finite-counterexample". Before
// this package those artifacts were four unrelated in-memory types
// (words.Derivation, chase.Fired traces, semigroup.Interpretation,
// reduction.CounterModel), only two of which were independently checkable
// and none of which survived serialization. A Certificate embeds the
// PROBLEM it certifies alongside the proof payload, so a consumer holding
// only the JSON bytes can re-derive everything the checker needs — nothing
// is trusted from the engine that produced it.
//
// Three kinds:
//
//   - "derivation": an equational proof that A0 = 0 is derivable from the
//     presentation. By Reduction Theorem (A) this certifies that the
//     reduction's D implies D0. Presentation problems only.
//   - "chase": a chase trace over (D, D0) — each step a (dependency,
//     tuple) pair — whose replay from D0's frozen antecedents witnesses
//     D0's conclusion. Certifies "implied" for both problem forms.
//   - "finite-model": a finite database, listed tuple by tuple, that
//     satisfies every dependency and violates the goal — certifying
//     "finite-counterexample". For presentation problems it may carry the
//     finite semigroup witness (multiplication table plus symbol
//     assignment) the database was built from; the checker re-validates
//     the witness as a Main Lemma failure model when present.
//
// Check (check.go) never trusts engine internals: it re-parses the
// embedded problem, deterministically rebuilds the Gurevich–Lewis
// reduction for presentation problems, and re-validates the payload with
// the independent validators (words.Derivation.Validate,
// chase.ValidateTrace, direct td.Satisfies evaluation).
package cert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"templatedep/internal/chase"
	"templatedep/internal/relation"
	"templatedep/internal/semigroup"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// Version is the certificate format version this package writes and the
// only one it checks.
const Version = 1

// Kind discriminates the proof payload.
type Kind string

const (
	// KindDerivation is an equational derivation of A0 = 0.
	KindDerivation Kind = "derivation"
	// KindChase is a replayable chase trace witnessing the goal.
	KindChase Kind = "chase"
	// KindFiniteModel is a finite counterexample database.
	KindFiniteModel Kind = "finite-model"
)

// Problem is the self-describing problem statement a certificate is about.
// Exactly one form is populated: a presentation (alphabet/a0/zero/
// equations, mirroring the serving layer's wire form) or a TD instance
// (schema/deps/goal in td.Parse notation). Presentation problems are
// checked against the deterministic rebuild of the reduction's (D, D0).
type Problem struct {
	Alphabet  []string `json:"alphabet,omitempty"`
	A0        string   `json:"a0,omitempty"`
	Zero      string   `json:"zero,omitempty"`
	Equations []string `json:"equations,omitempty"`

	Schema []string `json:"schema,omitempty"`
	Deps   []string `json:"deps,omitempty"`
	Goal   string   `json:"goal,omitempty"`
}

// IsPresentation reports whether the presentation form is populated.
func (p Problem) IsPresentation() bool { return len(p.Alphabet) > 0 }

// Certificate is one serializable proof object. Exactly one payload field
// (Derivation, Chase, Model) is set, matching Kind.
type Certificate struct {
	Version int     `json:"version"`
	Kind    Kind    `json:"kind"`
	Verdict string  `json:"verdict"`
	Problem Problem `json:"problem"`

	Derivation *Derivation `json:"derivation,omitempty"`
	Chase      *Chase      `json:"chase,omitempty"`
	Model      *Model      `json:"model,omitempty"`
}

// Derivation is the equational-proof payload: a chain of single-occurrence
// replacements from A0 to 0 over the reduction's normalized presentation.
// Words are formatted in the alphabet's notation (words.ParseWord).
type Derivation struct {
	From  string      `json:"from"`
	To    string      `json:"to"`
	Steps []DerivStep `json:"steps"`
}

// DerivStep is one replacement: equation Eq applied at position Pos
// (Forward = LHS→RHS), yielding Result.
type DerivStep struct {
	Eq      int    `json:"eq"`
	Pos     int    `json:"pos"`
	Forward bool   `json:"forward"`
	Result  string `json:"result"`
}

// Chase is the chase-trace payload. Steps replay in order from the goal's
// frozen antecedents; the restricted chase only ever adds new tuples, so
// the Added flag of the in-memory trace is implied and not serialized.
type Chase struct {
	Steps []ChaseStep `json:"steps"`
}

// ChaseStep fires dependency Dep (index into the problem's dependency
// set), adding Tuple.
type ChaseStep struct {
	Dep   int   `json:"dep"`
	Tuple []int `json:"tuple"`
}

// Model is the finite-counterexample payload: the database, one tuple per
// row, plus (presentation problems only, optional) the finite semigroup
// witness it was built from.
type Model struct {
	Tuples [][]int `json:"tuples"`
	// Table is the witness semigroup's multiplication table and Assign
	// maps original-alphabet symbol names to its elements. When present
	// the checker re-validates the interpretation as a Main Lemma failure
	// model for the (rebuilt) normalized presentation.
	Table  [][]int        `json:"table,omitempty"`
	Assign map[string]int `json:"assign,omitempty"`
}

// PresentationProblem renders p as a certificate problem statement.
func PresentationProblem(p *words.Presentation) Problem {
	a := p.Alphabet
	doc := Problem{
		Alphabet: a.Names(),
		A0:       a.Name(a.A0()),
		Zero:     a.Name(a.Zero()),
	}
	for _, e := range p.Equations {
		doc.Equations = append(doc.Equations, e.Format(a))
	}
	return doc
}

// TDProblem renders a TD instance as a certificate problem statement.
func TDProblem(schema *relation.Schema, deps []*td.TD, goal *td.TD) Problem {
	doc := Problem{Schema: schema.Names(), Goal: goal.Format()}
	for _, d := range deps {
		doc.Deps = append(doc.Deps, d.Format())
	}
	return doc
}

// NewDerivation builds a derivation certificate. The derivation must be
// over pres — the presentation the checker will rebuild from doc (for the
// reduction pipeline, the normalized in.Pres).
func NewDerivation(doc Problem, pres *words.Presentation, d *words.Derivation) *Certificate {
	if d == nil {
		return nil
	}
	a := pres.Alphabet
	cd := &Derivation{From: d.From.Format(a), To: d.To.Format(a)}
	for _, s := range d.Steps {
		cd.Steps = append(cd.Steps, DerivStep{Eq: s.Eq, Pos: s.Pos, Forward: s.Forward, Result: s.Result.Format(a)})
	}
	return &Certificate{Version: Version, Kind: KindDerivation, Verdict: "implied", Problem: doc, Derivation: cd}
}

// NewChase builds a chase certificate from a validated trace.
func NewChase(doc Problem, trace []chase.Fired) *Certificate {
	// A zero-step trace is a valid proof of a TRIVIAL implication: the
	// goal's conclusion is already satisfiable in its own frozen
	// antecedents, and the checker verifies exactly that (the witness
	// check of an empty replay). Random fuzzing generates such goals
	// routinely, so they must be certifiable too.
	cc := &Chase{}
	for _, f := range trace {
		// Non-adding firings (a duplicate conclusion, common when the
		// dependency set itself contains duplicates) leave the instance
		// unchanged, so the proof does not need them. Dropping them here
		// also keeps the wire format free of an Added flag: the checker
		// replays every recorded step as a strict addition.
		if !f.Added {
			continue
		}
		t := make([]int, len(f.Tuple))
		for i, v := range f.Tuple {
			t[i] = int(v)
		}
		cc.Steps = append(cc.Steps, ChaseStep{Dep: f.Dep, Tuple: t})
	}
	return &Certificate{Version: Version, Kind: KindChase, Verdict: "implied", Problem: doc, Chase: cc}
}

// NewFiniteModel builds a finite-model certificate from the
// counterexample database and, optionally, the semigroup witness over the
// problem's ORIGINAL alphabet.
func NewFiniteModel(doc Problem, inst *relation.Instance, wit *semigroup.Interpretation) *Certificate {
	if inst == nil {
		return nil
	}
	m := &Model{Tuples: make([][]int, 0, inst.Len())}
	for _, tup := range inst.Tuples() {
		row := make([]int, len(tup))
		for i, v := range tup {
			row[i] = int(v)
		}
		m.Tuples = append(m.Tuples, row)
	}
	if wit != nil && wit.Alphabet != nil {
		m.Table = wit.Table.Rows()
		m.Assign = make(map[string]int, len(wit.Assign))
		for s, e := range wit.Assign {
			// The witness is over the problem's original alphabet; the
			// checker resolves the names against the rebuilt problem.
			m.Assign[wit.Alphabet.Name(s)] = int(e)
		}
	}
	return &Certificate{Version: Version, Kind: KindFiniteModel, Verdict: "finite-counterexample", Problem: doc, Model: m}
}

// Encode renders the certificate as indented JSON, newline-terminated —
// the on-disk format of `tdinfer -cert` and the wire format of
// `POST /infer?cert=1`.
func (c *Certificate) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode parses certificate bytes strictly: unknown fields, trailing
// garbage, and truncated documents are all errors, so a tampered byte that
// breaks JSON structure is caught before any semantic check runs.
func Decode(data []byte) (*Certificate, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Certificate
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("cert: decode: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("cert: decode: trailing data after certificate")
	}
	return &c, nil
}

package cert

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders the certificate for human eyes: the problem it is
// about, the verdict it certifies, and the proof payload — derivation
// steps, chase trace, or counter-database plus witness table. It is the
// output of `tdcheck -verify` and the `-proof` epilogue of tdinfer on
// finite-counterexample verdicts.
func Describe(c *Certificate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "certificate: kind=%s verdict=%s version=%d\n", c.Kind, c.Verdict, c.Version)
	if c.Problem.IsPresentation() {
		fmt.Fprintf(&b, "problem: presentation over {%s}, A0=%s, zero=%s, %d equations\n",
			strings.Join(c.Problem.Alphabet, ","), c.Problem.A0, c.Problem.Zero, len(c.Problem.Equations))
	} else {
		fmt.Fprintf(&b, "problem: schema %s, %d dependencies, goal %s\n",
			strings.Join(c.Problem.Schema, ","), len(c.Problem.Deps), c.Problem.Goal)
	}
	switch {
	case c.Derivation != nil:
		d := c.Derivation
		fmt.Fprintf(&b, "derivation: %s = %s in %d steps\n", d.From, d.To, len(d.Steps))
		for i, s := range d.Steps {
			dir := "->"
			if !s.Forward {
				dir = "<-"
			}
			fmt.Fprintf(&b, "  step %d: eq %d %s at pos %d yields %s\n", i, s.Eq, dir, s.Pos, s.Result)
		}
	case c.Chase != nil:
		fmt.Fprintf(&b, "chase trace: %d steps\n", len(c.Chase.Steps))
		for i, s := range c.Chase.Steps {
			fmt.Fprintf(&b, "  step %d: dep %d adds %v\n", i, s.Dep, s.Tuple)
		}
	case c.Model != nil:
		b.WriteString(DescribeModel(c.Model))
	}
	return b.String()
}

// DescribeModel renders just the finite-model payload: the
// counter-database and, when present, the witness semigroup's
// multiplication table and symbol assignment.
func DescribeModel(m *Model) string {
	var b strings.Builder
	if len(m.Tuples) > 0 {
		fmt.Fprintf(&b, "counter-database: %d tuples\n", len(m.Tuples))
		for _, row := range m.Tuples {
			fmt.Fprintf(&b, "  %v\n", row)
		}
	}
	if len(m.Table) > 0 {
		fmt.Fprintf(&b, "witness semigroup (order %d), multiplication table:\n", len(m.Table))
		for _, row := range m.Table {
			b.WriteString(" ")
			for _, v := range row {
				fmt.Fprintf(&b, " %d", v)
			}
			b.WriteByte('\n')
		}
	}
	if len(m.Assign) > 0 {
		names := make([]string, 0, len(m.Assign))
		for name := range m.Assign {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("witness assignment:")
		for _, name := range names {
			fmt.Fprintf(&b, " %s=%d", name, m.Assign[name])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package cert

import (
	"fmt"
	"strings"

	"templatedep/internal/chase"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/semigroup"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// Check verifies a certificate against its own embedded problem, trusting
// nothing from the engine that produced it. The problem is re-parsed from
// its wire form; for presentation problems the Gurevich–Lewis reduction is
// rebuilt (reduction.Build is deterministic, so the rebuilt (D, D0) is the
// instance the certificate is about); and the payload is re-validated by
// the independent checkers — the derivation validator, the chase trace
// replayer, or direct dependency/goal evaluation over the listed tuples.
// A nil error means the certificate PROVES its verdict for its problem.
func Check(c *Certificate) error {
	if c == nil {
		return fmt.Errorf("cert: nil certificate")
	}
	if c.Version != Version {
		return fmt.Errorf("cert: unsupported version %d (checker understands %d)", c.Version, Version)
	}
	if err := c.checkShape(); err != nil {
		return err
	}
	if c.Problem.IsPresentation() {
		return c.checkPresentation()
	}
	return c.checkTD()
}

// checkShape validates kind/verdict/payload coherence before any engine
// object is built.
func (c *Certificate) checkShape() error {
	payloads := 0
	if c.Derivation != nil {
		payloads++
	}
	if c.Chase != nil {
		payloads++
	}
	if c.Model != nil {
		payloads++
	}
	if payloads != 1 {
		return fmt.Errorf("cert: want exactly one payload, got %d", payloads)
	}
	var wantVerdict string
	switch c.Kind {
	case KindDerivation:
		if c.Derivation == nil {
			return fmt.Errorf("cert: kind %q without derivation payload", c.Kind)
		}
		wantVerdict = "implied"
	case KindChase:
		if c.Chase == nil {
			return fmt.Errorf("cert: kind %q without chase payload", c.Kind)
		}
		wantVerdict = "implied"
	case KindFiniteModel:
		if c.Model == nil {
			return fmt.Errorf("cert: kind %q without model payload", c.Kind)
		}
		wantVerdict = "finite-counterexample"
	default:
		return fmt.Errorf("cert: unknown kind %q", c.Kind)
	}
	if c.Verdict != wantVerdict {
		return fmt.Errorf("cert: kind %q certifies verdict %q, not %q", c.Kind, wantVerdict, c.Verdict)
	}
	pres := c.Problem.IsPresentation()
	tdForm := c.Problem.Goal != "" || len(c.Problem.Schema) > 0 || len(c.Problem.Deps) > 0
	if pres == tdForm {
		return fmt.Errorf("cert: problem must carry exactly one form (presentation or schema/deps/goal)")
	}
	return nil
}

// presentation re-parses the embedded presentation problem.
func (p Problem) presentation() (*words.Presentation, error) {
	a, err := words.NewAlphabet(p.Alphabet, p.A0, p.Zero)
	if err != nil {
		return nil, fmt.Errorf("cert: problem alphabet: %w", err)
	}
	eqs := make([]words.Equation, 0, len(p.Equations))
	for i, line := range p.Equations {
		e, err := words.ParseEquation(a, line)
		if err != nil {
			return nil, fmt.Errorf("cert: problem equation %d: %w", i, err)
		}
		eqs = append(eqs, e)
	}
	return words.NewPresentation(a, eqs)
}

// tdInstance re-parses the embedded TD problem.
func (p Problem) tdInstance() (*relation.Schema, []*td.TD, *td.TD, error) {
	schema, err := relation.NewSchema(p.Schema)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cert: problem schema: %w", err)
	}
	deps, err := td.ParseSet(schema, strings.Join(p.Deps, "\n"))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cert: problem dependencies: %w", err)
	}
	goal, err := td.Parse(schema, p.Goal, "D0")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cert: problem goal: %w", err)
	}
	return schema, deps, goal, nil
}

func (c *Certificate) checkPresentation() error {
	p, err := c.Problem.presentation()
	if err != nil {
		return err
	}
	in, err := reduction.Build(p)
	if err != nil {
		return fmt.Errorf("cert: rebuilding reduction: %w", err)
	}
	switch c.Kind {
	case KindDerivation:
		return checkDerivation(in.Pres, c.Derivation)
	case KindChase:
		return checkChase(in.D, in.D0, c.Chase)
	default:
		if err := checkModel(in.Schema, in.D, in.D0, c.Model); err != nil {
			return err
		}
		if len(c.Model.Table) > 0 || len(c.Model.Assign) > 0 {
			return checkWitness(p, in, c.Model)
		}
		return nil
	}
}

func (c *Certificate) checkTD() error {
	schema, deps, goal, err := c.Problem.tdInstance()
	if err != nil {
		return err
	}
	switch c.Kind {
	case KindDerivation:
		return fmt.Errorf("cert: derivation certificates require a presentation problem")
	case KindChase:
		return checkChase(deps, goal, c.Chase)
	default:
		if len(c.Model.Table) > 0 || len(c.Model.Assign) > 0 {
			return fmt.Errorf("cert: semigroup witness requires a presentation problem")
		}
		return checkModel(schema, deps, goal, c.Model)
	}
}

// checkDerivation re-validates an equational proof of the goal A0 = 0 over
// the (rebuilt, normalized) presentation.
func checkDerivation(p *words.Presentation, d *Derivation) error {
	a := p.Alphabet
	from, err := words.ParseWord(a, d.From)
	if err != nil {
		return fmt.Errorf("cert: derivation source: %w", err)
	}
	to, err := words.ParseWord(a, d.To)
	if err != nil {
		return fmt.Errorf("cert: derivation target: %w", err)
	}
	goal := p.Goal()
	if !from.Equal(goal.LHS) || !to.Equal(goal.RHS) {
		return fmt.Errorf("cert: derivation proves %s = %s, not the goal %s", d.From, d.To, goal.Format(a))
	}
	wd := &words.Derivation{From: from, To: to}
	for i, s := range d.Steps {
		res, err := words.ParseWord(a, s.Result)
		if err != nil {
			return fmt.Errorf("cert: derivation step %d result: %w", i, err)
		}
		wd.Steps = append(wd.Steps, words.Step{Eq: s.Eq, Pos: s.Pos, Forward: s.Forward, Result: res})
	}
	return wd.Validate(p)
}

// checkChase replays the recorded steps from the goal's frozen antecedents
// with chase.ValidateTrace — every step must be justified by an antecedent
// homomorphism, and the final instance must witness the goal's conclusion.
// The restricted chase only records genuinely new tuples, so every replayed
// step is required to add its tuple.
func checkChase(deps []*td.TD, goal *td.TD, cc *Chase) error {
	// Zero steps are allowed: the replay then just checks the witness on
	// the frozen antecedents, which is the sound proof of a trivial
	// implication (any homomorphism of the antecedents carries the frozen
	// conclusion witness along). A forged empty trace for a non-trivial
	// goal still fails that witness check.
	trace := make([]chase.Fired, 0, len(cc.Steps))
	for _, s := range cc.Steps {
		tup := make(relation.Tuple, len(s.Tuple))
		for i, v := range s.Tuple {
			tup[i] = relation.Value(v)
		}
		trace = append(trace, chase.Fired{Dep: s.Dep, Tuple: tup, Added: true})
	}
	frozen, as := goal.FrozenAntecedents()
	concl := goal.Conclusion()
	witness := func(inst *relation.Instance) bool {
		return tableau.RowSatisfiable(concl, as, inst)
	}
	return chase.ValidateTrace(deps, frozen, trace, witness)
}

// checkModel re-evaluates every dependency and the goal against the listed
// database: all dependencies must hold and the goal must fail.
func checkModel(schema *relation.Schema, deps []*td.TD, goal *td.TD, m *Model) error {
	if len(m.Tuples) == 0 {
		return fmt.Errorf("cert: empty model cannot violate the goal")
	}
	inst := relation.NewInstance(schema)
	for i, row := range m.Tuples {
		if len(row) != schema.Width() {
			return fmt.Errorf("cert: model tuple %d has width %d, want %d", i, len(row), schema.Width())
		}
		tup := make(relation.Tuple, len(row))
		for j, v := range row {
			tup[j] = relation.Value(v)
		}
		if _, _, err := inst.Add(tup); err != nil {
			return fmt.Errorf("cert: model tuple %d: %w", i, err)
		}
	}
	for i, d := range deps {
		if ok, _ := d.Satisfies(inst); !ok {
			return fmt.Errorf("cert: model violates dependency %d (%s)", i, d.Name())
		}
	}
	if ok, _ := goal.Satisfies(inst); ok {
		return fmt.Errorf("cert: model satisfies the goal %s; it is not a counterexample", goal.Name())
	}
	return nil
}

// checkWitness re-validates the optional semigroup witness: the table must
// be an associative multiplication table, the assignment must interpret the
// ORIGINAL alphabet, and the (deterministically extended) interpretation
// must be a Main Lemma failure model of the normalized presentation — the
// exact hypothesis of Reduction Theorem part (B).
func checkWitness(p *words.Presentation, in *reduction.Instance, m *Model) error {
	mul := make([][]semigroup.Elem, len(m.Table))
	for i, row := range m.Table {
		mul[i] = make([]semigroup.Elem, len(row))
		for j, v := range row {
			mul[i][j] = semigroup.Elem(v)
		}
	}
	t, err := semigroup.New(mul, "witness")
	if err != nil {
		return fmt.Errorf("cert: witness table: %w", err)
	}
	assign := make(map[words.Symbol]semigroup.Elem, len(m.Assign))
	for name, e := range m.Assign {
		s, ok := p.Alphabet.Symbol(name)
		if !ok {
			return fmt.Errorf("cert: witness assigns unknown symbol %q", name)
		}
		assign[s] = semigroup.Elem(e)
	}
	wit, err := semigroup.NewInterpretation(t, p.Alphabet, assign)
	if err != nil {
		return fmt.Errorf("cert: witness: %w", err)
	}
	if _, err := in.ExtendWitness(wit); err != nil {
		return fmt.Errorf("cert: witness: %w", err)
	}
	return nil
}

package eid

import (
	"strings"
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func TestPaperExampleSatisfaction(t *testing.T) {
	s, e := PaperExample()
	if e.NumAntecedents() != 2 || e.NumConclusions() != 2 {
		t.Fatalf("shape %d/%d", e.NumAntecedents(), e.NumConclusions())
	}
	if e.IsTD() {
		t.Error("two-conclusion EID reported as TD")
	}
	inst := relation.NewInstance(s)
	// Supplier 0 supplies style 0 size 0 and style 1 size 1: need a single
	// supplier with (style0, size0) and (style0, size1).
	inst.MustAdd(relation.Tuple{0, 0, 0})
	inst.MustAdd(relation.Tuple{0, 1, 1})
	ok, witness := e.Satisfies(inst)
	if ok {
		t.Fatal("should be violated")
	}
	if witness == nil {
		t.Fatal("violation needs a witness")
	}
	// Add a supplier covering both: satisfied for that match. The repair
	// tuples also create new matches; close manually and check via brute
	// force equivalence with two single-conclusion TDs? No: the shared a*
	// cannot be decomposed into independent TDs. Just verify the positive
	// case on a crafted instance.
	inst2 := relation.NewInstance(s)
	inst2.MustAdd(relation.Tuple{0, 0, 0})
	inst2.MustAdd(relation.Tuple{0, 0, 1})
	// Only matches have b=0 (style of first tuple), c in {0,1}; supplier 0
	// itself covers (0,0) and (0,1).
	if ok, _ := e.Satisfies(inst2); !ok {
		t.Error("self-covering instance should satisfy the EID")
	}
}

func TestSharedExistentialMatters(t *testing.T) {
	// The conjunctive conclusion with shared a* is strictly stronger than
	// the two TDs with independent existentials.
	s, e := PaperExample()
	tdA := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(x, b, c)", "") // trivial-ish
	tdB := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(y, b, c')", "")
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0, 0})
	inst.MustAdd(relation.Tuple{0, 1, 1})
	inst.MustAdd(relation.Tuple{1, 0, 1}) // supplier 1 covers (style0, size1)
	inst.MustAdd(relation.Tuple{2, 1, 0}) // supplier 2 covers (style1, size0)
	// Both TDs hold: (x,b,c) matched by the first tuple of each match
	// itself; (y,b,c') by the covering suppliers 1 and 2.
	if ok, _ := tdA.Satisfies(inst); !ok {
		t.Fatal("tdA should hold")
	}
	if ok, _ := tdB.Satisfies(inst); !ok {
		t.Fatal("tdB should hold")
	}
	// The EID demands ONE supplier covering both sizes: no supplier has
	// both (style0,size0) and (style0,size1).
	if ok, _ := e.Satisfies(inst); ok {
		t.Error("EID should be violated: the existential supplier is shared")
	}
}

func TestFromTD(t *testing.T) {
	s, fig1 := td.GarmentExample()
	e := FromTD(fig1)
	if !e.IsTD() {
		t.Error("TD-derived EID should report IsTD")
	}
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0, 0})
	inst.MustAdd(relation.Tuple{0, 1, 1})
	okTD, _ := fig1.Satisfies(inst)
	okEID, _ := e.Satisfies(inst)
	if okTD != okEID {
		t.Errorf("TD %v vs EID %v", okTD, okEID)
	}
	inst.MustAdd(relation.Tuple{1, 0, 1})
	okTD, _ = fig1.Satisfies(inst)
	okEID, _ = e.Satisfies(inst)
	if okTD != okEID {
		t.Errorf("after repair: TD %v vs EID %v", okTD, okEID)
	}
}

func TestParseAndFormat(t *testing.T) {
	s := relation.MustSchema("A", "B")
	e, err := Parse(s, "R(a, b) -> R(a, b') & R(a', b)", "x")
	if err != nil {
		t.Fatal(err)
	}
	if e.NumConclusions() != 2 {
		t.Errorf("conclusions %d", e.NumConclusions())
	}
	text := e.Format()
	e2, err := Parse(s, text, "y")
	if err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	if e2.Format() != text {
		t.Errorf("round trip %q vs %q", e2.Format(), text)
	}
	if !strings.Contains(text, "->") {
		t.Errorf("Format = %q", text)
	}
}

func TestParseErrors(t *testing.T) {
	s := relation.MustSchema("A", "B")
	for _, bad := range []string{
		"R(a, b)",            // no arrow
		"-> R(a, b)",         // no antecedents
		"R(a, b) ->",         // no conclusions
		"R(a) -> R(a, b)",    // width
		"R(a, a) -> R(a, a)", // typing
		"S(a, b) -> R(a, b)", // relation name
	} {
		if _, err := Parse(s, bad, ""); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	s := relation.MustSchema("A")
	if _, err := New(s, nil, nil, ""); err == nil {
		t.Error("empty EID accepted")
	}
}

func TestSatisfiesEmptyInstance(t *testing.T) {
	_, e := PaperExample()
	inst := relation.NewInstance(e.Schema())
	if ok, _ := e.Satisfies(inst); !ok {
		t.Error("EIDs hold vacuously on the empty instance")
	}
}

package eid

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/relation"
	"templatedep/internal/tableau"
)

// The EID chase generalizes the TD chase of package chase: a trigger is a
// match of an EID's antecedents that does not extend to a joint match of
// ALL conclusion atoms; firing it adds every conclusion atom at once, with
// the existential variables shared across atoms bound to the same fresh
// values. Everything else (fair rounds, budgets, three-valued verdicts)
// mirrors the TD engine.

// Options bounds an EID chase run.
type Options struct {
	// Governor bounds the run exactly like the TD engine's: rounds and
	// tuples meters, context checked once per fair round. Nil resolves to
	// DefaultLimits.
	Governor *budget.Governor
}

// DefaultLimits mirror the TD chase defaults: 64 fair rounds, 100000
// tuples.
var DefaultLimits = budget.Limits{Rounds: 64, Tuples: 100000}

// DefaultOptions returns moderate defaults.
func DefaultOptions() Options { return Options{} }

// Verdict is the three-valued implication outcome.
type Verdict int

const (
	// Unknown means budgets ran out.
	Unknown Verdict = iota
	// Implied means the dependency set logically implies the goal.
	Implied
	// NotImplied means a fixpoint was reached without the goal: the
	// fixpoint is a finite counterexample.
	NotImplied
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not-implied"
	default:
		return "unknown"
	}
}

// Result reports an EID chase run.
type Result struct {
	Verdict         Verdict
	Instance        *relation.Instance
	FixpointReached bool
	// Budget reports how the governor cut the run short; zero (ok) means
	// the chase finished on its own.
	Budget      budget.Outcome
	Rounds      int
	TuplesAdded int
}

// Chase closes start (cloned) under the EIDs, evaluating goal after every
// round when non-nil.
func Chase(deps []*EID, start *relation.Instance, goal func(*relation.Instance) bool, opt Options) (Result, error) {
	g := budget.Resolve(opt.Governor, DefaultLimits)
	tupleCap := g.Limit(budget.Tuples)
	for i, d := range deps {
		if !d.Schema().Equal(start.Schema()) {
			return Result{}, fmt.Errorf("eid: dependency %d has a different schema", i)
		}
	}
	inst := start.Clone()
	res := Result{Instance: inst}
	if goal != nil && goal(inst) {
		res.Verdict = Implied
		return res, nil
	}
	// Scratch for materializing conclusion atoms, reused across triggers
	// instead of cloning the assignment per fired trigger.
	bound := make([]tableau.Assignment, len(deps))
	for i, d := range deps {
		bound[i] = tableau.NewAssignment(d.tab)
	}
	for round := 1; ; round++ {
		if o := g.Charge(budget.Rounds, 1); o.Stopped() {
			res.Verdict = Unknown
			res.Budget = o
			return res, nil
		}
		res.Rounds = round
		var adds []relation.Tuple
		// Mirrors the TD chase's in-round checkpoints: one round can
		// diverge on an unbounded instance, so every batch of enumerated
		// triggers polls the context and aborts the join.
		const interruptBatch = 4096
		seen := 0
		var stopped budget.Outcome
		for di, d := range deps {
			d.tab.EachPrefixHomomorphism(inst, nil, d.numAnte, func(as tableau.Assignment) bool {
				seen++
				if seen%interruptBatch == 0 {
					if o := g.Interrupted(); o.Stopped() {
						stopped = o
						return false
					}
				}
				if d.tab.HasHomomorphism(inst, as) {
					return true // conclusion already jointly witnessed
				}
				// Materialize all conclusion atoms with shared fresh values.
				b := bound[di]
				for a := range as {
					copy(b[a], as[a])
				}
				for ci := 0; ci < d.NumConclusions(); ci++ {
					row := d.Conclusion(ci)
					tup := make(relation.Tuple, len(row))
					for a, v := range row {
						if b[a][v] == tableau.Unbound {
							b[a][v] = inst.FreshValue(relation.Attr(a))
						}
						tup[a] = b[a][v]
					}
					adds = append(adds, tup)
				}
				return true
			})
			if stopped.Stopped() {
				break
			}
		}
		if stopped.Stopped() {
			res.Verdict = Unknown
			res.Budget = stopped
			return res, nil
		}
		if len(adds) == 0 {
			res.FixpointReached = true
			if goal == nil {
				res.Verdict = Unknown
			} else {
				res.Verdict = NotImplied
			}
			return res, nil
		}
		addedRound := 0
		for ai, tup := range adds {
			if tupleCap > 0 && inst.Len() >= tupleCap {
				res.Verdict = Unknown
				res.Budget = budget.Exhausted(budget.Tuples)
				g.Add(budget.Tuples, addedRound)
				return res, nil
			}
			if ai%interruptBatch == interruptBatch-1 {
				if o := g.Interrupted(); o.Stopped() {
					res.Verdict = Unknown
					res.Budget = o
					g.Add(budget.Tuples, addedRound)
					return res, nil
				}
			}
			if _, added, err := inst.Add(tup); err != nil {
				return Result{}, err
			} else if added {
				res.TuplesAdded++
				addedRound++
			}
		}
		g.Add(budget.Tuples, addedRound)
		if goal != nil && goal(inst) {
			res.Verdict = Implied
			return res, nil
		}
	}
}

// Implies semidecides whether deps logically imply goal, by chasing the
// goal's frozen antecedents and watching for a joint match of all its
// conclusion atoms.
func Implies(deps []*EID, goal *EID, opt Options) (Result, error) {
	// Freeze the goal's antecedents with the identity assignment.
	inst := relation.NewInstance(goal.Schema())
	seed := tableau.NewAssignment(goal.tab)
	for ri := 0; ri < goal.numAnte; ri++ {
		row := goal.tab.Row(ri)
		tup := make(relation.Tuple, len(row))
		for a, v := range row {
			tup[a] = relation.Value(v)
			seed[a][v] = relation.Value(v)
		}
		inst.MustAdd(tup)
	}
	check := func(cur *relation.Instance) bool {
		return goal.tab.HasHomomorphism(cur, seed)
	}
	return Chase(deps, inst, check, opt)
}

package eid

import (
	"fmt"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
)

// The EID chase generalizes the TD chase of package chase: a trigger is a
// match of an EID's antecedents that does not extend to a joint match of
// ALL conclusion atoms; firing it adds every conclusion atom at once, with
// the existential variables shared across atoms bound to the same fresh
// values. Everything else (fair rounds, budgets, three-valued verdicts)
// mirrors the TD engine.

// Options bounds an EID chase run.
type Options struct {
	// MaxRounds caps fair rounds. <= 0 means 64.
	MaxRounds int
	// MaxTuples caps the instance size. <= 0 means 100000.
	MaxTuples int
}

// DefaultOptions returns moderate defaults.
func DefaultOptions() Options { return Options{MaxRounds: 64, MaxTuples: 100000} }

// Verdict is the three-valued implication outcome.
type Verdict int

const (
	// Unknown means budgets ran out.
	Unknown Verdict = iota
	// Implied means the dependency set logically implies the goal.
	Implied
	// NotImplied means a fixpoint was reached without the goal: the
	// fixpoint is a finite counterexample.
	NotImplied
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not-implied"
	default:
		return "unknown"
	}
}

// Result reports an EID chase run.
type Result struct {
	Verdict         Verdict
	Instance        *relation.Instance
	FixpointReached bool
	Rounds          int
	TuplesAdded     int
}

// Chase closes start (cloned) under the EIDs, evaluating goal after every
// round when non-nil.
func Chase(deps []*EID, start *relation.Instance, goal func(*relation.Instance) bool, opt Options) (Result, error) {
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 64
	}
	if opt.MaxTuples <= 0 {
		opt.MaxTuples = 100000
	}
	for i, d := range deps {
		if !d.Schema().Equal(start.Schema()) {
			return Result{}, fmt.Errorf("eid: dependency %d has a different schema", i)
		}
	}
	inst := start.Clone()
	res := Result{Instance: inst}
	if goal != nil && goal(inst) {
		res.Verdict = Implied
		return res, nil
	}
	// Scratch for materializing conclusion atoms, reused across triggers
	// instead of cloning the assignment per fired trigger.
	bound := make([]tableau.Assignment, len(deps))
	for i, d := range deps {
		bound[i] = tableau.NewAssignment(d.tab)
	}
	for round := 1; round <= opt.MaxRounds; round++ {
		res.Rounds = round
		var adds []relation.Tuple
		for di, d := range deps {
			d.tab.EachPrefixHomomorphism(inst, nil, d.numAnte, func(as tableau.Assignment) bool {
				if d.tab.HasHomomorphism(inst, as) {
					return true // conclusion already jointly witnessed
				}
				// Materialize all conclusion atoms with shared fresh values.
				b := bound[di]
				for a := range as {
					copy(b[a], as[a])
				}
				for ci := 0; ci < d.NumConclusions(); ci++ {
					row := d.Conclusion(ci)
					tup := make(relation.Tuple, len(row))
					for a, v := range row {
						if b[a][v] == tableau.Unbound {
							b[a][v] = inst.FreshValue(relation.Attr(a))
						}
						tup[a] = b[a][v]
					}
					adds = append(adds, tup)
				}
				return true
			})
		}
		if len(adds) == 0 {
			res.FixpointReached = true
			if goal == nil {
				res.Verdict = Unknown
			} else {
				res.Verdict = NotImplied
			}
			return res, nil
		}
		for _, tup := range adds {
			if inst.Len() >= opt.MaxTuples {
				res.Verdict = Unknown
				return res, nil
			}
			if _, added, err := inst.Add(tup); err != nil {
				return Result{}, err
			} else if added {
				res.TuplesAdded++
			}
		}
		if goal != nil && goal(inst) {
			res.Verdict = Implied
			return res, nil
		}
	}
	res.Verdict = Unknown
	return res, nil
}

// Implies semidecides whether deps logically imply goal, by chasing the
// goal's frozen antecedents and watching for a joint match of all its
// conclusion atoms.
func Implies(deps []*EID, goal *EID, opt Options) (Result, error) {
	// Freeze the goal's antecedents with the identity assignment.
	inst := relation.NewInstance(goal.Schema())
	seed := tableau.NewAssignment(goal.tab)
	for ri := 0; ri < goal.numAnte; ri++ {
		row := goal.tab.Row(ri)
		tup := make(relation.Tuple, len(row))
		for a, v := range row {
			tup[a] = relation.Value(v)
			seed[a][v] = relation.Value(v)
		}
		inst.MustAdd(tup)
	}
	check := func(cur *relation.Instance) bool {
		return goal.tab.HasHomomorphism(cur, seed)
	}
	return Chase(deps, inst, check, opt)
}

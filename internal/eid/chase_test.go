package eid

import (
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func TestEIDImpliesSelf(t *testing.T) {
	_, e := PaperExample()
	res, err := Implies([]*EID{e}, e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestEIDImpliesItsTDProjections(t *testing.T) {
	// The EID with shared a* implies each single-conclusion projection.
	s, e := PaperExample()
	projA := FromTD(td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(x, b, c)", "projA"))
	projB := FromTD(td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(y, b, c')", "projB"))
	for _, goal := range []*EID{projA, projB} {
		res, err := Implies([]*EID{e}, goal, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Implied {
			t.Errorf("%s: verdict %v", goal.Name(), res.Verdict)
		}
	}
}

func TestTDProjectionsDoNotImplyEID(t *testing.T) {
	// Conversely the projections do NOT imply the conjunctive EID.
	s, e := PaperExample()
	projA := FromTD(td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(x, b, c)", "projA"))
	projB := FromTD(td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(y, b, c')", "projB"))
	res, err := Implies([]*EID{projA, projB}, e, Options{Governor: budget.New(nil, budget.Limits{Rounds: 8, Tuples: 5000})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict == Implied {
		t.Fatal("projections must not imply the shared-existential EID")
	}
}

func TestEIDChaseFixpointCounterexample(t *testing.T) {
	_, e := PaperExample()
	res, err := Implies(nil, e, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotImplied || !res.FixpointReached {
		t.Fatalf("verdict %v fixpoint %v", res.Verdict, res.FixpointReached)
	}
	if ok, _ := e.Satisfies(res.Instance); ok {
		t.Error("counterexample satisfies the goal")
	}
}

func TestEIDChaseClosureSatisfies(t *testing.T) {
	s, e := PaperExample()
	start := relation.NewInstance(s)
	start.MustAdd(relation.Tuple{0, 0, 0})
	start.MustAdd(relation.Tuple{0, 1, 1})
	res, err := Chase([]*EID{e}, start, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FixpointReached {
		t.Fatalf("no fixpoint (tuples %d)", res.Instance.Len())
	}
	if ok, _ := e.Satisfies(res.Instance); !ok {
		t.Error("fixpoint violates the EID")
	}
	if !res.Instance.Contains(relation.Tuple{0, 0, 0}) {
		t.Error("input tuple lost")
	}
}

func TestEIDChaseBudgets(t *testing.T) {
	_, e := PaperExample()
	res, err := Implies([]*EID{e}, e, Options{Governor: budget.New(nil, budget.Limits{Rounds: 64, Tuples: 2})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict %v under tuple cap", res.Verdict)
	}
}

func TestEIDChaseSchemaMismatch(t *testing.T) {
	_, e := PaperExample()
	other := relation.MustSchema("X", "Y")
	start := relation.NewInstance(other)
	if _, err := Chase([]*EID{e}, start, nil, DefaultOptions()); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestEIDTrivialGoal(t *testing.T) {
	s := relation.MustSchema("A", "B")
	goal := MustParse(s, "R(a, b) -> R(a, b)", "trivial")
	res, err := Implies(nil, goal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Errorf("verdict %v", res.Verdict)
	}
	if res.Rounds != 0 {
		t.Errorf("rounds %d, want 0", res.Rounds)
	}
}

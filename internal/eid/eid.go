// Package eid implements (typed) embedded implicational dependencies
// without equality — the comparison class of Chandra, Lewis and Makowsky
// (1981) discussed in the paper. An EID resembles a template dependency,
// but its conclusion may be a CONJUNCTION of atoms, whose existential
// variables are shared across the conjuncts. The paper's example:
//
//	R(a, b, c) & R(a, b', c') -> R(a*, b, c) & R(a*, b, c')
//
// ("if one supplier supplies a garment b in a size c and also supplies some
// garment in size c', then there is a supplier of garment b in both sizes c
// and c'" — note the shared a*.)
//
// Every template dependency is an EID with a one-atom conclusion, so the
// paper's undecidability result for TDs strengthens the earlier one for
// EIDs. The package provides satisfaction checking and a chase-based
// implication semi-procedure mirroring package chase.
package eid

import (
	"fmt"
	"strings"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

// EID is an embedded implicational dependency: antecedent rows plus one or
// more conclusion rows over a shared typed variable space.
type EID struct {
	name    string
	tab     *tableau.Tableau // antecedents then conclusions
	numAnte int
}

// New builds an EID. At least one antecedent and one conclusion atom are
// required.
func New(s *relation.Schema, antecedents, conclusions []tableau.VarTuple, name string) (*EID, error) {
	if len(antecedents) == 0 {
		return nil, fmt.Errorf("eid: at least one antecedent required")
	}
	if len(conclusions) == 0 {
		return nil, fmt.Errorf("eid: at least one conclusion atom required")
	}
	rows := make([]tableau.VarTuple, 0, len(antecedents)+len(conclusions))
	rows = append(rows, antecedents...)
	rows = append(rows, conclusions...)
	tab, err := tableau.New(s, rows)
	if err != nil {
		return nil, err
	}
	return &EID{name: name, tab: tab, numAnte: len(antecedents)}, nil
}

// FromTD embeds a template dependency as a one-conclusion EID.
func FromTD(d *td.TD) *EID {
	rows := make([]tableau.VarTuple, 0, d.NumAntecedents())
	for i := 0; i < d.NumAntecedents(); i++ {
		rows = append(rows, d.Antecedent(i))
	}
	e, err := New(d.Schema(), rows, []tableau.VarTuple{d.Conclusion()}, d.Name())
	if err != nil {
		panic(err) // a valid TD always converts
	}
	return e
}

// Name returns the EID's name.
func (e *EID) Name() string { return e.name }

// Schema returns the schema.
func (e *EID) Schema() *relation.Schema { return e.tab.Schema() }

// NumAntecedents returns the antecedent count.
func (e *EID) NumAntecedents() int { return e.numAnte }

// NumConclusions returns the number of conclusion atoms.
func (e *EID) NumConclusions() int { return e.tab.Len() - e.numAnte }

// Antecedent returns the i-th antecedent row.
func (e *EID) Antecedent(i int) tableau.VarTuple {
	if i < 0 || i >= e.numAnte {
		panic(fmt.Sprintf("eid: antecedent index %d out of range", i))
	}
	return e.tab.Row(i)
}

// Conclusion returns the i-th conclusion row.
func (e *EID) Conclusion(i int) tableau.VarTuple { return e.tab.Row(e.numAnte + i) }

// IsTD reports whether the EID is a template dependency (one conclusion).
func (e *EID) IsTD() bool { return e.NumConclusions() == 1 }

// Satisfies reports whether the instance satisfies the EID: every match of
// the antecedents extends to a joint match of all conclusion atoms.
func (e *EID) Satisfies(inst *relation.Instance) (bool, tableau.Assignment) {
	ok := true
	var witness tableau.Assignment
	e.tab.EachPrefixHomomorphism(inst, nil, e.numAnte, func(as tableau.Assignment) bool {
		if !e.tab.HasHomomorphism(inst, as) {
			ok = false
			witness = as.Clone()
			return false
		}
		return true
	})
	return ok, witness
}

// Parse reads an EID from the textual syntax of package td, except that the
// conclusion may be a conjunction: "R(...) & R(...) -> R(...) & R(...)".
func Parse(s *relation.Schema, input, name string) (*EID, error) {
	idx := strings.Index(input, "->")
	sepLen := 2
	if idx < 0 {
		idx = strings.Index(input, "=>")
	}
	if idx < 0 {
		return nil, fmt.Errorf("eid: missing '->' in %q", input)
	}
	left, right := input[:idx], input[idx+sepLen:]

	varOf := make([]map[string]tableau.Var, s.Width())
	for a := range varOf {
		varOf[a] = make(map[string]tableau.Var)
	}
	next := make([]tableau.Var, s.Width())
	colOf := make(map[string]int)
	parseAtom := func(atom string) (tableau.VarTuple, error) {
		atom = strings.TrimSpace(atom)
		if !strings.HasPrefix(atom, "R(") || !strings.HasSuffix(atom, ")") {
			return nil, fmt.Errorf("eid: atom %q must have the form R(...)", atom)
		}
		parts := strings.Split(atom[2:len(atom)-1], ",")
		if len(parts) != s.Width() {
			return nil, fmt.Errorf("eid: atom %q has %d components, want %d", atom, len(parts), s.Width())
		}
		row := make(tableau.VarTuple, s.Width())
		for a, tok := range parts {
			tok = strings.TrimSpace(tok)
			if tok == "" || strings.ContainsAny(tok, "() &") {
				return nil, fmt.Errorf("eid: bad variable token %q", tok)
			}
			if prev, seen := colOf[tok]; seen && prev != a {
				return nil, fmt.Errorf("eid: variable %q appears in two columns; typing forbids this", tok)
			}
			colOf[tok] = a
			v, okv := varOf[a][tok]
			if !okv {
				v = next[a]
				next[a]++
				varOf[a][tok] = v
			}
			row[a] = v
		}
		return row, nil
	}
	collect := func(src string) ([]tableau.VarTuple, error) {
		var out []tableau.VarTuple
		for _, atom := range strings.Split(src, "&") {
			if strings.TrimSpace(atom) == "" {
				continue
			}
			row, err := parseAtom(atom)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
		return out, nil
	}
	antecedents, err := collect(left)
	if err != nil {
		return nil, err
	}
	conclusions, err := collect(right)
	if err != nil {
		return nil, err
	}
	if len(antecedents) == 0 || len(conclusions) == 0 {
		return nil, fmt.Errorf("eid: need antecedents and conclusions in %q", input)
	}
	return New(s, antecedents, conclusions, name)
}

// MustParse is Parse that panics on error.
func MustParse(s *relation.Schema, input, name string) *EID {
	e, err := Parse(s, input, name)
	if err != nil {
		panic(err)
	}
	return e
}

// PaperExample returns the paper's EID example over the garment schema.
func PaperExample() (*relation.Schema, *EID) {
	s := relation.MustSchema("SUPPLIER", "STYLE", "SIZE")
	e := MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a*, b, c) & R(a*, b, c')", "paper-eid")
	return s, e
}

// Format renders the EID in its textual syntax.
func (e *EID) Format() string {
	s := e.Schema()
	atom := func(r tableau.VarTuple) string {
		var b strings.Builder
		b.WriteString("R(")
		for a, v := range r {
			if a > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s%d", strings.ToLower(s.Name(relation.Attr(a))), int(v))
		}
		b.WriteString(")")
		return b.String()
	}
	var b strings.Builder
	for i := 0; i < e.numAnte; i++ {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString(atom(e.tab.Row(i)))
	}
	b.WriteString(" -> ")
	for i := 0; i < e.NumConclusions(); i++ {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString(atom(e.Conclusion(i)))
	}
	return b.String()
}

package diagram

import (
	"strings"
	"testing"

	"templatedep/internal/eid"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func TestFig1MatchesGarmentTD(t *testing.T) {
	g, want := Fig1()
	got, err := g.TD("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Format() != want.Format() {
		t.Errorf("diagram TD = %s\nwant        %s", got.Format(), want.Format())
	}
	if got.IsFull() {
		t.Error("fig1 is embedded")
	}
}

func TestFromTDRoundTrip(t *testing.T) {
	_, fig1 := td.GarmentExample()
	g := FromTD(fig1)
	if g.NumNodes() != 3 || g.Conclusion() != 2 {
		t.Fatalf("nodes %d conclusion %d", g.NumNodes(), g.Conclusion())
	}
	back, err := g.TD("back")
	if err != nil {
		t.Fatal(err)
	}
	if back.Format() != fig1.Format() {
		t.Errorf("round trip: %s vs %s", back.Format(), fig1.Format())
	}
}

func TestComponentsTransitivity(t *testing.T) {
	s := relation.MustSchema("A", "B")
	g := MustNew(s, 4, 3)
	g.MustAddEdge(0, 0, 1)
	g.MustAddEdge(0, 1, 2)
	// 0-1-2 chained on A: all in one class; 3 alone.
	if !g.SameClass(0, 0, 2) {
		t.Error("transitive closure missing")
	}
	if g.SameClass(0, 0, 3) {
		t.Error("spurious class merge")
	}
	if g.SameClass(1, 0, 1) {
		t.Error("edges leaked across attributes")
	}
}

func TestDiagramValidation(t *testing.T) {
	s := relation.MustSchema("A")
	if _, err := New(s, 1, 0); err == nil {
		t.Error("single-node diagram accepted")
	}
	if _, err := New(s, 3, 5); err == nil {
		t.Error("out-of-range conclusion accepted")
	}
	g := MustNew(s, 3, 2)
	if err := g.AddEdge(5, 0, 1); err == nil {
		t.Error("bad attribute accepted")
	}
	if err := g.AddEdge(0, 0, 9); err == nil {
		t.Error("bad node accepted")
	}
	if err := g.AddEdge(0, 1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestRenderings(t *testing.T) {
	g, _ := Fig1()
	dot := g.DOT("fig1")
	for _, want := range []string{"graph \"fig1\"", "doublecircle", "SUPPLIER", "--"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	ascii := g.ASCII()
	for _, want := range []string{"conclusion *", "1 --[SUPPLIER]-- 2", "--[STYLE]--", "--[SIZE]--"} {
		if !strings.Contains(ascii, want) {
			t.Errorf("ASCII missing %q:\n%s", want, ascii)
		}
	}
}

func TestMultiLabelEdgeRendering(t *testing.T) {
	s := relation.MustSchema("A", "B")
	g := MustNew(s, 2, 1)
	g.MustAddEdge(0, 0, 1)
	g.MustAddEdge(1, 0, 1)
	ascii := g.ASCII()
	if !strings.Contains(ascii, "[A,B]") {
		t.Errorf("multi-label edge not merged: %s", ascii)
	}
}

func TestFromEIDMultiConclusion(t *testing.T) {
	_, e := eid.PaperExample()
	g := FromEID(e)
	if g.NumNodes() != 4 {
		t.Fatalf("nodes %d, want 4 (2 antecedents + 2 conclusions)", g.NumNodes())
	}
	if got := g.Conclusions(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("conclusions %v", got)
	}
	// The two conclusion atoms share the existential supplier: they must be
	// SUPPLIER-connected to each other but to no antecedent.
	sup := e.Schema().MustAttr("SUPPLIER")
	if !g.SameClass(sup, 2, 3) {
		t.Error("conclusion atoms should share the supplier class")
	}
	if g.SameClass(sup, 0, 2) || g.SameClass(sup, 1, 3) {
		t.Error("existential supplier leaked into the antecedents")
	}
	// Rendering marks both starred nodes.
	ascii := g.ASCII()
	if !strings.Contains(ascii, "*1") || !strings.Contains(ascii, "*2") {
		t.Errorf("ASCII missing starred nodes:\n%s", ascii)
	}
	// A multi-conclusion diagram cannot be converted to a TD.
	if _, err := g.TD("x"); err == nil {
		t.Error("multi-conclusion diagram converted to TD")
	}
}

func TestNewMultiValidation(t *testing.T) {
	s := relation.MustSchema("A")
	if _, err := NewMulti(s, 3, nil); err == nil {
		t.Error("no conclusions accepted")
	}
	if _, err := NewMulti(s, 2, []int{0, 1}); err == nil {
		t.Error("all-conclusion diagram accepted")
	}
	if _, err := NewMulti(s, 3, []int{1, 1}); err == nil {
		t.Error("duplicate conclusion accepted")
	}
	if _, err := NewMulti(s, 3, []int{5}); err == nil {
		t.Error("out-of-range conclusion accepted")
	}
}

func TestTDToDiagramSatisfactionEquivalence(t *testing.T) {
	// The TD produced by a diagram and the TD it came from agree on
	// satisfaction over a concrete instance.
	s, fig1 := td.GarmentExample()
	g := FromTD(fig1)
	d2, err := g.TD("copy")
	if err != nil {
		t.Fatal(err)
	}
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0, 0})
	inst.MustAdd(relation.Tuple{0, 1, 1})
	ok1, _ := fig1.Satisfies(inst)
	ok2, _ := d2.Satisfies(inst)
	if ok1 != ok2 {
		t.Errorf("satisfaction differs: %v vs %v", ok1, ok2)
	}
}

// Package diagram implements the dependency diagrams of Fagin, Maier,
// Ullman and Yannakakis (1981), which the paper uses to describe template
// dependencies succinctly (Figs. 1–3).
//
// A diagram is an undirected graph whose nodes stand for tuples of the
// relation and whose edges are labeled with attributes on which the joined
// tuples agree. Numbered nodes are antecedents; the node labeled * is the
// conclusion. Each attribute's edges generate an equivalence relation on
// nodes (implied edges may be omitted in drawings); the conclusion tuple
// has existentially quantified components on attributes that do not connect
// it (even transitively) to the rest of the diagram.
package diagram

import (
	"fmt"
	"sort"
	"strings"

	"templatedep/internal/eid"
	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

// Edge joins nodes U and V and is labeled with an attribute.
type Edge struct {
	Attr relation.Attr
	U, V int
}

// Diagram is a dependency diagram: nodes 0..NumNodes-1, one of which is the
// conclusion (*).
type Diagram struct {
	schema      *relation.Schema
	numNodes    int
	conclusions []int // sorted; usually one, several for EID diagrams
	edges       []Edge
}

// New creates a diagram with numNodes nodes; conclusion is the index of the
// * node.
func New(schema *relation.Schema, numNodes, conclusion int) (*Diagram, error) {
	return NewMulti(schema, numNodes, []int{conclusion})
}

// NewMulti creates a diagram with several conclusion nodes — the diagram
// form of an embedded implicational dependency, whose conclusion is a
// conjunction of atoms sharing existential variables.
func NewMulti(schema *relation.Schema, numNodes int, conclusions []int) (*Diagram, error) {
	if len(conclusions) == 0 {
		return nil, fmt.Errorf("diagram: need at least one conclusion node")
	}
	if numNodes < len(conclusions)+1 {
		return nil, fmt.Errorf("diagram: need at least one antecedent node besides the conclusions")
	}
	seen := make(map[int]bool)
	sorted := append([]int(nil), conclusions...)
	sort.Ints(sorted)
	for _, c := range sorted {
		if c < 0 || c >= numNodes {
			return nil, fmt.Errorf("diagram: conclusion index %d out of range", c)
		}
		if seen[c] {
			return nil, fmt.Errorf("diagram: duplicate conclusion index %d", c)
		}
		seen[c] = true
	}
	return &Diagram{schema: schema, numNodes: numNodes, conclusions: sorted}, nil
}

// MustNew is New that panics on error.
func MustNew(schema *relation.Schema, numNodes, conclusion int) *Diagram {
	g, err := New(schema, numNodes, conclusion)
	if err != nil {
		panic(err)
	}
	return g
}

// Schema returns the diagram's schema.
func (g *Diagram) Schema() *relation.Schema { return g.schema }

// NumNodes returns the node count (including the conclusion).
func (g *Diagram) NumNodes() int { return g.numNodes }

// Conclusion returns the index of the * node.
func (g *Diagram) Conclusion() int { return g.conclusions[0] }

// Conclusions returns all conclusion node indices (sorted).
func (g *Diagram) Conclusions() []int {
	return append([]int(nil), g.conclusions...)
}

// isConclusion reports whether node i is a conclusion node.
func (g *Diagram) isConclusion(i int) bool {
	for _, c := range g.conclusions {
		if c == i {
			return true
		}
	}
	return false
}

// Edges returns the edge list (not copied).
func (g *Diagram) Edges() []Edge { return g.edges }

// AddEdge joins u and v with an attribute label.
func (g *Diagram) AddEdge(attr relation.Attr, u, v int) error {
	if int(attr) < 0 || int(attr) >= g.schema.Width() {
		return fmt.Errorf("diagram: attribute %d out of range", int(attr))
	}
	if u < 0 || u >= g.numNodes || v < 0 || v >= g.numNodes {
		return fmt.Errorf("diagram: edge (%d, %d) out of range", u, v)
	}
	if u == v {
		return fmt.Errorf("diagram: self-loop on node %d is meaningless (agreement is reflexive)", u)
	}
	g.edges = append(g.edges, Edge{Attr: attr, U: u, V: v})
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Diagram) MustAddEdge(attr relation.Attr, u, v int) {
	if err := g.AddEdge(attr, u, v); err != nil {
		panic(err)
	}
}

// components returns, for attribute a, the partition of nodes into
// agreement classes (the reflexive-transitive closure of a's edges),
// as a slice mapping node -> class id (dense, in first-seen order).
func (g *Diagram) components(a relation.Attr) []int {
	parent := make([]int, g.numNodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.edges {
		if e.Attr != a {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	cls := make([]int, g.numNodes)
	next := 0
	seen := make(map[int]int)
	for i := 0; i < g.numNodes; i++ {
		r := find(i)
		id, ok := seen[r]
		if !ok {
			id = next
			next++
			seen[r] = id
		}
		cls[i] = id
	}
	return cls
}

// SameClass reports whether nodes u and v agree on attribute a (possibly
// through implied edges).
func (g *Diagram) SameClass(a relation.Attr, u, v int) bool {
	cls := g.components(a)
	return cls[u] == cls[v]
}

// TD converts the diagram to a template dependency: antecedent nodes in
// index order, then the conclusion. Within each attribute, nodes in the
// same agreement class share a variable.
func (g *Diagram) TD(name string) (*td.TD, error) {
	width := g.schema.Width()
	classes := make([][]int, width)
	for a := 0; a < width; a++ {
		classes[a] = g.components(relation.Attr(a))
	}
	row := func(node int) tableau.VarTuple {
		r := make(tableau.VarTuple, width)
		for a := 0; a < width; a++ {
			r[a] = tableau.Var(classes[a][node])
		}
		return r
	}
	if len(g.conclusions) != 1 {
		return nil, fmt.Errorf("diagram: %d conclusion nodes; a TD has exactly one (use an EID)", len(g.conclusions))
	}
	var antecedents []tableau.VarTuple
	for i := 0; i < g.numNodes; i++ {
		if !g.isConclusion(i) {
			antecedents = append(antecedents, row(i))
		}
	}
	return td.New(g.schema, antecedents, row(g.conclusions[0]), name)
}

// FromTD converts a TD back into a diagram: nodes are the antecedents (in
// order) followed by the conclusion (as the last node, marked *). For each
// attribute, nodes sharing a variable are connected by a path of edges in
// node order (implied edges are omitted, as in the paper's drawings).
func FromTD(d *td.TD) *Diagram {
	k := d.NumAntecedents()
	rows := make([]tableau.VarTuple, 0, k+1)
	for i := 0; i < k; i++ {
		rows = append(rows, d.Antecedent(i))
	}
	rows = append(rows, d.Conclusion())
	return fromRows(d.Schema(), rows, []int{k})
}

// FromEID converts an EID into a multi-conclusion diagram: antecedent nodes
// first, then one starred node per conclusion atom (sharing variables, and
// hence edges, with each other and the antecedents).
func FromEID(e *eid.EID) *Diagram {
	k := e.NumAntecedents()
	rows := make([]tableau.VarTuple, 0, k+e.NumConclusions())
	tab := eidRows(e)
	rows = append(rows, tab...)
	conclusions := make([]int, e.NumConclusions())
	for i := range conclusions {
		conclusions[i] = k + i
	}
	return fromRows(e.Schema(), rows, conclusions)
}

// eidRows extracts all rows of an EID in order (antecedents, conclusions).
func eidRows(e *eid.EID) []tableau.VarTuple {
	var rows []tableau.VarTuple
	for i := 0; i < e.NumAntecedents(); i++ {
		rows = append(rows, e.Antecedent(i))
	}
	for i := 0; i < e.NumConclusions(); i++ {
		rows = append(rows, e.Conclusion(i))
	}
	return rows
}

// fromRows builds a diagram from pattern rows, marking the given nodes as
// conclusions.
func fromRows(schema *relation.Schema, rows []tableau.VarTuple, conclusions []int) *Diagram {
	g, err := NewMulti(schema, len(rows), conclusions)
	if err != nil {
		panic(err)
	}
	for a := 0; a < schema.Width(); a++ {
		byVar := make(map[tableau.Var][]int)
		for ni, r := range rows {
			byVar[r[a]] = append(byVar[r[a]], ni)
		}
		vars := make([]int, 0, len(byVar))
		for v := range byVar {
			vars = append(vars, int(v))
		}
		sort.Ints(vars)
		for _, v := range vars {
			nodes := byVar[tableau.Var(v)]
			for i := 1; i < len(nodes); i++ {
				g.MustAddEdge(relation.Attr(a), nodes[i-1], nodes[i])
			}
		}
	}
	return g
}

// nodeLabel names nodes as 1..k and "*" for the conclusion, following the
// paper's figures.
func (g *Diagram) nodeLabel(i int) string {
	if g.isConclusion(i) {
		if len(g.conclusions) == 1 {
			return "*"
		}
		for k, c := range g.conclusions {
			if c == i {
				return fmt.Sprintf("*%d", k+1)
			}
		}
	}
	// Number the non-conclusion nodes 1..k in index order.
	n := 0
	for j := 0; j <= i; j++ {
		if !g.isConclusion(j) {
			n++
		}
	}
	return fmt.Sprintf("%d", n)
}

// DOT renders the diagram in Graphviz format.
func (g *Diagram) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	b.WriteString("  node [shape=circle];\n")
	for i := 0; i < g.numNodes; i++ {
		shape := ""
		if g.isConclusion(i) {
			shape = " [shape=doublecircle]"
		}
		fmt.Fprintf(&b, "  n%d [label=%q]%s;\n", i, g.nodeLabel(i), shape)
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  n%d -- n%d [label=%q];\n", e.U, e.V, g.schema.Name(e.Attr))
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders the diagram as an adjacency listing readable in a terminal.
func (g *Diagram) ASCII() string {
	var b strings.Builder
	labels := make([]string, len(g.conclusions))
	for k, c := range g.conclusions {
		labels[k] = g.nodeLabel(c)
	}
	fmt.Fprintf(&b, "diagram over %s, %d nodes, conclusion %s\n",
		g.schema.String(), g.numNodes, strings.Join(labels, ","))
	byPair := make(map[[2]int][]string)
	var pairs [][2]int
	for _, e := range g.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if len(byPair[key]) == 0 {
			pairs = append(pairs, key)
		}
		byPair[key] = append(byPair[key], g.schema.Name(e.Attr))
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		labels := byPair[p]
		sort.Strings(labels)
		fmt.Fprintf(&b, "  %s --[%s]-- %s\n", g.nodeLabel(p[0]), strings.Join(labels, ","), g.nodeLabel(p[1]))
	}
	return b.String()
}

// Fig1 reproduces the paper's Figure 1: the garment dependency's diagram.
// Node 1 is (a, b, c), node 2 is (a, b', c'), node * is (a*, b, c'); the
// edges are A between 1 and 2, B between 1 and *, C between 2 and *.
func Fig1() (*Diagram, *td.TD) {
	s, d := td.GarmentExample()
	g := MustNew(s, 3, 2)
	g.MustAddEdge(s.MustAttr("SUPPLIER"), 0, 1)
	g.MustAddEdge(s.MustAttr("STYLE"), 0, 2)
	g.MustAddEdge(s.MustAttr("SIZE"), 1, 2)
	return g, d
}

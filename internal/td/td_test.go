package td

import (
	"strings"
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
)

func TestGarmentExample(t *testing.T) {
	s, d := GarmentExample()
	if s.Width() != 3 {
		t.Fatalf("width %d", s.Width())
	}
	if d.NumAntecedents() != 2 {
		t.Errorf("antecedents %d", d.NumAntecedents())
	}
	if d.IsFull() {
		t.Error("fig1 dependency is embedded, not full")
	}
	if d.IsTrivial() {
		t.Error("fig1 dependency is not trivial")
	}
	cols := d.ExistentialColumns()
	if len(cols) != 1 || s.Name(cols[0]) != "SUPPLIER" {
		t.Errorf("existential columns %v", cols)
	}
}

func TestGarmentSatisfaction(t *testing.T) {
	s, d := GarmentExample()
	inst := relation.NewInstance(s)
	// (StLaurent, EveningDress, 10), (StLaurent, Brief, 36):
	// supplier 0 supplies style 0 and size 1 -> need some supplier of
	// (style 0, size 1).
	inst.MustAdd(relation.Tuple{0, 0, 0})
	inst.MustAdd(relation.Tuple{0, 1, 1})
	ok, witness := d.Satisfies(inst)
	if ok {
		t.Fatal("should be violated: nobody supplies style 0 in size 1")
	}
	if witness == nil {
		t.Fatal("violation must come with a witness")
	}
	// Repair: add (BVD, style 0, size 1) with a different supplier.
	inst.MustAdd(relation.Tuple{1, 0, 1})
	// Still violated? Matches with (b,c) = (1,1)... R(a,b,c)=({0},{1},{1})
	// and R(a,b',c') with c'=0 require a supplier of style 1 size 0, etc.
	// Add closure tuples until satisfied; easier: check the specific match
	// is now fine and compute overall satisfaction explicitly.
	ok2, _ := d.Satisfies(inst)
	// Exhaustively verify the result against the definition.
	want := bruteSatisfies(d, inst)
	if ok2 != want {
		t.Errorf("Satisfies = %v, brute force = %v", ok2, want)
	}
}

// bruteSatisfies checks TD satisfaction by explicit enumeration.
func bruteSatisfies(d *TD, inst *relation.Instance) bool {
	k := d.NumAntecedents()
	idx := make([]int, k)
	tuples := inst.Tuples()
	if len(tuples) == 0 {
		return true
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == k {
			// Build assignment; check consistency.
			as := tableau.NewAssignment(d.Tableau())
			for ri := 0; ri < k; ri++ {
				row := d.Antecedent(ri)
				tup := tuples[idx[ri]]
				for a, v := range row {
					if as[a][v] == tableau.Unbound {
						as[a][v] = tup[a]
					} else if as[a][v] != tup[a] {
						return true // inconsistent match; vacuous
					}
				}
			}
			return tableau.RowSatisfiable(d.Conclusion(), as, inst)
		}
		for j := range tuples {
			idx[i] = j
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

func TestTrivialTD(t *testing.T) {
	s := relation.MustSchema("A", "B")
	// Conclusion identical to an antecedent.
	d := MustParse(s, "R(a, b) -> R(a, b)", "")
	if !d.IsTrivial() {
		t.Error("identity TD should be trivial")
	}
	// Conclusion with existential B matching any antecedent row.
	d2 := MustParse(s, "R(a, b) -> R(a, b2)", "")
	if !d2.IsTrivial() {
		t.Error("existential-B TD with matching A should be trivial")
	}
	// Non-trivial: conclusion pairs variables from different rows.
	d3 := MustParse(s, "R(a, b) & R(a2, b2) -> R(a, b2)", "")
	if d3.IsTrivial() {
		t.Error("cross-pairing TD should not be trivial")
	}
	// Trivial TDs hold in arbitrary instances.
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0})
	inst.MustAdd(relation.Tuple{1, 2})
	if ok, _ := d.Satisfies(inst); !ok {
		t.Error("trivial TD violated")
	}
	if ok, _ := d2.Satisfies(inst); !ok {
		t.Error("trivial TD violated")
	}
}

func TestIsFull(t *testing.T) {
	s := relation.MustSchema("A", "B")
	full := MustParse(s, "R(a, b) & R(a2, b) -> R(a2, b)", "")
	if !full.IsFull() {
		t.Error("should be full")
	}
	embedded := MustParse(s, "R(a, b) -> R(a2, b)", "")
	if embedded.IsFull() {
		t.Error("should be embedded")
	}
}

func TestFrozenAntecedents(t *testing.T) {
	s, d := GarmentExample()
	_ = s
	inst, as := d.FrozenAntecedents()
	if inst.Len() != 2 {
		t.Errorf("frozen size %d", inst.Len())
	}
	// The frozen instance does NOT satisfy the TD (that is why the chase
	// has work to do).
	if ok, _ := d.Satisfies(inst); ok {
		t.Error("frozen antecedents should violate fig1")
	}
	// Universal variables are bound, the existential supplier var is not.
	concl := d.Conclusion()
	if as[0][concl[0]] != tableau.Unbound {
		t.Error("existential supplier variable should be unbound")
	}
}

func TestNewValidation(t *testing.T) {
	s := relation.MustSchema("A")
	if _, err := New(s, nil, tableau.VarTuple{0}, ""); err == nil {
		t.Error("no antecedents accepted")
	}
	if _, err := New(s, []tableau.VarTuple{{0, 1}}, tableau.VarTuple{0}, ""); err == nil {
		t.Error("bad width accepted")
	}
}

func TestAntecedentAccessorPanics(t *testing.T) {
	s := relation.MustSchema("A")
	d := MustParse(s, "R(a) -> R(a)", "")
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Antecedent should panic")
		}
	}()
	d.Antecedent(5)
}

func TestFormatRoundTrip(t *testing.T) {
	s, d := GarmentExample()
	text := d.Format()
	d2, err := Parse(s, text, "roundtrip")
	if err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	if d2.Format() != text {
		t.Errorf("round trip changed: %q vs %q", d2.Format(), text)
	}
	if d.String() == "" || !strings.Contains(d.String(), "fig1") {
		t.Errorf("String = %q", d.String())
	}
}

func TestParseErrors(t *testing.T) {
	s := relation.MustSchema("A", "B")
	cases := []string{
		"R(a, b)",                      // no arrow
		"R(a) -> R(a, b)",              // width
		"R(a, b) -> R(a)",              // width
		"-> R(a, b)",                   // no antecedents
		"R(a, b) -> R(a, b) & R(a, b)", // conjunctive conclusion
		"R(a, b) -> S(a, b)",           // bad relation name
		"R(a, a) -> R(a, a)",           // typing violation: same var two cols
		"R(, b) -> R(a, b)",            // empty token
	}
	for _, c := range cases {
		if _, err := Parse(s, c, ""); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestParseSet(t *testing.T) {
	s := relation.MustSchema("A", "B")
	ds, err := ParseSet(s, `
# comment
d1: R(a, b) -> R(a, b2)

R(a, b) & R(a2, b) -> R(a2, b)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("parsed %d TDs", len(ds))
	}
	if ds[0].Name() != "d1" || ds[1].Name() != "" {
		t.Errorf("names %q, %q", ds[0].Name(), ds[1].Name())
	}
	if _, err := ParseSet(s, "bogus line"); err == nil {
		t.Error("bogus line accepted")
	}
}

func TestSatisfiesEmptyInstance(t *testing.T) {
	s, d := GarmentExample()
	_ = s
	inst := relation.NewInstance(d.Schema())
	if ok, _ := d.Satisfies(inst); !ok {
		t.Error("TDs hold vacuously in the empty instance")
	}
}

func TestParsePrimesAndStars(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	d, err := Parse(s, "R(a, b, c) & R(a, b', c') -> R(a*, b, c')", "")
	if err != nil {
		t.Fatal(err)
	}
	if d.IsFull() {
		t.Error("a* is existential")
	}
}

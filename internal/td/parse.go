package td

import (
	"fmt"
	"strings"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
)

// Parse reads a TD from the textual syntax
//
//	R(a, b, c) & R(a, b', c') -> R(a*, b, c')
//
// over the given schema. Atoms are separated by '&'; the conclusion follows
// '->' (or '=>'). Each atom must have exactly one variable token per
// attribute. Variable tokens are arbitrary names without commas, spaces, or
// parentheses; primes and stars are welcome. The typing restriction is
// enforced: using the same token in two different columns is an error.
func Parse(s *relation.Schema, input, name string) (*TD, error) {
	input = strings.TrimSpace(input)
	sep := "->"
	idx := strings.Index(input, "->")
	if idx < 0 {
		idx = strings.Index(input, "=>")
		sep = "=>"
	}
	if idx < 0 {
		return nil, fmt.Errorf("td: missing '->' in %q", input)
	}
	left, right := input[:idx], input[idx+len(sep):]

	// Token-to-variable maps, per column, plus a global token->column map to
	// enforce typing.
	varOf := make([]map[string]tableau.Var, s.Width())
	for a := range varOf {
		varOf[a] = make(map[string]tableau.Var)
	}
	next := make([]tableau.Var, s.Width())
	colOf := make(map[string]int)

	parseAtom := func(atom string) (tableau.VarTuple, error) {
		atom = strings.TrimSpace(atom)
		if !strings.HasPrefix(atom, "R(") || !strings.HasSuffix(atom, ")") {
			return nil, fmt.Errorf("td: atom %q must have the form R(...)", atom)
		}
		inner := atom[2 : len(atom)-1]
		parts := strings.Split(inner, ",")
		if len(parts) != s.Width() {
			return nil, fmt.Errorf("td: atom %q has %d components, want %d", atom, len(parts), s.Width())
		}
		row := make(tableau.VarTuple, s.Width())
		for a, tok := range parts {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				return nil, fmt.Errorf("td: empty variable in atom %q", atom)
			}
			if strings.ContainsAny(tok, "() &") {
				return nil, fmt.Errorf("td: bad variable token %q", tok)
			}
			if prev, seen := colOf[tok]; seen && prev != a {
				return nil, fmt.Errorf("td: variable %q appears in columns %s and %s; the typing restriction forbids this",
					tok, s.Name(relation.Attr(prev)), s.Name(relation.Attr(a)))
			}
			colOf[tok] = a
			v, ok := varOf[a][tok]
			if !ok {
				v = next[a]
				next[a]++
				varOf[a][tok] = v
			}
			row[a] = v
		}
		return row, nil
	}

	var antecedents []tableau.VarTuple
	for _, atom := range strings.Split(left, "&") {
		if strings.TrimSpace(atom) == "" {
			continue
		}
		row, err := parseAtom(atom)
		if err != nil {
			return nil, err
		}
		antecedents = append(antecedents, row)
	}
	if len(antecedents) == 0 {
		return nil, fmt.Errorf("td: no antecedents in %q", input)
	}
	if strings.Contains(right, "&") {
		return nil, fmt.Errorf("td: a template dependency has a single conclusion atom (use package eid for conjunctive conclusions)")
	}
	conclusion, err := parseAtom(right)
	if err != nil {
		return nil, err
	}
	return New(s, antecedents, conclusion, name)
}

// MustParse is Parse that panics on error.
func MustParse(s *relation.Schema, input, name string) *TD {
	d, err := Parse(s, input, name)
	if err != nil {
		panic(err)
	}
	return d
}

// ParseSet reads several TDs, one per line; blank lines and '#' comments are
// skipped. Each TD may be prefixed with "name:".
func ParseSet(s *relation.Schema, input string) ([]*TD, error) {
	var out []*TD
	for ln, line := range strings.Split(input, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := ""
		if i := strings.Index(line, ":"); i >= 0 && !strings.Contains(line[:i], "(") {
			name = strings.TrimSpace(line[:i])
			line = line[i+1:]
		}
		d, err := Parse(s, line, name)
		if err != nil {
			return nil, fmt.Errorf("td: line %d: %w", ln+1, err)
		}
		out = append(out, d)
	}
	return out, nil
}

// GarmentExample returns the paper's running example over the schema
// R(SUPPLIER, STYLE, SIZE):
//
//	R(a, b, c) & R(a, b', c') -> R(a*, b, c')
//
// "if a supplier supplies both garments of some style b and garments of
// some size c', then there is a supplier (not necessarily the same one) of
// style b garments in size c'" — the dependency of Fig. 1.
func GarmentExample() (*relation.Schema, *TD) {
	s := relation.MustSchema("SUPPLIER", "STYLE", "SIZE")
	d := MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a*, b, c')", "fig1")
	return s, d
}

package td

import (
	"testing"

	"templatedep/internal/relation"
)

// FuzzParse throws arbitrary strings at the TD parser; it must never panic,
// and accepted inputs must round-trip through Format.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"R(a, b, c) & R(a, b', c') -> R(a*, b, c')",
		"R(a, b, c) -> R(a, b, c)",
		"R(a,b,c)&R(a,b,c)->R(x,y,z)",
		"R(a, b, c) => R(a, b, c)",
		"-> R(a, b, c)",
		"R(a, b) -> R(a, b)",
		"R(, b, c) -> R(a, b, c)",
		"R(a, a, a) -> R(a, a, a)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := relation.MustSchema("A", "B", "C")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(schema, input, "fuzz")
		if err != nil {
			return
		}
		text := d.Format()
		d2, err := Parse(schema, text, "fuzz2")
		if err != nil {
			t.Fatalf("accepted %q but rejected its own Format %q: %v", input, text, err)
		}
		if d2.Format() != text {
			t.Fatalf("Format not idempotent: %q vs %q", d2.Format(), text)
		}
	})
}

// Package td implements (typed) template dependencies, the dependency class
// of Sadri and Ullman (1980) whose inference problem the paper proves
// undecidable.
//
// A template dependency states: whenever tuples matching the antecedent
// patterns are all present in the database, a tuple matching the conclusion
// pattern is present too. Antecedent variables are universally quantified;
// conclusion-only variables are existentially quantified. Under the typing
// restriction a variable belongs to exactly one column, which the
// representation enforces structurally (variables are per-column indices).
//
// A TD is "full" when every conclusion variable appears among the
// antecedents, and "embedded" otherwise. Inference for full TDs is
// decidable (the chase terminates); the paper's undecidability result is
// about the embedded case.
package td

import (
	"fmt"
	"strconv"
	"strings"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
)

// TD is a template dependency: antecedent pattern rows plus one conclusion
// row, sharing a typed variable space.
type TD struct {
	name string
	// tab holds the antecedent rows followed by the conclusion row (last).
	tab *tableau.Tableau
}

// New builds a TD from antecedent rows and a conclusion row. At least one
// antecedent is required. Variables are shared across rows per column:
// equal indices in the same column denote the same variable.
func New(s *relation.Schema, antecedents []tableau.VarTuple, conclusion tableau.VarTuple, name string) (*TD, error) {
	if len(antecedents) == 0 {
		return nil, fmt.Errorf("td: a template dependency needs at least one antecedent")
	}
	rows := make([]tableau.VarTuple, 0, len(antecedents)+1)
	rows = append(rows, antecedents...)
	rows = append(rows, conclusion)
	tab, err := tableau.New(s, rows)
	if err != nil {
		return nil, err
	}
	return &TD{name: name, tab: tab}, nil
}

// MustNew is New that panics on error.
func MustNew(s *relation.Schema, antecedents []tableau.VarTuple, conclusion tableau.VarTuple, name string) *TD {
	d, err := New(s, antecedents, conclusion, name)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the TD's descriptive name.
func (d *TD) Name() string { return d.name }

// Schema returns the TD's schema.
func (d *TD) Schema() *relation.Schema { return d.tab.Schema() }

// NumAntecedents returns the number of antecedent rows.
func (d *TD) NumAntecedents() int { return d.tab.Len() - 1 }

// Antecedent returns the i-th antecedent row.
func (d *TD) Antecedent(i int) tableau.VarTuple {
	if i < 0 || i >= d.NumAntecedents() {
		panic(fmt.Sprintf("td: antecedent index %d out of range", i))
	}
	return d.tab.Row(i)
}

// Conclusion returns the conclusion row.
func (d *TD) Conclusion() tableau.VarTuple { return d.tab.Row(d.tab.Len() - 1) }

// Tableau returns the combined tableau (antecedents then conclusion).
func (d *TD) Tableau() *tableau.Tableau { return d.tab }

// AntecedentVarCount returns, per column, how many variables occur in the
// antecedent rows (variables are numbered so antecedent variables come
// first within each column — guaranteed by tableau renumbering order).
func (d *TD) antecedentVarCounts() []int {
	counts := make([]int, d.Schema().Width())
	for ri := 0; ri < d.NumAntecedents(); ri++ {
		for a, v := range d.tab.Row(ri) {
			if int(v)+1 > counts[a] {
				counts[a] = int(v) + 1
			}
		}
	}
	return counts
}

// IsFull reports whether every conclusion variable occurs in an antecedent.
func (d *TD) IsFull() bool {
	counts := d.antecedentVarCounts()
	for a, v := range d.Conclusion() {
		if int(v) >= counts[a] {
			return false
		}
	}
	return true
}

// ExistentialColumns returns the columns whose conclusion variable is
// existentially quantified (does not occur in the antecedents).
func (d *TD) ExistentialColumns() []relation.Attr {
	counts := d.antecedentVarCounts()
	var out []relation.Attr
	for a, v := range d.Conclusion() {
		if int(v) >= counts[a] {
			out = append(out, relation.Attr(a))
		}
	}
	return out
}

// IsTrivial reports whether the TD holds in every database: true iff some
// antecedent row agrees with the conclusion on every universally bound
// column (the conclusion tuple can then be chosen to be that row).
func (d *TD) IsTrivial() bool {
	counts := d.antecedentVarCounts()
	concl := d.Conclusion()
	for ri := 0; ri < d.NumAntecedents(); ri++ {
		row := d.tab.Row(ri)
		ok := true
		for a, v := range concl {
			if int(v) >= counts[a] {
				continue // existential: matches anything
			}
			if row[a] != v {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Satisfies reports whether the finite instance satisfies the TD. When it
// does not, the returned assignment is a counterexample match of the
// antecedents (cloned; safe to retain).
func (d *TD) Satisfies(inst *relation.Instance) (bool, tableau.Assignment) {
	var witness tableau.Assignment
	ok := true
	d.tab.EachPrefixHomomorphism(inst, nil, d.NumAntecedents(), func(as tableau.Assignment) bool {
		if !tableau.RowSatisfiable(d.Conclusion(), as, inst) {
			ok = false
			witness = as.Clone()
			return false
		}
		return true
	})
	return ok, witness
}

// FrozenAntecedents freezes the TD's antecedent rows into an instance (the
// canonical database of the antecedents) and returns it with the identity
// assignment over ALL the TD's variables; conclusion-only variables stay
// unbound in the assignment.
func (d *TD) FrozenAntecedents() (*relation.Instance, tableau.Assignment) {
	inst := relation.NewInstance(d.Schema())
	as := tableau.NewAssignment(d.tab)
	for ri := 0; ri < d.NumAntecedents(); ri++ {
		row := d.tab.Row(ri)
		tup := make(relation.Tuple, len(row))
		for a, v := range row {
			tup[a] = relation.Value(v)
			as[a][v] = relation.Value(v)
		}
		inst.MustAdd(tup)
	}
	return inst, as
}

// Format renders the TD in the textual syntax accepted by Parse:
//
//	R(a0, b0, c0) & R(a0, b1, c1) -> R(a2, b0, c1)
//
// Variable names are the lower-cased column name followed by the variable
// index.
func (d *TD) Format() string {
	s := d.Schema()
	prefixes := columnPrefixes(s)
	atom := func(r tableau.VarTuple) string {
		var b strings.Builder
		b.WriteString("R(")
		for a, v := range r {
			if a > 0 {
				b.WriteString(", ")
			}
			b.WriteString(prefixes[a])
			b.WriteString(strconv.Itoa(int(v)))
		}
		b.WriteString(")")
		return b.String()
	}
	var b strings.Builder
	for i := 0; i < d.NumAntecedents(); i++ {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString(atom(d.tab.Row(i)))
	}
	b.WriteString(" -> ")
	b.WriteString(atom(d.Conclusion()))
	return b.String()
}

// String renders the TD with its name.
func (d *TD) String() string {
	if d.name == "" {
		return d.Format()
	}
	return d.name + ": " + d.Format()
}

// columnPrefixes derives one variable-name prefix per column: the
// lower-cased, digit-stripped column name, disambiguated with the column
// position whenever two columns collapse to the same prefix (K0' and K1'
// both yield k'). Distinct prefixes per column keep the rendered text
// inside the typing restriction, so Format round-trips through Parse on
// every schema.
func columnPrefixes(s *relation.Schema) []string {
	n := s.Width()
	out := make([]string, n)
	count := make(map[string]int, n)
	for a := 0; a < n; a++ {
		out[a] = varPrefix(s.Name(relation.Attr(a)))
		count[out[a]]++
	}
	for a := 0; a < n; a++ {
		if count[out[a]] > 1 {
			out[a] = out[a] + "c" + strconv.Itoa(a) + "v"
		}
	}
	return out
}

func varPrefix(attrName string) string {
	p := strings.ToLower(attrName)
	// Strip characters that would collide with the index digits.
	p = strings.Map(func(r rune) rune {
		if r >= '0' && r <= '9' {
			return -1
		}
		return r
	}, p)
	if p == "" {
		p = "x"
	}
	return p
}

package td_test

import (
	"fmt"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func ExampleParse() {
	schema := relation.MustSchema("SUPPLIER", "STYLE", "SIZE")
	d, err := td.Parse(schema, "R(a, b, c) & R(a, b', c') -> R(a*, b, c')", "fig1")
	if err != nil {
		panic(err)
	}
	fmt.Println(d.Format())
	fmt.Println("full:", d.IsFull(), " trivial:", d.IsTrivial())
	// Output:
	// R(supplier0, style0, size0) & R(supplier0, style1, size1) -> R(supplier1, style0, size1)
	// full: false  trivial: false
}

func ExampleTD_Satisfies() {
	schema, fig1 := td.GarmentExample()
	db := relation.NewInstance(schema)
	db.MustAdd(relation.Tuple{0, 0, 0})
	db.MustAdd(relation.Tuple{0, 1, 1})
	ok, _ := fig1.Satisfies(db)
	fmt.Println("satisfied:", ok)
	db.MustAdd(relation.Tuple{1, 0, 1})
	db.MustAdd(relation.Tuple{2, 1, 0})
	ok, _ = fig1.Satisfies(db)
	fmt.Println("after repair:", ok)
	// Output:
	// satisfied: false
	// after repair: true
}

package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Namer maps the integer values of an instance to human-readable names,
// per attribute (the typing restriction means the same name in different
// columns denotes different individuals, so names are interned per column).
type Namer struct {
	schema *Schema
	names  []map[Value]string
	ids    []map[string]Value
}

// NewNamer creates an empty namer for the schema.
func NewNamer(s *Schema) *Namer {
	n := &Namer{schema: s, names: make([]map[Value]string, s.Width()), ids: make([]map[string]Value, s.Width())}
	for i := range n.names {
		n.names[i] = make(map[Value]string)
		n.ids[i] = make(map[string]Value)
	}
	return n
}

// Intern returns the value for name in attribute a, allocating the next
// free value on first use.
func (n *Namer) Intern(a Attr, name string) Value {
	if v, ok := n.ids[a][name]; ok {
		return v
	}
	v := Value(len(n.ids[a]))
	n.ids[a][name] = v
	n.names[a][v] = name
	return v
}

// Name returns the name of value v in attribute a, or a numeric placeholder
// for values never interned (e.g. nulls invented by the chase).
func (n *Namer) Name(a Attr, v Value) string {
	if s, ok := n.names[a][v]; ok {
		return s
	}
	return fmt.Sprintf("_%s%d", strings.ToLower(n.schema.Name(a)), int(v))
}

// FormatTuple renders one tuple with named values.
func (n *Namer) FormatTuple(t Tuple) string {
	var b strings.Builder
	b.WriteString("R(")
	for a, v := range t {
		if a > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n.Name(Attr(a), v))
	}
	b.WriteString(")")
	return b.String()
}

// FormatInstance renders the whole instance with named values, sorted for
// determinism.
func (n *Namer) FormatInstance(in *Instance) string {
	lines := make([]string, 0, in.Len())
	for _, t := range in.Tuples() {
		lines = append(lines, n.FormatTuple(t))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// ParseInstance reads a database from symbolic text form: one fact per
// line, "R(value, value, ...)", with '#' comments and blank lines skipped.
// Values are free-form tokens interned per column. The namer allows
// rendering results back with the original names.
func ParseInstance(s *Schema, text string) (*Instance, *Namer, error) {
	inst := NewInstance(s)
	namer := NewNamer(s)
	for ln, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "R(") || !strings.HasSuffix(line, ")") {
			return nil, nil, fmt.Errorf("relation: line %d: facts have the form R(...): %q", ln+1, raw)
		}
		parts := strings.Split(line[2:len(line)-1], ",")
		if len(parts) != s.Width() {
			return nil, nil, fmt.Errorf("relation: line %d: %d values, want %d", ln+1, len(parts), s.Width())
		}
		tup := make(Tuple, s.Width())
		for a, tok := range parts {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				return nil, nil, fmt.Errorf("relation: line %d: empty value", ln+1)
			}
			tup[a] = namer.Intern(Attr(a), tok)
		}
		if _, _, err := inst.Add(tup); err != nil {
			return nil, nil, fmt.Errorf("relation: line %d: %w", ln+1, err)
		}
	}
	return inst, namer, nil
}

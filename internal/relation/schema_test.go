package relation

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Width() != 3 {
		t.Errorf("Width = %d", s.Width())
	}
	if s.Name(1) != "B" {
		t.Errorf("Name(1) = %q", s.Name(1))
	}
	if a, ok := s.Attr("C"); !ok || a != 2 {
		t.Errorf("Attr(C) = %v, %v", a, ok)
	}
	if _, ok := s.Attr("Z"); ok {
		t.Error("Attr(Z) should not exist")
	}
	if s.Name(99) == "" {
		t.Error("out-of-range Name should return placeholder")
	}
	if s.String() != "R(A, B, C)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema([]string{"A", "A"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if _, err := NewSchema([]string{""}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestSchemaEqualAndAttrs(t *testing.T) {
	s := MustSchema("A", "B")
	if !s.Equal(MustSchema("A", "B")) {
		t.Error("equal schemas unequal")
	}
	if s.Equal(MustSchema("A")) || s.Equal(MustSchema("A", "C")) {
		t.Error("unequal schemas equal")
	}
	if len(s.Attrs()) != 2 || len(s.Names()) != 2 {
		t.Error("Attrs/Names wrong")
	}
}

func TestMustAttrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAttr should panic")
		}
	}()
	MustSchema("A").MustAttr("B")
}

func TestInstanceAddContains(t *testing.T) {
	s := MustSchema("A", "B")
	in := NewInstance(s)
	i, added, err := in.Add(Tuple{1, 2})
	if err != nil || !added || i != 0 {
		t.Fatalf("Add: %d %v %v", i, added, err)
	}
	// Duplicate.
	j, added, err := in.Add(Tuple{1, 2})
	if err != nil || added || j != 0 {
		t.Errorf("duplicate Add: %d %v %v", j, added, err)
	}
	if in.Len() != 1 {
		t.Errorf("Len = %d", in.Len())
	}
	if !in.Contains(Tuple{1, 2}) || in.Contains(Tuple{2, 1}) {
		t.Error("Contains wrong")
	}
	if in.Contains(Tuple{1}) {
		t.Error("wrong-width Contains should be false")
	}
	if _, _, err := in.Add(Tuple{1}); err == nil {
		t.Error("wrong width accepted")
	}
	if _, _, err := in.Add(Tuple{-1, 0}); err == nil {
		t.Error("negative value accepted")
	}
}

func TestInstanceAddCopiesTuple(t *testing.T) {
	s := MustSchema("A")
	in := NewInstance(s)
	tup := Tuple{5}
	in.MustAdd(tup)
	tup[0] = 9
	if !in.Contains(Tuple{5}) {
		t.Error("Add did not copy the tuple")
	}
}

func TestFreshValue(t *testing.T) {
	s := MustSchema("A", "B")
	in := NewInstance(s)
	in.MustAdd(Tuple{7, 0})
	if v := in.FreshValue(0); v != 8 {
		t.Errorf("FreshValue(A) = %d, want 8", int(v))
	}
	if v := in.FreshValue(1); v != 1 {
		t.Errorf("FreshValue(B) = %d, want 1", int(v))
	}
	// Fresh values advance.
	if v := in.FreshValue(1); v != 2 {
		t.Errorf("second FreshValue(B) = %d, want 2", int(v))
	}
}

func TestInstanceClone(t *testing.T) {
	s := MustSchema("A")
	in := NewInstance(s)
	in.MustAdd(Tuple{1})
	cp := in.Clone()
	cp.MustAdd(Tuple{2})
	if in.Len() != 1 || cp.Len() != 2 {
		t.Error("Clone aliases the original")
	}
	// Fresh-value counters are cloned too.
	if in.FreshValue(0) != 2 {
		t.Error("original counters affected")
	}
}

func TestActiveDomainSizeAndString(t *testing.T) {
	s := MustSchema("A", "B")
	in := NewInstance(s)
	in.MustAdd(Tuple{1, 5})
	in.MustAdd(Tuple{1, 6})
	in.MustAdd(Tuple{2, 5})
	if got := in.ActiveDomainSize(0); got != 2 {
		t.Errorf("ActiveDomainSize(A) = %d", got)
	}
	if got := in.ActiveDomainSize(1); got != 2 {
		t.Errorf("ActiveDomainSize(B) = %d", got)
	}
	str := in.String()
	if !strings.Contains(str, "R(A, B)") || !strings.Contains(str, "A1") {
		t.Errorf("String = %q", str)
	}
}

// The hash-indexed dedup must behave exactly like a set keyed on tuple
// contents: Add reports new/duplicate correctly and returns the original
// index for duplicates, Contains agrees, and posting lists stay consistent
// — checked against a string-keyed reference model over a value domain
// small enough to force heavy bucket sharing.
func TestHashDedupMatchesReferenceModel(t *testing.T) {
	s := MustSchema("A", "B", "C")
	in := NewInstance(s)
	ref := make(map[string]int)
	rng := rand.New(rand.NewSource(53))
	for step := 0; step < 5000; step++ {
		tup := Tuple{Value(rng.Intn(6)), Value(rng.Intn(6)), Value(rng.Intn(6))}
		key := fmt.Sprint(tup)
		wantIdx, dup := ref[key]
		if rng.Intn(4) == 0 {
			if got := in.Contains(tup); got != dup {
				t.Fatalf("step %d: Contains(%v) = %v, want %v", step, tup, got, dup)
			}
			continue
		}
		idx, added, err := in.Add(tup)
		if err != nil {
			t.Fatal(err)
		}
		if added == dup {
			t.Fatalf("step %d: Add(%v) added=%v, but reference dup=%v", step, tup, added, dup)
		}
		if dup && idx != wantIdx {
			t.Fatalf("step %d: duplicate %v got index %d, want %d", step, tup, idx, wantIdx)
		}
		if !dup {
			ref[key] = idx
		}
	}
	if in.Len() != len(ref) {
		t.Fatalf("instance has %d tuples, reference %d", in.Len(), len(ref))
	}
	// Posting lists partition the rows per attribute.
	for a := 0; a < s.Width(); a++ {
		total := 0
		for v := Value(0); v < 6; v++ {
			list := in.Matching(Attr(a), v)
			for k := 1; k < len(list); k++ {
				if list[k] <= list[k-1] {
					t.Fatalf("posting list %d/%d not ascending: %v", a, v, list)
				}
			}
			for _, i := range list {
				if in.Tuple(i)[a] != v {
					t.Fatalf("posting list %d/%d lists row %d = %v", a, v, i, in.Tuple(i))
				}
			}
			total += len(list)
		}
		if total != in.Len() {
			t.Fatalf("attribute %d posting lists cover %d rows, want %d", a, total, in.Len())
		}
	}
}

func TestTupleHelpers(t *testing.T) {
	a := Tuple{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone aliases")
	}
	if !a.Equal(Tuple{1, 2}) || a.Equal(Tuple{1}) || a.Equal(Tuple{1, 3}) {
		t.Error("Equal wrong")
	}
}

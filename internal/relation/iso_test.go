package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func inst(s *Schema, tuples ...Tuple) *Instance {
	in := NewInstance(s)
	for _, t := range tuples {
		in.MustAdd(t)
	}
	return in
}

func TestIsomorphicBasic(t *testing.T) {
	s := MustSchema("A", "B")
	a := inst(s, Tuple{0, 0}, Tuple{0, 1})
	b := inst(s, Tuple{5, 9}, Tuple{5, 3}) // renamed per column
	if !Isomorphic(a, b) {
		t.Error("renamed instances should be isomorphic")
	}
	c := inst(s, Tuple{0, 0}, Tuple{1, 1}) // different co-occurrence pattern
	if Isomorphic(a, c) {
		t.Error("different patterns reported isomorphic")
	}
}

func TestIsomorphicSizesAndSchemas(t *testing.T) {
	s := MustSchema("A", "B")
	a := inst(s, Tuple{0, 0})
	if Isomorphic(a, inst(s, Tuple{0, 0}, Tuple{1, 1})) {
		t.Error("different sizes")
	}
	other := MustSchema("A", "C")
	if Isomorphic(a, inst(other, Tuple{0, 0})) {
		t.Error("different schemas")
	}
	if !Isomorphic(NewInstance(s), NewInstance(s)) {
		t.Error("empty instances")
	}
}

func TestIsomorphicCrossColumnIndependence(t *testing.T) {
	// Renamings are per-column: a global swap that mixes columns is not
	// required to exist. These two share a pattern only if columns are
	// renamed independently — which they are here.
	s := MustSchema("A", "B")
	a := inst(s, Tuple{0, 1}, Tuple{1, 0})
	b := inst(s, Tuple{1, 0}, Tuple{0, 1})
	if !Isomorphic(a, b) {
		t.Error("column-independent renaming missed")
	}
}

func TestIsomorphicTrianglesAreIsomorphic(t *testing.T) {
	// A subtle positive case that defeats naive canonicalization: two
	// "agreement triangles" whose edges visit the columns in different
	// orders are related by the cyclic tuple relabeling t1->u2, t2->u1,
	// t3->u3 with per-column value bijections.
	s := MustSchema("A", "B", "C")
	a := inst(s,
		Tuple{0, 0, 0},
		Tuple{0, 1, 1},
		Tuple{1, 1, 0},
	)
	b := inst(s,
		Tuple{0, 0, 0},
		Tuple{0, 1, 1},
		Tuple{1, 0, 1},
	)
	if !Isomorphic(a, b) {
		t.Error("cyclically relabeled triangles should be isomorphic")
	}
}

func TestIsomorphicDifferentAgreementDegrees(t *testing.T) {
	// a has three tuples sharing one A value; b has only two.
	s := MustSchema("A", "B", "C")
	a := inst(s,
		Tuple{0, 0, 0},
		Tuple{0, 1, 1},
		Tuple{0, 2, 2},
	)
	b := inst(s,
		Tuple{0, 0, 0},
		Tuple{0, 1, 1},
		Tuple{1, 2, 0},
	)
	if Isomorphic(a, b) {
		t.Error("different agreement degrees reported isomorphic")
	}
}

// Property: applying a random per-column renaming yields an isomorphic
// instance; adding a fresh distinguishing tuple breaks it.
func TestIsomorphicProperty(t *testing.T) {
	s := MustSchema("A", "B")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewInstance(s)
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			a.MustAdd(Tuple{Value(rng.Intn(3)), Value(rng.Intn(3))})
		}
		// Random per-column permutation of {0,1,2} with an offset.
		permA := rng.Perm(3)
		permB := rng.Perm(3)
		b := NewInstance(s)
		for _, tup := range a.Tuples() {
			b.MustAdd(Tuple{Value(permA[tup[0]] + 7), Value(permB[tup[1]] + 11)})
		}
		if !Isomorphic(a, b) {
			t.Logf("seed %d: renamed copy not isomorphic\n%s\n%s", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Error(err)
	}
}

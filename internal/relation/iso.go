package relation

import "sort"

// Isomorphic reports whether two instances are equal up to a per-column
// renaming of values — the right notion of equality for chase results and
// canonical databases, whose invented nulls carry no identity beyond their
// pattern of co-occurrence. (Under the typing restriction a renaming is a
// family of independent bijections, one per attribute.)
//
// The check canonicalizes both instances (values renumbered in first-use
// order after sorting tuples into a canonical order, iterated to fixpoint)
// and falls back to backtracking over tuple matchings when the canonical
// forms still differ only by tuple order ambiguity.
func Isomorphic(a, b *Instance) bool {
	if !a.schema.Equal(b.schema) || a.Len() != b.Len() {
		return false
	}
	if a.Len() == 0 {
		return true
	}
	ca := canonicalize(a)
	cb := canonicalize(b)
	if ca == cb {
		return true
	}
	// Canonicalization is a heuristic (tuple order and value numbering
	// interact); decide exactly by backtracking.
	return matchInstances(a, b)
}

// canonicalize renumbers values per column in first-use order of the sorted
// tuple list, iterating until the encoding stabilizes.
func canonicalize(in *Instance) string {
	tuples := make([]Tuple, in.Len())
	for i, t := range in.Tuples() {
		tuples[i] = t.Clone()
	}
	prev := ""
	for iter := 0; iter < 4; iter++ {
		// Renumber per column in order of appearance.
		maps := make([]map[Value]Value, in.schema.Width())
		for i := range maps {
			maps[i] = make(map[Value]Value)
		}
		for _, t := range tuples {
			for a, v := range t {
				if _, ok := maps[a][v]; !ok {
					maps[a][v] = Value(len(maps[a]))
				}
			}
		}
		for _, t := range tuples {
			for a := range t {
				t[a] = maps[a][t[a]]
			}
		}
		sort.Slice(tuples, func(i, j int) bool { return lexLessTuple(tuples[i], tuples[j]) })
		cur := encode(tuples)
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func lexLessTuple(a, b Tuple) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func encode(tuples []Tuple) string {
	out := make([]byte, 0, len(tuples)*8)
	for _, t := range tuples {
		for _, v := range t {
			out = append(out, byte('a'+int(v)%26), byte('0'+(int(v)/26)%10))
		}
		out = append(out, ';')
	}
	return string(out)
}

// matchInstances decides isomorphism exactly by backtracking over a
// bijection between tuple sets with per-column value maps.
func matchInstances(a, b *Instance) bool {
	n := a.Len()
	width := a.schema.Width()
	fwd := make([]map[Value]Value, width) // a-value -> b-value
	rev := make([]map[Value]Value, width)
	for i := 0; i < width; i++ {
		fwd[i] = make(map[Value]Value)
		rev[i] = make(map[Value]Value)
	}
	used := make([]bool, n)
	at := a.Tuples()
	bt := b.Tuples()

	var try func(i int) bool
	try = func(i int) bool {
		if i == n {
			return true
		}
		ta := at[i]
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			tb := bt[j]
			// Tentatively extend the value bijections.
			var trail [][2]int // (col, aval)
			ok := true
			for c := 0; c < width && ok; c++ {
				va, vb := ta[c], tb[c]
				if mapped, has := fwd[c][va]; has {
					if mapped != vb {
						ok = false
					}
					continue
				}
				if _, has := rev[c][vb]; has {
					ok = false
					continue
				}
				fwd[c][va] = vb
				rev[c][vb] = va
				trail = append(trail, [2]int{c, int(va)})
			}
			if ok {
				used[j] = true
				if try(i + 1) {
					return true
				}
				used[j] = false
			}
			for _, tr := range trail {
				vb := fwd[tr[0]][Value(tr[1])]
				delete(fwd[tr[0]], Value(tr[1]))
				delete(rev[tr[0]], vb)
			}
		}
		return false
	}
	return try(0)
}

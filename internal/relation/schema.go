// Package relation implements the paper's database substrate: a single
// relation R with a fixed set of attributes (columns) under the typing
// restriction — the domains of distinct attributes are disjoint. Values are
// represented as integers scoped per attribute, which makes cross-column
// value confusion unrepresentable, exactly as the typing restriction
// demands ("no variable can appear in two different columns").
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Attr is an attribute (column) index within a Schema.
type Attr int

// Schema is an ordered list of named attributes of the single relation R.
type Schema struct {
	names []string
	index map[string]Attr
}

// NewSchema builds a schema from attribute names, which must be non-empty
// and distinct.
func NewSchema(names []string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("relation: schema needs at least one attribute")
	}
	s := &Schema{names: make([]string, len(names)), index: make(map[string]Attr, len(names))}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("relation: empty attribute name at position %d", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", n)
		}
		s.names[i] = n
		s.index[n] = Attr(i)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names)
	if err != nil {
		panic(err)
	}
	return s
}

// Width returns the number of attributes.
func (s *Schema) Width() int { return len(s.names) }

// Name returns the name of attribute a.
func (s *Schema) Name(a Attr) string {
	if int(a) < 0 || int(a) >= len(s.names) {
		return fmt.Sprintf("?%d", int(a))
	}
	return s.names[a]
}

// Attr looks up an attribute by name.
func (s *Schema) Attr(name string) (Attr, bool) {
	a, ok := s.index[name]
	return a, ok
}

// MustAttr looks up an attribute by name, panicking if absent.
func (s *Schema) MustAttr(name string) Attr {
	a, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: no attribute %q", name))
	}
	return a
}

// Attrs returns all attributes in order.
func (s *Schema) Attrs() []Attr {
	out := make([]Attr, len(s.names))
	for i := range s.names {
		out[i] = Attr(i)
	}
	return out
}

// Names returns a copy of the attribute names.
func (s *Schema) Names() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(t *Schema) bool {
	if len(s.names) != len(t.names) {
		return false
	}
	for i := range s.names {
		if s.names[i] != t.names[i] {
			return false
		}
	}
	return true
}

// String renders the schema as R(A, B, ...).
func (s *Schema) String() string {
	return "R(" + strings.Join(s.names, ", ") + ")"
}

// Value is a data value. Values are scoped per attribute: Value 3 in column
// A and Value 3 in column B are unrelated individuals (the typing
// restriction makes the domains disjoint).
type Value int

// Tuple is one row of R: one value per attribute, in schema order.
type Tuple []Value

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// less orders equal-width tuples lexicographically.
func (t Tuple) less(u Tuple) bool {
	for i := range t {
		if t[i] != u[i] {
			return t[i] < u[i]
		}
	}
	return false
}

// hash folds the tuple into a 64-bit FNV-1a-style digest for map
// deduplication. Collisions are possible and harmless: the hash index maps
// digests to candidate row indices, and lookups verify with Equal.
func (t Tuple) hash() uint64 {
	h := uint64(1469598103934665603)
	for _, v := range t {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// Instance is a finite instance of the single relation R: a set of tuples.
// The zero value is not usable; construct with NewInstance.
type Instance struct {
	schema *Schema
	rows   []Tuple
	// index maps a tuple hash to the indices of rows with that hash; the
	// chain is scanned with Equal, so hash collisions only cost an extra
	// comparison. This replaces the old fmt.Fprintf string-key dedup, which
	// allocated a string per membership test.
	index map[uint64][]int
	// nextVal tracks, per attribute, the next unused value, for fresh-value
	// allocation during chase steps and model construction.
	nextVal []Value
	// postings[a][v] lists the indices of tuples with value v in attribute
	// a, in ascending order — the inverted index behind Matching, which the
	// chase's join and subsumption checks probe.
	postings []map[Value][]int
}

// NewInstance creates an empty instance over the schema.
func NewInstance(s *Schema) *Instance {
	postings := make([]map[Value][]int, s.Width())
	for i := range postings {
		postings[i] = make(map[Value][]int)
	}
	return &Instance{
		schema:   s,
		index:    make(map[uint64][]int),
		nextVal:  make([]Value, s.Width()),
		postings: postings,
	}
}

// find returns the row index holding a tuple equal to t, verifying hash
// matches with Equal.
func (in *Instance) find(t Tuple, h uint64) (int, bool) {
	for _, i := range in.index[h] {
		if in.rows[i].Equal(t) {
			return i, true
		}
	}
	return 0, false
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Len returns the number of tuples.
func (in *Instance) Len() int { return len(in.rows) }

// Add inserts a tuple (copied), returning its index and whether it was new.
// The tuple width must match the schema.
func (in *Instance) Add(t Tuple) (int, bool, error) {
	if len(t) != in.schema.Width() {
		return 0, false, fmt.Errorf("relation: tuple width %d does not match schema width %d", len(t), in.schema.Width())
	}
	for a, v := range t {
		if v < 0 {
			return 0, false, fmt.Errorf("relation: negative value %d in attribute %s", int(v), in.schema.Name(Attr(a)))
		}
		if v >= in.nextVal[a] {
			in.nextVal[a] = v + 1
		}
	}
	h := t.hash()
	if i, ok := in.find(t, h); ok {
		return i, false, nil
	}
	i := len(in.rows)
	in.rows = append(in.rows, t.Clone())
	in.index[h] = append(in.index[h], i)
	for a, v := range t {
		in.postings[a][v] = append(in.postings[a][v], i)
	}
	return i, true, nil
}

// Matching returns the indices of tuples whose attribute a holds value v
// (the posting list; callers must not mutate it).
func (in *Instance) Matching(a Attr, v Value) []int {
	return in.postings[a][v]
}

// MustAdd is Add that panics on error; for fixtures.
func (in *Instance) MustAdd(t Tuple) int {
	i, _, err := in.Add(t)
	if err != nil {
		panic(err)
	}
	return i
}

// Contains reports whether the tuple is present.
func (in *Instance) Contains(t Tuple) bool {
	if len(t) != in.schema.Width() {
		return false
	}
	_, ok := in.find(t, t.hash())
	return ok
}

// Tuple returns the i-th tuple (not copied; callers must not mutate).
func (in *Instance) Tuple(i int) Tuple { return in.rows[i] }

// Tuples returns the underlying tuple slice (not copied; callers must not
// mutate).
func (in *Instance) Tuples() []Tuple { return in.rows }

// FreshValue allocates a value never used before in attribute a.
func (in *Instance) FreshValue(a Attr) Value {
	v := in.nextVal[a]
	in.nextVal[a] = v + 1
	return v
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := NewInstance(in.schema)
	out.rows = make([]Tuple, len(in.rows))
	for i, r := range in.rows {
		out.rows[i] = r.Clone()
	}
	for h, list := range in.index {
		out.index[h] = append([]int(nil), list...)
	}
	copy(out.nextVal, in.nextVal)
	for a := range in.postings {
		for v, list := range in.postings[a] {
			out.postings[a][v] = append([]int(nil), list...)
		}
	}
	return out
}

// ClonePrefix deep-copies the first n tuples into a fresh instance,
// rebuilding the hash index, posting lists, and fresh-value counters from
// those tuples alone. Because tuples are append-only, the result is exactly
// the instance as it stood when it held n tuples — including nextVal, which
// Add keeps at max-value+1 per column, so fresh-null numbering after the
// prefix replays identically. This is what chase-state snapshots restore
// from.
func (in *Instance) ClonePrefix(n int) *Instance {
	if n < 0 || n > len(in.rows) {
		n = len(in.rows)
	}
	out := NewInstance(in.schema)
	for _, r := range in.rows[:n] {
		out.MustAdd(r)
	}
	return out
}

// EqualPrefix reports whether the first n tuples of in equal other's first
// n tuples, position by position. Both instances must hold at least n
// tuples.
func (in *Instance) EqualPrefix(other *Instance, n int) bool {
	if n > len(in.rows) || n > len(other.rows) {
		return false
	}
	for i := 0; i < n; i++ {
		if !in.rows[i].Equal(other.rows[i]) {
			return false
		}
	}
	return true
}

// ActiveDomainSize returns the number of distinct values appearing in
// attribute a.
func (in *Instance) ActiveDomainSize(a Attr) int {
	seen := make(map[Value]bool)
	for _, r := range in.rows {
		seen[r[a]] = true
	}
	return len(seen)
}

// String renders the instance as a table, sorted lexicographically (by
// value, per column) for determinism.
func (in *Instance) String() string {
	var b strings.Builder
	b.WriteString(in.schema.String())
	b.WriteByte('\n')
	order := make([]int, len(in.rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return in.rows[order[i]].less(in.rows[order[j]])
	})
	num := make([]byte, 0, 20)
	for _, ri := range order {
		b.WriteString("  (")
		for i, v := range in.rows[ri] {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(in.schema.Name(Attr(i)))
			num = strconv.AppendInt(num[:0], int64(v), 10)
			b.Write(num)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

package relation

import (
	"strings"
	"testing"
)

func TestParseInstance(t *testing.T) {
	s := MustSchema("SUPPLIER", "STYLE", "SIZE")
	inst, namer, err := ParseInstance(s, `
# garments
R(StLaurent, EveningDress, 10)
R(BVD, Brief, 36)
R(StLaurent, Brief, 36)   # duplicate-ish supplier
`)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() != 3 {
		t.Fatalf("len %d", inst.Len())
	}
	// StLaurent interned once: both its tuples share the supplier value.
	if inst.Tuple(0)[0] != inst.Tuple(2)[0] {
		t.Error("same name got different values")
	}
	if inst.Tuple(0)[0] == inst.Tuple(1)[0] {
		t.Error("different names got the same value")
	}
	// Round trip through the namer.
	text := namer.FormatInstance(inst)
	if !strings.Contains(text, "R(StLaurent, EveningDress, 10)") {
		t.Errorf("FormatInstance = %q", text)
	}
	inst2, _, err := ParseInstance(s, text)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.Len() != inst.Len() {
		t.Error("round trip changed size")
	}
}

func TestParseInstanceTypedInterning(t *testing.T) {
	// The same token in different columns is interned independently (typed
	// domains): it may receive the same integer, but via separate tables.
	s := MustSchema("A", "B")
	inst, namer, err := ParseInstance(s, "R(x, x)\nR(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() != 2 {
		t.Fatal("len")
	}
	if namer.Name(0, inst.Tuple(0)[0]) != "x" || namer.Name(1, inst.Tuple(0)[1]) != "x" {
		t.Error("naming lost")
	}
}

func TestParseInstanceErrors(t *testing.T) {
	s := MustSchema("A", "B")
	for _, bad := range []string{
		"R(x)",   // width
		"x, y",   // no R(...)
		"R(, y)", // empty value
		"R(x, y", // unclosed
	} {
		if _, _, err := ParseInstance(s, bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestNamerPlaceholders(t *testing.T) {
	s := MustSchema("A", "B")
	n := NewNamer(s)
	// Unknown values get deterministic placeholders.
	if got := n.Name(0, 7); got != "_a7" {
		t.Errorf("placeholder = %q", got)
	}
	v := n.Intern(0, "hello")
	if n.Name(0, v) != "hello" {
		t.Error("intern/name mismatch")
	}
	if n.Intern(0, "hello") != v {
		t.Error("re-intern changed value")
	}
	if got := n.FormatTuple(Tuple{v, 3}); got != "R(hello, _b3)" {
		t.Errorf("FormatTuple = %q", got)
	}
}

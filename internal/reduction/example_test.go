package reduction_test

import (
	"fmt"

	"templatedep/internal/reduction"
	"templatedep/internal/words"
)

func ExampleBuild() {
	// {b·c = A0, b·c = 0}: the smallest presentation whose goal A0 = 0 is
	// derivable through a longer word.
	p := words.TwoStepPresentation()
	in, err := reduction.Build(p)
	if err != nil {
		panic(err)
	}
	fmt.Println("attributes:", in.Schema.Width()) // 2n+2 for n = 4 symbols
	fmt.Println("dependencies:", len(in.D))       // 4 per equation
	fmt.Println("max antecedents:", in.MaxAntecedents())
	fmt.Println("D0:", in.D0.NumAntecedents(), "antecedents")
	// Output:
	// attributes: 10
	// dependencies: 36
	// max antecedents: 5
	// D0: 3 antecedents
}

func ExampleInstance_BuildBridge() {
	p := words.TwoStepPresentation()
	in := reduction.MustBuild(p)
	w := words.MustParseWord(p.Alphabet, "b c")
	br, err := in.BuildBridge(w)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bridge for %s: %d base + %d apex nodes\n",
		w.Format(p.Alphabet), len(br.BaseNodes), len(br.ApexNodes))
	// Output:
	// bridge for bc: 3 base + 2 apex nodes
}

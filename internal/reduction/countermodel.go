package reduction

import (
	"fmt"
	"sort"

	"templatedep/internal/relation"
	"templatedep/internal/semigroup"
	"templatedep/internal/words"
)

// Triple is an element of Q: a witness that a —A→ b, i.e. a·Ā = b with a
// and b in P.
type Triple struct {
	A   semigroup.Elem
	Sym words.Symbol
	B   semigroup.Elem
}

// CounterModel is the finite database of Reduction Theorem part (B), built
// from a finite cancellation semigroup G without identity in which the
// presentation holds but A0 ≠ 0:
//
//   - G' = G with an identity I adjoined (cancellation is preserved);
//   - P = {a ∈ G' : ∃b ∈ G'. a·b = Ā0} (so I, Ā0 ∈ P and 0 ∉ P);
//   - Q = {⟨a, A, b⟩ : a, b ∈ P, A ∈ S, a·Ā = b};
//   - the universe is P ∪ Q, one database tuple per element, and the
//     attributes are the equivalence relations: ~A' joins ⟨a,A,b⟩ with a,
//     ~A” joins ⟨a,A,b⟩ with b, ~E is total on P, ~E' is total on Q.
//
// The resulting database satisfies every dependency of D and violates D0
// (the violating match is t1 = I, t2 = Ā0, t3 = ⟨I, A0, Ā0⟩).
type CounterModel struct {
	// Instance is the finite database.
	Instance *relation.Instance
	// GPrime is G with identity adjoined; Identity is the new element.
	GPrime   *semigroup.Table
	Identity semigroup.Elem
	// PElems lists P (elements of GPrime), in ascending order.
	PElems []semigroup.Elem
	// QTriples lists Q in deterministic order.
	QTriples []Triple
	// PTuple and QTuple give the database tuple index of each element.
	PTuple map[semigroup.Elem]int
	QTuple map[Triple]int
}

// ExtendWitness lifts an interpretation of the ORIGINAL alphabet to the
// (possibly normalized) alphabet of in.Pres: fresh definitional symbols
// evaluate their defining words; original symbols keep their values. The
// extension is validated as a Main Lemma failure witness for in.Pres.
func (in *Instance) ExtendWitness(wit *semigroup.Interpretation) (*semigroup.Interpretation, error) {
	assign := make(map[words.Symbol]semigroup.Elem)
	if in.Norm == nil {
		for k, v := range wit.Assign {
			assign[k] = v
		}
	} else {
		origA := in.Original.Alphabet
		for _, s := range origA.Symbols() {
			v, ok := wit.Assign[s]
			if !ok {
				return nil, fmt.Errorf("reduction: witness does not assign symbol %s", origA.Name(s))
			}
			assign[s] = v
		}
		for _, s := range in.Pres.Alphabet.Symbols() {
			if _, done := assign[s]; done {
				continue
			}
			def, ok := in.Norm.Definitions[s]
			if !ok {
				return nil, fmt.Errorf("reduction: symbol %s of the normalized alphabet has no definition", in.Pres.Alphabet.Name(s))
			}
			origIn, err := semigroup.NewInterpretation(wit.Table, origA, wit.Assign)
			if err != nil {
				return nil, err
			}
			v, err := origIn.Eval(def)
			if err != nil {
				return nil, err
			}
			assign[s] = v
		}
	}
	ext, err := semigroup.NewInterpretation(wit.Table, in.Pres.Alphabet, assign)
	if err != nil {
		return nil, err
	}
	if err := ext.IsModelOfMainLemmaFailure(in.Pres); err != nil {
		return nil, fmt.Errorf("reduction: witness is not a Main Lemma failure model: %w", err)
	}
	return ext, nil
}

// BuildCounterModel executes the part (B) construction from a witness
// interpretation over the ORIGINAL alphabet.
func (in *Instance) BuildCounterModel(wit *semigroup.Interpretation) (*CounterModel, error) {
	ext, err := in.ExtendWitness(wit)
	if err != nil {
		return nil, err
	}
	a := in.Pres.Alphabet
	gp, id := semigroup.AdjoinIdentity(ext.Table)
	a0bar := ext.Assign[a.A0()]

	cm := &CounterModel{GPrime: gp, Identity: id, PTuple: make(map[semigroup.Elem]int), QTuple: make(map[Triple]int)}

	// P = {x : ∃b. x·b = a0bar}.
	for x := 0; x < gp.Size(); x++ {
		for b := 0; b < gp.Size(); b++ {
			if gp.Mul(semigroup.Elem(x), semigroup.Elem(b)) == a0bar {
				cm.PElems = append(cm.PElems, semigroup.Elem(x))
				break
			}
		}
	}
	inP := make(map[semigroup.Elem]bool, len(cm.PElems))
	for _, x := range cm.PElems {
		inP[x] = true
	}
	if !inP[id] || !inP[a0bar] {
		return nil, fmt.Errorf("reduction: internal error: I or A0-bar missing from P")
	}

	// Q = {⟨x, A, y⟩ : x, y ∈ P, x·Ā = y}.
	for _, x := range cm.PElems {
		for _, s := range a.Symbols() {
			y := gp.Mul(x, ext.Assign[s])
			if inP[y] {
				cm.QTriples = append(cm.QTriples, Triple{A: x, Sym: s, B: y})
			}
		}
	}
	sort.Slice(cm.QTriples, func(i, j int) bool {
		ti, tj := cm.QTriples[i], cm.QTriples[j]
		if ti.A != tj.A {
			return ti.A < tj.A
		}
		if ti.Sym != tj.Sym {
			return ti.Sym < tj.Sym
		}
		return ti.B < tj.B
	})

	// Union-find per attribute over the universe P ∪ Q.
	numNodes := len(cm.PElems) + len(cm.QTriples)
	pIndex := make(map[semigroup.Elem]int, len(cm.PElems))
	for i, x := range cm.PElems {
		pIndex[x] = i
	}
	qBase := len(cm.PElems)

	width := in.Schema.Width()
	parent := make([][]int, width)
	for at := range parent {
		parent[at] = make([]int, numNodes)
		for i := range parent[at] {
			parent[at][i] = i
		}
	}
	find := func(at, x int) int {
		for parent[at][x] != x {
			parent[at][x] = parent[at][parent[at][x]]
			x = parent[at][x]
		}
		return x
	}
	union := func(at relation.Attr, x, y int) {
		rx, ry := find(int(at), x), find(int(at), y)
		if rx != ry {
			parent[at][rx] = ry
		}
	}

	// ~A' joins each triple with its source; ~A'' with its target.
	for qi, tr := range cm.QTriples {
		union(in.prime[tr.Sym], qBase+qi, pIndex[tr.A])
		union(in.dprime[tr.Sym], qBase+qi, pIndex[tr.B])
	}
	// ~E is total on P; ~E' is total on Q.
	for i := 1; i < len(cm.PElems); i++ {
		union(in.e, 0, i)
	}
	for i := 1; i < len(cm.QTriples); i++ {
		union(in.ePrime, qBase, qBase+i)
	}

	inst := relation.NewInstance(in.Schema)
	for ni := 0; ni < numNodes; ni++ {
		tup := make(relation.Tuple, width)
		for at := 0; at < width; at++ {
			tup[at] = relation.Value(find(at, ni))
		}
		idx := inst.MustAdd(tup)
		if ni < qBase {
			cm.PTuple[cm.PElems[ni]] = idx
		} else {
			cm.QTuple[cm.QTriples[ni-qBase]] = idx
		}
	}
	cm.Instance = inst
	return cm, nil
}

// Verify checks, by direct satisfaction testing, that the counter-model
// satisfies every dependency of D and violates D0 — the conclusion of
// Reduction Theorem part (B).
func (in *Instance) Verify(cm *CounterModel) error {
	for _, d := range in.D {
		if ok, _ := d.Satisfies(cm.Instance); !ok {
			return fmt.Errorf("reduction: counter-model violates %s", d.Name())
		}
	}
	if ok, _ := in.D0.Satisfies(cm.Instance); ok {
		return fmt.Errorf("reduction: counter-model satisfies D0; it is not a counterexample")
	}
	return nil
}

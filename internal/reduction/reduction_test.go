package reduction

import (
	"strings"
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/search"
	"templatedep/internal/semigroup"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

func TestBuildShape(t *testing.T) {
	p := words.PowerPresentation() // alphabet {A0, B, 0}: 3 symbols
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// 2n+2 attributes.
	if got, want := in.Schema.Width(), 2*3+2; got != want {
		t.Errorf("schema width %d, want %d", got, want)
	}
	// Four dependencies per equation.
	if got, want := len(in.D), 4*len(in.Pres.Equations); got != want {
		t.Errorf("|D| = %d, want %d", got, want)
	}
	// The paper's antecedent bound: five at most.
	if got := in.MaxAntecedents(); got != 5 {
		t.Errorf("max antecedents %d, want 5", got)
	}
	// All dependencies are embedded.
	for _, d := range append(append([]*td.TD(nil), in.D...), in.D0) {
		if d.IsFull() {
			t.Errorf("%s is full; the reduction's dependencies are embedded", d.Name())
		}
	}
	// D0 and the dependencies of the proper (non-zero) equation A0·A0 = B
	// are non-trivial. (For zero-absorption equations, where C coincides
	// with A or B, some D2/D3 instances are genuinely trivial — the C-apex
	// antecedent already witnesses the conclusion — which is sound.)
	if in.D0.IsTrivial() {
		t.Error("D0 is trivial")
	}
	for _, d := range in.DsForEquation(0) {
		if d.IsTrivial() {
			t.Errorf("%s is trivial", d.Name())
		}
	}
	// Attribute names follow the paper: A0', A0'', ..., E, E'.
	names := in.Schema.Names()
	if names[0] != "A0'" || names[1] != "A0''" {
		t.Errorf("first attributes %v", names[:2])
	}
	if names[len(names)-2] != "E" || names[len(names)-1] != "E'" {
		t.Errorf("last attributes %v", names[len(names)-2:])
	}
	// DsForEquation slices correctly and names carry D1..D4.
	ds := in.DsForEquation(0)
	for j, d := range ds {
		if !strings.HasPrefix(d.Name(), "D"+string(rune('1'+j))) {
			t.Errorf("dep %d name %q", j, d.Name())
		}
	}
}

func TestBuildNormalizesWhenNeeded(t *testing.T) {
	a := words.MustAlphabet([]string{"A0", "X", "Y", "0"}, "A0", "0")
	p, err := words.NewPresentation(a, []words.Equation{
		words.Eq(words.MustParseWord(a, "A0 X Y"), words.MustParseWord(a, "X")),
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if in.Norm == nil {
		t.Error("normalization expected")
	}
	if !in.Pres.IsTwoOne() {
		t.Error("working presentation not (2,1)")
	}
	if in.Schema.Width() != 2*in.Pres.Alphabet.Size()+2 {
		t.Error("schema width does not track the normalized alphabet")
	}
}

func TestBuildRejectsESymbol(t *testing.T) {
	a := words.MustAlphabet([]string{"A0", "E", "0"}, "A0", "0")
	p, err := words.NewPresentation(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p); err == nil {
		t.Error("symbol named E accepted despite attribute collision")
	}
}

func TestBridgeStructure(t *testing.T) {
	p := words.TwoStepPresentation()
	in := MustBuild(p)
	w := words.MustParseWord(p.Alphabet, "b c")
	br, err := in.BuildBridge(w)
	if err != nil {
		t.Fatal(err)
	}
	// k=2: 3 base + 2 apex rows.
	if br.Tableau.Len() != 5 {
		t.Fatalf("rows %d, want 5", br.Tableau.Len())
	}
	if len(br.BaseNodes) != 3 || len(br.ApexNodes) != 2 {
		t.Fatalf("base %d apex %d", len(br.BaseNodes), len(br.ApexNodes))
	}
	// All base rows share the E variable; all apexes share E'.
	e, ep := in.E(), in.EPrime()
	for _, bi := range br.BaseNodes[1:] {
		if br.Tableau.Row(bi)[e] != br.Tableau.Row(br.BaseNodes[0])[e] {
			t.Error("base nodes not E-equivalent")
		}
	}
	for _, ai := range br.ApexNodes[1:] {
		if br.Tableau.Row(ai)[ep] != br.Tableau.Row(br.ApexNodes[0])[ep] {
			t.Error("apex nodes not E'-equivalent")
		}
	}
	// Apexes are NOT E-equivalent to the base.
	if br.Tableau.Row(br.ApexNodes[0])[e] == br.Tableau.Row(br.BaseNodes[0])[e] {
		t.Error("apex joined the base E-class")
	}
	// Triangles: c0 ~b' d1, d1 ~b'' c1, c1 ~c' d2, d2 ~c'' c2.
	b := p.Alphabet.MustSymbol("b")
	c := p.Alphabet.MustSymbol("c")
	if br.Tableau.Row(br.BaseNodes[0])[in.Prime(b)] != br.Tableau.Row(br.ApexNodes[0])[in.Prime(b)] {
		t.Error("missing c0 ~b' d1")
	}
	if br.Tableau.Row(br.ApexNodes[0])[in.DPrime(b)] != br.Tableau.Row(br.BaseNodes[1])[in.DPrime(b)] {
		t.Error("missing d1 ~b'' c1")
	}
	if br.Tableau.Row(br.BaseNodes[1])[in.Prime(c)] != br.Tableau.Row(br.ApexNodes[1])[in.Prime(c)] {
		t.Error("missing c1 ~c' d2")
	}
	if br.Tableau.Row(br.ApexNodes[1])[in.DPrime(c)] != br.Tableau.Row(br.BaseNodes[2])[in.DPrime(c)] {
		t.Error("missing d2 ~c'' c2")
	}
	// Frozen bridge has one tuple per node.
	inst, _ := br.Freeze()
	if inst.Len() != 5 {
		t.Errorf("frozen size %d", inst.Len())
	}
	// Empty word rejected.
	if _, err := in.BuildBridge(words.Word{}); err == nil {
		t.Error("empty word accepted")
	}
}

func TestD0AntecedentsAreA0Bridge(t *testing.T) {
	p := words.PowerPresentation()
	in := MustBuild(p)
	br, err := in.BuildBridge(words.W(p.Alphabet.A0()))
	if err != nil {
		t.Fatal(err)
	}
	frozen, _ := in.D0.FrozenAntecedents()
	ok, err := br.AppearsIn(frozen, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("A0 bridge does not embed into D0's antecedents")
	}
	// And conversely: D0's antecedent tableau maps into the frozen bridge.
	brInst, _ := br.Freeze()
	matched := false
	in.D0.Tableau().EachPrefixHomomorphism(brInst, nil, in.D0.NumAntecedents(), func(tableau.Assignment) bool {
		matched = true
		return false
	})
	if !matched {
		t.Error("D0's antecedents do not embed into the A0 bridge")
	}
}

func TestDirectionATwoStep(t *testing.T) {
	rep, err := VerifyDirectionA(words.TwoStepPresentation(), words.DefaultClosureOptions(),
		chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Derivation.Len() != 2 {
		t.Errorf("derivation length %d", rep.Derivation.Len())
	}
	if rep.Chase.Verdict != chase.Implied {
		t.Errorf("chase verdict %v", rep.Chase.Verdict)
	}
	t.Logf("two-step: %d rounds, %d tuples", rep.Chase.Stats.Rounds, rep.Chase.Instance.Len())
}

func TestDirectionAChain1(t *testing.T) {
	rep, err := VerifyDirectionA(words.ChainPresentation(1), words.DefaultClosureOptions(),
		chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chase.Verdict != chase.Implied {
		t.Errorf("chase verdict %v", rep.Chase.Verdict)
	}
}

func TestDirectionAChainSweep(t *testing.T) {
	// The chase simulates the 2n-step derivation in ~3 rounds per chain
	// level, and the restricted chase keeps the canonical database small
	// (subsumption blocks re-derivation): observed 3n rounds and 4n+3
	// tuples; assert generous bounds so the test documents the scaling
	// without being brittle.
	for n := 1; n <= 3; n++ {
		in := MustBuild(words.ChainPresentation(n))
		res, err := chase.Implies(in.D, in.D0, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 3*n + 3, Tuples: 100000}), SemiNaive: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != chase.Implied {
			t.Fatalf("chain:%d verdict %v", n, res.Verdict)
		}
		if res.Stats.Rounds > 3*n+1 {
			t.Errorf("chain:%d took %d rounds, expected about %d", n, res.Stats.Rounds, 3*n)
		}
		if res.Instance.Len() > 4*n+4 {
			t.Errorf("chain:%d canonical database has %d tuples, expected about %d", n, res.Instance.Len(), 4*n+3)
		}
	}
}

func TestDirectionANotApplicable(t *testing.T) {
	_, err := VerifyDirectionA(words.PowerPresentation(), words.DefaultClosureOptions(), chase.DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "not derivable") {
		t.Errorf("err = %v", err)
	}
}

func TestDirectionBPower(t *testing.T) {
	p := words.PowerPresentation()
	n3 := semigroup.NilpotentCyclic(3)
	wit, err := semigroup.NewInterpretation(n3, p.Alphabet, map[words.Symbol]semigroup.Elem{
		p.Alphabet.A0():            0, // a
		p.Alphabet.MustSymbol("B"): 1, // a^2
		p.Alphabet.Zero():          2, // 0
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDirectionB(p, wit)
	if err != nil {
		t.Fatal(err)
	}
	cm := rep.CounterModel
	// P = {a, I}; Q = {<I, A0, a>}.
	if len(cm.PElems) != 2 {
		t.Errorf("|P| = %d, want 2 (%v)", len(cm.PElems), cm.PElems)
	}
	if len(cm.QTriples) != 1 {
		t.Errorf("|Q| = %d, want 1 (%v)", len(cm.QTriples), cm.QTriples)
	}
	if cm.Instance.Len() != 3 {
		t.Errorf("database size %d, want 3", cm.Instance.Len())
	}
	// Identity is in P.
	if _, ok := cm.PTuple[cm.Identity]; !ok {
		t.Error("identity missing from P")
	}
}

func TestDirectionBNilpotentFamily(t *testing.T) {
	for m := 1; m <= 3; m++ {
		wit, p, err := semigroup.NilpotentInterpretationForPowers(m)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyDirectionB(p, wit)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if rep.CounterModel.Instance.Len() == 0 {
			t.Fatalf("m=%d: empty model", m)
		}
	}
}

func TestDirectionBRicherP(t *testing.T) {
	// Equation-free presentation, witness N5 with A0 -> a^4: P is all of
	// {a, a^2, a^3, a^4, I}.
	a := words.MustAlphabet([]string{"A0", "0"}, "A0", "0")
	p, err := words.NewPresentation(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	p = p.WithZeroEquations()
	n5 := semigroup.NilpotentCyclic(5)
	wit, err := semigroup.NewInterpretation(n5, a, map[words.Symbol]semigroup.Elem{
		a.A0():   semigroup.PowerElem(5, 4),
		a.Zero(): 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyDirectionB(p, wit)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.CounterModel.PElems); got != 5 {
		t.Errorf("|P| = %d, want 5", got)
	}
}

func TestDirectionBRejectsBadWitness(t *testing.T) {
	p := words.PowerPresentation()
	// Wrong witness: B interpreted as a (equation A0·A0 = B fails in N3).
	n3 := semigroup.NilpotentCyclic(3)
	wit, err := semigroup.NewInterpretation(n3, p.Alphabet, map[words.Symbol]semigroup.Elem{
		p.Alphabet.A0():            0,
		p.Alphabet.MustSymbol("B"): 0,
		p.Alphabet.Zero():          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDirectionB(p, wit); err == nil {
		t.Error("bad witness accepted")
	}
}

func TestDirectionBWithSearchedWitness(t *testing.T) {
	// End to end: the model SEARCH (not a hand-picked witness) feeds part
	// (B). The searched witness may be smaller than any hand-constructed
	// one — for power it is the order-2 null semigroup.
	p := words.PowerPresentation()
	sres, err := search.FindCounterModel(p, search.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sres.Interpretation == nil {
		t.Fatalf("outcome %v", sres.Status())
	}
	rep, err := VerifyDirectionB(p, sres.Interpretation)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CounterModel.GPrime.Size() != sres.Interpretation.Table.Size()+1 {
		t.Error("G' should be G plus the adjoined identity")
	}
}

func TestCounterModelSatisfiesDViolatesD0(t *testing.T) {
	// The authoritative re-check, spelled out (Verify already ran inside
	// VerifyDirectionB; this asserts the two halves separately).
	p := words.PowerPresentation()
	in := MustBuild(p)
	n3 := semigroup.NilpotentCyclic(3)
	wit, err := semigroup.NewInterpretation(n3, p.Alphabet, map[words.Symbol]semigroup.Elem{
		p.Alphabet.A0():            0,
		p.Alphabet.MustSymbol("B"): 1,
		p.Alphabet.Zero():          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := in.BuildCounterModel(wit)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range in.D {
		if ok, wtn := d.Satisfies(cm.Instance); !ok {
			t.Errorf("%s violated; witness %v", d.Name(), wtn)
		}
	}
	if ok, _ := in.D0.Satisfies(cm.Instance); ok {
		t.Error("D0 satisfied; not a counterexample")
	}
}

package reduction

import (
	"fmt"

	"templatedep/internal/words"
)

// PlanChaseSteps translates an equational derivation of A0 = 0 into the
// dependency firings the chase must perform to simulate it, following the
// proof of part (A):
//
//   - a CONTRACTION step (x -> y, applying an equation AB = C left to
//     right) is simulated by one D1 firing: the AB-bridge segment forces
//     the C-apex;
//   - an EXPANSION step (y -> x, right to left) is simulated by D2 (create
//     the A-apex), D3 (create the B-apex), then D4 (merge their dangling
//     corners into the middle base point).
//
// The returned slice contains indices into Instance.D, in simulation order.
// TestChasePlanIsTraceSubsequence asserts that an actual chase proof fires
// exactly these dependencies in this relative order (interleaved with
// whatever else the fair rounds fire).
func (in *Instance) PlanChaseSteps(d *words.Derivation) ([]int, error) {
	if err := d.Validate(in.Pres); err != nil {
		return nil, fmt.Errorf("reduction: cannot plan from an invalid derivation: %w", err)
	}
	var plan []int
	for _, s := range d.Steps {
		base := 4 * s.Eq
		if base+3 >= len(in.D) {
			return nil, fmt.Errorf("reduction: step references equation %d beyond the dependency set", s.Eq)
		}
		if s.Forward {
			plan = append(plan, base) // D1
		} else {
			plan = append(plan, base+1, base+2, base+3) // D2, D3, D4
		}
	}
	return plan, nil
}

// Package reduction implements the paper's Reduction Theorem construction:
// from a semigroup presentation in (2,1) normal form (every equation
// AB = C) it builds a template-dependency inference instance (D, D0) such
// that
//
//	(A) if the presentation equationally forces A0 = 0, then D logically
//	    implies D0 (the chase finds a proof), and
//	(B) if a finite cancellation semigroup without identity satisfies the
//	    presentation with A0 ≠ 0, then a finite database satisfies D and
//	    violates D0 (built by BuildCounterModel).
//
// The schema has 2n+2 attributes for an n-symbol alphabet: A' and A” for
// every symbol A, plus E and E'. A word A1...Ak is represented by a bridge
// (Fig. 2): E-equivalent base nodes c0..ck, E'-equivalent apex nodes
// d1..dk, and for each i a triangle c(i-1) —Ai'— di —Ai”— ci. For each
// equation r: AB = C the four dependencies D1(r)–D4(r) (Fig. 3) let the
// chase rewrite AB-bridges into C-bridges and back:
//
//	D1(r): a bridge for AB over (t1, t3) forces the C-apex over (t1, t3);
//	D2(r): a C-triangle over (t1, t2) forces an A-apex hanging from t1;
//	D3(r): symmetric, a B-apex reaching t2;
//	D4(r): a C-triangle plus both dangling apexes force the shared middle
//	       base point.
//
// D0 states: a one-symbol bridge for A0 forces a one-symbol bridge for the
// zero symbol over the same base, with an E'-linked apex.
package reduction

import (
	"fmt"

	"templatedep/internal/diagram"
	"templatedep/internal/relation"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// Instance is a built TD-inference instance (D, D0) for a presentation.
type Instance struct {
	// Original is the presentation Build was called with.
	Original *words.Presentation
	// Pres is the (2,1) presentation the dependencies encode (equal to
	// Original when it was already in normal form with zero equations).
	Pres *words.Presentation
	// Norm records the normalization applied, or nil.
	Norm *words.Normalization
	// Schema has 2n+2 attributes: A', A'' per symbol, then E, E'.
	Schema *relation.Schema
	// D contains D1(r)..D4(r) for each equation r, in equation order.
	D []*td.TD
	// D0 is the goal dependency.
	D0 *td.TD

	prime  []relation.Attr // indexed by symbol
	dprime []relation.Attr
	e      relation.Attr
	ePrime relation.Attr
}

// Build constructs the reduction instance. Presentations not in (2,1) form
// (or missing zero equations) are normalized first; the construction then
// works over the normalized presentation.
func Build(p *words.Presentation) (*Instance, error) {
	in := &Instance{Original: p}
	work := p.WithZeroEquations()
	if !work.IsTwoOne() {
		n, err := words.Normalize(work)
		if err != nil {
			return nil, err
		}
		in.Norm = n
		work = n.Presentation
	}
	if err := work.CheckZeroEquations(); err != nil {
		return nil, err
	}
	in.Pres = work

	a := work.Alphabet
	names := make([]string, 0, 2*a.Size()+2)
	in.prime = make([]relation.Attr, a.Size())
	in.dprime = make([]relation.Attr, a.Size())
	for _, s := range a.Symbols() {
		base := a.Name(s)
		if base == "E" || base == "E'" {
			return nil, fmt.Errorf("reduction: symbol name %q collides with the E/E' attributes; rename it", base)
		}
		in.prime[s] = relation.Attr(len(names))
		names = append(names, base+"'")
		in.dprime[s] = relation.Attr(len(names))
		names = append(names, base+"''")
	}
	in.e = relation.Attr(len(names))
	names = append(names, "E")
	in.ePrime = relation.Attr(len(names))
	names = append(names, "E'")
	schema, err := relation.NewSchema(names)
	if err != nil {
		return nil, err
	}
	in.Schema = schema

	for i, eq := range work.Equations {
		if !eq.IsTwoOne() {
			return nil, fmt.Errorf("reduction: equation %d not in (2,1) form", i)
		}
		ds, err := in.buildEquationDeps(i, eq)
		if err != nil {
			return nil, err
		}
		in.D = append(in.D, ds...)
	}
	d0, err := in.buildD0()
	if err != nil {
		return nil, err
	}
	in.D0 = d0
	return in, nil
}

// MustBuild is Build that panics on error.
func MustBuild(p *words.Presentation) *Instance {
	in, err := Build(p)
	if err != nil {
		panic(err)
	}
	return in
}

// Prime returns the A' attribute of symbol s.
func (in *Instance) Prime(s words.Symbol) relation.Attr { return in.prime[s] }

// DPrime returns the A” attribute of symbol s.
func (in *Instance) DPrime(s words.Symbol) relation.Attr { return in.dprime[s] }

// E returns the E attribute (base-row equivalence).
func (in *Instance) E() relation.Attr { return in.e }

// EPrime returns the E' attribute (apex-row equivalence).
func (in *Instance) EPrime() relation.Attr { return in.ePrime }

// DsForEquation returns the four dependencies D1(r)..D4(r) of equation i.
func (in *Instance) DsForEquation(i int) []*td.TD {
	return in.D[4*i : 4*i+4]
}

// MaxAntecedents returns the largest antecedent count among D and D0 — the
// paper's "five at most".
func (in *Instance) MaxAntecedents() int {
	m := in.D0.NumAntecedents()
	for _, d := range in.D {
		if k := d.NumAntecedents(); k > m {
			m = k
		}
	}
	return m
}

// buildEquationDeps constructs D1(r)..D4(r) for equation r: AB = C.
func (in *Instance) buildEquationDeps(i int, eq words.Equation) ([]*td.TD, error) {
	A, B := eq.LHS[0], eq.LHS[1]
	C := eq.RHS[0]
	label := eq.Format(in.Pres.Alphabet)

	// D1: nodes t1..t5 = 0..4, * = 5. A bridge for AB forces the C-apex.
	g1 := diagram.MustNew(in.Schema, 6, 5)
	g1.MustAddEdge(in.e, 0, 1)
	g1.MustAddEdge(in.e, 1, 2)
	g1.MustAddEdge(in.prime[A], 0, 3)
	g1.MustAddEdge(in.dprime[A], 3, 1)
	g1.MustAddEdge(in.prime[B], 1, 4)
	g1.MustAddEdge(in.dprime[B], 4, 2)
	g1.MustAddEdge(in.ePrime, 3, 4)
	g1.MustAddEdge(in.prime[C], 0, 5)
	g1.MustAddEdge(in.dprime[C], 5, 2)
	g1.MustAddEdge(in.ePrime, 3, 5)
	d1, err := g1.TD(fmt.Sprintf("D1[%d: %s]", i, label))
	if err != nil {
		return nil, err
	}

	// D2: nodes t1..t3 = 0..2, * = 3. A C-triangle forces an A-apex from t1.
	g2 := diagram.MustNew(in.Schema, 4, 3)
	g2.MustAddEdge(in.e, 0, 1)
	g2.MustAddEdge(in.prime[C], 0, 2)
	g2.MustAddEdge(in.dprime[C], 2, 1)
	g2.MustAddEdge(in.prime[A], 0, 3)
	g2.MustAddEdge(in.ePrime, 2, 3)
	d2, err := g2.TD(fmt.Sprintf("D2[%d: %s]", i, label))
	if err != nil {
		return nil, err
	}

	// D3: symmetric to D2, a B-apex reaching t2.
	g3 := diagram.MustNew(in.Schema, 4, 3)
	g3.MustAddEdge(in.e, 0, 1)
	g3.MustAddEdge(in.prime[C], 0, 2)
	g3.MustAddEdge(in.dprime[C], 2, 1)
	g3.MustAddEdge(in.dprime[B], 3, 1)
	g3.MustAddEdge(in.ePrime, 2, 3)
	d3, err := g3.TD(fmt.Sprintf("D3[%d: %s]", i, label))
	if err != nil {
		return nil, err
	}

	// D4: nodes t1..t5 = 0..4, * = 5. A C-triangle plus dangling A- and
	// B-apexes force the shared middle base point.
	g4 := diagram.MustNew(in.Schema, 6, 5)
	g4.MustAddEdge(in.e, 0, 1)
	g4.MustAddEdge(in.prime[C], 0, 2)
	g4.MustAddEdge(in.dprime[C], 2, 1)
	g4.MustAddEdge(in.prime[A], 0, 3)
	g4.MustAddEdge(in.dprime[B], 4, 1)
	g4.MustAddEdge(in.ePrime, 2, 3)
	g4.MustAddEdge(in.ePrime, 3, 4)
	g4.MustAddEdge(in.dprime[A], 3, 5)
	g4.MustAddEdge(in.prime[B], 5, 4)
	g4.MustAddEdge(in.e, 0, 5)
	d4, err := g4.TD(fmt.Sprintf("D4[%d: %s]", i, label))
	if err != nil {
		return nil, err
	}

	return []*td.TD{d1, d2, d3, d4}, nil
}

// buildD0 constructs the goal: an A0-triangle over (t1, t2) with apex t3
// forces a 0-triangle over the same base with an E'-linked apex.
func (in *Instance) buildD0() (*td.TD, error) {
	a := in.Pres.Alphabet
	a0, z := a.A0(), a.Zero()
	g := diagram.MustNew(in.Schema, 4, 3)
	g.MustAddEdge(in.e, 0, 1)
	g.MustAddEdge(in.prime[a0], 0, 2)
	g.MustAddEdge(in.dprime[a0], 2, 1)
	g.MustAddEdge(in.prime[z], 0, 3)
	g.MustAddEdge(in.dprime[z], 3, 1)
	g.MustAddEdge(in.ePrime, 2, 3)
	return g.TD("D0")
}

package reduction

import (
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/words"
)

// isSubsequence reports whether want occurs as a (not necessarily
// contiguous) subsequence of got.
func isSubsequence(want, got []int) bool {
	i := 0
	for _, g := range got {
		if i < len(want) && want[i] == g {
			i++
		}
	}
	return i == len(want)
}

// TestChasePlanIsTraceSubsequence is the tightest correspondence test
// between the two layers of part (A): the dependency firings planned from
// the word derivation occur, in order, inside the actual chase proof trace.
func TestChasePlanIsTraceSubsequence(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"twostep", words.TwoStepPresentation()},
		{"chain1", words.ChainPresentation(1)},
		{"chain2", words.ChainPresentation(2)},
	} {
		in := MustBuild(tc.p)
		dres := words.DeriveGoal(in.Pres, words.DefaultClosureOptions())
		if dres.Verdict != words.Derivable {
			t.Fatalf("%s: setup", tc.name)
		}
		plan, err := in.PlanChaseSteps(dres.Derivation)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := chase.Implies(in.D, in.D0, chase.Options{
			Governor:  budget.New(nil, budget.Limits{Rounds: 32, Tuples: 200000}),
			SemiNaive: true, Trace: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Verdict != chase.Implied {
			t.Fatalf("%s: verdict %v", tc.name, res.Verdict)
		}
		fired := make([]int, len(res.Trace))
		for i, f := range res.Trace {
			fired[i] = f.Dep
		}
		if !isSubsequence(plan, fired) {
			t.Errorf("%s: plan %v is not a subsequence of the %d-step trace",
				tc.name, plan, len(fired))
		}
	}
}

func TestPlanChaseStepsShape(t *testing.T) {
	p := words.TwoStepPresentation()
	in := MustBuild(p)
	dres := words.DeriveGoal(in.Pres, words.DefaultClosureOptions())
	plan, err := in.PlanChaseSteps(dres.Derivation)
	if err != nil {
		t.Fatal(err)
	}
	// A0 -> bc (expansion: D2, D3, D4 of eq 0) -> 0 (contraction: D1 of
	// eq 1): indices 1, 2, 3, 4.
	want := []int{1, 2, 3, 4}
	if len(plan) != len(want) {
		t.Fatalf("plan %v, want %v", plan, want)
	}
	for i := range want {
		if plan[i] != want[i] {
			t.Fatalf("plan %v, want %v", plan, want)
		}
	}
}

func TestPlanChaseStepsRejectsInvalid(t *testing.T) {
	p := words.TwoStepPresentation()
	in := MustBuild(p)
	bad := &words.Derivation{From: words.W(p.Alphabet.A0()), To: words.W(p.Alphabet.Zero())}
	if _, err := in.PlanChaseSteps(bad); err == nil {
		t.Error("invalid derivation accepted")
	}
}

package reduction

import (
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/words"
)

// TestDirectionAInductionInvariant makes the paper's proof of part (A)
// executable: after the chase has run, the instance contains — for EVERY
// word u_j of the derivation chain u_0 = A0, ..., u_m = 0 — a bridge for
// u_j anchored at the frozen a and b of D0's antecedents, with its apex row
// in d0's E'-class. This is precisely the induction statement on p. 77.
func TestDirectionAInductionInvariant(t *testing.T) {
	p := words.TwoStepPresentation()
	in := MustBuild(p)

	dres := words.DeriveGoal(in.Pres, words.DefaultClosureOptions())
	if dres.Verdict != words.Derivable {
		t.Fatal("setup: goal not derivable")
	}

	cres, err := chase.Implies(in.D, in.D0, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Verdict != chase.Implied {
		t.Fatalf("chase verdict %v", cres.Verdict)
	}
	chased := cres.Instance

	// The frozen antecedents of D0: row 0 = a, row 1 = b, row 2 = d0
	// (construction order in buildD0). Their tuples in the chased instance
	// are the first three (the chase seeds with the frozen antecedents).
	frozen, _ := in.D0.FrozenAntecedents()
	if frozen.Len() != 3 {
		t.Fatalf("frozen size %d", frozen.Len())
	}
	aTup := frozen.Tuple(0)
	bTup := frozen.Tuple(1)
	d0Tup := frozen.Tuple(2)
	for _, tup := range []relation.Tuple{aTup, bTup, d0Tup} {
		if !chased.Contains(tup) {
			t.Fatal("chase lost a frozen antecedent")
		}
	}

	for _, u := range dres.Derivation.Words() {
		br, err := in.BuildBridge(u)
		if err != nil {
			t.Fatal(err)
		}
		// Anchor the bridge: first base row = a, last base row = b, and the
		// apex row's E'-variable = d0's E'-value.
		anchors := map[int]relation.Tuple{
			br.BaseNodes[0]:                   aTup,
			br.BaseNodes[len(br.BaseNodes)-1]: bTup,
		}
		seed, err := br.SeedEndpoints(anchors)
		if err != nil {
			t.Fatal(err)
		}
		ep := int(in.EPrime())
		apexVar := br.Tableau.Row(br.ApexNodes[0])[ep]
		if seed[ep][apexVar] == tableau.Unbound {
			seed[ep][apexVar] = d0Tup[ep]
		} else if seed[ep][apexVar] != d0Tup[ep] {
			t.Fatalf("apex E' already anchored inconsistently for %s", u.Format(in.Pres.Alphabet))
		}
		if !br.Tableau.HasHomomorphism(chased, seed) {
			t.Errorf("no anchored bridge for derivation word %s in the chased instance",
				u.Format(in.Pres.Alphabet))
		}
	}
}

// TestNonDerivableWordHasNoBridge is the negative control: the chased
// instance contains anchored bridges only for words in A0's equational
// class; a word outside it (here "c b", the reversal) must not appear
// anchored after the SAME bounded chase that proved the goal.
func TestNonDerivableWordHasNoBridge(t *testing.T) {
	p := words.TwoStepPresentation()
	in := MustBuild(p)
	cres, err := chase.Implies(in.D, in.D0, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 4, Tuples: 60000}), SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	// (4 rounds suffice for the two-step goal; see TestDirectionATwoStep.)
	if cres.Verdict != chase.Implied {
		t.Fatalf("chase verdict %v", cres.Verdict)
	}
	frozen, _ := in.D0.FrozenAntecedents()
	aTup, bTup := frozen.Tuple(0), frozen.Tuple(1)

	cb := words.MustParseWord(p.Alphabet, "c b") // reversal: NOT ~ A0
	br, err := in.BuildBridge(cb)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := br.SeedEndpoints(map[int]relation.Tuple{
		br.BaseNodes[0]: aTup,
		br.BaseNodes[2]: bTup,
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.Tableau.HasHomomorphism(cres.Instance, seed) {
		t.Error("anchored bridge found for a word outside A0's class")
	}
}

package reduction

import (
	"fmt"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/words"
)

// Bridge is the Fig. 2 structure representing a word A1...Ak: base nodes
// c0..ck, all E-equivalent; apex nodes d1..dk, all E'-equivalent; and for
// each symbol Ai a triangle c(i-1) —Ai'— di —Ai”— ci.
type Bridge struct {
	// Word is the represented word.
	Word words.Word
	// Tableau holds the k+1 base rows followed by the k apex rows.
	Tableau *tableau.Tableau
	// BaseNodes and ApexNodes index rows of Tableau.
	BaseNodes []int
	ApexNodes []int
}

// BuildBridge constructs the bridge tableau for a non-empty word.
func (in *Instance) BuildBridge(w words.Word) (*Bridge, error) {
	if w.IsEmpty() {
		return nil, fmt.Errorf("reduction: cannot build a bridge for the empty word")
	}
	for _, s := range w {
		if !in.Pres.Alphabet.Contains(s) {
			return nil, fmt.Errorf("reduction: word uses symbol %d outside the alphabet", int(s))
		}
	}
	k := w.Len()
	numNodes := (k + 1) + k // base + apexes
	width := in.Schema.Width()

	// Per-column union-find over nodes; unmerged node components become
	// distinct variables.
	parent := make([][]int, width)
	for a := range parent {
		parent[a] = make([]int, numNodes)
		for i := range parent[a] {
			parent[a][i] = i
		}
	}
	find := func(a, x int) int {
		for parent[a][x] != x {
			parent[a][x] = parent[a][parent[a][x]]
			x = parent[a][x]
		}
		return x
	}
	union := func(a relation.Attr, x, y int) {
		rx, ry := find(int(a), x), find(int(a), y)
		if rx != ry {
			parent[a][rx] = ry
		}
	}
	base := func(i int) int { return i }         // c_i, i in 0..k
	apex := func(i int) int { return k + 1 + i } // d_(i+1), i in 0..k-1

	for i := 0; i+1 <= k; i++ {
		union(in.e, base(i), base(i+1))
	}
	for i := 0; i+1 < k; i++ {
		union(in.ePrime, apex(i), apex(i+1))
	}
	for i, sym := range w {
		union(in.prime[sym], base(i), apex(i))
		union(in.dprime[sym], apex(i), base(i+1))
	}

	rows := make([]tableau.VarTuple, numNodes)
	for ni := 0; ni < numNodes; ni++ {
		r := make(tableau.VarTuple, width)
		for a := 0; a < width; a++ {
			r[a] = tableau.Var(find(a, ni))
		}
		rows[ni] = r
	}
	tab, err := tableau.New(in.Schema, rows)
	if err != nil {
		return nil, err
	}
	b := &Bridge{Word: w.Clone(), Tableau: tab}
	for i := 0; i <= k; i++ {
		b.BaseNodes = append(b.BaseNodes, base(i))
	}
	for i := 0; i < k; i++ {
		b.ApexNodes = append(b.ApexNodes, apex(i))
	}
	return b, nil
}

// Freeze materializes the bridge as a database instance.
func (b *Bridge) Freeze() (*relation.Instance, tableau.Assignment) {
	return b.Tableau.Freeze()
}

// SeedEndpoints builds an assignment seed that pins row `row` of the bridge
// tableau to the concrete tuple tup; used to search for bridges anchored at
// specific tuples (e.g. the frozen a and b of D0's antecedents).
func (b *Bridge) SeedEndpoints(anchors map[int]relation.Tuple) (tableau.Assignment, error) {
	as := tableau.NewAssignment(b.Tableau)
	for row, tup := range anchors {
		if row < 0 || row >= b.Tableau.Len() {
			return nil, fmt.Errorf("reduction: anchor row %d out of range", row)
		}
		if len(tup) != b.Tableau.Schema().Width() {
			return nil, fmt.Errorf("reduction: anchor tuple has width %d, want %d", len(tup), b.Tableau.Schema().Width())
		}
		r := b.Tableau.Row(row)
		for a, v := range r {
			if as[a][v] != tableau.Unbound && as[a][v] != tup[a] {
				return nil, fmt.Errorf("reduction: conflicting anchors at attribute %d", a)
			}
			as[a][v] = tup[a]
		}
	}
	return as, nil
}

// AppearsIn reports whether the chased (or any) instance contains a
// homomorphic image of the bridge, optionally anchored (see SeedEndpoints;
// pass nil for no anchors). This is the invariant of the paper's part (A)
// induction: once the chase has simulated a derivation u0, ..., uj, the
// instance contains an anchored bridge for uj.
func (b *Bridge) AppearsIn(inst *relation.Instance, anchors map[int]relation.Tuple) (bool, error) {
	var seed tableau.Assignment
	if anchors != nil {
		var err error
		seed, err = b.SeedEndpoints(anchors)
		if err != nil {
			return false, err
		}
	}
	return b.Tableau.HasHomomorphism(inst, seed), nil
}

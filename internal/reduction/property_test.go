package reduction

import (
	"math/rand"
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/words"
)

// TestDirectionARandomizedDerivable exercises part (A) on randomized
// derivable presentations: chain instances with random extra equations.
// Adding equations can only ADD derivations, so the goal stays derivable
// and the chase must keep proving D |= D0 — with a different, larger
// dependency set each time.
func TestDirectionARandomizedDerivable(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized direction-A sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		base := words.ChainPresentation(1)
		a := base.Alphabet
		syms := a.Symbols()
		eqs := append([]words.Equation(nil), base.Equations...)
		extra := 1 + rng.Intn(2)
		for i := 0; i < extra; i++ {
			x := syms[rng.Intn(len(syms))]
			y := syms[rng.Intn(len(syms))]
			z := syms[rng.Intn(len(syms))]
			e := words.Eq(words.W(x, y), words.W(z))
			if e.IsTrivial() {
				continue
			}
			eqs = append(eqs, e)
		}
		p, err := words.NewPresentation(a, eqs)
		if err != nil {
			t.Fatal(err)
		}
		p = p.WithZeroEquations()

		// Sanity: the goal must still be derivable.
		dres := words.DeriveGoal(p, words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 5000}), LengthCap: 8})
		if dres.Verdict != words.Derivable {
			t.Fatalf("trial %d: goal lost derivability (%v)?", trial, dres.Verdict)
		}

		in, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chase.Implies(in.D, in.D0, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 16, Tuples: 150000}), SemiNaive: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != chase.Implied {
			t.Errorf("trial %d: chase verdict %v on a derivable instance (%d rounds, %d tuples)\npresentation:\n%s",
				trial, res.Verdict, res.Stats.Rounds, res.Instance.Len(), words.FormatSpec(p, true))
		}
	}
}

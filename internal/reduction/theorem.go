package reduction

import (
	"fmt"

	"templatedep/internal/chase"
	"templatedep/internal/semigroup"
	"templatedep/internal/words"
)

// DirectionAReport certifies an execution of Reduction Theorem part (A):
// the presentation equationally forces A0 = 0 (witnessed by Derivation) and
// the chase proves D ⊨ D0 (witnessed by Chase, whose trace is the proof).
type DirectionAReport struct {
	Instance   *Instance
	Derivation *words.Derivation
	Chase      chase.Result
}

// VerifyDirectionA builds the reduction instance for p, certifies that the
// goal A0 = 0 is derivable, and runs the chase to confirm that D logically
// implies D0. An error is returned if the derivation cannot be found or the
// chase does not reach the Implied verdict within its budgets (a budget
// failure is an inconclusive run, not a refutation of the theorem).
func VerifyDirectionA(p *words.Presentation, copt words.ClosureOptions, chopt chase.Options) (*DirectionAReport, error) {
	in, err := Build(p)
	if err != nil {
		return nil, err
	}
	// Certify derivability over the (2,1) presentation the dependencies
	// encode, so the derivation and the chase tell the same story.
	res := words.DeriveGoal(in.Pres, copt)
	switch res.Verdict {
	case words.Derivable:
	case words.NotDerivable:
		return nil, fmt.Errorf("reduction: goal is not derivable; part (A) does not apply")
	default:
		return nil, fmt.Errorf("reduction: derivability unknown within budget; raise words.ClosureOptions")
	}
	if err := res.Derivation.Validate(in.Pres); err != nil {
		return nil, fmt.Errorf("reduction: internal error: invalid derivation: %w", err)
	}
	cres, err := chase.Implies(in.D, in.D0, chopt)
	if err != nil {
		return nil, err
	}
	if cres.Verdict != chase.Implied {
		return nil, fmt.Errorf("reduction: chase verdict %v after %d rounds / %d tuples; part (A) predicts Implied — raise chase budgets",
			cres.Verdict, cres.Stats.Rounds, cres.Instance.Len())
	}
	return &DirectionAReport{Instance: in, Derivation: res.Derivation, Chase: cres}, nil
}

// DirectionBReport certifies an execution of Reduction Theorem part (B):
// a finite cancellation semigroup witness yields a finite database
// satisfying D and violating D0.
type DirectionBReport struct {
	Instance     *Instance
	CounterModel *CounterModel
}

// VerifyDirectionB builds the reduction instance for p, constructs the
// part (B) counter-model from the witness, and verifies it mechanically.
func VerifyDirectionB(p *words.Presentation, wit *semigroup.Interpretation) (*DirectionBReport, error) {
	in, err := Build(p)
	if err != nil {
		return nil, err
	}
	cm, err := in.BuildCounterModel(wit)
	if err != nil {
		return nil, err
	}
	if err := in.Verify(cm); err != nil {
		return nil, err
	}
	return &DirectionBReport{Instance: in, CounterModel: cm}, nil
}

// Package budget is the single resource-governance layer for every
// semi-procedure in the repository. The Main Theorem makes both sides of
// the reproduction genuine *semi*-procedures — the chase may run forever on
// instances outside IMPL, the model search on instances outside FCEX — so
// bounded execution is the operating mode, not a convenience. Rather than
// each engine inventing its own ad-hoc cap and exhaustion enum, a Governor
// combines
//
//   - a context.Context carrying cancellation and wall-clock deadline, and
//   - named monotonic resource meters (rounds, tuples, nodes, words, rules),
//
// and every engine reports how it stopped with the same Outcome type.
//
// Engines place checkpoints at natural coarse boundaries (once per chase
// round, once per 4096 search nodes) so cancellation latency is bounded
// while the inner loops stay zero-overhead: hot paths compare against a
// plain int limit fetched once via Limit, and settle their meter usage in
// bulk with Add.
//
// The package depends only on the standard library and is imported by the
// engines, never the reverse.
package budget

import (
	"context"
	"sync/atomic"
	"time"
)

// Resource names a monotonic meter. Each engine charges the meter that
// measures its dominant unit of work.
type Resource uint8

const (
	// Rounds counts chase rounds, completion iterations, and deepening
	// rounds — one unit per outer fixpoint pass.
	Rounds Resource = iota
	// Tuples counts rows materialized into a chase instance.
	Tuples
	// Nodes counts backtracking-search nodes (model search, finite-database
	// enumeration).
	Nodes
	// Words counts distinct words visited by equational-closure search.
	Words
	// Rules counts rewrite rules added by Knuth–Bendix completion.
	Rules

	numResources
)

func (r Resource) String() string {
	switch r {
	case Rounds:
		return "rounds"
	case Tuples:
		return "tuples"
	case Nodes:
		return "nodes"
	case Words:
		return "words"
	case Rules:
		return "rules"
	}
	return "unknown"
}

// Resources lists every meter, in declaration order; used by documentation
// checks and tests that want to enumerate the namespace.
func Resources() []Resource {
	return []Resource{Rounds, Tuples, Nodes, Words, Rules}
}

// Limits caps the named meters. A zero field leaves that meter ungoverned:
// a Governor with Limits{} stops only when its context does.
type Limits struct {
	Rounds int
	Tuples int
	Nodes  int
	Words  int
	Rules  int
}

func (l Limits) of(r Resource) int {
	switch r {
	case Rounds:
		return l.Rounds
	case Tuples:
		return l.Tuples
	case Nodes:
		return l.Nodes
	case Words:
		return l.Words
	case Rules:
		return l.Rules
	}
	return 0
}

// Of returns the cap l places on r; zero means that meter is uncapped. It
// is the exported counterpart of the internal accessor, for layers that
// manipulate Limits generically by Resource (the adaptive portfolio grows
// every capped meter of an arm's lease by the same multiplier).
func (l Limits) Of(r Resource) int { return l.of(r) }

// With returns a copy of l with the cap on r replaced by n.
func (l Limits) With(r Resource, n int) Limits {
	switch r {
	case Rounds:
		l.Rounds = n
	case Tuples:
		l.Tuples = n
	case Nodes:
		l.Nodes = n
	case Words:
		l.Words = n
	case Rules:
		l.Rules = n
	}
	return l
}

// Range is an inclusive [Lo, Hi] window over a structural search dimension
// (semigroup orders, instance sizes). It is a coordinate system, not a
// meter: enumerating order 6 before order 2 costs the same nodes either
// way, so ranges live beside the Governor rather than inside it.
type Range struct {
	Lo int
	Hi int
}

// Code classifies how a governed run stopped.
type Code uint8

const (
	// OK: the run completed (or is still running) without hitting a limit.
	OK Code = iota
	// CodeExhausted: a resource meter reached its limit.
	CodeExhausted
	// CodeCancelled: the context was cancelled.
	CodeCancelled
	// CodeDeadline: the context's deadline passed.
	CodeDeadline
)

// Outcome is the uniform stop-report every semi-procedure returns instead
// of a private exhaustion enum. The zero value means the run was not cut
// short by its budget.
type Outcome struct {
	Code Code
	// Resource is meaningful only when Code is CodeExhausted.
	Resource Resource
}

// Exhausted builds the outcome for a meter reaching its limit.
func Exhausted(r Resource) Outcome {
	return Outcome{Code: CodeExhausted, Resource: r}
}

// Stopped reports whether the budget cut the run short.
func (o Outcome) Stopped() bool { return o.Code != OK }

// String renders "ok", "exhausted:<resource>", "cancelled", or "deadline".
func (o Outcome) String() string {
	switch o.Code {
	case CodeExhausted:
		return "exhausted:" + o.Resource.String()
	case CodeCancelled:
		return "cancelled"
	case CodeDeadline:
		return "deadline"
	}
	return "ok"
}

// Reason is the wire detail carried by observability events: the meter name
// for exhaustion, "context" for cancellation, "deadline" for a deadline.
func (o Outcome) Reason() string {
	switch o.Code {
	case CodeExhausted:
		return o.Resource.String()
	case CodeCancelled:
		return "context"
	case CodeDeadline:
		return "deadline"
	}
	return ""
}

// Governor carries one run's cancellation context and resource meters.
// Meters are atomic so concurrent front-ends (the core race arms) may
// charge one governor from several goroutines; engines nonetheless keep
// their hot loops on plain locals and settle in bulk.
type Governor struct {
	ctx    context.Context
	limits Limits
	used   [numResources]atomic.Int64
}

// New builds a governor over ctx (nil means context.Background()) with the
// given meter limits.
func New(ctx context.Context, l Limits) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Governor{ctx: ctx, limits: l}
}

// ForDuration builds a governor whose context expires after d. The cancel
// function must be called to release the timer.
func ForDuration(d time.Duration, l Limits) (*Governor, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	return New(ctx, l), cancel
}

// ForRequest derives a request-scoped governor from a server-wide parent
// context: the returned governor's context is a child of parent — so
// cancelling the server's root context stops every in-flight request at
// its next checkpoint — with its own deadline when d > 0, metering under
// l. This is how a long-running service turns one set of server-wide
// limits into per-request governors: no request can exceed its own
// meters, and no request outlives the server. The cancel function must be
// called when the request finishes to release the timer.
func ForRequest(parent context.Context, d time.Duration, l Limits) (*Governor, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if d > 0 {
		ctx, cancel := context.WithTimeout(parent, d)
		return New(ctx, l), cancel
	}
	ctx, cancel := context.WithCancel(parent)
	return New(ctx, l), cancel
}

// Resolve is the engine-side entry point: a nil governor resolves to a
// fresh one over context.Background() carrying the engine's default limits,
// so ungoverned callers keep the historical bounded behaviour. Engines call
// it once per run (not per engine), keeping reused engines from sharing an
// exhausted meter pool.
func Resolve(g *Governor, defaults Limits) *Governor {
	if g == nil {
		return New(nil, defaults)
	}
	return g
}

// Context exposes the governor's cancellation context (for deriving race
// sub-contexts and passing to the standard library).
func (g *Governor) Context() context.Context { return g.ctx }

// Limits returns the meter limits the governor was built with.
func (g *Governor) Limits() Limits { return g.limits }

// Child derives a governor that shares the parent's context — cancelling
// the parent cancels every child — but meters independently under its own
// limits. Iterative deepening grows child limits between rounds instead of
// mutating engine options in place.
func (g *Governor) Child(l Limits) *Governor {
	return New(g.ctx, l)
}

// Limit returns the cap on r; zero means unlimited. Engines fetch it once
// per run and compare in their inner loops against a plain int.
func (g *Governor) Limit(r Resource) int { return g.limits.of(r) }

// Used returns the amount charged to r so far.
func (g *Governor) Used(r Resource) int { return int(g.used[r].Load()) }

// Remaining reports the unused headroom on r: Limit(r) - Used(r), floored
// at zero. ok is false when r is unlimited (no cap set), in which case n
// is meaningless. The adaptive portfolio uses this to clamp the cumulative
// grants it hands an arm to the headroom still left in the parent pool.
func (g *Governor) Remaining(r Resource) (n int, ok bool) {
	lim := g.limits.of(r)
	if lim <= 0 {
		return 0, false
	}
	n = lim - g.Used(r)
	if n < 0 {
		n = 0
	}
	return n, true
}

// Add settles n units against r without checking limits — the bulk
// accounting path for engines that enforce caps on hot-loop locals.
func (g *Governor) Add(r Resource, n int) {
	if n != 0 {
		g.used[r].Add(int64(n))
	}
}

// Interrupted is the pure cancellation checkpoint: it reports Cancelled or
// Deadline if the context is done and OK otherwise, touching no meters.
func (g *Governor) Interrupted() Outcome {
	select {
	case <-g.ctx.Done():
		if g.ctx.Err() == context.DeadlineExceeded {
			return Outcome{Code: CodeDeadline}
		}
		return Outcome{Code: CodeCancelled}
	default:
		return Outcome{}
	}
}

// Charge adds n units to r and reports how the run should proceed:
// cancellation and deadline take precedence (so a run that is both out of
// context and out of meter reports the context), then meter exhaustion once
// usage exceeds a non-zero limit. A typical round loop charges Rounds by 1
// at the top of each pass; with limit L the pass numbered L+1 is refused.
func (g *Governor) Charge(r Resource, n int) Outcome {
	used := g.used[r].Add(int64(n))
	if o := g.Interrupted(); o.Stopped() {
		return o
	}
	if lim := g.limits.of(r); lim > 0 && used > int64(lim) {
		return Exhausted(r)
	}
	return Outcome{}
}

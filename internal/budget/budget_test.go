package budget

import (
	"context"
	"testing"
	"time"
)

func TestChargeEnforcesLimit(t *testing.T) {
	g := New(nil, Limits{Rounds: 3})
	for i := 1; i <= 3; i++ {
		if o := g.Charge(Rounds, 1); o.Stopped() {
			t.Fatalf("round %d refused under limit 3: %s", i, o)
		}
	}
	o := g.Charge(Rounds, 1)
	if o != Exhausted(Rounds) {
		t.Fatalf("round 4 under limit 3: got %v, want exhausted:rounds", o)
	}
	if o.String() != "exhausted:rounds" {
		t.Errorf("String() = %q", o.String())
	}
	if o.Reason() != "rounds" {
		t.Errorf("Reason() = %q", o.Reason())
	}
	if g.Used(Rounds) != 4 {
		t.Errorf("Used(Rounds) = %d, want 4 (refused charges still settle)", g.Used(Rounds))
	}
}

func TestZeroLimitIsUnbounded(t *testing.T) {
	g := New(nil, Limits{})
	for i := 0; i < 1000; i++ {
		if o := g.Charge(Nodes, 1000); o.Stopped() {
			t.Fatalf("ungoverned meter stopped: %s", o)
		}
	}
	if g.Limit(Nodes) != 0 {
		t.Errorf("Limit(Nodes) = %d, want 0", g.Limit(Nodes))
	}
}

func TestCancellationBeatsExhaustion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{Words: 1})
	cancel()
	o := g.Charge(Words, 5)
	if o.Code != CodeCancelled {
		t.Fatalf("cancelled context charge: got %v, want cancelled", o)
	}
	if o.String() != "cancelled" || o.Reason() != "context" {
		t.Errorf("String/Reason = %q/%q", o.String(), o.Reason())
	}
	if got := g.Interrupted(); got.Code != CodeCancelled {
		t.Errorf("Interrupted = %v, want cancelled", got)
	}
}

func TestDeadlineOutcome(t *testing.T) {
	g, cancel := ForDuration(time.Nanosecond, Limits{})
	defer cancel()
	deadline := time.Now().Add(time.Second)
	for {
		if o := g.Interrupted(); o.Stopped() {
			if o.Code != CodeDeadline {
				t.Fatalf("expired timer: got %v, want deadline", o)
			}
			if o.String() != "deadline" || o.Reason() != "deadline" {
				t.Errorf("String/Reason = %q/%q", o.String(), o.Reason())
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline never observed")
		}
	}
}

func TestChildSharesContextNotMeters(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	parent := New(ctx, Limits{Rounds: 1})
	parent.Charge(Rounds, 1)
	child := parent.Child(Limits{Rounds: 2})
	if child.Used(Rounds) != 0 {
		t.Fatalf("child inherited meter usage: %d", child.Used(Rounds))
	}
	if o := child.Charge(Rounds, 1); o.Stopped() {
		t.Fatalf("fresh child meter refused first charge: %s", o)
	}
	cancel()
	if o := child.Interrupted(); o.Code != CodeCancelled {
		t.Fatalf("cancelling parent context did not reach child: %v", o)
	}
}

func TestResolve(t *testing.T) {
	def := Limits{Words: 42}
	g := Resolve(nil, def)
	if g.Limit(Words) != 42 {
		t.Errorf("Resolve(nil) limit = %d, want 42", g.Limit(Words))
	}
	own := New(nil, Limits{Words: 7})
	if Resolve(own, def) != own {
		t.Error("Resolve must return a non-nil governor unchanged")
	}
}

func TestResourceNames(t *testing.T) {
	want := map[Resource]string{Rounds: "rounds", Tuples: "tuples", Nodes: "nodes", Words: "words", Rules: "rules"}
	rs := Resources()
	if len(rs) != len(want) {
		t.Fatalf("Resources() has %d entries, want %d", len(rs), len(want))
	}
	for _, r := range rs {
		if r.String() != want[r] {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want[r])
		}
	}
}

func TestOutcomeZeroValueIsOK(t *testing.T) {
	var o Outcome
	if o.Stopped() || o.String() != "ok" || o.Reason() != "" {
		t.Errorf("zero Outcome: Stopped=%v String=%q Reason=%q", o.Stopped(), o.String(), o.Reason())
	}
}

package chase

import (
	"fmt"

	"templatedep/internal/budget"
	"templatedep/internal/td"
)

// Decide is the DECISION procedure for implication from full template
// dependencies (Sadri–Ullman): when every member of deps is full, the chase
// never invents values, so the canonical database stays inside the frozen
// antecedents' active domain and the chase terminates. Decide computes the
// a-priori bound, runs the chase with it, and returns a two-valued answer —
// no Unknown. The goal d0 may be embedded; only deps must be full.
//
// The bound can be astronomically large in theory (the product of
// per-column active-domain sizes); Decide refuses instances whose bound
// exceeds maxTuples (default 1,000,000) rather than silently degrade to a
// semi-decision.
func Decide(deps []*td.TD, d0 *td.TD, maxTuples int) (bool, error) {
	if !AllFull(deps) {
		return false, fmt.Errorf("chase: Decide requires full dependencies; use Implies for embedded sets")
	}
	if maxTuples <= 0 {
		maxTuples = 1_000_000
	}
	frozen, _ := d0.FrozenAntecedents()
	// Upper bound on the terminating chase: every tuple draws its values
	// from the frozen active domains.
	bound := 1
	for _, a := range d0.Schema().Attrs() {
		n := frozen.ActiveDomainSize(a)
		if n == 0 {
			n = 1
		}
		if bound > maxTuples/n {
			return false, fmt.Errorf("chase: decision bound exceeds %d tuples; raise maxTuples", maxTuples)
		}
		bound *= n
	}
	// Rounds are bounded by tuples added + 1.
	res, err := Implies(deps, d0, Options{
		Governor: budget.New(nil, budget.Limits{
			Rounds: bound + 1,
			Tuples: bound + frozen.Len() + 1,
		}),
		SemiNaive: true,
	})
	if err != nil {
		return false, err
	}
	switch res.Verdict {
	case Implied:
		return true, nil
	case NotImplied:
		return false, nil
	default:
		return false, fmt.Errorf("chase: internal error: bounded chase returned Unknown (rounds %d, tuples %d)",
			res.Stats.Rounds, res.Instance.Len())
	}
}

package chase

import (
	"fmt"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
)

// Core computation for chase results. The chase's canonical database is a
// UNIVERSAL solution but rarely a minimal one: restricted-chase runs leave
// behind tuples whose invented nulls are subsumed by others. The CORE is
// the minimal retract — the smallest subinstance C such that some
// homomorphism I -> C is the identity on C and on the designated constants
// (here: the frozen antecedent values). Cores are unique up to isomorphism
// and are the right canonical form for comparing chase results across
// engines and variants.
//
// An instance whose values split into constants and nulls is exactly a
// tableau with a partial seed, so the computation reuses the homomorphism
// engine: repeatedly look for a tuple whose removal still admits a
// constant-fixing homomorphism from the full instance into the remainder.

// CoreOf computes the core of inst, treating any value v in attribute a
// with v < constBound[a] as a constant (it must map to itself) and every
// other value as a null (it may map to any value of its column). The
// returned instance is a subinstance of inst.
//
// For a chase result obtained from frozen antecedents, pass the frozen
// instance's per-column value counts as constBound (see CoreOfResult).
func CoreOf(inst *relation.Instance, constBound []relation.Value) (*relation.Instance, error) {
	width := inst.Schema().Width()
	if len(constBound) != width {
		return nil, fmt.Errorf("chase: constBound has %d entries, want %d", len(constBound), width)
	}
	current := inst.Clone()
	for {
		removed := false
		tuples := current.Tuples()
		for i := 0; i < len(tuples); i++ {
			candidate := relation.NewInstance(inst.Schema())
			for j, t := range tuples {
				if j != i {
					candidate.MustAdd(t)
				}
			}
			if retractsInto(current, candidate, constBound) {
				current = candidate
				removed = true
				break
			}
		}
		if !removed {
			return current, nil
		}
	}
}

// retractsInto reports whether a homomorphism from src into dst exists that
// fixes every constant (values below constBound per column).
func retractsInto(src, dst *relation.Instance, constBound []relation.Value) bool {
	// View src as a tableau: each distinct value of a column becomes a
	// variable; constants are seeded to themselves.
	width := src.Schema().Width()
	rows := make([]tableau.VarTuple, src.Len())
	for i, t := range src.Tuples() {
		row := make(tableau.VarTuple, width)
		for a, v := range t {
			row[a] = tableau.Var(v)
		}
		rows[i] = row
	}
	tab, err := tableau.New(src.Schema(), rows)
	if err != nil {
		return false
	}
	// tableau.New renumbers variables; recover the mapping from original
	// values to renumbered vars by re-reading the rows.
	seed := tableau.NewAssignment(tab)
	for i, t := range src.Tuples() {
		nr := tab.Row(i)
		for a, v := range t {
			if v < constBound[a] {
				seed[a][nr[a]] = v
			}
		}
	}
	return tab.HasHomomorphism(dst, seed)
}

// CoreOfResult computes the core of a chase Result produced by Implies,
// fixing the goal's frozen antecedent values as constants.
func CoreOfResult(res Result, frozen *relation.Instance) (*relation.Instance, error) {
	width := frozen.Schema().Width()
	bound := make([]relation.Value, width)
	for _, a := range frozen.Schema().Attrs() {
		// Frozen antecedents use values 0..k-1 per column.
		bound[a] = relation.Value(frozen.ActiveDomainSize(a))
	}
	return CoreOf(res.Instance, bound)
}

package chase

import (
	"fmt"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

// ValidateTrace replays a chase trace against an independent copy of the
// start instance and checks that every recorded step is justified: the
// fired dependency's antecedents must match the instance built so far by a
// homomorphism whose universal conclusion positions agree with the added
// tuple. A valid trace whose final instance witnesses goal is an
// independently checkable PROOF of implication — the chase-side analogue of
// words.Derivation.Validate.
//
// Validation is deliberately decoupled from the engine: it never trusts
// Result internals, only the recorded tuples.
func ValidateTrace(deps []*td.TD, start *relation.Instance, trace []Fired, goal func(*relation.Instance) bool) error {
	inst := start.Clone()
	for i, f := range trace {
		if f.Dep < 0 || f.Dep >= len(deps) {
			return fmt.Errorf("chase: step %d: dependency index %d out of range", i, f.Dep)
		}
		d := deps[f.Dep]
		if len(f.Tuple) != d.Schema().Width() {
			return fmt.Errorf("chase: step %d: tuple width %d", i, len(f.Tuple))
		}
		if err := justify(d, inst, f.Tuple); err != nil {
			return fmt.Errorf("chase: step %d (%s): %w", i, d.Name(), err)
		}
		_, added, err := inst.Add(f.Tuple)
		if err != nil {
			return fmt.Errorf("chase: step %d: %w", i, err)
		}
		if added != f.Added {
			return fmt.Errorf("chase: step %d: Added flag recorded %v, replay says %v", i, f.Added, added)
		}
	}
	if goal != nil && !goal(inst) {
		return fmt.Errorf("chase: replayed instance does not witness the goal")
	}
	return nil
}

// justify checks that tup is a legal conclusion of d against inst: some
// homomorphism of d's antecedents binds every universal conclusion position
// to tup's value there. Existential positions may hold any value (the
// engine used fresh nulls; validation does not care which).
func justify(d *td.TD, inst *relation.Instance, tup relation.Tuple) error {
	concl := d.Conclusion()
	seed := tableau.NewAssignment(d.Tableau())
	// Bind conclusion variables that are universal (shared with the
	// antecedents) to the added tuple's values; tableau renumbering
	// guarantees antecedent variables come first per column.
	counts := make([]int, d.Schema().Width())
	for ri := 0; ri < d.NumAntecedents(); ri++ {
		for a, v := range d.Antecedent(ri) {
			if int(v)+1 > counts[a] {
				counts[a] = int(v) + 1
			}
		}
	}
	for a, v := range concl {
		if int(v) < counts[a] {
			seed[a][v] = tup[a]
		}
	}
	found := false
	d.Tableau().EachPrefixHomomorphism(inst, seed, d.NumAntecedents(), func(tableau.Assignment) bool {
		found = true
		return false
	})
	if !found {
		return fmt.Errorf("no antecedent match justifies tuple %v", tup)
	}
	return nil
}

// ProveImplies runs Implies with tracing enabled and, on an Implied
// verdict, independently validates the proof before returning it.
func ProveImplies(deps []*td.TD, d0 *td.TD, opt Options) (Result, error) {
	opt.Trace = true
	res, err := Implies(deps, d0, opt)
	if err != nil {
		return res, err
	}
	if res.Verdict != Implied {
		return res, nil
	}
	frozen, as := d0.FrozenAntecedents()
	concl := d0.Conclusion()
	goal := func(inst *relation.Instance) bool {
		return tableau.RowSatisfiable(concl, as, inst)
	}
	if err := ValidateTrace(deps, frozen, res.Trace, goal); err != nil {
		return res, fmt.Errorf("chase: internal error: proof failed validation: %w", err)
	}
	return res, nil
}

package chase_test

import (
	"fmt"

	"templatedep/internal/chase"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func ExampleImplies() {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	res, err := chase.Implies([]*td.TD{join}, goal, chase.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict)
	// Output: implied
}

func ExampleImplies_counterexample() {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "goal")
	res, err := chase.Implies([]*td.TD{join}, goal, chase.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Verdict, "fixpoint:", res.FixpointReached)
	// The fixpoint instance is a finite database satisfying join and
	// violating the goal.
	// Output: not-implied fixpoint: true
}

// Package chase implements the chase procedure for template dependencies:
// the canonical semidecision procedure for TD implication.
//
// To decide whether a set D of TDs logically implies a TD D0, freeze D0's
// antecedents into a database of distinct constants and close it under D:
// whenever some dependency's antecedents match but its conclusion is not
// yet witnessed, add the conclusion tuple, inventing fresh values (labeled
// nulls) for existentially quantified positions. D implies D0 exactly when
// the (possibly infinite) chase result contains a tuple matching D0's
// conclusion under the identity assignment of D0's universal variables.
//
// For FULL dependencies no fresh values are ever invented, so the chase
// terminates and implication is decidable (Sadri–Ullman). For embedded
// dependencies the chase may run forever — the paper proves it must, in
// general: TD inference is undecidable. The engine therefore runs in fair
// rounds under explicit budgets and returns a three-valued verdict:
//
//   - Implied: the conclusion appeared; the trace is a proof.
//   - NotImplied: a fixpoint was reached without the conclusion; the final
//     instance is a finite counterexample database satisfying D and
//     violating D0.
//   - Unknown: budget exhausted first.
//
// Fairness (round-robin over dependencies, breadth-first over trigger
// generations) makes the procedure complete in the limit: every logically
// implied conclusion is found given enough budget.
package chase

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"templatedep/internal/budget"
	"templatedep/internal/obs"
	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

// Variant selects the chase step discipline.
type Variant int

const (
	// Restricted fires a trigger only when the conclusion is not already
	// witnessed in the current instance (the standard chase).
	Restricted Variant = iota
	// Oblivious fires every trigger exactly once regardless of whether the
	// conclusion is already witnessed, deduplicating triggers by their
	// matched antecedent bindings.
	Oblivious
)

func (v Variant) String() string {
	if v == Oblivious {
		return "oblivious"
	}
	return "restricted"
}

// JoinStrategy selects how antecedent homomorphisms are enumerated.
type JoinStrategy int

const (
	// JoinIndex (the default) probes the instance's posting lists via
	// already-bound variables, ordering rows by selectivity
	// (tableau.EachRangeHomomorphism).
	JoinIndex JoinStrategy = iota
	// JoinScan is the naive nested-loop backtracking scan over all candidate
	// tuples per row, kept as the ablation reference.
	JoinScan
)

func (j JoinStrategy) String() string {
	if j == JoinScan {
		return "scan"
	}
	return "index"
}

// Options bounds and configures a chase run.
type Options struct {
	// Governor bounds the run: its rounds meter caps fair rounds, its
	// tuples meter caps the instance size, and its context is checked once
	// per round so cancellation latency is one round. Nil resolves to a
	// fresh governor with DefaultLimits per run.
	Governor *budget.Governor
	// Variant selects restricted (default) or oblivious stepping.
	Variant Variant
	// SemiNaive enables delta-driven trigger enumeration: after the first
	// round, only homomorphisms touching at least one tuple added in the
	// previous round are considered. Identical results, fewer joins.
	SemiNaive bool
	// Trace records every fired trigger.
	Trace bool
	// Workers > 1 enumerates triggers in parallel goroutines within each
	// round: across dependencies, and — on semi-naive rounds with the index
	// join — across contiguous shards of the delta within a single
	// dependency. The delta row is pinned to the outermost backtracking
	// level, so concatenating shard results in order reproduces the
	// sequential enumeration exactly: the chase is deterministic and
	// bit-identical for every Workers value.
	Workers int
	// Join selects index-driven (default) or naive-scan homomorphism
	// enumeration.
	Join JoinStrategy
	// KeepHistory records per-round statistics in Result.History; used by
	// the experiment harness to plot canonical-database growth.
	KeepHistory bool
	// Sink receives structured observability events (round boundaries,
	// per-dependency firings, delta sizes, nulls, the verdict). Nil — the
	// default — skips every emission; the engine only ever emits from its
	// sequential merge phase, so the event stream is bit-identical for
	// every Workers value. See docs/OBSERVABILITY.md for the schema.
	Sink obs.Sink
	// PerDepStats populates Stats.PerDep with per-dependency counters.
	// Off by default so the untraced hot path allocates nothing extra.
	PerDepStats bool
	// ProfileLabels tags the run's goroutines with runtime/pprof labels
	// (chase_phase=collect|apply), so CPU profiles of long runs split by
	// chase phase. Off by default: label swaps cost a few allocations per
	// round.
	ProfileLabels bool
	// WarmState, when non-nil, warm-starts the run from a snapshot captured
	// by an earlier run over the same dependency set and start instance
	// (see State). Verdicts, Stats, and tuple identity match a cold run
	// exactly; only wall-clock changes. Incompatible or ineligible states
	// (config mismatch, different start, budget-class rule, or an engine
	// configuration outside stateEligible) silently fall back to a cold
	// run. Warm starts take effect through Engine.Implies — a plain Chase
	// has no prefix-goal predicate to replay with — and Result.WarmStarted
	// reports whether the snapshot was actually used.
	WarmState *State
	// CaptureState asks the run to snapshot its last completed round into
	// Result.State for reuse via WarmState. Ignored (Result.State stays
	// nil) for configurations outside stateEligible and for runs that never
	// complete a round. Capture costs one prefix clone of the final
	// instance, paid once at the end of the run.
	CaptureState bool
}

// RoundStats snapshots one fair round for growth analysis.
type RoundStats struct {
	Round         int
	TriggersFired int
	TuplesAfter   int
	// TuplesAdded counts tuples new to the instance this round (fired
	// minus duplicates under the oblivious variant).
	TuplesAdded int
	// NullsCreated counts labeled nulls invented this round.
	NullsCreated int
}

// DefaultLimits are the meter caps an ungoverned chase runs under: 64 fair
// rounds and a 100000-tuple instance.
var DefaultLimits = budget.Limits{Rounds: 64, Tuples: 100000}

// interruptBatch is how many homomorphisms (buffered, merged, or
// materialized) pass between context polls inside a round. One poll per
// batch keeps the inner loops free of governor traffic while bounding
// cancellation latency even when a single round diverges.
const interruptBatch = 4096

// DefaultOptions returns sensible interactive defaults (semi-naive
// restricted chase under DefaultLimits).
func DefaultOptions() Options {
	return Options{SemiNaive: true}
}

// Verdict is the three-valued outcome of an implication check.
type Verdict int

const (
	// Unknown means budgets ran out before an answer.
	Unknown Verdict = iota
	// Implied means D logically implies D0 (certified by the chase trace).
	Implied
	// NotImplied means the chase reached a fixpoint without witnessing the
	// conclusion: the fixpoint is a finite counterexample.
	NotImplied
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not-implied"
	default:
		return "unknown"
	}
}

// Fired records one chase step for proof traces.
type Fired struct {
	// Dep is the index of the dependency in the input set.
	Dep int
	// Round is the fair round in which the trigger fired (1-based).
	Round int
	// Tuple is the tuple added (for Restricted, always new; for Oblivious it
	// may duplicate an existing tuple, in which case Added is false).
	Tuple relation.Tuple
	// Added reports whether the tuple was new to the instance.
	Added bool
}

// Stats reports work performed by a chase run.
type Stats struct {
	Rounds            int
	TriggersMatched   int
	TriggersFired     int
	TuplesAdded       int
	HomomorphismsSeen int
	// NullsCreated counts labeled nulls invented for existential
	// conclusion positions across the whole run.
	NullsCreated int
	// PerDep holds per-dependency counters, indexed like the engine's
	// input set; nil unless Options.PerDepStats was set.
	PerDep []DepStats
}

// DepStats are the per-dependency counters of one chase run.
type DepStats struct {
	// Matched counts triggers matched (antecedents satisfied, conclusion
	// missing — or, oblivious, not yet fired).
	Matched int
	// Fired counts triggers actually fired.
	Fired int
	// Added counts tuples the dependency contributed that were new.
	Added int
	// Nulls counts labeled nulls the dependency's conclusions invented.
	Nulls int
}

// Result is the outcome of a chase or implication run.
type Result struct {
	Verdict Verdict
	// Instance is the final chase instance (the canonical database).
	Instance *relation.Instance
	// FixpointReached reports that no trigger was applicable in the last
	// round: the instance satisfies every dependency.
	FixpointReached bool
	// Budget reports how the governor cut the run short; the zero value
	// (ok) means the run completed on its own. Stats and Instance are valid
	// — partial — either way.
	Budget budget.Outcome
	Stats  Stats
	// Trace is non-nil when Options.Trace was set.
	Trace []Fired
	// History is non-nil when Options.KeepHistory was set.
	History []RoundStats
	// State is the run's reusable snapshot when Options.CaptureState was
	// set and the configuration was eligible; nil otherwise. A warm-started
	// run that learned nothing new returns the snapshot it consumed.
	State *State
	// WarmStarted reports that the run reused Options.WarmState instead of
	// chasing from round 1.
	WarmStarted bool
}

// Engine runs chases of a fixed dependency set over one schema.
type Engine struct {
	schema *relation.Schema
	deps   []*td.TD
	opt    Options
	// widths[i] is the total variable count of deps[i]'s tableau — the flat
	// row width used by homBuffer.
	widths []int
}

// NewEngine validates that all dependencies share the schema.
func NewEngine(schema *relation.Schema, deps []*td.TD, opt Options) (*Engine, error) {
	widths := make([]int, len(deps))
	for i, d := range deps {
		if !d.Schema().Equal(schema) {
			return nil, fmt.Errorf("chase: dependency %d (%s) has a different schema", i, d.Name())
		}
		for _, a := range schema.Attrs() {
			widths[i] += d.Tableau().VarCount(a)
		}
	}
	return &Engine{schema: schema, deps: deps, opt: opt, widths: widths}, nil
}

// homBuffer accumulates antecedent homomorphisms as flat rows of variable
// values (column-major concatenation of the Assignment), so the collect
// phase streams matches without allocating an Assignment clone per
// homomorphism.
type homBuffer struct {
	vals  []relation.Value
	width int
	n     int
}

func (hb *homBuffer) add(as tableau.Assignment) {
	for _, col := range as {
		hb.vals = append(hb.vals, col...)
	}
	hb.n++
}

// load copies homomorphism i into the (correctly shaped) scratch
// assignment.
func (hb *homBuffer) load(i int, into tableau.Assignment) {
	off := i * hb.width
	for a := range into {
		copy(into[a], hb.vals[off:off+len(into[a])])
		off += len(into[a])
	}
}

// collectTask is one unit of the trigger-enumeration phase: one dependency,
// with row deltaRow restricted to instance indices [lo, hi). deltaRow < 0
// means full enumeration over [0, hi). Tasks are independent and
// read-only on the instance, so workers can run them in any order; results
// are consumed in task order, which reproduces sequential enumeration.
type collectTask struct {
	dep      int
	deltaRow int
	lo, hi   int
	homs     homBuffer
	// ns is the measured enumeration time of this task, folded into the
	// engine's cost table after the round. It steers next round's CLAIM
	// order only (heaviest first, so the dominant join starts immediately
	// instead of behind a queue of cheap tasks); the merge always consumes
	// results in task order, so timing never reaches the trace.
	ns int64
}

// Chase closes start under the engine's dependencies (start is cloned).
// The goal callback, if non-nil, is evaluated after the initial state and
// after every round; when it returns true the chase stops early with
// Verdict Implied.
//
// Chase has no prefix-goal predicate, so Options.WarmState is ignored here;
// warm starts flow through Engine.Implies. Options.CaptureState works from
// either entry point.
func (e *Engine) Chase(start *relation.Instance, goal func(*relation.Instance) bool) Result {
	return e.chase(start, goal, nil)
}

// chase is the engine core behind Chase and Implies. pgoal, when non-nil,
// evaluates the goal against the instance prefix of the given length — the
// capability warm-start replay needs to re-answer "was the goal witnessed
// after round i" from a snapshot without materializing each prefix.
func (e *Engine) chase(start *relation.Instance, goal func(*relation.Instance) bool, pgoal func(*relation.Instance, int) bool) Result {
	inst := start.Clone()
	res := Result{Instance: inst}
	sink := e.opt.Sink
	// Resolved per run, not per engine, so a reused engine never carries an
	// exhausted meter pool between chases. The tuple cap is fetched once
	// and compared against inst.Len() in the materialization loop — the hot
	// path never touches the governor.
	g := budget.Resolve(e.opt.Governor, DefaultLimits)
	tupleCap := g.Limit(budget.Tuples)
	roundsCap := g.Limit(budget.Rounds)
	// All emissions happen on this goroutine, in the sequential sections
	// of the round, so the stream is deterministic for every Workers
	// value.
	emitVerdict := func() {
		if sink != nil {
			sink.Event(obs.Event{Type: obs.EvVerdict, Src: "chase",
				Verdict: res.Verdict.String(), Round: res.Stats.Rounds, Tuples: res.Instance.Len()})
		}
	}
	// emitStop reports a budget stop (exhaustion or cancellation) just
	// before the verdict, so a cut-short trace still explains itself.
	emitStop := func() {
		if sink == nil || !res.Budget.Stopped() {
			return
		}
		typ := obs.EvBudgetExhausted
		if res.Budget.Code != budget.CodeExhausted {
			typ = obs.EvCancelled
		}
		sink.Event(obs.Event{Type: typ, Src: "chase",
			Round: res.Stats.Rounds, Resource: res.Budget.Reason()})
	}
	if e.opt.PerDepStats {
		res.Stats.PerDep = make([]DepStats, len(e.deps))
	}
	if e.opt.ProfileLabels {
		defer pprof.SetGoroutineLabels(context.Background())
	}

	// For the oblivious variant: triggers already fired, keyed by
	// dependency index and the antecedent-variable bindings.
	firedKeys := make(map[string]bool)
	var keyBuf []byte

	// Delta tracking for semi-naive evaluation.
	prevLen := 0 // tuples with index < prevLen existed before last round
	lastLen := inst.Len()
	startRound := 1

	capturing := e.opt.CaptureState && e.stateEligible()
	var capBounds []int
	var capCum []Stats

	// Warm-start path: replay a compatible snapshot's round boundaries
	// against this run's goal and budget, then answer directly or resume the
	// round loop where the snapshot left off. The replay mirrors the cold
	// run decision-for-decision — including governor accounting — so
	// verdicts, Stats, and tuple identity are exactly the cold run's.
	// Anything that would force a divergence (incompatible snapshot,
	// ineligible configuration, budget-class rule, a tuple cap that would
	// have cut the producing run mid-round) falls back to a cold run
	// instead.
	warm := e.opt.WarmState
	if warm != nil && !(pgoal != nil && e.stateEligible() &&
		warm.compatibleWith(e, start) &&
		warm.ReusableUnder(budget.Limits{Rounds: roundsCap, Tuples: tupleCap})) {
		warm = nil
	}
	if warm != nil {
		k := warm.Rounds()
		// emitWarm reports the skipped prefix as one event carrying its
		// cumulative totals, so a warm trace still replays to the same
		// Stats the run reports (TestTraceReplayMatchesStats invariant).
		emitWarm := func(rounds int, st Stats, tuples int) {
			res.WarmStarted = true
			if sink != nil {
				sink.Event(obs.Event{Type: obs.EvChaseWarmStart, Src: "chase",
					Round: rounds, Tuples: tuples, Matched: st.TriggersMatched,
					N: st.TriggersFired, Added: st.TuplesAdded,
					Homs: st.HomomorphismsSeen, Nulls: st.NullsCreated})
			}
		}
		// finishReplay pins the result to boundary i — exactly the state a
		// cold run holds after completing round i.
		finishReplay := func(i int) {
			res.Stats = warm.cum[i]
			res.Instance = warm.inst.ClonePrefix(warm.bounds[i])
			g.Add(budget.Rounds, i)
			g.Add(budget.Tuples, warm.cum[i].TuplesAdded)
			if capturing {
				res.State = warm
			}
		}
		bail := false
		for i := 0; i <= k; i++ {
			if i > 0 {
				if roundsCap > 0 && i > roundsCap {
					// The cold run's round-i charge would have been refused:
					// report its Unknown at boundary i-1, with the refused
					// charge settled the way Charge would have.
					finishReplay(i - 1)
					emitWarm(i-1, warm.cum[i-1], warm.bounds[i-1])
					g.Add(budget.Rounds, 1)
					res.Verdict = Unknown
					res.Budget = budget.Exhausted(budget.Rounds)
					emitStop()
					emitVerdict()
					return res
				}
				if tupleCap > 0 && warm.bounds[i] >= tupleCap {
					// This tuple cap would have stopped the cold run
					// mid-round — a state a boundary snapshot cannot
					// reproduce. Run cold.
					bail = true
					break
				}
			}
			if pgoal(warm.inst, warm.bounds[i]) {
				finishReplay(i)
				res.Verdict = Implied
				res.Stats.Rounds = i
				emitWarm(i, warm.cum[i], warm.bounds[i])
				emitVerdict()
				return res
			}
		}
		switch {
		case bail:
			warm = nil
		case warm.complete:
			// The snapshot's chase reached a fixpoint without the goal:
			// replay the final (empty) fixpoint round too.
			if roundsCap > 0 && k+1 > roundsCap {
				finishReplay(k)
				emitWarm(k, warm.cum[k], warm.bounds[k])
				g.Add(budget.Rounds, 1)
				res.Verdict = Unknown
				res.Budget = budget.Exhausted(budget.Rounds)
				emitStop()
				emitVerdict()
				return res
			}
			res.Stats = warm.final
			res.Instance = warm.inst.Clone()
			res.FixpointReached = true
			res.Verdict = NotImplied
			g.Add(budget.Rounds, k+1)
			g.Add(budget.Tuples, warm.final.TuplesAdded)
			if capturing {
				res.State = warm
			}
			emitWarm(k+1, warm.final, warm.bounds[k])
			emitVerdict()
			return res
		default:
			// Paused snapshot, goal not yet witnessed: restore the loop
			// state the producing run held at its last clean boundary and
			// continue chasing from the next round.
			inst = warm.inst.Clone()
			res.Instance = inst
			prevLen = warm.bounds[k-1]
			lastLen = warm.bounds[k]
			res.Stats = warm.cum[k]
			startRound = k + 1
			g.Add(budget.Rounds, k)
			g.Add(budget.Tuples, warm.cum[k].TuplesAdded)
			emitWarm(k, warm.cum[k], warm.bounds[k])
			if capturing {
				capBounds = append([]int(nil), warm.bounds...)
				capCum = append([]Stats(nil), warm.cum...)
			}
		}
	}
	if capturing && capBounds == nil {
		capBounds = []int{inst.Len()}
		capCum = []Stats{{}}
	}
	// captureAt snapshots the last completed round boundary into
	// Result.State. ClonePrefix (never a plain Clone) renormalizes the
	// fresh-value counters a cancelled merge phase may have advanced past
	// the boundary, so a resumed run numbers its nulls exactly as a cold one
	// would.
	captureAt := func(complete bool) {
		if !capturing {
			return
		}
		k := len(capBounds) - 1
		if k == 0 && !complete {
			return
		}
		st := &State{
			inst:        inst.ClonePrefix(capBounds[k]),
			bounds:      capBounds,
			cum:         capCum,
			complete:    complete,
			stopped:     res.Budget.Code == budget.CodeExhausted,
			classRounds: roundsCap,
			classTuples: tupleCap,
			cfg:         e.stateCfg(),
		}
		if complete {
			st.final = res.Stats
		}
		res.State = st
	}

	if startRound == 1 && goal != nil && goal(inst) {
		res.Verdict = Implied
		res.FixpointReached = false
		emitVerdict()
		return res
	}

	// Per-dependency scratch assignments for replaying buffered
	// homomorphisms, reused across rounds.
	scratch := make([]tableau.Assignment, len(e.deps))
	shardFallbackNoted := false
	// taskCost remembers the measured enumeration time of each (dependency,
	// delta position) from the previous round. Chain-style workloads
	// concentrate a round's cost in one deep backtracking join; claiming
	// heaviest-first keeps that task off the queue's tail so the round's
	// wall clock approaches max(heaviest, total/Workers). The schedule is
	// timing-driven and therefore nondeterministic, but it only reorders
	// CLAIMS — the merge consumes results in task order, so verdicts,
	// Stats, and traces are unaffected.
	var taskCost map[[2]int]int64

	for round := startRound; ; round++ {
		// One governor checkpoint per fair round: the charge refuses the
		// round when the rounds meter is spent or the context is done, so a
		// cancelled run stops within one round and Stats still counts only
		// completed rounds.
		if o := g.Charge(budget.Rounds, 1); o.Stopped() {
			res.Verdict = Unknown
			res.Budget = o
			captureAt(false)
			emitStop()
			emitVerdict()
			return res
		}
		res.Stats.Rounds = round
		type pending struct {
			dep int
			tup relation.Tuple
		}
		var adds []pending

		// Phase 1: enumerate antecedent homomorphisms (read-only on the
		// instance). The work is cut into tasks — one per dependency on full
		// rounds; one per (dependency, delta position, delta shard) on
		// semi-naive rounds — so Workers > 1 parallelizes both across
		// dependencies and within a single dependency's delta.
		useDelta := e.opt.SemiNaive && round > 1
		deltaLen := lastLen - prevLen
		if sink != nil {
			sink.Event(obs.Event{Type: obs.EvRoundStart, Src: "chase", Round: round, Tuples: lastLen})
			if useDelta {
				sink.Event(obs.Event{Type: obs.EvDeltaSize, Src: "chase", Round: round, N: deltaLen})
			}
		}
		if e.opt.ProfileLabels {
			// Worker goroutines spawned below inherit the label.
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("chase_phase", "collect")))
		}
		var tasks []collectTask
		for di, d := range e.deps {
			k := d.NumAntecedents()
			if !useDelta {
				tasks = append(tasks, collectTask{dep: di, deltaRow: -1, lo: 0, hi: lastLen})
				continue
			}
			// Delta decomposition: homomorphism position j maps to a tuple
			// added in the previous round, earlier rows to older tuples,
			// later rows to anything. Sharding splits the delta window of
			// row j; with the index join that row is pinned outermost, so
			// shard concatenation equals the unsharded enumeration.
			shards := 1
			if e.opt.Workers > 1 && deltaLen > 1 {
				if e.opt.Join == JoinIndex {
					shards = e.opt.Workers
					if shards > deltaLen {
						shards = deltaLen
					}
				} else if !shardFallbackNoted {
					// The scan join cannot pin the delta row to the outermost
					// backtracking level, so intra-dependency sharding is
					// index-join only: record the serial fallback once per
					// run. Dependency-level parallelism still applies. This
					// is the one chase event whose presence depends on the
					// Workers option.
					shardFallbackNoted = true
					if sink != nil {
						sink.Event(obs.Event{Type: obs.EvShardFallback, Src: "chase",
							Round: round, N: e.opt.Workers})
					}
				}
			}
			if deltaLen == 0 {
				continue
			}
			for j := 0; j < k; j++ {
				for s := 0; s < shards; s++ {
					tasks = append(tasks, collectTask{
						dep:      di,
						deltaRow: j,
						lo:       prevLen + deltaLen*s/shards,
						hi:       prevLen + deltaLen*(s+1)/shards,
					})
				}
			}
		}
		runTask := func(t *collectTask) {
			d := e.deps[t.dep]
			k := d.NumAntecedents()
			t.homs.width = e.widths[t.dep]
			emit := func(as tableau.Assignment) bool {
				t.homs.add(as)
				// A single round's enumeration is unbounded on divergent
				// instances, so cancellation latency cannot be per-round
				// only: every batch of buffered homomorphisms polls the
				// context (cheap, lock-free, safe from worker goroutines)
				// and aborts this task's join. Aborted buffers are
				// discarded before any event is emitted, so the trace
				// stays closed.
				if t.homs.n%interruptBatch == 0 && g.Interrupted().Stopped() {
					return false
				}
				return true
			}
			if e.opt.Join == JoinScan {
				cands := make([][]relation.Tuple, k)
				for i := 0; i < k; i++ {
					switch {
					case t.deltaRow < 0 || i > t.deltaRow:
						cands[i] = inst.Tuples()[:lastLen]
					case i < t.deltaRow:
						cands[i] = inst.Tuples()[:prevLen]
					default:
						cands[i] = inst.Tuples()[t.lo:t.hi]
					}
				}
				d.Tableau().EachCandidateHomomorphism(cands, nil, emit)
				return
			}
			ranges := make([]tableau.Range, k)
			for i := 0; i < k; i++ {
				switch {
				case t.deltaRow < 0 || i > t.deltaRow:
					ranges[i] = tableau.Range{Lo: 0, Hi: lastLen}
				case i < t.deltaRow:
					ranges[i] = tableau.Range{Lo: 0, Hi: prevLen}
				default:
					ranges[i] = tableau.Range{Lo: t.lo, Hi: t.hi}
				}
			}
			d.Tableau().EachRangeHomomorphism(inst, ranges, t.deltaRow, nil, emit)
		}
		if e.opt.Workers > 1 && len(tasks) > 1 {
			// Workers claim tasks off a shared atomic cursor (the psearch
			// work-pool idiom): no channel hop per task, no dispatcher
			// goroutine, workers capped at the task count. Claim order does
			// not affect the output — the merge below consumes results in
			// task order — so the cursor walks a permutation sorted by last
			// round's measured cost, heaviest first.
			order := make([]int, len(tasks))
			for i := range order {
				order[i] = i
			}
			if len(taskCost) > 0 {
				cost := func(i int) int64 {
					return taskCost[[2]int{tasks[i].dep, tasks[i].deltaRow}]
				}
				sort.SliceStable(order, func(a, b int) bool {
					return cost(order[a]) > cost(order[b])
				})
			}
			workers := e.opt.Workers
			if workers > len(tasks) {
				workers = len(tasks)
			}
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						ti := int(cursor.Add(1)) - 1
						if ti >= len(tasks) {
							return
						}
						t := &tasks[order[ti]]
						start := time.Now()
						runTask(t)
						t.ns = int64(time.Since(start))
					}
				}()
			}
			wg.Wait()
			if taskCost == nil {
				taskCost = make(map[[2]int]int64, len(tasks))
			} else {
				clear(taskCost)
			}
			for i := range tasks {
				taskCost[[2]int{tasks[i].dep, tasks[i].deltaRow}] += tasks[i].ns
			}
		} else {
			for ti := range tasks {
				runTask(&tasks[ti])
			}
		}

		// Phase 2: sequential, deterministic merge in task order — trigger
		// checks against the round-start snapshot, then materialization.
		if e.opt.ProfileLabels {
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels("chase_phase", "apply")))
		}
		var matchedRound, homsRound, nullsRound, firedRound, addedRound int
		// emitRoundTail closes the round's event group; it is also called
		// on early exits so partial rounds replay to the reported Stats.
		emitRoundTail := func() {
			if sink == nil {
				return
			}
			if nullsRound > 0 {
				sink.Event(obs.Event{Type: obs.EvNullsCreated, Src: "chase", Round: round, N: nullsRound})
			}
			sink.Event(obs.Event{Type: obs.EvTuplesAdded, Src: "chase", Round: round, N: addedRound})
			sink.Event(obs.Event{Type: obs.EvRoundEnd, Src: "chase", Round: round,
				Tuples: inst.Len(), N: firedRound, Matched: matchedRound, Homs: homsRound})
		}
		// stopMidRound abandons the round in flight: whatever was already
		// counted is flushed as a well-formed round tail, then the stop and
		// verdict events close the trace, so a cancelled run still replays
		// to exactly the Stats it reports.
		stopMidRound := func(o budget.Outcome) Result {
			res.Verdict = Unknown
			res.Budget = o
			captureAt(false)
			emitRoundTail()
			emitStop()
			emitVerdict()
			return res
		}
		if o := g.Interrupted(); o.Stopped() {
			return stopMidRound(o)
		}
		var stopped budget.Outcome
	merge:
		for ti := range tasks {
			t := &tasks[ti]
			if t.homs.n == 0 {
				continue
			}
			d := e.deps[t.dep]
			if scratch[t.dep] == nil {
				scratch[t.dep] = tableau.NewAssignment(d.Tableau())
			}
			as := scratch[t.dep]
			for i := 0; i < t.homs.n; i++ {
				t.homs.load(i, as)
				res.Stats.HomomorphismsSeen++
				homsRound++
				if homsRound%interruptBatch == 0 {
					if o := g.Interrupted(); o.Stopped() {
						stopped = o
						break merge
					}
				}
				if e.opt.Variant == Oblivious {
					keyBuf = appendTriggerKey(keyBuf[:0], t.dep, as)
					if firedKeys[string(keyBuf)] {
						continue
					}
					firedKeys[string(keyBuf)] = true
				} else if tableau.RowSatisfiable(d.Conclusion(), as, inst) {
					continue
				}
				res.Stats.TriggersMatched++
				matchedRound++
				tup, nulls := conclusionTuple(d, as, inst)
				res.Stats.NullsCreated += nulls
				nullsRound += nulls
				if res.Stats.PerDep != nil {
					res.Stats.PerDep[t.dep].Matched++
					res.Stats.PerDep[t.dep].Nulls += nulls
				}
				adds = append(adds, pending{dep: t.dep, tup: tup})
			}
		}
		if stopped.Stopped() {
			return stopMidRound(stopped)
		}

		if len(adds) == 0 {
			res.FixpointReached = true
			if goal == nil {
				res.Verdict = Unknown
			} else {
				res.Verdict = NotImplied
			}
			captureAt(true)
			emitRoundTail()
			emitVerdict()
			return res
		}
		// Materialization walks adds in task order, so each dependency's
		// pending tuples form one contiguous run: per-dependency firing
		// events aggregate into three scalars and flush at run boundaries,
		// costing no allocations.
		curDep, curFired, curAdded := -1, 0, 0
		flushDep := func() {
			if sink != nil && curDep >= 0 {
				sink.Event(obs.Event{Type: obs.EvDepFired, Src: "chase", Round: round,
					Dep: curDep, N: curFired, Added: curAdded})
			}
			curFired, curAdded = 0, 0
		}
		for ai, p := range adds {
			if tupleCap > 0 && inst.Len() >= tupleCap {
				res.Budget = budget.Exhausted(budget.Tuples)
				g.Add(budget.Tuples, addedRound)
				flushDep()
				return stopMidRound(res.Budget)
			}
			if ai%interruptBatch == interruptBatch-1 {
				if o := g.Interrupted(); o.Stopped() {
					g.Add(budget.Tuples, addedRound)
					flushDep()
					return stopMidRound(o)
				}
			}
			if p.dep != curDep {
				flushDep()
				curDep = p.dep
			}
			_, added, err := inst.Add(p.tup)
			if err != nil {
				// Cannot happen: tuples are built against the schema.
				panic(err)
			}
			res.Stats.TriggersFired++
			firedRound++
			curFired++
			if added {
				res.Stats.TuplesAdded++
				addedRound++
				curAdded++
			}
			if res.Stats.PerDep != nil {
				res.Stats.PerDep[p.dep].Fired++
				if added {
					res.Stats.PerDep[p.dep].Added++
				}
			}
			if e.opt.Trace {
				res.Trace = append(res.Trace, Fired{Dep: p.dep, Round: round, Tuple: p.tup.Clone(), Added: added})
			}
		}
		flushDep()
		emitRoundTail()
		g.Add(budget.Tuples, addedRound)
		prevLen = lastLen
		lastLen = inst.Len()
		if capturing {
			capBounds = append(capBounds, lastLen)
			capCum = append(capCum, res.Stats)
		}
		if e.opt.KeepHistory {
			res.History = append(res.History, RoundStats{
				Round:         round,
				TriggersFired: len(adds),
				TuplesAfter:   inst.Len(),
				TuplesAdded:   addedRound,
				NullsCreated:  nullsRound,
			})
		}
		if goal != nil && goal(inst) {
			res.Verdict = Implied
			captureAt(false)
			emitVerdict()
			return res
		}
	}
}

// conclusionTuple materializes d's conclusion under as, inventing fresh
// values for unbound (existential) positions; nulls reports how many were
// invented.
func conclusionTuple(d *td.TD, as tableau.Assignment, inst *relation.Instance) (tup relation.Tuple, nulls int) {
	concl := d.Conclusion()
	tup = make(relation.Tuple, len(concl))
	for a, v := range concl {
		if bound := as[a][v]; bound != tableau.Unbound {
			tup[a] = bound
		} else {
			tup[a] = inst.FreshValue(relation.Attr(a))
			nulls++
		}
	}
	return tup, nulls
}

// appendTriggerKey canonicalizes a trigger for oblivious deduplication by
// encoding the dependency index and every variable value (Unbound included,
// so the encoding is positional and unambiguous) into buf. The caller
// reuses the buffer; map lookups via string(buf) do not allocate, and the
// string is materialized only when a new key is inserted — unlike the old
// per-variable fmt.Sprintf concatenation, which was quadratic in the key
// length.
func appendTriggerKey(buf []byte, di int, as tableau.Assignment) []byte {
	buf = strconv.AppendInt(buf, int64(di), 10)
	for a := range as {
		buf = append(buf, '|')
		for _, val := range as[a] {
			buf = strconv.AppendInt(buf, int64(val), 10)
			buf = append(buf, ',')
		}
	}
	return buf
}

// Implies checks whether the engine's dependency set logically implies d0,
// by chasing d0's frozen antecedents and watching for its conclusion.
func (e *Engine) Implies(d0 *td.TD) (Result, error) {
	if !d0.Schema().Equal(e.schema) {
		return Result{}, fmt.Errorf("chase: goal dependency has a different schema")
	}
	frozen, as := d0.FrozenAntecedents()
	concl := d0.Conclusion()
	goal := func(inst *relation.Instance) bool {
		return tableau.RowSatisfiable(concl, as, inst)
	}
	// The prefix-goal predicate lets a warm start re-answer "was the
	// conclusion witnessed after round i" against snapshot boundaries.
	pgoal := func(inst *relation.Instance, limit int) bool {
		return tableau.RowSatisfiableWithin(concl, as, inst, limit)
	}
	return e.chase(frozen, goal, pgoal), nil
}

// Implies is a convenience one-shot wrapper around Engine.Implies.
func Implies(deps []*td.TD, d0 *td.TD, opt Options) (Result, error) {
	e, err := NewEngine(d0.Schema(), deps, opt)
	if err != nil {
		return Result{}, err
	}
	return e.Implies(d0)
}

// AllFull reports whether every dependency in the set is full; for full
// sets the chase terminates, so Implies is a decision procedure.
func AllFull(deps []*td.TD) bool {
	for _, d := range deps {
		if !d.IsFull() {
			return false
		}
	}
	return true
}

// Package chase implements the chase procedure for template dependencies:
// the canonical semidecision procedure for TD implication.
//
// To decide whether a set D of TDs logically implies a TD D0, freeze D0's
// antecedents into a database of distinct constants and close it under D:
// whenever some dependency's antecedents match but its conclusion is not
// yet witnessed, add the conclusion tuple, inventing fresh values (labeled
// nulls) for existentially quantified positions. D implies D0 exactly when
// the (possibly infinite) chase result contains a tuple matching D0's
// conclusion under the identity assignment of D0's universal variables.
//
// For FULL dependencies no fresh values are ever invented, so the chase
// terminates and implication is decidable (Sadri–Ullman). For embedded
// dependencies the chase may run forever — the paper proves it must, in
// general: TD inference is undecidable. The engine therefore runs in fair
// rounds under explicit budgets and returns a three-valued verdict:
//
//   - Implied: the conclusion appeared; the trace is a proof.
//   - NotImplied: a fixpoint was reached without the conclusion; the final
//     instance is a finite counterexample database satisfying D and
//     violating D0.
//   - Unknown: budget exhausted first.
//
// Fairness (round-robin over dependencies, breadth-first over trigger
// generations) makes the procedure complete in the limit: every logically
// implied conclusion is found given enough budget.
package chase

import (
	"fmt"
	"sync"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

// Variant selects the chase step discipline.
type Variant int

const (
	// Restricted fires a trigger only when the conclusion is not already
	// witnessed in the current instance (the standard chase).
	Restricted Variant = iota
	// Oblivious fires every trigger exactly once regardless of whether the
	// conclusion is already witnessed, deduplicating triggers by their
	// matched antecedent bindings.
	Oblivious
)

func (v Variant) String() string {
	if v == Oblivious {
		return "oblivious"
	}
	return "restricted"
}

// Options bounds and configures a chase run.
type Options struct {
	// MaxRounds caps the number of fair rounds. <= 0 means 64.
	MaxRounds int
	// MaxTuples caps the instance size. <= 0 means 100000.
	MaxTuples int
	// Variant selects restricted (default) or oblivious stepping.
	Variant Variant
	// SemiNaive enables delta-driven trigger enumeration: after the first
	// round, only homomorphisms touching at least one tuple added in the
	// previous round are considered. Identical results, fewer joins.
	SemiNaive bool
	// Trace records every fired trigger.
	Trace bool
	// Workers > 1 enumerates triggers for different dependencies in
	// parallel goroutines within each round. Results are merged in
	// dependency order, so the chase remains deterministic.
	Workers int
	// KeepHistory records per-round statistics in Result.History; used by
	// the experiment harness to plot canonical-database growth.
	KeepHistory bool
}

// RoundStats snapshots one fair round for growth analysis.
type RoundStats struct {
	Round         int
	TriggersFired int
	TuplesAfter   int
}

// DefaultOptions returns sensible interactive defaults (semi-naive
// restricted chase).
func DefaultOptions() Options {
	return Options{MaxRounds: 64, MaxTuples: 100000, SemiNaive: true}
}

// Verdict is the three-valued outcome of an implication check.
type Verdict int

const (
	// Unknown means budgets ran out before an answer.
	Unknown Verdict = iota
	// Implied means D logically implies D0 (certified by the chase trace).
	Implied
	// NotImplied means the chase reached a fixpoint without witnessing the
	// conclusion: the fixpoint is a finite counterexample.
	NotImplied
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not-implied"
	default:
		return "unknown"
	}
}

// Fired records one chase step for proof traces.
type Fired struct {
	// Dep is the index of the dependency in the input set.
	Dep int
	// Round is the fair round in which the trigger fired (1-based).
	Round int
	// Tuple is the tuple added (for Restricted, always new; for Oblivious it
	// may duplicate an existing tuple, in which case Added is false).
	Tuple relation.Tuple
	// Added reports whether the tuple was new to the instance.
	Added bool
}

// Stats reports work performed by a chase run.
type Stats struct {
	Rounds            int
	TriggersMatched   int
	TriggersFired     int
	TuplesAdded       int
	HomomorphismsSeen int
}

// Result is the outcome of a chase or implication run.
type Result struct {
	Verdict Verdict
	// Instance is the final chase instance (the canonical database).
	Instance *relation.Instance
	// FixpointReached reports that no trigger was applicable in the last
	// round: the instance satisfies every dependency.
	FixpointReached bool
	Stats           Stats
	// Trace is non-nil when Options.Trace was set.
	Trace []Fired
	// History is non-nil when Options.KeepHistory was set.
	History []RoundStats
}

// Engine runs chases of a fixed dependency set over one schema.
type Engine struct {
	schema *relation.Schema
	deps   []*td.TD
	opt    Options
}

// NewEngine validates that all dependencies share the schema.
func NewEngine(schema *relation.Schema, deps []*td.TD, opt Options) (*Engine, error) {
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 64
	}
	if opt.MaxTuples <= 0 {
		opt.MaxTuples = 100000
	}
	for i, d := range deps {
		if !d.Schema().Equal(schema) {
			return nil, fmt.Errorf("chase: dependency %d (%s) has a different schema", i, d.Name())
		}
	}
	return &Engine{schema: schema, deps: deps, opt: opt}, nil
}

// Chase closes start under the engine's dependencies (start is cloned).
// The goal callback, if non-nil, is evaluated after the initial state and
// after every round; when it returns true the chase stops early with
// Verdict Implied.
func (e *Engine) Chase(start *relation.Instance, goal func(*relation.Instance) bool) Result {
	inst := start.Clone()
	res := Result{Instance: inst}
	if goal != nil && goal(inst) {
		res.Verdict = Implied
		res.FixpointReached = false
		return res
	}

	// For the oblivious variant: triggers already fired, keyed by
	// dependency index and the antecedent-variable bindings.
	firedKeys := make(map[string]bool)

	// Delta tracking for semi-naive evaluation.
	prevLen := 0 // tuples with index < prevLen existed before last round
	lastLen := inst.Len()

	for round := 1; round <= e.opt.MaxRounds; round++ {
		res.Stats.Rounds = round
		type pending struct {
			dep int
			tup relation.Tuple
		}
		var adds []pending

		// Phase 1: enumerate antecedent homomorphisms per dependency
		// (read-only on the instance, so dependencies can run in parallel).
		collect := func(di int) []tableau.Assignment {
			d := e.deps[di]
			k := d.NumAntecedents()
			var homs []tableau.Assignment
			emit := func(as tableau.Assignment) bool {
				homs = append(homs, as.Clone())
				return true
			}
			if e.opt.SemiNaive && round > 1 {
				// Delta decomposition: at least one row maps to a tuple
				// added in the previous round (index in [prevLen, lastLen)).
				all := inst.Tuples()[:lastLen]
				old := inst.Tuples()[:prevLen]
				delta := inst.Tuples()[prevLen:lastLen]
				if len(delta) == 0 {
					return nil
				}
				for j := 0; j < k; j++ {
					cands := make([][]relation.Tuple, k)
					for i := 0; i < k; i++ {
						switch {
						case i < j:
							cands[i] = old
						case i == j:
							cands[i] = delta
						default:
							cands[i] = all
						}
					}
					d.Tableau().EachCandidateHomomorphism(cands, nil, emit)
				}
			} else {
				d.Tableau().EachPrefixHomomorphism(inst, nil, k, emit)
			}
			return homs
		}
		homsByDep := make([][]tableau.Assignment, len(e.deps))
		if e.opt.Workers > 1 && len(e.deps) > 1 {
			var wg sync.WaitGroup
			next := make(chan int)
			for w := 0; w < e.opt.Workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for di := range next {
						homsByDep[di] = collect(di)
					}
				}()
			}
			for di := range e.deps {
				next <- di
			}
			close(next)
			wg.Wait()
		} else {
			for di := range e.deps {
				homsByDep[di] = collect(di)
			}
		}

		// Phase 2: sequential, deterministic merge — trigger checks against
		// the round-start snapshot, then materialization.
		for di, homs := range homsByDep {
			d := e.deps[di]
			for _, as := range homs {
				res.Stats.HomomorphismsSeen++
				if e.opt.Variant == Oblivious {
					key := triggerKey(di, d, as)
					if firedKeys[key] {
						continue
					}
					firedKeys[key] = true
				} else if tableau.RowSatisfiable(d.Conclusion(), as, inst) {
					continue
				}
				res.Stats.TriggersMatched++
				adds = append(adds, pending{dep: di, tup: conclusionTuple(d, as, inst)})
			}
		}

		if len(adds) == 0 {
			res.FixpointReached = true
			if goal == nil {
				res.Verdict = Unknown
			} else {
				res.Verdict = NotImplied
			}
			return res
		}
		for _, p := range adds {
			if inst.Len() >= e.opt.MaxTuples {
				res.Verdict = Unknown
				return res
			}
			_, added, err := inst.Add(p.tup)
			if err != nil {
				// Cannot happen: tuples are built against the schema.
				panic(err)
			}
			res.Stats.TriggersFired++
			if added {
				res.Stats.TuplesAdded++
			}
			if e.opt.Trace {
				res.Trace = append(res.Trace, Fired{Dep: p.dep, Round: round, Tuple: p.tup.Clone(), Added: added})
			}
		}
		prevLen = lastLen
		lastLen = inst.Len()
		if e.opt.KeepHistory {
			res.History = append(res.History, RoundStats{
				Round:         round,
				TriggersFired: len(adds),
				TuplesAfter:   inst.Len(),
			})
		}
		if goal != nil && goal(inst) {
			res.Verdict = Implied
			return res
		}
	}
	res.Verdict = Unknown
	return res
}

// conclusionTuple materializes d's conclusion under as, inventing fresh
// values for unbound (existential) positions.
func conclusionTuple(d *td.TD, as tableau.Assignment, inst *relation.Instance) relation.Tuple {
	concl := d.Conclusion()
	tup := make(relation.Tuple, len(concl))
	for a, v := range concl {
		if bound := as[a][v]; bound != tableau.Unbound {
			tup[a] = bound
		} else {
			tup[a] = inst.FreshValue(relation.Attr(a))
		}
	}
	return tup
}

// triggerKey canonicalizes a trigger for oblivious deduplication: the
// dependency index plus the values of every bound variable.
func triggerKey(di int, d *td.TD, as tableau.Assignment) string {
	key := fmt.Sprintf("%d:", di)
	for a := range as {
		for v, val := range as[a] {
			if val != tableau.Unbound {
				key += fmt.Sprintf("%d.%d=%d;", a, v, int(val))
			}
		}
	}
	return key
}

// Implies checks whether the engine's dependency set logically implies d0,
// by chasing d0's frozen antecedents and watching for its conclusion.
func (e *Engine) Implies(d0 *td.TD) (Result, error) {
	if !d0.Schema().Equal(e.schema) {
		return Result{}, fmt.Errorf("chase: goal dependency has a different schema")
	}
	frozen, as := d0.FrozenAntecedents()
	concl := d0.Conclusion()
	goal := func(inst *relation.Instance) bool {
		return tableau.RowSatisfiable(concl, as, inst)
	}
	res := e.Chase(frozen, goal)
	return res, nil
}

// Implies is a convenience one-shot wrapper around Engine.Implies.
func Implies(deps []*td.TD, d0 *td.TD, opt Options) (Result, error) {
	e, err := NewEngine(d0.Schema(), deps, opt)
	if err != nil {
		return Result{}, err
	}
	return e.Implies(d0)
}

// AllFull reports whether every dependency in the set is full; for full
// sets the chase terminates, so Implies is a decision procedure.
func AllFull(deps []*td.TD) bool {
	for _, d := range deps {
		if !d.IsFull() {
			return false
		}
	}
	return true
}

package chase

import (
	"fmt"

	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

// This file contains the dependency-set analyses that the paper's
// introduction motivates: "A solution to the inference problem carries with
// it the ability to determine whether two sets of dependencies are
// equivalent, whether a set of dependencies is redundant, etc." All of them
// reduce to Implies and inherit its three-valued nature: for full TDs they
// are decision procedures, for embedded TDs they may return Unknown.

// ImpliesSet reports whether deps imply every member of goals: Implied only
// if all goals are implied; NotImplied if some goal is definitively not
// implied; Unknown otherwise.
func ImpliesSet(deps, goals []*td.TD, opt Options) (Verdict, error) {
	sawUnknown := false
	for _, g := range goals {
		res, err := Implies(deps, g, opt)
		if err != nil {
			return Unknown, err
		}
		switch res.Verdict {
		case NotImplied:
			return NotImplied, nil
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return Implied, nil
}

// Equivalent reports whether two dependency sets are logically equivalent
// (each implies every member of the other). Implied means equivalent.
func Equivalent(a, b []*td.TD, opt Options) (Verdict, error) {
	ab, err := ImpliesSet(a, b, opt)
	if err != nil {
		return Unknown, err
	}
	if ab == NotImplied {
		return NotImplied, nil
	}
	ba, err := ImpliesSet(b, a, opt)
	if err != nil {
		return Unknown, err
	}
	if ba == NotImplied {
		return NotImplied, nil
	}
	if ab == Implied && ba == Implied {
		return Implied, nil
	}
	return Unknown, nil
}

// RedundantMembers returns the indices of dependencies implied by the other
// members of the set (each checked against the set with all PREVIOUSLY
// found redundancies removed, so removing all reported indices at once is
// sound). Unknown verdicts are conservatively treated as non-redundant.
func RedundantMembers(deps []*td.TD, opt Options) ([]int, error) {
	var redundant []int
	removed := make(map[int]bool)
	for i, d := range deps {
		rest := make([]*td.TD, 0, len(deps)-1)
		for j, o := range deps {
			if j != i && !removed[j] {
				rest = append(rest, o)
			}
		}
		res, err := Implies(rest, d, opt)
		if err != nil {
			return nil, err
		}
		if res.Verdict == Implied {
			redundant = append(redundant, i)
			removed[i] = true
		}
	}
	return redundant, nil
}

// MinimizeAntecedents greedily removes antecedent rows of d while the
// reduced dependency remains equivalent to the original. (Equivalence must
// be checked in BOTH directions: dropping a premise strengthens the
// dependency only when the dropped row introduces no conclusion variables —
// otherwise those become existential and the reduced form can even be
// trivial.) Unknown verdicts keep the row. The result uses d's schema and
// name with a "-min" suffix when anything was removed.
func MinimizeAntecedents(d *td.TD, opt Options) (*td.TD, error) {
	rows := make([]tableau.VarTuple, 0, d.NumAntecedents())
	for i := 0; i < d.NumAntecedents(); i++ {
		rows = append(rows, d.Antecedent(i))
	}
	concl := d.Conclusion()
	changed := false
	for i := 0; i < len(rows) && len(rows) > 1; {
		candidateRows := make([]tableau.VarTuple, 0, len(rows)-1)
		candidateRows = append(candidateRows, rows[:i]...)
		candidateRows = append(candidateRows, rows[i+1:]...)
		cand, err := td.New(d.Schema(), candidateRows, concl, d.Name())
		if err != nil {
			return nil, fmt.Errorf("chase: minimization produced an invalid TD: %w", err)
		}
		verdict, err := Equivalent([]*td.TD{d}, []*td.TD{cand}, opt)
		if err != nil {
			return nil, err
		}
		if verdict == Implied {
			rows = candidateRows
			changed = true
			// Re-scan from the start: removals can enable further removals.
			i = 0
			continue
		}
		i++
	}
	if !changed {
		return d, nil
	}
	name := d.Name()
	if name != "" {
		name += "-min"
	}
	return td.New(d.Schema(), rows, concl, name)
}

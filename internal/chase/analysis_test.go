package chase

import (
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func TestImpliesSet(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	g1 := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "g1")
	g2 := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "g2")
	v, err := ImpliesSet([]*td.TD{join}, []*td.TD{g1}, DefaultOptions())
	if err != nil || v != Implied {
		t.Errorf("ImpliesSet = %v, %v", v, err)
	}
	v, err = ImpliesSet([]*td.TD{join}, []*td.TD{g1, g2}, DefaultOptions())
	if err != nil || v != NotImplied {
		t.Errorf("ImpliesSet with refuted member = %v, %v", v, err)
	}
	v, err = ImpliesSet(nil, nil, DefaultOptions())
	if err != nil || v != Implied {
		t.Errorf("empty goals = %v, %v", v, err)
	}
}

func TestEquivalentSets(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	triple := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "triple")
	v, err := Equivalent([]*td.TD{join}, []*td.TD{join, triple}, DefaultOptions())
	if err != nil || v != Implied {
		t.Errorf("Equivalent = %v, %v", v, err)
	}
	other := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "other")
	v, err = Equivalent([]*td.TD{join}, []*td.TD{other}, DefaultOptions())
	if err != nil || v != NotImplied {
		t.Errorf("inequivalent sets = %v, %v", v, err)
	}
}

func TestRedundantMembers(t *testing.T) {
	s := threeCol()
	deps, err := td.ParseSet(s, `
join:   R(a, b, c) & R(a, b', c') -> R(a, b, c')
triple: R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')
other:  R(a, b, c) & R(a', b, c') -> R(a, b, c')
`)
	if err != nil {
		t.Fatal(err)
	}
	red, err := RedundantMembers(deps, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// join and triple are mutually equivalent (a homomorphism may collapse
	// two of triple's antecedents onto one tuple, degenerating it to join),
	// so the greedy scan removes exactly the FIRST of the pair.
	if len(red) != 1 || red[0] != 0 {
		t.Errorf("redundant = %v, want [0] (join, subsumed by triple)", red)
	}
}

func TestMinimizeAntecedents(t *testing.T) {
	s := threeCol()
	// The triple goal carries a genuinely redundant middle antecedent:
	// R(a,b',c') is unused by the conclusion and not needed as a premise.
	bloated := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "bloated")
	min, err := MinimizeAntecedents(bloated, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.NumAntecedents() >= bloated.NumAntecedents() {
		t.Fatalf("no antecedent removed: %d", min.NumAntecedents())
	}
	// Equivalence is preserved.
	v, err := Equivalent([]*td.TD{bloated}, []*td.TD{min}, DefaultOptions())
	if err != nil || v != Implied {
		t.Errorf("minimized TD not equivalent: %v, %v", v, err)
	}
	if min.Name() != "bloated-min" {
		t.Errorf("name %q", min.Name())
	}
}

func TestMinimizeAntecedentsKeepsEssentialRows(t *testing.T) {
	s := threeCol()
	// fig1-style: both antecedents are essential (the conclusion pairs
	// variables from the two rows).
	fig1 := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a*, b, c')", "fig1")
	min, err := MinimizeAntecedents(fig1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.NumAntecedents() != 2 {
		t.Errorf("essential rows removed: %d antecedents left", min.NumAntecedents())
	}
	if min != fig1 {
		t.Error("unchanged TD should be returned as-is")
	}
}

func TestMinimizeAntecedentsDoesNotTrivializeViaExistentials(t *testing.T) {
	s := relation.MustSchema("A", "B")
	// d: R(a,b) & R(a',b') -> R(a', b). Removing row 2 existentializes a'
	// and yields the TRIVIAL R(a,b) -> R(x, b), which is NOT equivalent —
	// the minimizer must keep both rows.
	d := td.MustParse(s, "R(a, b) & R(a', b') -> R(a', b)", "d")
	min, err := MinimizeAntecedents(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.NumAntecedents() != 2 {
		t.Fatalf("minimizer trivialized the TD: %s", min.Format())
	}
}

func TestMinimizeDuplicateAntecedent(t *testing.T) {
	s := relation.MustSchema("A", "B")
	// A literally duplicated antecedent row is always removable.
	d := td.MustParse(s, "R(a, b) & R(a, b) & R(a', b) -> R(a', b)", "dup")
	min, err := MinimizeAntecedents(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.NumAntecedents() > 2 {
		t.Errorf("duplicate antecedent kept: %d rows", min.NumAntecedents())
	}
}

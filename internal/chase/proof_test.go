package chase

import (
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/tableau"
	"templatedep/internal/td"
)

func TestProveImpliesValidates(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	res, err := ProveImplies([]*td.TD{join}, goal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
}

func TestProveImpliesEmbedded(t *testing.T) {
	_, fig1 := td.GarmentExample()
	res, err := ProveImplies([]*td.TD{fig1}, fig1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

func TestValidateTraceRejectsForgery(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	opt := DefaultOptions()
	opt.Trace = true
	res, err := Implies([]*td.TD{join}, goal, opt)
	if err != nil || res.Verdict != Implied {
		t.Fatal("setup")
	}
	frozen, as := goal.FrozenAntecedents()
	concl := goal.Conclusion()
	check := func(inst *relation.Instance) bool {
		return tableau.RowSatisfiable(concl, as, inst)
	}
	// The genuine trace validates.
	if err := ValidateTrace([]*td.TD{join}, frozen, res.Trace, check); err != nil {
		t.Fatalf("genuine trace rejected: %v", err)
	}
	// Forgery 1: unjustified tuple (values no trigger could produce).
	forged := append([]Fired(nil), res.Trace...)
	forged[0] = Fired{Dep: 0, Round: 1, Tuple: relation.Tuple{40, 41, 42}, Added: true}
	if err := ValidateTrace([]*td.TD{join}, frozen, forged, check); err == nil {
		t.Error("forged tuple accepted")
	}
	// Forgery 2: out-of-range dependency index.
	forged2 := append([]Fired(nil), res.Trace...)
	forged2[0].Dep = 7
	if err := ValidateTrace([]*td.TD{join}, frozen, forged2, check); err == nil {
		t.Error("bad dep index accepted")
	}
	// Forgery 3: wrong Added flag.
	forged3 := append([]Fired(nil), res.Trace...)
	forged3[0].Added = !forged3[0].Added
	if err := ValidateTrace([]*td.TD{join}, frozen, forged3, check); err == nil {
		t.Error("wrong Added flag accepted")
	}
	// Forgery 4: drop the steps so the goal is never reached.
	if err := ValidateTrace([]*td.TD{join}, frozen, nil, check); err == nil {
		t.Error("empty trace accepted as proof")
	}
	// Forgery 5: wrong tuple width.
	forged5 := append([]Fired(nil), res.Trace...)
	forged5[0].Tuple = relation.Tuple{1}
	if err := ValidateTrace([]*td.TD{join}, frozen, forged5, check); err == nil {
		t.Error("wrong-width tuple accepted")
	}
}

func TestProveImpliesNotImpliedPassesThrough(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "goal")
	res, err := ProveImplies([]*td.TD{join}, goal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotImplied {
		t.Errorf("verdict %v", res.Verdict)
	}
}

package chase

import (
	"templatedep/internal/budget"
	"templatedep/internal/relation"
)

// Warm-start snapshots. For a fixed dependency set, start instance, and
// step discipline, the restricted chase is ONE deterministic computation:
// the goal and the budget only decide how much of it a given run observes.
// The instance is append-only and every round appends a contiguous range of
// tuples, so recording the instance together with the per-round length
// boundaries and cumulative Stats captures every intermediate state of the
// run at once. A later query over the same prefix replays those boundaries
// (checking its own goal against each prefix via
// tableau.RowSatisfiableWithin) and, when the snapshot is not complete,
// resumes the round loop exactly where the producing run left off — with
// identical verdicts, Stats, and tuple identity to a cold run, because the
// restored loop state (instance, delta frontier, fresh-value counters,
// cumulative meters) is byte-for-byte what the cold run would have held.
//
// Snapshots only ever describe CLEAN round boundaries: a run cut mid-round
// (tuple-cap or cancellation during materialization) truncates its snapshot
// to the last completed round, discarding the partial round — resuming then
// re-derives that round from the delta, which is exactly the cold
// computation. relation.Instance.ClonePrefix rebuilds the truncated
// instance from its rows, which also renormalizes the fresh-value counters
// a cancelled merge phase may have advanced past the boundary.

// stateCfg fingerprints the options that determine the chase computation a
// snapshot describes. Workers is deliberately absent: results are
// bit-identical for every worker count. Variant is absent because snapshots
// are restricted-chase only (stateEligible).
type stateCfg struct {
	semiNaive bool
	join      JoinStrategy
}

func (e *Engine) stateCfg() stateCfg {
	return stateCfg{semiNaive: e.opt.SemiNaive, join: e.opt.Join}
}

// stateEligible reports whether this engine configuration can produce or
// consume warm-start snapshots. The oblivious variant would need its fired
// set restored; Trace, KeepHistory, and PerDepStats demand per-step or
// per-dependency detail a boundary snapshot does not retain. All of them
// fall back to a cold run rather than approximate.
func (e *Engine) stateEligible() bool {
	return e.opt.Variant == Restricted && !e.opt.Trace && !e.opt.KeepHistory && !e.opt.PerDepStats
}

// State is a reusable snapshot of a chase computation, produced under
// Options.CaptureState (Result.State) and consumed via Options.WarmState.
// It is immutable once captured and safe to share across goroutines — a
// consuming run clones what it needs.
type State struct {
	// inst is the instance after the last completed round, rebuilt as a
	// normalized prefix clone (ClonePrefix) so its fresh-value counters
	// match a cold run paused at that boundary.
	inst *relation.Instance
	// bounds[i] is the instance size after round i; bounds[0] is the start
	// instance size. Every intermediate instance of the producing run is
	// the prefix inst[:bounds[i]].
	bounds []int
	// cum[i] is the cumulative Stats through round i (cum[0] is zero).
	cum []Stats
	// final is the producing run's Stats including the empty fixpoint
	// round; valid only when complete.
	final Stats
	// complete marks a snapshot whose chase reached a fixpoint: replay
	// answers every goal and budget, nothing is left to resume.
	complete bool
	// stopped marks a snapshot truncated by meter exhaustion; the budget
	// class below then gates reuse.
	stopped bool
	// classRounds/classTuples are the producing run's meter limits (0 =
	// unlimited) — its budget class.
	classRounds, classTuples int
	cfg                      stateCfg
}

// Rounds returns the number of completed rounds the snapshot holds.
func (s *State) Rounds() int { return len(s.bounds) - 1 }

// Tuples returns the instance size at the snapshot's last boundary.
func (s *State) Tuples() int { return s.bounds[len(s.bounds)-1] }

// Complete reports whether the snapshot's chase reached a fixpoint.
func (s *State) Complete() bool { return s.complete }

// Stopped reports whether the snapshot was truncated by meter exhaustion.
func (s *State) Stopped() bool { return s.stopped }

// ReusableUnder implements the budget-class rule for budget-stopped
// states, mirroring the verdict cache: a state truncated by meter
// exhaustion may only seed a run whose budget class is strictly larger in
// at least one dimension — never a smaller-or-equal class. States that
// completed on their own (fixpoint, goal found, or a mere cancellation)
// carry no such restriction: their replay is exact under any meters.
func (s *State) ReusableUnder(l budget.Limits) bool {
	if !s.stopped {
		return true
	}
	return largerLimit(l.Rounds, s.classRounds) || largerLimit(l.Tuples, s.classTuples)
}

// largerLimit compares meter limits treating 0 as unlimited.
func largerLimit(next, prior int) bool {
	if prior == 0 {
		return false
	}
	if next == 0 {
		return true
	}
	return next > prior
}

// Extends reports whether s supersedes old in a state cache: a complete
// snapshot beats any paused one, and among paused snapshots more completed
// rounds win (larger-budget runs overwrite the states of smaller ones).
// Snapshots of different computations (config fingerprints) never replace
// each other.
func (s *State) Extends(old *State) bool {
	if old == nil {
		return true
	}
	if s.cfg != old.cfg {
		return false
	}
	if old.complete {
		return false
	}
	if s.complete {
		return true
	}
	return s.Rounds() > old.Rounds()
}

// compatibleWith reports whether the snapshot describes the computation
// this engine would run from start: same config fingerprint, same schema,
// and the same start instance tuple-for-tuple. The prefix comparison makes
// a state key collision (or caller misuse) degrade to a cold run instead
// of a wrong answer.
func (s *State) compatibleWith(e *Engine, start *relation.Instance) bool {
	if s == nil || s.inst == nil || len(s.bounds) == 0 || len(s.cum) != len(s.bounds) {
		return false
	}
	if !s.complete && len(s.bounds) < 2 {
		return false
	}
	if s.cfg != e.stateCfg() {
		return false
	}
	if !s.inst.Schema().Equal(e.schema) {
		return false
	}
	if s.bounds[0] != start.Len() {
		return false
	}
	return s.inst.EqualPrefix(start, start.Len())
}

package chase

import (
	"reflect"
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func threeCol() *relation.Schema { return relation.MustSchema("A", "B", "C") }

func TestImpliesTrivialGoal(t *testing.T) {
	s := threeCol()
	d0 := td.MustParse(s, "R(a, b, c) -> R(a, b, c*)", "trivial")
	res, err := Implies(nil, d0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Stats.Rounds != 0 {
		t.Errorf("trivial goal should need 0 rounds, got %d", res.Stats.Rounds)
	}
}

func TestImpliesSelf(t *testing.T) {
	_, fig1 := td.GarmentExample()
	res, err := Implies([]*td.TD{fig1}, fig1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("self-implication should need 1 round, got %d", res.Stats.Rounds)
	}
}

func TestNotImpliedByEmptySet(t *testing.T) {
	_, fig1 := td.GarmentExample()
	res, err := Implies(nil, fig1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NotImplied {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if !res.FixpointReached {
		t.Error("empty dependency set should reach fixpoint immediately")
	}
	// The fixpoint is a counterexample: it must violate fig1.
	if ok, _ := fig1.Satisfies(res.Instance); ok {
		t.Error("counterexample instance satisfies the goal")
	}
}

func TestFullTDDecision(t *testing.T) {
	s := threeCol()
	// join: if two tuples share A, the cross tuple (a, b, c') exists.
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	if !join.IsFull() {
		t.Fatal("join should be full")
	}
	// Implied: the double-cross follows from join.
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	res, err := Implies([]*td.TD{join}, goal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Errorf("verdict %v, want Implied", res.Verdict)
	}
	// Not implied: crossing tuples with different A values.
	goal2 := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "goal2")
	res2, err := Implies([]*td.TD{join}, goal2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict != NotImplied {
		t.Errorf("verdict %v, want NotImplied", res2.Verdict)
	}
	if !res2.FixpointReached {
		t.Error("full-TD chase must terminate")
	}
	// The terminated chase instance satisfies every dependency and violates
	// the goal: a certified finite counterexample.
	if ok, _ := join.Satisfies(res2.Instance); !ok {
		t.Error("fixpoint violates join")
	}
	if ok, _ := goal2.Satisfies(res2.Instance); ok {
		t.Error("fixpoint satisfies goal2; not a counterexample")
	}
}

func TestEmbeddedFires(t *testing.T) {
	s, fig1 := td.GarmentExample()
	_ = s
	// fig1 with swapped roles is NOT implied by fig1... use a goal with
	// fresh antecedents: two tuples sharing nothing.
	goal := td.MustParse(fig1.Schema(), "R(a, b, c) & R(a', b', c') -> R(a*, b, c')", "cross")
	res, err := Implies([]*td.TD{fig1}, goal, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// fig1 requires a shared supplier; the goal's antecedents do not share
	// one, so fig1 never helps: expect NotImplied at fixpoint.
	if res.Verdict != NotImplied {
		t.Errorf("verdict %v, want NotImplied", res.Verdict)
	}
}

func TestBudgetUnknown(t *testing.T) {
	_, fig1 := td.GarmentExample()
	opt := DefaultOptions()
	// frozen antecedents already have 2 tuples
	opt.Governor = budget.New(nil, budget.Limits{Rounds: DefaultLimits.Rounds, Tuples: 2})
	res, err := Implies([]*td.TD{fig1}, fig1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Errorf("verdict %v, want Unknown", res.Verdict)
	}
}

func TestMaxRoundsUnknown(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	e, err := NewEngine(s, []*td.TD{join}, Options{Governor: budget.New(nil, budget.Limits{Rounds: 1, Tuples: 3}), SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Implies(goal)
	if err != nil {
		t.Fatal(err)
	}
	// One round with tuple cap 3 cannot finish (several crosses needed).
	if res.Verdict == NotImplied {
		t.Errorf("verdict %v; a budget cut must not claim NotImplied", res.Verdict)
	}
}

func TestRestrictedVsObliviousAgree(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	optR := DefaultOptions()
	optO := DefaultOptions()
	optO.Variant = Oblivious
	r1, err := Implies([]*td.TD{join}, goal, optR)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Implies([]*td.TD{join}, goal, optO)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Verdict != Implied || r2.Verdict != Implied {
		t.Errorf("verdicts %v, %v", r1.Verdict, r2.Verdict)
	}
}

func TestSemiNaiveMatchesNaive(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	start := relation.NewInstance(s)
	start.MustAdd(relation.Tuple{0, 0, 0})
	start.MustAdd(relation.Tuple{0, 1, 1})
	start.MustAdd(relation.Tuple{0, 2, 2})
	start.MustAdd(relation.Tuple{7, 1, 2})

	run := func(semiNaive bool) *relation.Instance {
		e, err := NewEngine(s, []*td.TD{join}, Options{Governor: budget.New(nil, budget.Limits{Rounds: 50, Tuples: 1000}), SemiNaive: semiNaive})
		if err != nil {
			t.Fatal(err)
		}
		res := e.Chase(start, nil)
		if !res.FixpointReached {
			t.Fatal("expected fixpoint")
		}
		return res.Instance
	}
	a := run(false)
	b := run(true)
	if a.Len() != b.Len() {
		t.Fatalf("naive %d tuples, semi-naive %d", a.Len(), b.Len())
	}
	for _, tup := range a.Tuples() {
		if !b.Contains(tup) {
			t.Errorf("semi-naive missing %v", tup)
		}
	}
	// Stronger: the fixpoints are isomorphic (equal up to null renaming).
	if !relation.Isomorphic(a, b) {
		t.Error("fixpoints not isomorphic")
	}
}

func TestChaseClosureSatisfiesDeps(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	start := relation.NewInstance(s)
	start.MustAdd(relation.Tuple{0, 0, 0})
	start.MustAdd(relation.Tuple{0, 1, 1})
	e, err := NewEngine(s, []*td.TD{join}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := e.Chase(start, nil)
	if !res.FixpointReached {
		t.Fatal("expected fixpoint")
	}
	if ok, _ := join.Satisfies(res.Instance); !ok {
		t.Error("fixpoint violates the dependency")
	}
	// The original tuples survive (chase only adds).
	if !res.Instance.Contains(relation.Tuple{0, 0, 0}) {
		t.Error("chase lost an input tuple")
	}
	// Closure of the 2x2 grid on supplier 0: 4 tuples.
	if res.Instance.Len() != 4 {
		t.Errorf("closure size %d, want 4", res.Instance.Len())
	}
}

func TestTraceRecordsSteps(t *testing.T) {
	_, fig1 := td.GarmentExample()
	opt := DefaultOptions()
	opt.Trace = true
	res, err := Implies([]*td.TD{fig1}, fig1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Implied {
		t.Fatal("setup")
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	f := res.Trace[0]
	if f.Dep != 0 || f.Round != 1 || !f.Added {
		t.Errorf("trace entry %+v", f)
	}
	// The traced tuple must be in the final instance.
	if !res.Instance.Contains(f.Tuple) {
		t.Error("traced tuple missing from instance")
	}
}

func TestKeepHistory(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	start := relation.NewInstance(s)
	start.MustAdd(relation.Tuple{0, 0, 0})
	start.MustAdd(relation.Tuple{0, 1, 1})
	start.MustAdd(relation.Tuple{0, 2, 2})
	e, err := NewEngine(s, []*td.TD{join}, Options{Governor: budget.New(nil, budget.Limits{Rounds: 20, Tuples: 1000}), SemiNaive: true, KeepHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	res := e.Chase(start, nil)
	if !res.FixpointReached {
		t.Fatal("no fixpoint")
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
	// Tuple counts are non-decreasing and end at the final size.
	prev := start.Len()
	for _, h := range res.History {
		if h.TuplesAfter < prev {
			t.Errorf("round %d: tuples decreased %d -> %d", h.Round, prev, h.TuplesAfter)
		}
		prev = h.TuplesAfter
	}
	if prev != res.Instance.Len() {
		t.Errorf("history ends at %d, instance has %d", prev, res.Instance.Len())
	}
}

func TestParallelWorkersMatchSequential(t *testing.T) {
	s := threeCol()
	deps, err := td.ParseSet(s, `
join:  R(a, b, c) & R(a, b', c') -> R(a, b, c')
mirror: R(a, b, c) & R(a', b, c') -> R(a, b, c')
`)
	if err != nil {
		t.Fatal(err)
	}
	start := relation.NewInstance(s)
	start.MustAdd(relation.Tuple{0, 0, 0})
	start.MustAdd(relation.Tuple{0, 1, 1})
	start.MustAdd(relation.Tuple{7, 1, 2})
	run := func(workers int) Result {
		e, err := NewEngine(s, deps, Options{Governor: budget.New(nil, budget.Limits{Rounds: 50, Tuples: 10000}), SemiNaive: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return e.Chase(start, nil)
	}
	seq := run(1)
	par := run(4)
	if !seq.FixpointReached || !par.FixpointReached {
		t.Fatal("no fixpoint")
	}
	if seq.Instance.Len() != par.Instance.Len() {
		t.Fatalf("sizes differ: %d vs %d", seq.Instance.Len(), par.Instance.Len())
	}
	// Determinism: identical instances, not merely isomorphic.
	for _, tup := range seq.Instance.Tuples() {
		if !par.Instance.Contains(tup) {
			t.Errorf("parallel run missing %v", tup)
		}
	}
	if seq.Stats.TriggersFired != par.Stats.TriggersFired {
		t.Errorf("fired %d vs %d", seq.Stats.TriggersFired, par.Stats.TriggersFired)
	}
}

// Workers > 1 partitions the semi-naive delta within a single dependency.
// Because the delta row is pinned to the outermost join level, the chase
// must be bit-identical for every worker count: same tuples in the same
// order (hence identical fresh-null numbering) and identical traces, even
// with embedded dependencies inventing nulls. Run under -race this also
// exercises the worker pool for data races.
func TestIntraDependencyPartitioning(t *testing.T) {
	s := threeCol()
	deps, err := td.ParseSet(s, `
join:   R(a, b, c) & R(a, b', c') -> R(a, b, c')
invent: R(a, b, c) & R(a', b, c') -> R(a*, b, c')
`)
	if err != nil {
		t.Fatal(err)
	}
	start := relation.NewInstance(s)
	for i := 0; i < 12; i++ {
		start.MustAdd(relation.Tuple{relation.Value(i % 3), relation.Value(i % 4), relation.Value(i)})
	}
	run := func(workers int) Result {
		e, err := NewEngine(s, deps, Options{
			Governor:  budget.New(nil, budget.Limits{Rounds: 4, Tuples: 4000}),
			SemiNaive: true, Workers: workers, Trace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e.Chase(start, nil)
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 7} {
		got := run(workers)
		if got.Instance.Len() != ref.Instance.Len() {
			t.Fatalf("workers=%d: %d tuples, want %d", workers, got.Instance.Len(), ref.Instance.Len())
		}
		// Same tuples in the same insertion order: fresh-null numbering and
		// all statistics must match the sequential run exactly.
		for i, tup := range ref.Instance.Tuples() {
			if !tup.Equal(got.Instance.Tuple(i)) {
				t.Fatalf("workers=%d: tuple %d is %v, want %v", workers, i, got.Instance.Tuple(i), tup)
			}
		}
		if !reflect.DeepEqual(got.Stats, ref.Stats) {
			t.Errorf("workers=%d: stats %+v, want %+v", workers, got.Stats, ref.Stats)
		}
		if len(got.Trace) != len(ref.Trace) {
			t.Fatalf("workers=%d: trace length %d, want %d", workers, len(got.Trace), len(ref.Trace))
		}
		for i := range ref.Trace {
			if got.Trace[i].Dep != ref.Trace[i].Dep || got.Trace[i].Round != ref.Trace[i].Round ||
				!got.Trace[i].Tuple.Equal(ref.Trace[i].Tuple) || got.Trace[i].Added != ref.Trace[i].Added {
				t.Fatalf("workers=%d: trace[%d] = %+v, want %+v", workers, i, got.Trace[i], ref.Trace[i])
			}
		}
	}
}

// The index-driven join and the naive scan must produce identical verdicts
// and identical final statistics on implication checks; for full
// dependencies (no invented nulls) the fixpoints must be equal tuple sets.
func TestJoinStrategiesAgree(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	emb := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a*, b, c')", "cross")
	for _, tc := range []struct {
		name string
		deps []*td.TD
		goal *td.TD
	}{
		{"full-implied", []*td.TD{join}, goal},
		{"full-not-implied", []*td.TD{join}, emb},
		{"embedded", []*td.TD{emb}, goal},
	} {
		for _, semiNaive := range []bool{false, true} {
			opt := DefaultOptions()
			opt.SemiNaive = semiNaive
			opt.Join = JoinIndex
			ri, err := Implies(tc.deps, tc.goal, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Join = JoinScan
			rs, err := Implies(tc.deps, tc.goal, opt)
			if err != nil {
				t.Fatal(err)
			}
			if ri.Verdict != rs.Verdict {
				t.Errorf("%s (semiNaive=%v): index %v, scan %v", tc.name, semiNaive, ri.Verdict, rs.Verdict)
			}
			if ri.Stats.HomomorphismsSeen != rs.Stats.HomomorphismsSeen ||
				ri.Stats.TriggersFired != rs.Stats.TriggersFired {
				t.Errorf("%s (semiNaive=%v): stats %+v vs %+v", tc.name, semiNaive, ri.Stats, rs.Stats)
			}
			if ri.Instance.Len() != rs.Instance.Len() {
				t.Errorf("%s (semiNaive=%v): %d vs %d tuples", tc.name, semiNaive, ri.Instance.Len(), rs.Instance.Len())
			}
			if !relation.Isomorphic(ri.Instance, rs.Instance) {
				t.Errorf("%s (semiNaive=%v): fixpoints not isomorphic", tc.name, semiNaive)
			}
		}
	}
}

func TestNewEngineSchemaMismatch(t *testing.T) {
	s := threeCol()
	other := relation.MustSchema("X", "Y")
	dep := td.MustParse(other, "R(x, y) -> R(x, y*)", "")
	if _, err := NewEngine(s, []*td.TD{dep}, DefaultOptions()); err == nil {
		t.Error("schema mismatch accepted")
	}
	e, err := NewEngine(s, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Implies(dep); err == nil {
		t.Error("goal schema mismatch accepted")
	}
}

func TestAllFull(t *testing.T) {
	s := threeCol()
	full := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "")
	emb := td.MustParse(s, "R(a, b, c) -> R(a*, b, c)", "")
	if !AllFull([]*td.TD{full}) {
		t.Error("full set reported not full")
	}
	if AllFull([]*td.TD{full, emb}) {
		t.Error("embedded member not detected")
	}
	if !AllFull(nil) {
		t.Error("empty set is vacuously full")
	}
}

func TestRestrictedTerminatesWhereObliviousDiverges(t *testing.T) {
	s := threeCol()
	// With an embedded dependency the restricted chase can terminate (every
	// conclusion becomes witnessed) while the oblivious chase diverges:
	// each freshly invented supplier spawns a brand-new self-trigger.
	dep := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a*, b, c')", "fig1")
	start := relation.NewInstance(s)
	start.MustAdd(relation.Tuple{0, 0, 0})
	start.MustAdd(relation.Tuple{0, 1, 1})

	eR, err := NewEngine(s, []*td.TD{dep}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resR := eR.Chase(start, nil)
	if !resR.FixpointReached {
		t.Fatalf("restricted chase did not reach fixpoint (tuples %d)", resR.Instance.Len())
	}
	if resR.Instance.Len() != 4 {
		t.Errorf("restricted fixpoint has %d tuples, want 4", resR.Instance.Len())
	}
	if ok, _ := dep.Satisfies(resR.Instance); !ok {
		t.Error("restricted fixpoint violates the dependency")
	}

	eO, err := NewEngine(s, []*td.TD{dep}, Options{Governor: budget.New(nil, budget.Limits{Rounds: 10, Tuples: 10000}), Variant: Oblivious, SemiNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	resO := eO.Chase(start, nil)
	if resO.FixpointReached {
		t.Error("oblivious chase unexpectedly reached a fixpoint")
	}
	if resO.Stats.TriggersFired <= resR.Stats.TriggersFired {
		t.Errorf("oblivious fired %d <= restricted %d", resO.Stats.TriggersFired, resR.Stats.TriggersFired)
	}
}

package chase

import (
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func TestCoreOfRemovesSubsumedNulls(t *testing.T) {
	s := relation.MustSchema("A", "B")
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0}) // constants
	inst.MustAdd(relation.Tuple{5, 0}) // null 5 in A folds onto 0
	core, err := CoreOf(inst, []relation.Value{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if core.Len() != 1 || !core.Contains(relation.Tuple{0, 0}) {
		t.Errorf("core:\n%s", core.String())
	}
}

func TestCoreOfKeepsConstants(t *testing.T) {
	s := relation.MustSchema("A", "B")
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0})
	inst.MustAdd(relation.Tuple{1, 0}) // A=1 is a CONSTANT here: not removable
	core, err := CoreOf(inst, []relation.Value{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if core.Len() != 2 {
		t.Errorf("constant tuple removed:\n%s", core.String())
	}
}

func TestCoreOfChainFolds(t *testing.T) {
	// Nulls folding transitively: (7,0) -> (6,0) -> (0,0) all collapse.
	s := relation.MustSchema("A", "B")
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0})
	inst.MustAdd(relation.Tuple{6, 0})
	inst.MustAdd(relation.Tuple{7, 0})
	core, err := CoreOf(inst, []relation.Value{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if core.Len() != 1 {
		t.Errorf("core size %d:\n%s", core.Len(), core.String())
	}
}

func TestCoreOfIrreducible(t *testing.T) {
	// Distinct constant patterns: nothing folds.
	s := relation.MustSchema("A", "B")
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0})
	inst.MustAdd(relation.Tuple{0, 1})
	inst.MustAdd(relation.Tuple{1, 0})
	core, err := CoreOf(inst, []relation.Value{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if core.Len() != 3 {
		t.Errorf("core size %d, want 3", core.Len())
	}
}

func TestCoreOfResultGarment(t *testing.T) {
	// The fig1 self-implication chase produces a fixpoint whose invented
	// suppliers are NOT redundant (each covers a unique style/size cross),
	// so the core equals the fixpoint. The implied-goal chase stops as soon
	// as the conclusion appears, so its result is already tight too — the
	// interesting check is that CoreOfResult is sound: the core still
	// satisfies the dependency set and still witnesses the goal's
	// conclusion pattern.
	_, fig1 := td.GarmentExample()
	res, err := Implies([]*td.TD{fig1}, fig1, DefaultOptions())
	if err != nil || res.Verdict != Implied {
		t.Fatal("setup")
	}
	frozen, _ := fig1.FrozenAntecedents()
	core, err := CoreOfResult(res, frozen)
	if err != nil {
		t.Fatal(err)
	}
	if core.Len() > res.Instance.Len() {
		t.Error("core grew")
	}
	// All frozen tuples survive (their values are constants).
	for _, tup := range frozen.Tuples() {
		if !core.Contains(tup) {
			t.Errorf("core lost frozen tuple %v", tup)
		}
	}
}

func TestCoreOfChaseFixpointStaysModel(t *testing.T) {
	// Folding nulls never breaks satisfaction: the core of a fixpoint still
	// satisfies the dependencies (retracts preserve TDs' antecedent
	// matches' conclusions... verified concretely).
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	start := relation.NewInstance(s)
	start.MustAdd(relation.Tuple{0, 0, 0})
	start.MustAdd(relation.Tuple{0, 1, 1})
	e, err := NewEngine(s, []*td.TD{join}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := e.Chase(start, nil)
	if !res.FixpointReached {
		t.Fatal("no fixpoint")
	}
	bound := []relation.Value{1, 2, 2} // everything in start is constant
	core, err := CoreOf(res.Instance, bound)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := join.Satisfies(core); !ok {
		t.Error("core violates the dependency")
	}
}

func TestCoreOfValidation(t *testing.T) {
	s := relation.MustSchema("A", "B")
	inst := relation.NewInstance(s)
	inst.MustAdd(relation.Tuple{0, 0})
	if _, err := CoreOf(inst, []relation.Value{1}); err == nil {
		t.Error("wrong-width constBound accepted")
	}
}

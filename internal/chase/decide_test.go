package chase

import (
	"strings"
	"testing"

	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func TestDecidePositive(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') & R(a, b'', c'') -> R(a, b, c'')", "goal")
	ok, err := Decide([]*td.TD{join}, goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("should be implied")
	}
}

func TestDecideNegative(t *testing.T) {
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a', b', c') -> R(a, b, c')", "goal")
	ok, err := Decide([]*td.TD{join}, goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("should not be implied")
	}
}

func TestDecideEmbeddedGoalOverFullDeps(t *testing.T) {
	// The goal may be embedded: the chase still terminates because only
	// deps fire.
	s := threeCol()
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a*, b, c')", "embedded-goal")
	ok, err := Decide([]*td.TD{join}, goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	// join gives (a, b, c'), which witnesses the existential a*.
	if !ok {
		t.Error("embedded goal should be implied (the join tuple witnesses it)")
	}
}

func TestDecideRejectsEmbeddedDeps(t *testing.T) {
	s := threeCol()
	emb := td.MustParse(s, "R(a, b, c) -> R(a*, b, c)", "emb")
	goal := td.MustParse(s, "R(a, b, c) -> R(a, b, c)", "goal")
	if _, err := Decide([]*td.TD{emb}, goal, 0); err == nil {
		t.Error("embedded dependency accepted")
	}
}

func TestDecideBoundRefusal(t *testing.T) {
	// A goal with a large frozen active domain exceeds a tiny tuple cap.
	s := relation.MustSchema("A", "B")
	full := td.MustParse(s, "R(a, b) & R(a', b) -> R(a, b)", "full")
	goal := td.MustParse(s, "R(a1, b1) & R(a2, b2) & R(a3, b3) & R(a4, b4) -> R(a1, b2)", "wide")
	if _, err := Decide([]*td.TD{full}, goal, 10); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Errorf("err = %v, want bound refusal", err)
	}
	// With the default cap it decides fine.
	if _, err := Decide([]*td.TD{full}, goal, 0); err != nil {
		t.Errorf("default cap failed: %v", err)
	}
}

func TestDecideAgreesWithImplies(t *testing.T) {
	s := threeCol()
	deps, err := td.ParseSet(s, `
join:   R(a, b, c) & R(a, b', c') -> R(a, b, c')
mirror: R(a, b, c) & R(a', b, c') -> R(a, b, c')
`)
	if err != nil {
		t.Fatal(err)
	}
	goals, err := td.ParseSet(s, `
g1: R(a, b, c) & R(a, b', c') -> R(a, b', c)
g2: R(a, b, c) & R(a', b', c') -> R(a, b', c)
g3: R(a, b, c) & R(a', b, c') -> R(a', b, c)
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goals {
		decided, err := Decide(deps, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Implies(deps, g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		want := res.Verdict == Implied
		if res.Verdict == Unknown {
			t.Fatalf("%s: Implies returned Unknown on a full set", g.Name())
		}
		if decided != want {
			t.Errorf("%s: Decide=%v Implies=%v", g.Name(), decided, res.Verdict)
		}
	}
}

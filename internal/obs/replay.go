package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Totals is the aggregate a JSONL event stream replays to. For a chase
// trace it must equal the Stats the run itself reported — that invariant
// is what makes a trace file trustworthy, and it is pinned by
// TestTraceReplayMatchesStats at the repo root.
type Totals struct {
	// Rounds is the highest chase round opened.
	Rounds int
	// TriggersMatched sums round_end.matched.
	TriggersMatched int
	// TriggersFired sums dep_fired.n.
	TriggersFired int
	// TuplesAdded sums tuples_added.n.
	TuplesAdded int
	// NullsCreated sums nulls_created.n.
	NullsCreated int
	// Homomorphisms sums round_end.homs.
	Homomorphisms int
	// SearchNodes sums search_node.n (committed nodes across every search
	// layer — deterministic for any Workers value).
	SearchNodes int
	// SearchSplits counts search_split events.
	SearchSplits int
	// SearchSteals counts search_steal events. Task node counts are NOT
	// summed here — they are already covered by search_node — and the
	// worker attribute is deliberately never folded (it is the one
	// scheduling-dependent field of the schema).
	SearchSteals int
	// RulesAdded counts rule_added events.
	RulesAdded int
	// WarmStarts counts chase_warmstart events. The skipped-prefix totals
	// those events carry are folded into the chase aggregates above, so a
	// warm trace replays to the same Stats a cold run of the same query
	// reports — but not into PerDepFired, whose per-dependency attribution
	// a boundary snapshot does not retain.
	WarmStarts int
	// ShardFallbacks counts shard_fallback events (semi-naive rounds that
	// requested Workers > 1 under the scan join and ran serially).
	ShardFallbacks int
	// PortfolioReallocs counts portfolio_realloc events — the adaptive
	// portfolio's full reallocation decision sequence, withheld grants
	// included.
	PortfolioReallocs int
	// PortfolioGranted sums New - Old over the growing portfolio_realloc
	// decisions, by meter name: the total headroom the governor handed
	// out on each resource.
	PortfolioGranted map[string]int
	// ServeRequests counts serve_request events (one per request the
	// inference service answered).
	ServeRequests int
	// ServeMisses counts serve_request events with source "cold" or "warm"
	// — the requests that actually ran an engine.
	ServeMisses int
	// ServeWarm counts serve_warm events (engine runs that warm-started
	// from the chase-state cache).
	ServeWarm int
	// ServeCacheHits counts serve_cache_hit events.
	ServeCacheHits int
	// ServeDedups counts serve_dedup events (requests collapsed into an
	// identical in-flight run).
	ServeDedups int
	// ServeShutdowns counts serve_shutdown events (1 for a trace of one
	// complete server lifetime).
	ServeShutdowns int
	// CertChecks counts cert_check events (certificate verifications by
	// the serving layer); CertRejects counts the subset whose verdict was
	// "rejected".
	CertChecks  int
	CertRejects int
	// ServeStoreHits counts serve_store_hit events (requests answered from
	// the disk-backed verdict store — restart-warm hits).
	ServeStoreHits int
	// ServePeerFills counts serve_peer_fill events (local misses forwarded
	// to the ring owner); ServePeerOK counts the subset adopted after
	// certificate verification, ServePeerRejects the subset whose
	// certificate was rejected (each of which fell back to a local run).
	ServePeerFills   int
	ServePeerOK      int
	ServePeerRejects int
	// StoreRecovers counts store_recover events (disk-store opens);
	// StorePuts counts non-skip store_put events; StoreCompactions counts
	// store_compact events.
	StoreRecovers    int
	StorePuts        int
	StoreCompactions int
	// PerDepFired sums dep_fired.n by dependency index.
	PerDepFired map[int]int
	// Verdicts maps emitting layer (event src) to its final verdict
	// string.
	Verdicts map[string]string
	// Stops maps emitting layer to how its budget cut the run short:
	// "exhausted:<resource>" from budget_exhausted, "cancelled" or
	// "deadline" from cancelled. Layers that ran to completion are absent.
	Stops map[string]string
	// Events is the total number of lines replayed.
	Events int
}

// Replay scans a JSONL event stream (as written by JSONLSink) and folds it
// into Totals. Unknown event types are counted in Events and otherwise
// ignored, so streams from newer emitters still replay.
func Replay(r io.Reader) (Totals, error) {
	t := Totals{PerDepFired: make(map[int]int), Verdicts: make(map[string]string),
		Stops: make(map[string]string), PortfolioGranted: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return t, fmt.Errorf("obs: replay line %d: %w", line, err)
		}
		t.Events++
		switch e.Type {
		case EvRoundStart:
			if e.Round > t.Rounds {
				t.Rounds = e.Round
			}
		case EvDepFired:
			t.TriggersFired += e.N
			t.PerDepFired[e.Dep] += e.N
		case EvTuplesAdded:
			t.TuplesAdded += e.N
		case EvNullsCreated:
			t.NullsCreated += e.N
		case EvRoundEnd:
			t.TriggersMatched += e.Matched
			t.Homomorphisms += e.Homs
		case EvChaseWarmStart:
			t.WarmStarts++
			if e.Round > t.Rounds {
				t.Rounds = e.Round
			}
			t.TriggersMatched += e.Matched
			t.TriggersFired += e.N
			t.TuplesAdded += e.Added
			t.NullsCreated += e.Nulls
			t.Homomorphisms += e.Homs
		case EvShardFallback:
			t.ShardFallbacks++
		case EvPortfolioRealloc:
			t.PortfolioReallocs++
			if e.New > e.Old {
				t.PortfolioGranted[e.Resource] += e.New - e.Old
			}
		case EvSearchNode:
			t.SearchNodes += e.N
		case EvSearchSplit:
			t.SearchSplits++
		case EvSearchSteal:
			t.SearchSteals++
		case EvRuleAdded:
			t.RulesAdded++
		case EvServeRequest:
			t.ServeRequests++
			if e.Source == "cold" || e.Source == "warm" {
				t.ServeMisses++
			}
		case EvServeCacheHit:
			t.ServeCacheHits++
		case EvServeDedup:
			t.ServeDedups++
		case EvServeWarm:
			t.ServeWarm++
		case EvServeShutdown:
			t.ServeShutdowns++
		case EvCertCheck:
			t.CertChecks++
			if e.Verdict == "rejected" {
				t.CertRejects++
			}
		case EvServeStoreHit:
			t.ServeStoreHits++
		case EvServePeerFill:
			t.ServePeerFills++
			switch e.Verdict {
			case "ok":
				t.ServePeerOK++
			case "rejected":
				t.ServePeerRejects++
			}
		case EvStoreRecover:
			t.StoreRecovers++
		case EvStorePut:
			if e.Source != "skip" {
				t.StorePuts++
			}
		case EvStoreCompact:
			t.StoreCompactions++
		case EvBudgetExhausted:
			t.Stops[e.Src] = "exhausted:" + e.Resource
		case EvCancelled:
			if e.Resource == "deadline" {
				t.Stops[e.Src] = "deadline"
			} else {
				t.Stops[e.Src] = "cancelled"
			}
		case EvVerdict:
			t.Verdicts[e.Src] = e.Verdict
		}
	}
	if err := sc.Err(); err != nil {
		return t, fmt.Errorf("obs: replay: %w", err)
	}
	return t, nil
}

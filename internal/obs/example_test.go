package obs_test

import (
	"fmt"

	"templatedep/internal/chase"
	"templatedep/internal/obs"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

// firedCount is a minimal custom Sink: it counts how often each dependency
// fires, ignoring every other event.
type firedCount map[int]int

func (c firedCount) Event(e obs.Event) {
	if e.Type == obs.EvDepFired {
		c[e.Dep] += e.N
	}
}

// A custom Sink attached to chase.Options observes the run without touching
// its results: here it tallies trigger firings per dependency while the
// chase decides a full-TD implication.
func ExampleSink() {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b0, c0) & R(a, b1, c1) -> R(a, b0, c1)", "goal")

	fired := firedCount{}
	opt := chase.DefaultOptions()
	opt.Sink = fired

	res, err := chase.Implies([]*td.TD{join}, goal, opt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("verdict: %s\n", res.Verdict)
	fmt.Printf("join fired %d triggers\n", fired[0])
	// Output:
	// verdict: implied
	// join fired 2 triggers
}

// A CounterSink folds the event stream into named monotonic counters; the
// snapshot is plain data, ready for a JSON report or a metrics push.
func ExampleCounters() {
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	goal := td.MustParse(s, "R(a, b0, c0) & R(a, b1, c1) -> R(a, b0, c1)", "goal")

	ctrs := obs.NewCounters()
	opt := chase.DefaultOptions()
	opt.Sink = obs.NewCounterSink(ctrs)
	if _, err := chase.Implies([]*td.TD{join}, goal, opt); err != nil {
		panic(err)
	}
	for _, name := range ctrs.Names() {
		fmt.Printf("%s = %d\n", name, ctrs.Get(name))
	}
	// Output:
	// chase.dep.0.added = 2
	// chase.dep.0.fired = 2
	// chase.homomorphisms = 4
	// chase.rounds = 1
	// chase.triggers_fired = 2
	// chase.triggers_matched = 2
	// chase.tuples_added = 2
	// chase.verdicts = 1
}

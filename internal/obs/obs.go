// Package obs is the observability layer of the engine: typed structured
// events, monotonic counters, and the sinks that consume them.
//
// The Main Theorem makes Unknown an honest third verdict, so long budgeted
// runs are the system's normal operating mode. This package exists so a
// user staring at such a run can see WHY it is burning budget — which
// dependency fires, how the semi-naive delta grows, whether the
// counter-model search or the derivation search is advancing — without the
// engine paying for that visibility when nobody is watching.
//
// Design constraints, in order:
//
//  1. Zero dependencies: stdlib only, and no imports from the rest of the
//     repository (every engine package can therefore import obs).
//  2. Zero overhead when disabled: a nil Sink in an Options struct skips
//     every emission behind a single pointer check, and an attached no-op
//     sink costs only the call — Event values are passed on the stack and
//     never escape. This is pinned by TestNopSinkAllocParity at the repo
//     root.
//  3. Deterministic where the engine is deterministic: the chase emits
//     events only from its sequential merge/apply phase, so the event
//     stream is bit-identical for every Options.Workers value (pinned by
//     TestEventStreamWorkerIndependent). The one exception is
//     shard_fallback, which exists to diagnose the Workers option itself
//     and therefore appears only when Workers > 1 meets the scan join.
//
// The full event and counter schema — every type, field, and unit — is
// documented in docs/OBSERVABILITY.md, which CI keeps in sync with the
// EventType constants below.
package obs

// EventType names a structured event. The string value is the wire name
// used by JSONLSink and the "type" field consumers dispatch on.
type EventType string

// Event types emitted by the engine layers. The Src field of an Event
// tells which layer emitted it ("chase", "search", "finitemodel",
// "rewrite", "core", "serve").
const (
	// EvRoundStart opens a fair chase round. Fields: Round, Tuples
	// (instance size entering the round).
	EvRoundStart EventType = "round_start"
	// EvDeltaSize reports the semi-naive delta window of a round. Fields:
	// Round, N (tuples added in the previous round).
	EvDeltaSize EventType = "delta_size"
	// EvDepFired aggregates one dependency's firings within one round.
	// Fields: Round, Dep, N (triggers fired), Added (tuples new to the
	// instance).
	EvDepFired EventType = "dep_fired"
	// EvNullsCreated counts labeled nulls invented in one round. Fields:
	// Round, N.
	EvNullsCreated EventType = "nulls_created"
	// EvTuplesAdded counts tuples materialized in one round. Fields:
	// Round, N.
	EvTuplesAdded EventType = "tuples_added"
	// EvRoundEnd closes a round (also emitted on early exits so partial
	// rounds replay). Fields: Round, Tuples (instance size after), N
	// (triggers fired), Matched (triggers matched), Homs (antecedent
	// homomorphisms enumerated).
	EvRoundEnd EventType = "round_end"
	// EvChaseWarmStart reports that a chase run reused a prior snapshot
	// instead of re-deriving its rounds, emitted before any round event of
	// the run. It carries the cumulative totals of the skipped prefix so a
	// warm trace still replays to the run's Stats. Fields: Round (completed
	// rounds skipped), Tuples (instance size at the reused boundary), N
	// (triggers fired skipped), Matched, Added, Homs, Nulls.
	EvChaseWarmStart EventType = "chase_warmstart"
	// EvShardFallback reports that a semi-naive round requested Workers > 1
	// but had to enumerate each dependency serially because intra-dependency
	// delta sharding requires the index join (Options.Join == JoinIndex).
	// Emitted at most once per run, on the first such round, so flat scaling
	// under the scan ablation is diagnosable from the trace. The one chase
	// event whose presence depends on the Workers option. Fields: Round, N
	// (workers requested).
	EvShardFallback EventType = "shard_fallback"
	// EvSearchNode reports a batch of committed backtracking nodes in a
	// finite-model search (Src "search" for the semigroup engine, Src
	// "finitemodel" for the instance engine). Fields: Order (semigroup
	// order or instance size under search), N (nodes since the previous
	// event). Speculative nodes of parallel runs are never reported, so
	// the sum is identical for every Workers value.
	EvSearchNode EventType = "search_node"
	// EvSearchSplit reports that one wave of a finite-model search's
	// backtracking tree was split into independent subtree tasks. Fields:
	// Order, N (tasks in the wave), Depth (prefix depth of the split).
	EvSearchSplit EventType = "search_split"
	// EvSearchSteal reports one subtree task pulled and run by a worker,
	// emitted post-hoc in task order for tasks up to and including the
	// wave's winner. Fields: Order, Task (index within the wave), Worker
	// (goroutine that ran it — the ONE scheduling-dependent field of the
	// schema, excluded from replay totals), N (nodes the task explored).
	EvSearchSteal EventType = "search_steal"
	// EvRuleAdded reports one oriented rule added by Knuth–Bendix
	// completion. Fields: Iter (completion sweep), Rules (total rules
	// after the addition).
	EvRuleAdded EventType = "rule_added"
	// EvArmStart reports that a dual-semidecision arm began work. From the
	// race front-end (Src "core") Arm is "derivation" or "model-search";
	// from the adaptive portfolio (Src "portfolio") Arm names the engine
	// arm ("kb", "chase", "eid", "model-search", "finite-db") and the event
	// opens one budget lease. Fields: Arm, Round (deepening round, or the
	// portfolio scheduler tick; 0 outside both).
	EvArmStart EventType = "arm_start"
	// EvArmResult reports an arm's outcome: the race arm's result, or the
	// close of one portfolio lease. Fields: Arm, Round, Verdict (the
	// arm-level outcome string).
	EvArmResult EventType = "arm_result"
	// EvDeepenRound closes one iterative-deepening round. Fields: Round,
	// Verdict (that round's verdict).
	EvDeepenRound EventType = "deepen_round"
	// EvBudgetExhausted reports that the emitting layer stopped because a
	// governor meter reached its limit. Emitted before the layer's verdict
	// event so partial traces stay closed. Fields: Round (progress at the
	// stop), Resource (the exhausted meter: "rounds", "tuples", "nodes",
	// "words", or "rules").
	EvBudgetExhausted EventType = "budget_exhausted"
	// EvCancelled reports that the emitting layer stopped because its
	// governor's context ended. Emitted before the layer's verdict event.
	// Fields: Round (progress at the stop), Resource ("context" for
	// cancellation, "deadline" for an expired deadline).
	EvCancelled EventType = "cancelled"
	// EvVerdict is the final outcome of the emitting layer. Fields:
	// Verdict, Round (rounds/iterations used), Tuples (final instance
	// size; chase only), N (nodes visited; search only).
	EvVerdict EventType = "verdict"
	// EvPortfolioRealloc records one budget-reallocation decision of the
	// adaptive portfolio governor (Src "portfolio"): at every scheduler
	// tick, for every live arm, the policy either grows the arm's
	// cumulative meter grant or withholds it. Fields: Arm, Resource (the
	// arm's primary meter), Old and New (cumulative grant before/after —
	// New == Old is a withheld grant, New == 0 retires the arm), Signal
	// (the policy signal behind the decision: "seed", "steady", "fed",
	// "stalled", "probe", "capped", or a retirement reason such as
	// "confluent", "refuted", "covered", "exhausted"), Round (the
	// scheduler tick). The decision sequence is a pure function of the
	// problem and options, so replayed traces reproduce it exactly.
	EvPortfolioRealloc EventType = "portfolio_realloc"
	// EvServeRequest closes one inference-service request (Src "serve").
	// Fields: Req, Key, Source ("cold" for a fresh engine run, "warm" for an
	// engine run that warm-started from the chase-state cache, "cache" for
	// an LRU verdict-cache answer, "dedup" for a request collapsed into an
	// identical in-flight run), Verdict.
	EvServeRequest EventType = "serve_request"
	// EvServeCacheHit reports that a request was answered from the
	// service's canonical verdict cache, emitted before the request's
	// serve_request line. Fields: Req, Key.
	EvServeCacheHit EventType = "serve_cache_hit"
	// EvServeDedup reports that a request joined an identical in-flight
	// run instead of starting its own (singleflight), emitted before the
	// request's serve_request line. Fields: Req, Key.
	EvServeDedup EventType = "serve_dedup"
	// EvServeWarm reports that a request's engine run warm-started from the
	// service's chase-state cache, emitted before the request's
	// serve_request line. Key is the chase-state key digest, not the
	// request's verdict-cache key. Fields: Req, Key.
	EvServeWarm EventType = "serve_warm"
	// EvServeShutdown reports that the service drained and stopped.
	// Fields: N (engine runs that were in flight when the drain began —
	// each completed, and closed its trace, before this line was written).
	EvServeShutdown EventType = "serve_shutdown"
	// EvCertCheck reports one certificate verification by the serving
	// layer: every certificate is re-checked by the independent verifier
	// before it is stored or replayed from the cache. Fields: Req, Key,
	// Source (the certificate kind: "derivation", "chase", or
	// "finite-model"), Verdict ("ok" or "rejected").
	EvCertCheck EventType = "cert_check"
	// EvServeStoreHit reports that a request was answered from the
	// disk-backed verdict store (a restart-warm hit: present on disk but
	// not yet in the in-memory cache), emitted before the request's
	// serve_request line. Fields: Req, Key.
	EvServeStoreHit EventType = "serve_store_hit"
	// EvServePeerFill reports one peer-fill attempt: a local miss whose
	// canonical key is owned by another replica of the consistent-hash
	// ring was forwarded to that owner. Fields: Req, Key, Source (the
	// owner peer's base URL), Verdict ("ok" — the peer's certificate
	// verified and its verdict was adopted; "rejected" — the peer answered
	// but its certificate failed verification or mismatched the problem;
	// "unknown" — the peer answered without a definitive verdict;
	// "down" — the peer was unreachable or errored). Every non-"ok"
	// attempt falls back to a local engine run.
	EvServePeerFill EventType = "serve_peer_fill"
	// EvStoreRecover reports one disk-store open (Src "store"): the
	// append-log was scanned, the in-memory index rebuilt, and any torn
	// tail truncated. Fields: N (live records indexed), Added (superseded
	// records skipped during the scan — rewritten entries awaiting
	// compaction), Bytes (torn-tail bytes dropped; 0 for a clean log).
	EvStoreRecover EventType = "store_recover"
	// EvStorePut reports one write-through store put (Src "store").
	// Fields: Key, Source ("insert" for a first write, "overwrite" for a
	// class-upgrade or definitive replacement, "skip" when the existing
	// record already supersedes the new one and nothing was written),
	// Bytes (record bytes appended; 0 for "skip").
	EvStorePut EventType = "store_put"
	// EvStoreCompact reports one log compaction (Src "store"): the log was
	// rewritten with only the live record per key. Fields: N (live records
	// kept), Bytes (dead bytes reclaimed).
	EvStoreCompact EventType = "store_compact"
	// EvFuzzCase closes one differential-fuzz case (Src "difffuzz"): every
	// engine in the instance's set ran under a matched governor and the
	// cross-engine invariants were checked. Fields: Key (the corpus
	// instance ID), Source (the corpus family: "tm", "random", or
	// "oracle"), Verdict (the consensus verdict; "unknown" when no engine
	// was definitive), N (engines run).
	EvFuzzCase EventType = "fuzz_case"
	// EvFuzzDisagree reports one invariant violation of a
	// differential-fuzz case, emitted before the case's fuzz_case line.
	// Fields: Key (the corpus instance ID), Source (the corpus family),
	// Arm (the violated invariant: "verdict", "oracle", "cert", or
	// "canon"), Verdict (the human-readable detail).
	EvFuzzDisagree EventType = "fuzz_disagree"
)

// Event is one structured observation. It is a flat value type — emitters
// fill only the fields their EventType documents (see the constants above
// and docs/OBSERVABILITY.md) and sinks must dispatch on Type before
// reading payload fields. Counts are unitless totals; Tuples counts
// instance tuples; Homs counts antecedent homomorphisms.
type Event struct {
	// Type discriminates the payload.
	Type EventType `json:"type"`
	// Src is the emitting layer: "chase", "search", "finitemodel",
	// "rewrite", "core", "portfolio", "serve", "store", or "difffuzz".
	Src string `json:"src"`
	// Round is 1-based (chase fair round, deepening round); 0 when not
	// applicable.
	Round int `json:"round,omitempty"`
	// Dep is the dependency index within the engine's input set.
	Dep int `json:"dep,omitempty"`
	// N is the count payload of the type (triggers, tuples, nodes, ...).
	N int `json:"n,omitempty"`
	// Tuples is an instance size.
	Tuples int `json:"tuples,omitempty"`
	// Added counts tuples new to the instance.
	Added int `json:"added,omitempty"`
	// Matched counts triggers matched.
	Matched int `json:"matched,omitempty"`
	// Homs counts antecedent homomorphisms enumerated.
	Homs int `json:"homs,omitempty"`
	// Nulls counts labeled nulls invented (chase_warmstart only; per-round
	// null counts ride on nulls_created.n).
	Nulls int `json:"nulls,omitempty"`
	// Order is the semigroup order (or instance size) under search.
	Order int `json:"order,omitempty"`
	// Depth is the prefix depth of a search split.
	Depth int `json:"depth,omitempty"`
	// Task is a subtree task index within a search split wave.
	Task int `json:"task,omitempty"`
	// Worker is the 0-based goroutine that ran a subtree task. It is the
	// only scheduling-dependent field in the schema and is never folded
	// into replay totals.
	Worker int `json:"worker,omitempty"`
	// Iter is a completion sweep index.
	Iter int `json:"iter,omitempty"`
	// Rules is the total rewrite-rule count.
	Rules int `json:"rules,omitempty"`
	// Arm names a dual-semidecision arm.
	Arm string `json:"arm,omitempty"`
	// Resource is the budget detail of a stop event: a meter name for
	// budget_exhausted, "context" or "deadline" for cancelled. For
	// portfolio_realloc it is the meter whose grant the decision changes.
	Resource string `json:"resource,omitempty"`
	// Old and New are the cumulative grant on Resource before and after a
	// portfolio_realloc decision.
	Old int `json:"old,omitempty"`
	New int `json:"new,omitempty"`
	// Signal is the policy signal behind a portfolio_realloc decision.
	Signal string `json:"signal,omitempty"`
	// Verdict is an outcome string of the emitting layer.
	Verdict string `json:"verdict,omitempty"`
	// Req is the serving layer's per-request trace ID. The service stamps
	// it on every event emitted within a request — its own serve_* events
	// and the engine events of the run it triggered — so one JSONL stream
	// from a concurrent server can be split back into per-request traces.
	// Empty outside the serving layer (and absent from those wire lines).
	Req string `json:"req,omitempty"`
	// Key is the canonical cache-key digest of a serve request: identical
	// for requests that are equal up to symbol renaming and equation
	// order.
	Key string `json:"key,omitempty"`
	// Source tells how a serve request was answered: "cold", "warm",
	// "cache", "dedup", "store", or "peer". For serve_peer_fill it is the
	// owner peer's base URL; for store_put it is the write disposition.
	Source string `json:"source,omitempty"`
	// Bytes is a byte count: torn-tail bytes dropped by store_recover,
	// record bytes appended by store_put, dead bytes reclaimed by
	// store_compact.
	Bytes int `json:"bytes,omitempty"`
}

// Sink receives events. Implementations must be safe for concurrent use:
// the chase emits from a single goroutine (its sequential merge phase, so
// the stream is deterministic even with Options.Workers > 1), but the
// racing front-end emits from both arm goroutines at once. Events arrive
// in program order per emitting goroutine; no cross-goroutine ordering is
// guaranteed.
type Sink interface {
	Event(Event)
}

// Nop is the explicit no-op Sink. A nil Sink in an Options struct is
// cheaper still (the emission site is skipped entirely); Nop exists so the
// "attached but ignoring" path has a benchmarkable implementation.
type Nop struct{}

// Event discards the event.
func (Nop) Event(Event) {}

// multi fans events out to several sinks in order.
type multi []Sink

func (m multi) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Multi returns a Sink forwarding every event to each of sinks in order.
// Nil entries are dropped; Multi(nil...) returns nil, and a single sink is
// returned unwrapped.
func Multi(sinks ...Sink) Sink {
	var kept multi
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

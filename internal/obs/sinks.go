package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// JSONLSink serializes events as one JSON object per line. Serialization
// is hand-rolled per event type, so each line carries exactly the fields
// the type's schema documents (a zero dependency index is written, not
// omitted). Writes are mutex-serialized; errors are sticky and reported by
// Err rather than interrupting the instrumented run.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	err error
}

// NewJSONLSink writes events to w. Callers owning a file should wrap it in
// a bufio.Writer and flush after the run.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Event writes e as one JSON line.
func (s *JSONLSink) Event(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	b := s.buf[:0]
	b = append(b, `{"type":"`...)
	b = append(b, e.Type...)
	b = append(b, `","src":"`...)
	b = append(b, e.Src...)
	b = append(b, '"')
	// The request ID is the one cross-cutting field: the serving layer
	// stamps it on every event of a request, whatever the type, so it is
	// written right after src whenever present. Engine streams emitted
	// outside the service never set it, keeping their bytes unchanged.
	if e.Req != "" {
		b = appendStr(b, "req", e.Req)
	}
	appendInt := func(key string, v int) {
		b = append(b, ',', '"')
		b = append(b, key...)
		b = append(b, '"', ':')
		b = strconv.AppendInt(b, int64(v), 10)
	}
	switch e.Type {
	case EvRoundStart:
		appendInt("round", e.Round)
		appendInt("tuples", e.Tuples)
	case EvDeltaSize:
		appendInt("round", e.Round)
		appendInt("n", e.N)
	case EvDepFired:
		appendInt("round", e.Round)
		appendInt("dep", e.Dep)
		appendInt("n", e.N)
		appendInt("added", e.Added)
	case EvNullsCreated, EvTuplesAdded:
		appendInt("round", e.Round)
		appendInt("n", e.N)
	case EvRoundEnd:
		appendInt("round", e.Round)
		appendInt("tuples", e.Tuples)
		appendInt("n", e.N)
		appendInt("matched", e.Matched)
		appendInt("homs", e.Homs)
	case EvChaseWarmStart:
		appendInt("round", e.Round)
		appendInt("tuples", e.Tuples)
		appendInt("n", e.N)
		appendInt("matched", e.Matched)
		appendInt("added", e.Added)
		appendInt("homs", e.Homs)
		appendInt("nulls", e.Nulls)
	case EvShardFallback:
		appendInt("round", e.Round)
		appendInt("n", e.N)
	case EvSearchNode:
		appendInt("order", e.Order)
		appendInt("n", e.N)
	case EvSearchSplit:
		appendInt("order", e.Order)
		appendInt("n", e.N)
		appendInt("depth", e.Depth)
	case EvSearchSteal:
		appendInt("order", e.Order)
		appendInt("task", e.Task)
		appendInt("worker", e.Worker)
		appendInt("n", e.N)
	case EvRuleAdded:
		appendInt("iter", e.Iter)
		appendInt("rules", e.Rules)
	case EvArmStart:
		b = appendStr(b, "arm", e.Arm)
		appendInt("round", e.Round)
	case EvArmResult:
		b = appendStr(b, "arm", e.Arm)
		appendInt("round", e.Round)
		b = appendStr(b, "verdict", e.Verdict)
	case EvDeepenRound:
		appendInt("round", e.Round)
		b = appendStr(b, "verdict", e.Verdict)
	case EvBudgetExhausted, EvCancelled:
		appendInt("round", e.Round)
		b = appendStr(b, "resource", e.Resource)
	case EvVerdict:
		b = appendStr(b, "verdict", e.Verdict)
		appendInt("round", e.Round)
		appendInt("tuples", e.Tuples)
		appendInt("n", e.N)
	case EvPortfolioRealloc:
		b = appendStr(b, "arm", e.Arm)
		b = appendStr(b, "resource", e.Resource)
		appendInt("old", e.Old)
		appendInt("new", e.New)
		b = appendStr(b, "signal", e.Signal)
		appendInt("round", e.Round)
	case EvServeRequest:
		b = appendStr(b, "key", e.Key)
		b = appendStr(b, "source", e.Source)
		b = appendStr(b, "verdict", e.Verdict)
	case EvServeCacheHit, EvServeDedup, EvServeWarm:
		b = appendStr(b, "key", e.Key)
	case EvServeShutdown:
		appendInt("n", e.N)
	case EvCertCheck:
		b = appendStr(b, "key", e.Key)
		b = appendStr(b, "source", e.Source)
		b = appendStr(b, "verdict", e.Verdict)
	case EvServeStoreHit:
		b = appendStr(b, "key", e.Key)
	case EvServePeerFill:
		b = appendStr(b, "key", e.Key)
		b = appendStr(b, "source", e.Source)
		b = appendStr(b, "verdict", e.Verdict)
	case EvStoreRecover:
		appendInt("n", e.N)
		appendInt("added", e.Added)
		appendInt("bytes", e.Bytes)
	case EvStorePut:
		b = appendStr(b, "key", e.Key)
		b = appendStr(b, "source", e.Source)
		appendInt("bytes", e.Bytes)
	case EvStoreCompact:
		appendInt("n", e.N)
		appendInt("bytes", e.Bytes)
	case EvFuzzCase:
		b = appendStr(b, "key", e.Key)
		b = appendStr(b, "source", e.Source)
		b = appendStr(b, "verdict", e.Verdict)
		appendInt("n", e.N)
	case EvFuzzDisagree:
		b = appendStr(b, "key", e.Key)
		b = appendStr(b, "source", e.Source)
		b = appendStr(b, "arm", e.Arm)
		b = appendStr(b, "verdict", e.Verdict)
	default:
		// Unknown types round-trip through encoding/json so custom
		// emitters degrade gracefully instead of silently dropping data.
		s.buf = b[:0]
		line, err := json.Marshal(e)
		if err != nil {
			s.err = err
			return
		}
		line = append(line, '\n')
		if _, err := s.w.Write(line); err != nil {
			s.err = err
		}
		return
	}
	b = append(b, '}', '\n')
	s.buf = b[:0]
	if _, err := s.w.Write(b); err != nil {
		s.err = err
	}
}

func appendStr(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	// Arm/verdict strings come from a fixed engine vocabulary, but quote
	// defensively for custom emitters.
	q, _ := json.Marshal(v)
	return append(b, q...)
}

// Err reports the first write or serialization error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Counters is a registry of named monotonic counters, safe for concurrent
// use and snapshotable as JSON. Counter names are dotted paths
// ("chase.triggers_fired", "chase.dep.3.fired", "search.nodes", ...); the
// canonical vocabulary is documented in docs/OBSERVABILITY.md.
type Counters struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*atomic.Int64)}
}

// Add increments counter name by d (creating it at zero first).
func (c *Counters) Add(name string, d int64) {
	c.mu.RLock()
	v := c.m[name]
	c.mu.RUnlock()
	if v == nil {
		c.mu.Lock()
		if v = c.m[name]; v == nil {
			v = new(atomic.Int64)
			c.m[name] = v
		}
		c.mu.Unlock()
	}
	v.Add(d)
}

// Get returns the current value of name (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if v := c.m[name]; v != nil {
		return v.Load()
	}
	return 0
}

// Snapshot returns a point-in-time copy of every counter.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// MarshalJSON renders the snapshot as a JSON object with sorted keys
// (encoding/json sorts map keys, so snapshots diff cleanly).
func (c *Counters) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}

// Names returns the sorted counter names.
func (c *Counters) Names() []string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CounterSink folds events into a Counters registry using the canonical
// vocabulary of docs/OBSERVABILITY.md: per-layer totals plus per-dependency
// fired/added counters.
type CounterSink struct {
	C *Counters
}

// NewCounterSink returns a sink folding into c.
func NewCounterSink(c *Counters) *CounterSink {
	return &CounterSink{C: c}
}

// Event increments the counters the event's type documents.
func (s *CounterSink) Event(e Event) {
	switch e.Type {
	case EvRoundStart:
		s.C.Add("chase.rounds", 1)
	case EvDeltaSize:
		s.C.Add("chase.delta_tuples", int64(e.N))
	case EvDepFired:
		s.C.Add("chase.triggers_fired", int64(e.N))
		s.C.Add("chase.tuples_added", int64(e.Added))
		prefix := "chase.dep." + strconv.Itoa(e.Dep)
		s.C.Add(prefix+".fired", int64(e.N))
		s.C.Add(prefix+".added", int64(e.Added))
	case EvNullsCreated:
		s.C.Add("chase.nulls_created", int64(e.N))
	case EvRoundEnd:
		s.C.Add("chase.triggers_matched", int64(e.Matched))
		s.C.Add("chase.homomorphisms", int64(e.Homs))
	case EvChaseWarmStart:
		s.C.Add("chase.warm_starts", 1)
		s.C.Add("chase.warm_rounds_skipped", int64(e.Round))
	case EvShardFallback:
		s.C.Add("chase.shard_fallbacks", 1)
	case EvSearchNode:
		s.C.Add(e.Src+".nodes", int64(e.N))
	case EvSearchSplit:
		s.C.Add(e.Src+".splits", 1)
		s.C.Add(e.Src+".tasks", int64(e.N))
	case EvSearchSteal:
		s.C.Add(e.Src+".steals", 1)
		s.C.Add(e.Src+".worker."+strconv.Itoa(e.Worker)+".nodes", int64(e.N))
	case EvRuleAdded:
		s.C.Add("rewrite.rules_added", 1)
	case EvArmStart:
		s.C.Add(e.Src+".arm."+e.Arm+".runs", 1)
	case EvPortfolioRealloc:
		s.C.Add("portfolio.reallocs", 1)
		switch {
		case e.New > e.Old:
			s.C.Add("portfolio.granted."+e.Resource, int64(e.New-e.Old))
		case e.New == e.Old:
			s.C.Add("portfolio.withheld", 1)
		default:
			s.C.Add("portfolio.retired", 1)
		}
	case EvDeepenRound:
		s.C.Add("core.deepen_rounds", 1)
	case EvBudgetExhausted:
		s.C.Add(e.Src+".budget_exhausted", 1)
	case EvCancelled:
		s.C.Add(e.Src+".cancelled", 1)
	case EvVerdict:
		s.C.Add(e.Src+".verdicts", 1)
	case EvServeRequest:
		s.C.Add("serve.requests", 1)
		// A "cold" or "warm" request is one that actually ran an engine —
		// the cache-miss count of the serving layer (warm runs skipped
		// chase rounds but still missed the verdict cache).
		if e.Source == "cold" || e.Source == "warm" {
			s.C.Add("serve.cache_misses", 1)
		}
	case EvServeCacheHit:
		s.C.Add("serve.cache_hits", 1)
	case EvServeDedup:
		s.C.Add("serve.dedups", 1)
	case EvServeWarm:
		s.C.Add("serve.warm", 1)
	case EvServeShutdown:
		s.C.Add("serve.shutdowns", 1)
	case EvCertCheck:
		s.C.Add("serve.cert_checked", 1)
		if e.Verdict == "rejected" {
			s.C.Add("serve.cert_rejected", 1)
		}
	case EvServeStoreHit:
		s.C.Add("serve.store_hits", 1)
	case EvServePeerFill:
		s.C.Add("serve.peer_fills", 1)
		switch e.Verdict {
		case "ok":
			s.C.Add("serve.peer_ok", 1)
		case "rejected":
			s.C.Add("serve.peer_rejected", 1)
		case "unknown":
			s.C.Add("serve.peer_unknown", 1)
		case "down":
			s.C.Add("serve.peer_down", 1)
		}
	case EvStoreRecover:
		s.C.Add("store.recovers", 1)
		s.C.Add("store.recovered_records", int64(e.N))
		s.C.Add("store.superseded_records", int64(e.Added))
		s.C.Add("store.dropped_bytes", int64(e.Bytes))
	case EvStorePut:
		if e.Source == "skip" {
			s.C.Add("store.put_skips", 1)
		} else {
			s.C.Add("store.puts", 1)
			s.C.Add("store.written_bytes", int64(e.Bytes))
		}
	case EvStoreCompact:
		s.C.Add("store.compactions", 1)
		s.C.Add("store.reclaimed_bytes", int64(e.Bytes))
	case EvFuzzCase:
		s.C.Add("fuzz.cases", 1)
		s.C.Add("fuzz.family."+e.Source+".cases", 1)
	case EvFuzzDisagree:
		s.C.Add("fuzz.disagreements", 1)
	}
}

// ProgressSink renders a live, single-line progress display, overwritten
// in place with carriage returns — the `-progress` flag of the CLIs. It
// tracks the most recent chase round, search effort, and arm activity, and
// is safe for concurrent emitters (the racing front-end's two arms).
type ProgressSink struct {
	mu sync.Mutex
	w  io.Writer
	// last rendered width, for blank-padding shorter lines.
	width int
	// accumulated state.
	round, tuples, delta int
	nodes, order         int
	deepen               int
	arm                  string
	events               int
}

// NewProgressSink renders to w (conventionally os.Stderr).
func NewProgressSink(w io.Writer) *ProgressSink {
	return &ProgressSink{w: w}
}

// Event updates the live line.
func (p *ProgressSink) Event(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events++
	redraw := false
	switch e.Type {
	case EvDeltaSize:
		p.delta = e.N
	case EvRoundEnd:
		p.round, p.tuples = e.Round, e.Tuples
		redraw = true
	case EvSearchNode:
		p.nodes += e.N
		p.order = e.Order
		redraw = true
	case EvArmStart:
		p.arm = e.Arm
		redraw = true
	case EvArmResult:
		p.arm = e.Arm + ":" + e.Verdict
		redraw = true
	case EvDeepenRound:
		p.deepen = e.Round
		redraw = true
	case EvVerdict:
		if e.Src == "core" || e.Src == "chase" {
			redraw = true
		}
	}
	if redraw {
		p.draw()
	}
}

func (p *ProgressSink) draw() {
	line := fmt.Sprintf("round %d  tuples %d  delta %d  search %d nodes (order %d)",
		p.round, p.tuples, p.delta, p.nodes, p.order)
	if p.deepen > 0 {
		line = fmt.Sprintf("deepen %d  %s", p.deepen, line)
	}
	if p.arm != "" {
		line += "  arm " + p.arm
	}
	pad := p.width - len(line)
	if pad < 0 {
		pad = 0
	}
	p.width = len(line)
	fmt.Fprintf(p.w, "\r%s%*s", line, pad, "")
}

// Close terminates the live line with a newline so subsequent output
// starts clean. It is a no-op if no event was ever rendered.
func (p *ProgressSink) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.events > 0 {
		fmt.Fprintln(p.w)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// One event of every type, with every field its schema documents set to a
// distinct value, so the serializer's per-type field lists are exercised.
func allEvents() []Event {
	return []Event{
		{Type: EvRoundStart, Src: "chase", Round: 1, Tuples: 7},
		{Type: EvDeltaSize, Src: "chase", Round: 1, N: 3},
		{Type: EvDepFired, Src: "chase", Round: 1, Dep: 0, N: 4, Added: 2},
		{Type: EvDepFired, Src: "chase", Round: 1, Dep: 2, N: 5, Added: 1},
		{Type: EvNullsCreated, Src: "chase", Round: 1, N: 6},
		{Type: EvTuplesAdded, Src: "chase", Round: 1, N: 3},
		{Type: EvRoundEnd, Src: "chase", Round: 1, Tuples: 10, N: 9, Matched: 11, Homs: 13},
		{Type: EvSearchNode, Src: "search", Order: 3, N: 4096},
		{Type: EvSearchNode, Src: "finitemodel", Order: 2, N: 32},
		{Type: EvSearchSplit, Src: "search", Order: 3, N: 64, Depth: 2},
		{Type: EvSearchSteal, Src: "search", Order: 3, Task: 0, Worker: 1, N: 500},
		{Type: EvSearchSteal, Src: "search", Order: 3, Task: 1, Worker: 0, N: 700},
		{Type: EvRuleAdded, Src: "rewrite", Iter: 2, Rules: 17},
		{Type: EvArmStart, Src: "core", Arm: "derivation", Round: 1},
		{Type: EvArmResult, Src: "core", Arm: "derivation", Round: 1, Verdict: "not-derivable"},
		{Type: EvDeepenRound, Src: "core", Round: 1, Verdict: "unknown"},
		{Type: EvBudgetExhausted, Src: "search", Round: 0, Resource: "nodes"},
		{Type: EvCancelled, Src: "words", Round: 0, Resource: "deadline"},
		{Type: EvPortfolioRealloc, Src: "portfolio", Arm: "kb", Resource: "rules", Old: 32, New: 64, Signal: "fed", Round: 2},
		{Type: EvPortfolioRealloc, Src: "portfolio", Arm: "chase", Resource: "rounds", Old: 8, New: 8, Signal: "stalled", Round: 2},
		{Type: EvVerdict, Src: "chase", Verdict: "implied", Round: 1, Tuples: 10},
	}
}

// The hand-rolled serializer must agree with encoding/json on every field
// it writes: unmarshalling each line back into an Event reproduces the
// fields the type's schema documents.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	events := allEvents()
	for _, e := range events {
		s.Event(e)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("got %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		if got.Type != events[i].Type || got.Src != events[i].Src {
			t.Errorf("line %d: got %s/%s, want %s/%s", i, got.Type, got.Src, events[i].Type, events[i].Src)
		}
	}
	// Zero-valued schema fields must be written explicitly: the first
	// dep_fired line names dependency 0 and replay must see it.
	for _, line := range lines {
		if strings.Contains(line, `"type":"dep_fired"`) {
			if !strings.Contains(line, `"dep":0`) {
				t.Errorf("dep 0 omitted from %q", line)
			}
			break
		}
	}
}

// Events of a type the serializer does not know fall back to encoding/json
// instead of being dropped.
func TestJSONLUnknownType(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Event(Event{Type: "custom_probe", Src: "ext", N: 42})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Type != "custom_probe" || got.N != 42 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func TestReplay(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for _, e := range allEvents() {
		s.Event(e)
	}
	tot, err := Replay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Totals{
		Rounds:            1,
		TriggersMatched:   11,
		TriggersFired:     9,
		TuplesAdded:       3,
		NullsCreated:      6,
		Homomorphisms:     13,
		SearchNodes:       4096 + 32,
		SearchSplits:      1,
		SearchSteals:      2,
		RulesAdded:        1,
		PortfolioReallocs: 2,
		PortfolioGranted:  map[string]int{"rules": 32},
		PerDepFired:       map[int]int{0: 4, 2: 5},
		Verdicts:          map[string]string{"chase": "implied"},
		Stops:             map[string]string{"search": "exhausted:nodes", "words": "deadline"},
		Events:            len(allEvents()),
	}
	if !reflect.DeepEqual(tot, want) {
		t.Errorf("replay totals:\n got %+v\nwant %+v", tot, want)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(strings.NewReader("{\"type\":\"round_start\"}\nnot json\n")); err == nil {
		t.Fatal("want error on malformed line")
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("b.two", 2)
	c.Add("a.one", 1)
	c.Add("b.two", 3)
	if got := c.Get("b.two"); got != 5 {
		t.Errorf("Get(b.two) = %d, want 5", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Errorf("Get(absent) = %d, want 0", got)
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a.one", "b.two"}) {
		t.Errorf("Names() = %v", got)
	}
	snap := c.Snapshot()
	c.Add("a.one", 10)
	if snap["a.one"] != 1 {
		t.Errorf("snapshot not point-in-time: %v", snap)
	}
	out, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"a.one":11,"b.two":5}`; string(out) != want {
		t.Errorf("MarshalJSON = %s, want %s", out, want)
	}
}

func TestCounterSink(t *testing.T) {
	c := NewCounters()
	s := NewCounterSink(c)
	for _, e := range allEvents() {
		s.Event(e)
	}
	for name, want := range map[string]int64{
		"chase.rounds":             1,
		"chase.delta_tuples":       3,
		"chase.triggers_fired":     9,
		"chase.tuples_added":       3,
		"chase.dep.0.fired":        4,
		"chase.dep.2.added":        1,
		"chase.nulls_created":      6,
		"chase.triggers_matched":   11,
		"chase.homomorphisms":      13,
		"search.nodes":             4096,
		"finitemodel.nodes":        32,
		"search.splits":            1,
		"search.tasks":             64,
		"search.steals":            2,
		"search.worker.0.nodes":    700,
		"search.worker.1.nodes":    500,
		"rewrite.rules_added":      1,
		"core.arm.derivation.runs": 1,
		"core.deepen_rounds":       1,
		"chase.verdicts":           1,
		"portfolio.reallocs":       2,
		"portfolio.granted.rules":  32,
		"portfolio.withheld":       1,
	} {
		if got := c.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

type recordSink struct{ events []Event }

func (r *recordSink) Event(e Event) { r.events = append(r.events, e) }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	one := &recordSink{}
	if got := Multi(nil, one); got != Sink(one) {
		t.Error("single sink should be returned unwrapped")
	}
	two := &recordSink{}
	m := Multi(one, two)
	m.Event(Event{Type: EvRoundStart, Round: 9})
	if len(one.events) != 1 || len(two.events) != 1 {
		t.Fatalf("fan-out failed: %d, %d", len(one.events), len(two.events))
	}
	if one.events[0].Round != 9 || two.events[0].Round != 9 {
		t.Error("event mangled in fan-out")
	}
}

func TestProgressSink(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressSink(&buf)
	p.Event(Event{Type: EvRoundEnd, Src: "chase", Round: 2, Tuples: 40})
	p.Event(Event{Type: EvSearchNode, Src: "search", Order: 3, N: 100})
	p.Close()
	out := buf.String()
	for _, want := range []string{"round 2", "tuples 40", "search 100 nodes", "(order 3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Close did not terminate the line")
	}
	var idle bytes.Buffer
	q := NewProgressSink(&idle)
	q.Close()
	if idle.Len() != 0 {
		t.Errorf("Close on idle sink wrote %q", idle.String())
	}
}

package templatedep_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"templatedep/internal/obs"
)

// TestCLI builds every command and drives it end to end: the acceptance
// test a release would gate on. Skipped under -short (it shells out to the
// Go toolchain).
func TestCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin+string(os.PathSeparator), "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	run := func(name string, wantExit int, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.CombinedOutput()
		exit := 0
		if ee, ok := err.(*exec.ExitError); ok {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		if exit != wantExit {
			t.Fatalf("%s %v: exit %d, want %d\n%s", name, args, exit, wantExit, out)
		}
		return string(out)
	}

	t.Run("tdinfer", func(t *testing.T) {
		out := run("tdinfer", 0,
			"-schema", "SUPPLIER,STYLE,SIZE",
			"-dep", "R(a,b,c) & R(a,b',c') -> R(a*,b,c')",
			"-goal", "R(a,b,c) & R(a,b',c') -> R(a*,b,c')",
			"-proof")
		if !strings.Contains(out, "verdict: implied") {
			t.Errorf("output:\n%s", out)
		}
		if !strings.Contains(out, "proof trace") {
			t.Errorf("missing trace:\n%s", out)
		}
	})

	t.Run("tdinfer-trace", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "events.jsonl")
		out := run("tdinfer", 0,
			"-schema", "SUPPLIER,STYLE,SIZE",
			"-dep", "R(a,b,c) & R(a,b',c') -> R(a*,b,c')",
			"-goal", "R(a,b,c) & R(a,b',c') -> R(a*,b,c')",
			"-trace", trace, "-depstats", "-progress")
		if !strings.Contains(out, "per-dependency chase work:") {
			t.Errorf("missing depstats table:\n%s", out)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		tot, err := obs.Replay(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trace does not replay: %v\n%s", err, data)
		}
		if tot.Rounds == 0 || tot.Verdicts["chase"] != "implied" || tot.Verdicts["portfolio"] != "implied" {
			t.Errorf("replay totals %+v from trace:\n%s", tot, data)
		}
		if tot.PortfolioReallocs == 0 {
			t.Errorf("replay totals %+v: expected portfolio_realloc events in the trace", tot)
		}
	})

	// The governance contract end to end: a wall-clock budget on the
	// undecidable gap instance exits 0 with an honest unknown verdict,
	// partial chase statistics, and a trace that still replays cleanly.
	// Pinned to the static race engine — the adaptive portfolio settles
	// this instance (see tdinfer-portfolio-gap below), so only the static
	// sequential run exercises the deadline path on it.
	t.Run("tdinfer-deadline", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "gap.jsonl")
		out := run("tdinfer", 0,
			"-preset", "gap", "-deadline", "100ms", "-engine", "race",
			"-rounds", "100000", "-tuples", "10000000",
			"-trace", trace)
		if !strings.Contains(out, "verdict: unknown") {
			t.Errorf("output:\n%s", out)
		}
		if !strings.Contains(out, "chase stopped by budget: deadline") {
			t.Errorf("missing budget stop line:\n%s", out)
		}
		if !strings.Contains(out, "deadline 100ms reached") {
			t.Errorf("missing deadline notice:\n%s", out)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		tot, err := obs.Replay(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("partial trace does not replay: %v\n%s", err, data)
		}
		if tot.Stops["chase"] != "deadline" {
			t.Errorf("replay stops %v, want chase stopped by deadline", tot.Stops)
		}
		if tot.Verdicts["chase"] != "unknown" || tot.Verdicts["core"] != "unknown" {
			t.Errorf("replay verdicts %v, want unknown from chase and core", tot.Verdicts)
		}
		if tot.Rounds == 0 || tot.TuplesAdded == 0 {
			t.Errorf("replay totals %+v: expected partial chase progress before the deadline", tot)
		}
	})

	// The adaptive portfolio on the same gap instance: the finite-db arm
	// gets leases alongside the diverging chase and finds the 2-tuple
	// database that satisfies D and violates D0 — an answer the static
	// sequential run above never reaches because the chase drains its
	// whole budget first. (The word-level gap property rules out finite
	// CANCELLATION-MODEL counterexamples, not arbitrary finite databases,
	// so the presentation-level verdict for gap stays unknown.)
	t.Run("tdinfer-portfolio-gap", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "gap-portfolio.jsonl")
		out := run("tdinfer", 0,
			"-preset", "gap", "-deadline", "30s",
			"-trace", trace)
		if !strings.Contains(out, "verdict: finite-counterexample") {
			t.Errorf("output:\n%s", out)
		}
		if !strings.Contains(out, "winner: finite-db arm") {
			t.Errorf("missing winner line:\n%s", out)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		tot, err := obs.Replay(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("portfolio trace does not replay: %v\n%s", err, data)
		}
		if tot.Verdicts["portfolio"] != "finite-counterexample" {
			t.Errorf("replay verdicts %v, want finite-counterexample from portfolio", tot.Verdicts)
		}
		if tot.PortfolioReallocs == 0 {
			t.Errorf("replay totals %+v: expected reallocation decisions", tot)
		}
	})

	t.Run("tdreduce", func(t *testing.T) {
		out := run("tdreduce", 0, "-preset", "power")
		for _, want := range []string{"D1[0:", "D4[", "D0:", "max antecedents = 5"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q:\n%s", want, out)
			}
		}
		dot := run("tdreduce", 0, "-preset", "twostep", "-dot")
		if !strings.Contains(dot, "graph") || !strings.Contains(dot, "doublecircle") {
			t.Errorf("dot output:\n%s", dot[:200])
		}
	})

	t.Run("sgword", func(t *testing.T) {
		out := run("sgword", 0, "analyze", "-preset", "power")
		if !strings.Contains(out, "finite-counterexample") {
			t.Errorf("output:\n%s", out)
		}
		out = run("sgword", 0, "derive", "-preset", "chain:2")
		if !strings.Contains(out, "derivable") {
			t.Errorf("output:\n%s", out)
		}
		out = run("sgword", 0, "complete", "-preset", "twostep")
		if !strings.Contains(out, "confluent: true") || !strings.Contains(out, "goal decided: true") {
			t.Errorf("output:\n%s", out)
		}
		out = run("sgword", 0, "model", "-preset", "power")
		if !strings.Contains(out, "model-found") {
			t.Errorf("output:\n%s", out)
		}
	})

	t.Run("sgword-deepen", func(t *testing.T) {
		// The gap preset sits in neither of the Main Theorem's sets, so
		// deepening must report unknown honestly within the deadline
		// instead of grinding a single huge budget.
		out := run("sgword", 0, "analyze", "-preset", "gap", "-deepen", "250ms", "-progress")
		if !strings.Contains(out, "verdict: unknown") {
			t.Errorf("output:\n%s", out)
		}
		if !strings.Contains(out, "deepening:") {
			t.Errorf("missing deepening round count:\n%s", out)
		}
		// -progress writes the live line to stderr; CombinedOutput captures
		// it, so the deepen counter must appear somewhere.
		if !strings.Contains(out, "deepen ") {
			t.Errorf("missing progress line:\n%s", out)
		}
	})

	t.Run("sgword-cert", func(t *testing.T) {
		cert := run("sgword", 0, "derive", "-preset", "twostep", "-cert")
		if !strings.HasPrefix(cert, "cert v1") {
			t.Fatalf("cert output:\n%s", cert)
		}
		f := filepath.Join(t.TempDir(), "cert.txt")
		os.WriteFile(f, []byte(cert), 0o644)
		out := run("sgword", 0, "derive", "-preset", "twostep", "-check-cert", f)
		if !strings.Contains(out, "certificate valid") {
			t.Errorf("output:\n%s", out)
		}
		// A certificate for one presentation must not validate against
		// another.
		bad := run("sgword", 1, "derive", "-preset", "power", "-check-cert", f)
		if !strings.Contains(bad, "sgword:") {
			t.Errorf("cross-presentation cert accepted:\n%s", bad)
		}
	})

	t.Run("tdcheck", func(t *testing.T) {
		dir := t.TempDir()
		db := filepath.Join(dir, "db.txt")
		deps := filepath.Join(dir, "deps.td")
		os.WriteFile(db, []byte("R(StLaurent, EveningDress, 10)\nR(StLaurent, Brief, 36)\n"), 0o644)
		os.WriteFile(deps, []byte("fig1: R(a,b,c) & R(a,b',c') -> R(a*,b,c')\n"), 0o644)
		out := run("tdcheck", 1,
			"-schema", "SUPPLIER,STYLE,SIZE", "-db", db, "-deps", deps, "-repair")
		for _, want := range []string{"VIOLATED", "repair: 2 tuples to add", "_supplier"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q:\n%s", want, out)
			}
		}
	})

	// The certificate product surface end to end: tdinfer writes the
	// verdict's proof object, tdcheck re-verifies it with no engine in the
	// loop, and a tampered byte is rejected with a precise error.
	t.Run("tdinfer-cert-to-tdcheck-verify", func(t *testing.T) {
		dir := t.TempDir()
		chainCert := filepath.Join(dir, "chain.cert.json")
		out := run("tdinfer", 0, "-preset", "chain:2", "-cert", chainCert)
		if !strings.Contains(out, "verdict: implied") || !strings.Contains(out, "certificate: kind=chase") {
			t.Fatalf("tdinfer -cert output:\n%s", out)
		}
		ver := run("tdcheck", 0, "-verify", chainCert)
		if !strings.Contains(ver, "certificate OK") || !strings.Contains(ver, "chase trace:") {
			t.Errorf("tdcheck -verify output:\n%s", ver)
		}
		// The finite-counterexample side, with the -proof epilogue.
		powerCert := filepath.Join(dir, "power.cert.json")
		out = run("tdinfer", 0, "-preset", "power", "-proof", "-cert", powerCert)
		for _, want := range []string{"verdict: finite-counterexample", "counter-database:", "witness semigroup", "multiplication table"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q in -proof output:\n%s", want, out)
			}
		}
		ver = run("tdcheck", 0, "-verify", powerCert)
		if !strings.Contains(ver, `verdict "finite-counterexample" is certified`) {
			t.Errorf("tdcheck -verify power output:\n%s", ver)
		}
		// A single tampered byte must be rejected.
		data, err := os.ReadFile(chainCert)
		if err != nil {
			t.Fatal(err)
		}
		bad := filepath.Join(dir, "bad.cert.json")
		os.WriteFile(bad, bytes.Replace(data, []byte(`"version": 1`), []byte(`"version": 7`), 1), 0o644)
		rej := run("tdcheck", 1, "-verify", bad)
		if !strings.Contains(rej, "REJECTED") {
			t.Errorf("tampered cert accepted:\n%s", rej)
		}
	})

	t.Run("tdreduce-to-tdinfer-pipeline", func(t *testing.T) {
		// The Main Theorem's direction (A), end to end across process
		// boundaries: tdreduce emits (D, D0) for a derivable presentation;
		// tdinfer independently proves the implication by chasing.
		dir := t.TempDir()
		run("tdreduce", 0, "-preset", "twostep", "-emit-dir", dir)
		schema, err := os.ReadFile(filepath.Join(dir, "schema.txt"))
		if err != nil {
			t.Fatal(err)
		}
		goal, err := os.ReadFile(filepath.Join(dir, "goal.td"))
		if err != nil {
			t.Fatal(err)
		}
		out := run("tdinfer", 0,
			"-schema", strings.TrimSpace(string(schema)),
			"-deps", filepath.Join(dir, "deps.td"),
			"-goal", strings.TrimSpace(string(goal)),
			"-rounds", "16")
		if !strings.Contains(out, "verdict: implied") {
			t.Errorf("pipeline output:\n%s", out)
		}
	})

	t.Run("tddiagram", func(t *testing.T) {
		out := run("tddiagram", 0, "-fig1")
		if !strings.Contains(out, "1 --[SUPPLIER]-- 2") {
			t.Errorf("output:\n%s", out)
		}
	})

	t.Run("tmrun", func(t *testing.T) {
		out := run("tmrun", 0, "-machine", "write-one", "-analyze")
		if !strings.Contains(out, "halted=true") || !strings.Contains(out, "derivable") {
			t.Errorf("output:\n%s", out)
		}
	})

	// The service lifecycle across a real process boundary: start tdserve
	// on an ephemeral port, get a cold verdict and a renamed cache hit over
	// HTTP, SIGTERM it, and require a clean drain whose trace ends with the
	// single serve_shutdown event and replays to the printed counters.
	t.Run("tdserve", func(t *testing.T) {
		trace := filepath.Join(t.TempDir(), "serve.jsonl")
		cmd := exec.Command(filepath.Join(bin, "tdserve"),
			"-addr", "127.0.0.1:0", "-request-timeout", "5s", "-trace", trace)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()

		sc := bufio.NewScanner(stdout)
		var lines []string
		readLine := func() string {
			if !sc.Scan() {
				t.Fatalf("tdserve stdout closed early; got:\n%s", strings.Join(lines, "\n"))
			}
			lines = append(lines, sc.Text())
			return sc.Text()
		}
		addr, ok := strings.CutPrefix(readLine(), "tdserve: listening on ")
		if !ok {
			t.Fatalf("unexpected first line:\n%s", strings.Join(lines, "\n"))
		}

		post := func(path, body string) map[string]any {
			t.Helper()
			res, err := http.Post("http://"+addr+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer res.Body.Close()
			if res.StatusCode != http.StatusOK {
				t.Fatalf("status %d", res.StatusCode)
			}
			var m map[string]any
			if err := json.NewDecoder(res.Body).Decode(&m); err != nil {
				t.Fatal(err)
			}
			return m
		}
		// ?cert=1 returns the verdict's certificate inline.
		cold := post("/infer?cert=1", `{"preset":"power"}`)
		if cold["source"] != "cold" || cold["verdict"] != "finite-counterexample" {
			t.Errorf("cold response: %v", cold)
		}
		if c, ok := cold["cert"].(map[string]any); !ok || c["kind"] != "finite-model" {
			t.Errorf("cold response carries no finite-model certificate: %v", cold["cert"])
		}
		// The power presentation under renamed symbols, zero equations left
		// implicit: canonicalization must route it to the same cache line.
		// Without ?cert=1 the certificate is stripped from the wire.
		hit := post("/infer", `{"alphabet":["A0","Q","Z"],"a0":"A0","zero":"Z","equations":["A0 A0 = Q"]}`)
		if hit["source"] != "cache" || hit["key"] != cold["key"] || hit["verdict"] != cold["verdict"] {
			t.Errorf("renamed twin response: %v (cold was %v)", hit, cold)
		}
		if hit["cert"] != nil {
			t.Errorf("certificate served without opt-in: %v", hit["cert"])
		}

		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("tdserve exit: %v; output:\n%s", err, strings.Join(lines, "\n"))
		}
		out := strings.Join(lines, "\n")
		if !strings.Contains(out, "tdserve: drained. requests=2 cold=1 warm=0 cache_hits=1 dedups=0") {
			t.Errorf("drain summary:\n%s", out)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		tot, err := obs.Replay(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("serve trace does not replay: %v\n%s", err, data)
		}
		if tot.ServeRequests != 2 || tot.ServeMisses != 1 || tot.ServeCacheHits != 1 || tot.ServeShutdowns != 1 {
			t.Errorf("replay totals %+v from trace:\n%s", tot, data)
		}
		tl := strings.TrimSpace(string(data))
		if last := tl[strings.LastIndexByte(tl, '\n')+1:]; !strings.Contains(last, `"type":"serve_shutdown"`) {
			t.Errorf("trace does not end with serve_shutdown: %s", last)
		}
	})
}

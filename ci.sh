#!/usr/bin/env bash
# Repo CI gate: formatting, build, vet, docs freshness, and the full test
# suite under the race detector. The chase worker-pool tests
# (TestIntraDependencyPartitioning, TestParallelWorkers) exercise
# intra-dependency delta partitioning with Workers > 1, and the parallel
# counter-model search tests (TestParallelDeterministicWitness,
# TestParallelDeterministicCounterexample) run the psearch worker pool with
# Workers up to 4, so -race covers every concurrent path.
set -euo pipefail
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Docs freshness: every exported event type in internal/obs must be
# documented in docs/OBSERVABILITY.md (both the Go constant and its wire
# name), so the schema contract cannot silently drift from the code.
while read -r const wire; do
    for token in "$const" "$wire"; do
        if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
            echo "docs/OBSERVABILITY.md: event type $token (from internal/obs/obs.go) is undocumented" >&2
            exit 1
        fi
    done
done < <(sed -n 's/^\t\(Ev[A-Za-z0-9]*\) EventType = "\([a-z_]*\)"$/\1 \2/p' internal/obs/obs.go)

# Same freshness bar for the governor vocabulary: every resource meter and
# stop reason internal/budget can put on the wire must appear in the event
# schema docs.
for token in rounds tuples nodes words rules context deadline; do
    if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
        echo "docs/OBSERVABILITY.md: budget resource/reason \"$token\" (from internal/budget) is undocumented" >&2
        exit 1
    fi
done

go test -race ./...

# The parallel-search determinism contract under the race detector,
# explicitly: the shared worker-pool core and both engines built on it.
# Redundant with the full -race sweep above, but cheap, and it keeps the
# contract's coverage visible even if the sweep's scope ever changes.
go test -race -count=1 ./internal/psearch ./internal/search ./internal/finitemodel

# Governance smoke: a wall-clock budget on the undecidable gap preset must
# come back promptly (bounded cancellation latency), exit 0 with an honest
# "unknown", and leave a trace that replays (the JSONL parses and carries
# the chase's deadline stop marker).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go build -o "$smoke/tdinfer" ./cmd/tdinfer
out=$("$smoke/tdinfer" -preset gap -deadline 100ms -rounds 100000 \
    -tuples 10000000 -trace "$smoke/gap.jsonl")
grep -q "verdict: unknown" <<<"$out" || {
    echo "ci: gap smoke: expected unknown verdict, got:" >&2
    echo "$out" >&2
    exit 1
}
grep -q '"type":"cancelled","src":"chase".*"resource":"deadline"' "$smoke/gap.jsonl" || {
    echo "ci: gap smoke: trace has no chase deadline stop event" >&2
    exit 1
}
grep -q '"type":"verdict","src":"core","verdict":"unknown"' "$smoke/gap.jsonl" || {
    echo "ci: gap smoke: trace does not close with an unknown core verdict" >&2
    exit 1
}

# Bench smoke: the search benchmark emitter must produce a report that
# parses and carries every ablation arm (serial/parallel-4 x
# symmetry/none) with identical verdicts. -searchquick times one run per
# arm, so this checks structure, not statistics.
go build -o "$smoke/tdbench" ./cmd/tdbench
"$smoke/tdbench" -searchjson "$smoke/BENCH_search.json" -searchquick >/dev/null
"$smoke/tdbench" -checksearch "$smoke/BENCH_search.json"

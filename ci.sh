#!/usr/bin/env bash
# Repo CI gate: formatting, build, vet, docs freshness, and the full test
# suite under the race detector. The chase worker-pool tests
# (TestIntraDependencyPartitioning, TestParallelWorkers) exercise
# intra-dependency delta partitioning with Workers > 1, so -race covers the
# concurrent join paths.
set -euo pipefail
cd "$(dirname "$0")"

unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Docs freshness: every exported event type in internal/obs must be
# documented in docs/OBSERVABILITY.md (both the Go constant and its wire
# name), so the schema contract cannot silently drift from the code.
while read -r const wire; do
    for token in "$const" "$wire"; do
        if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
            echo "docs/OBSERVABILITY.md: event type $token (from internal/obs/obs.go) is undocumented" >&2
            exit 1
        fi
    done
done < <(sed -n 's/^\t\(Ev[A-Za-z0-9]*\) EventType = "\([a-z_]*\)"$/\1 \2/p' internal/obs/obs.go)

go test -race ./...

#!/usr/bin/env bash
# Repo CI gate, as a staged pipeline. Each stage is named, timed, and runs
# under a hard wall-clock limit (`timeout --foreground`): a stuck stage —
# a hung replica, a divergent chase, a deadlocked worker pool — FAILS with
# its elapsed time in the summary instead of hanging the pipeline. The
# script always ends with a per-stage pass/fail summary; on failure the
# summary shows exactly which stage died and how long it ran, and any
# reports/traces produced so far are copied to $CI_ARTIFACTS (when set)
# for upload.
#
# Stages (limit in seconds):
#   static  (300) — gofmt, build, vet, docs-freshness greps
#   unit    (600) — full test suite, -count=1 (no cached results)
#   race    (900) — full suite under the race detector (chase worker
#                   pool, psearch pool, and the serving layer's
#                   singleflight/drain paths are all concurrent code)
#   smoke   (300) — end-to-end binaries: tdinfer governed runs on the
#                   undecidable gap preset (static race under a deadline,
#                   and the adaptive portfolio's finite-db answer);
#                   tdserve under a duplicate-heavy tdbench -loadjson
#                   burst with graceful-drain assertions
#   shard   (300) — the multi-replica tier: 3 tdserve replicas with disk
#                   stores and a consistent-hash ring,
#                   certificate-verified peer fills under a burst, then a
#                   kill+restart with the first repeat served from the
#                   store (no recompute)
#   bench   (900) — structural validation of the benchmark emitters:
#                   fresh -searchjson, -portfoliojson, and -shardjson
#                   reports plus the committed BENCH_chase.json,
#                   BENCH_portfolio.json, and BENCH_serve.json
#   fuzz    (600) — the continuous differential gate: a fresh seeded
#                   ~100-instance corpus through every engine with zero
#                   cross-engine disagreements, zero oracle mismatches,
#                   and every definitive verdict certified, plus the
#                   committed BENCH_fuzz.json revalidated
set -euo pipefail
cd "$(dirname "$0")"

SUMMARY=()
CURRENT_STAGE=""
STAGE_START=0
smoke=$(mktemp -d)
export smoke

on_exit() {
    local rc=$?
    # Stage bodies run in child shells; anything they left behind (tdserve
    # replicas, a hung tdbench) runs a binary built under $smoke, so this
    # sweep is exact.
    pkill -f "$smoke/" 2>/dev/null || true
    if [[ $rc -ne 0 && -n "${CI_ARTIFACTS:-}" ]]; then
        mkdir -p "$CI_ARTIFACTS"
        (cd "$smoke" && find . -type f \( -name '*.json' -o -name '*.jsonl' -o -name '*.out' \) \
            -exec cp --parents -t "$CI_ARTIFACTS" {} +) 2>/dev/null || true
    fi
    rm -rf "$smoke"
    if [[ $rc -ne 0 && -n "$CURRENT_STAGE" ]]; then
        SUMMARY+=("$(printf '%-8s FAIL  %4ds' "$CURRENT_STAGE" $((SECONDS - STAGE_START)))")
    fi
    echo
    echo "ci summary:"
    printf '  %s\n' "${SUMMARY[@]}"
    if [[ $rc -eq 0 ]]; then
        echo "  all stages passed"
    else
        echo "  FAILED (exit $rc)"
    fi
}
trap on_exit EXIT

# run_stage NAME LIMIT FN runs stage function FN (exported below) in a
# child shell under a hard LIMIT-second timeout. rc 124/137 is the timeout
# itself (SIGTERM / the -k SIGKILL escalation); any nonzero rc fails the
# pipeline with the stage marked in the summary.
run_stage() {
    local name=$1 limit=$2 fn=$3 rc=0
    CURRENT_STAGE=$name
    STAGE_START=$SECONDS
    echo "=== stage: $name (limit ${limit}s)"
    timeout --foreground --kill-after=10 "$limit" bash -c "set -euo pipefail; $fn" || rc=$?
    local elapsed=$((SECONDS - STAGE_START))
    if [[ $rc -eq 124 || $rc -eq 137 ]]; then
        SUMMARY+=("$(printf '%-8s FAIL  %4ds (hit the %ss stage limit)' "$name" "$elapsed" "$limit")")
        CURRENT_STAGE=""
        echo "ci: stage $name exceeded its ${limit}s limit" >&2
        exit 1
    elif [[ $rc -ne 0 ]]; then
        SUMMARY+=("$(printf '%-8s FAIL  %4ds' "$name" "$elapsed")")
        CURRENT_STAGE=""
        exit "$rc"
    fi
    SUMMARY+=("$(printf '%-8s ok    %4ds' "$name" "$elapsed")")
    CURRENT_STAGE=""
}

stage_static() {
    local unformatted
    unformatted=$(gofmt -l .)
    if [[ -n "$unformatted" ]]; then
        echo "gofmt: the following files need formatting:" >&2
        echo "$unformatted" >&2
        exit 1
    fi

    go build ./...
    go vet ./...

    # Docs freshness: every exported event type in internal/obs must be
    # documented in docs/OBSERVABILITY.md (both the Go constant and its wire
    # name), so the schema contract cannot silently drift from the code.
    while read -r const wire; do
        for token in "$const" "$wire"; do
            if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
                echo "docs/OBSERVABILITY.md: event type $token (from internal/obs/obs.go) is undocumented" >&2
                exit 1
            fi
        done
    done < <(sed -n 's/^\t\(Ev[A-Za-z0-9]*\) EventType = "\([a-z_]*\)"$/\1 \2/p' internal/obs/obs.go)

    # Same freshness bar for the governor vocabulary: every resource meter and
    # stop reason internal/budget can put on the wire must appear in the event
    # schema docs.
    for token in rounds tuples nodes words rules context deadline; do
        if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
            echo "docs/OBSERVABILITY.md: budget resource/reason \"$token\" (from internal/budget) is undocumented" >&2
            exit 1
        fi
    done

    # And for the serving layer's counter vocabulary: every serve.* counter
    # the server bumps must appear in the schema docs.
    for token in serve.requests serve.cache_hits serve.cache_misses serve.dedups serve.warm serve.shutdowns serve.cert_checked serve.cert_rejected \
        serve.store_hits serve.peer_fills serve.peer_ok serve.peer_rejected serve.peer_unknown serve.peer_down; do
        if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
            echo "docs/OBSERVABILITY.md: serve counter \"$token\" (from internal/serve) is undocumented" >&2
            exit 1
        fi
    done

    # The disk store's counter vocabulary gets the same freshness bar.
    for token in store.recovers store.recovered_records store.superseded_records store.dropped_bytes \
        store.puts store.put_skips store.written_bytes store.compactions store.reclaimed_bytes; do
        if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
            echo "docs/OBSERVABILITY.md: store counter \"$token\" (from internal/store) is undocumented" >&2
            exit 1
        fi
    done

    # The portfolio's reallocation vocabulary: the event type must be
    # documented in both the schema docs and the architecture map, and every
    # portfolio.* counter CounterSink maintains must appear in the schema
    # docs.
    for doc in docs/OBSERVABILITY.md docs/ARCHITECTURE.md; do
        if ! grep -q -- "portfolio_realloc" "$doc"; then
            echo "$doc: the portfolio_realloc event (from internal/portfolio) is undocumented" >&2
            exit 1
        fi
    done
    for token in portfolio.reallocs portfolio.granted portfolio.withheld portfolio.retired; do
        if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
            echo "docs/OBSERVABILITY.md: portfolio counter \"$token\" (from internal/obs) is undocumented" >&2
            exit 1
        fi
    done

    # The differential fuzzer's counter vocabulary: the per-family counter
    # is documented as a pattern, so grep for its stable prefix.
    for token in fuzz.cases fuzz.disagreements fuzz.family.; do
        if ! grep -q -- "$token" docs/OBSERVABILITY.md; then
            echo "docs/OBSERVABILITY.md: fuzz counter \"$token\" (from internal/obs) is undocumented" >&2
            exit 1
        fi
    done

    # The architecture map must cover every internal package and every
    # command, so the package inventory cannot silently drift from the tree.
    for pkg in internal/*/ cmd/*/; do
        name=$(basename "$pkg")
        if ! grep -q -- "$name" docs/ARCHITECTURE.md; then
            echo "docs/ARCHITECTURE.md: package $pkg is missing from the map" >&2
            exit 1
        fi
    done
}

stage_unit() {
    go test -count=1 ./...
}

stage_race() {
    # The full suite again under the race detector. The chase worker-pool
    # tests (TestIntraDependencyPartitioning, TestParallelWorkers, the
    # Workers=4 arms of TestWarmVsColdIdentical), the parallel counter-model
    # search tests (TestParallelDeterministicWitness,
    # TestParallelDeterministicCounterexample), and the serving layer's
    # singleflight/drain/state-flight tests all run real concurrency, so this
    # sweep covers every concurrent path in the repo, including the parallel
    # chase round pool and the warm-start state cache.
    go test -race -count=1 ./...
}

stage_smoke() {
    # Governance smoke: a wall-clock budget on the undecidable gap preset must
    # come back promptly (bounded cancellation latency), exit 0 with an honest
    # "unknown", and leave a trace that replays (the JSONL parses and carries
    # the chase's deadline stop marker). Pinned to the static race: the
    # adaptive portfolio *answers* this instance (asserted below), so only
    # -engine race exercises the deadline path on it.
    go build -o "$smoke/tdinfer" ./cmd/tdinfer
    out=$("$smoke/tdinfer" -engine race -preset gap -deadline 100ms -rounds 100000 \
        -tuples 10000000 -trace "$smoke/gap.jsonl")
    grep -q "verdict: unknown" <<<"$out" || {
        echo "ci: gap smoke: expected unknown verdict, got:" >&2
        echo "$out" >&2
        exit 1
    }
    grep -q '"type":"cancelled","src":"chase".*"resource":"deadline"' "$smoke/gap.jsonl" || {
        echo "ci: gap smoke: trace has no chase deadline stop event" >&2
        exit 1
    }
    grep -q '"type":"verdict","src":"core","verdict":"unknown"' "$smoke/gap.jsonl" || {
        echo "ci: gap smoke: trace does not close with an unknown core verdict" >&2
        exit 1
    }

    # Portfolio smoke: the default engine settles the same TD instance — the
    # finite-db arm finds the 2-tuple database the sequential run never
    # reaches (DESIGN.md §12) — and its trace carries the reallocation
    # decisions.
    out=$("$smoke/tdinfer" -preset gap -deadline 30s -trace "$smoke/gap_pf.jsonl")
    grep -q "verdict: finite-counterexample" <<<"$out" || {
        echo "ci: portfolio gap smoke: expected finite-counterexample, got:" >&2
        echo "$out" >&2
        exit 1
    }
    grep -q "winner: finite-db arm" <<<"$out" || {
        echo "ci: portfolio gap smoke: expected the finite-db arm to win, got:" >&2
        echo "$out" >&2
        exit 1
    }
    grep -q '"type":"portfolio_realloc"' "$smoke/gap_pf.jsonl" || {
        echo "ci: portfolio gap smoke: trace has no portfolio_realloc events" >&2
        exit 1
    }
    grep -q '"type":"verdict","src":"portfolio","verdict":"finite-counterexample"' "$smoke/gap_pf.jsonl" || {
        echo "ci: portfolio gap smoke: trace does not close with the portfolio verdict" >&2
        exit 1
    }

    # Certificate smoke: every definitive verdict carries a proof object the
    # standalone checker accepts with no engine in the loop (gap's database
    # counterexample through the portfolio, chain's chase proof), and a
    # single tampered byte is rejected with a nonzero exit.
    go build -o "$smoke/tdcheck" ./cmd/tdcheck
    "$smoke/tdinfer" -preset gap -deadline 30s -cert "$smoke/gap.cert.json" >/dev/null
    "$smoke/tdcheck" -verify "$smoke/gap.cert.json" >/dev/null || {
        echo "ci: cert smoke: gap certificate rejected" >&2
        exit 1
    }
    "$smoke/tdinfer" -preset chain:2 -cert "$smoke/chain.cert.json" >/dev/null
    "$smoke/tdcheck" -verify "$smoke/chain.cert.json" >/dev/null || {
        echo "ci: cert smoke: chain certificate rejected" >&2
        exit 1
    }
    sed 's/"version": 1/"version": 7/' "$smoke/chain.cert.json" >"$smoke/tampered.cert.json"
    if "$smoke/tdcheck" -verify "$smoke/tampered.cert.json" >/dev/null 2>&1; then
        echo "ci: cert smoke: tampered certificate was accepted" >&2
        exit 1
    fi

    # Parallel determinism smoke: the chase event stream is a pure function
    # of the problem — byte-identical for every -workers value. The raw trace
    # interleaves the implication arm with the racing counter-model arm
    # (whose cancellation point is scheduling-dependent), so the comparison
    # filters to the chase layer's own events.
    "$smoke/tdinfer" -preset chain:1 -rounds 64 -tuples 200000 \
        -workers 1 -trace "$smoke/chain_w1.jsonl" >/dev/null
    "$smoke/tdinfer" -preset chain:1 -rounds 64 -tuples 200000 \
        -workers 4 -trace "$smoke/chain_w4.jsonl" >/dev/null
    grep '"src":"chase"' "$smoke/chain_w1.jsonl" >"$smoke/chase_w1.jsonl"
    grep '"src":"chase"' "$smoke/chain_w4.jsonl" >"$smoke/chase_w4.jsonl"
    cmp -s "$smoke/chase_w1.jsonl" "$smoke/chase_w4.jsonl" || {
        echo "ci: parallel smoke: chase traces differ between -workers 1 and -workers 4:" >&2
        diff "$smoke/chase_w1.jsonl" "$smoke/chase_w4.jsonl" | head -20 >&2
        exit 1
    }

    # Serve smoke: start tdserve, fire a duplicate-heavy burst through
    # tdbench -loadjson (which itself fails on a zero hit rate or on verdict /
    # canonical-key inconsistency across repeats), then SIGTERM and assert a
    # clean drain: the "drained." line prints and the trace's final event is
    # the single serve_shutdown.
    go build -o "$smoke/tdbench" ./cmd/tdbench
    go build -o "$smoke/tdserve" ./cmd/tdserve
    "$smoke/tdserve" -addr 127.0.0.1:0 -request-timeout 2s \
        -trace "$smoke/serve.jsonl" >"$smoke/serve.out" 2>&1 &
    local srv_pid=$!
    local serve_addr=""
    for _ in $(seq 1 50); do
        serve_addr=$(sed -n 's/^tdserve: listening on //p' "$smoke/serve.out")
        [[ -n "$serve_addr" ]] && break
        sleep 0.1
    done
    [[ -n "$serve_addr" ]] || {
        echo "ci: serve smoke: tdserve never reported its address:" >&2
        cat "$smoke/serve.out" >&2
        exit 1
    }
    "$smoke/tdbench" -loadjson "$smoke/load.json" -loadserver "http://$serve_addr" \
        -loadn 40 -loadc 8
    kill -TERM "$srv_pid"
    wait "$srv_pid" || {
        echo "ci: serve smoke: tdserve exited nonzero:" >&2
        cat "$smoke/serve.out" >&2
        exit 1
    }
    grep -q '^tdserve: drained\.' "$smoke/serve.out" || {
        echo "ci: serve smoke: no drained line in tdserve output:" >&2
        cat "$smoke/serve.out" >&2
        exit 1
    }
    [[ "$(grep -c '"type":"serve_shutdown"' "$smoke/serve.jsonl")" == 1 ]] || {
        echo "ci: serve smoke: expected exactly one serve_shutdown event" >&2
        exit 1
    }
    tail -1 "$smoke/serve.jsonl" | grep -q '"type":"serve_shutdown"' || {
        echo "ci: serve smoke: trace does not end with serve_shutdown:" >&2
        tail -3 "$smoke/serve.jsonl" >&2
        exit 1
    }
}

stage_shard() {
    # Shard smoke: three real tdserve replicas share a temp store directory
    # (one append-log each) and split the canonical key-space by consistent
    # hashing over fixed local ports. A duplicate-heavy burst fired at
    # replica A must produce certificate-verified peer fills (keys owned by
    # the other replicas come back source "peer") and write-through store
    # puts; then replica A is SIGTERMed and restarted on the same log and
    # address, and a repeat of a previously-answered key must be served
    # from disk (source "store") with zero engine recomputes.
    local sharddir="$smoke/shard"
    mkdir -p "$sharddir"
    local shard_ports=(7471 7472 7473)
    local shard_peers="http://127.0.0.1:7471,http://127.0.0.1:7472,http://127.0.0.1:7473"
    local shard_pids=()
    start_replica() { # port; leaves the pid in $! for the caller
        "$smoke/tdserve" -addr "127.0.0.1:$1" -request-timeout 5s \
            -store "$sharddir/rep$1.log" \
            -peers "$shard_peers" -self "http://127.0.0.1:$1" \
            >>"$sharddir/rep$1.out" 2>&1 &
    }
    await_replica() { # port
        for _ in $(seq 1 100); do
            if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then
                return 0
            fi
            sleep 0.1
        done
        echo "ci: shard smoke: replica on port $1 never became healthy:" >&2
        cat "$sharddir/rep$1.out" >&2
        return 1
    }
    for i in 0 1 2; do
        start_replica "${shard_ports[$i]}"
        shard_pids[$i]=$!
    done
    for port in "${shard_ports[@]}"; do
        await_replica "$port"
    done

    # The burst at replica A. -loadjson itself cross-checks the client's
    # per-source outcomes against A's /metrics movement, so a nonzero
    # "peer" count below is already certificate-verified adoptions
    # (serve.peer_ok), not mere attempts.
    "$smoke/tdbench" -loadjson "$sharddir/load.json" \
        -loadserver "http://127.0.0.1:${shard_ports[0]}" -loadn 48 -loadc 6
    local metrics peer_ok store_puts
    metrics=$(curl -sf "http://127.0.0.1:${shard_ports[0]}/metrics")
    peer_ok=$(grep -o '"serve.peer_ok":[0-9]*' <<<"$metrics" | grep -o '[0-9]*$' || echo 0)
    store_puts=$(grep -o '"store.puts":[0-9]*' <<<"$metrics" | grep -o '[0-9]*$' || echo 0)
    if [[ "$peer_ok" -eq 0 ]]; then
        echo "ci: shard smoke: no certificate-verified peer fills at replica A — the ring never split the key-space" >&2
        exit 1
    fi
    if [[ "$store_puts" -eq 0 ]]; then
        echo "ci: shard smoke: no write-through store puts at replica A" >&2
        exit 1
    fi

    # Kill replica A, restart it on the same store file and address, and
    # repeat a key it answered during the burst: the answer must come off
    # the disk store, and the fresh process must have run zero engines
    # (serve.cache_misses still unmoved).
    kill -TERM "${shard_pids[0]}"
    wait "${shard_pids[0]}" || {
        echo "ci: shard smoke: replica A exited nonzero:" >&2
        cat "$sharddir/rep${shard_ports[0]}.out" >&2
        exit 1
    }
    start_replica "${shard_ports[0]}"
    shard_pids[0]=$!
    await_replica "${shard_ports[0]}"
    local repeat
    repeat=$(curl -sf -d '{"preset":"power"}' "http://127.0.0.1:${shard_ports[0]}/infer")
    grep -q '"source":"store"' <<<"$repeat" || {
        echo "ci: shard smoke: restarted replica did not answer the repeat from its store:" >&2
        echo "$repeat" >&2
        exit 1
    }
    metrics=$(curl -sf "http://127.0.0.1:${shard_ports[0]}/metrics")
    if grep -o '"serve.cache_misses":[0-9]*' <<<"$metrics" | grep -qv ':0$'; then
        echo "ci: shard smoke: restarted replica ran an engine on a stored key" >&2
        exit 1
    fi
    for pid in "${shard_pids[@]}"; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "${shard_pids[@]}"; do
        wait "$pid" || true
    done
}

stage_bench() {
    # The search benchmark emitter must produce a report that parses and
    # carries every ablation arm (serial/parallel-4 x symmetry/none) with
    # identical verdicts. -searchquick times one run per arm, so this checks
    # structure, not statistics.
    "$smoke/tdbench" -searchjson "$smoke/BENCH_search.json" -searchquick >/dev/null
    "$smoke/tdbench" -checksearch "$smoke/BENCH_search.json"

    # The committed chase benchmark snapshot must stay structurally valid:
    # parses, every workload present, the index/scan/parallel arms of each
    # chase workload agree on the verdict, warm-repeat columns present with
    # matching verdicts, and at least one workload shows the >=2x warm-start
    # latency drop.
    "$smoke/tdbench" -checkbench BENCH_chase.json

    # The portfolio comparison emitter: a fresh quick report (one timed run
    # per side) must parse with race/portfolio verdicts consistent on every
    # preset, and the committed full report must additionally satisfy the
    # acceptance thresholds (within noise on >=2 presets, kb >=2x on the
    # KB-decidable one).
    "$smoke/tdbench" -portfoliojson "$smoke/BENCH_portfolio.json" -portfolioquick >/dev/null
    "$smoke/tdbench" -checkportfolio "$smoke/BENCH_portfolio.json"
    "$smoke/tdbench" -checkportfolio BENCH_portfolio.json

    # The shard/restart drill emitter: a fresh quick report (3 in-process
    # replicas, 3 burst rounds, kill+restart) must parse and satisfy the
    # structural gates — key-space split across shards, nonzero verified
    # peer fills, every restart-warm repeat served from the store with zero
    # recomputes — and the committed full report must too.
    "$smoke/tdbench" -shardjson "$smoke/BENCH_serve.json" -shardquick >/dev/null
    "$smoke/tdbench" -checkserve "$smoke/BENCH_serve.json"
    "$smoke/tdbench" -checkserve BENCH_serve.json
}

stage_fuzz() {
    # The continuous differential gate. A fresh ~100-instance corpus (fixed
    # seed: this stage gates the CODE; the nightly workflow rotates seeds to
    # grow coverage) runs through every engine under matched governors.
    # -fuzzjson itself exits nonzero on any cross-engine disagreement, and
    # -checkfuzz re-enforces the acceptance gates from the report alone:
    # all three families present, zero disagreements, zero oracle
    # mismatches, every definitive consensus verdict certified. The
    # committed full-corpus BENCH_fuzz.json must satisfy the same gates.
    "$smoke/tdbench" -fuzzjson "$smoke/BENCH_fuzz.json" -fuzzquick -fuzzseed 7
    "$smoke/tdbench" -checkfuzz "$smoke/BENCH_fuzz.json"
    "$smoke/tdbench" -checkfuzz BENCH_fuzz.json
}

export -f stage_static stage_unit stage_race stage_smoke stage_shard stage_bench stage_fuzz

run_stage static 300 stage_static
run_stage unit 600 stage_unit
run_stage race 900 stage_race
run_stage smoke 300 stage_smoke
run_stage shard 300 stage_shard
run_stage bench 900 stage_bench
run_stage fuzz 600 stage_fuzz

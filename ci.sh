#!/usr/bin/env bash
# Repo CI gate: build, vet, and the full test suite under the race
# detector. The chase worker-pool tests (TestIntraDependencyPartitioning,
# TestParallelWorkers) exercise intra-dependency delta partitioning with
# Workers > 1, so -race covers the concurrent join paths.
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go test -race ./...

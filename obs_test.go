package templatedep_test

import (
	"bytes"
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/obs"
	"templatedep/internal/reduction"
	"templatedep/internal/relation"
	"templatedep/internal/td"
	"templatedep/internal/words"
)

// A trace file is only trustworthy if it replays to the run it describes:
// folding the JSONL stream back together must reproduce the Stats the
// chase itself reported, on the paper's own implication workloads.
func TestTraceReplayMatchesStats(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"chain1", words.ChainPresentation(1)},
		{"chain2", words.ChainPresentation(2)},
		{"chain3", words.ChainPresentation(3)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := reduction.MustBuild(tc.p)
			var buf bytes.Buffer
			opt := chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 32, Tuples: 200000}), SemiNaive: true,
				Sink: obs.NewJSONLSink(&buf)}
			res, err := chase.Implies(in.D, in.D0, opt)
			if err != nil {
				t.Fatal(err)
			}
			tot, err := obs.Replay(&buf)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if tot.Rounds != st.Rounds {
				t.Errorf("rounds: replay %d, stats %d", tot.Rounds, st.Rounds)
			}
			if tot.TriggersMatched != st.TriggersMatched {
				t.Errorf("matched: replay %d, stats %d", tot.TriggersMatched, st.TriggersMatched)
			}
			if tot.TriggersFired != st.TriggersFired {
				t.Errorf("fired: replay %d, stats %d", tot.TriggersFired, st.TriggersFired)
			}
			if tot.TuplesAdded != st.TuplesAdded {
				t.Errorf("added: replay %d, stats %d", tot.TuplesAdded, st.TuplesAdded)
			}
			if tot.NullsCreated != st.NullsCreated {
				t.Errorf("nulls: replay %d, stats %d", tot.NullsCreated, st.NullsCreated)
			}
			if tot.Homomorphisms != st.HomomorphismsSeen {
				t.Errorf("homs: replay %d, stats %d", tot.Homomorphisms, st.HomomorphismsSeen)
			}
			if got := tot.Verdicts["chase"]; got != res.Verdict.String() {
				t.Errorf("verdict: replay %q, run %q", got, res.Verdict)
			}
		})
	}
}

// The chase emits events only from its sequential merge phase, so the trace
// must be byte-identical no matter how many workers enumerate triggers —
// the same guarantee the engine gives for its results, extended to its
// observability.
func TestEventStreamWorkerIndependent(t *testing.T) {
	s := relation.MustSchema("A", "B", "C")
	deps, err := td.ParseSet(s, `
join:   R(a, b, c) & R(a, b', c') -> R(a, b, c')
mirror: R(a, b, c) & R(a', b, c') -> R(a, b, c')
tail:   R(a, b, c) & R(a', b', c) -> R(a, b', c)
`)
	if err != nil {
		t.Fatal(err)
	}
	trace := func(workers int) []byte {
		start := relation.NewInstance(s)
		for i := 0; i < 8; i++ {
			start.MustAdd(relation.Tuple{relation.Value(i % 2), relation.Value(i % 3), relation.Value(i)})
		}
		var buf bytes.Buffer
		e, err := chase.NewEngine(s, deps, chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 50, Tuples: 20000}),
			SemiNaive: true, Workers: workers, Sink: obs.NewJSONLSink(&buf)})
		if err != nil {
			t.Fatal(err)
		}
		if res := e.Chase(start, nil); !res.FixpointReached {
			t.Fatal("no fixpoint")
		}
		return buf.Bytes()
	}
	seq, par := trace(1), trace(4)
	if !bytes.Equal(seq, par) {
		t.Errorf("event streams differ between Workers=1 (%d bytes) and Workers=4 (%d bytes):\n--- 1:\n%s--- 4:\n%s",
			len(seq), len(par), seq, par)
	}
}

// Attaching the no-op sink must not change the engine's allocation profile:
// events are stack values and every aggregation is scalar. Measured on the
// BenchmarkChaseSchedulers workload.
func TestNopSinkAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	s := relation.MustSchema("A", "B", "C")
	join := td.MustParse(s, "R(a, b, c) & R(a, b', c') -> R(a, b, c')", "join")
	start := relation.NewInstance(s)
	for i := 0; i < 6; i++ {
		start.MustAdd(relation.Tuple{0, relation.Value(i), relation.Value(i)})
	}
	run := func(sink obs.Sink) float64 {
		return testing.AllocsPerRun(10, func() {
			e, err := chase.NewEngine(s, []*td.TD{join}, chase.Options{
				Governor:  budget.New(nil, budget.Limits{Rounds: 50, Tuples: 10000}),
				SemiNaive: true, Sink: sink})
			if err != nil {
				t.Fatal(err)
			}
			if res := e.Chase(start, nil); !res.FixpointReached {
				t.Fatal("no fixpoint")
			}
		})
	}
	bare, nop := run(nil), run(obs.Nop{})
	if diff := nop - bare; diff > 0.5 || diff < -0.5 {
		t.Errorf("no-op sink changes allocations: nil sink %.1f allocs, Nop %.1f allocs", bare, nop)
	}
}

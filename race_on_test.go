//go:build race

package templatedep_test

// raceEnabled reports that this binary was built with -race, which
// perturbs escape analysis and therefore allocation counts.
const raceEnabled = true

//go:build !race

package templatedep_test

const raceEnabled = false

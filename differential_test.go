package templatedep_test

import (
	"reflect"
	"templatedep/internal/budget"
	"testing"

	"templatedep/internal/chase"
	"templatedep/internal/reduction"
	"templatedep/internal/words"
)

// The index-driven join must be semantics-preserving on the paper's own
// workload: chase.Implies verdicts on the F3 presentations (D1..D4 + D0
// built by the Reduction Theorem) are bit-identical between the optimized
// join and the naive scan, as are all work statistics — the two paths
// enumerate the same triggers in the same rounds.
func TestImpliesVerdictsIdenticalAcrossJoins(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *words.Presentation
	}{
		{"twostep", words.TwoStepPresentation()},
		{"power", words.PowerPresentation()},
		{"chain2", words.ChainPresentation(2)},
		{"nilpotent2", words.NilpotentSafePresentation(2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := reduction.MustBuild(tc.p)
			opt := chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true}
			opt.Join = chase.JoinIndex
			ri, err := chase.Implies(in.D, in.D0, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Join = chase.JoinScan
			rs, err := chase.Implies(in.D, in.D0, opt)
			if err != nil {
				t.Fatal(err)
			}
			if ri.Verdict != rs.Verdict {
				t.Fatalf("verdicts differ: index %v, scan %v", ri.Verdict, rs.Verdict)
			}
			if !reflect.DeepEqual(ri.Stats, rs.Stats) {
				t.Errorf("stats differ: index %+v, scan %+v", ri.Stats, rs.Stats)
			}
			if ri.Instance.Len() != rs.Instance.Len() {
				t.Errorf("instance sizes differ: index %d, scan %d", ri.Instance.Len(), rs.Instance.Len())
			}
		})
	}
}

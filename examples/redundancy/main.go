// Redundancy: the practical motivation the paper's introduction cites — "a
// solution to the inference problem carries with it the ability to
// determine whether two sets of dependencies are equivalent, whether a set
// of dependencies is redundant, etc." For FULL template dependencies the
// chase terminates, so these questions are decidable; this example audits a
// constraint set for a warehouse schema, finds a redundant dependency,
// proves two formulations equivalent, and then shows why the same audit
// cannot be complete once embedded dependencies enter.
package main

import (
	"fmt"
	"log"
	"templatedep/internal/budget"

	"templatedep/internal/chase"
	"templatedep/internal/relation"
	"templatedep/internal/td"
)

func main() {
	schema := relation.MustSchema("WAREHOUSE", "PRODUCT", "CARRIER")

	constraints, err := td.ParseSet(schema, `
cross:   R(w, p, c) & R(w, p', c') -> R(w, p, c')
triple:  R(w, p, c) & R(w, p', c') & R(w, p'', c'') -> R(w, p, c'')
swap:    R(w, p, c) & R(w, p', c') -> R(w, p', c)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("constraint set:")
	for _, d := range constraints {
		fmt.Printf("  %-7s %s (full=%v)\n", d.Name()+":", d.Format(), d.IsFull())
	}
	fmt.Println()

	// Redundancy audit: is any constraint implied by the others? Every
	// dependency here is full, so the chase DECIDES each question.
	fmt.Println("redundancy audit (decidable: all dependencies are full):")
	for i, d := range constraints {
		rest := make([]*td.TD, 0, len(constraints)-1)
		rest = append(rest, constraints[:i]...)
		rest = append(rest, constraints[i+1:]...)
		res, err := chase.Implies(rest, d, chase.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s implied by the others: %s\n", d.Name(), res.Verdict)
	}
	fmt.Println()

	// Equivalence of two formulations: {cross} versus {cross, triple}.
	a := []*td.TD{constraints[0]}
	b := []*td.TD{constraints[0], constraints[1]}
	equiv := true
	for _, d := range b {
		res, err := chase.Implies(a, d, chase.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if res.Verdict != chase.Implied {
			equiv = false
		}
	}
	for _, d := range a {
		res, err := chase.Implies(b, d, chase.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if res.Verdict != chase.Implied {
			equiv = false
		}
	}
	fmt.Printf("{cross} equivalent to {cross, triple}: %v\n\n", equiv)

	// The boundary: add an EMBEDDED dependency and the audit loses its
	// termination guarantee — by the paper's Main Theorem, no procedure
	// both terminates always and answers correctly always.
	emb, err := td.Parse(schema, "R(w, p, c) & R(w', p, c') -> R(w'', p, c)", "mirror")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adding embedded dependency: %s\n", emb.Format())
	opt := chase.DefaultOptions()
	opt.Governor = budget.New(nil, budget.Limits{Rounds: 8, Tuples: chase.DefaultLimits.Tuples})
	res, err := chase.Implies(append(a, emb), constraints[2], opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("does {cross, mirror} imply swap? %s", res.Verdict)
	switch res.Verdict {
	case chase.Unknown:
		fmt.Println("  (budget hit — with embedded TDs this can be unavoidable)")
	default:
		fmt.Println()
	}
}

// Undecidability: the paper's Main Theorem made executable. Three word
// problem instances are pushed through the Gurevich–Lewis reduction; the
// dual semidecision procedure certifies one as IMPLIED (with an explicit
// derivation and chase proof), one as having a FINITE COUNTEREXAMPLE (with
// an explicit finite semigroup and database), and leaves the third —
// an instance in neither of the effectively inseparable sets — UNKNOWN.
package main

import (
	"fmt"
	"log"
	"templatedep/internal/budget"

	"templatedep/internal/chase"
	"templatedep/internal/core"
	"templatedep/internal/words"
)

func main() {
	b := core.DefaultBudget()
	b.Chase = chase.Options{Governor: budget.New(nil, budget.Limits{Rounds: 12, Tuples: 60000}), SemiNaive: true}
	b.Closure = words.ClosureOptions{Governor: budget.New(nil, budget.Limits{Words: 5000}), LengthCap: 10}

	cases := []struct {
		name string
		p    *words.Presentation
		why  string
	}{
		{"two-step", words.TwoStepPresentation(),
			"A0 = bc = 0 is derivable, so by Reduction Theorem (A) the dependencies D imply D0"},
		{"power", words.PowerPresentation(),
			"the nilpotent semigroup N3 falsifies A0 = 0, so by (B) a finite database violates D0"},
		{"idempotent-gap", words.IdempotentGapPresentation(),
			"A0·A0 = A0 is in NEITHER set: not derivable, and condition (ii) bars every finite cancellation model"},
	}

	for _, c := range cases {
		fmt.Printf("=== %s ===\n", c.name)
		fmt.Printf("presentation:\n%s", words.FormatSpec(c.p, true))
		fmt.Printf("why: %s\n", c.why)

		res, err := core.AnalyzePresentation(c.p, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reduction: %d attributes, |D| = %d, max antecedents %d\n",
			res.Instance.Schema.Width(), len(res.Instance.D), res.Instance.MaxAntecedents())
		fmt.Printf("verdict: %s\n", res.Verdict)

		switch res.Verdict {
		case core.Implied:
			fmt.Printf("derivation (%d steps):\n%s", res.Derivation.Len(), res.Derivation.Format(res.Instance.Pres))
			if res.ChaseProof != nil {
				fmt.Printf("chase proof: %d rounds, %d tuples in the canonical database\n",
					res.ChaseProof.Stats.Rounds, res.ChaseProof.Instance.Len())
			}
		case core.FiniteCounterexample:
			fmt.Printf("finite semigroup witness (order %d):\n%s",
				res.Witness.Table.Size(), res.Witness.Table.String())
			fmt.Printf("counterexample database: %d tuples (|P| = %d, |Q| = %d), satisfies all %d members of D, violates D0\n",
				res.CounterModel.Instance.Len(), len(res.CounterModel.PElems),
				len(res.CounterModel.QTriples), len(res.Instance.D))
		default:
			if res.GoalRefuted {
				fmt.Println("the word problem is REFUTED (Knuth–Bendix completion decides A0 ≠ 0")
				fmt.Println("in the free model), so Reduction Theorem (A) cannot apply; yet no")
				fmt.Println("finite cancellation witness exists either (condition (ii) forbids")
				fmt.Println("nonzero idempotents) — the instance sits in NEITHER set.")
			} else {
				fmt.Println("both semi-procedures exhausted their budgets — the gap the")
				fmt.Println("undecidability proof lives in; no budget can close it in general.")
			}
		}
		fmt.Println()
	}
}
